GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz crash-test parallel-test chaos-test wal-crash-test executor-test planner-test serve-smoke loadgen loadgen-smoke bench bench-smoke bench-smoke-parallel bench-regression ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short coverage-guided fuzz runs over the parser and the snapshot
# decoder; the seed corpora alone run under plain `make test`.
fuzz:
	$(GO) test ./internal/parser -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/snapshot -run '^$$' -fuzz '^FuzzSnapshotRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzWALDecode$$' -fuzztime $(FUZZTIME)

# Crash-recovery suite under the race detector: fault-injected crashes
# mid-fixpoint, torn checkpoint files, failing sinks, and the
# checkpoint/resume differential over every example program.
crash-test:
	$(GO) test -race -run 'Checkpoint|CrashRecovery|Resume|Snapshot|Torn' ./internal/core ./internal/snapshot ./datalog ./cmd/mdl
	$(GO) test -race ./internal/faults

# Parallel-engine suite under the race detector: the determinism
# contract over every example program at explicit worker counts, the
# scheduler stress tests, and worker-crash containment. These pin
# Parallelism >= 2 so the multi-worker path runs even on one CPU.
parallel-test:
	$(GO) test -race -run 'Parallel|Concurrent' ./datalog ./internal/relation ./internal/server ./cmd/mdl

# Chaos suite for the serve tier under the race detector: group-commit
# coalescing and poison isolation, admission control and shedding,
# injected writer stalls / slow solves / failed swaps / checkpoint-sink
# failures mid-drain, and asserts racing graceful shutdown. The
# invariants: no lost acks, no partial models, clean drain.
chaos-test:
	$(GO) test -race -run 'Chaos|GroupCommit|CommitSolo|AssertQueue|ReadInflight|ReadDeadline|HealthzLiveness|ServeShutdownRacing' ./internal/server ./cmd/mdl
	$(GO) test -race ./internal/faults

# Durability suite for the write-ahead log under the race detector: the
# log format and recovering reader (torn tails, mid-log corruption,
# compaction), the server commit path with injected append/fsync
# failures, and the binary-level SIGKILL loop — kill `mdl serve -wal`
# mid-drain under mixed load, restart, and prove no acked batch is lost
# and the recovered model equals a one-shot solve.
wal-crash-test:
	$(GO) test -race -run 'WAL|SeqWatermark|DirSync|Watermark' ./internal/wal ./internal/snapshot ./internal/server ./datalog ./cmd/mdl
	$(GO) test -race -run 'TestChaosWALSigkillRecovery' -count=1 ./cmd/mdl

# Streaming-executor suite under the race detector: the operator
# property tests, and the tuple-vs-stream differential over every
# example program (byte-identical models, traces, stats, checkpoints,
# at parallelism 1/2/N).
executor-test:
	$(GO) test -race ./internal/exec
	$(GO) test -race -run 'Executor|DoesNotAllocate' ./datalog ./internal/core ./cmd/mdl

# Cost-based planner suite under the race detector: the estimator
# property tests, and the syntactic-vs-cost differential over every
# example program (byte-identical models, traces, stats, checkpoints,
# both executors, at parallelism 1/2/N). See docs/PLANNER.md.
planner-test:
	$(GO) test -race ./internal/planner
	$(GO) test -race -run 'Planner|Plan' ./datalog ./cmd/mdl

# End-to-end smoke test of the mdl serve subsystem over real HTTP:
# query, assert, explain, metrics, graceful shutdown, warm restart.
serve-smoke:
	sh scripts/serve-smoke.sh

# Load-generator harness: steady + overload phases against a live
# server; merges p50/p99/error-rate reports into BENCH_<date>.json.
loadgen:
	sh scripts/loadgen.sh

# Short loadgen phases against a throwaway BENCH file: proves the
# harness and the serve tier survive overload without hard errors.
loadgen-smoke:
	LOADGEN_DURATION=2s LOADGEN_OVERLOAD_DURATION=1s \
		LOADGEN_OUT=/tmp/bench-loadgen-smoke.json sh scripts/loadgen.sh

# Full benchmark run; writes BENCH_<date>.json at the repo root.
bench:
	sh scripts/bench.sh

# One iteration per benchmark: proves every benchmark still compiles
# and runs without paying for statistically meaningful timings.
bench-smoke:
	BENCHTIME=1x BENCH_OUT=/tmp/bench-smoke.json sh scripts/bench.sh

# Smoke the multi-worker scheduler benchmarks specifically (parallelism
# 1/2/GOMAXPROCS sub-runs of the solve workloads).
bench-smoke-parallel:
	BENCHTIME=1x BENCH_PATTERN='SolveParallel|SolveAtParallelism' \
		BENCH_OUT=/tmp/bench-smoke-parallel.json sh scripts/bench.sh

# Allocation-regression gate: fail if the streaming executor's
# allocs/op on BenchmarkSolve exceeds 25% of the tuple executor's.
bench-regression:
	sh scripts/bench_regression.sh

ci: vet build race fuzz crash-test parallel-test chaos-test wal-crash-test executor-test planner-test serve-smoke loadgen-smoke bench-smoke bench-smoke-parallel bench-regression

clean:
	$(GO) clean ./...
