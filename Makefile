GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short coverage-guided fuzz run over the parser; the seed corpus alone
# runs under plain `make test`.
fuzz:
	$(GO) test ./internal/parser -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)

ci: vet build race fuzz

clean:
	$(GO) clean ./...
