// Benchmarks for the query-service subsystem: point lookups against a
// materialized shortest-path model, through the model facade and
// through the full HTTP stack.
package repro_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/datalog"
	"repro/internal/gen"
	"repro/internal/programs"
	"repro/internal/server"
)

// BenchmarkServeQuery measures the serving read path on graphs of
// increasing size: Cost/Has point lookups on the materialized model
// directly (the lock-free in-process path) and the same lookup through
// a /v1/query HTTP round trip.
func BenchmarkServeQuery(b *testing.B) {
	for _, n := range []int{32, 128} {
		g := gen.Graph(gen.CycleGraph, n, 4*n, 9, int64(n))
		src := programs.ShortestPath + gen.GraphFacts(g)

		s, err := server.New([]server.ProgramSpec{{Name: "sp", Source: src}}, server.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Materialize(context.Background()); err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())

		p, err := datalog.Load(src, datalog.Options{})
		if err != nil {
			b.Fatal(err)
		}
		m, _, err := p.Solve()
		if err != nil {
			b.Fatal(err)
		}
		// Look up an existing tuple so the benchmark measures a hit.
		rows := m.Facts("s")
		if len(rows) == 0 {
			b.Fatal("no s tuples")
		}
		from, to := rows[len(rows)/2][0], rows[len(rows)/2][1]

		b.Run(fmt.Sprintf("model/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := m.Cost("s", from, to); !ok {
					b.Fatal("lookup missed")
				}
			}
		})
		b.Run(fmt.Sprintf("http/n=%d", n), func(b *testing.B) {
			body := fmt.Sprintf(`{"op":"cost","pred":"s","args":[%q,%q]}`, from.String(), to.String())
			client := ts.Client()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		})
		ts.Close()
	}
}

// BenchmarkServeAssert measures the single-writer path: one new edge
// per iteration, each extending the fixpoint incrementally.
func BenchmarkServeAssert(b *testing.B) {
	g := gen.Graph(gen.CycleGraph, 64, 256, 9, 64)
	src := programs.ShortestPath + gen.GraphFacts(g)
	s, err := server.New([]server.ProgramSpec{{Name: "sp", Source: src}}, server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Materialize(context.Background()); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"facts":[{"pred":"arc","args":["n1","x%d",3]}]}`, i)
		resp, err := client.Post(ts.URL+"/v1/assert", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
}
