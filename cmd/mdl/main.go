// Command mdl evaluates monotonic-aggregation Datalog programs (Ross &
// Sagiv, PODS 1992) bottom-up and prints their minimal model.
//
// Usage:
//
//	mdl [flags] program.mdl [more.mdl ...]
//
// Flags:
//
//	-check         run the static analyses only and print the classification
//	-naive         use the naive T_P iteration instead of semi-naive
//	-eps ε         numeric convergence tolerance (for ω-limit programs)
//	-max-rounds N  fixpoint round bound per component
//	-max-facts N   derivation budget per solve (0 = unlimited)
//	-parallel N    evaluation workers (default: one per CPU; 1 = the
//	               sequential engine; output is identical either way)
//	-executor x    rule-body execution backend: "stream" (lazy operator
//	               pipelines, low allocation) or "tuple" (the reference
//	               interpreter); output is identical either way
//	-plan x        rule planner: "syntactic" (written left-to-right body
//	               order) or "cost" (statistics-driven join ordering,
//	               presizing, subplan sharing and adaptive re-planning;
//	               see docs/PLANNER.md); output is identical either way
//	-timeout d     wall-clock budget for evaluation, e.g. 1s (0 = none)
//	-query pred    print only the tuples of one predicate
//	-stats         print evaluation statistics to stderr, including
//	               per-component and per-rule hot-spot tables
//	-profile       print EXPLAIN ANALYZE to stderr: the compiled operator
//	               tree of every rule annotated with measured row counts,
//	               index probes and build sizes (implies -executor=stream)
//	-profile-json f  also write the profile as JSON to file f (the
//	               machine-readable EXPLAIN ANALYZE form; implies -profile)
//	-pprof-addr a  serve net/http/pprof on its own listener at address a
//	               while evaluating (e.g. localhost:6060)
//	-unchecked     skip the static checks (minimal model no longer guaranteed)
//	-wfs-fallback  evaluate negation-recursive components by WFS (§6.3)
//	-explain atom  print the derivation tree of one ground atom, e.g.
//	               -explain 's(a, c)' (implies tracing)
//	-checkpoint f        durably checkpoint the evolving model to file f
//	                     (atomic write-rename; f always holds a complete,
//	                     verifiable snapshot)
//	-checkpoint-every N  rounds between periodic checkpoints (default 1;
//	                     component boundaries always checkpoint)
//	-resume f            restore the model from checkpoint f and continue
//	                     the fixpoint from there
//
// SIGINT (Ctrl-C) cancels the evaluation gracefully: the partial model
// and statistics are printed to stderr before exiting. A breached
// -timeout or -max-facts budget, and detected divergence (an ω-limit
// program such as Example 5.1), behave the same way. With -checkpoint
// set, all of these flush one final checkpoint before exiting, so the
// run can be continued with -resume.
//
// A checkpoint records a fingerprint of the program text; -resume
// refuses a checkpoint written by a different program rather than ever
// computing a wrong model.
//
// Exit codes: 0 success, 1 usage or I/O error, 2 parse error, 3 failed
// static check, 4 evaluation failure, 5 checkpoint or restore failure
// (unwritable sink, corrupt or torn checkpoint file, program
// fingerprint mismatch), 6 write-ahead log failure (mid-log corruption
// or a log that disagrees with the checkpoint watermark; serve only).
//
// The serve subcommand (mdl serve [flags] program.mdl ...) runs the
// long-lived HTTP/JSON query service instead of a batch solve; see
// serve.go and docs/SERVER.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/datalog"
)

// Exit codes; kept distinct so scripts can tell a bad invocation from a
// bad program from a bad evaluation.
const (
	exitOK         = 0
	exitUsage      = 1
	exitParse      = 2
	exitStatic     = 3
	exitEval       = 4
	exitCheckpoint = 5
	exitWAL        = 6
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "serve" {
		return runServe(ctx, args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("mdl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	check := fs.Bool("check", false, "run static checks only")
	naive := fs.Bool("naive", false, "use the naive fixpoint strategy")
	eps := fs.Float64("eps", 0, "numeric convergence tolerance")
	maxRounds := fs.Int("max-rounds", 0, "fixpoint round bound per component")
	maxFacts := fs.Int64("max-facts", 0, "derivation budget per solve (0 = unlimited)")
	parallel := fs.Int("parallel", 0, "evaluation workers (default one per CPU; 1 = sequential)")
	executor := fs.String("executor", "", `execution backend: "stream" or "tuple"`)
	plan := fs.String("plan", "", `rule planner: "syntactic" or "cost"`)
	timeout := fs.Duration("timeout", 0, "wall-clock budget for evaluation, e.g. 1s (0 = none)")
	query := fs.String("query", "", "print only this predicate")
	stats := fs.Bool("stats", false, "print evaluation statistics")
	unchecked := fs.Bool("unchecked", false, "skip static checks")
	wfsFallback := fs.Bool("wfs-fallback", false, "evaluate negation-recursive components by WFS (§6.3)")
	explain := fs.String("explain", "", "print the derivation tree of a ground atom, e.g. 's(a, c)'")
	profile := fs.Bool("profile", false, "print EXPLAIN ANALYZE (per-operator row counts and probe totals) to stderr; implies -executor=stream")
	profileJSON := fs.String("profile-json", "", "write the EXPLAIN ANALYZE profile as JSON to this file (implies -profile)")
	ckptPath := fs.String("checkpoint", "", "durably checkpoint the evolving model to this file")
	ckptEvery := fs.Int("checkpoint-every", 1, "rounds between periodic checkpoints (with -checkpoint)")
	resumePath := fs.String("resume", "", "resume evaluation from a checkpoint file written by -checkpoint")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (separate listener) during evaluation")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	usage := func(msg string) int {
		fmt.Fprintln(stderr, "mdl:", msg)
		return exitUsage
	}
	// Validate flag values before doing any work.
	if *eps < 0 {
		return usage("-eps must be ≥ 0")
	}
	if *maxRounds < 0 {
		return usage("-max-rounds must be ≥ 0")
	}
	if *maxFacts < 0 {
		return usage("-max-facts must be ≥ 0")
	}
	if *ckptEvery < 0 {
		return usage("-checkpoint-every must be ≥ 0")
	}
	timeoutSet, parallelSet, executorSet, planSet := false, false, false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "timeout":
			timeoutSet = true
		case "parallel":
			parallelSet = true
		case "executor":
			executorSet = true
		case "plan":
			planSet = true
		}
	})
	exe, err := datalog.ParseExecutor(*executor)
	if err != nil {
		return usage(`-executor must be "stream" or "tuple"`)
	}
	pln, err := datalog.ParsePlan(*plan)
	if err != nil {
		return usage(`-plan must be "syntactic" or "cost"`)
	}
	if *profileJSON != "" {
		*profile = true
	}
	if *profile {
		// Only the streaming executor carries operator counters, so
		// -profile selects it; an explicit -executor=tuple is a
		// contradiction, not something to silently override.
		if executorSet && exe == datalog.ExecutorTuple {
			return usage("-profile requires the streaming executor; drop -executor=tuple")
		}
		exe = datalog.ExecutorStream
	}
	if timeoutSet && *timeout <= 0 {
		return usage("-timeout must be > 0")
	}
	// The unset default (0) means one worker per CPU; an explicit value
	// must name at least one worker.
	if parallelSet && *parallel < 1 {
		return usage("-parallel must be ≥ 1")
	}
	// -check never evaluates, so evaluation-only flags genuinely conflict
	// with it. -resume combined with positional program/fact files does
	// NOT conflict up front: the files are needed to reload the program,
	// and extra or changed fact files are arbitrated by the checkpoint's
	// program fingerprint at restore time (exit 5 on a real mismatch)
	// rather than rejected blindly here.
	if *check && *resumePath != "" {
		return usage("-check does not evaluate; it cannot be combined with -resume")
	}
	if *check && *ckptPath != "" {
		return usage("-check does not evaluate; it cannot be combined with -checkpoint")
	}
	if *check && *stats {
		return usage("-check does not evaluate; it cannot be combined with -stats")
	}
	if *check && *pprofAddr != "" {
		return usage("-check does not evaluate; it cannot be combined with -pprof-addr")
	}
	if *check && parallelSet {
		return usage("-check does not evaluate; it cannot be combined with -parallel")
	}
	if *check && executorSet {
		return usage("-check does not evaluate; it cannot be combined with -executor")
	}
	if *check && planSet {
		return usage("-check does not evaluate; it cannot be combined with -plan")
	}
	if *check && *profile {
		return usage("-check does not evaluate; it cannot be combined with -profile")
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: mdl [flags] program.mdl ...")
		fs.PrintDefaults()
		return exitUsage
	}
	var src strings.Builder
	for _, f := range fs.Args() {
		b, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(stderr, "mdl:", err)
			return exitUsage
		}
		src.Write(b)
		src.WriteByte('\n')
	}

	opts := datalog.Options{
		Epsilon:     *eps,
		MaxRounds:   *maxRounds,
		MaxFacts:    *maxFacts,
		MaxDuration: *timeout,
		Parallelism: *parallel,
		Executor:    exe,
		Plan:        pln,
		SkipChecks:  *unchecked || *check,
		WFSFallback: *wfsFallback,
		Trace:       *explain != "",
		Profile:     *profile,
	}
	if *naive {
		opts.Strategy = datalog.Naive
	}
	p, err := datalog.Load(src.String(), opts)
	if err != nil {
		fmt.Fprintln(stderr, "mdl:", err)
		if errors.Is(err, datalog.ErrParse) {
			return exitParse
		}
		return exitStatic
	}
	if *check {
		cl := p.Classify()
		fmt.Fprintf(stdout, "admissible (monotonic):      %v\n", cl.Admissible)
		if !cl.Admissible {
			fmt.Fprintf(stdout, "  reason: %s\n", cl.Reason)
		}
		fmt.Fprintf(stdout, "r-monotonic (Mumick et al.): %v\n", cl.RMonotonic)
		fmt.Fprintf(stdout, "aggregate stratified:        %v\n", cl.AggregateStratified)
		fmt.Fprintf(stdout, "negation stratified:         %v\n", cl.NegationStratified)
		if !cl.Admissible {
			return exitStatic
		}
		return exitOK
	}
	if *pprofAddr != "" {
		closer, perr := startPprof(*pprofAddr, stderr)
		if perr != nil {
			fmt.Fprintln(stderr, "mdl:", perr)
			return exitUsage
		}
		defer closer.Close()
	}
	var solveOpts []datalog.SolveOption
	if *ckptPath != "" {
		solveOpts = append(solveOpts, datalog.WithCheckpoint(datalog.FileCheckpoint(*ckptPath), *ckptEvery))
	}
	var m *datalog.Model
	var st datalog.Stats
	if *resumePath != "" {
		restored, rerr := p.RestoreFile(*resumePath)
		if rerr != nil {
			fmt.Fprintln(stderr, "mdl:", rerr)
			return exitCheckpoint
		}
		m, st, err = p.Resume(ctx, restored, solveOpts...)
	} else {
		m, st, err = p.SolveContext(ctx, nil, solveOpts...)
	}
	if err != nil {
		fmt.Fprintln(stderr, "mdl:", err)
		// Limit breaches keep the work done so far: print the partial
		// model and the statistics to stderr before giving up, and —
		// when checkpointing — flush one final checkpoint so the run
		// can continue with -resume. (Skip the flush when the failure
		// was the checkpoint sink itself.)
		if m != nil {
			if *ckptPath != "" && !errors.Is(err, datalog.ErrCheckpoint) {
				if werr := m.WriteSnapshot(*ckptPath); werr != nil {
					fmt.Fprintln(stderr, "mdl: final checkpoint:", werr)
					return exitCheckpoint
				}
				fmt.Fprintf(stderr, "mdl: checkpoint saved; continue with -resume %s\n", *ckptPath)
			}
			fmt.Fprintln(stderr, "partial results (not a fixpoint):")
			fmt.Fprint(stderr, m.String())
		}
		printStats(stderr, st)
		if *profile {
			// The counters cover the work performed up to the breach —
			// on a divergence they show which operator pipeline blew up.
			prof := p.Profile()
			prof.Annotate(st)
			prof.Render(stderr)
		}
		if errors.Is(err, datalog.ErrCheckpoint) {
			return exitCheckpoint
		}
		return exitEval
	}
	if *stats {
		printStats(stderr, st)
	}
	if *profile {
		prof := p.Profile()
		prof.Annotate(st)
		prof.Render(stderr)
		if *profileJSON != "" {
			b, jerr := json.MarshalIndent(prof, "", "  ")
			if jerr == nil {
				jerr = os.WriteFile(*profileJSON, append(b, '\n'), 0o644)
			}
			if jerr != nil {
				fmt.Fprintln(stderr, "mdl: profile-json:", jerr)
				return exitUsage
			}
		}
	}
	if *explain != "" {
		pred, args, err := parseAtom(*explain)
		if err != nil {
			fmt.Fprintln(stderr, "mdl:", err)
			return exitUsage
		}
		fmt.Fprint(stdout, m.ExplainTree(pred, 10, args...))
		return exitOK
	}
	if *query != "" {
		for _, row := range m.Facts(*query) {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Fprintf(stdout, "%s(%s).\n", *query, strings.Join(parts, ", "))
		}
		return exitOK
	}
	fmt.Fprint(stdout, m.String())
	return exitOK
}

func printStats(w io.Writer, st datalog.Stats) {
	fmt.Fprintf(w, "components=%d rounds=%d firings=%d derived=%d probes=%d\n",
		st.Components, st.Rounds, st.Firings, st.Derived, st.Probes)
	if len(st.Comps) > 0 {
		fmt.Fprintln(w, "components:")
		for _, cs := range st.Comps {
			flags := ""
			if cs.WFS {
				flags = " wfs"
			} else if !cs.Admissible {
				flags = " non-admissible"
			}
			fmt.Fprintf(w, "  #%-3d %-32s rounds=%-5d firings=%-8d derived=%-8d probes=%-8d time=%s%s\n",
				cs.Index, truncateRule(cs.Preds, 32), cs.Rounds, cs.Firings, cs.Derived, cs.Probes,
				formatNanos(cs.Nanos), flags)
		}
	}
	if len(st.Rules) == 0 {
		return
	}
	// Hot-spot table: rules sorted by cumulative evaluation time.
	rules := append([]datalog.RuleStats(nil), st.Rules...)
	sort.SliceStable(rules, func(i, j int) bool { return rules[i].Nanos > rules[j].Nanos })
	fmt.Fprintln(w, "rule hot spots (by cumulative time):")
	for _, rs := range rules {
		fmt.Fprintf(w, "  %9s %-48s comp=%-3d rounds=%-5d firings=%-8d derived=%-8d probes=%d\n",
			formatNanos(rs.Nanos), truncateRule(rs.Rule, 48), rs.Component,
			rs.Rounds, rs.Firings, rs.Derived, rs.Probes)
	}
}

// formatNanos renders a nanosecond total compactly (µs/ms/s).
func formatNanos(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fs", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fms", float64(n)/1e6)
	default:
		return fmt.Sprintf("%.0fµs", float64(n)/1e3)
	}
}

// truncateRule bounds a rule rendering for the fixed-width table.
func truncateRule(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// parseAtom parses a ground atom like "s(a, c)" into a predicate name and
// argument values.
func parseAtom(text string) (string, []datalog.Value, error) {
	open := strings.IndexByte(text, '(')
	if open < 0 {
		return strings.TrimSpace(text), nil, nil
	}
	if !strings.HasSuffix(strings.TrimSpace(text), ")") {
		return "", nil, fmt.Errorf("bad atom %q", text)
	}
	pred := strings.TrimSpace(text[:open])
	inner := strings.TrimSpace(text[open+1 : strings.LastIndexByte(text, ')')])
	var args []datalog.Value
	if inner != "" {
		for _, part := range strings.Split(inner, ",") {
			part = strings.TrimSpace(part)
			if n, err := strconv.ParseFloat(part, 64); err == nil {
				args = append(args, datalog.Num(n))
			} else {
				args = append(args, datalog.Sym(part))
			}
		}
	}
	return pred, args, nil
}
