// Command mdl evaluates monotonic-aggregation Datalog programs (Ross &
// Sagiv, PODS 1992) bottom-up and prints their minimal model.
//
// Usage:
//
//	mdl [flags] program.mdl [more.mdl ...]
//
// Flags:
//
//	-check         run the static analyses only and print the classification
//	-naive         use the naive T_P iteration instead of semi-naive
//	-eps ε         numeric convergence tolerance (for ω-limit programs)
//	-max-rounds N  fixpoint round bound per component
//	-query pred    print only the tuples of one predicate
//	-stats         print evaluation statistics to stderr
//	-unchecked     skip the static checks (minimal model no longer guaranteed)
//	-wfs-fallback  evaluate negation-recursive components by WFS (§6.3)
//	-explain atom  print the derivation tree of one ground atom, e.g.
//	               -explain 's(a, c)' (implies tracing)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/datalog"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	check := fs.Bool("check", false, "run static checks only")
	naive := fs.Bool("naive", false, "use the naive fixpoint strategy")
	eps := fs.Float64("eps", 0, "numeric convergence tolerance")
	maxRounds := fs.Int("max-rounds", 0, "fixpoint round bound per component")
	query := fs.String("query", "", "print only this predicate")
	stats := fs.Bool("stats", false, "print evaluation statistics")
	unchecked := fs.Bool("unchecked", false, "skip static checks")
	wfsFallback := fs.Bool("wfs-fallback", false, "evaluate negation-recursive components by WFS (§6.3)")
	explain := fs.String("explain", "", "print the derivation tree of a ground atom, e.g. 's(a, c)'")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: mdl [flags] program.mdl ...")
		fs.PrintDefaults()
		return 2
	}
	var src strings.Builder
	for _, f := range fs.Args() {
		b, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(stderr, "mdl:", err)
			return 1
		}
		src.Write(b)
		src.WriteByte('\n')
	}

	opts := datalog.Options{
		Epsilon:     *eps,
		MaxRounds:   *maxRounds,
		SkipChecks:  *unchecked || *check,
		WFSFallback: *wfsFallback,
		Trace:       *explain != "",
	}
	if *naive {
		opts.Strategy = datalog.Naive
	}
	p, err := datalog.Load(src.String(), opts)
	if err != nil {
		fmt.Fprintln(stderr, "mdl:", err)
		return 1
	}
	if *check {
		cl := p.Classify()
		fmt.Fprintf(stdout, "admissible (monotonic):      %v\n", cl.Admissible)
		if !cl.Admissible {
			fmt.Fprintf(stdout, "  reason: %s\n", cl.Reason)
		}
		fmt.Fprintf(stdout, "r-monotonic (Mumick et al.): %v\n", cl.RMonotonic)
		fmt.Fprintf(stdout, "aggregate stratified:        %v\n", cl.AggregateStratified)
		fmt.Fprintf(stdout, "negation stratified:         %v\n", cl.NegationStratified)
		if !cl.Admissible {
			return 1
		}
		return 0
	}
	m, st, err := p.Solve()
	if err != nil {
		fmt.Fprintln(stderr, "mdl:", err)
		return 1
	}
	if *stats {
		fmt.Fprintf(stderr, "components=%d rounds=%d firings=%d derived=%d\n",
			st.Components, st.Rounds, st.Firings, st.Derived)
	}
	if *explain != "" {
		pred, args, err := parseAtom(*explain)
		if err != nil {
			fmt.Fprintln(stderr, "mdl:", err)
			return 1
		}
		fmt.Fprint(stdout, m.ExplainTree(pred, 10, args...))
		return 0
	}
	if *query != "" {
		for _, row := range m.Facts(*query) {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = v.String()
			}
			fmt.Fprintf(stdout, "%s(%s).\n", *query, strings.Join(parts, ", "))
		}
		return 0
	}
	fmt.Fprint(stdout, m.String())
	return 0
}

// parseAtom parses a ground atom like "s(a, c)" into a predicate name and
// argument values.
func parseAtom(text string) (string, []datalog.Value, error) {
	open := strings.IndexByte(text, '(')
	if open < 0 {
		return strings.TrimSpace(text), nil, nil
	}
	if !strings.HasSuffix(strings.TrimSpace(text), ")") {
		return "", nil, fmt.Errorf("bad atom %q", text)
	}
	pred := strings.TrimSpace(text[:open])
	inner := strings.TrimSpace(text[open+1 : strings.LastIndexByte(text, ')')])
	var args []datalog.Value
	if inner != "" {
		for _, part := range strings.Split(inner, ",") {
			part = strings.TrimSpace(part)
			if n, err := strconv.ParseFloat(part, 64); err == nil {
				args = append(args, datalog.Num(n))
			} else {
				args = append(args, datalog.Sym(part))
			}
		}
	}
	return pred, args, nil
}
