package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
)

// spLong is the shortest-path program over a chain long enough that a
// small -max-facts budget interrupts it mid-fixpoint.
const spLong = shortestPath + `
arc(c, d, 1).
arc(d, e, 2).
arc(e, f, 1).
arc(f, g, 2).
`

func TestCheckpointResumeCLI(t *testing.T) {
	f := writeProgram(t, "sp.mdl", spLong)
	want, _, code := runMdl(t, f)
	if code != exitOK {
		t.Fatalf("one-shot run exited %d", code)
	}

	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	_, errOut, code := runMdl(t, "-max-facts", "4", "-checkpoint", ckpt, f)
	if code != exitEval {
		t.Fatalf("interrupted run exited %d, want %d\n%s", code, exitEval, errOut)
	}
	if !strings.Contains(errOut, "-resume") {
		t.Fatalf("stderr must point at -resume:\n%s", errOut)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file missing after interrupt: %v", err)
	}

	// Resume to convergence; the printed model must match the one-shot run.
	out, errOut, code := runMdl(t, "-resume", ckpt, "-checkpoint", ckpt, f)
	if code != exitOK {
		t.Fatalf("resumed run exited %d\n%s", code, errOut)
	}
	if out != want {
		t.Fatalf("resumed model differs from one-shot run:\n%s\nwant:\n%s", out, want)
	}
}

func TestResumeCorruptCheckpoint(t *testing.T) {
	f := writeProgram(t, "sp.mdl", spLong)
	ckpt := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(ckpt, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, errOut, code := runMdl(t, "-resume", ckpt, f)
	if code != exitCheckpoint {
		t.Fatalf("corrupt resume exited %d, want %d\n%s", code, exitCheckpoint, errOut)
	}
}

func TestResumeFingerprintMismatch(t *testing.T) {
	f := writeProgram(t, "sp.mdl", spLong)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if _, errOut, code := runMdl(t, "-checkpoint", ckpt, f); code != exitOK {
		t.Fatalf("checkpointed run exited %d\n%s", code, errOut)
	}
	// A different program (one extra fact) must refuse the checkpoint.
	g := writeProgram(t, "sp2.mdl", spLong+"arc(g, h, 1).\n")
	_, errOut, code := runMdl(t, "-resume", ckpt, g)
	if code != exitCheckpoint {
		t.Fatalf("fingerprint mismatch exited %d, want %d\n%s", code, exitCheckpoint, errOut)
	}
	if !strings.Contains(errOut, "fingerprint") {
		t.Fatalf("stderr must name the fingerprint mismatch:\n%s", errOut)
	}
}

func TestCheckpointSinkFailure(t *testing.T) {
	faults.Arm(faults.Fault{Point: faults.SnapshotSinkWrite, Sticky: true})
	defer faults.Reset()
	f := writeProgram(t, "sp.mdl", spLong)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	_, errOut, code := runMdl(t, "-checkpoint", ckpt, f)
	if code != exitCheckpoint {
		t.Fatalf("sink failure exited %d, want %d\n%s", code, exitCheckpoint, errOut)
	}
}

// TestCanceledContextFlushesCheckpoint covers the SIGINT path: a
// canceled context stops the solve, and with -checkpoint set the final
// state is flushed so the run is resumable.
func TestCanceledContextFlushesCheckpoint(t *testing.T) {
	f := writeProgram(t, "sp.mdl", spLong)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb strings.Builder
	code := run(ctx, []string{"-checkpoint", ckpt, f}, &out, &errb)
	if code != exitEval {
		t.Fatalf("canceled run exited %d, want %d\n%s", code, exitEval, errb.String())
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("canceled run must flush a checkpoint: %v", err)
	}
	want, _, okCode := runMdl(t, f)
	if okCode != exitOK {
		t.Fatalf("one-shot run exited %d", okCode)
	}
	got, errOut, code := runMdl(t, "-resume", ckpt, f)
	if code != exitOK {
		t.Fatalf("resume after cancel exited %d\n%s", code, errOut)
	}
	if got != want {
		t.Fatalf("resume after cancel differs:\n%s\nwant:\n%s", got, want)
	}
}

func TestCheckpointEveryValidation(t *testing.T) {
	f := writeProgram(t, "sp.mdl", spLong)
	if _, _, code := runMdl(t, "-checkpoint-every", "-1", "-checkpoint", "x", f); code != exitUsage {
		t.Fatalf("negative -checkpoint-every must be a usage error, got %d", code)
	}
}
