package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/datalog"
)

// Binary-level crash tests for the write-ahead log: build the real mdl
// binary, run `mdl serve -wal ... -wal-fsync batch`, SIGKILL it in the
// middle of a mixed read/write load, and check the durability contract
// the ack promises — every 200-acked batch is present after restart and
// the recovered model is the least model a one-shot solve over the same
// EDB produces. Follow-up phases damage the log deliberately: a torn
// tail must repair on startup, mid-log corruption must refuse with
// exit code 6.

// buildMDL compiles the mdl binary into a per-test temp dir.
func buildMDL(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mdl")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// mdlProc is one running mdl serve subprocess.
type mdlProc struct {
	cmd    *exec.Cmd
	url    string
	stderr *syncBuffer
}

// startMDL launches `bin serve -addr 127.0.0.1:0 args...` and waits for
// the "serving on" line to learn the bound address.
func startMDL(t *testing.T, bin string, args ...string) *mdlProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"serve", "-addr", "127.0.0.1:0"}, args...)...)
	var buf syncBuffer
	pr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	urlc := make(chan string, 1)
	go func() {
		b := make([]byte, 4096)
		for {
			n, err := pr.Read(b)
			if n > 0 {
				buf.Write(b[:n])
				if s := buf.String(); strings.Contains(s, "serving on http://") {
					rest := s[strings.Index(s, "serving on http://")+len("serving on "):]
					if i := strings.IndexAny(rest, " \n"); i > 0 {
						select {
						case urlc <- rest[:i]:
						default:
						}
					}
				}
			}
			if err != nil {
				return
			}
		}
	}()
	select {
	case u := <-urlc:
		return &mdlProc{cmd: cmd, url: u, stderr: &buf}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("server did not start; stderr:\n%s", buf.String())
		return nil
	}
}

// kill SIGKILLs the subprocess and reaps it.
func (p *mdlProc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

// jsonArg renders a datalog value as a /v1/query JSON argument.
func jsonArg(v datalog.Value) string {
	if v.Kind() == datalog.NumValue {
		n, _ := v.Float()
		return strconv.FormatFloat(n, 'g', -1, 64)
	}
	s, _ := v.Text()
	b, _ := json.Marshal(s)
	return string(b)
}

// queryJSON posts to /v1/query and decodes the response.
func queryJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestChaosWALSigkillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and crash-loops the real binary")
	}
	bin := buildMDL(t)
	f := writeProgram(t, "sp.mdl", shortestPath)
	walDir := t.TempDir()
	ckpt := filepath.Join(t.TempDir(), "sp.ckpt")
	args := []string{"-wal", walDir, "-wal-fsync", "batch", "-checkpoint", ckpt, f}

	// Phase 1: mixed load, then SIGKILL mid-traffic. Writers record
	// every batch the server acked with 200; readers run alongside so
	// the kill lands on a busy process, not a quiet one.
	p := startMDL(t, bin, args...)
	var (
		mu      sync.Mutex
		acked   []int
		nextID  atomic.Int64
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		client  = &http.Client{Timeout: 5 * time.Second}
		enough  = make(chan struct{})
		closeMu sync.Once
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := nextID.Add(1)
				body := fmt.Sprintf(`{"facts":[{"pred":"arc","args":["k%d","l%d",1]}]}`, i, i)
				resp, err := client.Post(p.url+"/v1/assert", "application/json", strings.NewReader(body))
				if err != nil {
					return // the kill landed
				}
				ok := resp.StatusCode == http.StatusOK
				resp.Body.Close()
				if ok {
					mu.Lock()
					acked = append(acked, int(i))
					n := len(acked)
					mu.Unlock()
					if n >= 30 {
						closeMu.Do(func() { close(enough) })
					}
				}
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(p.url+"/v1/query", "application/json",
					strings.NewReader(`{"op":"cost","pred":"s","args":["a","c"]}`))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}
	select {
	case <-enough:
	case <-time.After(60 * time.Second):
		t.Fatal("load never reached 30 acked batches")
	}
	p.kill() // SIGKILL, mid-traffic
	close(stop)
	wg.Wait()

	mu.Lock()
	ackedIDs := append([]int(nil), acked...)
	mu.Unlock()
	t.Logf("killed server with %d acked batches", len(ackedIDs))

	// Phase 2: restart over the same log. No checkpoint was ever
	// flushed (the crash skipped shutdown), so recovery is pure replay.
	// Every acked batch must be present, and the recovered model must
	// equal the one-shot least model over the same EDB.
	p2 := startMDL(t, bin, args...)
	for _, i := range ackedIDs {
		code, resp := queryJSON(t, p2.url,
			fmt.Sprintf(`{"op":"has","pred":"arc","args":["k%d","l%d"]}`, i, i))
		if code != http.StatusOK || resp["found"] != true {
			t.Fatalf("acked batch %d lost across SIGKILL: %d %v", i, code, resp)
		}
	}

	oneShot, err := datalog.Load(shortestPath, datalog.Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	var facts []datalog.Fact
	for _, i := range ackedIDs {
		facts = append(facts, datalog.NewFact("arc",
			datalog.Sym(fmt.Sprintf("k%d", i)), datalog.Sym(fmt.Sprintf("l%d", i)), datalog.Num(1)))
	}
	// The server may have durably logged batches whose ack the kill cut
	// off (the documented at-least-once window). Fold those into the
	// one-shot EDB so both sides are built from the same batches.
	maxID := int(nextID.Load())
	for i := 1; i <= maxID; i++ {
		code, resp := queryJSON(t, p2.url, fmt.Sprintf(`{"op":"has","pred":"arc","args":["k%d","l%d"]}`, i, i))
		if code == http.StatusOK && resp["found"] == true {
			facts = append(facts, datalog.NewFact("arc",
				datalog.Sym(fmt.Sprintf("k%d", i)), datalog.Sym(fmt.Sprintf("l%d", i)), datalog.Num(1)))
		}
	}
	want, _, err := oneShot.Solve(dedupFacts(facts)...)
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"arc", "path", "s"} {
		code, resp := queryJSON(t, p2.url, fmt.Sprintf(`{"op":"facts","pred":%q}`, pred))
		if code != http.StatusOK {
			t.Fatalf("facts %s: %d %v", pred, code, resp)
		}
		if got, wantN := int(resp["count"].(float64)), len(want.Facts(pred)); got != wantN {
			t.Fatalf("recovered model has %d %s facts, one-shot solve has %d", got, pred, wantN)
		}
	}
	// Exact cost equality on the derived predicate, row by row.
	for _, row := range want.Facts("s") {
		lookup := row[:len(row)-1]
		args := make([]string, len(lookup))
		for i, v := range lookup {
			args[i] = jsonArg(v)
		}
		code, resp := queryJSON(t, p2.url,
			fmt.Sprintf(`{"op":"cost","pred":"s","args":[%s]}`, strings.Join(args, ",")))
		if code != http.StatusOK || resp["found"] != true {
			t.Fatalf("s(%v) missing from recovered model: %d %v", lookup, code, resp)
		}
		wantCost, _ := row[len(row)-1].Float()
		if got := resp["cost"].(float64); got != wantCost {
			t.Fatalf("s(%v): recovered cost %v, one-shot cost %v", lookup, got, wantCost)
		}
	}

	// Phase 3: torn tail. Kill the recovered server, append a truncated
	// frame (a 4-byte length promising a record the bytes never
	// deliver) to the newest segment — exactly what a crash between
	// write and fsync leaves. Startup must repair it, keeping every
	// complete record.
	p2.kill()
	seg := newestSegment(t, filepath.Join(walDir, "sp"))
	fh, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write([]byte{0, 0, 0, 100, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	p3 := startMDL(t, bin, args...)
	if !strings.Contains(p3.stderr.String(), "repaired torn tail") {
		t.Fatalf("startup did not report tail repair; stderr:\n%s", p3.stderr.String())
	}
	for _, i := range ackedIDs {
		code, resp := queryJSON(t, p3.url,
			fmt.Sprintf(`{"op":"has","pred":"arc","args":["k%d","l%d"]}`, i, i))
		if code != http.StatusOK || resp["found"] != true {
			t.Fatalf("acked batch %d lost to tail repair: %d %v", i, code, resp)
		}
	}

	// Phase 4: mid-log corruption. Flip a byte inside the first
	// record's body; with complete records behind it this is not a torn
	// tail, and startup must refuse with the WAL exit code rather than
	// serve from a log it cannot trust.
	p3.kill()
	first := oldestSegment(t, filepath.Join(walDir, "sp"))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[50] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, append([]string{"serve", "-addr", "127.0.0.1:0"}, args...)...)
	out, _ := cmd.CombinedOutput()
	if code := cmd.ProcessState.ExitCode(); code != exitWAL {
		t.Fatalf("corrupt log: exit %d, want %d; output:\n%s", code, exitWAL, out)
	}
	if !strings.Contains(string(out), "corrupt") {
		t.Fatalf("corrupt log refusal is not a structured corruption error:\n%s", out)
	}
}

// dedupFacts drops duplicate facts (an acked batch may also appear in
// the durable-but-unacked sweep); insertion is idempotent either way,
// this just keeps the one-shot EDB tidy.
func dedupFacts(facts []datalog.Fact) []datalog.Fact {
	seen := make(map[string]bool, len(facts))
	out := facts[:0]
	for _, f := range facts {
		k := f.Pred
		for _, a := range f.Args {
			k += "\x00" + a.String()
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, f)
		}
	}
	return out
}

func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs := segments(t, dir)
	return segs[len(segs)-1]
}

func oldestSegment(t *testing.T, dir string) string {
	t.Helper()
	return segments(t, dir)[0]
}

func segments(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no wal segments in %s (%v)", dir, err)
	}
	return matches // glob sorts; names are fixed-width, so order = seq order
}
