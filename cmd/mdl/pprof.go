package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// startPprof serves net/http/pprof on its own listener and mux — never
// the API mux, and never the DefaultServeMux the pprof import would
// otherwise register on — so profiling stays opt-in and isolated from
// the query surface. The returned closer stops the listener.
func startPprof(addr string, stderr io.Writer) (io.Closer, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(stderr, "mdl: pprof listening on http://%s/debug/pprof/\n", ln.Addr())
	return ln, nil
}
