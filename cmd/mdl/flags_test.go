package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Flag-combination contract of the batch CLI: only genuinely
// conflicting combinations are usage errors. -check never evaluates, so
// it rejects the evaluation-only checkpoint flags; -resume with
// positional fact files is accepted and arbitrated by the checkpoint's
// program fingerprint at restore time.

func TestConflictingFlagCombinations(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	cases := []struct {
		name string
		args []string
	}{
		{"check with resume", []string{"-check", "-resume", "x.ckpt", f}},
		{"check with checkpoint", []string{"-check", "-checkpoint", "x.ckpt", f}},
		{"check with stats", []string{"-check", "-stats", f}},
		{"check with pprof", []string{"-check", "-pprof-addr", "127.0.0.1:0", f}},
		{"check with parallel", []string{"-check", "-parallel", "2", f}},
		{"check with executor", []string{"-check", "-executor", "stream", f}},
		{"check with plan", []string{"-check", "-plan", "cost", f}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, errOut, code := runMdl(t, tc.args...)
			if code != exitUsage {
				t.Fatalf("exit %d, want %d (usage)", code, exitUsage)
			}
			if !strings.Contains(errOut, "-check does not evaluate") {
				t.Fatalf("stderr must explain the conflict:\n%s", errOut)
			}
		})
	}
}

// TestAcceptedFlagCombinations pins the combinations that must keep
// working: resuming is orthogonal to querying, statistics, further
// checkpointing, and to how many files the program is split across.
func TestAcceptedFlagCombinations(t *testing.T) {
	dir := t.TempDir()
	rules := filepath.Join(dir, "rules.mdl")
	facts := filepath.Join(dir, "facts.mdl")
	writeFileOrFatal(t, rules, `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`)
	writeFileOrFatal(t, facts, "arc(a, b, 1).\narc(b, c, 2).\n")
	ckpt := filepath.Join(dir, "sp.ckpt")

	// Seed the checkpoint from the multi-file program.
	if _, errOut, code := runMdl(t, "-checkpoint", ckpt, rules, facts); code != exitOK {
		t.Fatalf("seed run exited %d\n%s", code, errOut)
	}

	// -resume with the same positional rule+fact files: accepted, the
	// fingerprint matches.
	out, errOut, code := runMdl(t, "-resume", ckpt, rules, facts)
	if code != exitOK {
		t.Fatalf("-resume with positional files exited %d\n%s", code, errOut)
	}
	if !strings.Contains(out, "s(a, c, 3)") {
		t.Fatalf("resumed model:\n%s", out)
	}

	// -resume composes with -query.
	out, _, code = runMdl(t, "-resume", ckpt, "-query", "s", rules, facts)
	if code != exitOK || !strings.Contains(out, "s(a, c, 3).") {
		t.Fatalf("-resume -query: exit %d\n%s", code, out)
	}

	// -resume composes with -stats.
	_, errOut, code = runMdl(t, "-resume", ckpt, "-stats", rules, facts)
	if code != exitOK || !strings.Contains(errOut, "rounds=") {
		t.Fatalf("-resume -stats: exit %d\n%s", code, errOut)
	}

	// -resume composes with -checkpoint (continue and re-checkpoint).
	ckpt2 := filepath.Join(dir, "sp2.ckpt")
	if _, errOut, code = runMdl(t, "-resume", ckpt, "-checkpoint", ckpt2, rules, facts); code != exitOK {
		t.Fatalf("-resume -checkpoint: exit %d\n%s", code, errOut)
	}
	if out2, errOut, code := runMdl(t, "-resume", ckpt2, rules, facts); code != exitOK || !strings.Contains(out2, "s(a, c, 3)") {
		t.Fatalf("re-checkpointed model: exit %d\n%s\n%s", code, out2, errOut)
	}

	// A genuinely different program is still rejected at restore time
	// with the checkpoint exit code — the protection -resume relies on.
	extra := filepath.Join(dir, "extra.mdl")
	writeFileOrFatal(t, extra, "arc(x, y, 5).\n")
	if _, _, code := runMdl(t, "-resume", ckpt, rules, facts, extra); code != exitCheckpoint {
		t.Fatalf("changed program must exit %d, got %d", exitCheckpoint, code)
	}
}

func writeFileOrFatal(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStatsFlagOutput pins the -stats report: scalar totals plus the
// per-component and per-rule hot-spot tables on stderr.
func TestStatsFlagOutput(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	_, errOut, code := runMdl(t, "-stats", f)
	if code != exitOK {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
	for _, want := range []string{
		"components=", "rounds=", "firings=", "derived=", "probes=",
		"rule hot spots (by cumulative time):",
		"s(X, Y, C) :- C ?= min D : path(X, Z, Y, D).",
		"comp=",
	} {
		if !strings.Contains(errOut, want) {
			t.Fatalf("missing %q in -stats output:\n%s", want, errOut)
		}
	}
}

// TestPprofFlag: -pprof-addr starts a live pprof listener for the
// duration of the run.
func TestPprofFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	_, errOut, code := runMdl(t, "-pprof-addr", "127.0.0.1:0", f)
	if code != exitOK {
		t.Fatalf("exit %d\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "pprof listening on http://") {
		t.Fatalf("no pprof listener announcement:\n%s", errOut)
	}
	// A bad address is a usage error.
	if _, _, code := runMdl(t, "-pprof-addr", "256.0.0.1:bogus", f); code != exitUsage {
		t.Fatalf("bad pprof address must be a usage error, got exit %d", code)
	}
}

// TestParallelFlag: the worker count must name at least one worker when
// given explicitly (the unset default means one per CPU), and any
// accepted value prints the same model as the sequential engine.
func TestParallelFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	for _, bad := range []string{"0", "-1"} {
		_, errOut, code := runMdl(t, "-parallel", bad, f)
		if code != exitUsage {
			t.Fatalf("-parallel %s: exit %d, want %d (usage)", bad, code, exitUsage)
		}
		if !strings.Contains(errOut, "-parallel must be ≥ 1") {
			t.Fatalf("stderr must explain the bad value:\n%s", errOut)
		}
	}
	seqOut, errOut, code := runMdl(t, "-parallel", "1", f)
	if code != exitOK {
		t.Fatalf("-parallel 1: exit %d\n%s", code, errOut)
	}
	for _, n := range []string{"2", "8"} {
		parOut, errOut, code := runMdl(t, "-parallel", n, f)
		if code != exitOK {
			t.Fatalf("-parallel %s: exit %d\n%s", n, code, errOut)
		}
		if parOut != seqOut {
			t.Fatalf("-parallel %s output differs from sequential:\n%s\nvs\n%s", n, parOut, seqOut)
		}
	}
}

// TestExecutorFlag: the backend must be one of the two spellings, and
// either accepted value prints the same model and the same -stats
// totals (the executor-equivalence contract, observed end to end
// through the CLI).
func TestExecutorFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	_, errOut, code := runMdl(t, "-executor", "vectorized", f)
	if code != exitUsage {
		t.Fatalf("-executor vectorized: exit %d, want %d (usage)", code, exitUsage)
	}
	if !strings.Contains(errOut, `-executor must be "stream" or "tuple"`) {
		t.Fatalf("stderr must explain the bad value:\n%s", errOut)
	}
	tupOut, tupStats, code := runMdl(t, "-executor", "tuple", "-stats", f)
	if code != exitOK {
		t.Fatalf("-executor tuple: exit %d\n%s", code, tupStats)
	}
	strOut, strStats, code := runMdl(t, "-executor", "stream", "-stats", f)
	if code != exitOK {
		t.Fatalf("-executor stream: exit %d\n%s", code, strStats)
	}
	if strOut != tupOut {
		t.Fatalf("-executor stream output differs from tuple:\n%s\nvs\n%s", strOut, tupOut)
	}
	statLine := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "components=") {
				return line
			}
		}
		t.Fatalf("no stats totals line in:\n%s", s)
		return ""
	}
	if got, want := statLine(strStats), statLine(tupStats); got != want {
		t.Fatalf("-executor stream stats totals differ:\n%s\nvs\n%s", got, want)
	}
}

// TestPlanFlag: the planner must be one of the two spellings, and
// either accepted value prints the same model and the same -stats
// totals (the planner-equivalence contract, observed end to end through
// the CLI).
func TestPlanFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	_, errOut, code := runMdl(t, "-plan", "genetic", f)
	if code != exitUsage {
		t.Fatalf("-plan genetic: exit %d, want %d (usage)", code, exitUsage)
	}
	if !strings.Contains(errOut, `-plan must be "syntactic" or "cost"`) {
		t.Fatalf("stderr must explain the bad value:\n%s", errOut)
	}
	synOut, synStats, code := runMdl(t, "-plan", "syntactic", "-stats", f)
	if code != exitOK {
		t.Fatalf("-plan syntactic: exit %d\n%s", code, synStats)
	}
	costOut, costStats, code := runMdl(t, "-plan", "cost", "-stats", f)
	if code != exitOK {
		t.Fatalf("-plan cost: exit %d\n%s", code, costStats)
	}
	if costOut != synOut {
		t.Fatalf("-plan cost output differs from syntactic:\n%s\nvs\n%s", costOut, synOut)
	}
	statLine := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "components=") {
				return line
			}
		}
		t.Fatalf("no stats totals line in:\n%s", s)
		return ""
	}
	if got, want := statLine(costStats), statLine(synStats); got != want {
		t.Fatalf("-plan cost stats totals differ:\n%s\nvs\n%s", got, want)
	}
}

// TestProfileExecutorConflict: -profile needs the instrumented streaming
// executor. The implied override is explicit in the help text, and an
// explicit -executor=tuple contradicts it — a usage error, not a silent
// override.
func TestProfileExecutorConflict(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	_, errOut, code := runMdl(t, "-executor", "tuple", "-profile", f)
	if code != exitUsage {
		t.Fatalf("exit %d, want %d (usage)", code, exitUsage)
	}
	if !strings.Contains(errOut, "-profile requires the streaming executor") {
		t.Fatalf("stderr must explain the conflict:\n%s", errOut)
	}
	// An explicit -executor=stream agrees with the implication: accepted.
	if _, errOut, code := runMdl(t, "-executor", "stream", "-profile", f); code != exitOK {
		t.Fatalf("-executor stream -profile: exit %d\n%s", code, errOut)
	}
	// Bare -profile selects the streaming executor and reports it.
	_, errOut, code = runMdl(t, "-profile", f)
	if code != exitOK {
		t.Fatalf("-profile: exit %d\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "EXPLAIN ANALYZE (executor=stream") {
		t.Fatalf("-profile must run the streaming executor:\n%s", errOut)
	}
}

// TestServeFlagValidation covers the serve-only observability flags.
func TestServeFlagValidation(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	cases := []struct {
		name     string
		args     []string
		wantFrag string
	}{
		{"bad log format", []string{"-log-format", "xml", f}, "-log-format must be text or json"},
		{"negative slow request", []string{"-slow-request", "-1s", f}, "-slow-request must be ≥ 0"},
		{"zero parallel", []string{"-parallel", "0", f}, "-parallel must be ≥ 1"},
		{"negative parallel", []string{"-parallel", "-3", f}, "-parallel must be ≥ 1"},
		{"bad executor", []string{"-executor", "vectorized", f}, `-executor must be "stream" or "tuple"`},
		{"bad plan", []string{"-plan", "genetic", f}, `-plan must be "syntactic" or "cost"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			code := runServe(context.Background(), tc.args, &out, &errb)
			if code != exitUsage {
				t.Fatalf("exit %d, want %d (usage)", code, exitUsage)
			}
			if !strings.Contains(errb.String(), tc.wantFrag) {
				t.Fatalf("stderr must explain:\n%s", errb.String())
			}
		})
	}
}
