package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestServeShutdownRacingAsserts is the shutdown-race regression test:
// assert traffic keeps landing while SIGTERM (context cancellation)
// arrives mid-drain. Every batch must get a definite outcome — an ack,
// a shed, or a closed connection — never a hang; the final checkpoint
// must be flushed; and a warm restart must serve a model containing
// exactly the seed facts plus every acked batch, i.e. the model a
// one-shot solve over those facts would produce.
func TestServeShutdownRacingAsserts(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	f := writeProgram(t, "sp.mdl", shortestPath)
	ckpt := filepath.Join(t.TempDir(), "sp.ckpt")
	url, shutdown := runServeAsync(t, "-checkpoint", ckpt, "-assert-queue", "8", "-drain-timeout", "10s", f)

	// Slow each commit drain a little so the queue is non-empty when
	// the shutdown lands.
	faults.Arm(faults.Fault{Point: faults.ServerCommitStall, Delay: 15 * time.Millisecond, Sticky: true})

	const writers, batches = 6, 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	acked := map[string]bool{}
	rejected, failed := 0, 0
	client := &http.Client{Timeout: 15 * time.Second}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < batches; j++ {
				key := fmt.Sprintf("r%d_%d", i, j)
				body := fmt.Sprintf(`{"facts":[{"pred":"arc","args":["%s","t",1]}]}`, key)
				resp, err := client.Post(url+"/v1/assert", "application/json", strings.NewReader(body))
				mu.Lock()
				if err != nil {
					// Listener closed under the request: a definite
					// rejection, the fact was never accepted.
					failed++
					mu.Unlock()
					return
				}
				var out map[string]any
				_ = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					acked[key] = true
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					rejected++
				default:
					t.Errorf("assert %s: status %d: %v", key, resp.StatusCode, out)
				}
				mu.Unlock()
			}
		}(i)
	}

	// Let some batches commit, then pull the plug mid-traffic.
	time.Sleep(150 * time.Millisecond)
	exit, stderr := shutdown()
	wg.Wait()
	if exit != exitOK {
		t.Fatalf("shutdown exit %d: %s", exit, stderr)
	}
	if !strings.Contains(stderr, "checkpoint flushed") {
		t.Fatalf("no final checkpoint flush in shutdown log: %s", stderr)
	}
	mu.Lock()
	nAcked := len(acked)
	t.Logf("shutdown race: %d acked, %d shed, %d conn-closed", nAcked, rejected, failed)
	if nAcked == 0 {
		t.Fatal("no assert was acked before shutdown; the race window was empty")
	}
	mu.Unlock()

	// Warm restart: the model is exactly seed + acked facts. The arc
	// count pins the EDB (derived predicates are a function of it), and
	// each acked edge must answer queries.
	faults.Reset()
	url2, shutdown2 := runServeAsync(t, "-checkpoint", ckpt, f)
	code, resp := postJSON(t, url2+"/v1/query", `{"op":"facts","pred":"arc"}`)
	if code != http.StatusOK {
		t.Fatalf("restart query: %d %v", code, resp)
	}
	const seedArcs = 2 // arc(a,b,1), arc(b,c,2) in the shortestPath seed
	if got := resp["count"].(float64); got != float64(seedArcs+nAcked) {
		t.Fatalf("restarted model has %v arcs, want %d seed + %d acked: lost or phantom acks", got, seedArcs, nAcked)
	}
	mu.Lock()
	for key := range acked {
		q := fmt.Sprintf(`{"op":"has","pred":"arc","args":["%s","t"]}`, key)
		if code, resp := postJSON(t, url2+"/v1/query", q); code != http.StatusOK || resp["found"] != true {
			t.Fatalf("acked fact arc(%s, t) lost across restart: %d %v", key, code, resp)
		}
	}
	mu.Unlock()
	if exit, stderr := shutdown2(); exit != exitOK {
		t.Fatalf("second shutdown exit %d: %s", exit, stderr)
	}
}
