package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProgram(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const shortestPath = `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
arc(a, b, 1).
arc(b, c, 2).
`

// halfsum is Example 5.1, whose least fixpoint lies at ω; float64
// saturation makes it converge after ~55 rounds without Epsilon, so the
// -eps test uses it while the divergence tests use the unbounded
// variant below.
const halfsum = `
.cost p/2 : sumreal.
p(b, 1).
p(a, C) :- C ?= halfsum D : p(X, D).
`

// divergent is the ω-limit family of Example 5.1 with an unbounded
// limit: p(a) grows forever, so no finite fixpoint exists at all.
const divergent = `
.cost p/2 : sumreal.
p(b, 1).
p(a, C) :- C ?= sum D : p(X, D).
`

func runMdl(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(context.Background(), args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestSolveAndPrint(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	out, errOut, code := runMdl(t, f)
	if code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "s(a, c, 3).") {
		t.Fatalf("missing s(a,c,3) in output:\n%s", out)
	}
}

func TestQueryFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	out, _, code := runMdl(t, "-query", "s", f)
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "path(") {
		t.Fatalf("-query s must not print path atoms:\n%s", out)
	}
	if !strings.Contains(out, "s(a, b, 1).") {
		t.Fatalf("missing s tuple:\n%s", out)
	}
}

func TestCheckFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	out, _, code := runMdl(t, "-check", f)
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "admissible (monotonic):      true") {
		t.Fatalf("check output:\n%s", out)
	}
	bad := writeProgram(t, "bad.mdl", `
p(b).
q(b).
p(a) :- N ?= count : q(X), N = 1.
q(a) :- N ?= count : p(X), N = 1.
`)
	out, _, code = runMdl(t, "-check", bad)
	if code != exitStatic {
		t.Fatalf("non-admissible check must exit %d, got %d\n%s", exitStatic, code, out)
	}
	if !strings.Contains(out, "reason:") {
		t.Fatalf("missing reason:\n%s", out)
	}
}

func TestStatsFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	_, errOut, code := runMdl(t, "-stats", f)
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut, "rounds=") {
		t.Fatalf("stats missing: %s", errOut)
	}
}

func TestEpsilonFlag(t *testing.T) {
	f := writeProgram(t, "halfsum.mdl", halfsum)
	out, _, code := runMdl(t, "-eps", "1e-9", "-query", "p", f)
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "p(a, 0.99999999") {
		t.Fatalf("halfsum output:\n%s", out)
	}
}

// TestTimeoutDivergence is the acceptance scenario: a deliberately
// non-convergent ω-limit program run under -timeout 1s must exit
// gracefully (code 4) with partial results and a divergence diagnosis
// naming the predicate and group, instead of spinning until MaxRounds.
func TestTimeoutDivergence(t *testing.T) {
	f := writeProgram(t, "divergent.mdl", divergent)
	out, errOut, code := runMdl(t, "-timeout", "1s", f)
	if code != exitEval {
		t.Fatalf("exit %d, want %d\nstderr: %s", code, exitEval, errOut)
	}
	if out != "" {
		t.Fatalf("no model on stdout for a failed solve, got:\n%s", out)
	}
	for _, want := range []string{"diverge", "p(a)", "Epsilon", "partial results", "p(b, 1).", "rounds="} {
		if !strings.Contains(errOut, want) {
			t.Fatalf("stderr missing %q:\n%s", want, errOut)
		}
	}
}

func TestMaxFactsFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	_, errOut, code := runMdl(t, "-max-facts", "1", f)
	if code != exitEval {
		t.Fatalf("exit %d, want %d\nstderr: %s", code, exitEval, errOut)
	}
	if !strings.Contains(errOut, "budget") {
		t.Fatalf("stderr missing budget diagnosis:\n%s", errOut)
	}
}

// TestCanceledContext simulates a SIGINT delivered before evaluation:
// the solve stops with partial results and stats on stderr.
func TestCanceledContext(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb strings.Builder
	code := run(ctx, []string{f}, &out, &errb)
	if code != exitEval {
		t.Fatalf("exit %d, want %d\nstderr: %s", code, exitEval, errb.String())
	}
	for _, want := range []string{"canceled", "rounds="} {
		if !strings.Contains(errb.String(), want) {
			t.Fatalf("stderr missing %q:\n%s", want, errb.String())
		}
	}
}

// TestExitCodes pins the exit-code contract: 1 usage, 2 parse, 3 static
// check, 4 evaluation.
func TestExitCodes(t *testing.T) {
	good := writeProgram(t, "sp.mdl", shortestPath)
	broken := writeProgram(t, "broken.mdl", "p(X :- q(X).")
	negRec := writeProgram(t, "game.mdl", "win(X) :- move(X, Y), not win(Y).\nmove(a, b).\n")
	diverging := writeProgram(t, "divergent.mdl", divergent)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"ok", []string{good}, exitOK},
		{"no args", nil, exitUsage},
		{"unknown flag", []string{"-no-such-flag", good}, exitUsage},
		{"missing file", []string{filepath.Join(t.TempDir(), "nope.mdl")}, exitUsage},
		{"negative eps", []string{"-eps", "-1", good}, exitUsage},
		{"negative max-rounds", []string{"-max-rounds", "-1", good}, exitUsage},
		{"negative max-facts", []string{"-max-facts", "-1", good}, exitUsage},
		{"zero timeout", []string{"-timeout", "0s", good}, exitUsage},
		{"negative timeout", []string{"-timeout", "-1s", good}, exitUsage},
		{"parse error", []string{broken}, exitParse},
		{"static failure", []string{negRec}, exitStatic},
		{"eval divergence", []string{diverging}, exitEval},
		{"eval budget", []string{"-max-facts", "1", good}, exitEval},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, errOut, code := runMdl(t, tc.args...)
			if code != tc.want {
				t.Fatalf("args %v: exit %d, want %d\nstderr: %s", tc.args, code, tc.want, errOut)
			}
		})
	}
}

func TestWFSFallbackFlag(t *testing.T) {
	f := writeProgram(t, "game.mdl", `
win(X) :- move(X, Y), not win(Y).
move(a, b).
`)
	// Rejected without the flag (a failed static check), solved with it.
	_, _, code := runMdl(t, f)
	if code != exitStatic {
		t.Fatalf("negation recursion must fail with exit %d without -wfs-fallback, got %d", exitStatic, code)
	}
	out, _, code := runMdl(t, "-wfs-fallback", f)
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "win(a).") || strings.Contains(out, "win(b).") {
		t.Fatalf("game output:\n%s", out)
	}
}

func TestMultipleFilesAndErrors(t *testing.T) {
	rules := writeProgram(t, "rules.mdl", `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`)
	facts := writeProgram(t, "facts.mdl", "arc(x, y, 4).\n")
	out, _, code := runMdl(t, "-query", "s", rules, facts)
	if code != exitOK || !strings.Contains(out, "s(x, y, 4).") {
		t.Fatalf("multi-file run: exit %d\n%s", code, out)
	}
}

func TestExplainFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	out, _, code := runMdl(t, "-explain", "s(a, c)", f)
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"s(a, c, 3)", "min", "[fact]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	if _, _, code := runMdl(t, "-explain", "s(a, c", f); code != exitUsage {
		t.Fatal("malformed atom must exit 1")
	}
}

func TestNaiveFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	outN, _, code := runMdl(t, "-naive", f)
	if code != exitOK {
		t.Fatalf("exit %d", code)
	}
	outS, _, _ := runMdl(t, f)
	if outN != outS {
		t.Fatalf("strategies disagree:\n%s\nvs\n%s", outN, outS)
	}
}
