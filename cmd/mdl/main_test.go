package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeProgram(t *testing.T, name, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const shortestPath = `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
arc(a, b, 1).
arc(b, c, 2).
`

func runMdl(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb strings.Builder
	code := run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestSolveAndPrint(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	out, errOut, code := runMdl(t, f)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "s(a, c, 3).") {
		t.Fatalf("missing s(a,c,3) in output:\n%s", out)
	}
}

func TestQueryFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	out, _, code := runMdl(t, "-query", "s", f)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "path(") {
		t.Fatalf("-query s must not print path atoms:\n%s", out)
	}
	if !strings.Contains(out, "s(a, b, 1).") {
		t.Fatalf("missing s tuple:\n%s", out)
	}
}

func TestCheckFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	out, _, code := runMdl(t, "-check", f)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "admissible (monotonic):      true") {
		t.Fatalf("check output:\n%s", out)
	}
	bad := writeProgram(t, "bad.mdl", `
p(b).
q(b).
p(a) :- N ?= count : q(X), N = 1.
q(a) :- N ?= count : p(X), N = 1.
`)
	out, _, code = runMdl(t, "-check", bad)
	if code != 1 {
		t.Fatalf("non-admissible check must exit 1, got %d\n%s", code, out)
	}
	if !strings.Contains(out, "reason:") {
		t.Fatalf("missing reason:\n%s", out)
	}
}

func TestStatsFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	_, errOut, code := runMdl(t, "-stats", f)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut, "rounds=") {
		t.Fatalf("stats missing: %s", errOut)
	}
}

func TestEpsilonFlag(t *testing.T) {
	f := writeProgram(t, "halfsum.mdl", `
.cost p/2 : sumreal.
p(b, 1).
p(a, C) :- C ?= halfsum D : p(X, D).
`)
	out, _, code := runMdl(t, "-eps", "1e-9", "-query", "p", f)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "p(a, 0.99999999") {
		t.Fatalf("halfsum output:\n%s", out)
	}
}

func TestWFSFallbackFlag(t *testing.T) {
	f := writeProgram(t, "game.mdl", `
win(X) :- move(X, Y), not win(Y).
move(a, b).
`)
	// Rejected without the flag, solved with it.
	_, _, code := runMdl(t, f)
	if code != 1 {
		t.Fatalf("negation recursion must fail without -wfs-fallback, got %d", code)
	}
	out, _, code := runMdl(t, "-wfs-fallback", f)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "win(a).") || strings.Contains(out, "win(b).") {
		t.Fatalf("game output:\n%s", out)
	}
}

func TestMultipleFilesAndErrors(t *testing.T) {
	rules := writeProgram(t, "rules.mdl", `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`)
	facts := writeProgram(t, "facts.mdl", "arc(x, y, 4).\n")
	out, _, code := runMdl(t, "-query", "s", rules, facts)
	if code != 0 || !strings.Contains(out, "s(x, y, 4).") {
		t.Fatalf("multi-file run: exit %d\n%s", code, out)
	}
	// Missing file.
	if _, _, code := runMdl(t, filepath.Join(t.TempDir(), "nope.mdl")); code != 1 {
		t.Fatalf("missing file must exit 1, got %d", code)
	}
	// No arguments.
	if _, _, code := runMdl(t); code != 2 {
		t.Fatalf("no args must exit 2, got %d", code)
	}
	// Parse error.
	broken := writeProgram(t, "broken.mdl", "p(X :- q(X).")
	if _, errOut, code := runMdl(t, broken); code != 1 || !strings.Contains(errOut, "mdl:") {
		t.Fatalf("parse error must exit 1 with message, got %d: %s", code, errOut)
	}
}

func TestExplainFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	out, _, code := runMdl(t, "-explain", "s(a, c)", f)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"s(a, c, 3)", "min", "[fact]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain output missing %q:\n%s", want, out)
		}
	}
	if _, _, code := runMdl(t, "-explain", "s(a, c", f); code != 1 {
		t.Fatal("malformed atom must exit 1")
	}
}

func TestNaiveFlag(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	outN, _, code := runMdl(t, "-naive", f)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	outS, _, _ := runMdl(t, f)
	if outN != outS {
		t.Fatalf("strategies disagree:\n%s\nvs\n%s", outN, outS)
	}
}
