// The serve subcommand: a long-lived query service over materialized
// models.
//
// Usage:
//
//	mdl serve [flags] program.mdl [more.mdl ...]
//
// Each positional file is served as its own program, named after its
// base name (shortestpath.mdl -> "shortestpath"); with -join all files
// are concatenated into a single program, as the batch CLI does. The
// least model of every program is materialized once at startup (or
// warm-started from a PR-2 snapshot), then concurrent readers query it
// lock-free over HTTP/JSON while asserts extend it through a
// single-writer path. See docs/SERVER.md for the API.
//
// Flags:
//
//	-addr a        listen address (default 127.0.0.1:8317)
//	-join          serve all files concatenated as one program
//	-name n        program name with -join (default: first file's base name)
//	-eps ε         numeric convergence tolerance
//	-max-rounds N  fixpoint round bound per component
//	-max-facts N   derivation budget per solve and per assert batch
//	-parallel N    evaluation workers per solve (default: one per CPU;
//	               1 = the sequential engine; output is identical)
//	-executor x    rule-body execution backend: "stream" (lazy operator
//	               pipelines, low allocation) or "tuple" (the reference
//	               interpreter); output is identical either way
//	-plan x        rule planner: "syntactic" or "cost" (statistics-driven;
//	               see docs/PLANNER.md); output is identical either way
//	-timeout d     wall-clock budget per solve and per assert batch
//	-trace         record provenance for /v1/explain (default true)
//	-checkpoint f  warm-start from f when it exists; flush a final
//	               snapshot to f on graceful shutdown (single program only)
//	-resume f      warm-start from f, which must exist (single program only)
//	-wal DIR       durable write-ahead log: every acked assert batch is
//	               appended (and fsynced per -wal-fsync) under DIR/<name>/
//	               before the ack, and replayed past the checkpoint
//	               watermark on restart — acked batches survive crashes
//	-wal-fsync p   fsync policy: always (per record), batch (one fsync
//	               per group-commit drain; default) or none (OS-paced;
//	               a power cut may lose recently acked batches)
//	-wal-segment N rotate log segments at N bytes (default 64 MiB)
//	-assert-queue N   commit-queue depth per program; full queue sheds
//	                  asserts with 429 (default 64)
//	-max-inflight N   concurrent reads per program before shedding with
//	                  503 (0 = unlimited)
//	-drain-timeout d  shutdown budget for queued assert batches before
//	                  in-flight commits are canceled (default 10s)
//	-log-format f  structured request-log format: text (default) or json
//	-slow-request d  log requests slower than d at warn level (0 = off)
//	-pprof-addr a  serve net/http/pprof on its own listener at address a
//	-trace-dir DIR   also write every finished request trace as a Chrome
//	                 trace-event JSON file under DIR (one per trace)
//	-trace-buffer N  flight-recorder capacity: the N most recent request
//	                 traces are retained for /debug/traces (default 64)
//
// SIGINT/SIGTERM shut the server down gracefully: admission closes
// (/readyz flips to 503, new asserts shed), queued assert batches
// drain — every batch is acked or rejected, never dropped — in-flight
// requests finish, and with -checkpoint set a final snapshot is
// flushed so the next start resumes the accumulated model. Exit codes
// match the batch CLI: 0 clean shutdown, 1 usage, 2 parse, 3 static,
// 4 evaluation failure at startup, 5 checkpoint/restore failure, 6 an
// unusable write-ahead log (mid-log corruption, or a log whose records
// disagree with the checkpoint watermark); a torn tail is repaired
// silently, corruption anywhere else refuses to start rather than
// serving a model missing acked history.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/datalog"
	"repro/internal/server"
	"repro/internal/wal"
)

// serveListening, when set (by tests), receives the bound address once
// the server is accepting connections.
var serveListening func(addr net.Addr)

func runServe(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdl serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8317", "listen address")
	join := fs.Bool("join", false, "serve all files concatenated as one program")
	name := fs.String("name", "", "program name with -join")
	eps := fs.Float64("eps", 0, "numeric convergence tolerance")
	maxRounds := fs.Int("max-rounds", 0, "fixpoint round bound per component")
	maxFacts := fs.Int64("max-facts", 0, "derivation budget per solve and per assert batch (0 = unlimited)")
	parallel := fs.Int("parallel", 0, "evaluation workers per solve (default one per CPU; 1 = sequential)")
	executor := fs.String("executor", "", `execution backend: "stream" or "tuple"`)
	plan := fs.String("plan", "", `rule planner: "syntactic" or "cost"`)
	timeout := fs.Duration("timeout", 0, "wall-clock budget per solve and per assert batch (0 = none)")
	trace := fs.Bool("trace", true, "record provenance for /v1/explain")
	ckptPath := fs.String("checkpoint", "", "warm-start from this snapshot when present; flush to it on shutdown")
	resumePath := fs.String("resume", "", "warm-start from this snapshot (must exist)")
	walDir := fs.String("wal", "", "write-ahead log directory (empty = no durability beyond checkpoints)")
	walFsync := fs.String("wal-fsync", "", "wal fsync policy: always, batch (default) or none")
	walSegment := fs.Int64("wal-segment", 0, "wal segment rotation size in bytes (default 64 MiB)")
	assertQueue := fs.Int("assert-queue", 0, "commit-queue depth per program; a full queue sheds asserts with 429 (default 64)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent reads per program before shedding with 503 (0 = unlimited)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "shutdown budget for draining queued assert batches")
	logFormat := fs.String("log-format", "text", "structured request-log format: text or json")
	slowReq := fs.Duration("slow-request", 0, "log requests slower than this threshold at warn level (0 = off)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (separate listener)")
	traceDir := fs.String("trace-dir", "", "also write each finished request trace as a Chrome trace-event JSON file under this directory")
	traceBuffer := fs.Int("trace-buffer", 0, "flight-recorder capacity: recent request traces retained for /debug/traces (default 64)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	usage := func(msg string) int {
		fmt.Fprintln(stderr, "mdl serve:", msg)
		return exitUsage
	}
	if *eps < 0 {
		return usage("-eps must be ≥ 0")
	}
	if *maxRounds < 0 {
		return usage("-max-rounds must be ≥ 0")
	}
	if *maxFacts < 0 {
		return usage("-max-facts must be ≥ 0")
	}
	if *timeout < 0 {
		return usage("-timeout must be ≥ 0")
	}
	parallelSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			parallelSet = true
		}
	})
	if parallelSet && *parallel < 1 {
		return usage("-parallel must be ≥ 1")
	}
	exe, err := datalog.ParseExecutor(*executor)
	if err != nil {
		return usage(`-executor must be "stream" or "tuple"`)
	}
	pln, err := datalog.ParsePlan(*plan)
	if err != nil {
		return usage(`-plan must be "syntactic" or "cost"`)
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: mdl serve [flags] program.mdl ...")
		fs.PrintDefaults()
		return exitUsage
	}
	if *name != "" && !*join {
		return usage("-name only applies with -join")
	}
	if *logFormat != "text" && *logFormat != "json" {
		return usage("-log-format must be text or json")
	}
	if *slowReq < 0 {
		return usage("-slow-request must be ≥ 0")
	}
	if *assertQueue < 0 {
		return usage("-assert-queue must be ≥ 0")
	}
	if *maxInflight < 0 {
		return usage("-max-inflight must be ≥ 0")
	}
	if *drainTimeout < 0 {
		return usage("-drain-timeout must be ≥ 0")
	}
	if *walDir == "" && (*walFsync != "" || *walSegment != 0) {
		return usage("-wal-fsync/-wal-segment only apply with -wal")
	}
	if *walSegment < 0 {
		return usage("-wal-segment must be ≥ 0")
	}
	fsyncPolicy, err := server.ParseFsyncPolicy(*walFsync)
	if err != nil {
		return usage("-wal-fsync: " + err.Error())
	}
	if *traceBuffer < 0 {
		return usage("-trace-buffer must be ≥ 0")
	}

	opts := datalog.Options{
		Epsilon:     *eps,
		MaxRounds:   *maxRounds,
		MaxFacts:    *maxFacts,
		MaxDuration: *timeout,
		Parallelism: *parallel,
		Executor:    exe,
		Plan:        pln,
		Trace:       *trace,
	}
	specs, code := serveSpecs(fs.Args(), *join, *name, opts, stderr)
	if code != exitOK {
		return code
	}
	if (*ckptPath != "" || *resumePath != "") && len(specs) != 1 {
		return usage("-checkpoint/-resume apply to a single program; use -join or pass one file")
	}
	if len(specs) == 1 {
		specs[0].Checkpoint = *ckptPath
		specs[0].Resume = *resumePath
	}

	// Logging: json replaces the plain Logf lines with structured slog
	// records (one per request plus notable events); text keeps the
	// human lines and adds slog request records alongside them.
	cfg := server.Config{
		RequestTimeout:  *timeout,
		SlowRequest:     *slowReq,
		AssertQueue:     *assertQueue,
		MaxInflight:     *maxInflight,
		WALDir:          *walDir,
		WALFsync:        fsyncPolicy,
		WALSegmentBytes: *walSegment,
		TraceDir:        *traceDir,
		TraceBuffer:     *traceBuffer,
	}
	var logf func(format string, a ...any)
	if *logFormat == "json" {
		logger := slog.New(slog.NewJSONHandler(stderr, nil))
		cfg.Logger = logger
		logf = func(format string, a ...any) { logger.Info(fmt.Sprintf(format, a...)) }
	} else {
		cfg.Logger = slog.New(slog.NewTextHandler(stderr, nil))
		logf = func(format string, a ...any) { fmt.Fprintf(stderr, "mdl serve: "+format+"\n", a...) }
		cfg.Logf = logf
	}
	if *pprofAddr != "" {
		closer, perr := startPprof(*pprofAddr, stderr)
		if perr != nil {
			fmt.Fprintln(stderr, "mdl serve:", perr)
			return exitUsage
		}
		defer closer.Close()
	}
	s, err := server.New(specs, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "mdl serve:", err)
		if errors.Is(err, datalog.ErrParse) {
			return exitParse
		}
		return exitStatic
	}
	if err := s.Materialize(ctx); err != nil {
		fmt.Fprintln(stderr, "mdl serve:", err)
		if errors.Is(err, wal.ErrCorrupt) || errors.Is(err, wal.ErrFingerprint) {
			return exitWAL
		}
		if errors.Is(err, datalog.ErrSnapshotCorrupt) || errors.Is(err, datalog.ErrSnapshotVersion) ||
			errors.Is(err, datalog.ErrFingerprintMismatch) || errors.Is(err, os.ErrNotExist) {
			return exitCheckpoint
		}
		return exitEval
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "mdl serve:", err)
		return exitUsage
	}
	logf("serving on http://%s", ln.Addr())
	if serveListening != nil {
		serveListening(ln.Addr())
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		// Ordered teardown: close admission first (new asserts shed,
		// /readyz flips to 503), run the commit queues dry so every
		// batch already accepted is acked or rejected, then close the
		// listener once the waiting handlers have their outcomes.
		s.BeginDrain()
		if !s.Drain(*drainTimeout) {
			logf("drain deadline (%v) exceeded; in-flight commits canceled", *drainTimeout)
		}
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shCtx)
	}()
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "mdl serve:", err)
		return exitEval
	}
	<-shutdownDone
	// The committers are done: flush a final snapshot so the accumulated
	// model (initial facts plus every acked assert) survives the restart.
	if err := s.FlushCheckpoints(); err != nil {
		fmt.Fprintln(stderr, "mdl serve:", err)
		return exitCheckpoint
	}
	s.Close()
	logf("shut down cleanly")
	return exitOK
}

// serveSpecs builds the program specs from the positional files.
func serveSpecs(files []string, join bool, name string, opts datalog.Options, stderr io.Writer) ([]server.ProgramSpec, int) {
	if join {
		var src strings.Builder
		for _, f := range files {
			b, err := os.ReadFile(f)
			if err != nil {
				fmt.Fprintln(stderr, "mdl serve:", err)
				return nil, exitUsage
			}
			src.Write(b)
			src.WriteByte('\n')
		}
		if name == "" {
			name = programName(files[0])
		}
		return []server.ProgramSpec{{Name: name, Source: src.String(), Options: opts}}, exitOK
	}
	specs := make([]server.ProgramSpec, 0, len(files))
	seen := map[string]bool{}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(stderr, "mdl serve:", err)
			return nil, exitUsage
		}
		n := programName(f)
		if seen[n] {
			fmt.Fprintf(stderr, "mdl serve: duplicate program name %q (use -join to serve the files as one program)\n", n)
			return nil, exitUsage
		}
		seen[n] = true
		specs = append(specs, server.ProgramSpec{Name: n, Source: string(b), Options: opts})
	}
	return specs, exitOK
}

// programName derives a service name from a file path.
func programName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}
