package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a strings.Builder safe for the concurrent writes the
// server's request log makes from handler goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncBuffer) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncBuffer) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// runServeAsync starts runServe in a goroutine against a random port
// and returns the base URL once it is accepting connections, plus a
// shutdown function that cancels the context and returns the exit code.
func runServeAsync(t *testing.T, args ...string) (string, func() (int, string)) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	serveListening = func(a net.Addr) { addrc <- a }
	t.Cleanup(func() { serveListening = nil })

	var errb syncBuffer
	codec := make(chan int, 1)
	go func() {
		var out syncBuffer
		codec <- runServe(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &out, &errb)
	}()
	select {
	case a := <-addrc:
		return "http://" + a.String(), func() (int, string) {
			cancel()
			select {
			case code := <-codec:
				return code, errb.String()
			case <-time.After(10 * time.Second):
				t.Fatal("server did not shut down")
				return -1, ""
			}
		}
	case code := <-codec:
		cancel()
		t.Fatalf("server exited immediately with code %d: %s", code, errb.String())
		return "", nil
	case <-time.After(10 * time.Second):
		cancel()
		t.Fatal("server did not start listening")
		return "", nil
	}
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestServeUsageErrors(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	g := writeProgram(t, "other.mdl", ".cost w/2 : minreal.\n")
	cases := []struct {
		name string
		args []string
	}{
		{"no files", nil},
		{"name without join", []string{"-name", "x", f}},
		{"negative eps", []string{"-eps", "-1", f}},
		{"negative max-rounds", []string{"-max-rounds", "-1", f}},
		{"negative max-facts", []string{"-max-facts", "-1", f}},
		{"negative timeout", []string{"-timeout", "-1s", f}},
		{"negative assert-queue", []string{"-assert-queue", "-1", f}},
		{"negative max-inflight", []string{"-max-inflight", "-1", f}},
		{"negative drain-timeout", []string{"-drain-timeout", "-1s", f}},
		{"checkpoint with several programs", []string{"-checkpoint", "c.ckpt", f, g}},
		{"resume with several programs", []string{"-resume", "c.ckpt", f, g}},
		{"missing file", []string{filepath.Join(t.TempDir(), "nope.mdl")}},
		{"duplicate program names", []string{f, f}},
		{"wal-fsync without wal", []string{"-wal-fsync", "batch", f}},
		{"wal-segment without wal", []string{"-wal-segment", "1024", f}},
		{"bad wal-fsync policy", []string{"-wal", t.TempDir(), "-wal-fsync", "sometimes", f}},
		{"negative wal-segment", []string{"-wal", t.TempDir(), "-wal-segment", "-1", f}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			code := runServe(context.Background(), tc.args, &out, &errb)
			if code != exitUsage {
				t.Fatalf("exit %d, want %d (usage); stderr: %s", code, exitUsage, errb.String())
			}
		})
	}
}

func TestServeStartupErrorCodes(t *testing.T) {
	bad := writeProgram(t, "bad.mdl", "p(X :- q(X).\n")
	var out, errb strings.Builder
	if code := runServe(context.Background(), []string{bad}, &out, &errb); code != exitParse {
		t.Fatalf("parse error: exit %d, stderr %s", code, errb.String())
	}

	// Aggregation through negation without -wfs-fallback fails the
	// static checks.
	game := writeProgram(t, "game.mdl", `
.cost wins/1 : countnat.
win(X)  :- move(X, Y), not win(Y).
wins(N) :- N = count : win(X).
move(p1, p2).
`)
	errb.Reset()
	if code := runServe(context.Background(), []string{game}, &out, &errb); code != exitStatic {
		t.Fatalf("static error: exit %d, stderr %s", code, errb.String())
	}

	// -resume with a missing snapshot is a checkpoint failure.
	f := writeProgram(t, "sp.mdl", shortestPath)
	errb.Reset()
	code := runServe(context.Background(), []string{"-resume", filepath.Join(t.TempDir(), "nope.ckpt"), f}, &out, &errb)
	if code != exitCheckpoint {
		t.Fatalf("missing resume snapshot: exit %d, stderr %s", code, errb.String())
	}

	// An unreadable write-ahead log gets its own exit code so operators
	// can tell "restore the log" from "restore the checkpoint".
	walRoot := t.TempDir()
	if err := os.MkdirAll(filepath.Join(walRoot, "sp"), 0o755); err != nil {
		t.Fatal(err)
	}
	rot := filepath.Join(walRoot, "sp", "wal-00000000000000000001.seg")
	if err := os.WriteFile(rot, []byte(strings.Repeat("x", 100)), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	code = runServe(context.Background(), []string{"-wal", walRoot, f}, &out, &errb)
	if code != exitWAL {
		t.Fatalf("corrupt wal: exit %d, want %d; stderr %s", code, exitWAL, errb.String())
	}
}

// TestServeLifecycle runs the binary-level happy path: start, serve
// queries and asserts over HTTP, shut down gracefully on context
// cancellation with a flushed checkpoint, then restart warm.
func TestServeLifecycle(t *testing.T) {
	f := writeProgram(t, "sp.mdl", shortestPath)
	ckpt := filepath.Join(t.TempDir(), "sp.ckpt")

	url, shutdown := runServeAsync(t, "-checkpoint", ckpt, f)

	// The program is named after its file.
	code, resp := postJSON(t, url+"/v1/query", `{"program":"sp","op":"cost","pred":"s","args":["a","c"]}`)
	if code != http.StatusOK || resp["cost"] != 3.0 {
		t.Fatalf("query: %d %v", code, resp)
	}
	code, resp = postJSON(t, url+"/v1/assert", `{"facts":[{"pred":"arc","args":["c","d",1]}]}`)
	if code != http.StatusOK {
		t.Fatalf("assert: %d %v", code, resp)
	}
	code, resp = postJSON(t, url+"/v1/query", `{"op":"cost","pred":"s","args":["a","d"]}`)
	if code != http.StatusOK || resp["cost"] != 4.0 {
		t.Fatalf("query after assert: %d %v", code, resp)
	}

	exit, stderr := shutdown()
	if exit != exitOK {
		t.Fatalf("shutdown exit %d: %s", exit, stderr)
	}
	if !strings.Contains(stderr, "checkpoint flushed") || !strings.Contains(stderr, "shut down cleanly") {
		t.Fatalf("shutdown log: %s", stderr)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint missing after shutdown: %v", err)
	}

	// Restart over the same checkpoint: warm start, asserted edge intact.
	url2, shutdown2 := runServeAsync(t, "-checkpoint", ckpt, f)
	code, resp = postJSON(t, url2+"/v1/query", `{"op":"cost","pred":"s","args":["a","d"]}`)
	if code != http.StatusOK || resp["cost"] != 4.0 {
		t.Fatalf("warm restart lost the asserted edge: %d %v", code, resp)
	}
	if exit, stderr := shutdown2(); exit != exitOK {
		t.Fatalf("second shutdown exit %d: %s", exit, stderr)
	}
}

// TestServeJoin serves two files as one joined program under an
// explicit name.
func TestServeJoin(t *testing.T) {
	rules := writeProgram(t, "rules.mdl", `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`)
	facts := writeProgram(t, "facts.mdl", "arc(a, b, 1).\narc(b, c, 2).\n")

	url, shutdown := runServeAsync(t, "-join", "-name", "graph", rules, facts)
	code, resp := postJSON(t, url+"/v1/query", `{"program":"graph","op":"cost","pred":"s","args":["a","c"]}`)
	if code != http.StatusOK || resp["cost"] != 3.0 {
		t.Fatalf("joined query: %d %v", code, resp)
	}
	if exit, stderr := shutdown(); exit != exitOK {
		t.Fatalf("shutdown exit %d: %s", exit, stderr)
	}
}

// TestServeMultiProgramRouting serves two files as two programs and
// routes requests by name.
func TestServeMultiProgramRouting(t *testing.T) {
	sp := writeProgram(t, "sp.mdl", shortestPath)
	w := writeProgram(t, "weights.mdl", ".cost w/2 : minreal.\nw(a, 1).\n")

	url, shutdown := runServeAsync(t, sp, w)
	code, resp := postJSON(t, url+"/v1/query", `{"program":"weights","op":"cost","pred":"w","args":["a"]}`)
	if code != http.StatusOK || resp["cost"] != 1.0 {
		t.Fatalf("weights query: %d %v", code, resp)
	}
	code, resp = postJSON(t, url+"/v1/query", `{"program":"sp","op":"has","pred":"s","args":["a","c"]}`)
	if code != http.StatusOK || resp["found"] != true {
		t.Fatalf("sp query: %d %v", code, resp)
	}
	// Unnamed requests are ambiguous with two programs.
	code, _ = postJSON(t, url+"/v1/query", `{"op":"has","pred":"s","args":["a","c"]}`)
	if code != http.StatusNotFound {
		t.Fatalf("ambiguous request: %d", code)
	}
	if exit, stderr := shutdown(); exit != exitOK {
		t.Fatalf("shutdown exit %d: %s", exit, stderr)
	}
}
