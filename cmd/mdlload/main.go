// mdlload is an open-loop load generator for the mdl serve tier. It
// drives a mixed query/assert workload at a fixed arrival rate —
// requests are launched on schedule whether or not earlier ones have
// returned, so a saturated server accumulates queueing delay and sheds
// instead of silently slowing the generator down (coordinated-omission
// free). It records per-class latency quantiles and error/shed rates,
// scrapes the server's commit batch-size histogram, and merges the
// report into a BENCH_<date>.json alongside scripts/bench.sh results.
//
// Usage:
//
//	mdlload [flags]
//
//	-url u          base server URL (default http://127.0.0.1:8317)
//	-program n      program name to target (default: the server's single program)
//	-duration d     run length (default 10s)
//	-rate r         request arrivals per second (default 200)
//	-assert-frac f  fraction of requests that are asserts (default 0.1)
//	-timeout d      per-request client timeout (default 5s)
//	-label s        phase label recorded in the report (default "steady")
//	-out f          BENCH json to merge the report into ("" = stdout only)
//
// Exit codes: 0 success, 1 usage or an unreachable server.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdlload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := loadConfig{}
	fs.StringVar(&cfg.BaseURL, "url", "http://127.0.0.1:8317", "base server URL")
	fs.StringVar(&cfg.Program, "program", "", "program name to target")
	fs.DurationVar(&cfg.Duration, "duration", 10*time.Second, "run length")
	fs.Float64Var(&cfg.Rate, "rate", 200, "request arrivals per second (open loop)")
	fs.Float64Var(&cfg.AssertFrac, "assert-frac", 0.1, "fraction of requests that are asserts")
	fs.DurationVar(&cfg.Timeout, "timeout", 5*time.Second, "per-request client timeout")
	fs.StringVar(&cfg.Label, "label", "steady", "phase label recorded in the report")
	out := fs.String("out", "", "BENCH json file to merge the report into (empty = stdout only)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if cfg.Rate <= 0 || cfg.Duration <= 0 || cfg.AssertFrac < 0 || cfg.AssertFrac > 1 {
		fmt.Fprintln(stderr, "mdlload: -rate and -duration must be > 0 and -assert-frac in [0, 1]")
		return 1
	}

	rep, err := runLoad(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "mdlload:", err)
		return 1
	}
	if err := emitReport(rep, *out, stdout); err != nil {
		fmt.Fprintln(stderr, "mdlload:", err)
		return 1
	}
	fmt.Fprintf(stderr, "mdlload: %s (wal-fsync=%s gomaxprocs=%d): %d sent; query p50=%.1fms p99=%.1fms shed=%d err=%d; assert p50=%.1fms p99=%.1fms shed=%d err=%d; mean commit batch %.2f\n",
		rep.Label, rep.WALFsync, rep.GoMaxProcs, rep.Sent,
		rep.Query.P50Ms, rep.Query.P99Ms, rep.Query.Shed, rep.Query.Errors,
		rep.Assert.P50Ms, rep.Assert.P99Ms, rep.Assert.Shed, rep.Assert.Errors,
		rep.CommitBatchMean)
	return 0
}
