package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// loadConfig parameterizes one open-loop phase.
type loadConfig struct {
	BaseURL    string
	Program    string
	Duration   time.Duration
	Rate       float64 // arrivals per second
	AssertFrac float64
	Timeout    time.Duration
	Label      string
}

// classStats summarizes one request class (queries or asserts).
type classStats struct {
	Count  int     `json:"count"`
	OK     int     `json:"ok"`
	Shed   int     `json:"shed"`   // 429/503 with Retry-After: load shedding, not failure
	Errors int     `json:"errors"` // transport errors and unexpected statuses
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// loadReport is one phase's record, merged under the "loadgen" key of
// BENCH_<date>.json. WALFsync and GoMaxProcs pin down the durability
// and CPU configuration the numbers were measured under — an fsync per
// drain is a real cost, so reports without it aren't comparable.
type loadReport struct {
	Label           string     `json:"label"`
	URL             string     `json:"url"`
	Program         string     `json:"program,omitempty"`
	WALFsync        string     `json:"wal_fsync"`
	GoMaxProcs      int        `json:"gomaxprocs"`
	DurationSec     float64    `json:"duration_sec"`
	TargetRate      float64    `json:"target_rate"`
	AchievedRate    float64    `json:"achieved_rate"`
	Sent            int        `json:"sent"`
	Query           classStats `json:"query"`
	Assert          classStats `json:"assert"`
	CommitBatchMean float64    `json:"commit_batch_mean,omitempty"`
	CommitBatchMax  float64    `json:"commit_batch_max_bucket,omitempty"`
}

// sample is one completed request's outcome.
type sample struct {
	assert bool
	ms     float64
	status int // 0 = transport error
}

// runLoad drives the configured phase and aggregates the samples.
func runLoad(cfg loadConfig) (*loadReport, error) {
	client := &http.Client{Timeout: cfg.Timeout}
	if err := waitReady(client, cfg.BaseURL); err != nil {
		return nil, err
	}

	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	// Deterministic request mix: every k-th arrival is an assert.
	assertEvery := 0
	if cfg.AssertFrac > 0 {
		assertEvery = int(1 / cfg.AssertFrac)
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		samples []sample
	)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	sent := 0
	for now := start; now.Before(deadline); now = <-tick.C {
		seq := sent
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			if assertEvery > 0 && seq%assertEvery == assertEvery-1 {
				record(doAssert(client, cfg, seq))
			} else {
				record(doQuery(client, cfg, seq))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &loadReport{
		Label:        cfg.Label,
		URL:          cfg.BaseURL,
		Program:      cfg.Program,
		WALFsync:     scrapeWALFsync(client, cfg.BaseURL, cfg.Program),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		DurationSec:  elapsed.Seconds(),
		TargetRate:   cfg.Rate,
		AchievedRate: float64(sent) / elapsed.Seconds(),
		Sent:         sent,
	}
	var qms, ams []float64
	for _, s := range samples {
		cs, lat := &rep.Query, &qms
		if s.assert {
			cs, lat = &rep.Assert, &ams
		}
		cs.Count++
		switch {
		case s.status == http.StatusOK:
			cs.OK++
			*lat = append(*lat, s.ms)
		case s.status == http.StatusTooManyRequests || s.status == http.StatusServiceUnavailable:
			cs.Shed++
		default:
			cs.Errors++
		}
	}
	fillQuantiles(&rep.Query, qms)
	fillQuantiles(&rep.Assert, ams)
	rep.CommitBatchMean, rep.CommitBatchMax = scrapeCommitBatch(client, cfg.BaseURL, cfg.Program)
	return rep, nil
}

// waitReady polls /readyz briefly so a just-started server doesn't
// count startup as errors.
func waitReady(client *http.Client, base string) error {
	var last error
	for i := 0; i < 50; i++ {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Errorf("readyz: HTTP %d", resp.StatusCode)
		} else {
			last = err
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("server not ready: %w", last)
}

func doQuery(client *http.Client, cfg loadConfig, seq int) sample {
	// Rotate through the read ops the serve tier offers so the
	// generator exercises point lookups and scans alike.
	var body string
	switch seq % 3 {
	case 0:
		body = `{"op":"cost","pred":"s","args":["a","d"]}`
	case 1:
		body = `{"op":"has","pred":"s","args":["a","d"]}`
	default:
		body = `{"op":"facts","pred":"arc"}`
	}
	return post(client, cfg, "/v1/query", body, false)
}

func doAssert(client *http.Client, cfg loadConfig, seq int) sample {
	// Unique monotone facts: each assert extends the graph with a fresh
	// edge, so every batch changes the model and commits do real work.
	body := fmt.Sprintf(`{"facts":[{"pred":"arc","args":["ld%d","ld%d",1]}]}`, seq, seq+1)
	return post(client, cfg, "/v1/assert", body, true)
}

func post(client *http.Client, cfg loadConfig, path, body string, assert bool) sample {
	if cfg.Program != "" {
		body = `{"program":"` + cfg.Program + `",` + body[1:]
	}
	start := time.Now()
	resp, err := client.Post(cfg.BaseURL+path, "application/json", strings.NewReader(body))
	s := sample{assert: assert, ms: float64(time.Since(start).Nanoseconds()) / 1e6}
	if err != nil {
		return s
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.status = resp.StatusCode
	return s
}

// fillQuantiles computes latency quantiles over the OK samples.
func fillQuantiles(cs *classStats, ms []float64) {
	if len(ms) == 0 {
		return
	}
	sort.Float64s(ms)
	at := func(q float64) float64 {
		i := int(q * float64(len(ms)-1))
		return ms[i]
	}
	cs.P50Ms, cs.P90Ms, cs.P99Ms = at(0.50), at(0.90), at(0.99)
	cs.MaxMs = ms[len(ms)-1]
}

// scrapeCommitBatch reads the server's Prometheus exposition and
// returns the mean commit batch size plus the largest non-empty
// histogram bucket — direct evidence of group commit under load.
func scrapeCommitBatch(client *http.Client, base, program string) (mean, maxBucket float64) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, 0
	}
	defer resp.Body.Close()
	var sum, count float64
	var prevCum float64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "mdl_commit_batch_size") {
			continue
		}
		if program != "" && !strings.Contains(line, `program="`+program+`"`) {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(line, "mdl_commit_batch_size_sum"):
			sum += v
		case strings.HasPrefix(line, "mdl_commit_batch_size_count"):
			count += v
		case strings.HasPrefix(line, "mdl_commit_batch_size_bucket"):
			if le := leBound(line); le > 0 && v > prevCum {
				maxBucket = le
			}
			prevCum = v
		}
	}
	if count > 0 {
		mean = sum / count
	}
	return mean, maxBucket
}

// scrapeWALFsync asks /v1/program which durability mode the target is
// running: the configured fsync policy when a write-ahead log is open,
// "off" when acks are memory-only.
func scrapeWALFsync(client *http.Client, base, program string) string {
	url := base + "/v1/program"
	if program != "" {
		url += "?name=" + program
	}
	resp, err := client.Get(url)
	if err != nil {
		return "off"
	}
	defer resp.Body.Close()
	var doc struct {
		Programs []struct {
			WAL *struct {
				Fsync string `json:"fsync"`
			} `json:"wal"`
		} `json:"programs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return "off"
	}
	for _, p := range doc.Programs {
		if p.WAL != nil {
			return p.WAL.Fsync
		}
	}
	return "off"
}

// leBound extracts the le="..." bound from a histogram bucket line.
func leBound(line string) float64 {
	i := strings.Index(line, `le="`)
	if i < 0 {
		return 0
	}
	rest := line[i+4:]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		return 0 // +Inf bucket
	}
	return v
}

// emitReport prints the report and, when out is set, merges it into the
// BENCH json (appending to any "loadgen" list already there, preserving
// scripts/bench.sh results in the same file).
func emitReport(rep *loadReport, out string, stdout io.Writer) error {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if out == "" {
		return nil
	}
	doc := map[string]any{}
	if b, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			return fmt.Errorf("merging into %s: %w", out, err)
		}
	} else {
		doc["date"] = time.Now().UTC().Format(time.RFC3339)
		doc["go"] = runtime.Version()
		doc["gomaxprocs"] = runtime.GOMAXPROCS(0)
	}
	runs, _ := doc["loadgen"].([]any)
	doc["loadgen"] = append(runs, rep)
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(b, '\n'), 0o644)
}
