package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

const shortestPath = `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
arc(a, b, 1).
arc(b, c, 2).
arc(a, d, 4).
`

func startTarget(t *testing.T) string {
	t.Helper()
	s, err := server.New([]server.ProgramSpec{{Name: "sp", Source: shortestPath}}, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestRunLoadAgainstLiveServer drives a short mixed phase against a
// real server and checks the report is coherent: requests were sent,
// queries and asserts both completed, quantiles are populated, and the
// commit batch-size scrape found the histogram.
func TestRunLoadAgainstLiveServer(t *testing.T) {
	url := startTarget(t)
	rep, err := runLoad(loadConfig{
		BaseURL:    url,
		Duration:   500 * time.Millisecond,
		Rate:       200,
		AssertFrac: 0.25,
		Timeout:    5 * time.Second,
		Label:      "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent < 10 {
		t.Fatalf("sent only %d requests in 500ms at 200/s", rep.Sent)
	}
	if rep.Query.OK == 0 || rep.Assert.OK == 0 {
		t.Fatalf("no successful traffic: query %+v assert %+v", rep.Query, rep.Assert)
	}
	if rep.Query.Errors > 0 || rep.Assert.Errors > 0 {
		t.Fatalf("hard errors against a healthy server: query %+v assert %+v", rep.Query, rep.Assert)
	}
	if rep.Query.P50Ms <= 0 || rep.Query.P99Ms < rep.Query.P50Ms {
		t.Fatalf("incoherent quantiles: %+v", rep.Query)
	}
	if rep.CommitBatchMean < 1 {
		t.Fatalf("commit batch histogram not scraped: mean %v", rep.CommitBatchMean)
	}
}

// TestEmitReportMergesBenchFile checks that reports append under the
// "loadgen" key without clobbering existing bench.sh content.
func TestEmitReportMergesBenchFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	seed := `{"date":"2026-08-07T00:00:00Z","benchmarks":[{"name":"BenchmarkSolve","ns_per_op":42}]}`
	if err := os.WriteFile(out, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	var sink strings.Builder
	for _, label := range []string{"steady", "overload"} {
		if err := emitReport(&loadReport{Label: label, Sent: 1}, out, &sink); err != nil {
			t.Fatal(err)
		}
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("merged file is not valid json: %v\n%s", err, b)
	}
	if _, ok := doc["benchmarks"]; !ok {
		t.Fatal("merge clobbered the existing benchmarks key")
	}
	runs, ok := doc["loadgen"].([]any)
	if !ok || len(runs) != 2 {
		t.Fatalf("loadgen runs: %v", doc["loadgen"])
	}
	first := runs[0].(map[string]any)
	if first["label"] != "steady" {
		t.Fatalf("first run label: %v", first["label"])
	}
}

// TestRunUsageErrors pins the flag validation.
func TestRunUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-rate", "0"}, &out, &errb); code != 1 {
		t.Fatalf("zero rate: exit %d", code)
	}
	if code := run([]string{"-assert-frac", "2"}, &out, &errb); code != 1 {
		t.Fatalf("assert-frac > 1: exit %d", code)
	}
	if code := run([]string{"-badflag"}, &out, &errb); code != 1 {
		t.Fatalf("unknown flag: exit %d", code)
	}
}
