// Command experiments regenerates every experiment in EXPERIMENTS.md:
// the Figure 1 aggregate catalog and each of the paper's worked examples
// and semantic comparisons (Ross & Sagiv, PODS 1992), with timings of the
// deductive engine against the direct algorithmic baselines.
//
// Usage:
//
//	experiments [-quick] [-run E3]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "smaller problem sizes")
	runSel := flag.String("run", "", "run only the experiment with this id (e.g. E3)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.List() {
			fmt.Printf("%-4s %s\n", e[0], e[1])
		}
		return
	}
	if err := experiments.Run(os.Stdout, experiments.Config{Quick: *quick, Only: *runSel}); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
