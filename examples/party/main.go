// Party invitations (Ross & Sagiv, PODS 1992, Example 4.3): guest X
// attends once at least K(X) acquaintances are committed. The count
// aggregate sits inside the recursion; the comparison "N >= K" stays
// monotone because K comes from the database, not from the recursion.
// Works on cyclic acquaintance graphs, where modular stratification
// fails.
//
// Run with:
//
//	go run ./examples/party
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/datalog"
)

const program = `
.cost requires/2 : countnat.

coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
kc(X, Y)  :- knows(X, Y), coming(Y).
`

func main() {
	p, err := datalog.Load(program, datalog.Options{})
	if err != nil {
		log.Fatal(err)
	}

	needs := func(x string, k int) datalog.Fact {
		return datalog.NewFact("requires", datalog.Sym(x), datalog.Num(float64(k)))
	}
	knows := func(x, y string) datalog.Fact {
		return datalog.NewFact("knows", datalog.Sym(x), datalog.Sym(y))
	}

	// The acquaintance graph is cyclic (dana->alice->dana among others);
	// erin and frank demand each other — the collective-decision case the
	// paper excludes stays home.
	guests := map[string]int{
		"alice": 0, "bob": 1, "carol": 2, "dana": 1, "erin": 1, "frank": 1,
	}
	facts := []datalog.Fact{
		knows("bob", "alice"),
		knows("carol", "alice"), knows("carol", "bob"),
		knows("dana", "carol"),
		knows("alice", "dana"),
		knows("erin", "frank"), knows("frank", "erin"),
	}
	for g, k := range guests {
		facts = append(facts, needs(g, k))
	}

	m, _, err := p.Solve(facts...)
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, 0, len(guests))
	for g := range guests {
		names = append(names, g)
	}
	sort.Strings(names)
	for _, g := range names {
		status := "stays home"
		if m.Has("coming", datalog.Sym(g)) {
			status = "coming"
		}
		fmt.Printf("  %-6s (needs %d): %s\n", g, guests[g], status)
	}
	fmt.Println()
	fmt.Println("alice bootstraps the party (needs nobody); commitments cascade through")
	fmt.Println("the cycle. erin and frank each demand the other first — in the least")
	fmt.Println("model no unfounded mutual promise happens, so both stay home.")
}
