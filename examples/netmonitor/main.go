// Network monitoring with set-valued and graph-property aggregation —
// Figure 1 rows 9–11 of Ross & Sagiv (PODS 1992) through the public API.
//
// Link-state reports arrive per observer as edge sets; the union
// aggregate fuses them into a network view, a registered monotone graph
// property checks core→edge connectivity, and an intersection aggregate
// computes the capabilities every replica of a service agrees on.
//
// Run with:
//
//	go run ./examples/netmonitor
package main

import (
	"fmt"
	"log"

	"repro/datalog"
)

const program = `
.cost report/3  : setunion.        % report(Observer, Epoch, EdgeSet)
.cost netview/1 : setunion.        % fused topology
.cost linked/1  : boolor.          % core reaches edge?
.cost caps/3    : allcaps_dom.        % caps(Svc, Replica, CapabilitySet)
.cost agreed/2  : allcaps_dom.        % capabilities all replicas share

netview(S) :- S ?= union E : report(O, T, E).
linked(B)  :- B  = core_to_edge E : report(O, T, E).
agreed(Svc, S) :- S ?= allcaps C : caps(Svc, R, C).
`

func main() {
	// Row 11: a monotone property — once the fused graph connects core to
	// edge, more reports can never disconnect it.
	datalog.RegisterConnectsProperty("core_to_edge", "core", "edge")
	// Row 10: intersection over a declared capability universe.
	datalog.RegisterIntersection("allcaps",
		datalog.Sym("tls"), datalog.Sym("http2"), datalog.Sym("gzip"), datalog.Sym("brotli"))

	p := datalog.MustLoad(program, datalog.Options{})

	edges := func(pairs ...[2]string) datalog.Value {
		out := make([]datalog.Value, len(pairs))
		for i, e := range pairs {
			out[i] = datalog.Edge(e[0], e[1])
		}
		return datalog.SetOf(out...)
	}
	m, _, err := p.Solve(
		// Three partial link-state observations.
		datalog.NewFact("report", datalog.Sym("probe1"), datalog.Num(1),
			edges([2]string{"core", "agg1"}, [2]string{"agg1", "rack3"})),
		datalog.NewFact("report", datalog.Sym("probe2"), datalog.Num(1),
			edges([2]string{"rack3", "edge"})),
		datalog.NewFact("report", datalog.Sym("probe3"), datalog.Num(2),
			edges([2]string{"core", "agg2"})),
		// Capability reports from two replicas of the web service.
		datalog.NewFact("caps", datalog.Sym("web"), datalog.Sym("r1"),
			datalog.SetOf(datalog.Sym("tls"), datalog.Sym("http2"), datalog.Sym("gzip"))),
		datalog.NewFact("caps", datalog.Sym("web"), datalog.Sym("r2"),
			datalog.SetOf(datalog.Sym("tls"), datalog.Sym("gzip"), datalog.Sym("brotli"))),
	)
	if err != nil {
		log.Fatal(err)
	}

	view, _ := m.Cost("netview")
	fmt.Printf("fused topology: %s\n", view)
	linked, _ := m.Cost("linked")
	ok, _ := linked.Truth()
	fmt.Printf("core reaches edge: %v  (no single observer saw the whole path)\n", ok)
	agreed, _ := m.Cost("agreed", datalog.Sym("web"))
	fmt.Printf("capabilities all web replicas support: %s\n", agreed)
}
