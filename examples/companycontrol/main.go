// Company control (Ross & Sagiv, PODS 1992, Example 2.7): company X
// controls Y when the shares X owns in Y, together with the shares owned
// by companies X controls, exceed 50%. The definition is recursive
// *through* the sum aggregate — the motivating example the paper shares
// with Mumick et al. and Van Gelder.
//
// Run with:
//
//	go run ./examples/companycontrol
package main

import (
	"fmt"
	"log"

	"repro/datalog"
)

const program = `
.cost s/3  : sumreal.   % s(X, Y, N): X directly owns fraction N of Y
.cost cv/4 : sumreal.   % cv(X, Z, Y, N): X holds N of Y through Z
.cost m/3  : sumreal.   % m(X, Y, N): X holds N of Y in total

cv(X, X, Y, N) :- s(X, Y, N).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
m(X, Y, N)     :- N ?= sum M : cv(X, Z, Y, M).
c(X, Y)        :- m(X, Y, N), N > 0.5.
`

func solveAndPrint(p *datalog.Program, title string, facts []datalog.Fact) {
	fmt.Printf("— %s —\n", title)
	m, _, err := p.Solve(facts...)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range m.Facts("c") {
		n, _ := m.Cost("m", row[0], row[1])
		fmt.Printf("  %s controls %s (holds %s)\n", row[0], row[1], n)
	}
	if m.Len("c") == 0 {
		fmt.Println("  nobody controls anybody")
	}
	fmt.Println()
}

func main() {
	p, err := datalog.Load(program, datalog.Options{})
	if err != nil {
		log.Fatal(err)
	}

	share := func(x, y string, n float64) datalog.Fact {
		return datalog.NewFact("s", datalog.Sym(x), datalog.Sym(y), datalog.Num(n))
	}

	// A holding pyramid: acme controls beta outright; acme's and beta's
	// stakes in gamma combine to a controlling position, which in turn
	// unlocks delta.
	solveAndPrint(p, "holding pyramid", []datalog.Fact{
		share("acme", "beta", 0.60),
		share("acme", "gamma", 0.30),
		share("beta", "gamma", 0.25),
		share("gamma", "delta", 0.40),
		share("acme", "delta", 0.15),
	})

	// The §5.6 discriminating database: b and c own 60% of each other.
	// In the minimal model c(a,b) and c(a,c) are *false* (a's 30% stakes
	// never combine with anything a controls); Van Gelder's well-founded
	// translation would leave them undefined — the paper's point about
	// semantics that give "too little information".
	solveAndPrint(p, "mutual ownership (§5.6)", []datalog.Fact{
		share("a", "b", 0.30),
		share("a", "c", 0.30),
		share("b", "c", 0.60),
		share("c", "b", 0.60),
	})
}
