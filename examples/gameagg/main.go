// Aggregation over negation (Ross & Sagiv, PODS 1992, §6.3): the
// iterated construction. The bottom component is the classic win-move
// game — recursion *through negation*, outside the monotonic class — and
// is evaluated under the (two-valued) well-founded semantics; the top
// component then aggregates over it monotonically, counting each
// player's winning positions. No single prior semantics handles both
// layers; the paper's iterated minimal models do.
//
// Run with:
//
//	go run ./examples/gameagg
package main

import (
	"fmt"
	"log"

	"repro/datalog"
)

const program = `
.cost score/2 : countnat.

% Bottom component: positions are won when some move reaches a lost
% position. Not admissible (negation through recursion) - evaluated by
% the well-founded fallback, which must be two-valued (it is: the board
% below is acyclic).
win(X) :- move(X, Y), not win(Y).

% Top component: monotonic aggregation over the solved game.
score(P, N)  :- player(P), N = count : [owns(P, X), winpos(X)].
winpos(X)    :- win(X).
`

func main() {
	p, err := datalog.Load(program, datalog.Options{WFSFallback: true})
	if err != nil {
		log.Fatal(err)
	}

	move := func(x, y string) datalog.Fact {
		return datalog.NewFact("move", datalog.Sym(x), datalog.Sym(y))
	}
	owns := func(p, x string) datalog.Fact {
		return datalog.NewFact("owns", datalog.Sym(p), datalog.Sym(x))
	}

	// An acyclic board: p5 is terminal (lost), so p4 wins, p3 loses, ...
	m, _, err := p.Solve(
		move("p1", "p2"), move("p2", "p3"), move("p3", "p4"),
		move("p4", "p5"), move("p1", "p4"), move("p2", "p5"),
		owns("alice", "p1"), owns("alice", "p3"), owns("alice", "p5"),
		owns("bob", "p2"), owns("bob", "p4"),
		datalog.NewFact("player", datalog.Sym("alice")),
		datalog.NewFact("player", datalog.Sym("bob")),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("winning positions:")
	for _, row := range m.Facts("win") {
		fmt.Printf("  win(%s)\n", row[0])
	}
	fmt.Println("\nwinning positions held per player:")
	for _, row := range m.Facts("score") {
		fmt.Printf("  %s: %s\n", row[0], row[1])
	}
}
