// Cyclic circuit evaluation (Ross & Sagiv, PODS 1992, Example 4.4): the
// truth value of every wire in a circuit of AND/OR gates with arbitrary
// fan-in and feedback loops. Wires default to false (a default-value
// cost predicate), which is exactly what lets the pseudo-monotonic AND
// participate in recursion (Definition 4.5): every gate always sees a
// fixed-size multiset of input values.
//
// Run with:
//
//	go run ./examples/circuit
package main

import (
	"fmt"
	"log"

	"repro/datalog"
)

const program = `
.cost t/2     : boolor.   % t(W, V): wire W carries truth value V
.cost input/2 : boolor.
.default t/2 = 0.         % wires start false (§2.3.2)

.ic :- gate(G, or), gate(G, and).
.ic :- input(W, C), gate(W, T).

t(W, C) :- input(W, C).
t(G, C) :- gate(G, or),  C = or D : [connect(G, W), t(W, D)].
t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
`

func main() {
	p, err := datalog.Load(program, datalog.Options{})
	if err != nil {
		log.Fatal(err)
	}

	in := func(w string, v int) datalog.Fact {
		return datalog.NewFact("input", datalog.Sym(w), datalog.Num(float64(v)))
	}
	gate := func(g, kind string) datalog.Fact {
		return datalog.NewFact("gate", datalog.Sym(g), datalog.Sym(kind))
	}
	wire := func(g, w string) datalog.Fact {
		return datalog.NewFact("connect", datalog.Sym(g), datalog.Sym(w))
	}

	// An SR-latch-like loop: or1 and or2 feed each other; "set" drives
	// or1. A separate self-looped AND gate demonstrates the minimal
	// (all-false) reading of untriggered feedback.
	m, _, err := p.Solve(
		in("set", 1),
		in("idle", 0),
		gate("or1", "or"), wire("or1", "set"), wire("or1", "or2"),
		gate("or2", "or"), wire("or2", "or1"), wire("or2", "idle"),
		gate("and1", "and"), wire("and1", "or1"), wire("and1", "or2"),
		gate("loop", "and"), wire("loop", "loop"), // self-feeding AND
	)
	if err != nil {
		log.Fatal(err)
	}

	for _, w := range []string{"set", "idle", "or1", "or2", "and1", "loop"} {
		v, ok := m.Cost("t", datalog.Sym(w))
		if !ok {
			log.Fatalf("wire %s unanswered", w)
		}
		b, _ := v.Truth()
		fmt.Printf("  t(%-5s) = %v\n", w, b)
	}
	fmt.Println()
	fmt.Println("or1/or2 latch: the 'set' signal propagates around the cycle (both true).")
	fmt.Println("loop (AND feeding itself): stays false — the minimal circuit behaviour")
	fmt.Println("the paper chooses; flip the default to 1 for the maximal reading.")
}
