// Quickstart: the shortest-path program of Ross & Sagiv (PODS 1992),
// Example 2.6 — recursion *through* the min aggregate, evaluated as a
// minimal model over the (R ∪ {∞}, ≥) cost lattice.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/datalog"
)

const program = `
% Cost declarations: the final argument of each predicate ranges over the
% "min" lattice (reals ordered by ≥, so the least model carries the
% numerically smallest costs).
.cost arc/3  : minreal.
.cost path/4 : minreal.
.cost s/3    : minreal.

% Integrity constraint making the two path rules conflict-free: 'direct'
% never names a source vertex (Example 2.5).
.ic :- arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`

func main() {
	p, err := datalog.Load(program, datalog.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The engine verified range restriction, conflict-freedom and
	// admissibility; the classification shows where the program sits on
	// the paper's ladder (§5).
	cl := p.Classify()
	fmt.Printf("admissible=%v  aggregate-stratified=%v  r-monotonic=%v\n\n",
		cl.Admissible, cl.AggregateStratified, cl.RMonotonic)

	// A graph with a cycle — the case stratified and well-founded
	// approaches give up on (Example 3.1), while the minimal model is
	// total and unique.
	m, stats, err := p.Solve(
		datalog.NewFact("arc", datalog.Sym("a"), datalog.Sym("b"), datalog.Num(1)),
		datalog.NewFact("arc", datalog.Sym("b"), datalog.Sym("c"), datalog.Num(2)),
		datalog.NewFact("arc", datalog.Sym("c"), datalog.Sym("a"), datalog.Num(1)),
		datalog.NewFact("arc", datalog.Sym("a"), datalog.Sym("c"), datalog.Num(9)),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shortest paths (s relation):")
	for _, row := range m.Facts("s") {
		fmt.Printf("  s(%s, %s) = %s\n", row[0], row[1], row[2])
	}
	fmt.Printf("\nsolved in %d rounds, %d rule firings\n", stats.Rounds, stats.Firings)

	// Point queries.
	if c, ok := m.Cost("s", datalog.Sym("a"), datalog.Sym("c")); ok {
		fmt.Printf("s(a, c) = %s  (the 3-hop route beats the direct arc of 9)\n", c)
	}
	if c, ok := m.Cost("s", datalog.Sym("a"), datalog.Sym("a")); ok {
		fmt.Printf("s(a, a) = %s  (the cycle's length — no stratification needed)\n", c)
	}
}
