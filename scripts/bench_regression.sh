#!/bin/sh
# Allocation-regression gate for the streaming executor.
#
# Runs BenchmarkSolve (the shortest-path fixpoint on a cyclic graph)
# under both executors and fails if the streaming executor's allocs/op
# exceeds BENCH_REGRESSION_MAX_PCT percent of the tuple-at-a-time
# executor's. The gate protects the core win of the streaming pipeline
# — fused operators with no per-tuple environment churn — from being
# eroded by later changes that quietly reintroduce per-row allocation.
#
#   scripts/bench_regression.sh                      # default 25% gate
#   BENCH_REGRESSION_MAX_PCT=30 scripts/bench_regression.sh
#   BENCHTIME=5x scripts/bench_regression.sh
#
# Allocation counts (unlike wall-clock timings) are stable across
# shared-runner noise, so a small fixed iteration count is enough.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BENCHTIME=${BENCHTIME:-3x}
MAX_PCT=${BENCH_REGRESSION_MAX_PCT:-25}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT INT TERM

echo "bench_regression: running BenchmarkSolve (both executors, -benchtime $BENCHTIME)"
( cd "$ROOT" && go test . -run '^$' -bench '^BenchmarkSolve$' -benchmem \
    -benchtime "$BENCHTIME" ) | tee "$RAW"

awk -v maxpct="$MAX_PCT" '
/^BenchmarkSolve\/tuple/ && /allocs\/op/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") tuple = $i
}
/^BenchmarkSolve\/stream/ && /allocs\/op/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") stream = $i
}
END {
    if (tuple == "" || stream == "") {
        print "bench_regression: FAIL: missing BenchmarkSolve/tuple or BenchmarkSolve/stream results" > "/dev/stderr"
        exit 1
    }
    pct = 100 * stream / tuple
    printf "bench_regression: stream %d allocs/op vs tuple %d allocs/op = %.1f%% (gate: <= %s%%)\n", stream, tuple, pct, maxpct
    if (pct > maxpct + 0) {
        print "bench_regression: FAIL: streaming executor allocates more than the gate allows" > "/dev/stderr"
        exit 1
    }
    print "bench_regression: PASS"
}
' "$RAW"
