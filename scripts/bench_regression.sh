#!/bin/sh
# Allocation- and overhead-regression gate for the streaming executor.
#
# Runs BenchmarkSolve (the shortest-path fixpoint on a cyclic graph)
# under both executors and enforces two things:
#
#   1. Relative gate: the streaming executor's allocs/op stays under
#      BENCH_REGRESSION_MAX_PCT percent of the tuple-at-a-time
#      executor's. This protects the core win of the streaming pipeline
#      — fused operators with no per-tuple environment churn — from
#      being eroded by later changes that quietly reintroduce per-row
#      allocation.
#
#   2. Tracing-overhead gate: with no event sink and no profiler
#      attached (the benchmark's configuration), the instrumented
#      engine must allocate exactly like the uninstrumented one. The
#      stream allocs/op is pinned to BENCH_REGRESSION_STREAM_ALLOCS
#      (the value recorded when per-operator profiling landed) within
#      BENCH_REGRESSION_ALLOC_TOL_PCT percent — the tolerance only
#      absorbs runtime scheduler noise (observed spread is ±0.03%), not
#      real per-row costs. Optionally, setting
#      BENCH_REGRESSION_STREAM_NS_BASELINE (ns/op from a baseline run
#      on the SAME machine) also gates wall-clock within
#      BENCH_REGRESSION_NS_TOL_PCT percent (default 3). The ns gate is
#      opt-in because stored timings are not comparable across machines
#      or days (see docs/OBSERVABILITY.md).
#
#   3. Planner gate: BenchmarkSolvePlan runs the same shortest-path
#      fixpoint under the syntactic plan and the cost-based planner
#      (see docs/PLANNER.md) and the cost-planned run must not be
#      slower than the syntactic one by more than
#      BENCH_REGRESSION_PLAN_TOL_PCT percent (default 25). On this
#      program the planner falls back to the identity order, so the
#      gate is really measuring planning overhead — interleaved runs
#      show parity (±1%) — but even same-process A/B pairs drift up
#      to ~20% on the shared development VM, so the default tolerance
#      only catches order-of-magnitude mistakes (a mis-ordered Δ
#      driver costs 5×, not 25%). Tighten it on a quiet box.
#
#   scripts/bench_regression.sh                      # default gates
#   BENCH_REGRESSION_MAX_PCT=30 scripts/bench_regression.sh
#   BENCH_REGRESSION_STREAM_NS_BASELINE=221000000 scripts/bench_regression.sh
#   BENCH_REGRESSION_PLAN_TOL_PCT=10 scripts/bench_regression.sh
#   BENCHTIME=5x scripts/bench_regression.sh
#
# Allocation counts (unlike wall-clock timings) are stable across
# shared-runner noise, so a small fixed iteration count is enough.
# The pinned value corresponds to the default -benchtime 3x: one-shot
# setup allocations amortize over the iteration count, so overriding
# BENCHTIME shifts allocs/op and needs a matching
# BENCH_REGRESSION_STREAM_ALLOCS.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BENCHTIME=${BENCHTIME:-3x}
MAX_PCT=${BENCH_REGRESSION_MAX_PCT:-25}
STREAM_ALLOCS=${BENCH_REGRESSION_STREAM_ALLOCS:-143032}
ALLOC_TOL_PCT=${BENCH_REGRESSION_ALLOC_TOL_PCT:-0.5}
NS_BASELINE=${BENCH_REGRESSION_STREAM_NS_BASELINE:-}
NS_TOL_PCT=${BENCH_REGRESSION_NS_TOL_PCT:-3}
PLAN_TOL_PCT=${BENCH_REGRESSION_PLAN_TOL_PCT:-25}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT INT TERM

echo "bench_regression: running BenchmarkSolve (both executors) and BenchmarkSolvePlan (both plans, -benchtime $BENCHTIME)"
( cd "$ROOT" && go test . -run '^$' -bench '^BenchmarkSolve(Plan)?$' -benchmem \
    -benchtime "$BENCHTIME" ) | tee "$RAW"

awk -v maxpct="$MAX_PCT" -v pinned="$STREAM_ALLOCS" -v alloctol="$ALLOC_TOL_PCT" \
    -v nsbase="$NS_BASELINE" -v nstol="$NS_TOL_PCT" -v plantol="$PLAN_TOL_PCT" '
/^BenchmarkSolve\/tuple/ && /allocs\/op/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op") tuple = $i
}
/^BenchmarkSolve\/stream/ && /allocs\/op/ {
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "allocs/op") stream = $i
        if ($(i+1) == "ns/op") streamns = $i
    }
}
/^BenchmarkSolvePlan\/syntactic/ && /ns\/op/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") synns = $i
}
/^BenchmarkSolvePlan\/cost/ && /ns\/op/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") costns = $i
}
END {
    if (tuple == "" || stream == "") {
        print "bench_regression: FAIL: missing BenchmarkSolve/tuple or BenchmarkSolve/stream results" > "/dev/stderr"
        exit 1
    }
    pct = 100 * stream / tuple
    printf "bench_regression: stream %d allocs/op vs tuple %d allocs/op = %.1f%% (gate: <= %s%%)\n", stream, tuple, pct, maxpct
    if (pct > maxpct + 0) {
        print "bench_regression: FAIL: streaming executor allocates more than the gate allows" > "/dev/stderr"
        exit 1
    }
    dev = 100 * (stream - pinned) / pinned; if (dev < 0) dev = -dev
    printf "bench_regression: stream allocs/op %d vs pinned %d = %.3f%% deviation (gate: <= %s%%)\n", stream, pinned, dev, alloctol
    if (dev > alloctol + 0) {
        print "bench_regression: FAIL: disabled-tracing allocation count moved; the zero-cost contract is broken" > "/dev/stderr"
        exit 1
    }
    if (nsbase != "") {
        nsdev = 100 * (streamns - nsbase) / nsbase
        printf "bench_regression: stream %.0f ns/op vs baseline %.0f ns/op = %+.1f%% (gate: <= +%s%%)\n", streamns, nsbase, nsdev, nstol
        if (nsdev > nstol + 0) {
            print "bench_regression: FAIL: disabled-tracing wall-clock regressed past the gate" > "/dev/stderr"
            exit 1
        }
    }
    if (synns == "" || costns == "") {
        print "bench_regression: FAIL: missing BenchmarkSolvePlan/syntactic or BenchmarkSolvePlan/cost results" > "/dev/stderr"
        exit 1
    }
    plandev = 100 * (costns - synns) / synns
    printf "bench_regression: cost plan %.0f ns/op vs syntactic %.0f ns/op = %+.1f%% (gate: <= +%s%%)\n", costns, synns, plandev, plantol
    if (plandev > plantol + 0) {
        print "bench_regression: FAIL: cost-based plan is slower than the syntactic plan past the gate" > "/dev/stderr"
        exit 1
    }
    print "bench_regression: PASS"
}
' "$RAW"
