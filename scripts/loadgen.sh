#!/bin/sh
# Load-generator harness for the serve tier: build mdl and mdlload,
# start a server over the shortest-path example, drive a steady phase
# at a sustainable rate and an overload phase well past the admission
# limits, and merge both reports into BENCH_<date>.json at the repo
# root. The overload phase is expected to shed (429/503) — the harness
# fails only if requests hard-fail or the steady phase can't hold its
# rate.
#
#   scripts/loadgen.sh                    # default: 10s steady + 5s overload
#   LOADGEN_DURATION=2s LOADGEN_OVERLOAD_DURATION=1s scripts/loadgen.sh   # smoke
#   LOADGEN_WAL_FSYNC=batch scripts/loadgen.sh   # durable acks: serve with a
#                                                # WAL at this fsync policy
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
WORK=$(mktemp -d)
PORT=${LOADGEN_PORT:-8319}
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"
LOG="$WORK/serve.log"
OUT=${LOADGEN_OUT:-"$ROOT/BENCH_$(date +%Y%m%d).json"}
DURATION=${LOADGEN_DURATION:-10s}
RATE=${LOADGEN_RATE:-300}
OVER_DURATION=${LOADGEN_OVERLOAD_DURATION:-5s}
OVER_RATE=${LOADGEN_OVERLOAD_RATE:-2000}
WAL_FSYNC=${LOADGEN_WAL_FSYNC:-}
PID=""

cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "loadgen: FAIL: $1" >&2
    [ -f "$LOG" ] && tail -20 "$LOG" | sed 's/^/loadgen:   server: /' >&2
    exit 1
}

echo "loadgen: building mdl and mdlload"
( cd "$ROOT" && go build -o "$WORK/mdl" ./cmd/mdl && go build -o "$WORK/mdlload" ./cmd/mdlload )

# Tight admission limits so the overload phase actually sheds. With
# LOADGEN_WAL_FSYNC set, every commit pays for durability too — the
# report records the policy so the numbers aren't compared blind.
WAL_ARGS=""
if [ -n "$WAL_FSYNC" ]; then
    WAL_ARGS="-wal $WORK/wal -wal-fsync $WAL_FSYNC"
    echo "loadgen: durable acks enabled (wal-fsync=$WAL_FSYNC)"
fi
echo "loadgen: starting server on $ADDR"
# shellcheck disable=SC2086 — WAL_ARGS is intentionally word-split
"$WORK/mdl" serve -addr "$ADDR" -assert-queue 32 -max-inflight 64 $WAL_ARGS \
    "$ROOT/examples/programs/shortestpath.mdl" >"$LOG" 2>&1 &
PID=$!

i=0
until curl -sf "$BASE/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "server did not become ready"
    kill -0 "$PID" 2>/dev/null || fail "server exited early"
    sleep 0.1
done

echo "loadgen: steady phase ($DURATION at $RATE req/s)"
"$WORK/mdlload" -url "$BASE" -duration "$DURATION" -rate "$RATE" \
    -assert-frac 0.1 -label steady -out "$OUT" >"$WORK/steady.json" \
    || fail "steady phase failed"

echo "loadgen: overload phase ($OVER_DURATION at $OVER_RATE req/s)"
"$WORK/mdlload" -url "$BASE" -duration "$OVER_DURATION" -rate "$OVER_RATE" \
    -assert-frac 0.3 -label overload -out "$OUT" >"$WORK/overload.json" \
    || fail "overload phase failed"

# The server must have survived both phases and still be ready.
kill -0 "$PID" 2>/dev/null || fail "server died under load"
curl -sf "$BASE/readyz" >/dev/null || fail "server not ready after overload"

# Sanity on the reports without jq: the steady phase must have zero
# hard errors, and the merged BENCH file must be valid enough to carry
# both phases.
grep -q '"errors": 0' "$WORK/steady.json" || fail "steady phase recorded hard errors: $(cat "$WORK/steady.json")"
grep -q '"label": "steady"' "$OUT" || fail "steady report missing from $OUT"
grep -q '"label": "overload"' "$OUT" || fail "overload report missing from $OUT"

kill -TERM "$PID"
wait "$PID" || fail "server exited non-zero on SIGTERM"
PID=""

echo "loadgen: PASS (reports merged into $OUT)"
