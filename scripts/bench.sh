#!/bin/sh
# Run the root-package benchmark suite and record the results as JSON,
# one object per benchmark, in BENCH_<date>.json at the repo root.
#
#   scripts/bench.sh                 # full run (go test's default -benchtime)
#   BENCHTIME=1x scripts/bench.sh    # smoke run: one iteration per benchmark
#   BENCH_PATTERN=Solve scripts/bench.sh
#
# The JSON is a stable machine-readable trail for spotting regressions
# across commits; pair two files from different checkouts to compare.
# On a shared machine prefer interleaved A/B runs of two built test
# binaries over comparing stored numbers (see docs/OBSERVABILITY.md).
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BENCHTIME=${BENCHTIME:-}
BENCH_PATTERN=${BENCH_PATTERN:-.}
OUT=${BENCH_OUT:-"$ROOT/BENCH_$(date +%Y%m%d).json"}
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT INT TERM

echo "bench: running go test -bench $BENCH_PATTERN ${BENCHTIME:+-benchtime $BENCHTIME}"
( cd "$ROOT" && go test . -run '^$' -bench "$BENCH_PATTERN" -benchmem \
    ${BENCHTIME:+-benchtime "$BENCHTIME"} ) | tee "$RAW"

# The engine defaults to one evaluation worker per CPU, so the box's
# CPU budget is part of the measurement: record GOMAXPROCS (the env
# override when set, the online CPU count otherwise) alongside the
# results. Benchmarks pinned to explicit worker counts carry them in
# their names (BenchmarkSolveParallel/par=2).
NCPU=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
GMP=${GOMAXPROCS:-$NCPU}

# Engine benchmarks never touch the serve tier's write-ahead log, so
# they run with durability off; the field makes that explicit so these
# numbers are never read as comparable to a loadgen run that paid for
# fsyncs (see the wal_fsync field of loadgen reports).
WAL_FSYNC=${BENCH_WAL_FSYNC:-off}

# Capture one EXPLAIN ANALYZE profile of the shortest-path example on
# the streaming executor: the machine-readable operator counters ride
# along under the "profiles" key, so cardinality drift (a regressing
# join suddenly probing more rows) is visible in the same trail as the
# timing drift. Best-effort: a failure leaves the key empty rather than
# sinking the whole run.
PROF=$(mktemp)
trap 'rm -f "$RAW" "$PROF"' EXIT INT TERM
echo "bench: profiling one ShortestPath solve (mdl -profile-json)"
( cd "$ROOT" && go run ./cmd/mdl -executor=stream -profile-json "$PROF" \
    examples/programs/shortestpath.mdl >/dev/null 2>&1 ) || : >"$PROF"

# Parse `BenchmarkName-N  iters  ns/op  B/op  allocs/op` lines into JSON.
# The engine_vs_baseline section pairs each engine benchmark with its
# direct-algorithm baseline (Dijkstra for the shortest-path family, the
# closed-form scan for party) and records the ns/op ratio per executor,
# so the gap the streaming executor is chipping away at is tracked
# across PRs in the same file as the raw numbers.
awk -v host="$(uname -sm)" -v go="$(go env GOVERSION)" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gmp="$GMP" -v walfsync="$WAL_FSYNC" -v proffile="$PROF" '
BEGIN { printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"host\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"default_parallelism\": %s,\n  \"wal_fsync\": \"%s\",\n  \"benchmarks\": [", date, go, host, gmp, gmp, walfsync; n = 0 }
/^Benchmark/ && /ns\/op/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
    names[n] = name; nsb[name] = ns
}
END {
    # The planner section pairs each cost-planned benchmark with its
    # syntactic-plan twin on the same executor and records the ns/op
    # ratio (< 1.0 means the cost planner won); this is the ledger
    # scripts/bench_regression.sh gates on.
    printf "\n  ],\n  \"planner\": ["
    m = 0
    for (i = 1; i <= n; i++) {
        name = names[i]; base = ""; fam = ""
        if (name ~ /^BenchmarkShortestPath\/[a-z]+\/n=[0-9]+\/cost$/) {
            split(name, a, "/")
            base = "BenchmarkShortestPath/" a[2] "/" a[3] "/stream"
            fam = "shortestpath/" a[2] "/" a[3]
        } else if (name ~ /\/engine-cost\//) {
            base = name; sub(/\/engine-cost\//, "/engine-stream/", base)
            fam = tolower(name); sub(/^benchmark/, "", fam); sub(/\/engine-cost\//, "/", fam)
        } else if (name == "BenchmarkSolvePlan/cost") {
            base = "BenchmarkSolvePlan/syntactic"
            fam = "solveplan/cyclic/n=128"
        }
        if (base == "" || !(base in nsb) || nsb[base] + 0 == 0) continue
        if (m++) printf ","
        printf "\n    {\"family\": \"%s\", \"cost\": \"%s\", \"syntactic\": \"%s\", \"cost_over_syntactic_ns\": %.3f}", fam, name, base, nsb[name] / nsb[base]
    }
    printf "\n  ],\n  \"engine_vs_baseline\": ["
    m = 0
    for (i = 1; i <= n; i++) {
        name = names[i]; base = ""; fam = ""; exe = ""
        if (name ~ /^BenchmarkShortestPath\/[a-z]+\/n=[0-9]+$/) {
            split(name, a, "/")
            base = "BenchmarkShortestPathDijkstra/" a[3]
            fam = "shortestpath/" a[2] "/" a[3]; exe = "tuple"
        } else if (name ~ /^BenchmarkShortestPath\/[a-z]+\/n=[0-9]+\/stream$/) {
            split(name, a, "/")
            base = "BenchmarkShortestPathDijkstra/" a[3]
            fam = "shortestpath/" a[2] "/" a[3]; exe = "stream"
        } else if (name ~ /\/engine\//) {
            base = name; sub(/\/engine\//, "/direct/", base)
            fam = tolower(name); sub(/^benchmark/, "", fam); sub(/\/engine\//, "/", fam)
            exe = "tuple"
        } else if (name ~ /\/engine-stream\//) {
            base = name; sub(/\/engine-stream\//, "/direct/", base)
            fam = tolower(name); sub(/^benchmark/, "", fam); sub(/\/engine-stream\//, "/", fam)
            exe = "stream"
        }
        if (base == "" || !(base in nsb) || nsb[base] + 0 == 0) continue
        if (m++) printf ","
        printf "\n    {\"family\": \"%s\", \"executor\": \"%s\", \"engine\": \"%s\", \"baseline\": \"%s\", \"engine_over_baseline_ns\": %.2f", fam, exe, name, base, nsb[name] / nsb[base]
        printf "}"
    }
    printf "\n  ]"
    # Embed the captured operator profile (already JSON) verbatim.
    prof = ""
    while ((getline line < proffile) > 0) prof = prof line "\n"
    close(proffile)
    if (prof != "") {
        sub(/\n$/, "", prof)
        printf ",\n  \"profiles\": {\n    \"shortestpath_stream\": %s\n  }", prof
    }
    printf "\n}\n"
}
' "$RAW" >"$OUT"

count=$(grep -c '"name"' "$OUT" || true)
[ "$count" -gt 0 ] || { echo "bench: FAIL: no benchmark results parsed" >&2; exit 1; }
echo "bench: wrote $count results to $OUT"
