#!/bin/sh
# End-to-end smoke test for the mdl serve subsystem: build the binary,
# start a server on a random port, exercise query/assert/explain/
# metrics over HTTP with curl, assert on the responses, then shut down
# gracefully and verify the checkpoint was flushed.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
WORK=$(mktemp -d)
PORT=${SERVE_SMOKE_PORT:-8317}
ADDR="127.0.0.1:$PORT"
BASE="http://$ADDR"
CKPT="$WORK/sp.ckpt"
LOG="$WORK/serve.log"
PID=""

cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    [ -f "$LOG" ] && sed 's/^/serve-smoke:   server: /' "$LOG" >&2
    exit 1
}

# The response must contain every expected fragment.
expect() {
    resp=$1
    shift
    for frag in "$@"; do
        case "$resp" in
        *"$frag"*) ;;
        *) fail "expected $frag in response: $resp" ;;
        esac
    done
}

echo "serve-smoke: building mdl"
( cd "$ROOT" && go build -o "$WORK/mdl" ./cmd/mdl )

echo "serve-smoke: starting server on $ADDR"
"$WORK/mdl" serve -addr "$ADDR" -checkpoint "$CKPT" \
    "$ROOT/examples/programs/shortestpath.mdl" >"$LOG" 2>&1 &
PID=$!

# Wait for readiness: /readyz answers 503 until every program is
# materialized, so gating on it (not /healthz, which is liveness and
# always 200) means the first query below cannot race materialization.
i=0
until curl -sf "$BASE/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "server did not become ready"
    kill -0 "$PID" 2>/dev/null || fail "server exited early"
    sleep 0.1
done

echo "serve-smoke: healthz and readyz"
expect "$(curl -sf "$BASE/healthz")" '"status":"ok"' '"shortestpath"'
expect "$(curl -sf "$BASE/readyz")" '"status":"ok"'

echo "serve-smoke: query s(a, d) = 4"
expect "$(curl -sf -d '{"op":"cost","pred":"s","args":["a","d"]}' "$BASE/v1/query")" \
    '"cost":4' '"found":true' '"version":1'

echo "serve-smoke: wildcard scan s(a, _)"
expect "$(curl -sf -d '{"op":"facts","pred":"s","args":["a",null]}' "$BASE/v1/query")" \
    '"count":4' '["a","d",4]'

echo "serve-smoke: assert arc(a, d, 2)"
expect "$(curl -sf -d '{"facts":[{"pred":"arc","args":["a","d",2]}]}' "$BASE/v1/assert")" \
    '"version":2' '"asserted":1'

echo "serve-smoke: query improved s(a, d) = 2"
expect "$(curl -sf -d '{"op":"cost","pred":"s","args":["a","d"]}' "$BASE/v1/query")" \
    '"cost":2' '"version":2'

echo "serve-smoke: non-monotone assert is rejected with 409/static"
resp=$(curl -s -o "$WORK/err.json" -w '%{http_code}' \
    -d '{"facts":[{"pred":"s","args":["a","b",1]}]}' "$BASE/v1/assert")
[ "$resp" = "409" ] || fail "derived-predicate assert returned HTTP $resp"
expect "$(cat "$WORK/err.json")" '"code":"static"' '"exit_code":3'

echo "serve-smoke: explain"
expect "$(curl -sf -d '{"pred":"s","args":["a","d"]}' "$BASE/v1/explain")" \
    '"found":true' 's(a, d, 2)'

echo "serve-smoke: metrics (Prometheus text by default)"
expect "$(curl -sf "$BASE/metrics")" \
    'mdl_http_requests_total' 'mdl_http_request_duration_seconds_bucket' \
    'mdl_program_model_size' 'mdl_build_info'

echo "serve-smoke: metrics (JSON via Accept)"
expect "$(curl -sf -H 'Accept: application/json' "$BASE/metrics")" \
    '"/v1/query"' '"errors"' '"version":2'

echo "serve-smoke: per-rule stats endpoint"
expect "$(curl -sf "$BASE/v1/stats")" '"rules"' '"components"' '"firings"'

echo "serve-smoke: request id echo"
rid=$(curl -sf -o /dev/null -D - "$BASE/healthz" | tr -d '\r' | sed -n 's/^X-Request-Id: //Ip')
[ -n "$rid" ] || fail "no X-Request-Id header on response"

echo "serve-smoke: graceful shutdown flushes the checkpoint"
kill -TERM "$PID"
wait "$PID" || fail "server exited non-zero on SIGTERM"
PID=""
[ -s "$CKPT" ] || fail "checkpoint not written on shutdown"
grep -q "checkpoint flushed" "$LOG" || fail "no checkpoint flush in log"

echo "serve-smoke: restart warm-starts with the asserted fact"
"$WORK/mdl" serve -addr "$ADDR" -checkpoint "$CKPT" \
    "$ROOT/examples/programs/shortestpath.mdl" >"$LOG" 2>&1 &
PID=$!
i=0
until curl -sf "$BASE/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || fail "restarted server did not become ready"
    sleep 0.1
done
grep -q "warm-started" "$LOG" || fail "restart did not warm-start from the checkpoint"
expect "$(curl -sf -d '{"op":"cost","pred":"s","args":["a","d"]}' "$BASE/v1/query")" \
    '"cost":2'
kill -TERM "$PID"
wait "$PID" || fail "restarted server exited non-zero"
PID=""

echo "serve-smoke: PASS"
