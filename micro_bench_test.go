// Library micro-benchmarks: parser throughput, relation operations, and
// the cost of optional engine features (tracing).
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/programs"
	"repro/internal/relation"
	"repro/internal/val"
)

// BenchmarkParse: program-text parsing throughput (rules + 512 facts).
func BenchmarkParse(b *testing.B) {
	g := gen.Graph(gen.RandomGraph, 128, 512, 9, 1)
	src := programs.ShortestPath + gen.GraphFacts(g)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile: the full Load pipeline (parse + schemas + safety +
// conflict-freedom + admissibility + plan compilation).
func BenchmarkCompile(b *testing.B) {
	g := gen.Graph(gen.RandomGraph, 64, 256, 9, 1)
	src := programs.ShortestPath + gen.GraphFacts(g)
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(prog, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelationInsert: lattice-joining inserts into a cost relation.
func BenchmarkRelationInsert(b *testing.B) {
	info := &ast.PredInfo{Key: "s/3", Arity: 3, HasCost: true, L: lattice.MinReal}
	keys := make([][]val.T, 1024)
	for i := range keys {
		keys[i] = []val.T{val.Symbol(fmt.Sprintf("u%d", i%64)), val.Symbol(fmt.Sprintf("v%d", i/64))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := relation.New(info)
		for j, k := range keys {
			r.InsertJoin(k, val.Number(float64(j%17)))
		}
	}
}

// BenchmarkRelationMatch: indexed bound-prefix matching.
func BenchmarkRelationMatch(b *testing.B) {
	info := &ast.PredInfo{Key: "e/2", Arity: 2}
	r := relation.New(info)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			r.InsertJoin([]val.T{val.Symbol(fmt.Sprintf("u%d", i)), val.Symbol(fmt.Sprintf("v%d", j))}, val.T{})
		}
	}
	u := val.Symbol("u17")
	pattern := []*val.T{&u, nil}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		r.Match(pattern, func(relation.Row) bool { n++; return true })
		if n != 64 {
			b.Fatalf("matched %d", n)
		}
	}
}

// BenchmarkTraceOverhead: solving with and without provenance recording.
func BenchmarkTraceOverhead(b *testing.B) {
	g := gen.Graph(gen.LayeredDAG, 96, 384, 9, 96)
	src := programs.ShortestPath + gen.GraphFacts(g)
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, trace := range []bool{false, true} {
		name := "off"
		if trace {
			name = "on"
		}
		en, err := core.New(prog, core.Options{Trace: trace})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := en.Solve(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGroupStratifiedCheck: the instance-level §5.1 classification.
func BenchmarkGroupStratifiedCheck(b *testing.B) {
	g := gen.Graph(gen.LayeredDAG, 64, 200, 9, 64)
	en := mustEngine(b, programs.ShortestPath+gen.GraphFacts(g), core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := en.GroupStratified(nil)
		if err != nil || !ok {
			b.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkSolve is the canonical end-to-end fixpoint benchmark used to
// bound instrumentation overhead: a full semi-naive solve of the
// shortest-path program on a fixed cyclic graph, no sink attached. It
// runs once per executor backend; the bench-regression smoke job
// (scripts/bench_regression.sh) holds the streaming executor's allocs/op
// to a fraction of the tuple interpreter's.
func BenchmarkSolve(b *testing.B) {
	g := gen.Graph(gen.CycleGraph, 96, 4*96, 9, 96)
	src := programs.ShortestPath + gen.GraphFacts(g)
	for _, exe := range []core.Executor{core.ExecutorTuple, core.ExecutorStream} {
		en := mustEngine(b, src, core.Options{Limits: core.Limits{Executor: exe}})
		b.Run(exe.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				solveB(b, en)
			}
		})
	}
}
