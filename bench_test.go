// Benchmarks regenerating the performance dimension of every experiment
// in EXPERIMENTS.md (one benchmark family per experiment id). Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/monotone"
	"repro/internal/parser"
	"repro/internal/programs"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/stable"
	"repro/internal/val"
	"repro/internal/wfs"
)

func mustEngine(b *testing.B, src string, opts core.Options) *core.Engine {
	b.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	en, err := core.New(prog, opts)
	if err != nil {
		b.Fatal(err)
	}
	return en
}

func solveB(b *testing.B, en *core.Engine) *relation.DB {
	db, _, err := en.Solve(nil)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkFigure1Aggregates (E1): applying each Figure 1 aggregate to
// random 64-element multisets.
func BenchmarkFigure1Aggregates(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	nums := make([]lattice.Elem, 64)
	for i := range nums {
		nums[i] = val.Number(float64(r.Intn(100)))
	}
	bools := make([]lattice.Elem, 64)
	for i := range bools {
		bools[i] = val.Boolean(r.Intn(2) == 1)
	}
	sets := make([]lattice.Elem, 64)
	for i := range sets {
		var elems []val.T
		for j := 0; j < 4; j++ {
			elems = append(elems, val.Symbol(fmt.Sprintf("e%d", r.Intn(10))))
		}
		sets[i] = val.SetOf(elems...)
	}
	cases := []struct {
		agg lattice.Aggregate
		ms  []lattice.Elem
	}{
		{lattice.Min, nums}, {lattice.Max, nums}, {lattice.Sum, nums},
		{lattice.Count, bools}, {lattice.And, bools}, {lattice.Or, bools},
		{lattice.Average, nums}, {lattice.Halfsum, nums}, {lattice.Union, sets},
	}
	for _, c := range cases {
		b.Run(c.agg.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := c.agg.Apply(c.ms); !ok {
					b.Fatal("undefined")
				}
			}
		})
	}
}

// BenchmarkExample21Averages (E2): the grouped-average program over a
// synthetic student-record table.
func BenchmarkExample21Averages(b *testing.B) {
	src := programs.Averages
	r := rand.New(rand.NewSource(2))
	for s := 0; s < 40; s++ {
		for c := 0; c < 8; c++ {
			if r.Intn(3) > 0 {
				src += fmt.Sprintf("record(s%d, c%d, %d).\n", s, c, 40+r.Intn(60))
			}
		}
	}
	for c := 0; c < 10; c++ {
		src += fmt.Sprintf("courses(c%d).\n", c)
	}
	en := mustEngine(b, src, core.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solveB(b, en)
	}
}

// BenchmarkShortestPath (E3): the engine on the three graph topologies.
// The unsuffixed runs keep their historical names (tuple executor); the
// /stream runs measure the streaming relational-algebra executor and
// the /cost runs the cost-based planner on top of it, all on the same
// instances.
func BenchmarkShortestPath(b *testing.B) {
	type variant struct {
		suffix string
		lim    core.Limits
	}
	variants := []variant{
		{"", core.Limits{Executor: core.ExecutorTuple}},
		{"/stream", core.Limits{Executor: core.ExecutorStream}},
		{"/cost", core.Limits{Executor: core.ExecutorStream, Plan: core.PlanCost}},
	}
	for _, kind := range []gen.GraphKind{gen.LayeredDAG, gen.CycleGraph, gen.RandomGraph} {
		for _, n := range []int{32, 64, 128} {
			g := gen.Graph(kind, n, 4*n, 9, int64(n))
			src := programs.ShortestPath + gen.GraphFacts(g)
			for _, v := range variants {
				en := mustEngine(b, src, core.Options{Limits: v.lim})
				b.Run(fmt.Sprintf("%s/n=%d%s", kindName(kind), n, v.suffix), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						solveB(b, en)
					}
				})
			}
		}
	}
}

// BenchmarkSolvePlan: the planner ablation on one fixed shortest-path
// instance — identical engine, identical executor, only Limits.Plan
// differs. The pair is what scripts/bench.sh records as the planner
// ratio and scripts/bench_regression.sh gates on.
func BenchmarkSolvePlan(b *testing.B) {
	g := gen.Graph(gen.CycleGraph, 128, 512, 9, 128)
	src := programs.ShortestPath + gen.GraphFacts(g)
	for _, pl := range []core.Plan{core.PlanSyntactic, core.PlanCost} {
		en := mustEngine(b, src, core.Options{Limits: core.Limits{Executor: core.ExecutorStream, Plan: pl}})
		b.Run(pl.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				solveB(b, en)
			}
		})
	}
}

func kindName(k gen.GraphKind) string {
	switch k {
	case gen.LayeredDAG:
		return "dag"
	case gen.CycleGraph:
		return "cyclic"
	default:
		return "random"
	}
}

// BenchmarkShortestPathDijkstra (E3 baseline): the all-pairs baseline on
// the same graphs.
func BenchmarkShortestPathDijkstra(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		g := gen.Graph(gen.CycleGraph, n, 4*n, 9, int64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.AllPairs(g)
			}
		})
	}
}

// BenchmarkCompanyControl (E4): engine vs the direct iterative solver.
func BenchmarkCompanyControl(b *testing.B) {
	for _, n := range []int{16, 64, 128} {
		o := gen.Ownership(n, 3, true, int64(n))
		en := mustEngine(b, programs.CompanyControl+gen.OwnershipFacts(o), core.Options{})
		b.Run(fmt.Sprintf("engine/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solveB(b, en)
			}
		})
		b.Run(fmt.Sprintf("direct/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.CompanyControl(o)
			}
		})
	}
}

// BenchmarkParty (E5): engine (both executors) vs the direct
// propagation.
func BenchmarkParty(b *testing.B) {
	for _, n := range []int{64, 256} {
		p := gen.Party(n, 5, 3, int64(n))
		src := programs.Party + gen.PartyFacts(p)
		en := mustEngine(b, src, core.Options{})
		b.Run(fmt.Sprintf("engine/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				solveB(b, en)
			}
		})
		enStream := mustEngine(b, src, core.Options{Limits: core.Limits{Executor: core.ExecutorStream}})
		b.Run(fmt.Sprintf("engine-stream/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				solveB(b, enStream)
			}
		})
		enCost := mustEngine(b, src, core.Options{Limits: core.Limits{Executor: core.ExecutorStream, Plan: core.PlanCost}})
		b.Run(fmt.Sprintf("engine-cost/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				solveB(b, enCost)
			}
		})
		b.Run(fmt.Sprintf("direct/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Attendance()
			}
		})
	}
}

// BenchmarkCircuit (E6): engine vs the event-free fixpoint simulator,
// cyclic circuits included.
func BenchmarkCircuit(b *testing.B) {
	for _, n := range []int{64, 256} {
		for _, cyclic := range []bool{false, true} {
			c := gen.Circuit(n, n/5, 3, cyclic, int64(n))
			en := mustEngine(b, programs.Circuit+gen.CircuitFacts(c), core.Options{})
			b.Run(fmt.Sprintf("engine/n=%d/cyclic=%v", n, cyclic), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					solveB(b, en)
				}
			})
			b.Run(fmt.Sprintf("direct/n=%d/cyclic=%v", n, cyclic), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c.Eval()
				}
			})
		}
	}
}

// BenchmarkMinimalModelSearch (E7): enumerating the stable models of the
// §3 two-minimal-model program.
func BenchmarkMinimalModelSearch(b *testing.B) {
	prog, err := parser.Parse(programs.TwoMinimalModels)
	if err != nil {
		b.Fatal(err)
	}
	candidates := wfs.NewStore()
	for _, a := range []string{"a", "b"} {
		candidates.Add("p/1", []val.T{val.Symbol(a)})
		candidates.Add("q/1", []val.T{val.Symbol(a)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		models, err := stable.Enumerate(prog, candidates, nil, 8, wfs.Options{})
		if err != nil || len(models) != 2 {
			b.Fatalf("models=%d err=%v", len(models), err)
		}
	}
}

// BenchmarkStableCheck (E8): the Kemp–Stuckey stability check on Example
// 3.1's M1 and M2.
func BenchmarkStableCheck(b *testing.B) {
	src := programs.ShortestPath + "arc(a, b, 1).\narc(b, b, 0).\n"
	prog, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	en, err := core.New(prog, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m1, _, err := en.Solve(nil)
	if err != nil {
		b.Fatal(err)
	}
	m2 := m1.Clone()
	m2.AddFact("s", []val.T{val.Symbol("a"), val.Symbol("b")}, val.Number(0))
	m2.AddFact("path", []val.T{val.Symbol("a"), val.Symbol("b"), val.Symbol("b")}, val.Number(0))
	s1, s2 := wfs.FromDB(m1), wfs.FromDB(m2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok1, err1 := stable.IsStable(prog, s1, wfs.Options{})
		ok2, err2 := stable.IsStable(prog, s2, wfs.Options{})
		if !ok1 || !ok2 || err1 != nil || err2 != nil {
			b.Fatal("both models must be stable")
		}
	}
}

// BenchmarkWFS (E9): the alternating fixpoint on acyclic vs cyclic
// shortest-path instances.
func BenchmarkWFS(b *testing.B) {
	cases := []struct {
		name string
		src  string
	}{
		{"acyclic", programs.ShortestPath + gen.GraphFacts(gen.Graph(gen.LayeredDAG, 12, 30, 9, 9))},
		{"cyclic", programs.ShortestPath + "arc(a,b,1).\narc(b,b,0).\narc(b,c,3).\n"},
	}
	for _, c := range cases {
		prog, err := parser.Parse(c.src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wfs.Solve(prog, wfs.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGGZRewrite (E10): native monotonic evaluation vs the
// rewritten program under the well-founded semantics.
func BenchmarkGGZRewrite(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		g := gen.Graph(gen.LayeredDAG, n, 3*n, 9, int64(n))
		src := programs.ShortestPath + gen.GraphFacts(g)
		prog, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		en := mustEngine(b, src, core.Options{})
		norm, err := rewrite.MinMax(prog)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("native/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solveB(b, en)
			}
		})
		b.Run(fmt.Sprintf("ggz-wfs/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := wfs.Solve(norm, wfs.Options{MaxAtoms: 1000000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHalfsumLimit (E11): rounds to ε-convergence of the ω-limit
// program.
func BenchmarkHalfsumLimit(b *testing.B) {
	for _, eps := range []float64{1e-6, 1e-9, 1e-12} {
		en := mustEngine(b, programs.Halfsum, core.Options{Epsilon: eps})
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solveB(b, en)
			}
		})
	}
}

// BenchmarkNaiveVsSemiNaive (E12): the §6.2 strategy ablation.
func BenchmarkNaiveVsSemiNaive(b *testing.B) {
	g := gen.Graph(gen.CycleGraph, 48, 150, 9, 48)
	src := programs.ShortestPath + gen.GraphFacts(g)
	for _, strat := range []core.Strategy{core.Naive, core.SemiNaive} {
		name := "semi-naive"
		if strat == core.Naive {
			name = "naive"
		}
		en := mustEngine(b, src, core.Options{Strategy: strat})
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solveB(b, en)
			}
		})
	}
}

// BenchmarkIncrementalSolve: adding one arc via SolveMore vs re-solving
// the whole graph (the insert-monotone maintenance monotonicity buys).
func BenchmarkIncrementalSolve(b *testing.B) {
	g := gen.Graph(gen.LayeredDAG, 128, 512, 9, 128)
	en := mustEngine(b, programs.ShortestPath+gen.GraphFacts(g), core.Options{})
	base, _, err := en.Solve(nil)
	if err != nil {
		b.Fatal(err)
	}
	added := relation.NewDB(en.Schemas)
	added.Rel("arc/3").InsertJoin([]val.T{val.Symbol("v0"), val.Symbol("v100")}, val.Number(1))
	b.Run("solve-more", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := en.SolveMore(base, added); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-resolve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := en.Solve(added); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGroupDeltaAblation: the DESIGN.md §3 semi-naive design choice
// — Δ-driven aggregate group restriction on vs off (company control is
// aggregate-heavy, so the restriction is the dominant effect).
func BenchmarkGroupDeltaAblation(b *testing.B) {
	o := gen.Ownership(96, 3, true, 96)
	src := programs.CompanyControl + gen.OwnershipFacts(o)
	for _, disabled := range []bool{false, true} {
		name := "group-delta"
		if disabled {
			name = "full-regroup"
		}
		en := mustEngine(b, src, core.Options{DisableGroupDelta: disabled})
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				solveB(b, en)
			}
		})
	}
}

// BenchmarkWFSFallback: the §6.3 iterated construction — a win-move
// component solved by the well-founded fallback feeding a counting
// component above it.
func BenchmarkWFSFallback(b *testing.B) {
	src := `
.cost wins/1 : countnat.
win(X)  :- move(X, Y), not win(Y).
wins(N) :- N = count : win(X).
`
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 120; i++ {
		src += fmt.Sprintf("move(p%d, p%d).\n", i, i+1+r.Intn(3))
	}
	en := mustEngine(b, src, core.Options{WFSFallback: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solveB(b, en)
	}
}

// BenchmarkStaticChecks (E13): the full static pipeline (schemas, safety,
// conflict-freedom, admissibility, classification) on the paper's
// programs.
func BenchmarkStaticChecks(b *testing.B) {
	srcs := map[string]string{
		"shortest-path":   programs.ShortestPath,
		"company-control": programs.CompanyControl,
		"circuit":         programs.Circuit,
		"party":           programs.Party,
	}
	for name, src := range srcs {
		prog, err := parser.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				schemas, err := ast.BuildSchemas(prog)
				if err != nil {
					b.Fatal(err)
				}
				rep := monotone.CheckProgram(prog, schemas)
				if rep.Admissible != nil {
					b.Fatal(rep.Admissible)
				}
			}
		})
	}
}
