// Parallel-engine benchmarks: the canonical solve workload across
// worker counts (bounding the overhead of the parallel machinery on a
// single component chain), and a multi-SCC workload where independent
// components give the scheduler real concurrency to exploit. See
// docs/PERFORMANCE.md for recorded results and methodology.
package repro_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/programs"
)

// parallelLevels are the worker counts the recorded tables use:
// sequential, minimal parallelism, and one worker per CPU.
func parallelLevels() []int {
	levels := []int{1, 2}
	if n := runtime.GOMAXPROCS(0); n > 2 {
		levels = append(levels, n)
	}
	return levels
}

// BenchmarkSolveAtParallelism is BenchmarkSolve's workload pinned to
// explicit worker counts. The program is a single component chain, so
// the scheduler has no component concurrency; par=1 must match the
// sequential engine and higher counts must stay within noise of it.
func BenchmarkSolveAtParallelism(b *testing.B) {
	g := gen.Graph(gen.CycleGraph, 96, 4*96, 9, 96)
	src := programs.ShortestPath + gen.GraphFacts(g)
	for _, par := range parallelLevels() {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			en := mustEngine(b, src, core.Options{Limits: core.Limits{Parallelism: par}})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solveB(b, en)
			}
		})
	}
}

// multiSCCSource builds k independent copies of the shortest-path
// program (distinct predicate names per copy), each over its own cyclic
// graph: k disjoint component chains the scheduler can run concurrently.
func multiSCCSource(k, nodes, edges int) string {
	var sb strings.Builder
	for i := 0; i < k; i++ {
		fmt.Fprintf(&sb, ".cost arc%d/3 : minreal.\n", i)
		fmt.Fprintf(&sb, ".cost path%d/4 : minreal.\n", i)
		fmt.Fprintf(&sb, ".cost s%d/3 : minreal.\n", i)
		fmt.Fprintf(&sb, ".ic :- arc%d(direct, Z, C).\n", i)
		fmt.Fprintf(&sb, "path%d(X, direct, Y, C) :- arc%d(X, Y, C).\n", i, i)
		fmt.Fprintf(&sb, "path%d(X, Z, Y, C) :- s%d(X, Z, C1), arc%d(Z, Y, C2), C = C1 + C2.\n", i, i, i)
		fmt.Fprintf(&sb, "s%d(X, Y, C) :- C ?= min D : path%d(X, Z, Y, D).\n", i, i)
		g := gen.Graph(gen.CycleGraph, nodes, edges, 9, int64(i+1))
		sb.WriteString(strings.ReplaceAll(gen.GraphFacts(g), "arc(", fmt.Sprintf("arc%d(", i)))
	}
	return sb.String()
}

// BenchmarkSolveParallel is the scheduler's headline workload: eight
// independent shortest-path components. Sequential evaluation walks
// them one at a time; the parallel scheduler overlaps them, so par>1
// should show a wall-clock win roughly bounded by min(k, workers).
func BenchmarkSolveParallel(b *testing.B) {
	src := multiSCCSource(8, 64, 4*64)
	for _, par := range parallelLevels() {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			en := mustEngine(b, src, core.Options{Limits: core.Limits{Parallelism: par}})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solveB(b, en)
			}
		})
	}
}
