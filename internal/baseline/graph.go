// Package baseline provides direct algorithmic implementations of the
// paper's example problems — shortest paths (Dijkstra, Bellman–Ford),
// company control, circuit evaluation and party attendance — used as
// ground truth for the deductive engine in tests and benchmarks.
package baseline

import (
	"container/heap"
	"errors"
	"math"
)

// Graph is a weighted directed graph over integer vertex ids [0, N).
type Graph struct {
	N     int
	Edges []Edge
	adj   [][]Edge
}

// Edge is a directed weighted edge.
type Edge struct {
	From, To int
	W        float64
}

// NewGraph builds a graph with n vertices.
func NewGraph(n int) *Graph { return &Graph{N: n} }

// AddEdge appends an edge.
func (g *Graph) AddEdge(u, v int, w float64) {
	g.Edges = append(g.Edges, Edge{u, v, w})
	g.adj = nil
}

// Adj returns the adjacency lists, building them on first use.
func (g *Graph) Adj() [][]Edge {
	if g.adj == nil {
		g.adj = make([][]Edge, g.N)
		for _, e := range g.Edges {
			g.adj[e.From] = append(g.adj[e.From], e)
		}
	}
	return g.adj
}

// Dijkstra returns single-source shortest path distances (math.Inf(1) for
// unreachable vertices). Weights must be nonnegative.
//
// Note the paper's convention (Example 2.6): the source itself is at
// distance +∞ unless a cycle returns to it, because s(X,Y) holds only for
// actual paths (of length ≥ 1), not for the empty path. Dijkstra is run
// accordingly: dist[src] is the length of the shortest nonempty cycle
// through src.
func Dijkstra(g *Graph, src int) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	adj := g.Adj()
	type item struct {
		v int
		d float64
	}
	pq := &pqueue{}
	// Seed with the out-edges of src rather than dist[src] = 0, per the
	// nonempty-path convention above.
	for _, e := range adj[src] {
		if e.W < dist[e.To] {
			dist[e.To] = e.W
			heap.Push(pq, pqItem{e.To, e.W})
		}
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, e := range adj[it.v] {
			nd := it.d + e.W
			if nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, pqItem{e.To, nd})
			}
		}
	}
	_ = item{}
	return dist
}

type pqItem struct {
	v int
	d float64
}

type pqueue []pqItem

func (p pqueue) Len() int           { return len(p) }
func (p pqueue) Less(i, j int) bool { return p[i].d < p[j].d }
func (p pqueue) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *pqueue) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *pqueue) Pop() any {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// ErrNegativeCycle is returned by BellmanFord when a negative cycle is
// reachable from the source (the deductive program diverges there too).
var ErrNegativeCycle = errors.New("baseline: negative cycle reachable")

// BellmanFord returns single-source shortest nonempty-path distances,
// supporting negative weights on graphs without reachable negative
// cycles.
func BellmanFord(g *Graph, src int) ([]float64, error) {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	for _, e := range g.Edges {
		if e.From == src && e.W < dist[e.To] {
			dist[e.To] = e.W
		}
	}
	for iter := 0; iter < g.N; iter++ {
		changed := false
		for _, e := range g.Edges {
			if math.IsInf(dist[e.From], 1) {
				continue
			}
			if nd := dist[e.From] + e.W; nd < dist[e.To] {
				dist[e.To] = nd
				changed = true
			}
		}
		if !changed {
			return dist, nil
		}
	}
	// One more pass: any improvement implies a negative cycle.
	for _, e := range g.Edges {
		if !math.IsInf(dist[e.From], 1) && dist[e.From]+e.W < dist[e.To] {
			return nil, ErrNegativeCycle
		}
	}
	return dist, nil
}

// AllPairs runs Dijkstra from every source.
func AllPairs(g *Graph) [][]float64 {
	out := make([][]float64, g.N)
	for s := 0; s < g.N; s++ {
		out[s] = Dijkstra(g, s)
	}
	return out
}
