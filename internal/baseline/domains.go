package baseline

// Ownership is a share-ownership network: Share[x][y] is the fraction of
// company y's shares owned directly by company x.
type Ownership struct {
	N     int
	Share [][]float64
}

// NewOwnership builds an empty network over n companies.
func NewOwnership(n int) *Ownership {
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
	}
	return &Ownership{N: n, Share: s}
}

// CompanyControl solves Example 2.7 directly: controls[x][y] is true when
// x's direct shares in y plus the shares held by companies x controls
// exceed one half. The iteration mirrors the monotone fixpoint: control
// claims only ever get added, and each addition only raises the sums.
func CompanyControl(o *Ownership) (controls [][]bool, holdings [][]float64) {
	controls = make([][]bool, o.N)
	for i := range controls {
		controls[i] = make([]bool, o.N)
	}
	holdings = make([][]float64, o.N)
	for i := range holdings {
		holdings[i] = make([]float64, o.N)
	}
	for changed := true; changed; {
		changed = false
		for x := 0; x < o.N; x++ {
			for y := 0; y < o.N; y++ {
				sum := o.Share[x][y]
				for z := 0; z < o.N; z++ {
					if z != x && controls[x][z] {
						sum += o.Share[z][y]
					}
				}
				holdings[x][y] = sum
				if sum > 0.5 && !controls[x][y] {
					controls[x][y] = true
					changed = true
				}
			}
		}
	}
	return controls, holdings
}

// GateKind distinguishes circuit node types.
type GateKind int

// The circuit node kinds.
const (
	InputNode GateKind = iota
	AndGate
	OrGate
)

// Circuit is a (possibly cyclic) boolean circuit (Example 4.4). Node i
// has kind Kind[i]; gate inputs are listed in In[i]; InputVal[i] is the
// value of an input node.
type Circuit struct {
	N        int
	Kind     []GateKind
	In       [][]int
	InputVal []bool
}

// NewCircuit builds an all-false-input circuit with n nodes.
func NewCircuit(n int) *Circuit {
	return &Circuit{
		N:        n,
		Kind:     make([]GateKind, n),
		In:       make([][]int, n),
		InputVal: make([]bool, n),
	}
}

// Eval computes the minimal fixpoint of the circuit: every wire starts
// false (the default value of Example 4.4) and gates are re-evaluated
// until stable. Because values only flip false→true, the iteration is
// monotone and terminates.
func (c *Circuit) Eval() []bool {
	v := make([]bool, c.N)
	for i := 0; i < c.N; i++ {
		if c.Kind[i] == InputNode {
			v[i] = c.InputVal[i]
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < c.N; i++ {
			var nv bool
			switch c.Kind[i] {
			case InputNode:
				continue
			case AndGate:
				nv = true
				for _, w := range c.In[i] {
					if !v[w] {
						nv = false
						break
					}
				}
				if len(c.In[i]) == 0 {
					nv = true // AND of the empty multiset is true
				}
			case OrGate:
				nv = false
				for _, w := range c.In[i] {
					if v[w] {
						nv = true
						break
					}
				}
			}
			if nv && !v[i] {
				v[i] = true
				changed = true
			}
		}
	}
	return v
}

// Party is an instance of Example 4.3: Requires[i] is how many attending
// acquaintances invitee i needs; Knows[i] lists whom i knows.
type Party struct {
	N        int
	Requires []int
	Knows    [][]int
}

// NewParty builds an instance with n invitees.
func NewParty(n int) *Party {
	return &Party{N: n, Requires: make([]int, n), Knows: make([][]int, n)}
}

// Attendance computes who comes: the least fixpoint of "x comes when at
// least Requires[x] of x's acquaintances come".
func (p *Party) Attendance() []bool {
	coming := make([]bool, p.N)
	for changed := true; changed; {
		changed = false
		for x := 0; x < p.N; x++ {
			if coming[x] {
				continue
			}
			n := 0
			for _, y := range p.Knows[x] {
				if coming[y] {
					n++
				}
			}
			if n >= p.Requires[x] {
				coming[x] = true
				changed = true
			}
		}
	}
	return coming
}
