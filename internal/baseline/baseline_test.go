package baseline

import (
	"math"
	"testing"
)

func TestDijkstraBasic(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 1)
	d := Dijkstra(g, 0)
	if d[2] != 3 || d[3] != 4 || d[1] != 1 {
		t.Fatalf("distances = %v", d)
	}
	if !math.IsInf(d[0], 1) {
		t.Fatalf("no cycle through the source: d[0] = %v (nonempty-path convention)", d[0])
	}
}

func TestDijkstraCycleThroughSource(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	d := Dijkstra(g, 0)
	if d[0] != 3 {
		t.Fatalf("d[0] = %v, want 3 (shortest cycle)", d[0])
	}
}

func TestBellmanFordNegativeWeights(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, -3)
	g.AddEdge(0, 2, 4)
	d, err := BellmanFord(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d[2] != 2 {
		t.Fatalf("d[2] = %v, want 2", d[2])
	}
	// Agreement with Dijkstra on nonnegative graphs.
	g2 := NewGraph(4)
	g2.AddEdge(0, 1, 1)
	g2.AddEdge(1, 2, 2)
	g2.AddEdge(0, 2, 5)
	d1 := Dijkstra(g2, 0)
	d2, err := BellmanFord(g2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("Dijkstra/Bellman-Ford disagree at %d: %v vs %v", i, d1[i], d2[i])
		}
	}
}

func TestBellmanFordNegativeCycle(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, -2)
	if _, err := BellmanFord(g, 0); err != ErrNegativeCycle {
		t.Fatalf("err = %v, want ErrNegativeCycle", err)
	}
}

func TestCompanyControlDirect(t *testing.T) {
	o := NewOwnership(3)
	o.Share[0][1] = 0.6 // a controls b
	o.Share[0][2] = 0.3
	o.Share[1][2] = 0.3 // a+b control c
	controls, holdings := CompanyControl(o)
	if !controls[0][1] || !controls[0][2] {
		t.Fatalf("controls = %v", controls)
	}
	if controls[1][2] {
		t.Fatal("b alone does not control c")
	}
	if holdings[0][2] != 0.6 {
		t.Fatalf("holdings[0][2] = %v", holdings[0][2])
	}
}

func TestCircuitEval(t *testing.T) {
	c := NewCircuit(4)
	c.Kind[0] = InputNode
	c.InputVal[0] = true
	c.Kind[1] = InputNode
	c.InputVal[1] = false
	c.Kind[2] = AndGate
	c.In[2] = []int{0, 1}
	c.Kind[3] = OrGate
	c.In[3] = []int{0, 2}
	v := c.Eval()
	if v[2] || !v[3] {
		t.Fatalf("values = %v", v)
	}
}

func TestCircuitCyclicMinimal(t *testing.T) {
	// AND gate feeding itself: stays false. OR latch with true input:
	// becomes true.
	c := NewCircuit(1)
	c.Kind[0] = AndGate
	c.In[0] = []int{0}
	if v := c.Eval(); v[0] {
		t.Fatal("self-AND must stay false (minimal behaviour)")
	}
	c2 := NewCircuit(2)
	c2.Kind[0] = InputNode
	c2.InputVal[0] = true
	c2.Kind[1] = OrGate
	c2.In[1] = []int{0, 1}
	if v := c2.Eval(); !v[1] {
		t.Fatal("OR latch must turn true")
	}
}

func TestPartyAttendance(t *testing.T) {
	p := NewParty(3)
	p.Requires = []int{0, 1, 2}
	p.Knows[1] = []int{0}
	p.Knows[2] = []int{0, 1}
	coming := p.Attendance()
	for i, want := range []bool{true, true, true} {
		if coming[i] != want {
			t.Fatalf("coming = %v", coming)
		}
	}
	// A mutual-requirement cycle stays home.
	q := NewParty(2)
	q.Requires = []int{1, 1}
	q.Knows[0] = []int{1}
	q.Knows[1] = []int{0}
	coming = q.Attendance()
	if coming[0] || coming[1] {
		t.Fatal("the cycle must not bootstrap itself")
	}
}
