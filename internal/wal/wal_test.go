package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
)

// testFP is the fingerprint used throughout; a second one exercises
// mismatch refusal.
var (
	testFP  = [32]byte{1, 2, 3, 4}
	otherFP = [32]byte{9, 9, 9, 9}
)

// collect replays the whole log into ordered (seq, payload) pairs.
func collect(t *testing.T, l *Log, after uint64) (seqs []uint64, payloads [][]byte) {
	t.Helper()
	err := l.Replay(after, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, payloads
}

// appendN appends records seq 1..n with deterministic payloads.
func appendN(t *testing.T, l *Log, from uint64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		seq := from + uint64(i)
		if _, err := l.Append(seq, []byte(fmt.Sprintf("batch-%d", seq))); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 5)
	if got := l.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: dir, Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 5 || l2.FirstSeq() != 1 {
		t.Fatalf("reopened: first %d last %d, want 1..5", l2.FirstSeq(), l2.LastSeq())
	}
	seqs, payloads := collect(t, l2, 2)
	if len(seqs) != 3 || seqs[0] != 3 || seqs[2] != 5 {
		t.Fatalf("replay after 2: seqs %v", seqs)
	}
	if string(payloads[0]) != "batch-3" {
		t.Fatalf("payload = %q", payloads[0])
	}
	// Appending continues the sequence after a reopen.
	if _, err := l2.Append(6, []byte("batch-6")); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

func TestWALContiguityEnforced(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Fingerprint: testFP, StartSeq: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(41, nil); err == nil {
		t.Fatal("append at the watermark should fail")
	}
	if _, err := l.Append(43, nil); err == nil {
		t.Fatal("append past the next seq should fail")
	}
	if _, err := l.Append(42, []byte("x")); err != nil {
		t.Fatalf("append 42: %v", err)
	}
	// The first segment is named for the first record it holds.
	if l.Segments() != 1 || l.segments[0].name != segmentName(42) {
		t.Fatalf("segments = %v", l.segments)
	}
}

func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fingerprint: testFP, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 20)
	if l.Segments() < 3 {
		t.Fatalf("expected rotation, got %d segment(s)", l.Segments())
	}
	total := l.Segments()

	// Replay over a rotated log sees every record exactly once.
	seqs, _ := collect(t, l, 0)
	if len(seqs) != 20 || seqs[0] != 1 || seqs[19] != 20 {
		t.Fatalf("replay: %d records, first %d last %d", len(seqs), seqs[0], seqs[len(seqs)-1])
	}

	// Compacting at a mid watermark removes only wholly-subsumed
	// segments and keeps everything past the watermark replayable.
	removed, err := l.Compact(10)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || l.Segments() != total-removed {
		t.Fatalf("removed %d of %d", removed, total)
	}
	if l.FirstSeq() > 11 {
		t.Fatalf("FirstSeq %d after compacting to 10: acked history dropped", l.FirstSeq())
	}
	seqs, _ = collect(t, l, 10)
	if len(seqs) != 10 || seqs[0] != 11 {
		t.Fatalf("replay after compact: %v", seqs)
	}

	// Compacting at the head keeps the current segment.
	if _, err := l.Compact(l.LastSeq()); err != nil {
		t.Fatal(err)
	}
	if l.Segments() != 1 {
		t.Fatalf("%d segments after full compaction, want 1", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir, Fingerprint: testFP, SegmentBytes: 128})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer l2.Close()
	if l2.LastSeq() != 20 {
		t.Fatalf("LastSeq after reopen = %d", l2.LastSeq())
	}
}

// buildSegment assembles a segment image from whole-cloth.
func buildSegment(fp [32]byte, first uint64, payloads ...string) []byte {
	var b bytes.Buffer
	b.WriteString(magic)
	b.WriteByte(Version)
	b.Write(fp[:])
	for i, p := range payloads {
		b.Write(encodeFrame(first+uint64(i), []byte(p)))
	}
	return b.Bytes()
}

// writeSegment installs a raw segment image in dir.
func writeSegment(t *testing.T, dir string, first uint64, data []byte) string {
	t.Helper()
	path := filepath.Join(dir, segmentName(first))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestWALTornTailEveryPrefix is the satellite table test: every prefix
// of a multi-record segment must recover — retaining exactly the
// records wholly inside the prefix — and the repaired log must accept
// further appends. A prefix is precisely what an interrupted append
// sequence leaves behind.
func TestWALTornTailEveryPrefix(t *testing.T) {
	full := buildSegment(testFP, 1, "alpha", "beta", "gamma-longer", "d")
	// Record boundaries, for computing how many records a prefix keeps.
	bounds := []int{headerSize}
	for off := headerSize; off < len(full); {
		ln := int(uint32(full[off])<<24 | uint32(full[off+1])<<16 | uint32(full[off+2])<<8 | uint32(full[off+3]))
		off += frameSize + ln
		bounds = append(bounds, off)
	}
	for cut := 0; cut <= len(full); cut++ {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			writeSegment(t, dir, 1, full[:cut])
			l, err := Open(Options{Dir: dir, Fingerprint: testFP})
			if err != nil {
				t.Fatalf("Open on prefix %d: %v", cut, err)
			}
			defer l.Close()
			want := 0
			for _, b := range bounds[1:] {
				if cut >= b {
					want++
				}
			}
			seqs, _ := collect(t, l, 0)
			if len(seqs) != want {
				t.Fatalf("prefix %d: recovered %d records, want %d", cut, len(seqs), want)
			}
			if cut != len(full) && l.Repaired() == nil && cut != bounds[len(seqs)] {
				t.Fatalf("prefix %d: no repair recorded", cut)
			}
			// The log must stay appendable at the right next seq.
			next := uint64(want) + 1
			if _, err := l.Append(next, []byte("resumed")); err != nil {
				t.Fatalf("prefix %d: append after repair: %v", cut, err)
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWALTornFinalRecordCRCRecovers(t *testing.T) {
	dir := t.TempDir()
	data := buildSegment(testFP, 1, "alpha", "beta")
	data[len(data)-1] ^= 0xff // bit rot inside the final record
	writeSegment(t, dir, 1, data)
	l, err := Open(Options{Dir: dir, Fingerprint: testFP})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	seqs, payloads := collect(t, l, 0)
	if len(seqs) != 1 || string(payloads[0]) != "alpha" {
		t.Fatalf("recovered %v", seqs)
	}
	if r := l.Repaired(); r == nil || r.Dropped == 0 {
		t.Fatalf("repair = %+v", r)
	}
}

func TestWALZeroFilledTailRecovers(t *testing.T) {
	dir := t.TempDir()
	data := buildSegment(testFP, 1, "alpha")
	data = append(data, make([]byte, 37)...) // size extended, pages never written
	writeSegment(t, dir, 1, data)
	l, err := Open(Options{Dir: dir, Fingerprint: testFP})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if seqs, _ := collect(t, l, 0); len(seqs) != 1 {
		t.Fatalf("recovered %v", seqs)
	}
}

func TestWALMidLogCorruptionRefused(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(dir string, t *testing.T)
	}{
		{"early record bit rot", func(dir string, t *testing.T) {
			data := buildSegment(testFP, 1, "alpha", "beta", "gamma")
			data[headerSize+frameSize+seqSize] ^= 0xff // inside record 1's payload
			writeSegment(t, dir, 1, data)
		}},
		{"garbage length mid-log", func(dir string, t *testing.T) {
			data := buildSegment(testFP, 1, "alpha", "beta")
			data[headerSize] = 0xee // record 1's length field, valid data after
			writeSegment(t, dir, 1, data)
		}},
		{"sequence gap", func(dir string, t *testing.T) {
			seg := buildSegment(testFP, 1, "alpha")
			seg = append(seg, encodeFrame(3, []byte("skipped 2"))...)
			writeSegment(t, dir, 1, seg)
		}},
		{"damage in a non-final segment", func(dir string, t *testing.T) {
			first := buildSegment(testFP, 1, "alpha", "beta")
			writeSegment(t, dir, 1, first[:len(first)-3]) // torn, but a successor exists
			writeSegment(t, dir, 3, buildSegment(testFP, 3, "gamma"))
		}},
		{"missing middle segment", func(dir string, t *testing.T) {
			writeSegment(t, dir, 1, buildSegment(testFP, 1, "alpha"))
			writeSegment(t, dir, 5, buildSegment(testFP, 5, "epsilon"))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			tc.mangle(dir, t)
			_, err := Open(Options{Dir: dir, Fingerprint: testFP})
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open = %v, want ErrCorrupt", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) || ce.Segment == "" || ce.Reason == "" {
				t.Fatalf("error is not a located CorruptError: %#v", err)
			}
		})
	}
}

func TestWALFingerprintMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	writeSegment(t, dir, 1, buildSegment(otherFP, 1, "alpha"))
	if _, err := Open(Options{Dir: dir, Fingerprint: testFP}); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("Open = %v, want ErrFingerprint", err)
	}
}

func TestWALAppendFaultBreaksLog(t *testing.T) {
	defer faults.Reset()
	l, err := Open(Options{Dir: t.TempDir(), Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	faults.Arm(faults.Fault{Point: faults.WALAppendWrite, Err: errors.New("disk gone")})
	if _, err := l.Append(2, []byte("fails")); err == nil {
		t.Fatal("append did not fail")
	}
	// Broken is sticky: the segment tail state is unknown, so later
	// writes and syncs must refuse rather than append after garbage.
	if _, err := l.Append(2, []byte("again")); err == nil {
		t.Fatal("append after failure should stay failed")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync after failure should stay failed")
	}
}

func TestWALFsyncFaultBreaksLog(t *testing.T) {
	defer faults.Reset()
	l, err := Open(Options{Dir: t.TempDir(), Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	faults.Arm(faults.Fault{Point: faults.WALFsync, Err: errors.New("io error")})
	if err := l.Sync(); err == nil {
		t.Fatal("sync did not fail")
	}
	if _, err := l.Append(2, nil); err == nil {
		t.Fatal("append after failed sync should refuse")
	}
}

func TestWALRecoverReadFaultTornTail(t *testing.T) {
	defer faults.Reset()
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 4)
	l.Close()
	// The default mangle truncates to half length: a torn tail.
	faults.Arm(faults.Fault{Point: faults.WALRecoverRead})
	l2, err := Open(Options{Dir: dir, Fingerprint: testFP})
	if err != nil {
		t.Fatalf("Open under torn-tail fault: %v", err)
	}
	defer l2.Close()
	if l2.Repaired() == nil {
		t.Fatal("no repair recorded")
	}
	if l2.LastSeq() >= 4 {
		t.Fatalf("LastSeq %d survived a half-truncation", l2.LastSeq())
	}
}

func TestWALEmptyOnlySegmentTornHeader(t *testing.T) {
	// A crash during the very first segment's creation leaves a short
	// file; recovery must start the log over, not refuse.
	dir := t.TempDir()
	writeSegment(t, dir, 1, []byte(magic[:3]))
	l, err := Open(Options{Dir: dir, Fingerprint: testFP})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if l.LastSeq() != 0 {
		t.Fatalf("LastSeq = %d", l.LastSeq())
	}
	if _, err := l.Append(1, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
}

func TestWALOversizeRecordRefused(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir(), Fingerprint: testFP})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(1, make([]byte, MaxRecord)); err == nil {
		t.Fatal("oversize append accepted")
	}
}
