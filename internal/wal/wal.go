// Package wal is a durable write-ahead log for the serve tier: a
// checksummed, length-prefixed, append-only record of committed assert
// batches, fsynced by group commit and replayed over a checkpoint at
// warm start.
//
// Soundness of replay rests on the monotonicity of T_P (Ross & Sagiv):
// EDB insertion is idempotent and order-insensitive, so re-applying any
// suffix of logged batches over any checkpointed interpretation — even
// batches the checkpoint already subsumes — reconverges to the same
// least model an uninterrupted run would have computed. The log
// therefore never needs undo records, only a contiguous sequence of
// redo batches.
//
// # Format (version 1)
//
// A log is a directory of segment files named wal-<firstseq>.seg,
// where <firstseq> is the zero-padded decimal sequence number of the
// first record the segment holds. Each segment is
//
//	header  magic "MDLWAL" + version byte + program fingerprint[32]
//	records [length u32][crc32c u32][seq u64 ‖ payload]...
//
// length counts the body (seq + payload); the CRC (Castagnoli) covers
// the body. Sequence numbers are assigned by the caller and must be
// contiguous across the whole log; segment rotation syncs the old file
// before the new one exists, so a later segment durably existing
// implies every earlier segment is complete.
//
// # Recovery
//
// Open scans every segment. Damage in the final segment's tail — a
// short frame, a body running past EOF, a zero-filled region, or a CRC
// failure on the very last record — is the signature of a torn write:
// the tail is truncated at the last valid record and the log stays
// usable. Damage anywhere else (a non-final segment, a mid-segment CRC
// failure with valid data after it, a sequence gap) cannot come from a
// crash mid-append and means acked history is unrecoverable; Open
// refuses with a structured *CorruptError (errors.Is ErrCorrupt)
// rather than silently dropping committed batches. A fingerprint
// mismatch refuses with ErrFingerprint: replaying another program's
// batches would compute a wrong model.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/faults"
)

// Version is the current segment format version.
const Version = 1

const (
	magic      = "MDLWAL"
	headerSize = len(magic) + 1 + 32 // magic, version byte, fingerprint
	frameSize  = 8                   // length u32 + crc u32
	seqSize    = 8
)

// MaxRecord bounds one record's body (seq + payload); the decoder
// rejects declared lengths beyond it so a corrupt length cannot drive
// allocation.
const MaxRecord = 64 << 20

// DefaultSegmentBytes is the rotation threshold when Options leaves it
// zero.
const DefaultSegmentBytes = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Error classes, testable with errors.Is on anything Open, Append,
// Sync or Replay returns.
var (
	// ErrCorrupt marks mid-log corruption: damage recovery must refuse
	// to repair because truncating there would drop acked batches.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrFingerprint marks a log written by a different program.
	ErrFingerprint = errors.New("wal: program fingerprint mismatch")
	// ErrClosed marks use after Close.
	ErrClosed = errors.New("wal: closed")
)

// CorruptError pinpoints refused mid-log damage.
type CorruptError struct {
	Segment string // segment file name
	Offset  int64  // byte offset of the first invalid record
	Reason  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log: %s at %s:%d", e.Reason, e.Segment, e.Offset)
}

// Is makes errors.Is(err, ErrCorrupt) hold for every CorruptError.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// Repair describes a torn tail truncated during Open.
type Repair struct {
	Segment string // segment file name
	Offset  int64  // byte offset the segment was truncated to
	Dropped int64  // bytes discarded
	Reason  string
}

// Options configures Open.
type Options struct {
	// Dir is the log directory, created if missing.
	Dir string
	// Fingerprint identifies the program; segments written under a
	// different fingerprint are refused.
	Fingerprint [32]byte
	// StartSeq seeds sequence numbering when the directory holds no
	// segments (typically the restored checkpoint's watermark): the
	// first Append must then carry StartSeq+1.
	StartSeq uint64
	// SegmentBytes rotates to a fresh segment once the current one
	// would exceed this size (0 = DefaultSegmentBytes).
	SegmentBytes int64
}

// segment is one on-disk segment file.
type segment struct {
	name  string // base name
	first uint64 // sequence number of its first record (from the name)
}

// Log is an open write-ahead log. Methods are safe for use from one
// goroutine at a time per method class; the internal mutex additionally
// serializes writers against Compact and metrics reads.
type Log struct {
	mu       sync.Mutex
	dir      string
	fp       [32]byte
	segBytes int64
	segments []segment
	f        *os.File // current (last) segment, append position at its end
	size     int64    // bytes in the current segment
	firstSeq uint64   // oldest retained record (lastSeq+1 when empty)
	lastSeq  uint64   // newest record (StartSeq when empty)
	repaired *Repair
	broken   error // sticky first write/sync failure; nil while healthy
	closed   bool
}

// Open scans, repairs and opens the log at opts.Dir, creating it (and
// a first segment) when empty. It returns ErrFingerprint or a
// *CorruptError as described in the package comment.
func Open(opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: opts.Dir, fp: opts.Fingerprint, segBytes: opts.SegmentBytes, lastSeq: opts.StartSeq}
	names, err := segmentNames(opts.Dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		if err := l.createSegment(opts.StartSeq + 1); err != nil {
			return nil, err
		}
		l.firstSeq = opts.StartSeq + 1
		return l, nil
	}
	if err := l.recover(names); err != nil {
		return nil, err
	}
	return l, nil
}

// segmentNames lists the log's segment base names in sequence order.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// nameSeq parses the first-sequence number a segment name encodes.
func nameSeq(name string) (uint64, error) {
	s := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, &CorruptError{Segment: name, Reason: "unparsable segment name"}
	}
	return n, nil
}

func segmentName(first uint64) string {
	return fmt.Sprintf("wal-%020d.seg", first)
}

// recover validates every existing segment, repairs a torn tail in the
// last one, and positions the log for appending.
func (l *Log) recover(names []string) error {
	prevLast := uint64(0)
	records := 0
	for i, name := range names {
		first, err := nameSeq(name)
		if err != nil {
			return err
		}
		if i == 0 {
			prevLast = first - 1
			l.firstSeq = first
		} else if first != prevLast+1 {
			return &CorruptError{Segment: name, Reason: fmt.Sprintf("segment gap: starts at seq %d, want %d", first, prevLast+1)}
		}
		path := filepath.Join(l.dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		// Recovery-read fault: tests mangle the bytes here to simulate
		// torn tails and bit rot.
		data = faults.Apply(faults.WALRecoverRead, data)
		last := i == len(names)-1
		scan, err := parseSegment(data, l.fp, prevLast+1, last)
		if err != nil {
			decorate(err, name)
			return err
		}
		if scan.torn {
			if err := l.repairTail(path, name, data, scan); err != nil {
				return err
			}
			if scan.validEnd == 0 && len(names) == 1 {
				// The only segment was unreadable before its first record;
				// start over from the in-name sequence.
				l.firstSeq = first
				l.lastSeq = first - 1
				return l.createSegment(first)
			}
		}
		if n := len(scan.recs); n > 0 {
			prevLast = scan.recs[n-1].seq
			records += n
		}
		if last && !(scan.torn && scan.validEnd == 0) {
			l.segments = append(l.segments, segment{name: name, first: first})
			l.size = int64(scan.validEnd)
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			l.f = f
		} else if !last {
			l.segments = append(l.segments, segment{name: name, first: first})
		}
	}
	l.lastSeq = prevLast
	if records == 0 {
		l.firstSeq = l.lastSeq + 1
	}
	if l.f == nil {
		// The last segment was removed whole (torn before its header)
		// but earlier segments survive: append into a fresh one.
		return l.createSegment(l.lastSeq + 1)
	}
	return nil
}

// decorate fills the segment name into a CorruptError built by the
// name-agnostic parser.
func decorate(err error, name string) {
	var ce *CorruptError
	if errors.As(err, &ce) && ce.Segment == "" {
		ce.Segment = name
	}
}

// repairTail truncates a torn tail (or removes a segment torn before
// its first record) and makes the repair durable.
func (l *Log) repairTail(path, name string, data []byte, scan segScan) error {
	l.repaired = &Repair{
		Segment: name,
		Offset:  int64(scan.validEnd),
		Dropped: int64(len(data) - scan.validEnd),
		Reason:  scan.reason,
	}
	if scan.validEnd == 0 {
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: removing torn segment: %w", err)
		}
		return syncDir(l.dir)
	}
	if err := os.Truncate(path, int64(scan.validEnd)); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing repaired segment: %w", err)
	}
	return nil
}

// createSegment starts a fresh segment whose first record will carry
// sequence number first, and durably records its existence.
func (l *Log) createSegment(first uint64) error {
	name := segmentName(first)
	path := filepath.Join(l.dir, name)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, magic...)
	hdr = append(hdr, Version)
	hdr = append(hdr, l.fp[:]...)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.size = int64(headerSize)
	l.segments = append(l.segments, segment{name: name, first: first})
	return nil
}

// syncDir fsyncs a directory so renames, creates and removes within it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: syncing directory %s: %w", dir, err)
	}
	return nil
}

// Append writes one record. seq must be LastSeq()+1 — the caller owns
// sequence assignment. The bytes reach the OS but not necessarily the
// platter; call Sync before acking (per the configured fsync policy).
// Returns the framed size written. A failed write marks the log broken:
// every later Append and Sync fails, because bytes of unknown extent
// may follow the last good record.
func (l *Log) Append(seq uint64, payload []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usable(); err != nil {
		return 0, err
	}
	if seq != l.lastSeq+1 {
		return 0, fmt.Errorf("wal: non-contiguous append: seq %d after %d", seq, l.lastSeq)
	}
	if len(payload)+seqSize > MaxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(payload)+seqSize, MaxRecord)
	}
	if err := faults.Check(faults.WALAppendWrite); err != nil {
		l.broken = fmt.Errorf("wal: append failed: %w", err)
		return 0, l.broken
	}
	frame := encodeFrame(seq, payload)
	if l.size+int64(len(frame)) > l.segBytes && l.size > int64(headerSize) {
		if err := l.rotate(seq); err != nil {
			l.broken = err
			return 0, err
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		l.broken = fmt.Errorf("wal: append failed: %w", err)
		return 0, l.broken
	}
	l.size += int64(len(frame))
	l.lastSeq = seq
	return len(frame), nil
}

// rotate seals the current segment (fsync — so a durable successor
// implies a complete predecessor) and opens the next.
func (l *Log) rotate(first uint64) error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sealing segment: %w", err)
	}
	return l.createSegment(first)
}

// Sync fsyncs the current segment; group commit calls it once per
// drain before acking the drained batches. A failure marks the log
// broken.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usable(); err != nil {
		return err
	}
	// Fsync fault: Delay models a stalling disk, Err a dying one.
	if err := faults.Check(faults.WALFsync); err != nil {
		l.broken = fmt.Errorf("wal: fsync failed: %w", err)
		return l.broken
	}
	if err := l.f.Sync(); err != nil {
		l.broken = fmt.Errorf("wal: fsync failed: %w", err)
		return l.broken
	}
	return nil
}

func (l *Log) usable() error {
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return l.broken
	}
	return nil
}

// Replay streams every retained record with sequence number > after to
// fn, in order. The payload slice is only valid during the call.
func (l *Log) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segments...)
	l.mu.Unlock()
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].first <= after+1 {
			continue // wholly covered; the next segment starts at or before after+1
		}
		data, err := os.ReadFile(filepath.Join(l.dir, seg.name))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		scan, err := parseSegment(data, l.fp, seg.first, i == len(segs)-1)
		if err != nil {
			decorate(err, seg.name)
			return err
		}
		if scan.torn {
			// Open repaired the tail; fresh damage since then is refused.
			return &CorruptError{Segment: seg.name, Offset: int64(scan.validEnd), Reason: scan.reason}
		}
		for _, r := range scan.recs {
			if r.seq <= after {
				continue
			}
			if err := fn(r.seq, data[r.off:r.off+r.n]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Compact removes every segment wholly subsumed by a durable
// checkpoint at watermark (all of its records have seq ≤ watermark and
// a later segment exists). The current segment always survives.
// Returns how many segments were removed.
func (l *Log) Compact(watermark uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(l.segments) > 1 && l.segments[1].first <= watermark+1 {
		if err := os.Remove(filepath.Join(l.dir, l.segments[0].name)); err != nil {
			return removed, fmt.Errorf("wal: compacting: %w", err)
		}
		l.segments = l.segments[1:]
		removed++
	}
	if removed > 0 {
		l.firstSeq = l.segments[0].first
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Close seals the log. It does not fsync unwritten data — callers ack
// only after Sync, so anything lost here was never promised.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.f != nil {
		return l.f.Close()
	}
	return nil
}

// LastSeq is the newest record's sequence number (StartSeq when the
// log holds none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// FirstSeq is the oldest retained record's sequence number
// (LastSeq()+1 when the log holds none). A warm start must check
// FirstSeq ≤ watermark+1: a later first record means compaction
// outlived the checkpoint and acked history is gone.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstSeq
}

// Segments is the number of on-disk segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}

// Repaired reports the torn-tail repair Open performed, if any.
func (l *Log) Repaired() *Repair { return l.repaired }

// Dir is the log directory.
func (l *Log) Dir() string { return l.dir }

// encodeFrame builds one on-disk record.
func encodeFrame(seq uint64, payload []byte) []byte {
	body := len(payload) + seqSize
	frame := make([]byte, frameSize+body)
	binary.BigEndian.PutUint32(frame[0:4], uint32(body))
	binary.BigEndian.PutUint64(frame[frameSize:], seq)
	copy(frame[frameSize+seqSize:], payload)
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(frame[frameSize:], castagnoli))
	return frame
}

// segRec locates one valid record inside a segment's bytes.
type segRec struct {
	seq uint64
	off int // payload offset
	n   int // payload length
}

// segScan is the outcome of parsing one segment.
type segScan struct {
	recs     []segRec
	validEnd int    // bytes of valid prefix (headerSize when no records)
	torn     bool   // tail beyond validEnd is torn; truncate there
	reason   string // why the tail was classified torn
}

// parseSegment validates one segment image. wantSeq is the expected
// sequence number of its first record; last selects torn-tail leniency
// (only the final segment of a log may legally be torn — damage
// elsewhere returns a *CorruptError with the segment name left for the
// caller to fill in). It never panics, whatever the input.
func parseSegment(data []byte, fp [32]byte, wantSeq uint64, last bool) (segScan, error) {
	scan := segScan{}
	if len(data) < headerSize {
		if last {
			scan.torn, scan.reason = true, "segment shorter than its header"
			return scan, nil
		}
		return scan, &CorruptError{Reason: "segment shorter than its header"}
	}
	if string(data[:len(magic)]) != magic || data[len(magic)] != Version {
		if last && len(data) == headerSize {
			scan.torn, scan.reason = true, "torn segment header"
			return scan, nil
		}
		return scan, &CorruptError{Reason: "bad segment magic or version"}
	}
	if string(data[len(magic)+1:headerSize]) != string(fp[:]) {
		return scan, fmt.Errorf("%w: segment written by program %x…", ErrFingerprint, data[len(magic)+1:len(magic)+7])
	}
	off := headerSize
	scan.validEnd = off
	torn := func(reason string) (segScan, error) {
		if !last {
			return scan, &CorruptError{Offset: int64(off), Reason: reason + " mid-log"}
		}
		scan.torn, scan.reason = true, reason
		return scan, nil
	}
	for off < len(data) {
		rem := len(data) - off
		if rem < frameSize {
			return torn("truncated record frame")
		}
		ln := int(binary.BigEndian.Uint32(data[off : off+4]))
		if ln < seqSize || ln > MaxRecord {
			if allZero(data[off:]) {
				// A crash can persist a file-size extension before the
				// data pages, leaving a zero tail; garbage lengths with
				// non-zero data behind them cannot come from a torn
				// append and are refused.
				return torn("zero-filled tail")
			}
			return scan, &CorruptError{Offset: int64(off), Reason: fmt.Sprintf("invalid record length %d", ln)}
		}
		if ln > rem-frameSize {
			return torn("record body past end of segment")
		}
		body := data[off+frameSize : off+frameSize+ln]
		if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(data[off+4:off+8]) {
			if last && off+frameSize+ln == len(data) {
				return torn("checksum mismatch in final record")
			}
			return scan, &CorruptError{Offset: int64(off), Reason: "record checksum mismatch"}
		}
		seq := binary.BigEndian.Uint64(body[:seqSize])
		if seq != wantSeq {
			return scan, &CorruptError{Offset: int64(off), Reason: fmt.Sprintf("sequence discontinuity: record %d, want %d", seq, wantSeq)}
		}
		scan.recs = append(scan.recs, segRec{seq: seq, off: off + frameSize + seqSize, n: ln - seqSize})
		wantSeq++
		off += frameSize + ln
		scan.validEnd = off
	}
	return scan, nil
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}
