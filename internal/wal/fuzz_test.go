package wal

import (
	"bytes"
	"testing"
)

// FuzzWALDecode drives the bounds-checked segment parser with arbitrary
// bytes (mirroring the snapshot decoder's FuzzSnapshotRoundTrip):
// whatever the input, parseSegment must not panic, must classify every
// byte it accepts (validEnd within bounds, sequence numbers contiguous
// from the expected start), and what it accepts must re-encode to
// exactly the bytes it accepted — the codec is the identity on its own
// output.
func FuzzWALDecode(f *testing.F) {
	fp := [32]byte{1, 2, 3, 4}
	valid := buildSeed(fp, 1, "alpha", "beta", "a-longer-payload")
	f.Add(valid, true)
	f.Add(valid, false)
	f.Add(valid[:len(valid)-5], true)
	f.Add(valid[:headerSize], true)
	f.Add(valid[:3], false)
	mangled := append([]byte(nil), valid...)
	mangled[headerSize+frameSize+seqSize] ^= 0xff
	f.Add(mangled, true)
	f.Add(append(append([]byte(nil), valid...), make([]byte, 64)...), true)
	f.Add([]byte{}, true)

	f.Fuzz(func(t *testing.T, data []byte, last bool) {
		scan, err := parseSegment(data, fp, 1, last)
		if err != nil {
			return
		}
		if scan.validEnd > len(data) {
			t.Fatalf("validEnd %d beyond %d input bytes", scan.validEnd, len(data))
		}
		if scan.torn && !last {
			t.Fatal("non-final segment classified torn instead of corrupt")
		}
		if !scan.torn && len(data) >= headerSize && scan.validEnd != len(data) {
			t.Fatalf("clean parse left %d unexplained bytes", len(data)-scan.validEnd)
		}
		// Accepted records re-encode to the accepted prefix, byte for
		// byte; their sequence numbers are contiguous from 1.
		var re bytes.Buffer
		re.WriteString(magic)
		re.WriteByte(Version)
		re.Write(fp[:])
		for i, r := range scan.recs {
			if r.seq != uint64(i)+1 {
				t.Fatalf("record %d has seq %d", i, r.seq)
			}
			if r.off < 0 || r.n < 0 || r.off+r.n > len(data) {
				t.Fatalf("record %d spans [%d,%d) of %d bytes", i, r.off, r.off+r.n, len(data))
			}
			re.Write(encodeFrame(r.seq, data[r.off:r.off+r.n]))
		}
		if scan.validEnd > 0 && !bytes.Equal(re.Bytes(), data[:scan.validEnd]) {
			t.Fatal("re-encoding the accepted records differs from the accepted bytes")
		}
	})
}

// buildSeed mirrors wal_test.go's buildSegment without depending on
// testing.T plumbing.
func buildSeed(fp [32]byte, first uint64, payloads ...string) []byte {
	var b bytes.Buffer
	b.WriteString(magic)
	b.WriteByte(Version)
	b.Write(fp[:])
	for i, p := range payloads {
		b.Write(encodeFrame(first+uint64(i), []byte(p)))
	}
	return b.Bytes()
}
