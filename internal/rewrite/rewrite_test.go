package rewrite

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/val"
	"repro/internal/wfs"
)

const shortestPath = `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func nums(args ...any) []val.T {
	out := make([]val.T, len(args))
	for i, a := range args {
		switch a := a.(type) {
		case string:
			out[i] = val.Symbol(a)
		case int:
			out[i] = val.Number(float64(a))
		}
	}
	return out
}

func TestRewriteShape(t *testing.T) {
	prog := mustParse(t, shortestPath+"arc(a, b, 1).\n")
	norm, err := MinMax(prog)
	if err != nil {
		t.Fatal(err)
	}
	// One aggregate rule becomes two; the rest copy over.
	if len(norm.Rules) != len(prog.Rules)+1 {
		t.Fatalf("rules = %d, want %d", len(norm.Rules), len(prog.Rules)+1)
	}
	text := norm.String()
	if !strings.Contains(text, "not ggz_less_s_1") {
		t.Fatalf("missing negated dominance subgoal:\n%s", text)
	}
	if strings.Contains(text, "?=") || strings.Contains(text, "min") {
		t.Fatalf("aggregates must be gone:\n%s", text)
	}
	// No aggregates remain structurally.
	for _, r := range norm.Rules {
		for _, sg := range r.Body {
			if _, isAgg := sg.(*ast.Agg); isAgg {
				t.Fatalf("aggregate survived in %q", r)
			}
		}
	}
}

// TestRewriteAgreesOnAcyclic reproduces §5.4's headline: on nonnegative
// acyclic graphs, the rewritten program's (two-valued) well-founded model
// assigns exactly the monotonic least model's s atoms.
func TestRewriteAgreesOnAcyclic(t *testing.T) {
	src := shortestPath + `
arc(a, b, 1).
arc(b, c, 2).
arc(a, c, 5).
arc(c, d, 1).
`
	prog := mustParse(t, src)
	norm, err := MinMax(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wfs.Solve(norm, wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TwoValued() {
		t.Fatalf("cost-monotonic programs have a two-valued WF model; %d undefined", res.UndefinedCount())
	}
	en, err := core.New(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every s atom of the least model is true in the rewritten WF model,
	// and no other s atom is.
	sCount := 0
	m.Rel("s/3").Each(func(row relationRow) bool {
		sCount++
		args := append(append([]val.T{}, row.Args...), row.Cost)
		if res.Status("s/3", args) != wfs.True {
			t.Errorf("s%v missing from the rewritten WF model", args)
		}
		return true
	})
	wfsCount := 0
	res.True.Each("s/3", func([]val.T) bool { wfsCount++; return true })
	if wfsCount != sCount {
		t.Fatalf("rewritten WF model has %d s atoms, least model has %d", wfsCount, sCount)
	}
}

// TestRewriteZeroCycleAgrees: Example 3.1's graph (a zero-weight cycle)
// also agrees — the rewritten model picks M1's values.
func TestRewriteZeroCycleAgrees(t *testing.T) {
	src := shortestPath + "arc(a, b, 1).\narc(b, b, 0).\n"
	norm, err := MinMax(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := wfs.Solve(norm, wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Status("s/3", nums("a", "b", 1)); got != wfs.True {
		t.Fatalf("s(a,b,1) = %v, want true (M1)", got)
	}
	if got := res.Status("s/3", nums("a", "b", 0)); got != wfs.False {
		t.Fatalf("s(a,b,0) = %v, want false (M2 is rejected by the rewriting)", got)
	}
}

// TestRewriteDivergesOnPositiveCycle: without the cost functional
// dependency the rewritten path relation is infinite on positive cycles —
// the §7 motivation for greedy evaluation. The native engine terminates
// on the same input.
func TestRewriteDivergesOnPositiveCycle(t *testing.T) {
	src := shortestPath + "arc(a, b, 1).\narc(b, a, 1).\n"
	norm, err := MinMax(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wfs.Solve(norm, wfs.Options{MaxAtoms: 400, MaxIters: 200}); err == nil {
		t.Fatal("the rewritten program must diverge on a positive cycle")
	}
	en, err := core.New(mustParse(t, src), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := en.Solve(nil)
	if err != nil {
		t.Fatalf("the native engine must terminate: %v", err)
	}
	row, ok := m.Rel("s/3").Get(nums("a", "a"))
	if !ok || row.Cost.N != 2 {
		t.Fatalf("s(a,a) = %v, want 2", row)
	}
}

// TestRewriteMax checks the max variant.
func TestRewriteMax(t *testing.T) {
	src := `
.cost score/2 : maxreal.
.cost best/1 : maxreal.
score(a, 3).
score(b, 7).
best(C) :- C ?= max D : score(X, D).
`
	norm, err := MinMax(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := wfs.Solve(norm, wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Status("best/1", nums(7)); got != wfs.True {
		t.Fatalf("best(7) = %v, want true", got)
	}
	if got := res.Status("best/1", nums(3)); got != wfs.False {
		t.Fatalf("best(3) = %v, want false", got)
	}
}

// TestRewriteRejectsOtherAggregates: §5.4 — "this fix does not apply to
// arbitrary aggregate operators".
func TestRewriteRejectsOtherAggregates(t *testing.T) {
	src := `
.cost s/3 : sumreal.
.cost m/3 : sumreal.
m(X, Y, N) :- N ?= sum M : s(X, Y, M).
`
	if _, err := MinMax(mustParse(t, src)); err == nil {
		t.Fatal("sum must be rejected by the min/max rewriting")
	}
}

type relationRow = relation.Row
