// Package rewrite implements the Ganguly–Greco–Zaniolo translation of
// min/max aggregate rules into normal rules with negation (§5.4 of Ross &
// Sagiv, PODS 1992): a rule
//
//	s(X, Y, C) :- C ?= min D : path(X, Z, Y, D).
//
// becomes
//
//	s(X, Y, C)        :- path(X, Z, Y, C), not less_s(X, Y, C).
//	less_s(X, Y, C)   :- path(X, W, Y, C), path(X, Z, Y, D), D < C.
//
// evaluated under the well-founded semantics. Cost declarations are
// dropped: the rewritten program treats costs as ordinary data, which is
// why it enumerates *all* candidate costs (and diverges where the native
// monotonic engine, protected by the cost functional dependency,
// terminates — the contrast benchmarked in EXPERIMENTS.md E10).
package rewrite

import (
	"fmt"

	"repro/internal/ast"
)

// MinMax rewrites every rule containing a min or max aggregate subgoal.
// Rules with other aggregates are rejected (the paper notes the technique
// "does not apply to arbitrary aggregate operators").
func MinMax(prog *ast.Program) (*ast.Program, error) {
	out := &ast.Program{}
	fresh := 0
	for _, r := range prog.Rules {
		aggIdx := -1
		for i, sg := range r.Body {
			if _, ok := sg.(*ast.Agg); ok {
				if aggIdx >= 0 {
					return nil, fmt.Errorf("rewrite: rule %q has several aggregates", r)
				}
				aggIdx = i
			}
		}
		if aggIdx < 0 {
			out.Rules = append(out.Rules, r)
			continue
		}
		g := r.Body[aggIdx].(*ast.Agg)
		var cmp ast.CmpOp
		switch g.Func {
		case "min":
			cmp = ast.OpLt
		case "max":
			cmp = ast.OpGt
		default:
			return nil, fmt.Errorf("rewrite: aggregate %s is not min/max (the GGZ rewriting does not apply, §5.4)", g.Func)
		}
		if g.MultisetVar == "" {
			return nil, fmt.Errorf("rewrite: rule %q aggregates an implicit cost", r)
		}
		roles := ast.RolesOf(r, aggIdx)
		fresh++
		lessPred := fmt.Sprintf("ggz_less_%s_%d", r.Head.Pred, fresh)

		keep := map[ast.Var]bool{}
		for _, v := range roles.Grouping {
			keep[v] = true
		}
		// Witness conjunction: the multiset variable becomes the result
		// variable (the extremum is realised by some tuple).
		witness := renameConj(g.Conj, g.MultisetVar, g.Result, keep, "w_")
		// Competitor conjunction keeps a fresh competitor value.
		compVar := ast.Var("Ggz_D")
		competitor := renameConj(g.Conj, g.MultisetVar, compVar, keep, "z_")

		lessArgs := make([]ast.Term, 0, len(roles.Grouping)+1)
		for _, v := range roles.Grouping {
			lessArgs = append(lessArgs, v)
		}
		lessArgs = append(lessArgs, g.Result)

		// Main rule: original body with the aggregate replaced by the
		// witness conjunction plus the negated dominance test.
		var body []ast.Subgoal
		for i, sg := range r.Body {
			if i != aggIdx {
				body = append(body, sg)
				continue
			}
			for ci := range witness {
				body = append(body, &ast.Lit{Atom: witness[ci]})
			}
			body = append(body, &ast.Lit{Atom: ast.Atom{Pred: lessPred, Args: lessArgs}, Neg: true})
		}
		out.Rules = append(out.Rules, &ast.Rule{Head: r.Head, Body: body})

		// Dominance rule: some competitor beats the witness value.
		var lessBody []ast.Subgoal
		wit2 := renameConj(g.Conj, g.MultisetVar, g.Result, keep, "y_")
		for ci := range wit2 {
			lessBody = append(lessBody, &ast.Lit{Atom: wit2[ci]})
		}
		for ci := range competitor {
			lessBody = append(lessBody, &ast.Lit{Atom: competitor[ci]})
		}
		lessBody = append(lessBody, &ast.Builtin{Op: cmp, L: ast.VarExpr{V: compVar}, R: ast.VarExpr{V: g.Result}})
		out.Rules = append(out.Rules, &ast.Rule{
			Head: ast.Atom{Pred: lessPred, Args: lessArgs},
			Body: lessBody,
		})
	}
	// Constraints and declarations are dropped: the rewritten program is
	// a normal program over plain tuples.
	return out, nil
}

// renameConj copies a conjunction, replacing the multiset variable with
// msRepl, keeping the variables in keep (the grouping variables) intact,
// and prefixing every other (local) variable so separate copies use
// disjoint locals.
func renameConj(conj []ast.Atom, msVar, msRepl ast.Var, keep map[ast.Var]bool, prefix string) []ast.Atom {
	out := make([]ast.Atom, len(conj))
	for i := range conj {
		a := conj[i]
		na := ast.Atom{Pred: a.Pred, Args: make([]ast.Term, len(a.Args))}
		for j, t := range a.Args {
			v, isVar := t.(ast.Var)
			switch {
			case !isVar:
				na.Args[j] = t
			case v == msVar:
				na.Args[j] = msRepl
			case keep[v]:
				na.Args[j] = v
			default:
				na.Args[j] = ast.Var(prefix + string(v))
			}
		}
		out[i] = na
	}
	return out
}
