// Package relation implements tuple storage for aggregate Herbrand
// interpretations (Definition 3.3 of Ross & Sagiv, PODS 1992).
//
// A relation for a cost predicate maps each tuple of non-cost arguments to
// a single cost value, enforcing the functional dependency of the cost
// argument on the other arguments (§2.3.1). Only the *core* of an
// extension is stored (§2.3.3): for a default-value cost predicate,
// tuples carrying the default (bottom) value are virtual and looked up via
// GetOrDefault.
//
// # Concurrency: the frozen-snapshot contract
//
// Relations are single-writer structures: no Insert* call may overlap any
// other call on the same relation. Once a relation is frozen — no writer
// mutates it for the duration — any number of goroutines may read it
// concurrently (Get, GetOrDefault, Each, Rows, Match, Leq, Equal). This
// includes Match, whose lazily built hash indexes are published through an
// atomic copy-on-write pointer so that concurrent readers racing to build
// the same index are safe. The parallel fixpoint scheduler in internal/core
// relies on exactly this contract: completed lower components are frozen and
// shared by pointer across workers, while each in-progress component writes
// only to private clones.
package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/lattice"
	"repro/internal/val"
)

// Row is one stored tuple: the non-cost arguments plus the cost value (the
// zero val.T and HasCost=false for ordinary predicates).
type Row struct {
	Args    []val.T
	Cost    lattice.Elem
	HasCost bool
}

// Relation stores the core extension of one predicate.
type Relation struct {
	Info *ast.PredInfo
	keys []string       // insertion order, for deterministic iteration
	rows map[string]int // key -> index into keys/data
	data []Row
	// idx holds the lazily built hash indexes: a bound-position bitmask
	// maps to (projection key -> bucket of row indices in insertion
	// order). The outer map is immutable once published; adding an index
	// for a new mask copies it and swaps the pointer, so frozen relations
	// can be read — and have indexes built — by many goroutines at once.
	// The inner maps and their buckets are mutated in place only by
	// insertNew, which the single-writer contract keeps exclusive of all
	// readers.
	idx     atomic.Pointer[indexSet]
	buildMu sync.Mutex // serializes concurrent lazy index builds
	// pkbuf is writer-side scratch for projection keys during index
	// maintenance, covered by the same single-writer contract as data.
	pkbuf []byte
}

// indexSet is the immutable collection of per-mask indexes; see Relation.idx.
type indexSet struct {
	byMask map[uint64]map[string]*bucket
}

// bucket holds one projection key's row indices. It is a pointer target
// so insertNew can extend a bucket in place without re-allocating the
// map key string on every new row (map assignment, unlike lookup,
// always copies a converted []byte key).
type bucket struct{ rows []int }

// New creates an empty relation with the given schema.
func New(info *ast.PredInfo) *Relation {
	return &Relation{Info: info, rows: map[string]int{}}
}

// Len returns the number of stored (core) tuples.
func (r *Relation) Len() int { return len(r.data) }

// Get returns the stored row for the given non-cost arguments.
func (r *Relation) Get(args []val.T) (Row, bool) {
	i, ok := r.rows[val.KeyOf(args)]
	if !ok {
		return Row{}, false
	}
	return r.data[i], true
}

// At returns the i-th stored row in insertion order. It is the random
// access primitive behind iterator-based scans: an iterator holds the
// index range, not a materialized row slice.
func (r *Relation) At(i int) Row { return r.data[i] }

// GetKey is Get with a caller-built tuple key (val.AppendKeyOf into a
// reusable buffer), so point lookups on a hot path allocate nothing.
// The key must be exactly val.KeyOf of the non-cost arguments.
func (r *Relation) GetKey(key []byte) (Row, bool) {
	i, ok := r.rows[string(key)]
	if !ok {
		return Row{}, false
	}
	return r.data[i], true
}

// LookupKey is GetKey returning additionally the interned key string the
// relation stores for the row. Callers that need to retain the key (the
// engine's Δ-set dedup) can hold the interned string instead of
// converting the byte key again, which would allocate per derivation.
func (r *Relation) LookupKey(key []byte) (Row, string, bool) {
	i, ok := r.rows[string(key)]
	if !ok {
		return Row{}, "", false
	}
	return r.data[i], r.keys[i], true
}

// GetOrDefault behaves like Get but, for a default-value cost predicate,
// synthesizes the default (bottom) row on a miss (§2.3.2). ok is false
// only when the tuple is genuinely absent from the interpretation.
func (r *Relation) GetOrDefault(args []val.T) (Row, bool) {
	if row, ok := r.Get(args); ok {
		return row, true
	}
	if r.Info.HasDefault {
		return Row{Args: args, Cost: r.Info.L.Bottom(), HasCost: true}, true
	}
	return Row{}, false
}

// ConflictError reports a violation of the cost functional dependency
// within a single application of T_P (the program is not cost-consistent,
// Definition 2.6).
type ConflictError struct {
	Pred     ast.PredKey
	Args     []val.T
	Old, New lattice.Elem
}

func (e *ConflictError) Error() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("relation: cost conflict on %s(%s): %s vs %s",
		e.Pred.Name(), strings.Join(parts, ", "), e.Old, e.New)
}

// InsertStrict adds a tuple, failing with a ConflictError if the same
// non-cost arguments are already present with a different cost. It is used
// for a single T_P application, where conflict-free programs can never
// produce two distinct costs (Lemma 2.3).
func (r *Relation) InsertStrict(args []val.T, cost lattice.Elem) error {
	k := val.KeyOf(args)
	if i, ok := r.rows[k]; ok {
		if !r.Info.HasCost {
			return nil
		}
		if !lattice.Eq(r.Info.L, r.data[i].Cost, cost) {
			return &ConflictError{Pred: r.Info.Key, Args: args, Old: r.data[i].Cost, New: cost}
		}
		return nil
	}
	r.insertNew(k, args, cost)
	return nil
}

// InsertJoin adds a tuple, joining costs on collision, and reports whether
// the relation changed (a new tuple, or a cost strictly increased in ⊑).
// It is the accumulation step of the semi-naive fixpoint, sound because
// admissible programs are monotone (Lemma 4.1).
func (r *Relation) InsertJoin(args []val.T, cost lattice.Elem) bool {
	k := val.KeyOf(args)
	if i, ok := r.rows[k]; ok {
		if !r.Info.HasCost {
			return false
		}
		j := r.Info.L.Join(r.data[i].Cost, cost)
		if lattice.Eq(r.Info.L, j, r.data[i].Cost) {
			return false
		}
		r.data[i].Cost = j
		return true
	}
	if r.Info.HasDefault && lattice.Eq(r.Info.L, cost, r.Info.L.Bottom()) {
		// Default rows are virtual; storing them would bloat the core
		// without changing the interpretation.
		return false
	}
	r.insertNew(k, args, cost)
	return true
}

// InsertJoinKey is InsertJoin with a caller-built tuple key (which must
// be exactly val.KeyOf(args)). The join-on-collision path — by far the
// common case once a fixpoint is warm — then allocates nothing; only a
// genuinely new row pays for copying the key and arguments.
func (r *Relation) InsertJoinKey(key []byte, args []val.T, cost lattice.Elem) bool {
	if i, ok := r.rows[string(key)]; ok {
		if !r.Info.HasCost {
			return false
		}
		j := r.Info.L.Join(r.data[i].Cost, cost)
		if lattice.Eq(r.Info.L, j, r.data[i].Cost) {
			return false
		}
		r.data[i].Cost = j
		return true
	}
	if r.Info.HasDefault && lattice.Eq(r.Info.L, cost, r.Info.L.Bottom()) {
		return false
	}
	r.insertNew(string(key), args, cost)
	return true
}

func (r *Relation) insertNew(k string, args []val.T, cost lattice.Elem) {
	row := Row{Args: append([]val.T{}, args...), HasCost: r.Info.HasCost}
	if r.Info.HasCost {
		row.Cost = cost
	}
	idx := len(r.data)
	r.rows[k] = idx
	r.keys = append(r.keys, k)
	r.data = append(r.data, row)
	if is := r.idx.Load(); is != nil {
		for mask, ix := range is.byMask {
			r.pkbuf = AppendProjKey(r.pkbuf[:0], row.Args, mask)
			if b := ix[string(r.pkbuf)]; b != nil {
				b.rows = append(b.rows, idx)
			} else {
				ix[string(r.pkbuf)] = &bucket{rows: []int{idx}}
			}
		}
	}
}

// Each calls f on every stored row in insertion order.
func (r *Relation) Each(f func(Row) bool) {
	for i := range r.data {
		if !f(r.data[i]) {
			return
		}
	}
}

// Rows returns all rows in deterministic sorted order: ascending
// tuple-wise val.Compare over the non-cost arguments (by kind, then by
// the kind's natural order — so numbers sort numerically, not as
// strings). The order depends only on the tuples present, never on
// insertion history, so identical interpretations render identically
// across runs, processes and resumed checkpoints. Rows never mutates
// the relation and is safe for concurrent readers.
func (r *Relation) Rows() []Row {
	out := append([]Row{}, r.data...)
	sort.Slice(out, func(i, j int) bool {
		return CompareArgs(out[i].Args, out[j].Args) < 0
	})
	return out
}

// CompareArgs orders two argument tuples lexicographically by
// val.Compare, shorter tuples first on a shared prefix.
func CompareArgs(a, b []val.T) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if c := val.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// Match calls f on each row whose non-cost arguments agree with pattern
// (nil entries are wildcards). When at least one position is bound, a hash
// index on the bound positions is built lazily and consulted. Rows are
// visited in insertion order, whether or not an index exists. Match is safe
// for concurrent readers on a frozen relation (see the package doc); the
// lazy index build is published copy-on-write so racing readers never
// observe a partially built index.
func (r *Relation) Match(pattern []*val.T, f func(Row) bool) {
	var mask uint64
	for i, p := range pattern {
		if p != nil && i < 64 {
			mask |= 1 << uint(i)
		}
	}
	if mask == 0 {
		r.Each(f)
		return
	}
	var ix map[string]*bucket
	if is := r.idx.Load(); is != nil {
		ix = is.byMask[mask]
	}
	if ix == nil {
		ix = r.buildIndex(mask)
	}
	var b strings.Builder
	for i, p := range pattern {
		if p == nil || i >= 64 {
			continue
		}
		b.WriteString(p.Key())
		b.WriteByte(0)
	}
	bk := ix[b.String()]
	if bk == nil {
		return
	}
	for _, i := range bk.rows {
		row := r.data[i]
		matched := true
		for j, p := range pattern {
			if p != nil && j >= 64 && !val.Equal(row.Args[j], *p) {
				matched = false
				break
			}
		}
		if matched && !f(row) {
			return
		}
	}
}

// Bucket returns the index bucket for the projection key under mask:
// the insertion-order indices of all rows whose masked argument
// positions encode to key. The key must be built in projKey format
// (each bound position's val Key followed by a 0 byte, positions in
// ascending order, only positions < 64). The index is built lazily
// exactly as for Match; the returned slice must not be mutated, and on
// a frozen relation it is stable. Bucket is the probe side of the
// executor's hash joins — the lazily built per-mask index is the
// presized build side, shared by every probe against the relation.
func (r *Relation) Bucket(mask uint64, key []byte) []int {
	var ix map[string]*bucket
	if is := r.idx.Load(); is != nil {
		ix = is.byMask[mask]
	}
	if ix == nil {
		ix = r.buildIndex(mask)
	}
	b := ix[string(key)]
	if b == nil {
		return nil
	}
	return b.rows
}

// DistinctUnder returns the number of distinct projections of the
// stored rows onto the argument positions in mask — exactly the number
// of buckets the per-mask hash index holds. It is the cardinality
// statistic behind the cost-based planner's selectivity estimates
// (rows-per-probe of an indexed scan is Len/DistinctUnder), and calling
// it builds the index as a side effect, so costing a candidate join
// order also prewarms the build side the chosen order will probe.
// DistinctUnder is safe for concurrent readers on a frozen relation,
// like Match and Bucket.
func (r *Relation) DistinctUnder(mask uint64) int {
	if mask == 0 {
		if len(r.data) == 0 {
			return 0
		}
		return 1
	}
	var ix map[string]*bucket
	if is := r.idx.Load(); is != nil {
		ix = is.byMask[mask]
	}
	if ix == nil {
		ix = r.buildIndex(mask)
	}
	return len(ix)
}

// AppendProjKey appends the projection key of args over mask to dst in
// exactly the encoding the per-mask indexes are keyed by.
func AppendProjKey(dst []byte, args []val.T, mask uint64) []byte {
	for i := range args {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		dst = val.AppendKey(dst, args[i])
		dst = append(dst, 0)
	}
	return dst
}

// buildIndex constructs the hash index for mask and publishes it
// copy-on-write. Concurrent builders serialize on buildMu; each re-checks
// under the lock so the index is built at most once. Readers that loaded
// the previous indexSet keep using it unharmed — the old inner maps are
// never mutated by a build.
func (r *Relation) buildIndex(mask uint64) map[string]*bucket {
	r.buildMu.Lock()
	defer r.buildMu.Unlock()
	if is := r.idx.Load(); is != nil {
		if ix, ok := is.byMask[mask]; ok {
			return ix
		}
	}
	// Presize for the common one-row-per-bucket shape so the build does
	// not rehash while the fixpoint is paused on it. The projection key
	// goes through a scratch buffer: a key string is allocated only per
	// distinct bucket, not per row.
	ix := make(map[string]*bucket, len(r.data))
	var pk []byte
	for i := range r.data {
		pk = AppendProjKey(pk[:0], r.data[i].Args, mask)
		if b := ix[string(pk)]; b != nil {
			b.rows = append(b.rows, i)
		} else {
			ix[string(pk)] = &bucket{rows: []int{i}}
		}
	}
	next := &indexSet{byMask: map[uint64]map[string]*bucket{mask: ix}}
	if is := r.idx.Load(); is != nil {
		for m, v := range is.byMask {
			next.byMask[m] = v
		}
	}
	r.idx.Store(next)
	return ix
}

// Clone returns a deep-enough copy (rows are copied; values are immutable).
func (r *Relation) Clone() *Relation {
	c := New(r.Info)
	c.keys = append([]string{}, r.keys...)
	c.data = append([]Row{}, r.data...)
	for k, v := range r.rows {
		c.rows[k] = v
	}
	return c
}

// Leq reports whether r ⊑ other per Definition 3.2 lifted to relations:
// every tuple of r must appear in other with a ⊒ cost. Virtual default
// rows never matter: they are ⊑ anything present, and if absent from the
// other side they are matched by the other side's virtual default.
func (r *Relation) Leq(other *Relation) bool {
	ok := true
	r.Each(func(row Row) bool {
		o, found := other.GetOrDefault(row.Args)
		if !found {
			ok = false
			return false
		}
		if row.HasCost && !r.Info.L.Leq(row.Cost, o.Cost) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Equal reports lattice equality of the two relations.
func (r *Relation) Equal(other *Relation) bool {
	return r.Leq(other) && other.Leq(r)
}

// Join merges other into r (tuple-wise cost join), reporting change.
func (r *Relation) Join(other *Relation) bool {
	changed := false
	other.Each(func(row Row) bool {
		if r.InsertJoin(row.Args, row.Cost) {
			changed = true
		}
		return true
	})
	return changed
}
