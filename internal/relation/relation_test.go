package relation

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ast"
	"repro/internal/lattice"
	"repro/internal/val"
)

func costInfo(name string, arity int, l lattice.Lattice, def bool) *ast.PredInfo {
	return &ast.PredInfo{
		Key: ast.MakePredKey(name, arity), Arity: arity,
		HasCost: true, L: l, HasDefault: def,
	}
}

func plainInfo(name string, arity int) *ast.PredInfo {
	return &ast.PredInfo{Key: ast.MakePredKey(name, arity), Arity: arity}
}

func TestInsertJoinMonotone(t *testing.T) {
	r := New(costInfo("s", 3, lattice.MinReal, false))
	a := []val.T{val.Symbol("a"), val.Symbol("b")}
	if !r.InsertJoin(a, val.Number(5)) {
		t.Fatal("first insert must change")
	}
	// In minreal, 3 is *larger* than 5 (⊑ is ≥): the join improves to 3.
	if !r.InsertJoin(a, val.Number(3)) {
		t.Fatal("improving cost must change")
	}
	if r.InsertJoin(a, val.Number(4)) {
		t.Fatal("worse cost must not change")
	}
	row, ok := r.Get(a)
	if !ok || row.Cost.N != 3 {
		t.Fatalf("cost = %v, want 3", row.Cost)
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1 (FD enforced)", r.Len())
	}
}

func TestInsertStrictConflict(t *testing.T) {
	r := New(costInfo("p", 2, lattice.SumReal, false))
	a := []val.T{val.Symbol("x")}
	if err := r.InsertStrict(a, val.Number(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.InsertStrict(a, val.Number(1)); err != nil {
		t.Fatal("re-inserting the same cost must succeed")
	}
	err := r.InsertStrict(a, val.Number(2))
	var ce *ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want ConflictError", err)
	}
}

func TestDefaultRowsAreVirtual(t *testing.T) {
	r := New(costInfo("t", 2, lattice.BoolOr, true))
	w := []val.T{val.Symbol("w1")}
	// Inserting the bottom value must not materialize a core row.
	if r.InsertJoin(w, val.Boolean(false)) {
		t.Fatal("bottom insert must be a no-op")
	}
	if r.Len() != 0 {
		t.Fatal("core must stay empty")
	}
	row, ok := r.GetOrDefault(w)
	if !ok || row.Cost.B != false {
		t.Fatalf("default lookup = %v, %v", row, ok)
	}
	// A real value materializes.
	if !r.InsertJoin(w, val.Boolean(true)) {
		t.Fatal("true insert must change")
	}
	row, _ = r.GetOrDefault(w)
	if !row.Cost.B {
		t.Fatal("core value must win over default")
	}
	// Non-default predicates miss.
	r2 := New(costInfo("q", 2, lattice.BoolOr, false))
	if _, ok := r2.GetOrDefault(w); ok {
		t.Fatal("non-default predicate must miss")
	}
}

func TestMatchWithIndexes(t *testing.T) {
	r := New(plainInfo("e", 2))
	pairs := [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}, {"c", "a"}}
	for _, p := range pairs {
		r.InsertJoin([]val.T{val.Symbol(p[0]), val.Symbol(p[1])}, val.T{})
	}
	av := val.Symbol("a")
	var got []string
	r.Match([]*val.T{&av, nil}, func(row Row) bool {
		got = append(got, row.Args[1].S)
		return true
	})
	if len(got) != 2 {
		t.Fatalf("match a,* = %v", got)
	}
	// Insert after the index exists; index must stay fresh.
	r.InsertJoin([]val.T{val.Symbol("a"), val.Symbol("d")}, val.T{})
	got = nil
	r.Match([]*val.T{&av, nil}, func(row Row) bool {
		got = append(got, row.Args[1].S)
		return true
	})
	if len(got) != 3 {
		t.Fatalf("match after insert = %v", got)
	}
}

func TestMatchFullyBound(t *testing.T) {
	r := New(plainInfo("e", 2))
	r.InsertJoin([]val.T{val.Symbol("a"), val.Symbol("b")}, val.T{})
	a, b, c := val.Symbol("a"), val.Symbol("b"), val.Symbol("c")
	n := 0
	r.Match([]*val.T{&a, &b}, func(Row) bool { n++; return true })
	if n != 1 {
		t.Fatalf("bound match = %d", n)
	}
	n = 0
	r.Match([]*val.T{&a, &c}, func(Row) bool { n++; return true })
	if n != 0 {
		t.Fatalf("miss match = %d", n)
	}
}

func TestRelationLeq(t *testing.T) {
	mk := func(cost float64) *Relation {
		r := New(costInfo("s", 3, lattice.MinReal, false))
		r.InsertJoin([]val.T{val.Symbol("a"), val.Symbol("b")}, val.Number(cost))
		return r
	}
	lo, hi := mk(5), mk(3) // in minreal, 5 ⊑ 3
	if !lo.Leq(hi) {
		t.Fatal("5 ⊑ 3 in minreal")
	}
	if hi.Leq(lo) {
		t.Fatal("3 ⋢ 5 in minreal")
	}
	empty := New(costInfo("s", 3, lattice.MinReal, false))
	if !empty.Leq(lo) || lo.Leq(empty) {
		t.Fatal("∅ ⊑ r but not conversely")
	}
	if !lo.Equal(mk(5)) {
		t.Fatal("equal relations must be Equal")
	}
}

func TestDBLeqJoinMeet(t *testing.T) {
	prog := &ast.Program{}
	s, _ := ast.BuildSchemas(prog)
	mkdb := func(cost float64) *DB {
		db := NewDB(s)
		db.Schemas["s/3"] = costInfo("s", 3, lattice.MinReal, false)
		db.Rel("s/3").InsertJoin([]val.T{val.Symbol("a"), val.Symbol("b")}, val.Number(cost))
		return db
	}
	lo, hi := mkdb(5), mkdb(3)
	if !lo.Leq(hi, nil) || hi.Leq(lo, nil) {
		t.Fatal("DB order wrong")
	}
	j := lo.Clone()
	if !j.Join(hi) {
		t.Fatal("join must change lo")
	}
	if !j.Equal(hi, nil) {
		t.Fatal("lo ⊔ hi = hi")
	}
	m := lo.Meet(hi)
	if !m.Equal(lo, nil) {
		t.Fatalf("lo ⊓ hi = lo, got\n%s", m)
	}
}

func TestDBMeetDropsMissingTuples(t *testing.T) {
	prog := &ast.Program{}
	s, _ := ast.BuildSchemas(prog)
	a := NewDB(s)
	a.Schemas["p/1"] = plainInfo("p", 1)
	a.Rel("p/1").InsertJoin([]val.T{val.Symbol("x")}, val.T{})
	b := NewDB(s)
	m := a.Meet(b)
	if m.Rel("p/1").Len() != 0 {
		t.Fatal("meet with empty must be empty for non-default predicates")
	}
}

func TestFormatFact(t *testing.T) {
	row := Row{Args: []val.T{val.Symbol("a"), val.Symbol("b")}, Cost: val.Number(1.5), HasCost: true}
	if got := FormatFact("s", row); got != "s(a, b, 1.5)." {
		t.Fatalf("FormatFact = %q", got)
	}
	if got := FormatFact("p", Row{}); got != "p." {
		t.Fatalf("FormatFact = %q", got)
	}
}

func TestRowsDeterministic(t *testing.T) {
	r := New(plainInfo("e", 1))
	for _, s := range []string{"c", "a", "b"} {
		r.InsertJoin([]val.T{val.Symbol(s)}, val.T{})
	}
	rows := r.Rows()
	if rows[0].Args[0].S != "a" || rows[2].Args[0].S != "c" {
		t.Fatalf("rows not sorted: %v", rows)
	}
}

func TestInfinityCosts(t *testing.T) {
	r := New(costInfo("s", 2, lattice.MinReal, false))
	a := []val.T{val.Symbol("x")}
	r.InsertJoin(a, val.Number(math.Inf(1)))
	row, _ := r.Get(a)
	if !math.IsInf(row.Cost.N, 1) {
		t.Fatal("infinite cost must store")
	}
	r.InsertJoin(a, val.Number(7))
	row, _ = r.Get(a)
	if row.Cost.N != 7 {
		t.Fatal("finite beats +∞ in minreal")
	}
}
