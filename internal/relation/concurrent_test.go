package relation

import (
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/val"
)

// TestConcurrentReadersOnFrozenRelation exercises the frozen-snapshot
// contract under the race detector: once all writes have finished, many
// goroutines may Match (racing to build indexes for several masks), Get,
// Each and Rows the same relation concurrently.
func TestConcurrentReadersOnFrozenRelation(t *testing.T) {
	info := &ast.PredInfo{Key: ast.MakePredKey("edge", 2)}
	r := New(info)
	for i := 0; i < 200; i++ {
		args := []val.T{val.Number(float64(i % 17)), val.Number(float64(i % 13))}
		if err := r.InsertStrict(args, val.T{}); err != nil {
			t.Fatal(err)
		}
	}

	const readers = 16
	var wg sync.WaitGroup
	wg.Add(readers)
	for g := 0; g < readers; g++ {
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				// Alternate bound-position masks so several lazy index
				// builds race with index consumers.
				a := val.Number(float64((g + rep) % 17))
				b := val.Number(float64(rep % 13))
				pats := [][]*val.T{
					{&a, nil},
					{nil, &b},
					{&a, &b},
					{nil, nil},
				}
				n := 0
				r.Match(pats[rep%len(pats)], func(Row) bool { n++; return true })
				if _, ok := r.Get([]val.T{val.Number(0), val.Number(0)}); !ok {
					t.Error("row (0,0) must be present")
					return
				}
				if got := len(r.Rows()); got != r.Len() {
					t.Errorf("Rows() returned %d rows, want %d", got, r.Len())
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestIndexOrderStableAcrossBuildTime pins that Match enumerates rows in
// insertion order regardless of whether the index existed before or after
// later inserts — the property the parallel engine's replay determinism
// rests on.
func TestIndexOrderStableAcrossBuildTime(t *testing.T) {
	info := &ast.PredInfo{Key: ast.MakePredKey("p", 2)}
	mk := func(buildEarly bool) []float64 {
		r := New(info)
		key := val.Number(1)
		for i := 0; i < 5; i++ {
			if err := r.InsertStrict([]val.T{key, val.Number(float64(i))}, val.T{}); err != nil {
				t.Fatal(err)
			}
		}
		if buildEarly {
			// Force the index now; later inserts must maintain it.
			r.Match([]*val.T{&key, nil}, func(Row) bool { return true })
		}
		for i := 5; i < 10; i++ {
			if err := r.InsertStrict([]val.T{key, val.Number(float64(i))}, val.T{}); err != nil {
				t.Fatal(err)
			}
		}
		var order []float64
		r.Match([]*val.T{&key, nil}, func(row Row) bool {
			order = append(order, row.Args[1].N)
			return true
		})
		return order
	}
	early, late := mk(true), mk(false)
	if len(early) != 10 || len(late) != 10 {
		t.Fatalf("want 10 rows each, got %d and %d", len(early), len(late))
	}
	for i := range early {
		if early[i] != late[i] {
			t.Fatalf("enumeration order diverges at %d: %v vs %v", i, early, late)
		}
	}
}
