package relation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/lattice"
	"repro/internal/val"
)

// DB is an aggregate Herbrand interpretation (Definition 3.3): one
// relation per predicate, each respecting the cost functional dependency.
type DB struct {
	Schemas ast.Schemas
	rels    map[ast.PredKey]*Relation
}

// NewDB creates an empty interpretation over the given schemas.
func NewDB(s ast.Schemas) *DB {
	return &DB{Schemas: s, rels: map[ast.PredKey]*Relation{}}
}

// Rel returns the relation for k, creating it on first use.
func (db *DB) Rel(k ast.PredKey) *Relation {
	if r, ok := db.rels[k]; ok {
		return r
	}
	pi := db.Schemas.Info(k)
	if pi == nil {
		pi = &ast.PredInfo{Key: k, Arity: arityOf(k)}
		db.Schemas[k] = pi
	}
	r := New(pi)
	db.rels[k] = r
	return r
}

func arityOf(k ast.PredKey) int {
	var n int
	fmt.Sscanf(string(k)[len(k.Name())+1:], "%d", &n)
	return n
}

// SetRel replaces the relation stored for k (used by the naive fixpoint,
// which computes each T_P application into a fresh relation).
func (db *DB) SetRel(k ast.PredKey, r *Relation) { db.rels[k] = r }

// Has reports whether a relation exists (possibly empty) for k.
func (db *DB) Has(k ast.PredKey) bool { _, ok := db.rels[k]; return ok }

// Preds returns the predicate keys with a materialized relation, sorted.
func (db *DB) Preds() []ast.PredKey {
	out := make([]ast.PredKey, 0, len(db.rels))
	for k := range db.rels {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone deep-copies the interpretation.
func (db *DB) Clone() *DB {
	c := NewDB(db.Schemas)
	for k, r := range db.rels {
		c.rels[k] = r.Clone()
	}
	return c
}

// Leq reports db ⊑ other, restricted to the given predicates (nil = all
// predicates of db).
func (db *DB) Leq(other *DB, preds []ast.PredKey) bool {
	if preds == nil {
		preds = db.Preds()
	}
	for _, k := range preds {
		r, ok := db.rels[k]
		if !ok || r.Len() == 0 {
			continue
		}
		o := other.rels[k]
		if o == nil {
			o = New(r.Info)
		}
		if !r.Leq(o) {
			return false
		}
	}
	return true
}

// Equal reports lattice equality over the given predicates (nil = union of
// both sides' predicates).
func (db *DB) Equal(other *DB, preds []ast.PredKey) bool {
	if preds == nil {
		set := map[ast.PredKey]bool{}
		for k := range db.rels {
			set[k] = true
		}
		for k := range other.rels {
			set[k] = true
		}
		for k := range set {
			preds = append(preds, k)
		}
	}
	return db.Leq(other, preds) && other.Leq(db, preds)
}

// Join merges other into db tuple-wise, reporting change.
func (db *DB) Join(other *DB) bool {
	changed := false
	for _, k := range other.Preds() {
		if db.Rel(k).Join(other.rels[k]) {
			changed = true
		}
	}
	return changed
}

// Meet returns the tuple-wise greatest lower bound of db and other over
// db's predicates (Theorem 3.1's ⊓ on interpretations): a non-cost tuple
// survives only if present on both sides; a cost tuple takes the cost meet
// and survives unless both sides lack it.
func (db *DB) Meet(other *DB) *DB {
	out := NewDB(db.Schemas)
	for _, k := range db.Preds() {
		r := db.rels[k]
		o := other.rels[k]
		dst := out.Rel(k)
		r.Each(func(row Row) bool {
			if !row.HasCost {
				if o != nil {
					if _, ok := o.Get(row.Args); ok {
						dst.InsertJoin(row.Args, val.T{})
					}
				}
				return true
			}
			var orow Row
			var ok bool
			if o != nil {
				orow, ok = o.GetOrDefault(row.Args)
			} else {
				orow, ok = (&Relation{Info: r.Info}).GetOrDefault(row.Args)
			}
			if !ok {
				// The other interpretation lacks the tuple entirely (and
				// has no default): the glb drops it for non-default
				// predicates.
				return true
			}
			dst.InsertJoin(row.Args, r.Info.L.Meet(row.Cost, orow.Cost))
			return true
		})
	}
	return out
}

// AddFact inserts a ground fact (join semantics).
func (db *DB) AddFact(pred string, args []val.T, cost lattice.Elem) bool {
	hasCostArgs := args
	pi := db.Schemas.Info(ast.MakePredKey(pred, len(args)+1))
	if pi != nil && pi.HasCost {
		return db.Rel(pi.Key).InsertJoin(hasCostArgs, cost)
	}
	k := ast.MakePredKey(pred, len(args))
	return db.Rel(k).InsertJoin(args, cost)
}

// String renders the interpretation as sorted ground facts, one per line.
func (db *DB) String() string {
	var b strings.Builder
	for _, k := range db.Preds() {
		r := db.rels[k]
		for _, row := range r.Rows() {
			b.WriteString(FormatFact(k.Name(), row))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatFact renders one row as a ground fact in concrete syntax.
func FormatFact(pred string, row Row) string {
	parts := make([]string, 0, len(row.Args)+1)
	for _, a := range row.Args {
		parts = append(parts, a.String())
	}
	if row.HasCost {
		parts = append(parts, row.Cost.String())
	}
	if len(parts) == 0 {
		return pred + "."
	}
	return pred + "(" + strings.Join(parts, ", ") + ")."
}
