package relation

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/lattice"
	"repro/internal/val"
)

// randomDB builds a random interpretation over two cost predicates (one
// minreal, one sumreal) and one ordinary predicate.
func randomDB(r *rand.Rand) *DB {
	s := ast.Schemas{}
	s["sp/2"] = &ast.PredInfo{Key: "sp/2", Arity: 2, HasCost: true, L: lattice.MinReal}
	s["m/2"] = &ast.PredInfo{Key: "m/2", Arity: 2, HasCost: true, L: lattice.SumReal}
	s["e/1"] = &ast.PredInfo{Key: "e/1", Arity: 1}
	db := NewDB(s)
	for i := 0; i < r.Intn(6); i++ {
		db.Rel("sp/2").InsertJoin([]val.T{val.Symbol(fmt.Sprintf("n%d", r.Intn(3)))}, val.Number(float64(r.Intn(10))))
	}
	for i := 0; i < r.Intn(6); i++ {
		db.Rel("m/2").InsertJoin([]val.T{val.Symbol(fmt.Sprintf("c%d", r.Intn(3)))}, val.Number(float64(r.Intn(10))))
	}
	for i := 0; i < r.Intn(4); i++ {
		db.Rel("e/1").InsertJoin([]val.T{val.Symbol(fmt.Sprintf("x%d", r.Intn(3)))}, val.T{})
	}
	return db
}

// TestTheorem31JoinIsLub property-checks that ⊔ on interpretations is a
// least upper bound: I ⊑ I⊔J, J ⊑ I⊔J, and I⊔J ⊑ K for any upper bound
// K generated alongside.
func TestTheorem31JoinIsLub(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomDB(r), randomDB(r)
		j := a.Clone()
		j.Join(b)
		if !a.Leq(j, nil) || !b.Leq(j, nil) {
			t.Errorf("seed %d: join is not an upper bound", seed)
			return false
		}
		// Any upper bound of both dominates the join.
		k := a.Clone()
		k.Join(b)
		k.Join(randomDB(r)) // inflate further: still an upper bound
		if !j.Leq(k, nil) {
			t.Errorf("seed %d: join is not least among generated upper bounds", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTheorem31MeetIsGlb property-checks the dual: I⊓J ⊑ I, I⊓J ⊑ J, and
// every generated lower bound is ⊑ I⊓J.
func TestTheorem31MeetIsGlb(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomDB(r), randomDB(r)
		m := a.Meet(b)
		if !m.Leq(a, nil) || !m.Leq(b, nil) {
			t.Errorf("seed %d: meet is not a lower bound", seed)
			return false
		}
		// A lower bound: the meet of a with something else, then with b.
		lb := a.Meet(randomDB(r)).Meet(b)
		if !lb.Leq(m, nil) {
			t.Errorf("seed %d: generated lower bound is not ⊑ the meet", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestInterpretationOrderIsPartialOrder checks reflexivity, antisymmetry
// (up to Equal) and transitivity on random interpretations.
func TestInterpretationOrderIsPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomDB(r)
		b := a.Clone()
		b.Join(randomDB(r))
		c := b.Clone()
		c.Join(randomDB(r))
		if !a.Leq(a, nil) {
			t.Errorf("seed %d: not reflexive", seed)
			return false
		}
		if !a.Leq(b, nil) || !b.Leq(c, nil) {
			t.Fatalf("seed %d: generator broke the chain", seed)
		}
		if !a.Leq(c, nil) {
			t.Errorf("seed %d: not transitive", seed)
			return false
		}
		if a.Leq(b, nil) && b.Leq(a, nil) && !a.Equal(b, nil) {
			t.Errorf("seed %d: antisymmetry fails", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
