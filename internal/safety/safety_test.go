package safety

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func load(t *testing.T, src string) (*ast.Program, ast.Schemas) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ast.BuildSchemas(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

const paperDecls = `
.cost record/3 : sumreal.
.cost t/2 : boolor.
.cost input/2 : boolor.
.default t/2 = 0.
.cost path/4 : minreal.
.cost arc/3 : minreal.
.cost s/3 : minreal.
`

// TestExample22RangeRestricted reproduces Example 2.2: the first three
// rules are range-restricted, the last three are not.
func TestExample22RangeRestricted(t *testing.T) {
	good := []string{
		`alt_class_count(C, N) :- record(X, C, Y), N = count : record(S, C, G).`,
		`t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].`,
		`s(X, Y, C) :- C ?= min D : path(X, Z, Y, D).`,
	}
	bad := []string{
		// Grouping variable C of a "=" aggregate is not limited.
		`alt_class_count(C, N) :- N = count : record(S, C, G).`,
		// X is a local variable in a non-cost argument with no limiting
		// occurrence (uses a 3-ary default predicate).
		`t3(G, C) :- gate(G, and), C = and D : [connect(G, W), t3b(W, X, D)].`,
		// Grouping variables of a "=" (total) min aggregate are unlimited.
		`s(X, Y, C) :- C = min D : path(X, Z, Y, D).`,
	}
	decls := paperDecls + `
.cost t3/3 : boolor.
.cost t3b/3 : boolor.
.default t3b/3 = 0.
.cost alt_class_count/2 : countnat.
`
	for _, src := range good {
		p, s := load(t, decls+src)
		if err := CheckProgram(p, s); err != nil {
			t.Errorf("%s: unexpected error %v", src, err)
		}
	}
	for _, src := range bad {
		p, s := load(t, decls+src)
		if err := CheckProgram(p, s); err == nil {
			t.Errorf("%s: expected range-restriction error", src)
		}
	}
}

func TestHeadVariablesMustBeLimited(t *testing.T) {
	p, s := load(t, `p(X, Y) :- q(X).`)
	err := CheckProgram(p, s)
	if err == nil || !strings.Contains(err.Error(), "head variable Y") {
		t.Fatalf("err = %v", err)
	}
}

func TestNegatedSubgoalsNeedLimitedVars(t *testing.T) {
	p, s := load(t, `p(X) :- q(X), not r(X, Y).`)
	if err := CheckProgram(p, s); err == nil {
		t.Fatal("unlimited Y in negation must be rejected")
	}
	p, s = load(t, `p(X) :- q(X), r2(X, Y), not r(X, Y).`)
	if err := CheckProgram(p, s); err != nil {
		t.Fatalf("limited negation rejected: %v", err)
	}
}

func TestNegatedCostNeedsQuasiLimited(t *testing.T) {
	decls := ".cost q/2 : sumreal.\n.cost r/2 : sumreal.\n"
	p, s := load(t, decls+`p(X) :- q(X, C), not r(X, C).`)
	if err := CheckProgram(p, s); err != nil {
		t.Fatalf("quasi-limited cost in negation rejected: %v", err)
	}
	p, s = load(t, decls+`p(X) :- q2(X), not r(X, C).`)
	if err := CheckProgram(p, s); err == nil {
		t.Fatal("unbound cost variable in negation must be rejected")
	}
}

func TestBuiltinVariablesMustBeBound(t *testing.T) {
	p, s := load(t, `p(X) :- q(X), Y > 3.`)
	if err := CheckProgram(p, s); err == nil {
		t.Fatal("floating builtin variable must be rejected")
	}
	p, s = load(t, ".cost p/2 : sumreal.\n.cost q/2 : sumreal.\n"+`p(X, C) :- q(X, A), C = A + 1.`)
	if err := CheckProgram(p, s); err != nil {
		t.Fatalf("bound builtin rejected: %v", err)
	}
	// Without a cost declaration, C sits in an ordinary head position and
	// quasi-limitedness does not suffice (Definition 2.5).
	p, s = load(t, ".cost q/2 : sumreal.\n"+`p(X, C) :- q(X, A), C = A + 1.`)
	if err := CheckProgram(p, s); err == nil {
		t.Fatal("quasi-limited variable in ordinary head position must be rejected")
	}
}

func TestEqualityChainsLimit(t *testing.T) {
	p, s := load(t, `p(Y) :- q(X), Y = X.`)
	if err := CheckProgram(p, s); err != nil {
		t.Fatalf("V = Y chain rejected: %v", err)
	}
	p, s = load(t, `p(Y) :- q(X), Y = a.`)
	if err := CheckProgram(p, s); err != nil {
		t.Fatalf("V = constant rejected: %v", err)
	}
}

func TestHeadCostQuasiLimited(t *testing.T) {
	decls := ".cost p/2 : sumreal.\n.cost q/2 : sumreal.\n"
	p, s := load(t, decls+`p(X, C) :- q(X, C).`)
	if err := CheckProgram(p, s); err != nil {
		t.Fatalf("cost propagation rejected: %v", err)
	}
	p, s = load(t, decls+`p(X, C) :- q(X, D).`)
	if err := CheckProgram(p, s); err == nil {
		t.Fatal("unbound head cost must be rejected")
	}
	// Arithmetic over quasi-limited variables is quasi-limited.
	p, s = load(t, decls+`p(X, C) :- q(X, D), C = D * 2.`)
	if err := CheckProgram(p, s); err != nil {
		t.Fatalf("arithmetic head cost rejected: %v", err)
	}
}

func TestDefaultPredicateArgsMustBeLimited(t *testing.T) {
	decls := ".cost t/2 : boolor.\n.default t/2 = 0.\n"
	// Positive default subgoal with unlimited W.
	p, s := load(t, decls+`p(W) :- t(W, D).`)
	if err := CheckProgram(p, s); err == nil {
		t.Fatal("default-value predicate with unlimited args must be rejected")
	}
	p, s = load(t, decls+`p(W) :- wire(W), t(W, D).`)
	if err := CheckProgram(p, s); err != nil {
		t.Fatalf("limited default subgoal rejected: %v", err)
	}
}

func TestPartyProgramIsSafe(t *testing.T) {
	src := `
coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
kc(X, Y)  :- knows(X, Y), coming(Y).
`
	p, s := load(t, ".cost requires/2 : countnat.\n"+src)
	if err := CheckProgram(p, s); err != nil {
		t.Fatalf("party program must be range-restricted (Example 4.3): %v", err)
	}
}

func TestAnalyzeRoles(t *testing.T) {
	p, s := load(t, paperDecls+`s(X, Y, C) :- C ?= min D : path(X, Z, Y, D).`)
	v := Analyze(p.Rules[0], s)
	for _, w := range []ast.Var{"X", "Y", "Z"} {
		if !v.Limited[w] {
			t.Errorf("%s should be limited", w)
		}
	}
	if !v.QuasiLimited["C"] || !v.QuasiLimited["D"] {
		t.Errorf("C and D should be quasi-limited: %+v", v.QuasiLimited)
	}
	if v.Limited["C"] {
		t.Error("C must not be limited")
	}
}
