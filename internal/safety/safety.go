// Package safety implements the range-restriction analysis of Definition
// 2.5 of Ross & Sagiv (PODS 1992): the computation of limited and
// quasi-limited variables and the per-rule safety conditions that, by
// Lemma 2.2, guarantee finiteness of each T_P application and of every
// aggregated multiset.
package safety

import (
	"fmt"

	"repro/internal/ast"
)

// Vars is the result of the limited/quasi-limited fixpoint for one rule.
type Vars struct {
	Limited      map[ast.Var]bool
	QuasiLimited map[ast.Var]bool
}

// Analyze computes the limited and quasi-limited variables of r
// (Definition 2.5). A limited argument is a non-cost argument of a
// predicate with no default declaration.
func Analyze(r *ast.Rule, s ast.Schemas) Vars {
	v := Vars{Limited: map[ast.Var]bool{}, QuasiLimited: map[ast.Var]bool{}}

	// roles[i] caches grouping/local classification for aggregate body
	// positions.
	roles := map[int]ast.AggRoles{}
	for i, sg := range r.Body {
		if _, ok := sg.(*ast.Agg); ok {
			roles[i] = ast.RolesOf(r, i)
		}
	}

	// limitedInConj reports whether v appears in a limited argument of
	// some atom of the conjunction.
	limitedIn := func(atoms []ast.Atom, w ast.Var) bool {
		for ai := range atoms {
			a := &atoms[ai]
			pi := s.Info(a.Key())
			if pi == nil || pi.HasDefault {
				continue
			}
			for j, t := range a.Args {
				if pi.HasCost && j == pi.CostIndex() {
					continue
				}
				if x, ok := t.(ast.Var); ok && x == w {
					return true
				}
			}
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		mark := func(m map[ast.Var]bool, w ast.Var) {
			if !m[w] {
				m[w] = true
				changed = true
			}
		}
		for i, sg := range r.Body {
			switch sg := sg.(type) {
			case *ast.Lit:
				if sg.Neg {
					continue
				}
				pi := s.Info(sg.Atom.Key())
				if pi == nil {
					continue
				}
				for j, t := range sg.Atom.Args {
					w, ok := t.(ast.Var)
					if !ok {
						continue
					}
					if pi.HasCost && j == pi.CostIndex() {
						// Cost arguments of positive subgoals make their
						// variable quasi-limited.
						mark(v.QuasiLimited, w)
						continue
					}
					if !pi.HasDefault {
						mark(v.Limited, w)
					}
				}
			case *ast.Agg:
				rs := roles[i]
				// The aggregate variable is quasi-limited.
				mark(v.QuasiLimited, sg.Result)
				// Local variables in limited arguments inside the subgoal
				// are limited; grouping variables of ?= subgoals likewise.
				for _, w := range rs.Local {
					if limitedIn(sg.Conj, w) {
						mark(v.Limited, w)
					}
				}
				if sg.Restricted {
					for _, w := range rs.Grouping {
						if limitedIn(sg.Conj, w) {
							mark(v.Limited, w)
						}
					}
				}
				// Cost-argument variables inside the aggregation are
				// quasi-limited.
				for ci := range sg.Conj {
					a := &sg.Conj[ci]
					pi := s.Info(a.Key())
					if pi == nil || !pi.HasCost {
						continue
					}
					if w, ok := a.Args[pi.CostIndex()].(ast.Var); ok {
						mark(v.QuasiLimited, w)
					}
				}
			case *ast.Builtin:
				if sg.Op != ast.OpEq {
					continue
				}
				// V = Y / Y = V with Y limited; V = a with a constant.
				propagate := func(to, from ast.Expr) {
					w, ok := to.(ast.VarExpr)
					if !ok {
						return
					}
					switch e := from.(type) {
					case ast.VarExpr:
						if v.Limited[e.V] {
							mark(v.Limited, w.V)
						}
						if v.QuasiLimited[e.V] {
							mark(v.QuasiLimited, w.V)
						}
					case ast.NumExpr, ast.ConstExpr:
						mark(v.Limited, w.V)
					default:
						// V = E with E an arithmetic expression over
						// limited/quasi-limited variables: V is
						// quasi-limited.
						all := true
						for _, x := range from.Vars(nil) {
							if !v.Limited[x] && !v.QuasiLimited[x] {
								all = false
								break
							}
						}
						if all {
							mark(v.QuasiLimited, w.V)
						}
					}
				}
				propagate(sg.L, sg.R)
				propagate(sg.R, sg.L)
			}
		}
	}
	return v
}

// CheckRule verifies the range-restriction conditions of Definition 2.5.
func CheckRule(r *ast.Rule, s ast.Schemas) error {
	v := Analyze(r, s)
	ok := func(w ast.Var) bool { return v.Limited[w] || v.QuasiLimited[w] }
	where := func(what string) string { return fmt.Sprintf("safety: rule %q: %s", r, what) }

	checkAtomArgs := func(a *ast.Atom, needQuasiCost bool, ctx string) error {
		pi := s.Info(a.Key())
		for j, t := range a.Args {
			w, isVar := t.(ast.Var)
			if !isVar {
				continue
			}
			if pi != nil && pi.HasCost && j == pi.CostIndex() {
				if needQuasiCost && !ok(w) {
					return fmt.Errorf("%s", where(fmt.Sprintf("cost variable %s of %s is not quasi-limited", w, ctx)))
				}
				continue
			}
			if !v.Limited[w] {
				return fmt.Errorf("%s", where(fmt.Sprintf("variable %s of %s is not limited", w, ctx)))
			}
		}
		return nil
	}

	for i, sg := range r.Body {
		switch sg := sg.(type) {
		case *ast.Lit:
			pi := s.Info(sg.Atom.Key())
			if sg.Neg {
				if err := checkAtomArgs(&sg.Atom, true, "negated subgoal "+sg.String()); err != nil {
					return err
				}
			} else if pi != nil && pi.HasDefault {
				// Positive subgoals of default-value cost predicates must
				// have limited non-cost arguments (§2.3.3).
				if err := checkAtomArgs(&sg.Atom, false, "default-value subgoal "+sg.String()); err != nil {
					return err
				}
			}
		case *ast.Agg:
			rs := ast.RolesOf(r, i)
			for _, w := range rs.Grouping {
				if !v.Limited[w] {
					return fmt.Errorf("%s", where(fmt.Sprintf("grouping variable %s of %s is not limited", w, sg)))
				}
			}
			// Local variables in non-cost arguments must be limited, and
			// default-value predicates inside the aggregation must have
			// limited non-cost arguments.
			for ci := range sg.Conj {
				a := &sg.Conj[ci]
				pi := s.Info(a.Key())
				for j, t := range a.Args {
					w, isVar := t.(ast.Var)
					if !isVar || w == sg.MultisetVar {
						continue
					}
					isCost := pi != nil && pi.HasCost && j == pi.CostIndex()
					if isCost {
						continue
					}
					if !v.Limited[w] {
						return fmt.Errorf("%s", where(fmt.Sprintf("variable %s inside %s is not limited", w, sg)))
					}
				}
			}
		case *ast.Builtin:
			for _, w := range sg.FreeVars(nil) {
				if !ok(w) {
					return fmt.Errorf("%s", where(fmt.Sprintf("variable %s of builtin %s is neither limited nor quasi-limited", w, sg)))
				}
			}
		}
	}
	// Head: non-cost variables limited, cost variable quasi-limited.
	hp := s.Info(r.Head.Key())
	for j, t := range r.Head.Args {
		w, isVar := t.(ast.Var)
		if !isVar {
			continue
		}
		if hp != nil && hp.HasCost && j == hp.CostIndex() {
			if !ok(w) {
				return fmt.Errorf("%s", where(fmt.Sprintf("head cost variable %s is not quasi-limited", w)))
			}
			continue
		}
		if !v.Limited[w] {
			return fmt.Errorf("%s", where(fmt.Sprintf("head variable %s is not limited", w)))
		}
	}
	return nil
}

// CheckProgram applies CheckRule to every rule.
func CheckProgram(p *ast.Program, s ast.Schemas) error {
	for _, r := range p.Rules {
		if err := CheckRule(r, s); err != nil {
			return err
		}
	}
	return nil
}
