package lattice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/val"
)

// figure1 lists the aggregates reproduced from Figure 1 of the paper, plus
// the two extras the paper analyses (average, halfsum).
func figure1() []Aggregate {
	return []Aggregate{
		Max, Min, Sum, Count, Product, And, Or, Union, Average, Halfsum,
		NewIntersection("itest_agg", testUniverse),
		NewProperty("ptest_agg", HasPathProperty(2)),
	}
}

// genMultisetPair draws multisets a ⊑_D b by generating b and then
// deriving a as a sub-multiset with (weakly) decreased elements.
func genMultisetPair(a Aggregate, r *rand.Rand, equalCard bool) (lo, hi []Elem) {
	d := a.Domain()
	n := r.Intn(6)
	if equalCard && n == 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		e := genElem(d, r)
		hi = append(hi, e)
		keep := equalCard || r.Intn(4) > 0
		if keep {
			// Decrease e with respect to ⊑_D by meeting with a random
			// element (⊓ is always a lower bound).
			lo = append(lo, d.Meet(e, genElem(d, r)))
		}
	}
	return lo, hi
}

// TestMonotoneAggregates property-checks Definition 4.1's monotonicity
// condition, I ⊑_D I' ⇒ F(I) ⊑_R F(I'), for every monotone Figure 1 row.
func TestMonotoneAggregates(t *testing.T) {
	for _, a := range figure1() {
		if !a.Monotone() {
			continue
		}
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				lo, hi := genMultisetPair(a, r, false)
				if !MultisetLeq(a.Domain(), lo, hi) {
					t.Fatalf("generator broke the multiset order: %v vs %v", lo, hi)
				}
				flo, ok1 := a.Apply(lo)
				fhi, ok2 := a.Apply(hi)
				if !ok1 || !ok2 {
					t.Errorf("monotone aggregate %s must be total", a.Name())
					return false
				}
				if !a.Range().Leq(flo, fhi) {
					t.Errorf("%s(%v) = %v not ⊑ %s(%v) = %v", a.Name(), lo, flo, a.Name(), hi, fhi)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestPseudoMonotoneAggregates property-checks Definition 4.1 for the
// equal-cardinality case on every aggregate (monotone ⇒ pseudo-monotone).
func TestPseudoMonotoneAggregates(t *testing.T) {
	for _, a := range figure1() {
		a := a
		if !a.PseudoMonotone() {
			t.Errorf("%s: every Figure 1 aggregate is at least pseudo-monotone", a.Name())
			continue
		}
		t.Run(a.Name(), func(t *testing.T) {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				lo, hi := genMultisetPair(a, r, true)
				flo, ok1 := a.Apply(lo)
				fhi, ok2 := a.Apply(hi)
				if !ok1 || !ok2 {
					t.Errorf("%s undefined on nonempty equal-cardinality multisets", a.Name())
					return false
				}
				if !a.Range().Leq(flo, fhi) {
					t.Errorf("%s(%v) = %v not ⊑ %s(%v) = %v", a.Name(), lo, flo, a.Name(), hi, fhi)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestAndNotMonotone reproduces §4.1.1's counterexample:
// AND({1}) = 1 but AND({0,1}) = 0, so AND is not monotone on (B, ≤).
func TestAndNotMonotone(t *testing.T) {
	one := []Elem{val.Boolean(true)}
	both := []Elem{val.Boolean(false), val.Boolean(true)}
	if !MultisetLeq(BoolOr, one, both) {
		t.Fatal("{1} ⊑ {0,1} must hold in (B, ≤)")
	}
	f1, _ := And.Apply(one)
	f2, _ := And.Apply(both)
	if BoolOr.Leq(f1, f2) {
		t.Fatal("AND must violate monotonicity on this pair (the paper's counterexample)")
	}
	if And.Monotone() {
		t.Fatal("And must be classified pseudo-monotonic, not monotonic")
	}
}

// TestAverageNotMonotone checks avg({2}) = 2 > 1.5 = avg({1,2}).
func TestAverageNotMonotone(t *testing.T) {
	f1, _ := Average.Apply([]Elem{val.Number(2)})
	f2, _ := Average.Apply([]Elem{val.Number(1), val.Number(2)})
	if f1.N <= f2.N {
		t.Fatal("expected avg to shrink when a smaller element joins the multiset")
	}
	if Average.Monotone() {
		t.Fatal("Average must not be classified monotonic")
	}
}

// TestEmptyMultisetIsBottom verifies F(∅) = ⊥_R for every monotone row,
// which is forced by monotonicity since ∅ ⊑ everything.
func TestEmptyMultisetIsBottom(t *testing.T) {
	for _, a := range figure1() {
		if !a.Monotone() {
			continue
		}
		got, ok := a.Apply(nil)
		if !ok {
			t.Errorf("%s(∅) must be defined", a.Name())
			continue
		}
		if !Eq(a.Range(), got, a.Range().Bottom()) {
			t.Errorf("%s(∅) = %v, want bottom %v", a.Name(), got, a.Range().Bottom())
		}
	}
}

func TestAggregateValues(t *testing.T) {
	n := func(xs ...float64) []Elem {
		out := make([]Elem, len(xs))
		for i, x := range xs {
			out[i] = val.Number(x)
		}
		return out
	}
	if got, _ := Min.Apply(n(3, 1, 2)); got.N != 1 {
		t.Errorf("min = %v", got)
	}
	if got, _ := Max.Apply(n(3, 1, 2)); got.N != 3 {
		t.Errorf("max = %v", got)
	}
	if got, _ := Sum.Apply(n(3, 1, 2)); got.N != 6 {
		t.Errorf("sum = %v", got)
	}
	if got, _ := Product.Apply(n(3, 2)); got.N != 6 {
		t.Errorf("product = %v", got)
	}
	if got, _ := Count.Apply(n(5, 5, 5)); got.N != 3 {
		t.Errorf("count must respect multiplicity: %v", got)
	}
	if got, _ := Average.Apply(n(1, 2, 3)); got.N != 2 {
		t.Errorf("avg = %v", got)
	}
	if got, _ := Halfsum.Apply(n(1, 1)); got.N != 1 {
		t.Errorf("halfsum = %v", got)
	}
	if got, _ := Min.Apply(nil); !math.IsInf(got.N, 1) {
		t.Errorf("min(∅) = %v, want +∞", got)
	}
	if _, ok := Average.Apply(nil); ok {
		t.Error("avg(∅) must be undefined")
	}
}

func TestUnionIntersectionAggregates(t *testing.T) {
	ab := val.SetOf(val.Symbol("a"), val.Symbol("b"))
	bc := val.SetOf(val.Symbol("b"), val.Symbol("c"))
	u, _ := Union.Apply([]Elem{ab, bc})
	if u.Set.Len() != 3 {
		t.Errorf("union aggregate = %v", u)
	}
	inter := NewIntersection("itest_agg2", testUniverse)
	got, _ := inter.Apply([]Elem{ab, bc})
	if got.Set.Len() != 1 || !got.Set.Contains(val.Symbol("b")) {
		t.Errorf("intersection aggregate = %v, want {b}", got)
	}
	empty, _ := inter.Apply(nil)
	if !empty.Set.Equal(testUniverse) {
		t.Errorf("intersection(∅) must be the universe, got %v", empty)
	}
}

func TestGraphProperties(t *testing.T) {
	p4 := NewProperty("p4_test", HasPathProperty(4))
	chain := val.SetOf(Edge("a", "b"), Edge("b", "c"), Edge("c", "d"), Edge("d", "e"))
	short := val.SetOf(Edge("a", "b"), Edge("b", "c"))
	if got, _ := p4.Apply([]Elem{chain}); !got.B {
		t.Error("a 4-edge chain has a path of length 4")
	}
	if got, _ := p4.Apply([]Elem{short}); got.B {
		t.Error("a 2-edge chain has no path of length 4")
	}
	// A cycle realises arbitrarily long (non-simple) paths.
	cyc := val.SetOf(Edge("a", "b"), Edge("b", "a"))
	if got, _ := p4.Apply([]Elem{cyc}); !got.B {
		t.Error("a 2-cycle realises paths of any length")
	}
	conn := NewProperty("conn_test", ConnectsProperty("a", "d"))
	if got, _ := conn.Apply([]Elem{short, val.SetOf(Edge("c", "d"))}); !got.B {
		t.Error("union of the multiset's graphs connects a to d")
	}
	if got, _ := conn.Apply([]Elem{short}); got.B {
		t.Error("a does not reach d with only two edges")
	}
}

func TestMultisetLeqMatching(t *testing.T) {
	n := func(xs ...float64) []Elem {
		out := make([]Elem, len(xs))
		for i, x := range xs {
			out[i] = val.Number(x)
		}
		return out
	}
	// Requires a genuine matching: greedy by first-fit could fail here.
	if !MultisetLeq(MaxReal, n(2, 1), n(2, 5)) {
		t.Error("{2,1} ⊑ {2,5} under ≤")
	}
	if MultisetLeq(MaxReal, n(3, 3), n(3, 2)) {
		t.Error("{3,3} ⋢ {3,2} under ≤")
	}
	if !MultisetLeq(MaxReal, nil, n(1)) {
		t.Error("∅ ⊑ anything")
	}
	if MultisetLeq(MaxReal, n(1), nil) {
		t.Error("nonempty ⋢ ∅")
	}
	// In minreal (⊑ = ≥) the direction flips.
	if !MultisetLeq(MinReal, n(5), n(3)) {
		t.Error("{5} ⊑ {3} under ≥")
	}
}

func TestAggregateRegistry(t *testing.T) {
	for _, name := range []string{"min", "max", "sum", "count", "product", "and", "or", "union", "avg", "halfsum"} {
		if !IsAggregateName(name) {
			t.Errorf("aggregate %q not registered", name)
		}
	}
	if IsAggregateName("median") {
		t.Error("median must not be registered")
	}
}
