package lattice

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/val"
)

// Aggregate is an aggregate function F : M(D) → R over a domain lattice D
// and a range lattice R (Definition 2.4 and §4.1 of the paper).
//
// Monotone aggregates satisfy I ⊑_D I' ⇒ F(I) ⊑_R F(I') for all finite
// multisets; pseudo-monotone aggregates satisfy the implication only for
// multisets of equal cardinality (Definition 4.1), and are admissible in
// recursion only over default-value cost predicates (Definition 4.5).
type Aggregate interface {
	// Name is the identifier used in aggregate subgoals.
	Name() string
	// Domain is the lattice the multiset elements are drawn from.
	Domain() Lattice
	// Range is the lattice of result values.
	Range() Lattice
	// Monotone reports whether F is monotonic on ⟨D, ⊑_D, R, ⊑_R⟩.
	Monotone() bool
	// PseudoMonotone reports whether F is pseudo-monotonic (Definition
	// 4.1). Every monotone aggregate is also pseudo-monotone.
	PseudoMonotone() bool
	// Apply evaluates F on a finite multiset. ok is false when F is
	// undefined on the multiset (e.g. average of the empty multiset);
	// monotone aggregates are total, with F(∅) = ⊥_R.
	Apply(ms []Elem) (result Elem, ok bool)
}

// aggFunc is a closure-backed Aggregate.
type aggFunc struct {
	name     string
	dom, rng Lattice
	mono     bool
	pseudo   bool
	apply    func(ms []Elem) (Elem, bool)
}

func (a *aggFunc) Name() string                 { return a.name }
func (a *aggFunc) Domain() Lattice              { return a.dom }
func (a *aggFunc) Range() Lattice               { return a.rng }
func (a *aggFunc) Monotone() bool               { return a.mono }
func (a *aggFunc) PseudoMonotone() bool         { return a.pseudo }
func (a *aggFunc) Apply(ms []Elem) (Elem, bool) { return a.apply(ms) }

// New builds an aggregate from its parts. Monotone aggregates must be
// total and satisfy apply(∅) = ⊥ of the range.
func New(name string, dom, rng Lattice, mono, pseudo bool, apply func([]Elem) (Elem, bool)) Aggregate {
	return &aggFunc{name: name, dom: dom, rng: rng, mono: mono, pseudo: pseudo || mono, apply: apply}
}

func numFold(init float64, f func(acc, x float64) float64) func([]Elem) (Elem, bool) {
	return func(ms []Elem) (Elem, bool) {
		acc := init
		for _, e := range ms {
			acc = f(acc, e.N)
		}
		return val.Number(acc), true
	}
}

// sortedNumFold folds over the multiset in ascending numeric order, so
// that rounding of non-associative float operations (sum, product) does
// not depend on enumeration order: the two fixpoint strategies then
// compute bit-identical results for identical multisets.
func sortedNumFold(init float64, f func(acc, x float64) float64) func([]Elem) (Elem, bool) {
	fold := numFold(init, f)
	return func(ms []Elem) (Elem, bool) {
		sorted := make([]Elem, len(ms))
		copy(sorted, ms)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].N < sorted[j].N })
		return fold(sorted)
	}
}

// The aggregate functions of Figure 1 (plus average from Example 2.1 and
// halfsum from Example 5.1). All are registered for use in rule text.
var (
	// Max is maximum on (R ∪ {±∞}, ≤); Max(∅) = −∞ (row 1).
	Max = New("max", MaxReal, MaxReal, true, true,
		numFold(-Inf, func(a, x float64) float64 {
			if x > a {
				return x
			}
			return a
		}))

	// Min is minimum on (R ∪ {±∞}, ≥); Min(∅) = +∞ (row 3). Note the
	// reversed order: a larger multiset can only *shrink* the minimum,
	// which is exactly an increase with respect to ⊑ = ≥.
	Min = New("min", MinReal, MinReal, true, true,
		numFold(Inf, func(a, x float64) float64 {
			if x < a {
				return x
			}
			return a
		}))

	// Sum is summation on (R* ∪ {∞}, ≤); Sum(∅) = 0 (row 4).
	Sum = New("sum", SumReal, SumReal, true, true,
		sortedNumFold(0, func(a, x float64) float64 { return a + x }))

	// Count maps any multiset to its cardinality in (N ∪ {∞}, ≤) (row 8).
	// Its domain order is discrete-agnostic; we expose it over booleans as
	// in Figure 1 but Apply ignores the element values entirely.
	Count = New("count", BoolOr, CountNat, true, true,
		func(ms []Elem) (Elem, bool) { return val.Number(float64(len(ms))), true })

	// Product is multiplication on (N⁺ ∪ {∞}, ≤); Product(∅) = 1 (row 7).
	Product = New("product", ProdNat, ProdNat, true, true,
		sortedNumFold(1, func(a, x float64) float64 { return a * x }))

	// And is conjunction on (B, ≥), bottom true; And(∅) = true (row 5).
	// With respect to the usual order ≤ on truth values And is only
	// pseudo-monotonic (§4.1.1); with respect to ≥ it is monotonic. We
	// classify it as pseudo-monotonic because the circuit example
	// (Example 4.4) uses it over the (B, ≤) order of the t predicate.
	And = New("and", BoolOr, BoolOr, false, true,
		func(ms []Elem) (Elem, bool) {
			for _, e := range ms {
				if !e.B {
					return val.Boolean(false), true
				}
			}
			return val.Boolean(true), true
		})

	// Or is disjunction on (B, ≤), bottom false; Or(∅) = false (row 6).
	Or = New("or", BoolOr, BoolOr, true, true,
		func(ms []Elem) (Elem, bool) {
			for _, e := range ms {
				if e.B {
					return val.Boolean(true), true
				}
			}
			return val.Boolean(false), true
		})

	// Union is set union on (2^S, ⊆); Union(∅) = ∅ (row 9).
	Union = New("union", SetUnion, SetUnion, true, true,
		func(ms []Elem) (Elem, bool) {
			acc := val.EmptySet
			for _, e := range ms {
				acc = acc.Union(e.Set)
			}
			return val.T{Kind: val.SetKind, Set: acc}, true
		})

	// Average is the arithmetic mean on (R* ∪ {∞}, ≤), pseudo-monotonic
	// with respect to ≤ (§4.1.1); undefined on the empty multiset. The
	// nonnegative carrier avoids the ill-defined mean of {+∞, −∞}.
	Average = New("avg", SumReal, SumReal, false, true,
		func(ms []Elem) (Elem, bool) {
			if len(ms) == 0 {
				return Elem{}, false
			}
			total, _ := Sum.Apply(ms) // sorted, order-independent
			return val.Number(total.N / float64(len(ms))), true
		})

	// Halfsum returns half the sum of a multiset of nonnegative reals; it
	// is monotonic with respect to ≤ (Example 5.1) and is the paper's
	// example of a program whose fixpoint is reached only at ω.
	Halfsum = New("halfsum", SumReal, SumReal, true, true,
		sortedNumFold(0, func(a, x float64) float64 { return a + x/2 }))
)

// NewIntersection builds the set-intersection aggregate over a finite
// universe S: Intersection(∅) = S, monotone on (2^S, ⊇) (row 10).
func NewIntersection(name string, universe *val.Set) Aggregate {
	l := NewSetIntersect(name+"_dom", universe)
	return New(name, l, l, true, true,
		func(ms []Elem) (Elem, bool) {
			acc := universe
			for _, e := range ms {
				acc = acc.Intersect(e.Set)
			}
			return val.T{Kind: val.SetKind, Set: acc}, true
		})
}

// NewProperty builds a monotone multigraph-property aggregate P (row 11):
// the multiset elements are edge sets, and P holds of the multigraph formed
// by their union. prop must be monotone (adding edges preserves it).
func NewProperty(name string, prop func(edges *val.Set) bool) Aggregate {
	return New(name, SetUnion, BoolOr, true, true,
		func(ms []Elem) (Elem, bool) {
			acc := val.EmptySet
			for _, e := range ms {
				acc = acc.Union(e.Set)
			}
			return val.Boolean(prop(acc)), true
		})
}

// HasPathProperty returns the monotone property "the multigraph contains a
// (not necessarily simple) directed path of length ≥ k", the paper's
// example of a monotone property P. Edge values must be built with Edge.
func HasPathProperty(k int) func(*val.Set) bool {
	return func(edges *val.Set) bool {
		adj := map[string][]string{}
		for _, e := range edges.Elems() {
			u, v, ok := splitEdge(e)
			if !ok {
				continue
			}
			adj[u] = append(adj[u], v)
		}
		// longest[u][d] memo: can we take d steps from u?
		type key struct {
			u string
			d int
		}
		memo := map[key]bool{}
		var walk func(u string, d int) bool
		walk = func(u string, d int) bool {
			if d == 0 {
				return true
			}
			kk := key{u, d}
			if r, ok := memo[kk]; ok {
				return r
			}
			memo[kk] = false // cycle guard: a cycle means unbounded length
			res := false
			for _, v := range adj[u] {
				if walk(v, d-1) {
					res = true
					break
				}
			}
			// A vertex on a directed cycle can realise any length; the
			// cycle guard above under-approximates, so detect cycles
			// explicitly: if u reaches itself, any remaining length works.
			if !res && reaches(adj, u, u) {
				res = true
			}
			memo[kk] = res
			return res
		}
		for u := range adj {
			if walk(u, k) {
				return true
			}
		}
		return false
	}
}

// ConnectsProperty returns the monotone property "there is a directed path
// from u to v in the multigraph".
func ConnectsProperty(u, v string) func(*val.Set) bool {
	return func(edges *val.Set) bool {
		adj := map[string][]string{}
		for _, e := range edges.Elems() {
			a, b, ok := splitEdge(e)
			if !ok {
				continue
			}
			adj[a] = append(adj[a], b)
		}
		return reaches(adj, u, v)
	}
}

func reaches(adj map[string][]string, from, to string) bool {
	seen := map[string]bool{}
	stack := append([]string{}, adj[from]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, adj[n]...)
	}
	return false
}

func splitEdge(e val.T) (string, string, bool) {
	// Edges are "u->v" symbols (from Edge) or quoted strings (the form
	// writable in program text, where '->' cannot appear inside a bare
	// identifier).
	if e.Kind != val.Sym && e.Kind != val.Str {
		return "", "", false
	}
	i := strings.Index(e.S, "->")
	if i < 0 {
		return "", "", false
	}
	return e.S[:i], e.S[i+2:], true
}

// aggByName is the registry of aggregates addressable from rule text.
var aggByName = map[string]Aggregate{
	Max.Name():     Max,
	Min.Name():     Min,
	Sum.Name():     Sum,
	Count.Name():   Count,
	Product.Name(): Product,
	And.Name():     And,
	Or.Name():      Or,
	Union.Name():   Union,
	Average.Name(): Average,
	Halfsum.Name(): Halfsum,
}

// AggregateByName looks up an aggregate function by name.
func AggregateByName(name string) (Aggregate, bool) {
	a, ok := aggByName[name]
	return a, ok
}

// RegisterAggregate adds an aggregate to the registry (used for
// instance-specific aggregates such as intersection over a universe or a
// custom monotone graph property).
func RegisterAggregate(a Aggregate) {
	if _, dup := aggByName[a.Name()]; dup {
		panic(fmt.Sprintf("lattice: duplicate aggregate %q", a.Name()))
	}
	aggByName[a.Name()] = a
}

// IsAggregateName reports whether name denotes a registered aggregate.
func IsAggregateName(name string) bool {
	_, ok := aggByName[name]
	return ok
}
