package lattice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/val"
)

// genElem draws a random element of l using r, covering bottoms, tops and
// interior values.
func genElem(l Lattice, r *rand.Rand) Elem {
	switch l.Name() {
	case "maxreal", "minreal":
		switch r.Intn(8) {
		case 0:
			return val.Number(math.Inf(1))
		case 1:
			return val.Number(math.Inf(-1))
		default:
			return val.Number(float64(r.Intn(41) - 20))
		}
	case "sumreal":
		if r.Intn(8) == 0 {
			return val.Number(math.Inf(1))
		}
		return val.Number(float64(r.Intn(20)))
	case "prodnat":
		if r.Intn(8) == 0 {
			return val.Number(math.Inf(1))
		}
		return val.Number(float64(1 + r.Intn(9)))
	case "countnat":
		if r.Intn(8) == 0 {
			return val.Number(math.Inf(1))
		}
		return val.Number(float64(r.Intn(10)))
	case "booland", "boolor":
		return val.Boolean(r.Intn(2) == 1)
	default: // set lattices
		syms := []string{"a", "b", "c", "d", "e"}
		var elems []val.T
		for _, s := range syms {
			if r.Intn(2) == 0 {
				elems = append(elems, val.Symbol(s))
			}
		}
		return val.SetOf(elems...)
	}
}

var testUniverse = val.NewSet([]val.T{
	val.Symbol("a"), val.Symbol("b"), val.Symbol("c"), val.Symbol("d"), val.Symbol("e"),
})

func allLattices() []Lattice {
	return []Lattice{
		MaxReal, SumReal, MinReal, BoolAnd, BoolOr, ProdNat, CountNat,
		SetUnion, // open-universe union: skip Top-dependent laws
		NewSetUnionOver("u5", testUniverse),
		NewSetIntersect("i5", testUniverse),
	}
}

func hasTop(l Lattice) bool { return l.Name() != "setunion" }

// TestLatticeLaws property-checks the complete-lattice axioms used by the
// paper's Theorem 3.1 on every Figure 1 domain.
func TestLatticeLaws(t *testing.T) {
	for _, l := range allLattices() {
		l := l
		t.Run(l.Name(), func(t *testing.T) {
			cfg := &quick.Config{MaxCount: 300}
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				a, b, c := genElem(l, r), genElem(l, r), genElem(l, r)
				// Partial order: reflexive; antisymmetric; transitive.
				if !l.Leq(a, a) {
					t.Errorf("not reflexive at %v", a)
					return false
				}
				if l.Leq(a, b) && l.Leq(b, a) && !Eq(l, a, b) {
					t.Errorf("antisymmetry fails at %v, %v", a, b)
					return false
				}
				if l.Leq(a, b) && l.Leq(b, c) && !l.Leq(a, c) {
					t.Errorf("transitivity fails at %v, %v, %v", a, b, c)
					return false
				}
				// Join is the least upper bound; meet the greatest lower.
				j := l.Join(a, b)
				if !l.Leq(a, j) || !l.Leq(b, j) {
					t.Errorf("join %v of %v,%v is not an upper bound", j, a, b)
					return false
				}
				if l.Leq(a, c) && l.Leq(b, c) && !l.Leq(j, c) {
					t.Errorf("join %v of %v,%v is not least (ub %v)", j, a, b, c)
					return false
				}
				m := l.Meet(a, b)
				if !l.Leq(m, a) || !l.Leq(m, b) {
					t.Errorf("meet %v of %v,%v is not a lower bound", m, a, b)
					return false
				}
				if l.Leq(c, a) && l.Leq(c, b) && !l.Leq(c, m) {
					t.Errorf("meet %v of %v,%v is not greatest (lb %v)", m, a, b, c)
					return false
				}
				// Commutativity, idempotence, absorption.
				if !Eq(l, l.Join(a, b), l.Join(b, a)) || !Eq(l, l.Meet(a, b), l.Meet(b, a)) {
					t.Errorf("commutativity fails at %v, %v", a, b)
					return false
				}
				if !Eq(l, l.Join(a, a), a) || !Eq(l, l.Meet(a, a), a) {
					t.Errorf("idempotence fails at %v", a)
					return false
				}
				if !Eq(l, l.Join(a, l.Meet(a, b)), a) || !Eq(l, l.Meet(a, l.Join(a, b)), a) {
					t.Errorf("absorption fails at %v, %v", a, b)
					return false
				}
				// Bottom and top.
				if !l.Leq(l.Bottom(), a) {
					t.Errorf("bottom not least at %v", a)
					return false
				}
				if hasTop(l) && !l.Leq(a, l.Top()) {
					t.Errorf("top not greatest at %v", a)
					return false
				}
				return true
			}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestNumericBottoms(t *testing.T) {
	// Figure 1's ⊥ column: minreal has bottom +∞ (order is ≥), sumreal 0,
	// prodnat 1, countnat 0, booland true, boolor false.
	cases := []struct {
		l    Lattice
		want Elem
	}{
		{MaxReal, val.Number(math.Inf(-1))},
		{MinReal, val.Number(math.Inf(1))},
		{SumReal, val.Number(0)},
		{ProdNat, val.Number(1)},
		{CountNat, val.Number(0)},
		{BoolAnd, val.Boolean(true)},
		{BoolOr, val.Boolean(false)},
	}
	for _, c := range cases {
		if !Eq(c.l, c.l.Bottom(), c.want) {
			t.Errorf("%s: bottom = %v, want %v", c.l.Name(), c.l.Bottom(), c.want)
		}
	}
}

func TestMinJoinIsNumericMin(t *testing.T) {
	// In the (R, ≥) lattice the least upper bound of {3, 5} is 3: joining
	// path costs yields the shortest, per Example 3.1's warning.
	got := MinReal.Join(val.Number(3), val.Number(5))
	if got.N != 3 {
		t.Fatalf("minreal join(3,5) = %v, want 3", got)
	}
	if MinReal.Meet(val.Number(3), val.Number(5)).N != 5 {
		t.Fatalf("minreal meet(3,5) should be 5")
	}
	if !MinReal.Leq(val.Number(5), val.Number(3)) {
		t.Fatalf("in minreal, 5 ⊑ 3 must hold")
	}
}

func TestContains(t *testing.T) {
	if SumReal.Contains(val.Number(-1)) {
		t.Error("sumreal must reject negatives")
	}
	if ProdNat.Contains(val.Number(0)) {
		t.Error("prodnat must reject 0")
	}
	if ProdNat.Contains(val.Number(2.5)) {
		t.Error("prodnat must reject non-integers")
	}
	if !ProdNat.Contains(val.Number(math.Inf(1))) {
		t.Error("prodnat must contain ∞")
	}
	if MaxReal.Contains(val.Boolean(true)) {
		t.Error("maxreal must reject booleans")
	}
	if !BoolOr.Contains(val.Boolean(true)) {
		t.Error("boolor must contain booleans")
	}
}

func TestParse(t *testing.T) {
	if e, err := BoolOr.Parse(val.Number(1)); err != nil || !e.B {
		t.Errorf("boolor parse 1 = %v, %v; want true", e, err)
	}
	if e, err := BoolAnd.Parse(val.Number(0)); err != nil || e.B {
		t.Errorf("booland parse 0 = %v, %v; want false", e, err)
	}
	if _, err := BoolOr.Parse(val.Number(2)); err == nil {
		t.Error("boolor must reject 2")
	}
	if _, err := MinReal.Parse(val.Symbol("x")); err == nil {
		t.Error("minreal must reject symbols")
	}
	if _, err := SumReal.Parse(val.Number(-3)); err == nil {
		t.Error("sumreal must reject -3")
	}
}

func TestByNameRegistry(t *testing.T) {
	for _, name := range []string{"maxreal", "minreal", "sumreal", "booland", "boolor", "prodnat", "countnat", "setunion"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) missing", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName must miss unknown names")
	}
}

func TestSetLatticeOps(t *testing.T) {
	ab := val.SetOf(val.Symbol("a"), val.Symbol("b"))
	bc := val.SetOf(val.Symbol("b"), val.Symbol("c"))
	u := SetUnion.Join(ab, bc)
	if u.Set.Len() != 3 {
		t.Fatalf("union len = %d, want 3", u.Set.Len())
	}
	m := SetUnion.Meet(ab, bc)
	if m.Set.Len() != 1 || !m.Set.Contains(val.Symbol("b")) {
		t.Fatalf("intersection = %v, want {b}", m)
	}
	li := NewSetIntersect("itest", testUniverse)
	// In (2^S, ⊇), join is ∩ and bottom is S.
	if !Eq(li, li.Bottom(), val.T{Kind: val.SetKind, Set: testUniverse}) {
		t.Error("intersect-lattice bottom must be the universe")
	}
	if j := li.Join(ab, bc); j.Set.Len() != 1 {
		t.Errorf("intersect-lattice join = %v, want {b}", j)
	}
	if !li.Leq(ab, m) {
		t.Error("in (2^S, ⊇), {a,b} ⊑ {b}")
	}
}

func TestJoinMeetAll(t *testing.T) {
	xs := []Elem{val.Number(4), val.Number(2), val.Number(9)}
	if JoinAll(MinReal, xs).N != 2 {
		t.Error("JoinAll on minreal should take the numeric min")
	}
	if MeetAll(MinReal, xs).N != 9 {
		t.Error("MeetAll on minreal should take the numeric max")
	}
	if JoinAll(MinReal, nil).N != math.Inf(1) {
		t.Error("JoinAll of nothing is bottom (+∞ for minreal)")
	}
}
