// Package lattice implements the complete lattices of cost values and the
// monotonic / pseudo-monotonic aggregate functions of Ross & Sagiv,
// "Monotonic Aggregation in Deductive Databases" (PODS 1992), Figure 1.
//
// A cost domain is a complete lattice (D, ⊑) (Definition 2.1). The minimal
// model semantics of the paper lifts ⊑ pointwise to interpretations
// (Theorem 3.1); this package supplies the element-level operations.
//
// Beware the shortest-path convention from the paper's Example 3.1: for
// the "min" domains, ⊑ is ≥ on the underlying numbers, so Bottom is +∞ and
// Join (least upper bound) is numeric min. Minimal models therefore carry
// the *smallest* numeric path costs, exactly as the paper intends.
package lattice

import (
	"fmt"
	"math"

	"repro/internal/val"
)

// Elem is a lattice element; its concrete representation (val.Num,
// val.Bool, val.SetKind) depends on the lattice.
type Elem = val.T

// Lattice is a complete lattice of cost values.
type Lattice interface {
	// Name is the identifier used in .cost declarations.
	Name() string
	// Bottom is the least element with respect to ⊑ (the default value
	// required of default-value cost predicates, §2.3.2).
	Bottom() Elem
	// Top is the greatest element with respect to ⊑.
	Top() Elem
	// Leq reports a ⊑ b.
	Leq(a, b Elem) bool
	// Join returns the least upper bound a ⊔ b.
	Join(a, b Elem) Elem
	// Meet returns the greatest lower bound a ⊓ b.
	Meet(a, b Elem) Elem
	// Contains reports whether e is a well-formed element of the domain.
	Contains(e Elem) bool
	// Parse converts a constant from program text into an element.
	Parse(c val.T) (Elem, error)
}

// Eq reports whether a and b are the same element of l (i.e. a ⊑ b ⊑ a).
func Eq(l Lattice, a, b Elem) bool { return l.Leq(a, b) && l.Leq(b, a) }

// numeric is a complete lattice embedded in R ∪ {±∞}.
//
// ascending=true means ⊑ is ≤; ascending=false means ⊑ is ≥ (the "min"
// lattices, rows 3 of Figure 1). lo/hi bound the underlying numeric range
// (e.g. nonnegative reals for the sum domain, row 4).
type numeric struct {
	name      string
	ascending bool
	lo, hi    float64 // numeric bounds of the carrier (inclusive)
	integral  bool    // restrict to whole numbers (N domains)
}

func (n *numeric) Name() string { return n.name }

func (n *numeric) Bottom() Elem {
	if n.ascending {
		return val.Number(n.lo)
	}
	return val.Number(n.hi)
}

func (n *numeric) Top() Elem {
	if n.ascending {
		return val.Number(n.hi)
	}
	return val.Number(n.lo)
}

func (n *numeric) Leq(a, b Elem) bool {
	if n.ascending {
		return a.N <= b.N
	}
	return a.N >= b.N
}

func (n *numeric) Join(a, b Elem) Elem {
	if n.Leq(a, b) {
		return b
	}
	return a
}

func (n *numeric) Meet(a, b Elem) Elem {
	if n.Leq(a, b) {
		return a
	}
	return b
}

func (n *numeric) Contains(e Elem) bool {
	if e.Kind != val.Num {
		return false
	}
	if math.IsNaN(e.N) || e.N < n.lo || e.N > n.hi {
		return false
	}
	if n.integral && !math.IsInf(e.N, 0) && e.N != math.Trunc(e.N) {
		return false
	}
	return true
}

func (n *numeric) Parse(c val.T) (Elem, error) {
	if c.Kind != val.Num {
		return Elem{}, fmt.Errorf("lattice %s: %s is not numeric", n.name, c)
	}
	if !n.Contains(c) {
		return Elem{}, fmt.Errorf("lattice %s: %s outside domain", n.name, c)
	}
	return c, nil
}

// boolean is the two-element lattice B. trueIsTop=true gives the order
// 0 ⊑ 1 (row 6 of Figure 1, the OR domain); trueIsTop=false gives 1 ⊑ 0
// (row 5, the AND domain, whose bottom is true).
type boolean struct {
	name      string
	trueIsTop bool
}

func (b *boolean) Name() string { return b.name }

func (b *boolean) Bottom() Elem { return val.Boolean(!b.trueIsTop) }

func (b *boolean) Top() Elem { return val.Boolean(b.trueIsTop) }

func (b *boolean) Leq(x, y Elem) bool {
	if x.B == y.B {
		return true
	}
	return y.B == b.trueIsTop
}

func (b *boolean) Join(x, y Elem) Elem {
	if x.B == b.trueIsTop {
		return x
	}
	return y
}

func (b *boolean) Meet(x, y Elem) Elem {
	if x.B == b.trueIsTop {
		return y
	}
	return x
}

func (b *boolean) Contains(e Elem) bool { return e.Kind == val.Bool }

func (b *boolean) Parse(c val.T) (Elem, error) {
	switch {
	case c.Kind == val.Bool:
		return c, nil
	case c.Kind == val.Num && c.N == 0:
		return val.Boolean(false), nil
	case c.Kind == val.Num && c.N == 1:
		return val.Boolean(true), nil
	}
	return Elem{}, fmt.Errorf("lattice %s: %s is not boolean", b.name, c)
}

// Inf is the numeric representation of +∞.
var Inf = math.Inf(1)

// The numeric and boolean lattices of Figure 1. Each value is a distinct
// named lattice usable in .cost declarations.
var (
	// MaxReal is (R ∪ {±∞}, ≤): bottom −∞, join = numeric max (row 1).
	MaxReal Lattice = &numeric{name: "maxreal", ascending: true, lo: -Inf, hi: Inf}
	// SumReal is (R* ∪ {∞}, ≤): nonnegative reals, bottom 0 (rows 2, 4).
	SumReal Lattice = &numeric{name: "sumreal", ascending: true, lo: 0, hi: Inf}
	// MinReal is (R ∪ {±∞}, ≥): bottom +∞, join = numeric min (row 3).
	MinReal Lattice = &numeric{name: "minreal", ascending: false, lo: -Inf, hi: Inf}
	// BoolAnd is (B, ≥): bottom true, join = ∧ (row 5).
	BoolAnd Lattice = &boolean{name: "booland", trueIsTop: false}
	// BoolOr is (B, ≤): bottom false, join = ∨ (row 6).
	BoolOr Lattice = &boolean{name: "boolor", trueIsTop: true}
	// ProdNat is (N⁺ ∪ {∞}, ≤): positive integers, bottom 1 (row 7).
	ProdNat Lattice = &numeric{name: "prodnat", ascending: true, lo: 1, hi: Inf, integral: true}
	// CountNat is (N ∪ {∞}, ≤): nonnegative integers, bottom 0 (row 8 range).
	CountNat Lattice = &numeric{name: "countnat", ascending: true, lo: 0, hi: Inf, integral: true}
)

// byName is the registry of lattices addressable from .cost declarations.
var byName = map[string]Lattice{
	MaxReal.Name():  MaxReal,
	SumReal.Name():  SumReal,
	MinReal.Name():  MinReal,
	BoolAnd.Name():  BoolAnd,
	BoolOr.Name():   BoolOr,
	ProdNat.Name():  ProdNat,
	CountNat.Name(): CountNat,
	"setunion":      SetUnion,
}

// ByName looks up a lattice by declaration name.
func ByName(name string) (Lattice, bool) {
	l, ok := byName[name]
	return l, ok
}

// Register adds a lattice to the declaration registry (used for
// instance-specific lattices such as set-intersection over a declared
// universe). Registering a duplicate name is a programming error.
func Register(l Lattice) {
	if _, dup := byName[l.Name()]; dup {
		panic(fmt.Sprintf("lattice: duplicate registration of %q", l.Name()))
	}
	byName[l.Name()] = l
}

// Names returns the names of all registered lattices (unordered).
func Names() []string {
	out := make([]string, 0, len(byName))
	for k := range byName {
		out = append(out, k)
	}
	return out
}
