package lattice

// MultisetLeq reports whether the finite multiset a is ⊑_D the finite
// multiset b, under the extension of ⊑_D to multisets from §4.1 of the
// paper: a ⊑ b iff there is an injective map m from elements of a to
// elements of b with x ⊑_D m(x) for every x ∈ a.
//
// The injection is found with an augmenting-path bipartite matching, so the
// test is exact (not a greedy approximation). Restricted to finite
// multisets, the relation is a partial order, as the paper notes.
func MultisetLeq(l Lattice, a, b []Elem) bool {
	if len(a) > len(b) {
		return false
	}
	// adj[i] lists the indices j of b with a[i] ⊑ b[j].
	adj := make([][]int, len(a))
	for i, x := range a {
		for j, y := range b {
			if l.Leq(x, y) {
				adj[i] = append(adj[i], j)
			}
		}
		if len(adj[i]) == 0 {
			return false
		}
	}
	matchB := make([]int, len(b))
	for j := range matchB {
		matchB[j] = -1
	}
	var try func(i int, seen []bool) bool
	try = func(i int, seen []bool) bool {
		for _, j := range adj[i] {
			if seen[j] {
				continue
			}
			seen[j] = true
			if matchB[j] == -1 || try(matchB[j], seen) {
				matchB[j] = i
				return true
			}
		}
		return false
	}
	for i := range a {
		if !try(i, make([]bool, len(b))) {
			return false
		}
	}
	return true
}

// JoinAll folds Join over a nonempty slice; on an empty slice it returns
// the lattice bottom (the identity of ⊔).
func JoinAll(l Lattice, xs []Elem) Elem {
	acc := l.Bottom()
	for _, x := range xs {
		acc = l.Join(acc, x)
	}
	return acc
}

// MeetAll folds Meet over a nonempty slice; on an empty slice it returns
// the lattice top (the identity of ⊓).
func MeetAll(l Lattice, xs []Elem) Elem {
	acc := l.Top()
	for _, x := range xs {
		acc = l.Meet(acc, x)
	}
	return acc
}
