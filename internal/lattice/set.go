package lattice

import (
	"fmt"

	"repro/internal/val"
)

// setUnion is the powerset lattice (2^S, ⊆) with bottom ∅ (Figure 1 row 9).
// The universe S is left open: any finite set is an element, and the top is
// representable only symbolically, so Top panics if the lattice was built
// without a universe. Programs that need ⊤ should use NewSetIntersect or
// NewSetUnionOver with an explicit universe.
type setUnion struct {
	name     string
	universe *val.Set // nil when the universe is open
}

// SetUnion is (2^S, ⊆) over an open universe: bottom ∅, join ∪, meet ∩.
var SetUnion Lattice = &setUnion{name: "setunion"}

// NewSetUnionOver builds (2^S, ⊆) over the finite universe S, registered
// under the given name.
func NewSetUnionOver(name string, universe *val.Set) Lattice {
	return &setUnion{name: name, universe: universe}
}

func (s *setUnion) Name() string { return s.name }

func (s *setUnion) Bottom() Elem { return val.T{Kind: val.SetKind, Set: val.EmptySet} }

func (s *setUnion) Top() Elem {
	if s.universe == nil {
		panic("lattice: setunion over an open universe has no representable top")
	}
	return val.T{Kind: val.SetKind, Set: s.universe}
}

func (s *setUnion) Leq(a, b Elem) bool { return a.Set.SubsetOf(b.Set) }

func (s *setUnion) Join(a, b Elem) Elem {
	return val.T{Kind: val.SetKind, Set: a.Set.Union(b.Set)}
}

func (s *setUnion) Meet(a, b Elem) Elem {
	return val.T{Kind: val.SetKind, Set: a.Set.Intersect(b.Set)}
}

func (s *setUnion) Contains(e Elem) bool {
	if e.Kind != val.SetKind || e.Set == nil {
		return false
	}
	return s.universe == nil || e.Set.SubsetOf(s.universe)
}

func (s *setUnion) Parse(c val.T) (Elem, error) {
	if !s.Contains(c) {
		return Elem{}, fmt.Errorf("lattice %s: %s is not a set in the universe", s.name, c)
	}
	return c, nil
}

// setIntersect is the dual powerset lattice (2^S, ⊇) with bottom S and
// join ∩ (Figure 1 row 10). It requires a finite universe.
type setIntersect struct {
	name     string
	universe *val.Set
}

// NewSetIntersect builds (2^S, ⊇) over the finite universe S.
func NewSetIntersect(name string, universe *val.Set) Lattice {
	return &setIntersect{name: name, universe: universe}
}

func (s *setIntersect) Name() string { return s.name }

func (s *setIntersect) Bottom() Elem { return val.T{Kind: val.SetKind, Set: s.universe} }

func (s *setIntersect) Top() Elem { return val.T{Kind: val.SetKind, Set: val.EmptySet} }

func (s *setIntersect) Leq(a, b Elem) bool { return b.Set.SubsetOf(a.Set) }

func (s *setIntersect) Join(a, b Elem) Elem {
	return val.T{Kind: val.SetKind, Set: a.Set.Intersect(b.Set)}
}

func (s *setIntersect) Meet(a, b Elem) Elem {
	return val.T{Kind: val.SetKind, Set: a.Set.Union(b.Set)}
}

func (s *setIntersect) Contains(e Elem) bool {
	return e.Kind == val.SetKind && e.Set != nil && e.Set.SubsetOf(s.universe)
}

func (s *setIntersect) Parse(c val.T) (Elem, error) {
	if !s.Contains(c) {
		return Elem{}, fmt.Errorf("lattice %s: %s is not a set in the universe", s.name, c)
	}
	return c, nil
}

// Edge constructs the value representing a directed (multi)graph edge from
// u to v, for use with the edge-set domain of Figure 1 row 11.
func Edge(u, v string) val.T {
	return val.Symbol(u + "->" + v)
}
