// Package enginerr holds the sentinel error classes shared by every
// evaluation engine in the repository (the core fixpoint engine, the
// well-founded-semantics engine, and the stable-model enumerator).
//
// It is a leaf package: core imports wfs (for the §6.3 fallback) and
// stable imports both, so the common failure vocabulary has to live
// below all of them. Callers classify failures with errors.Is; the
// public surface re-exports these values as core.ErrCanceled etc. and
// datalog.ErrCanceled etc.
package enginerr

import "errors"

var (
	// ErrCanceled marks a cooperative stop: the caller's context was
	// canceled or its deadline (or the engine's MaxDuration) expired.
	// Partial results computed before the stop are still returned.
	ErrCanceled = errors.New("evaluation canceled")

	// ErrBudgetExceeded marks a resource-budget breach (derived-tuple
	// budget in the fixpoint engine, atom-universe cap in the WFS
	// engine). Partial results are still returned.
	ErrBudgetExceeded = errors.New("resource budget exceeded")

	// ErrDiverged marks non-convergent recursion: either a fixpoint
	// round bound was exhausted, or the ω-limit detector saw the same
	// aggregate group improve indefinitely (Example 5.1 of Ross &
	// Sagiv; the practical remedy is an Epsilon tolerance, §6.2).
	ErrDiverged = errors.New("evaluation diverged")

	// ErrInternal marks a contained internal panic: a bug in the engine
	// (or a pathological program tripping one) that was converted into
	// an error instead of crashing the host process.
	ErrInternal = errors.New("internal engine failure")

	// ErrCheckpoint marks a failed durable-checkpoint write during
	// evaluation: the configured sink returned an error, so continuing
	// would outrun the last recoverable state. Partial results are
	// still returned.
	ErrCheckpoint = errors.New("checkpoint write failed")
)
