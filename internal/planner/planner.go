// Package planner is the cost model behind the engine's cost-based rule
// planner (Limits.Plan = PlanCost): it turns live relation statistics
// into the selectivity estimates that drive join ordering, hash-table
// presizing, common-subplan sharing and adaptive re-planning in
// internal/core.
//
// The statistics are read directly from the relation store — Len() and
// the per-mask index cardinality DistinctUnder(mask) — so estimating a
// candidate scan also prewarms exactly the hash index the chosen order
// will probe. Nothing is sampled and nothing is persisted: the planner
// runs on the same structures evaluation uses, at the moment a
// component's fixpoint is about to start (and again between rounds when
// observed growth diverges from the estimates; see Diverged).
//
// The cost model, its formulas, and the determinism-and-equivalence
// contract the planner operates under are documented in
// docs/PLANNER.md; the per-operator counters of EXPLAIN ANALYZE
// (internal/exec OpCounts, PR 9) are the model's offline calibration
// input, and the estimates flow back out through the same profile as
// est_rows, so prediction and observation sit side by side in one
// report.
package planner

import (
	"math/bits"

	"repro/internal/ast"
	"repro/internal/relation"
)

// Estimator computes scan-cardinality estimates against one database
// snapshot. It is cheap to construct; build one per component planning
// pass so estimates reflect the interpretation the fixpoint will
// actually read.
type Estimator struct {
	db *relation.DB
}

// NewEstimator returns an estimator reading live statistics from db.
func NewEstimator(db *relation.DB) *Estimator { return &Estimator{db: db} }

// Estimator tuning constants. They are deliberately coarse: the planner
// only needs the relative order of candidate scans, not accurate row
// counts, and every formula degrades to the syntactic plan's behaviour
// when statistics are absent (empty relations, cold recursion).
const (
	// GrowthFactor and MinGrowthRows define the re-planning trigger:
	// a relation read by the component must have grown by at least
	// GrowthFactor× and by at least MinGrowthRows rows since the plan
	// was chosen (see Diverged).
	GrowthFactor  = 4
	MinGrowthRows = 16
	// MaxGroupsHint caps the γ group-table presize so a wild estimate
	// can never pre-allocate an absurd map.
	MaxGroupsHint = 1 << 20
	// MaxSharedRows caps the materialized size of a CSE buffer: a
	// shared prefix whose estimated (or observed) output exceeds this
	// is evaluated per-rule as usual rather than buffered.
	MaxSharedRows = 1 << 16
)

// ScanEst estimates the number of rows one scan of pred yields per
// invocation, given the bound-position mask at its position in a
// candidate join order (constants count as bound). recursive marks
// predicates derived by the component being planned, whose extensions
// grow while the plan runs.
//
// The formulas (documented with their rationale in docs/PLANNER.md):
//
//	default-value predicate   → 1 (always a point lookup)
//	mask == 0                 → Len (full extension stream)
//	frozen, mask != 0         → Len / DistinctUnder(mask) (uniform
//	                            bucket-size assumption over the live
//	                            hash index)
//	recursive                 → max(1, max(Len,1) >> popcount(mask))
//
// Recursive predicates use a synthetic halving discount instead of
// DistinctUnder for two reasons: their current Len underestimates the
// extension the scan will actually see (Δ rows drive most passes), and
// probing DistinctUnder would force index maintenance onto a relation
// that is still growing.
func (e *Estimator) ScanEst(pred ast.PredKey, info *ast.PredInfo, mask uint64, recursive bool) float64 {
	if info.HasDefault {
		return 1
	}
	rel := e.db.Rel(pred)
	n := rel.Len()
	if recursive {
		eff := max(n, 1)
		return float64(max(1, eff>>uint(bits.OnesCount64(mask))))
	}
	if mask == 0 || n == 0 {
		return float64(n)
	}
	d := rel.DistinctUnder(mask)
	if d <= 0 {
		return float64(n)
	}
	return float64(n) / float64(d)
}

// GroupsHint estimates the number of distinct γ groups an aggregate
// over pred will produce when grouping on the positions in mask: the
// distinct-projection count of the live index, capped by MaxGroupsHint.
// Recursive predicates return 0 (no hint) — their group count is a
// moving target and probing it would force index maintenance.
func (e *Estimator) GroupsHint(pred ast.PredKey, mask uint64, recursive bool) int {
	if recursive || mask == 0 {
		return 0
	}
	n := e.db.Rel(pred).DistinctUnder(mask)
	return min(n, MaxGroupsHint)
}

// Len reports the current extension size of pred, the statistic the
// re-planning trigger snapshots at plan time.
func (e *Estimator) Len(pred ast.PredKey) int { return e.db.Rel(pred).Len() }

// Diverged reports whether a relation's growth since plan time
// invalidates the estimates the plan was built on: it must have grown
// by GrowthFactor× AND by at least MinGrowthRows rows. The conjunction
// keeps tiny relations (whose relative growth is noisy) and huge
// relations (whose absolute growth is routine) from triggering spurious
// re-plans. The test reads only relation lengths at round boundaries —
// deterministic inputs at deterministic points — so sequential and
// parallel evaluation re-plan identically.
func Diverged(before, now int) bool {
	return now-before >= MinGrowthRows && now >= GrowthFactor*max(before, 1)
}

// Choice records the decisions the planner made for one rule, for
// EXPLAIN/Profile rendering: the chosen physical order (as canonical
// step positions), the per-position row estimates the order was chosen
// by, and how many leading steps were folded into a shared CSE buffer.
type Choice struct {
	// Order maps each physical position to the canonical (syntactic)
	// step position it executes, -1 for a CSE buffer step.
	Order []int
	// Est is the estimated rows-per-invocation of each physical
	// position's operator at planning time (0 when not estimated:
	// builtins, negations).
	Est []float64
	// Shared is the number of canonical steps folded into the leading
	// shared-buffer step (0 = no CSE applied to this rule).
	Shared int
}

// Identity reports whether the choice leaves the syntactic plan
// untouched (same order, no sharing) — in that case the engine keeps
// the syntactic physical plan and its warm machine pool.
func (c *Choice) Identity() bool {
	if c.Shared != 0 {
		return false
	}
	for i, o := range c.Order {
		if o != i {
			return false
		}
	}
	return true
}
