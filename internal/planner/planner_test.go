package planner

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/val"
)

func testDB(name string, arity int) (*relation.DB, ast.PredKey, *ast.PredInfo) {
	k := ast.MakePredKey(name, arity)
	pi := &ast.PredInfo{Key: k, Arity: arity}
	return relation.NewDB(ast.Schemas{k: pi}), k, pi
}

func insert(db *relation.DB, k ast.PredKey, args ...string) {
	raw := make([]val.T, len(args))
	for i, a := range args {
		raw[i] = val.Symbol(a)
	}
	db.Rel(k).InsertJoin(raw, val.T{})
}

// TestScanEstMonotoneUnderInsert is the estimator's core property: the
// estimated rows of any fixed (pred, mask) scan never decreases as facts
// are inserted — cardinalities only grow, so plans chosen on a prefix of
// the data stay conservative.
func TestScanEstMonotoneUnderInsert(t *testing.T) {
	db, k, pi := testDB("e", 2)
	est := NewEstimator(db)
	masks := []uint64{0, 1, 2, 3}
	prev := make([]float64, len(masks))
	for i := 0; i < 64; i++ {
		insert(db, k, fmt.Sprintf("a%d", i%8), fmt.Sprintf("b%d", i))
		for j, m := range masks {
			got := est.ScanEst(k, pi, m, false)
			if got < prev[j] {
				t.Fatalf("insert %d: ScanEst(mask=%d) shrank %v -> %v", i, m, prev[j], got)
			}
			prev[j] = got
		}
	}
}

// TestScanEstBucketFormula pins Len/DistinctUnder on a known shape:
// 8 distinct first columns over 64 rows → 8 rows per bound-first probe.
func TestScanEstBucketFormula(t *testing.T) {
	db, k, pi := testDB("e", 2)
	for i := 0; i < 64; i++ {
		insert(db, k, fmt.Sprintf("a%d", i%8), fmt.Sprintf("b%d", i))
	}
	est := NewEstimator(db)
	if got := est.ScanEst(k, pi, 0, false); got != 64 {
		t.Fatalf("unbound ScanEst = %v, want 64 (full extension)", got)
	}
	if got := est.ScanEst(k, pi, 1, false); got != 8 {
		t.Fatalf("bound-first ScanEst = %v, want 8 (64 rows / 8 buckets)", got)
	}
	if got := est.ScanEst(k, pi, 3, false); got != 1 {
		t.Fatalf("fully-bound ScanEst = %v, want 1 (point lookup)", got)
	}
}

// TestScanEstDefault: default-value predicates always answer point
// lookups, regardless of stored size.
func TestScanEstDefault(t *testing.T) {
	db, k, pi := testDB("d", 1)
	pi.HasDefault = true
	if got := NewEstimator(db).ScanEst(k, pi, 0, false); got != 1 {
		t.Fatalf("default-pred ScanEst = %v, want 1", got)
	}
}

// TestScanEstRecursive: recursive predicates use the halving discount,
// never DistinctUnder, and never estimate below 1.
func TestScanEstRecursive(t *testing.T) {
	db, k, pi := testDB("p", 2)
	est := NewEstimator(db)
	if got := est.ScanEst(k, pi, 3, true); got != 1 {
		t.Fatalf("empty recursive ScanEst = %v, want 1 (floor)", got)
	}
	for i := 0; i < 16; i++ {
		insert(db, k, fmt.Sprintf("a%d", i), "b")
	}
	if got := est.ScanEst(k, pi, 0, true); got != 16 {
		t.Fatalf("unbound recursive ScanEst = %v, want 16", got)
	}
	if got := est.ScanEst(k, pi, 1, true); got != 8 {
		t.Fatalf("one-bound recursive ScanEst = %v, want 8 (16>>1)", got)
	}
}

// TestGroupsHintNeverShrinksCorrectness: the hint is a presize, so any
// value is semantically safe, but it must be 0 for moving targets
// (recursive preds), capped, and otherwise equal to the live distinct
// count under the group mask.
func TestGroupsHint(t *testing.T) {
	db, k, _ := testDB("e", 2)
	for i := 0; i < 64; i++ {
		insert(db, k, fmt.Sprintf("a%d", i%8), fmt.Sprintf("b%d", i))
	}
	est := NewEstimator(db)
	if got := est.GroupsHint(k, 1, false); got != 8 {
		t.Fatalf("GroupsHint(mask=1) = %d, want 8", got)
	}
	if got := est.GroupsHint(k, 1, true); got != 0 {
		t.Fatalf("recursive GroupsHint = %d, want 0", got)
	}
	if got := est.GroupsHint(k, 0, false); got != 0 {
		t.Fatalf("maskless GroupsHint = %d, want 0", got)
	}
	if MaxGroupsHint < 1 {
		t.Fatal("MaxGroupsHint must be positive")
	}
}

// TestGroupsHintMonotoneUnderInsert: like ScanEst, the presize only
// grows with the data, so a map presized at plan time is never an
// over-commitment relative to an earlier snapshot.
func TestGroupsHintMonotoneUnderInsert(t *testing.T) {
	db, k, _ := testDB("e", 2)
	est := NewEstimator(db)
	prev := 0
	for i := 0; i < 64; i++ {
		insert(db, k, fmt.Sprintf("a%d", i%5), fmt.Sprintf("b%d", i))
		got := est.GroupsHint(k, 1, false)
		if got < prev {
			t.Fatalf("insert %d: GroupsHint shrank %d -> %d", i, prev, got)
		}
		prev = got
	}
}

// TestDiverged pins the re-planning trigger: both the relative and the
// absolute threshold must be crossed.
func TestDiverged(t *testing.T) {
	cases := []struct {
		before, now int
		want        bool
	}{
		{0, 0, false},
		{0, 15, false},      // absolute floor not met
		{0, 16, true},       // 16 rows from nothing
		{10, 25, false},     // +15 rows, under both
		{10, 39, false},     // 3.9x, relative not met
		{10, 40, true},      // exactly 4x and ≥16 rows
		{1000, 1400, false}, // routine growth on a big relation
		{1000, 4000, true},  // 4x on a big relation
		{5, 20, false},      // 4x but only +15 rows
		{4, 20, true},       // 5x and +16 rows
	}
	for _, c := range cases {
		if got := Diverged(c.before, c.now); got != c.want {
			t.Errorf("Diverged(%d, %d) = %v, want %v", c.before, c.now, got, c.want)
		}
	}
}

// TestChoiceIdentity: the identity predicate drives whether the engine
// keeps the syntactic physical plan (and its warm machine pool).
func TestChoiceIdentity(t *testing.T) {
	if !(&Choice{Order: []int{0, 1, 2}}).Identity() {
		t.Fatal("in-order, unshared choice must be identity")
	}
	if (&Choice{Order: []int{1, 0}}).Identity() {
		t.Fatal("reordered choice must not be identity")
	}
	if (&Choice{Order: []int{-1, 2}, Shared: 2}).Identity() {
		t.Fatal("shared choice must not be identity")
	}
}
