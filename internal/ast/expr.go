package ast

import (
	"fmt"
	"math"

	"repro/internal/val"
)

// Expr is an arithmetic expression appearing in a built-in subgoal.
type Expr interface {
	isExpr()
	String() string
	// Vars appends the variables of the expression to dst.
	Vars(dst []Var) []Var
}

// NumExpr is a numeric literal.
type NumExpr struct{ N float64 }

func (NumExpr) isExpr()                {}
func (e NumExpr) String() string       { return val.Number(e.N).String() }
func (e NumExpr) Vars(dst []Var) []Var { return dst }

// ConstExpr is a non-numeric constant (symbol, boolean) usable only with
// = and != comparisons.
type ConstExpr struct{ V val.T }

func (ConstExpr) isExpr()                {}
func (e ConstExpr) String() string       { return e.V.String() }
func (e ConstExpr) Vars(dst []Var) []Var { return dst }

// VarExpr is a variable reference.
type VarExpr struct{ V Var }

func (VarExpr) isExpr()                {}
func (e VarExpr) String() string       { return string(e.V) }
func (e VarExpr) Vars(dst []Var) []Var { return append(dst, e.V) }

// ArithOp is a binary arithmetic operator.
type ArithOp int

// The arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	}
	return "?"
}

// BinExpr is a binary arithmetic expression.
type BinExpr struct {
	Op   ArithOp
	L, R Expr
}

func (*BinExpr) isExpr() {}

func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

func (e *BinExpr) Vars(dst []Var) []Var {
	dst = e.L.Vars(dst)
	return e.R.Vars(dst)
}

// EvalExpr evaluates an expression under a binding of variables to values.
// Arithmetic is defined on numbers only; it returns an error on unbound
// variables or non-numeric operands of arithmetic operators.
func EvalExpr(e Expr, lookup func(Var) (val.T, bool)) (val.T, error) {
	switch e := e.(type) {
	case NumExpr:
		return val.Number(e.N), nil
	case ConstExpr:
		return e.V, nil
	case VarExpr:
		v, ok := lookup(e.V)
		if !ok {
			return val.T{}, fmt.Errorf("unbound variable %s in expression", e.V)
		}
		return v, nil
	case *BinExpr:
		l, err := EvalExpr(e.L, lookup)
		if err != nil {
			return val.T{}, err
		}
		r, err := EvalExpr(e.R, lookup)
		if err != nil {
			return val.T{}, err
		}
		if l.Kind != val.Num || r.Kind != val.Num {
			return val.T{}, fmt.Errorf("arithmetic on non-numeric values %s, %s", l, r)
		}
		switch e.Op {
		case OpAdd:
			return val.Number(l.N + r.N), nil
		case OpSub:
			return val.Number(l.N - r.N), nil
		case OpMul:
			return val.Number(l.N * r.N), nil
		case OpDiv:
			if r.N == 0 {
				return val.T{}, fmt.Errorf("division by zero")
			}
			return val.Number(l.N / r.N), nil
		}
	}
	return val.T{}, fmt.Errorf("bad expression %v", e)
}

// Compare applies a comparison operator to two values. Ordering operators
// require numbers; equality works on all kinds.
func Compare(op CmpOp, l, r val.T) (bool, error) {
	switch op {
	case OpEq:
		return val.Equal(l, r), nil
	case OpNe:
		return !val.Equal(l, r), nil
	}
	if l.Kind != val.Num || r.Kind != val.Num {
		return false, fmt.Errorf("ordered comparison of non-numeric values %s, %s", l, r)
	}
	if math.IsNaN(l.N) || math.IsNaN(r.N) {
		return false, fmt.Errorf("comparison with NaN")
	}
	switch op {
	case OpLt:
		return l.N < r.N, nil
	case OpLe:
		return l.N <= r.N, nil
	case OpGt:
		return l.N > r.N, nil
	case OpGe:
		return l.N >= r.N, nil
	}
	return false, fmt.Errorf("bad comparison operator %v", op)
}
