package ast

import (
	"strings"
	"testing"

	"repro/internal/val"
)

// TestPrinting covers the concrete-syntax renderers directly (the
// parser's round-trip tests exercise them indirectly; these pin the
// exact forms).
func TestPrinting(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Var("X").String(), "X"},
		{Sym("abc").String(), "abc"},
		{Num(2.5).String(), "2.5"},
		{BoolConst(true).String(), "1"},
		{BoolConst(false).String(), "0"},
		{(&Atom{Pred: "p"}).String(), "p"},
		{(&Atom{Pred: "p", Args: []Term{Var("X"), Sym("a")}}).String(), "p(X, a)"},
		{(&Lit{Atom: Atom{Pred: "q", Args: []Term{Var("Y")}}, Neg: true}).String(), "not q(Y)"},
		{(&Builtin{Op: OpNe, L: VarExpr{V: "A"}, R: NumExpr{N: 3}}).String(), "A != 3"},
		{(&Builtin{Op: OpLe, L: VarExpr{V: "A"}, R: ConstExpr{V: val.Symbol("c")}}).String(), "A <= c"},
		{(&BinExpr{Op: OpMul, L: VarExpr{V: "A"}, R: &BinExpr{Op: OpSub, L: NumExpr{N: 1}, R: VarExpr{V: "B"}}}).String(), "(A * (1 - B))"},
		{(&BinExpr{Op: OpDiv, L: NumExpr{N: 4}, R: NumExpr{N: 2}}).String(), "(4 / 2)"},
		{(&BinExpr{Op: OpAdd, L: NumExpr{N: 4}, R: NumExpr{N: 2}}).String(), "(4 + 2)"},
		{(&Agg{Result: "C", Func: "min", MultisetVar: "D",
			Conj: []Atom{{Pred: "p", Args: []Term{Var("D")}}}}).String(), "C = min D : p(D)"},
		{(&Agg{Result: "N", Restricted: true, Func: "count",
			Conj: []Atom{{Pred: "q", Args: []Term{Var("X")}}, {Pred: "r", Args: []Term{Var("X")}}}}).String(),
			"N ?= count : [q(X), r(X)]"},
		{(&Constraint{Body: []Subgoal{
			&Lit{Atom: Atom{Pred: "a", Args: []Term{Var("X")}}},
			&Lit{Atom: Atom{Pred: "b", Args: []Term{Var("X")}}},
		}}).String(), ":- a(X), b(X)."},
		{(&Rule{Head: Atom{Pred: "f", Args: []Term{Sym("a")}}}).String(), "f(a)."},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
	// Operator names cover every variant.
	ops := map[CmpOp]string{OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("CmpOp %d prints %q, want %q", op, op.String(), want)
		}
	}
	ariths := map[ArithOp]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/"}
	for op, want := range ariths {
		if op.String() != want {
			t.Errorf("ArithOp %d prints %q, want %q", op, op.String(), want)
		}
	}
}

func TestIsGroundAndFreeVars(t *testing.T) {
	ground := Atom{Pred: "p", Args: []Term{Sym("a"), Num(1)}}
	if !ground.IsGround() {
		t.Fatal("ground atom misclassified")
	}
	open := Atom{Pred: "p", Args: []Term{Sym("a"), Var("X")}}
	if open.IsGround() {
		t.Fatal("open atom misclassified")
	}
	g := &Agg{Result: "C", Func: "sum", MultisetVar: "E",
		Conj: []Atom{{Pred: "p", Args: []Term{Var("X"), Var("E")}}}}
	vars := g.FreeVars(nil)
	if len(vars) != 3 { // C, X, E
		t.Fatalf("agg free vars = %v", vars)
	}
	b := &Builtin{Op: OpEq, L: VarExpr{V: "A"}, R: &BinExpr{Op: OpAdd, L: VarExpr{V: "B"}, R: NumExpr{N: 1}}}
	if vs := b.FreeVars(nil); len(vs) != 2 {
		t.Fatalf("builtin free vars = %v", vs)
	}
}

func TestProgramStringIncludesDeclarations(t *testing.T) {
	p := &Program{
		CostDecls:   []CostDecl{{Pred: "p/2", Lattice: "sumreal"}},
		DefaultDecl: []DefaultDecl{{Pred: "p/2", Value: val.Number(0)}},
		Constraints: []*Constraint{{Body: []Subgoal{&Lit{Atom: Atom{Pred: "bad"}}}}},
		Rules:       []*Rule{{Head: Atom{Pred: "p", Args: []Term{Sym("a"), Num(1)}}}},
	}
	text := p.String()
	for _, want := range []string{".cost p/2 : sumreal.", ".default p/2 = 0.", ":- bad.", "p(a, 1)."} {
		if !strings.Contains(text, want) {
			t.Errorf("program text missing %q:\n%s", want, text)
		}
	}
}

func TestEvalExprConstAndCompare(t *testing.T) {
	v, err := EvalExpr(ConstExpr{V: val.Symbol("a")}, nil)
	if err != nil || v.S != "a" {
		t.Fatalf("ConstExpr eval = %v, %v", v, err)
	}
	// Arithmetic over non-numbers errors.
	_, err = EvalExpr(&BinExpr{Op: OpAdd, L: ConstExpr{V: val.Symbol("a")}, R: NumExpr{N: 1}}, nil)
	if err == nil {
		t.Fatal("symbol arithmetic must error")
	}
	// Every comparison on numbers.
	for op, want := range map[CmpOp]bool{OpLt: true, OpLe: true, OpGt: false, OpGe: false, OpEq: false, OpNe: true} {
		got, err := Compare(op, val.Number(1), val.Number(2))
		if err != nil || got != want {
			t.Errorf("Compare(%v, 1, 2) = %v, %v; want %v", op, got, err, want)
		}
	}
}
