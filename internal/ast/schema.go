package ast

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/val"
)

// PredInfo is the resolved schema of one predicate.
type PredInfo struct {
	Key   PredKey
	Arity int
	// HasCost marks a cost predicate; by convention (§2.3) the cost
	// argument is the final argument.
	HasCost bool
	// L is the cost lattice (nil unless HasCost).
	L lattice.Lattice
	// HasDefault marks a default-value cost predicate (§2.3.2). The
	// default value is always the lattice bottom, which the paper insists
	// on ("the default truth value is the minimal element").
	HasDefault bool
}

// NonCost returns the number of non-cost arguments.
func (pi *PredInfo) NonCost() int {
	if pi.HasCost {
		return pi.Arity - 1
	}
	return pi.Arity
}

// CostIndex returns the index of the cost argument, or -1.
func (pi *PredInfo) CostIndex() int {
	if pi.HasCost {
		return pi.Arity - 1
	}
	return -1
}

// Schemas maps predicate keys to their resolved schemas.
type Schemas map[PredKey]*PredInfo

// Info returns the schema for k, materializing a plain (non-cost) schema
// for predicates that were never declared.
func (s Schemas) Info(k PredKey) *PredInfo {
	if pi, ok := s[k]; ok {
		return pi
	}
	return nil
}

// BuildSchemas resolves the declarations of a program into per-predicate
// schemas and validates them: lattices must exist, declarations must be
// unique, and defaults are only legal on declared cost predicates.
func BuildSchemas(p *Program) (Schemas, error) {
	s := Schemas{}
	arities := map[PredKey]int{}
	for _, k := range p.Preds() {
		var arity int
		if _, err := fmt.Sscanf(string(k)[len(k.Name())+1:], "%d", &arity); err != nil {
			return nil, fmt.Errorf("ast: bad predicate key %q", k)
		}
		arities[k] = arity
		s[k] = &PredInfo{Key: k, Arity: arity}
	}
	for _, d := range p.CostDecls {
		pi, ok := s[d.Pred]
		if !ok {
			// Declared but unused predicates get a schema anyway so that
			// EDB-only programs can be loaded incrementally.
			var arity int
			if _, err := fmt.Sscanf(string(d.Pred)[len(d.Pred.Name())+1:], "%d", &arity); err != nil {
				return nil, fmt.Errorf("ast: bad predicate key %q in .cost", d.Pred)
			}
			pi = &PredInfo{Key: d.Pred, Arity: arity}
			s[d.Pred] = pi
		}
		if pi.HasCost {
			return nil, fmt.Errorf("ast: duplicate .cost declaration for %s", d.Pred)
		}
		if pi.Arity == 0 {
			return nil, fmt.Errorf("ast: %s has no arguments, cannot carry a cost", d.Pred)
		}
		l, ok := lattice.ByName(d.Lattice)
		if !ok {
			return nil, fmt.Errorf("ast: unknown lattice %q for %s", d.Lattice, d.Pred)
		}
		pi.HasCost = true
		pi.L = l
	}
	for _, d := range p.DefaultDecl {
		pi, ok := s[d.Pred]
		if !ok || !pi.HasCost {
			return nil, fmt.Errorf("ast: .default %s requires a prior .cost declaration", d.Pred)
		}
		if pi.HasDefault {
			return nil, fmt.Errorf("ast: duplicate .default declaration for %s", d.Pred)
		}
		v, err := pi.L.Parse(d.Value)
		if err != nil {
			return nil, fmt.Errorf("ast: .default %s: %v", d.Pred, err)
		}
		if !lattice.Eq(pi.L, v, pi.L.Bottom()) {
			// §2.3.2: "We shall insist that the default truth value is the
			// minimal element with respect to the cost order."
			return nil, fmt.Errorf("ast: default value %s for %s is not the lattice bottom %s",
				d.Value, d.Pred, pi.L.Bottom())
		}
		pi.HasDefault = true
	}
	return s, nil
}

// AggRoles classifies the variables of an aggregate subgoal within its
// rule (Definition 2.4): grouping variables also occur outside the
// subgoal; local variables occur only inside it.
type AggRoles struct {
	Grouping []Var
	Local    []Var
}

// RolesOf computes the grouping/local split for the aggregate subgoal at
// body index idx of rule r. Variables are returned in first-occurrence
// order without duplicates.
func RolesOf(r *Rule, idx int) AggRoles {
	g := r.Body[idx].(*Agg)
	outside := map[Var]bool{}
	for _, v := range r.Head.Vars(nil) {
		outside[v] = true
	}
	for i, s := range r.Body {
		if i == idx {
			continue
		}
		for _, v := range s.FreeVars(nil) {
			outside[v] = true
		}
	}
	// The result variable does not make an inner variable "grouping".
	var roles AggRoles
	seen := map[Var]bool{}
	for _, v := range g.InnerVars(nil) {
		if seen[v] {
			continue
		}
		seen[v] = true
		if outside[v] || v == g.Result {
			roles.Grouping = append(roles.Grouping, v)
		} else {
			roles.Local = append(roles.Local, v)
		}
	}
	return roles
}

// ValidateProgram performs the structural checks of Definition 2.4 on
// every aggregate subgoal, resolves aggregate names, and checks
// well-typedness of multiset variables (§4.2: the aggregate's domain type
// must equal the type of each cost argument in which the multiset variable
// occurs).
func ValidateProgram(p *Program, s Schemas) error {
	for _, r := range p.Rules {
		hi := s.Info(r.Head.Key())
		if hi == nil {
			return fmt.Errorf("ast: no schema for %s", r.Head.Key())
		}
		if hi.HasCost && r.IsFact() {
			// Ground cost facts must carry a value from the lattice.
			if c, ok := r.Head.Args[hi.CostIndex()].(Const); ok {
				if _, err := hi.L.Parse(c.V); err != nil {
					return fmt.Errorf("ast: fact %s: %v", r.Head, err)
				}
			}
		}
		for i, sg := range r.Body {
			g, ok := sg.(*Agg)
			if !ok {
				continue
			}
			if err := validateAgg(r, i, g, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateAgg(r *Rule, idx int, g *Agg, s Schemas) error {
	where := fmt.Sprintf("ast: rule %q, aggregate %q", r, g)
	f, ok := lattice.AggregateByName(g.Func)
	if !ok {
		return fmt.Errorf("%s: unknown aggregate function %q", where, g.Func)
	}
	if len(g.Conj) == 0 {
		return fmt.Errorf("%s: empty aggregation", where)
	}
	if g.Result == g.MultisetVar {
		return fmt.Errorf("%s: aggregate variable equals multiset variable", where)
	}
	// The multiset variable must occur in cost arguments of the
	// conjunction (and nowhere else in the rule); the aggregate variable
	// must not occur inside the conjunction (Definition 2.4 requires it to
	// differ from the local variables, and making it a grouping variable
	// inside the aggregation would be circular).
	costOccurrences := 0
	for ci := range g.Conj {
		a := &g.Conj[ci]
		pi := s.Info(a.Key())
		if pi == nil {
			return fmt.Errorf("%s: no schema for %s", where, a.Key())
		}
		for ai, t := range a.Args {
			v, isVar := t.(Var)
			if !isVar {
				continue
			}
			isCostPos := pi.HasCost && ai == pi.CostIndex()
			if v == g.MultisetVar && g.MultisetVar != "" {
				if !isCostPos {
					return fmt.Errorf("%s: multiset variable %s in non-cost position of %s", where, v, a)
				}
				if !sameLattice(pi.L, f.Domain()) {
					return fmt.Errorf("%s: cost domain %s of %s differs from domain %s of %s",
						where, pi.L.Name(), a.Pred, f.Domain().Name(), g.Func)
				}
				costOccurrences++
			}
			if v == g.Result {
				return fmt.Errorf("%s: aggregate variable %s occurs inside the aggregation", where, v)
			}
		}
	}
	if g.MultisetVar != "" && costOccurrences == 0 {
		return fmt.Errorf("%s: multiset variable %s does not occur in any cost argument", where, g.MultisetVar)
	}
	// The multiset variable must not leak outside the aggregate subgoal.
	if g.MultisetVar != "" {
		for i, sg := range r.Body {
			if i == idx {
				continue
			}
			for _, v := range sg.FreeVars(nil) {
				if v == g.MultisetVar {
					return fmt.Errorf("%s: multiset variable %s escapes the aggregate subgoal", where, v)
				}
			}
		}
		for _, v := range r.Head.Vars(nil) {
			if v == g.MultisetVar {
				return fmt.Errorf("%s: multiset variable %s occurs in the head", where, v)
			}
		}
	}
	return nil
}

func sameLattice(a, b lattice.Lattice) bool { return a.Name() == b.Name() }

// FactValue extracts the ground tuple of a fact head: the non-cost
// arguments as values plus the parsed cost element (or ok=false cost for
// non-cost predicates).
func FactValue(a *Atom, pi *PredInfo) (args []val.T, cost val.T, hasCost bool, err error) {
	for i, t := range a.Args {
		c, ok := t.(Const)
		if !ok {
			return nil, val.T{}, false, fmt.Errorf("ast: fact %s is not ground", a)
		}
		if pi.HasCost && i == pi.CostIndex() {
			cost, err = pi.L.Parse(c.V)
			if err != nil {
				return nil, val.T{}, false, fmt.Errorf("ast: fact %s: %v", a, err)
			}
			hasCost = true
			continue
		}
		args = append(args, c.V)
	}
	return args, cost, hasCost, nil
}
