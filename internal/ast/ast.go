// Package ast defines the abstract syntax of the rule language of Ross &
// Sagiv (PODS 1992): rules over atoms with optional cost arguments,
// aggregate subgoals in both the total "=" and restricted "?=" (the
// paper's "=r") forms, built-in arithmetic subgoals, negation, integrity
// constraints (Definition 2.9) and the declarations of §2.3 (cost
// predicates, default values).
package ast

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/val"
)

// Term is either a variable or a constant.
type Term interface {
	isTerm()
	String() string
}

// Var is a variable (written with a leading upper-case letter or '_').
type Var string

func (Var) isTerm()          {}
func (v Var) String() string { return string(v) }

// Const is a constant term wrapping a runtime value.
type Const struct{ V val.T }

func (Const) isTerm()          {}
func (c Const) String() string { return c.V.String() }

// Sym, Num and BoolConst are convenience constructors.
func Sym(s string) Const     { return Const{val.Symbol(s)} }
func Num(n float64) Const    { return Const{val.Number(n)} }
func BoolConst(b bool) Const { return Const{val.Boolean(b)} }

// PredKey identifies a predicate by name and arity, e.g. "path/4".
type PredKey string

// MakePredKey builds the key for name with the given arity.
func MakePredKey(name string, arity int) PredKey {
	return PredKey(fmt.Sprintf("%s/%d", name, arity))
}

// Name returns the predicate name portion of the key.
func (k PredKey) Name() string {
	s := string(k)
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[:i]
	}
	return s
}

// Atom is a (possibly non-ground) atomic formula.
type Atom struct {
	Pred string
	Args []Term
}

// Key returns the predicate key of the atom.
func (a *Atom) Key() PredKey { return MakePredKey(a.Pred, len(a.Args)) }

// IsGround reports whether the atom contains no variables.
func (a *Atom) IsGround() bool {
	for _, t := range a.Args {
		if _, isVar := t.(Var); isVar {
			return false
		}
	}
	return true
}

// Vars appends the variables of the atom to dst, in argument order with
// duplicates retained.
func (a *Atom) Vars(dst []Var) []Var {
	for _, t := range a.Args {
		if v, ok := t.(Var); ok {
			dst = append(dst, v)
		}
	}
	return dst
}

func (a *Atom) String() string {
	if len(a.Args) == 0 {
		return a.Pred
	}
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ", ") + ")"
}

// Subgoal is one conjunct of a rule body.
type Subgoal interface {
	isSubgoal()
	String() string
	// FreeVars appends every variable occurring in the subgoal
	// (including local and multiset variables of aggregates).
	FreeVars(dst []Var) []Var
}

// Lit is a positive or negative literal.
type Lit struct {
	Atom Atom
	Neg  bool
}

func (*Lit) isSubgoal() {}

func (l *Lit) FreeVars(dst []Var) []Var { return l.Atom.Vars(dst) }

func (l *Lit) String() string {
	if l.Neg {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Agg is an aggregate subgoal (Definition 2.4):
//
//	C  = F E : [p1(...), ..., pk(...)]   (total form)
//	C ?= F E : [p1(...), ..., pk(...)]   (restricted form, the paper's =r:
//	                                      false on the empty multiset)
//
// MultisetVar is empty for aggregates applied to implicit boolean cost
// arguments, as in "N = count : q(X)".
type Agg struct {
	Result      Var
	Restricted  bool
	Func        string
	MultisetVar Var // "" when the cost argument is implicit
	Conj        []Atom
}

func (*Agg) isSubgoal() {}

func (g *Agg) FreeVars(dst []Var) []Var {
	dst = append(dst, g.Result)
	for i := range g.Conj {
		dst = g.Conj[i].Vars(dst)
	}
	return dst
}

// InnerVars appends the variables occurring inside the aggregation (the
// conjunction), excluding the multiset variable.
func (g *Agg) InnerVars(dst []Var) []Var {
	for i := range g.Conj {
		for _, t := range g.Conj[i].Args {
			if v, ok := t.(Var); ok && v != g.MultisetVar {
				dst = append(dst, v)
			}
		}
	}
	return dst
}

func (g *Agg) String() string {
	eq := "="
	if g.Restricted {
		eq = "?="
	}
	ms := ""
	if g.MultisetVar != "" {
		ms = " " + string(g.MultisetVar)
	}
	parts := make([]string, len(g.Conj))
	for i := range g.Conj {
		parts[i] = g.Conj[i].String()
	}
	body := parts[0]
	if len(parts) > 1 {
		body = "[" + strings.Join(parts, ", ") + "]"
	}
	return fmt.Sprintf("%s %s %s%s : %s", g.Result, eq, g.Func, ms, body)
}

// CmpOp is a comparison operator of a built-in subgoal.
type CmpOp int

// The comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Builtin is a built-in comparison subgoal over arithmetic expressions,
// e.g. "C = C1 + C2" or "N > 0.5" (§2.2: built-in predicates are equalities
// and comparisons involving arithmetic expressions).
type Builtin struct {
	Op   CmpOp
	L, R Expr
}

func (*Builtin) isSubgoal() {}

func (b *Builtin) FreeVars(dst []Var) []Var {
	dst = b.L.Vars(dst)
	return b.R.Vars(dst)
}

func (b *Builtin) String() string {
	return fmt.Sprintf("%s %s %s", b.L, b.Op, b.R)
}

// Rule is "Head :- Body." A fact is a rule with an empty body.
type Rule struct {
	Head Atom
	Body []Subgoal
}

// IsFact reports whether the rule has an empty body.
func (r *Rule) IsFact() bool { return len(r.Body) == 0 }

// AllVars returns the distinct variables of the rule in first-occurrence
// order.
func (r *Rule) AllVars() []Var {
	var vs []Var
	vs = r.Head.Vars(vs)
	for _, s := range r.Body {
		vs = s.FreeVars(vs)
	}
	seen := map[Var]bool{}
	out := vs[:0]
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func (r *Rule) String() string {
	if r.IsFact() {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, s := range r.Body {
		parts[i] = s.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Constraint is an integrity constraint (Definition 2.9): a headless
// conjunction guaranteed unsatisfiable by the application.
type Constraint struct {
	Body []Subgoal
}

func (c *Constraint) String() string {
	parts := make([]string, len(c.Body))
	for i, s := range c.Body {
		parts[i] = s.String()
	}
	return ":- " + strings.Join(parts, ", ") + "."
}

// CostDecl declares the cost domain of a cost predicate's final argument:
// ".cost p/3 : minreal."
type CostDecl struct {
	Pred    PredKey
	Lattice string
}

// DefaultDecl declares a default-value cost predicate (§2.3.2):
// ".default t/2 = 0." The value must parse to the lattice bottom.
type DefaultDecl struct {
	Pred  PredKey
	Value val.T
}

// Program is a parsed program: rules (including facts), declarations and
// integrity constraints.
type Program struct {
	Rules       []*Rule
	Constraints []*Constraint
	CostDecls   []CostDecl
	DefaultDecl []DefaultDecl
}

// Preds returns the set of predicate keys appearing anywhere in the
// program, sorted for determinism.
func (p *Program) Preds() []PredKey {
	set := map[PredKey]bool{}
	add := func(a *Atom) { set[a.Key()] = true }
	walkAtoms(p, add)
	out := make([]PredKey, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HeadPreds returns the predicates defined by some rule head (the CDB of
// the whole program).
func (p *Program) HeadPreds() map[PredKey]bool {
	out := map[PredKey]bool{}
	for _, r := range p.Rules {
		out[r.Head.Key()] = true
	}
	return out
}

// walkAtoms applies f to every atom of the program.
func walkAtoms(p *Program, f func(*Atom)) {
	visitBody := func(body []Subgoal) {
		for _, s := range body {
			switch s := s.(type) {
			case *Lit:
				f(&s.Atom)
			case *Agg:
				for i := range s.Conj {
					f(&s.Conj[i])
				}
			}
		}
	}
	for _, r := range p.Rules {
		f(&r.Head)
		visitBody(r.Body)
	}
	for _, c := range p.Constraints {
		visitBody(c.Body)
	}
}

func (p *Program) String() string {
	var b strings.Builder
	for _, d := range p.CostDecls {
		fmt.Fprintf(&b, ".cost %s : %s.\n", d.Pred, d.Lattice)
	}
	for _, d := range p.DefaultDecl {
		fmt.Fprintf(&b, ".default %s = %s.\n", d.Pred, d.Value)
	}
	for _, c := range p.Constraints {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
