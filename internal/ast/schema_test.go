package ast

import (
	"strings"
	"testing"

	"repro/internal/val"
)

// buildProgram assembles a small shortest-path program directly from AST
// constructors (the parser has its own tests; these exercise ast alone).
func buildShortestPath() *Program {
	// path(X, direct, Y, C) :- arc(X, Y, C).
	r1 := &Rule{
		Head: Atom{Pred: "path", Args: []Term{Var("X"), Sym("direct"), Var("Y"), Var("C")}},
		Body: []Subgoal{&Lit{Atom: Atom{Pred: "arc", Args: []Term{Var("X"), Var("Y"), Var("C")}}}},
	}
	// path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
	r2 := &Rule{
		Head: Atom{Pred: "path", Args: []Term{Var("X"), Var("Z"), Var("Y"), Var("C")}},
		Body: []Subgoal{
			&Lit{Atom: Atom{Pred: "s", Args: []Term{Var("X"), Var("Z"), Var("C1")}}},
			&Lit{Atom: Atom{Pred: "arc", Args: []Term{Var("Z"), Var("Y"), Var("C2")}}},
			&Builtin{Op: OpEq, L: VarExpr{V: "C"}, R: &BinExpr{Op: OpAdd, L: VarExpr{V: "C1"}, R: VarExpr{V: "C2"}}},
		},
	}
	// s(X, Y, C) :- C ?= min D : path(X, Z, Y, D).
	r3 := &Rule{
		Head: Atom{Pred: "s", Args: []Term{Var("X"), Var("Y"), Var("C")}},
		Body: []Subgoal{&Agg{
			Result: "C", Restricted: true, Func: "min", MultisetVar: "D",
			Conj: []Atom{{Pred: "path", Args: []Term{Var("X"), Var("Z"), Var("Y"), Var("D")}}},
		}},
	}
	return &Program{
		Rules: []*Rule{r1, r2, r3},
		CostDecls: []CostDecl{
			{Pred: "arc/3", Lattice: "minreal"},
			{Pred: "path/4", Lattice: "minreal"},
			{Pred: "s/3", Lattice: "minreal"},
		},
		Constraints: []*Constraint{{Body: []Subgoal{
			&Lit{Atom: Atom{Pred: "arc", Args: []Term{Sym("direct"), Var("Z"), Var("C")}}},
		}}},
	}
}

func TestBuildSchemas(t *testing.T) {
	p := buildShortestPath()
	s, err := BuildSchemas(p)
	if err != nil {
		t.Fatal(err)
	}
	pi := s.Info("path/4")
	if pi == nil || !pi.HasCost || pi.L.Name() != "minreal" {
		t.Fatalf("path schema = %+v", pi)
	}
	if pi.NonCost() != 3 || pi.CostIndex() != 3 {
		t.Fatalf("path non-cost arity = %d, cost index = %d", pi.NonCost(), pi.CostIndex())
	}
	if err := ValidateProgram(p, s); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestSchemaErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Program)
		want string
	}{
		{"unknown lattice", func(p *Program) { p.CostDecls[0].Lattice = "zzz" }, "unknown lattice"},
		{"duplicate cost", func(p *Program) { p.CostDecls = append(p.CostDecls, CostDecl{Pred: "s/3", Lattice: "minreal"}) }, "duplicate"},
		{"default without cost", func(p *Program) {
			p.DefaultDecl = append(p.DefaultDecl, DefaultDecl{Pred: "nope/2", Value: val.Number(0)})
		}, "requires a prior"},
		{"default not bottom", func(p *Program) {
			// minreal's bottom is +∞, so 0 must be rejected (§2.3.2).
			p.DefaultDecl = append(p.DefaultDecl, DefaultDecl{Pred: "s/3", Value: val.Number(0)})
		}, "not the lattice bottom"},
	}
	for _, c := range cases {
		p := buildShortestPath()
		c.mut(p)
		_, err := BuildSchemas(p)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestRolesOf(t *testing.T) {
	p := buildShortestPath()
	roles := RolesOf(p.Rules[2], 0)
	if len(roles.Grouping) != 2 || roles.Grouping[0] != "X" || roles.Grouping[1] != "Y" {
		t.Fatalf("grouping = %v, want [X Y]", roles.Grouping)
	}
	if len(roles.Local) != 1 || roles.Local[0] != "Z" {
		t.Fatalf("local = %v, want [Z]", roles.Local)
	}
}

func TestValidateAggErrors(t *testing.T) {
	mk := func(g *Agg) *Program {
		p := buildShortestPath()
		p.Rules[2].Body = []Subgoal{g}
		return p
	}
	cases := []struct {
		name string
		g    *Agg
		want string
	}{
		{"unknown func", &Agg{Result: "C", Func: "median", MultisetVar: "D",
			Conj: []Atom{{Pred: "path", Args: []Term{Var("X"), Var("Z"), Var("Y"), Var("D")}}}}, "unknown aggregate"},
		{"multiset var in non-cost position", &Agg{Result: "C", Func: "min", MultisetVar: "D",
			Conj: []Atom{{Pred: "path", Args: []Term{Var("D"), Var("Z"), Var("Y"), Var("D")}}}}, "non-cost position"},
		{"result inside aggregation", &Agg{Result: "C", Func: "min", MultisetVar: "D",
			Conj: []Atom{{Pred: "path", Args: []Term{Var("X"), Var("C"), Var("Y"), Var("D")}}}}, "occurs inside"},
		{"multiset var misses cost args", &Agg{Result: "C", Func: "min", MultisetVar: "D",
			Conj: []Atom{{Pred: "path", Args: []Term{Var("X"), Var("Z"), Var("Y"), Var("E")}}}}, "does not occur in any cost argument"},
		{"wrong domain lattice", &Agg{Result: "C", Func: "sum", MultisetVar: "D",
			Conj: []Atom{{Pred: "path", Args: []Term{Var("X"), Var("Z"), Var("Y"), Var("D")}}}}, "differs from domain"},
		{"result equals multiset var", &Agg{Result: "D", Func: "min", MultisetVar: "D",
			Conj: []Atom{{Pred: "path", Args: []Term{Var("X"), Var("Z"), Var("Y"), Var("D")}}}}, "equals multiset"},
	}
	for _, c := range cases {
		p := mk(c.g)
		s, err := BuildSchemas(p)
		if err != nil {
			t.Fatalf("%s: schema err %v", c.name, err)
		}
		err = ValidateProgram(p, s)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestMultisetVarEscapes(t *testing.T) {
	p := buildShortestPath()
	r := p.Rules[2]
	// Leak D into another subgoal.
	r.Body = append(r.Body, &Lit{Atom: Atom{Pred: "arc", Args: []Term{Var("X"), Var("Y"), Var("D")}}})
	s, err := BuildSchemas(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProgram(p, s); err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("err = %v, want escape error", err)
	}
}

func TestFactValue(t *testing.T) {
	p := buildShortestPath()
	s, _ := BuildSchemas(p)
	a := Atom{Pred: "arc", Args: []Term{Sym("a"), Sym("b"), Num(2)}}
	args, cost, hasCost, err := FactValue(&a, s.Info("arc/3"))
	if err != nil || !hasCost {
		t.Fatal(err)
	}
	if len(args) != 2 || args[0].S != "a" || cost.N != 2 {
		t.Fatalf("args = %v, cost = %v", args, cost)
	}
	bad := Atom{Pred: "arc", Args: []Term{Sym("a"), Var("Y"), Num(2)}}
	if _, _, _, err := FactValue(&bad, s.Info("arc/3")); err == nil {
		t.Fatal("non-ground fact must error")
	}
}

func TestProgramAccessors(t *testing.T) {
	p := buildShortestPath()
	preds := p.Preds()
	if len(preds) != 3 {
		t.Fatalf("preds = %v", preds)
	}
	heads := p.HeadPreds()
	if !heads["path/4"] || !heads["s/3"] || heads["arc/3"] {
		t.Fatalf("heads = %v", heads)
	}
	vs := p.Rules[1].AllVars()
	if len(vs) != 6 {
		t.Fatalf("rule-2 vars = %v", vs)
	}
}

func TestCompareAndEval(t *testing.T) {
	ok, err := Compare(OpLt, val.Number(1), val.Number(2))
	if err != nil || !ok {
		t.Fatal("1 < 2")
	}
	if _, err := Compare(OpLt, val.Symbol("a"), val.Number(2)); err == nil {
		t.Fatal("ordered comparison of symbol must error")
	}
	ok, err = Compare(OpNe, val.Symbol("a"), val.Symbol("b"))
	if err != nil || !ok {
		t.Fatal("a != b")
	}
	if _, err := EvalExpr(&BinExpr{Op: OpDiv, L: NumExpr{N: 1}, R: NumExpr{N: 0}}, nil); err == nil {
		t.Fatal("division by zero must error")
	}
	if _, err := EvalExpr(VarExpr{V: "X"}, func(Var) (val.T, bool) { return val.T{}, false }); err == nil {
		t.Fatal("unbound variable must error")
	}
}
