// Package parser implements the concrete syntax of the rule language: a
// hand-written lexer and recursive-descent parser producing ast.Program.
//
// Syntax overview (see DESIGN.md §2):
//
//	.cost path/4 : minreal.           % cost declaration
//	.default t/2 = 0.                 % default-value cost predicate
//	.ic :- arc(direct, Z, C).         % integrity constraint
//	path(X, direct, Y, C) :- arc(X, Y, C).
//	s(X, Y, C) :- C ?= min D : path(X, Z, Y, D).
//	t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
//
// "?=" is the paper's restricted aggregation "=r" (false on the empty
// multiset); "=" is the total form. A '%' starts a comment to end of line.
// A statement-terminating '.' must be followed by whitespace or EOF;
// '.name' introduces a directive.
package parser

import (
	"fmt"
	"strconv"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokVar
	tokNumber
	tokString
	tokDirective // .cost .default .ic
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokLBrace
	tokRBrace
	tokComma
	tokDot
	tokColon
	tokImplies // :-
	tokEq
	tokQEq // ?=
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
	tokPlus
	tokMinus
	tokStar
	tokSlash
)

var tokNames = map[tokKind]string{
	tokEOF: "end of input", tokIdent: "identifier", tokVar: "variable",
	tokNumber: "number", tokString: "string", tokDirective: "directive",
	tokLParen: "'('", tokRParen: "')'", tokLBracket: "'['", tokRBracket: "']'",
	tokLBrace: "'{'", tokRBrace: "'}'", tokComma: "','", tokDot: "'.'",
	tokColon: "':'", tokImplies: "':-'", tokEq: "'='", tokQEq: "'?='",
	tokNe: "'!='", tokLt: "'<'", tokLe: "'<='", tokGt: "'>'", tokGe: "'>='",
	tokPlus: "'+'", tokMinus: "'-'", tokStar: "'*'", tokSlash: "'/'",
}

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.text != "" {
		return fmt.Sprintf("%s %q", tokNames[t.kind], t.text)
	}
	return tokNames[t.kind]
}

type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.line, e.col, e.msg)
}

// lex converts source text to tokens.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	emit := func(k tokKind, text string, c int) {
		toks = append(toks, token{kind: k, text: text, line: line, col: c})
	}
	for i < n {
		c := src[i]
		startCol := col
		switch {
		case c == '\n':
			line++
			col = 1
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
		case c == '%':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '.':
			// '.ident' is a directive; '.' followed by space/EOF ends a
			// statement.
			if i+1 < n && isLower(src[i+1]) {
				j := i + 1
				for j < n && isIdentChar(src[j]) {
					j++
				}
				emit(tokDirective, src[i+1:j], startCol)
				col += j - i
				i = j
			} else {
				emit(tokDot, "", startCol)
				i++
				col++
			}
		case c == '(':
			emit(tokLParen, "", startCol)
			i++
			col++
		case c == ')':
			emit(tokRParen, "", startCol)
			i++
			col++
		case c == '[':
			emit(tokLBracket, "", startCol)
			i++
			col++
		case c == ']':
			emit(tokRBracket, "", startCol)
			i++
			col++
		case c == '{':
			emit(tokLBrace, "", startCol)
			i++
			col++
		case c == '}':
			emit(tokRBrace, "", startCol)
			i++
			col++
		case c == ',':
			emit(tokComma, "", startCol)
			i++
			col++
		case c == ':':
			if i+1 < n && src[i+1] == '-' {
				emit(tokImplies, "", startCol)
				i += 2
				col += 2
			} else {
				emit(tokColon, "", startCol)
				i++
				col++
			}
		case c == '=':
			emit(tokEq, "", startCol)
			i++
			col++
		case c == '?':
			if i+1 < n && src[i+1] == '=' {
				emit(tokQEq, "", startCol)
				i += 2
				col += 2
			} else {
				return nil, &lexError{line, startCol, "stray '?'"}
			}
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				emit(tokNe, "", startCol)
				i += 2
				col += 2
			} else {
				return nil, &lexError{line, startCol, "stray '!'"}
			}
		case c == '<':
			if i+1 < n && src[i+1] == '=' {
				emit(tokLe, "", startCol)
				i += 2
				col += 2
			} else {
				emit(tokLt, "", startCol)
				i++
				col++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				emit(tokGe, "", startCol)
				i += 2
				col += 2
			} else {
				emit(tokGt, "", startCol)
				i++
				col++
			}
		case c == '+':
			emit(tokPlus, "", startCol)
			i++
			col++
		case c == '-':
			emit(tokMinus, "", startCol)
			i++
			col++
		case c == '*':
			emit(tokStar, "", startCol)
			i++
			col++
		case c == '/':
			emit(tokSlash, "", startCol)
			i++
			col++
		case c == '"':
			// Scan to the closing quote (backslash escapes any byte),
			// then decode Go-style escapes so that printing with
			// strconv.Quote round-trips exactly.
			j := i + 1
			for j < n && src[j] != '"' {
				if src[j] == '\n' {
					return nil, &lexError{line, startCol, "unterminated string"}
				}
				if src[j] == '\\' && j+1 < n {
					j++
				}
				j++
			}
			if j >= n {
				return nil, &lexError{line, startCol, "unterminated string"}
			}
			decoded, err := strconv.Unquote(src[i : j+1])
			if err != nil {
				return nil, &lexError{line, startCol, fmt.Sprintf("bad string literal: %v", err)}
			}
			emit(tokString, decoded, startCol)
			col += j + 1 - i
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < n && (src[j] >= '0' && src[j] <= '9') {
				j++
			}
			if j < n && src[j] == '.' && j+1 < n && src[j+1] >= '0' && src[j+1] <= '9' {
				j++
				for j < n && src[j] >= '0' && src[j] <= '9' {
					j++
				}
			}
			if j < n && (src[j] == 'e' || src[j] == 'E') {
				k := j + 1
				if k < n && (src[k] == '+' || src[k] == '-') {
					k++
				}
				if k < n && src[k] >= '0' && src[k] <= '9' {
					for k < n && src[k] >= '0' && src[k] <= '9' {
						k++
					}
					j = k
				}
			}
			emit(tokNumber, src[i:j], startCol)
			col += j - i
			i = j
		case isLower(c):
			j := i
			for j < n && isIdentChar(src[j]) {
				j++
			}
			emit(tokIdent, src[i:j], startCol)
			col += j - i
			i = j
		case c == '_' || c >= 'A' && c <= 'Z':
			j := i + 1 // always consume the leading byte
			for j < n && isIdentChar(src[j]) {
				j++
			}
			emit(tokVar, src[i:j], startCol)
			col += j - i
			i = j
		default:
			return nil, &lexError{line, startCol, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}

func isLower(c byte) bool { return c >= 'a' && c <= 'z' }

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
