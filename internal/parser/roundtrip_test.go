package parser

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomProgram emits a syntactically valid random program: declarations,
// facts, rules with atoms, builtins, negation and aggregate subgoals.
func randomProgram(r *rand.Rand) string {
	var b strings.Builder
	preds := []string{"p", "q", "rr", "sss"}
	vars := []string{"X", "Y", "Z", "W"}
	aggs := []string{"min", "max", "sum", "count"}
	term := func() string {
		switch r.Intn(4) {
		case 0:
			return vars[r.Intn(len(vars))]
		case 1:
			return fmt.Sprintf("c%d", r.Intn(5))
		case 2:
			return fmt.Sprintf("%d", r.Intn(100))
		default:
			return fmt.Sprintf("%d.%d", r.Intn(10), 1+r.Intn(9))
		}
	}
	atom := func() string {
		p := preds[r.Intn(len(preds))]
		n := 1 + r.Intn(3)
		args := make([]string, n)
		for i := range args {
			args[i] = term()
		}
		return p + "(" + strings.Join(args, ", ") + ")"
	}
	if r.Intn(2) == 0 {
		fmt.Fprintf(&b, ".cost agg%d/2 : sumreal.\n", r.Intn(3))
	}
	if r.Intn(3) == 0 {
		fmt.Fprintf(&b, ".ic :- %s.\n", atom())
	}
	stmts := 1 + r.Intn(6)
	for i := 0; i < stmts; i++ {
		switch r.Intn(5) {
		case 0: // fact
			fmt.Fprintf(&b, "%s.\n", atom())
		case 1: // plain rule
			fmt.Fprintf(&b, "%s :- %s, %s.\n", atom(), atom(), atom())
		case 2: // rule with negation
			fmt.Fprintf(&b, "%s :- %s, not %s.\n", atom(), atom(), atom())
		case 3: // rule with builtin
			v := vars[r.Intn(len(vars))]
			fmt.Fprintf(&b, "%s :- %s, %s = %s + %d.\n", atom(), atom(), v, vars[r.Intn(len(vars))], r.Intn(9))
		default: // rule with an aggregate
			f := aggs[r.Intn(len(aggs))]
			eq := "?="
			if r.Intn(2) == 0 {
				eq = "="
			}
			ms := " E"
			if f == "count" {
				ms = ""
			}
			fmt.Fprintf(&b, "%s :- C %s %s%s : %s.\n", atom(), eq, f, ms, atom())
		}
	}
	return b.String()
}

// TestRandomProgramRoundTrip: parse → print → parse → print is a fixed
// point for every random program (no information loss, no reordering).
func TestRandomProgramRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := randomProgram(r)
		p1, err := Parse(src)
		if err != nil {
			// The generator may emit aggregate-shaped text that our
			// validator would reject later, but it must always lex/parse.
			t.Errorf("seed %d: parse failed: %v\n%s", seed, err, src)
			return false
		}
		text1 := p1.String()
		p2, err := Parse(text1)
		if err != nil {
			t.Errorf("seed %d: reparse failed: %v\n%s", seed, err, text1)
			return false
		}
		if text2 := p2.String(); text2 != text1 {
			t.Errorf("seed %d: printing is not idempotent:\n%s\nvs\n%s", seed, text1, text2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
