package parser

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that accepted inputs
// survive a print/reparse round trip. The seed corpus mixes hand-picked
// grammar corners with every shipped example program. `go test`
// exercises the seeds; `go test -fuzz=FuzzParse ./internal/parser`
// explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"p(a).",
		"p(X) :- q(X).",
		".cost s/3 : minreal.\ns(X, Y, C) :- C ?= min D : path(X, Z, Y, D).",
		".default t/2 = 0.",
		".ic :- arc(direct, Z, C).",
		"t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].",
		"p(X, C) :- q(X, A, B), C = (A + B) * 2 - A / 2.",
		`str(n, "hello \"quoted\" world").`,
		"set(g, {a, 1, {b}}).",
		"w(x, -2.5). lim(a, inf). neg(a, -inf).",
		"coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.",
		"win(X) :- move(X, Y), not win(Y).",
		"% just a comment\n",
		"p(X) :- X != 3, X < 5, X <= 5, X > 1, X >= 1.",
		"p :- q.",
		"p() :- q().",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	dir := filepath.Join("..", "..", "examples", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("reading example programs: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".mdl" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatalf("reading %s: %v", e.Name(), err)
		}
		f.Add(string(src))
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := prog.String()
		prog2, err := Parse(text)
		if err != nil {
			t.Fatalf("printed form fails to reparse: %v\ninput: %q\nprinted: %q", err, src, text)
		}
		if text2 := prog2.String(); text2 != text {
			// Printing must be idempotent even if it normalizes the input.
			t.Fatalf("printing not idempotent:\n%q\nvs\n%q", text, text2)
		}
		_ = strings.TrimSpace(text)
	})
}
