package parser

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/val"
)

const shortestPathSrc = `
% Example 2.6 (shortest path)
.cost arc/3  : minreal.
.cost path/4 : minreal.
.cost s/3    : minreal.
.ic :- arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`

func TestParseShortestPath(t *testing.T) {
	prog, err := Parse(shortestPathSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(prog.Rules))
	}
	if len(prog.CostDecls) != 3 || len(prog.Constraints) != 1 {
		t.Fatalf("decls = %d, ics = %d", len(prog.CostDecls), len(prog.Constraints))
	}
	r3 := prog.Rules[2]
	g, ok := r3.Body[0].(*ast.Agg)
	if !ok {
		t.Fatalf("rule 3 body = %T, want aggregate", r3.Body[0])
	}
	if !g.Restricted || g.Func != "min" || g.Result != "C" || g.MultisetVar != "D" {
		t.Fatalf("aggregate parsed wrong: %+v", g)
	}
	if len(g.Conj) != 1 || g.Conj[0].Pred != "path" {
		t.Fatalf("aggregate conjunction wrong: %v", g.Conj)
	}
	// Round-trip: printing then reparsing yields the same structure.
	prog2, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, prog.String())
	}
	if prog2.String() != prog.String() {
		t.Fatalf("round-trip mismatch:\n%s\nvs\n%s", prog.String(), prog2.String())
	}
}

func TestParseCompanyControl(t *testing.T) {
	src := `
.cost s/3  : sumreal.
.cost cv/4 : sumreal.
.cost m/3  : sumreal.

cv(X, X, Y, N) :- s(X, Y, N).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
m(X, Y, N)     :- N ?= sum M : cv(X, Z, Y, M).
c(X, Y)        :- m(X, Y, N), N > 0.5.
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 4 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	last := prog.Rules[3]
	b, ok := last.Body[1].(*ast.Builtin)
	if !ok || b.Op != ast.OpGt {
		t.Fatalf("expected N > 0.5 builtin, got %v", last.Body[1])
	}
}

func TestParseCircuitConjAggregate(t *testing.T) {
	src := `
.cost t/2 : boolor.
.cost input/2 : boolor.
.default t/2 = 0.

t(W, C) :- input(W, C).
t(G, C) :- gate(G, or),  C = or D : [connect(G, W), t(W, D)].
t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Rules[1].Body[1].(*ast.Agg)
	if len(g.Conj) != 2 || g.Restricted {
		t.Fatalf("conjunction aggregate parsed wrong: %+v", g)
	}
	if len(prog.DefaultDecl) != 1 || prog.DefaultDecl[0].Pred != "t/2" {
		t.Fatalf("default decl wrong: %+v", prog.DefaultDecl)
	}
}

func TestParseCountWithoutMultisetVar(t *testing.T) {
	r, err := ParseRule(`coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.`)
	if err != nil {
		t.Fatal(err)
	}
	g := r.Body[1].(*ast.Agg)
	if g.Func != "count" || g.MultisetVar != "" || g.Restricted {
		t.Fatalf("count aggregate parsed wrong: %+v", g)
	}
}

func TestParseFactsAndConstants(t *testing.T) {
	prog, err := Parse(`
arc(a, b, 1).
arc(b, b, 0).
w(x, -2.5).
lim(a, inf).
neg(a, -inf).
str(n, "hello world").
set(g, {a, b, c}).
empty(h, {}).
p.
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 9 {
		t.Fatalf("facts = %d", len(prog.Rules))
	}
	get := func(i, j int) val.T { return prog.Rules[i].Head.Args[j].(ast.Const).V }
	if get(2, 1).N != -2.5 {
		t.Errorf("negative float: %v", get(2, 1))
	}
	if !math.IsInf(get(3, 1).N, 1) {
		t.Errorf("inf: %v", get(3, 1))
	}
	if !math.IsInf(get(4, 1).N, -1) {
		t.Errorf("-inf: %v", get(4, 1))
	}
	if get(5, 1).S != "hello world" {
		t.Errorf("string: %v", get(5, 1))
	}
	if get(6, 1).Set.Len() != 3 {
		t.Errorf("set: %v", get(6, 1))
	}
	if get(7, 1).Set.Len() != 0 {
		t.Errorf("empty set: %v", get(7, 1))
	}
	if prog.Rules[8].Head.Pred != "p" || len(prog.Rules[8].Head.Args) != 0 {
		t.Errorf("propositional fact: %v", prog.Rules[8].Head)
	}
}

func TestParseNegation(t *testing.T) {
	r, err := ParseRule(`win(X) :- move(X, Y), not win(Y).`)
	if err != nil {
		t.Fatal(err)
	}
	l := r.Body[1].(*ast.Lit)
	if !l.Neg || l.Atom.Pred != "win" {
		t.Fatalf("negation parsed wrong: %v", l)
	}
}

func TestParseExpressions(t *testing.T) {
	r, err := ParseRule(`p(X, C) :- q(X, A, B), C = (A + B) * 2 - A / 2.`)
	if err != nil {
		t.Fatal(err)
	}
	b := r.Body[1].(*ast.Builtin)
	got, err := ast.EvalExpr(b.R, func(v ast.Var) (val.T, bool) {
		switch v {
		case "A":
			return val.Number(4), true
		case "B":
			return val.Number(6), true
		}
		return val.T{}, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.N != (4+6)*2-4.0/2 {
		t.Fatalf("expression = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`p(X :- q(X).`,
		`p(X) :- q(X)`,       // missing dot
		`p(X) :- .`,          // empty body
		`.cost p : minreal.`, // missing arity
		`.bogus p/1.`,        // unknown directive
		`p("unterminated).`,  // bad string
		`p(X) :- X ! q(X).`,  // stray !
		`p(X) :- C = min D.`, // aggregate shape without ':' and not a builtin
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestErrorsCarryPosition(t *testing.T) {
	_, err := Parse("p(a).\nq(X :- r(X).\n")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error lacks line info: %v", err)
	}
}

func TestBareIdentBuiltin(t *testing.T) {
	// Definition 2.5 mentions builtins of the form V = a with a constant.
	r, err := ParseRule(`p(V) :- q(V, W), W = a.`)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := r.Body[1].(*ast.Builtin)
	if !ok || b.Op != ast.OpEq {
		t.Fatalf("W = a parsed as %T", r.Body[1])
	}
	if c, ok := b.R.(ast.ConstExpr); !ok || c.V.S != "a" {
		t.Fatalf("rhs = %v", b.R)
	}
}

func TestAggregateRoundTrip(t *testing.T) {
	srcs := []string{
		`t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].`,
		`s(X, Y, C) :- C ?= min D : path(X, Z, Y, D).`,
		`n(C) :- C = count : q(X).`,
	}
	for _, src := range srcs {
		r, err := ParseRule(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		r2, err := ParseRule(r.String())
		if err != nil {
			t.Fatalf("round-trip %q: %v", r.String(), err)
		}
		if r2.String() != r.String() {
			t.Fatalf("round-trip mismatch: %q vs %q", r.String(), r2.String())
		}
	}
}
