package parser

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/ast"
	"repro/internal/lattice"
	"repro/internal/val"
)

// Parse parses a complete program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, fmt.Errorf("parser: %v", err)
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for !p.at(tokEOF) {
		if err := p.statement(prog); err != nil {
			return nil, fmt.Errorf("parser: %v", err)
		}
	}
	return prog, nil
}

// ParseRule parses a single rule or fact (without the trailing newline
// requirements of a full program).
func ParseRule(src string) (*ast.Rule, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Rules) != 1 || len(prog.Constraints) != 0 ||
		len(prog.CostDecls) != 0 || len(prog.DefaultDecl) != 0 {
		return nil, fmt.Errorf("parser: expected exactly one rule")
	}
	return prog.Rules[0], nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) accept(k tokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind) (token, error) {
	if !p.at(k) {
		return token{}, p.errf("expected %s, found %s", tokNames[k], p.cur())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) statement(prog *ast.Program) error {
	switch {
	case p.at(tokDirective):
		return p.directive(prog)
	case p.at(tokImplies):
		p.next()
		body, err := p.body()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokDot); err != nil {
			return err
		}
		prog.Constraints = append(prog.Constraints, &ast.Constraint{Body: body})
		return nil
	default:
		head, err := p.atom()
		if err != nil {
			return err
		}
		r := &ast.Rule{Head: head}
		if p.accept(tokImplies) {
			body, err := p.body()
			if err != nil {
				return err
			}
			r.Body = body
		}
		if _, err := p.expect(tokDot); err != nil {
			return err
		}
		prog.Rules = append(prog.Rules, r)
		return nil
	}
}

func (p *parser) directive(prog *ast.Program) error {
	d := p.next()
	switch d.text {
	case "cost":
		pk, err := p.predSpec()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokColon); err != nil {
			return err
		}
		lat, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(tokDot); err != nil {
			return err
		}
		prog.CostDecls = append(prog.CostDecls, ast.CostDecl{Pred: pk, Lattice: lat.text})
		return nil
	case "default":
		pk, err := p.predSpec()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokEq); err != nil {
			return err
		}
		c, err := p.constant()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokDot); err != nil {
			return err
		}
		prog.DefaultDecl = append(prog.DefaultDecl, ast.DefaultDecl{Pred: pk, Value: c})
		return nil
	case "ic":
		if _, err := p.expect(tokImplies); err != nil {
			return err
		}
		body, err := p.body()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokDot); err != nil {
			return err
		}
		prog.Constraints = append(prog.Constraints, &ast.Constraint{Body: body})
		return nil
	}
	return p.errf("unknown directive .%s", d.text)
}

// predSpec parses "name/arity".
func (p *parser) predSpec() (ast.PredKey, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	if _, err := p.expect(tokSlash); err != nil {
		return "", err
	}
	ar, err := p.expect(tokNumber)
	if err != nil {
		return "", err
	}
	n, err := strconv.Atoi(ar.text)
	if err != nil || n < 0 {
		return "", p.errf("bad arity %q", ar.text)
	}
	return ast.MakePredKey(name.text, n), nil
}

func (p *parser) body() ([]ast.Subgoal, error) {
	var out []ast.Subgoal
	for {
		s, err := p.subgoal()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.accept(tokComma) {
			return out, nil
		}
	}
}

func (p *parser) subgoal() (ast.Subgoal, error) {
	// Negative literal.
	if p.at(tokIdent) && p.cur().text == "not" && p.toks[p.pos+1].kind == tokIdent {
		p.next()
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		return &ast.Lit{Atom: a, Neg: true}, nil
	}
	// Aggregate subgoal: VAR (= | ?=) aggname [VAR] ':' ...
	if p.at(tokVar) {
		if g, ok, err := p.tryAggregate(); err != nil {
			return nil, err
		} else if ok {
			return g, nil
		}
	}
	// Positive atom: IDENT '(' or bare IDENT not followed by an operator.
	if p.at(tokIdent) {
		nk := p.toks[p.pos+1].kind
		if nk == tokLParen {
			a, err := p.atom()
			if err != nil {
				return nil, err
			}
			return &ast.Lit{Atom: a}, nil
		}
		if !isExprFollow(nk) {
			a, err := p.atom()
			if err != nil {
				return nil, err
			}
			return &ast.Lit{Atom: a}, nil
		}
	}
	// Otherwise a built-in comparison.
	return p.builtin()
}

// isExprFollow reports whether a token can continue an expression after an
// initial identifier (treating the identifier as a constant operand).
func isExprFollow(k tokKind) bool {
	switch k {
	case tokEq, tokNe, tokLt, tokLe, tokGt, tokGe, tokPlus, tokMinus, tokStar, tokSlash:
		return true
	}
	return false
}

// tryAggregate attempts to parse an aggregate subgoal at the current
// position, backtracking if the shape does not match.
func (p *parser) tryAggregate() (*ast.Agg, bool, error) {
	save := p.pos
	res := ast.Var(p.next().text)
	var restricted bool
	switch {
	case p.accept(tokQEq):
		restricted = true
	case p.accept(tokEq):
	default:
		p.pos = save
		return nil, false, nil
	}
	if !p.at(tokIdent) || !lattice.IsAggregateName(p.cur().text) {
		p.pos = save
		return nil, false, nil
	}
	fn := p.next().text
	var ms ast.Var
	if p.at(tokVar) {
		ms = ast.Var(p.next().text)
	}
	if !p.accept(tokColon) {
		// Not an aggregate after all (e.g. "C = min" where min is a
		// constant? — no: reject with a clear error, since aggregate
		// names are reserved in this position).
		p.pos = save
		return nil, false, nil
	}
	var conj []ast.Atom
	if p.accept(tokLBracket) {
		for {
			a, err := p.atom()
			if err != nil {
				return nil, false, err
			}
			conj = append(conj, a)
			if !p.accept(tokComma) {
				break
			}
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, false, err
		}
	} else {
		a, err := p.atom()
		if err != nil {
			return nil, false, err
		}
		conj = append(conj, a)
	}
	return &ast.Agg{Result: res, Restricted: restricted, Func: fn, MultisetVar: ms, Conj: conj}, true, nil
}

func (p *parser) atom() (ast.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return ast.Atom{}, err
	}
	a := ast.Atom{Pred: name.text}
	if !p.accept(tokLParen) {
		return a, nil // propositional atom
	}
	if p.accept(tokRParen) {
		return a, nil
	}
	for {
		t, err := p.term()
		if err != nil {
			return ast.Atom{}, err
		}
		a.Args = append(a.Args, t)
		if !p.accept(tokComma) {
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return ast.Atom{}, err
	}
	return a, nil
}

func (p *parser) term() (ast.Term, error) {
	switch {
	case p.at(tokVar):
		return ast.Var(p.next().text), nil
	default:
		c, err := p.constant()
		if err != nil {
			return nil, err
		}
		return ast.Const{V: c}, nil
	}
}

// constant parses a ground constant: symbol, number (with optional sign,
// "inf" for ∞), string, or set literal.
func (p *parser) constant() (val.T, error) {
	switch {
	case p.at(tokIdent):
		t := p.next()
		if t.text == "inf" {
			return val.Number(math.Inf(1)), nil
		}
		return val.Symbol(t.text), nil
	case p.at(tokNumber):
		return val.ParseNumber(p.next().text)
	case p.at(tokMinus):
		p.next()
		if p.at(tokIdent) && p.cur().text == "inf" {
			p.next()
			return val.Number(math.Inf(-1)), nil
		}
		t, err := p.expect(tokNumber)
		if err != nil {
			return val.T{}, err
		}
		v, err := val.ParseNumber(t.text)
		if err != nil {
			return val.T{}, err
		}
		return val.Number(-v.N), nil
	case p.at(tokString):
		return val.String(p.next().text), nil
	case p.at(tokLBrace):
		p.next()
		var elems []val.T
		if !p.at(tokRBrace) {
			for {
				c, err := p.constant()
				if err != nil {
					return val.T{}, err
				}
				elems = append(elems, c)
				if !p.accept(tokComma) {
					break
				}
			}
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return val.T{}, err
		}
		return val.SetOf(elems...), nil
	}
	return val.T{}, p.errf("expected a constant, found %s", p.cur())
}

func (p *parser) builtin() (*ast.Builtin, error) {
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	var op ast.CmpOp
	switch {
	case p.accept(tokEq):
		op = ast.OpEq
	case p.accept(tokNe):
		op = ast.OpNe
	case p.accept(tokLt):
		op = ast.OpLt
	case p.accept(tokLe):
		op = ast.OpLe
	case p.accept(tokGt):
		op = ast.OpGt
	case p.accept(tokGe):
		op = ast.OpGe
	default:
		return nil, p.errf("expected a comparison operator, found %s", p.cur())
	}
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &ast.Builtin{Op: op, L: l, R: r}, nil
}

// expr parses additive expressions with the usual precedence.
func (p *parser) expr() (ast.Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.ArithOp
		switch {
		case p.accept(tokPlus):
			op = ast.OpAdd
		case p.accept(tokMinus):
			op = ast.OpSub
		default:
			return l, nil
		}
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) mulExpr() (ast.Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		var op ast.ArithOp
		switch {
		case p.accept(tokStar):
			op = ast.OpMul
		case p.accept(tokSlash):
			op = ast.OpDiv
		default:
			return l, nil
		}
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &ast.BinExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) unaryExpr() (ast.Expr, error) {
	switch {
	case p.accept(tokMinus):
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if n, ok := e.(ast.NumExpr); ok {
			return ast.NumExpr{N: -n.N}, nil
		}
		return &ast.BinExpr{Op: ast.OpSub, L: ast.NumExpr{N: 0}, R: e}, nil
	case p.at(tokLParen):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case p.at(tokVar):
		return ast.VarExpr{V: ast.Var(p.next().text)}, nil
	case p.at(tokNumber):
		t := p.next()
		v, err := val.ParseNumber(t.text)
		if err != nil {
			return nil, err
		}
		return ast.NumExpr{N: v.N}, nil
	case p.at(tokIdent):
		t := p.next()
		if t.text == "inf" {
			return ast.NumExpr{N: math.Inf(1)}, nil
		}
		return ast.ConstExpr{V: val.Symbol(t.text)}, nil
	case p.at(tokString):
		return ast.ConstExpr{V: val.String(p.next().text)}, nil
	}
	return nil, p.errf("expected an expression, found %s", p.cur())
}
