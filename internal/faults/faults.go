// Package faults is a test-oriented fault-injection registry: named
// failure points compiled into production code paths (checkpoint sinks,
// fixpoint round boundaries, snapshot restore) that do nothing until a
// test arms them. Crash-recovery tests use it to kill an evaluation
// mid-fixpoint deterministically, and to simulate sink write errors and
// torn checkpoint files, without platform-specific process killing.
//
// The zero state is fully disarmed and the hot-path cost of a Check call
// is a single atomic load, so the hooks are safe to leave in release
// builds.
package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Well-known failure points. Constants live here (not next to the code
// they interrupt) so tests can arm a point without importing the
// package under test's internals.
const (
	// CoreRound fires at fixpoint round boundaries in the core engine
	// (after the round's insertions, before its checkpoint). Arm with
	// Panic to simulate a crash at round N.
	CoreRound = "core.round"
	// CoreParallelWorker fires at the start of every component
	// evaluated by a parallel-scheduler worker. Arm with Panic to
	// exercise the worker-crash containment path (the panic must become
	// a structured ErrInternal and no partial model may be published).
	CoreParallelWorker = "core.parallel.worker"
	// SnapshotSinkWrite fires at the start of every checkpoint sink
	// write. Arm with an error to simulate a full disk or dead volume.
	SnapshotSinkWrite = "snapshot.sink.write"
	// SnapshotRestoreRead fires while reading a checkpoint file back;
	// an armed fault mangles the bytes (truncation by default),
	// simulating a torn or corrupted file.
	SnapshotRestoreRead = "snapshot.restore.read"
	// ServerCommitStall fires at the start of every group-commit drain
	// in the serve tier, before queued batches are merged. Arm with
	// Delay to stall the writer so concurrent batches pile up in the
	// queue (the group-commit and queue-full paths), or with Err to
	// fail the whole drain.
	ServerCommitStall = "server.commit.stall"
	// ServerCommitSolve fires after batches are merged, immediately
	// before the incremental solve. Arm with Delay for a slow solve
	// (deadline and backpressure paths) or Err for a failing one.
	ServerCommitSolve = "server.commit.solve"
	// ServerCommitPublish fires after a commit's solve has converged,
	// immediately before the atomic model swap. Arm with Err to
	// simulate a failed swap: the published model must stay untouched
	// (no partial generation) and every waiting batch must still get a
	// definite outcome.
	ServerCommitPublish = "server.commit.publish"
	// ServerReadEncode fires on the serve tier's read path before the
	// response body is encoded. Arm with Delay to simulate a slow
	// encode so per-request deadlines on read handlers can be
	// exercised deterministically.
	ServerReadEncode = "server.read.encode"
	// SnapshotDirSync fires before the parent-directory fsync that
	// makes a checkpoint's atomic rename durable. Arm with Err to
	// simulate a directory that cannot be synced.
	SnapshotDirSync = "snapshot.dir.sync"
	// WALAppendWrite fires at the start of every WAL record append. Arm
	// with Err to simulate a failed log write: the batch must answer
	// 500, the published model must stay untouched, and readiness must
	// trip.
	WALAppendWrite = "wal.append.write"
	// WALFsync fires at the start of every WAL fsync (the group-commit
	// sync before acks). Arm with Delay for a stalling disk or Err for
	// a dying one.
	WALFsync = "wal.fsync"
	// WALRecoverRead fires while a WAL segment is read back during
	// recovery; an armed fault mangles the bytes (truncation by
	// default), simulating a torn tail or mid-log bit rot.
	WALRecoverRead = "wal.recover.read"
	// ServerWALReplay fires once per batch replayed from the WAL during
	// warm start. Arm with Delay to hold a server in the "replaying"
	// readiness state so /readyz progress reporting can be observed.
	ServerWALReplay = "server.wal.replay"
)

// ErrInjected is the default error returned by armed error-mode faults.
var ErrInjected = errors.New("faults: injected failure")

// Fault describes what an armed point does when hit.
type Fault struct {
	// Point names the failure point (one of the constants above, or any
	// string agreed between the code under test and the test).
	Point string
	// After fires the fault on the After-th Check of the point
	// (1-based); 0 means the first.
	After int
	// Panic makes the fault panic instead of returning an error,
	// simulating a crash that unwinds the stack.
	Panic bool
	// Sticky keeps the fault firing on every hit at or past After;
	// otherwise it fires exactly once.
	Sticky bool
	// Err is the error returned when the fault fires (ErrInjected when
	// nil). Ignored in Panic mode.
	Err error
	// Delay, when positive, makes the fault stall for that long before
	// acting. A pure stall (Delay set, Err nil, Panic false) returns
	// nil after sleeping — it models slowness, not failure — while
	// Delay combined with Err or Panic delays the failure.
	Delay time.Duration
	// Mangle transforms bytes passed through Apply when the fault
	// fires; nil truncates to half length.
	Mangle func([]byte) []byte
}

type state struct {
	Fault
	hits int
}

var (
	mu     sync.Mutex
	points map[string]*state
	armed  atomic.Int32 // fast-path gate: number of armed points
)

// Arm installs f at its Point, replacing any previous fault there.
func Arm(f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = map[string]*state{}
	}
	if f.After <= 0 {
		f.After = 1
	}
	if _, exists := points[f.Point]; !exists {
		armed.Add(1)
	}
	points[f.Point] = &state{Fault: f}
}

// Disarm removes the fault at point, if any.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[point]; ok {
		delete(points, point)
		armed.Add(-1)
	}
}

// Reset disarms every point. Tests should defer it after arming.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(int32(-len(points)))
	points = nil
}

// hit counts a hit at point and reports the fault if it fired.
func hit(point string) (Fault, bool) {
	mu.Lock()
	defer mu.Unlock()
	s, ok := points[point]
	if !ok {
		return Fault{}, false
	}
	s.hits++
	if s.hits < s.After {
		return Fault{}, false
	}
	if s.hits > s.After && !s.Sticky {
		return Fault{}, false
	}
	return s.Fault, true
}

// Check counts a hit at point: it returns the armed error (or panics,
// in Panic mode) when the fault fires, and nil otherwise. Disarmed
// points cost one atomic load. A fault with only Delay set stalls and
// then returns nil.
func Check(point string) error {
	return CheckCtx(context.Background(), point)
}

// CheckCtx is Check with an interruptible stall: a Delay-mode fault
// sleeps until the delay elapses or ctx is done, whichever comes
// first, and reports ctx.Err() when cut short. Deadlined code paths
// (drain timeouts, per-request deadlines) should prefer it so an
// injected stall cannot outlive the caller's budget.
func CheckCtx(ctx context.Context, point string) error {
	if armed.Load() == 0 {
		return nil
	}
	f, fired := hit(point)
	if !fired {
		return nil
	}
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if f.Panic {
		panic(fmt.Sprintf("faults: injected panic at %s (hit %d)", f.Point, f.After))
	}
	if f.Err != nil {
		return f.Err
	}
	if f.Delay > 0 {
		return nil
	}
	return fmt.Errorf("%w at %s", ErrInjected, point)
}

// Apply passes data through point: when the armed fault fires, the
// bytes are transformed by its Mangle function (truncated to half
// length when nil), simulating a torn write or bit rot on restore.
func Apply(point string, data []byte) []byte {
	if armed.Load() == 0 {
		return data
	}
	f, fired := hit(point)
	if !fired {
		return data
	}
	if f.Mangle != nil {
		return f.Mangle(data)
	}
	return data[:len(data)/2]
}

// Writer wraps w so that writes fail with err (ErrInjected when nil)
// once n bytes have been written through it — a deterministic short
// write for exercising partial-persistence paths.
func Writer(w io.Writer, n int, err error) io.Writer {
	if err == nil {
		err = ErrInjected
	}
	return &shortWriter{w: w, left: n, err: err}
}

type shortWriter struct {
	w    io.Writer
	left int
	err  error
}

func (s *shortWriter) Write(p []byte) (int, error) {
	if s.left <= 0 {
		return 0, s.err
	}
	if len(p) <= s.left {
		n, err := s.w.Write(p)
		s.left -= n
		return n, err
	}
	n, err := s.w.Write(p[:s.left])
	s.left -= n
	if err != nil {
		return n, err
	}
	return n, s.err
}
