package faults

import (
	"bytes"
	"errors"
	"testing"
)

func TestDisarmedCheckIsNil(t *testing.T) {
	Reset()
	if err := Check("nope"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
}

func TestErrorFaultFiresOnce(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm(Fault{Point: "p", After: 2})
	if err := Check("p"); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	if err := Check("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 2 = %v, want ErrInjected", err)
	}
	if err := Check("p"); err != nil {
		t.Fatalf("non-sticky fault fired again: %v", err)
	}
}

func TestStickyFault(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	custom := errors.New("disk full")
	Arm(Fault{Point: "p", Sticky: true, Err: custom})
	for i := 0; i < 3; i++ {
		if err := Check("p"); !errors.Is(err, custom) {
			t.Fatalf("hit %d = %v, want custom error", i+1, err)
		}
	}
}

func TestPanicFault(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm(Fault{Point: "p", Panic: true})
	defer func() {
		if recover() == nil {
			t.Fatal("panic fault did not panic")
		}
	}()
	Check("p")
}

func TestApplyMangles(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	data := []byte("0123456789")
	if got := Apply("p", data); len(got) != len(data) {
		t.Fatal("disarmed Apply must pass bytes through")
	}
	Arm(Fault{Point: "p"})
	if got := Apply("p", data); len(got) != 5 {
		t.Fatalf("default mangle len = %d, want 5", len(got))
	}
	Arm(Fault{Point: "q", Mangle: func(b []byte) []byte {
		b = append([]byte{}, b...)
		b[0] ^= 0xff
		return b
	}})
	if got := Apply("q", data); got[0] == '0' {
		t.Fatal("custom mangle not applied")
	}
}

func TestShortWriter(t *testing.T) {
	var buf bytes.Buffer
	w := Writer(&buf, 4, nil)
	n, err := w.Write([]byte("abcdef"))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write = (%d, %v), want (4, ErrInjected)", n, err)
	}
	if buf.String() != "abcd" {
		t.Fatalf("wrote %q", buf.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatal("exhausted writer must keep failing")
	}
}

func TestDisarmAndReset(t *testing.T) {
	Reset()
	Arm(Fault{Point: "a", Sticky: true})
	Arm(Fault{Point: "b", Sticky: true})
	Disarm("a")
	if err := Check("a"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if err := Check("b"); err == nil {
		t.Fatal("armed point did not fire")
	}
	Reset()
	if err := Check("b"); err != nil {
		t.Fatalf("reset point fired: %v", err)
	}
}
