package faults

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

func TestDisarmedCheckIsNil(t *testing.T) {
	Reset()
	if err := Check("nope"); err != nil {
		t.Fatalf("disarmed point returned %v", err)
	}
}

func TestErrorFaultFiresOnce(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm(Fault{Point: "p", After: 2})
	if err := Check("p"); err != nil {
		t.Fatalf("hit 1 fired early: %v", err)
	}
	if err := Check("p"); !errors.Is(err, ErrInjected) {
		t.Fatalf("hit 2 = %v, want ErrInjected", err)
	}
	if err := Check("p"); err != nil {
		t.Fatalf("non-sticky fault fired again: %v", err)
	}
}

func TestStickyFault(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	custom := errors.New("disk full")
	Arm(Fault{Point: "p", Sticky: true, Err: custom})
	for i := 0; i < 3; i++ {
		if err := Check("p"); !errors.Is(err, custom) {
			t.Fatalf("hit %d = %v, want custom error", i+1, err)
		}
	}
}

func TestPanicFault(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm(Fault{Point: "p", Panic: true})
	defer func() {
		if recover() == nil {
			t.Fatal("panic fault did not panic")
		}
	}()
	Check("p")
}

func TestApplyMangles(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	data := []byte("0123456789")
	if got := Apply("p", data); len(got) != len(data) {
		t.Fatal("disarmed Apply must pass bytes through")
	}
	Arm(Fault{Point: "p"})
	if got := Apply("p", data); len(got) != 5 {
		t.Fatalf("default mangle len = %d, want 5", len(got))
	}
	Arm(Fault{Point: "q", Mangle: func(b []byte) []byte {
		b = append([]byte{}, b...)
		b[0] ^= 0xff
		return b
	}})
	if got := Apply("q", data); got[0] == '0' {
		t.Fatal("custom mangle not applied")
	}
}

func TestShortWriter(t *testing.T) {
	var buf bytes.Buffer
	w := Writer(&buf, 4, nil)
	n, err := w.Write([]byte("abcdef"))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write = (%d, %v), want (4, ErrInjected)", n, err)
	}
	if buf.String() != "abcd" {
		t.Fatalf("wrote %q", buf.String())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatal("exhausted writer must keep failing")
	}
}

func TestDelayStallIsNotAFailure(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm(Fault{Point: "p", Delay: 20 * time.Millisecond, Sticky: true})
	start := time.Now()
	if err := Check("p"); err != nil {
		t.Fatalf("pure stall returned %v, want nil", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("stall returned after %v, want >= 20ms", elapsed)
	}
}

func TestDelayWithErrDelaysTheFailure(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	custom := errors.New("slow disk died")
	Arm(Fault{Point: "p", Delay: 10 * time.Millisecond, Err: custom})
	start := time.Now()
	if err := Check("p"); !errors.Is(err, custom) {
		t.Fatalf("delayed failure = %v, want custom error", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("failure fired before the delay elapsed")
	}
}

func TestCheckCtxInterruptsStall(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm(Fault{Point: "p", Delay: time.Hour, Sticky: true})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := CheckCtx(ctx, "p")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("interrupted stall = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("stall was not interrupted by the context")
	}
}

func TestDisarmAndReset(t *testing.T) {
	Reset()
	Arm(Fault{Point: "a", Sticky: true})
	Arm(Fault{Point: "b", Sticky: true})
	Disarm("a")
	if err := Check("a"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if err := Check("b"); err == nil {
		t.Fatal("armed point did not fire")
	}
	Reset()
	if err := Check("b"); err != nil {
		t.Fatalf("reset point fired: %v", err)
	}
}
