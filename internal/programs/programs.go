// Package programs collects the paper's example programs (Ross & Sagiv,
// PODS 1992) in the concrete rule-language syntax, shared by tests,
// benchmarks, the experiment harness and the command-line tools.
package programs

// ShortestPath is Example 2.6 with its conflict-freedom integrity
// constraint (Example 2.5).
const ShortestPath = `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).

path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`

// CompanyControl is Example 2.7.
const CompanyControl = `
.cost s/3 : sumreal.
.cost cv/4 : sumreal.
.cost m/3 : sumreal.

cv(X, X, Y, N) :- s(X, Y, N).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
m(X, Y, N)     :- N ?= sum M : cv(X, Z, Y, M).
c(X, Y)        :- m(X, Y, N), N > 0.5.
`

// CompanyControlFused is the r-monotonic reformulation from §5.2 (rules 3
// and 4 combined), used in the stratification-ladder experiment.
const CompanyControlFused = `
.cost s/3 : sumreal.
.cost cv/4 : sumreal.

cv(X, X, Y, N) :- s(X, Y, N).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
c(X, Y)        :- N ?= sum M : cv(X, Z, Y, M), N > 0.5.
`

// Party is Example 4.3.
const Party = `
.cost requires/2 : countnat.

coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
kc(X, Y)  :- knows(X, Y), coming(Y).
`

// Circuit is Example 4.4 with the disjointness integrity constraints the
// example assumes.
const Circuit = `
.cost t/2 : boolor.
.cost input/2 : boolor.
.default t/2 = 0.
.ic :- gate(G, or), gate(G, and).
.ic :- input(W, C), gate(W, T).

t(W, C) :- input(W, C).
t(G, C) :- gate(G, or),  C = or D : [connect(G, W), t(W, D)].
t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
`

// Halfsum is Example 5.1, whose least fixpoint lies at ω.
const Halfsum = `
.cost p/2 : sumreal.

p(b, 1).
p(a, C) :- C ?= halfsum D : p(X, D).
`

// TwoMinimalModels is the §3 opening example with two incomparable
// minimal Herbrand models; it is not admissible.
const TwoMinimalModels = `
p(b).
q(b).
p(a) :- N ?= count : q(X), N = 1.
q(a) :- N ?= count : p(X), N = 1.
`

// Averages is Example 2.1's family of grouped averages and counts.
const Averages = `
.cost record/3 : sumreal.
.cost s_avg/2 : sumreal.
.cost c_avg/2 : sumreal.
.cost all_avg/1 : sumreal.
.cost class_count/2 : countnat.
.cost alt_class_count/2 : countnat.

s_avg(S, G)           :- G ?= avg G2 : record(S, C, G2).
c_avg(C, G)           :- G ?= avg G2 : record(S, C, G2).
all_avg(G)            :- G ?= avg G2 : c_avg(S, G2).
class_count(C, N)     :- N ?= count : record(S, C, G).
alt_class_count(C, N) :- courses(C), N = count : record(S, C, G).
`
