package wfs

import (
	"context"
	"fmt"

	"repro/internal/ast"
	"repro/internal/enginerr"
	"repro/internal/val"
)

// Options bounds the computation: the set-based treatment of cost
// arguments makes some inputs genuinely infinite (§5.3-5.4), so both the
// atom universe and the alternation depth are capped.
type Options struct {
	// MaxAtoms caps the size of any computed store (default 200000).
	MaxAtoms int
	// MaxIters caps both each inner lfp and the outer alternation
	// (default 10000).
	MaxIters int
}

func (o *Options) defaults() {
	if o.MaxAtoms == 0 {
		o.MaxAtoms = 200000
	}
	if o.MaxIters == 0 {
		o.MaxIters = 10000
	}
}

// Result is a partial (three-valued) model: True ⊆ Possible; atoms
// outside Possible are false; Possible \ True is undefined.
type Result struct {
	True     *Store
	Possible *Store
	// Iterations is the number of outer alternation rounds.
	Iterations int
}

// Truth is a three-valued status.
type Truth int

// The truth values.
const (
	False Truth = iota
	Undefined
	True
)

func (t Truth) String() string {
	switch t {
	case True:
		return "true"
	case Undefined:
		return "undefined"
	}
	return "false"
}

// Status classifies a ground atom in the partial model.
func (r *Result) Status(k ast.PredKey, args []val.T) Truth {
	if r.True.Has(k, args) {
		return True
	}
	if r.Possible.Has(k, args) {
		return Undefined
	}
	return False
}

// TwoValued reports whether no atom is undefined.
func (r *Result) TwoValued() bool { return r.True.Equal(r.Possible) }

// UndefinedCount returns the number of undefined atoms.
func (r *Result) UndefinedCount() int { return r.Possible.Len() - r.True.Len() }

// Solve computes the well-founded partial model of the program under the
// Kemp–Stuckey aggregate semantics via an alternating fixpoint:
//
//	U_0     = lfp(T) of the *relaxed* program: negation assumed true,
//	          aggregate subgoals dropped (with their dependent builtins;
//	          rules whose heads lose bindings are skipped)
//	K_{i+1} = lfp(T) with ¬p iff p ∉ U_i; aggregates definite per (K_i, U_i)
//	U_{i+1} = lfp(T) with ¬p iff p ∉ K_{i+1}; aggregates optimistic per
//	          (K_{i+1}, U_i)
//
// until both sequences stabilize. K underestimates truth; U tracks
// possible truth (it may grow in early rounds as aggregate witnesses
// appear, then shrinks); the limits are the well-founded truth and
// possibility sets. Normal programs (no aggregates) get the classic Van
// Gelder–Ross–Schlipf alternating fixpoint.
func Solve(prog *ast.Program, opts Options) (*Result, error) {
	return SolveContext(context.Background(), prog, opts)
}

// SolveContext is Solve with cooperative cancellation: the alternating
// fixpoint and every inner lfp poll ctx and stop with an error wrapping
// enginerr.ErrCanceled (core.ErrCanceled) when it fires.
func SolveContext(ctx context.Context, prog *ast.Program, opts Options) (*Result, error) {
	opts.defaults()

	u, err := lfp(ctx, relaxedProgram(prog), &semantics{negFalseIn: NewStore(), mode: aggDefinite, low: NewStore(), high: NewStore()}, opts)
	if err != nil {
		return nil, err
	}
	k := NewStore()
	for iter := 1; ; iter++ {
		if iter > opts.MaxIters {
			return nil, fmt.Errorf("wfs: alternation did not converge within %d rounds: %w", opts.MaxIters, enginerr.ErrDiverged)
		}
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		k2, err := lfp(ctx, prog, &semantics{negFalseIn: u, mode: aggDefinite, low: k, high: u}, opts)
		if err != nil {
			return nil, err
		}
		u2, err := lfp(ctx, prog, &semantics{negFalseIn: k2, mode: aggOptimistic, low: k2, high: u}, opts)
		if err != nil {
			return nil, err
		}
		if k2.Equal(k) && u2.Equal(u) {
			return &Result{True: k2, Possible: u2, Iterations: iter}, nil
		}
		k, u = k2, u2
	}
}

// ctxErr converts a fired context into the shared cancellation class.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("wfs: %w: %w", enginerr.ErrCanceled, ctx.Err())
	default:
		return nil
	}
}

// relaxedProgram over-approximates derivability structure for the U_0
// bootstrap: negative literals are dropped (assumed true), aggregate
// subgoals are dropped, builtins that lose bindings are dropped, and
// rules whose head variables become unbound are skipped entirely (their
// atoms enter U later, once aggregate witnesses exist).
func relaxedProgram(prog *ast.Program) *ast.Program {
	out := &ast.Program{}
	for _, r := range prog.Rules {
		available := map[ast.Var]bool{}
		for _, sg := range r.Body {
			if l, ok := sg.(*ast.Lit); ok && !l.Neg {
				for _, v := range l.Atom.Vars(nil) {
					available[v] = true
				}
			}
		}
		var body []ast.Subgoal
		keepAll := true
		for _, sg := range r.Body {
			switch sg := sg.(type) {
			case *ast.Lit:
				if !sg.Neg {
					body = append(body, sg)
				}
			case *ast.Builtin:
				ok := true
				for _, v := range sg.FreeVars(nil) {
					if !available[v] {
						ok = false
						break
					}
				}
				if ok {
					body = append(body, sg)
				}
			case *ast.Agg:
				// dropped
			}
			_ = keepAll
		}
		headOK := true
		for _, v := range r.Head.Vars(nil) {
			if !available[v] {
				headOK = false
				break
			}
		}
		if headOK {
			out.Rules = append(out.Rules, &ast.Rule{Head: r.Head, Body: body})
		}
	}
	return out
}

// ReductLfp computes the least fixpoint of the program with negation and
// aggregate subgoals frozen against the total interpretation m — the
// Kemp–Stuckey generalization of the Gelfond–Lifschitz reduct (§5.5). A
// total model m is stable iff ReductLfp(prog, m) equals m.
func ReductLfp(prog *ast.Program, m *Store, opts Options) (*Store, error) {
	opts.defaults()
	return lfp(context.Background(), prog, &semantics{negFalseIn: m, mode: aggDefinite, low: m, high: m}, opts)
}

// lfp computes the least fixpoint of the immediate-consequence operator
// under the given (frozen) semantics: starting empty, rules fire against
// the growing store until nothing new is derivable.
func lfp(ctx context.Context, prog *ast.Program, sem *semantics, opts Options) (*Store, error) {
	grow := NewStore()
	sem.grow = grow
	for iter := 0; ; iter++ {
		if iter > opts.MaxIters {
			return nil, fmt.Errorf("wfs: inner fixpoint did not converge within %d rounds: %w", opts.MaxIters, enginerr.ErrDiverged)
		}
		changed := false
		for _, r := range prog.Rules {
			r := r
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			err := evalRule(r, sem, func(sb subst) error {
				args, err := groundArgs(&r.Head, sb)
				if err != nil {
					return err
				}
				if grow.Add(r.Head.Key(), args) {
					changed = true
				}
				if grow.Len() > opts.MaxAtoms {
					return fmt.Errorf("wfs: atom universe exceeded %d (diverging input — the set-based treatment of costs is infinite here, §5.3): %w", opts.MaxAtoms, enginerr.ErrBudgetExceeded)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		if !changed {
			return grow, nil
		}
	}
}
