package wfs_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/programs"
	"repro/internal/stable"
	"repro/internal/wfs"
)

// TestProposition61OnRandomDAGs property-checks Proposition 6.1's strong
// form for modularly stratified instances: on random layered DAGs the
// Kemp–Stuckey well-founded model is two-valued and coincides with the
// monotonic minimal model.
func TestProposition61OnRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gen.Graph(gen.LayeredDAG, 8+r.Intn(8), 20+r.Intn(20), 9, seed)
		src := programs.ShortestPath + gen.GraphFacts(g)
		prog := mustParse(t, src)
		res, err := wfs.Solve(prog, wfs.Options{})
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		if !res.TwoValued() {
			t.Errorf("seed %d: %d undefined atoms on a DAG", seed, res.UndefinedCount())
			return false
		}
		en, err := core.New(prog, core.Options{})
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		m, _, err := en.Solve(nil)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		if !wfs.FromDB(m).Equal(res.True) {
			t.Errorf("seed %d: WFS and minimal model disagree", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestLeastModelStableOnRandomDAGs: the minimal model of a modularly
// stratified instance is Kemp–Stuckey stable (the §5.3 positive case, on
// random instances).
func TestLeastModelStableOnRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gen.Graph(gen.LayeredDAG, 6+r.Intn(6), 12+r.Intn(12), 9, seed)
		src := programs.ShortestPath + gen.GraphFacts(g)
		prog := mustParse(t, src)
		en, err := core.New(prog, core.Options{})
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		m, _, err := en.Solve(nil)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		ok, err := stable.IsStable(prog, wfs.FromDB(m), wfs.Options{})
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		if !ok {
			t.Errorf("seed %d: least model not stable on a DAG", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
