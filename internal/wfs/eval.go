package wfs

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ast"
	"repro/internal/lattice"
	"repro/internal/val"
)

// subst is a variable binding.
type subst map[ast.Var]val.T

// aggMode selects the aggregate satisfaction semantics.
type aggMode int

const (
	// aggDefinite: Kemp & Stuckey truth — the group must be fully defined
	// (every possible tuple already known true), then C = F(multiset).
	aggDefinite aggMode = iota
	// aggOptimistic: possible truth — C ranges over the achievable values
	// given the definite (low) and possible (high) tuple sets.
	aggOptimistic
)

// semantics parameterizes one lfp computation of the alternating fixpoint.
type semantics struct {
	// grow is the set being computed; positive literals match it.
	grow *Store
	// negFalseIn: ¬p holds iff p is absent from this store.
	negFalseIn *Store
	mode       aggMode
	// low/high are the frozen definite and possible tuple sources for
	// aggregate evaluation.
	low, high *Store
}

func (sem *semantics) highStore() *Store { return sem.high }

func (sem *semantics) lowHas(k ast.PredKey, args []val.T) bool {
	return sem.low.Has(k, args)
}

// evalRule enumerates satisfying substitutions of the body and calls emit
// with each completed binding.
func evalRule(r *ast.Rule, sem *semantics, emit func(subst) error) error {
	sb := subst{}
	roles := map[*ast.Agg]ast.AggRoles{}
	for i, sg := range r.Body {
		if g, ok := sg.(*ast.Agg); ok {
			roles[g] = ast.RolesOf(r, i)
		}
	}
	var rec func(remaining []ast.Subgoal) error
	rec = func(remaining []ast.Subgoal) error {
		if len(remaining) == 0 {
			return emit(sb)
		}
		pick := -1
		for i, sg := range remaining {
			if runnable(sg, sb) {
				pick = i
				break
			}
		}
		if pick < 0 {
			return fmt.Errorf("wfs: rule %q has no evaluation order under current bindings", r)
		}
		sg := remaining[pick]
		rest := append(append([]ast.Subgoal{}, remaining[:pick]...), remaining[pick+1:]...)
		switch sg := sg.(type) {
		case *ast.Lit:
			if sg.Neg {
				ok, err := negSatisfied(&sg.Atom, sb, sem)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				return rec(rest)
			}
			return matchAtom(&sg.Atom, sem.grow, sb, func() error { return rec(rest) })
		case *ast.Builtin:
			return evalBuiltin(sg, sb, func() error { return rec(rest) })
		case *ast.Agg:
			return evalAgg(sg, roles[sg], sb, sem, func() error { return rec(rest) })
		}
		return fmt.Errorf("wfs: unknown subgoal %T", sg)
	}
	return rec(r.Body)
}

// runnable reports whether a subgoal can execute under the current
// bindings: positive literals and restricted aggregates always can;
// builtins need bound-or-assignable form; negation and total aggregates
// need full grouping/variable binding.
func runnable(sg ast.Subgoal, sb subst) bool {
	switch sg := sg.(type) {
	case *ast.Lit:
		if !sg.Neg {
			return true
		}
		for _, v := range sg.Atom.Vars(nil) {
			if _, ok := sb[v]; !ok {
				return false
			}
		}
		return true
	case *ast.Builtin:
		_, _, ok := builtinForm(sg, sb)
		return ok
	case *ast.Agg:
		return true
	}
	return false
}

// builtinForm classifies a builtin under the current bindings: mode
// "test" (fully bound) or "assign" (equality defining one unbound var).
func builtinForm(b *ast.Builtin, sb subst) (mode string, assign ast.Var, ok bool) {
	unboundL := unboundVars(b.L, sb)
	unboundR := unboundVars(b.R, sb)
	if len(unboundL) == 0 && len(unboundR) == 0 {
		return "test", "", true
	}
	if b.Op != ast.OpEq {
		return "", "", false
	}
	if v, isV := b.L.(ast.VarExpr); isV && len(unboundL) == 1 && len(unboundR) == 0 {
		return "assign", v.V, true
	}
	if v, isV := b.R.(ast.VarExpr); isV && len(unboundR) == 1 && len(unboundL) == 0 {
		return "assign", v.V, true
	}
	return "", "", false
}

func unboundVars(e ast.Expr, sb subst) []ast.Var {
	var out []ast.Var
	for _, v := range e.Vars(nil) {
		if _, ok := sb[v]; !ok {
			out = append(out, v)
		}
	}
	return out
}

func evalBuiltin(b *ast.Builtin, sb subst, cont func() error) error {
	lookup := func(v ast.Var) (val.T, bool) { x, ok := sb[v]; return x, ok }
	mode, assign, ok := builtinForm(b, sb)
	if !ok {
		return fmt.Errorf("wfs: builtin %s not evaluable", b)
	}
	if mode == "assign" {
		src := b.R
		if v, isV := b.R.(ast.VarExpr); isV && v.V == assign {
			src = b.L
		}
		x, err := ast.EvalExpr(src, lookup)
		if err != nil {
			return err
		}
		sb[assign] = x
		err = cont()
		delete(sb, assign)
		return err
	}
	l, err := ast.EvalExpr(b.L, lookup)
	if err != nil {
		return err
	}
	r, err := ast.EvalExpr(b.R, lookup)
	if err != nil {
		return err
	}
	res, err := ast.Compare(b.Op, l, r)
	if err != nil {
		return err
	}
	if !res {
		return nil
	}
	return cont()
}

// matchAtom enumerates store rows unifying with the atom under sb.
func matchAtom(a *ast.Atom, st *Store, sb subst, cont func() error) error {
	var ferr error
	st.Each(a.Key(), func(args []val.T) bool {
		var bound []ast.Var
		ok := true
		for i, t := range a.Args {
			switch t := t.(type) {
			case ast.Const:
				if !val.Equal(t.V, args[i]) {
					ok = false
				}
			case ast.Var:
				if prev, b := sb[t]; b {
					if !val.Equal(prev, args[i]) {
						ok = false
					}
				} else {
					sb[t] = args[i]
					bound = append(bound, t)
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			if err := cont(); err != nil {
				ferr = err
			}
		}
		for _, v := range bound {
			delete(sb, v)
		}
		return ferr == nil
	})
	return ferr
}

// groundArgs instantiates an atom's arguments (must be fully bound).
func groundArgs(a *ast.Atom, sb subst) ([]val.T, error) {
	out := make([]val.T, len(a.Args))
	for i, t := range a.Args {
		switch t := t.(type) {
		case ast.Const:
			out[i] = t.V
		case ast.Var:
			x, ok := sb[t]
			if !ok {
				return nil, fmt.Errorf("wfs: unbound variable %s in %s", t, a)
			}
			out[i] = x
		}
	}
	return out, nil
}

func negSatisfied(a *ast.Atom, sb subst, sem *semantics) (bool, error) {
	args, err := groundArgs(a, sb)
	if err != nil {
		return false, err
	}
	return !sem.negFalseIn.Has(a.Key(), args), nil
}

type atomInst struct {
	k    ast.PredKey
	args []val.T
}

type aggMatch struct {
	elem  val.T
	atoms []atomInst
	key   []val.T // grouping-variable values
}

// evalAgg evaluates an aggregate subgoal. Matches of the conjunction are
// enumerated over the "possible" store; they are grouped by the values of
// the grouping variables; each group's candidate results follow the mode
// semantics (see the package comment).
func evalAgg(g *ast.Agg, roles ast.AggRoles, sb subst, sem *semantics, cont func() error) error {
	f, ok := lattice.AggregateByName(g.Func)
	if !ok {
		return fmt.Errorf("wfs: unknown aggregate %s", g.Func)
	}
	high := sem.highStore()

	allGroupingBound := true
	for _, v := range roles.Grouping {
		if _, b := sb[v]; !b {
			allGroupingBound = false
		}
	}
	if !allGroupingBound && !g.Restricted {
		return fmt.Errorf("wfs: total aggregate %s with unbound grouping variables", g)
	}

	var matches []aggMatch
	var atoms []atomInst
	var enumerate func(i int) error
	enumerate = func(i int) error {
		if i == len(g.Conj) {
			m := aggMatch{elem: val.Boolean(true)}
			if g.MultisetVar != "" {
				m.elem = sb[g.MultisetVar]
			}
			m.atoms = append([]atomInst{}, atoms...)
			m.key = make([]val.T, len(roles.Grouping))
			for j, v := range roles.Grouping {
				m.key[j] = sb[v]
			}
			matches = append(matches, m)
			return nil
		}
		a := &g.Conj[i]
		return matchAtom(a, high, sb, func() error {
			args, err := groundArgs(a, sb)
			if err != nil {
				return err
			}
			atoms = append(atoms, atomInst{a.Key(), args})
			err = enumerate(i + 1)
			atoms = atoms[:len(atoms)-1]
			return err
		})
	}
	if err := enumerate(0); err != nil {
		return err
	}

	groups := map[string][]aggMatch{}
	for _, m := range matches {
		groups[val.KeyOf(m.key)] = append(groups[val.KeyOf(m.key)], m)
	}

	emit := func(ms []aggMatch) error {
		var lowElems, highElems []val.T
		defined := true
		for _, m := range ms {
			highElems = append(highElems, m.elem)
			inLow := true
			for _, at := range m.atoms {
				if !sem.lowHas(at.k, at.args) {
					inLow = false
					break
				}
			}
			if inLow {
				lowElems = append(lowElems, m.elem)
			} else {
				defined = false
			}
		}
		candidates := aggCandidates(f, g, sem.mode, defined, lowElems, highElems)
		if len(candidates) == 0 {
			return nil
		}
		// Bind the unbound grouping variables from the group exemplar.
		var boundVars []ast.Var
		if len(ms) > 0 {
			for j, v := range roles.Grouping {
				if _, b := sb[v]; !b {
					sb[v] = ms[0].key[j]
					boundVars = append(boundVars, v)
				}
			}
		}
		defer func() {
			for _, v := range boundVars {
				delete(sb, v)
			}
		}()
		for _, c := range candidates {
			if prev, bound := sb[g.Result]; bound {
				if val.Equal(prev, c) {
					if err := cont(); err != nil {
						return err
					}
				}
				continue
			}
			sb[g.Result] = c
			err := cont()
			delete(sb, g.Result)
			if err != nil {
				return err
			}
		}
		return nil
	}

	if len(groups) == 0 {
		if g.Restricted {
			return nil
		}
		return emit(nil) // total aggregate over the empty group
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := emit(groups[k]); err != nil {
			return err
		}
	}
	return nil
}

// aggCandidates computes candidate results of F for one group.
func aggCandidates(f lattice.Aggregate, g *ast.Agg, mode aggMode, defined bool, low, high []val.T) []val.T {
	switch mode {
	case aggDefinite:
		if !defined {
			return nil
		}
		if g.Restricted && len(low) == 0 {
			return nil
		}
		r, ok := f.Apply(low)
		if !ok {
			return nil
		}
		return []val.T{r}
	default:
		var out []val.T
		add := func(v val.T) {
			for _, o := range out {
				if val.Equal(o, v) {
					return
				}
			}
			out = append(out, v)
		}
		switch f.Name() {
		case "min":
			// Achievable minima over multisets M with low ⊆ M ⊆ high:
			// min(low) plus every possible element not above it.
			lowMin := math.Inf(1)
			for _, e := range low {
				lowMin = math.Min(lowMin, e.N)
			}
			if len(low) > 0 || !g.Restricted {
				add(val.Number(lowMin))
			}
			for _, e := range high {
				if e.N <= lowMin {
					add(e)
				}
			}
		case "max":
			lowMax := math.Inf(-1)
			for _, e := range low {
				lowMax = math.Max(lowMax, e.N)
			}
			if len(low) > 0 || !g.Restricted {
				add(val.Number(lowMax))
			}
			for _, e := range high {
				if e.N >= lowMax {
					add(e)
				}
			}
		default:
			// Extremes only — exact for the paper's threshold-style uses
			// (documented under-approximation of possible truth).
			if len(low) > 0 || !g.Restricted {
				if r, ok := f.Apply(low); ok {
					add(r)
				}
			}
			if len(high) > 0 {
				if r, ok := f.Apply(high); ok {
					add(r)
				}
			}
		}
		return out
	}
}
