// Package wfs implements the Kemp–Stuckey-style well-founded semantics
// with aggregates (§5.3 of Ross & Sagiv, PODS 1992) as a comparator for
// the paper's monotonic minimal-model semantics, plus the classic
// alternating-fixpoint well-founded semantics for normal programs (used to
// evaluate the Ganguly–Greco–Zaniolo rewriting of §5.4).
//
// Unlike the core engine, atoms here are plain ground tuples: a cost
// argument is ordinary data, with no functional dependency — that is how
// Kemp & Stuckey (and the GGZ rewriting) treat programs, and it is what
// makes path relations on cyclic graphs infinite for them (§5.3-5.4);
// MaxAtoms bounds that divergence.
//
// The defining feature reproduced from Kemp & Stuckey is that an
// aggregate subgoal is satisfied only when every instance of the
// aggregated group is fully *defined* (known true or known false). On
// cyclic inputs groups never complete, so the well-founded model leaves
// the aggregate's consumers undefined — exactly the behaviour §5.3 calls
// "uninteresting" and the monotonic semantics improves on.
//
// For the optimistic (possibly-true) side of the alternating fixpoint,
// aggregate results are drawn from an achievable-value set: exact for min
// and max (every element below/above the definite extremum), and the
// two extremes {F(definite tuples), F(possible tuples)} for other
// aggregates — an under-approximation of possible truth that is exact for
// the threshold-style uses in the paper's examples (documented trade-off;
// see DESIGN.md §4).
package wfs

import (
	"sort"

	"repro/internal/ast"
	"repro/internal/relation"
	"repro/internal/val"
)

// Store is a set of ground atoms (all arguments data, including costs).
type Store struct {
	m     map[ast.PredKey]map[string][]val.T
	count int
}

// NewStore returns an empty atom set.
func NewStore() *Store {
	return &Store{m: map[ast.PredKey]map[string][]val.T{}}
}

// Add inserts a ground atom, reporting whether it was new.
func (s *Store) Add(k ast.PredKey, args []val.T) bool {
	t := s.m[k]
	if t == nil {
		t = map[string][]val.T{}
		s.m[k] = t
	}
	key := val.KeyOf(args)
	if _, dup := t[key]; dup {
		return false
	}
	t[key] = append([]val.T{}, args...)
	s.count++
	return true
}

// Has reports membership of a ground atom.
func (s *Store) Has(k ast.PredKey, args []val.T) bool {
	t := s.m[k]
	if t == nil {
		return false
	}
	_, ok := t[val.KeyOf(args)]
	return ok
}

// Len returns the number of atoms.
func (s *Store) Len() int { return s.count }

// Each iterates the atoms of predicate k in deterministic order.
func (s *Store) Each(k ast.PredKey, f func(args []val.T) bool) {
	t := s.m[k]
	if t == nil {
		return
	}
	keys := make([]string, 0, len(t))
	for key := range t {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if !f(t[key]) {
			return
		}
	}
}

// Preds returns the predicates present, sorted.
func (s *Store) Preds() []ast.PredKey {
	out := make([]ast.PredKey, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone deep-copies the store.
func (s *Store) Clone() *Store {
	c := NewStore()
	for k, t := range s.m {
		ct := make(map[string][]val.T, len(t))
		for key, args := range t {
			ct[key] = args
		}
		c.m[k] = ct
		c.count += len(t)
	}
	return c
}

// Equal reports set equality.
func (s *Store) Equal(o *Store) bool {
	if s.count != o.count {
		return false
	}
	for k, t := range s.m {
		ot := o.m[k]
		if len(ot) != len(t) {
			return false
		}
		for key := range t {
			if _, ok := ot[key]; !ok {
				return false
			}
		}
	}
	return true
}

// FromDB converts a core-engine interpretation to a plain atom set: the
// cost value of each tuple becomes an ordinary final argument.
func FromDB(db *relation.DB) *Store {
	s := NewStore()
	for _, k := range db.Preds() {
		rel := db.Rel(k)
		rel.Each(func(row relation.Row) bool {
			args := row.Args
			if row.HasCost {
				args = append(append([]val.T{}, row.Args...), row.Cost)
			}
			s.Add(k, args)
			return true
		})
	}
	return s
}

// SubsetOf reports s ⊆ o.
func (s *Store) SubsetOf(o *Store) bool {
	for k, t := range s.m {
		ot := o.m[k]
		if len(t) > len(ot) {
			return false
		}
		for key := range t {
			if _, ok := ot[key]; !ok {
				return false
			}
		}
	}
	return true
}
