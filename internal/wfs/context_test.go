package wfs_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/enginerr"
	"repro/internal/wfs"
)

func TestSolveContextCanceled(t *testing.T) {
	src := shortestPath + `
arc(a, b, 1).
arc(b, b, 0).
`
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := wfs.SolveContext(ctx, mustParse(t, src), wfs.Options{})
	if !errors.Is(err, enginerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must also wrap context.Canceled", err)
	}
}

func TestSolveMaxAtomsBudget(t *testing.T) {
	src := shortestPath + `
arc(a, b, 1).
arc(b, c, 2).
arc(c, d, 3).
`
	_, err := wfs.Solve(mustParse(t, src), wfs.Options{MaxAtoms: 2})
	if !errors.Is(err, enginerr.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}
