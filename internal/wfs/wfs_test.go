package wfs_test

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/val"
	"repro/internal/wfs"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const shortestPath = `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`

func nums(args ...any) []val.T {
	out := make([]val.T, len(args))
	for i, a := range args {
		switch a := a.(type) {
		case string:
			out[i] = val.Symbol(a)
		case int:
			out[i] = val.Number(float64(a))
		case float64:
			out[i] = val.Number(a)
		}
	}
	return out
}

// TestAcyclicShortestPathTwoValued: on an acyclic graph the program is
// modularly stratified and the Kemp–Stuckey well-founded model is
// two-valued and agrees with the monotonic least model (Proposition 6.1).
func TestAcyclicShortestPathTwoValued(t *testing.T) {
	src := shortestPath + `
arc(a, b, 1).
arc(b, c, 2).
arc(a, c, 5).
`
	prog := mustParse(t, src)
	res, err := wfs.Solve(prog, wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TwoValued() {
		t.Fatalf("acyclic WFS must be two-valued; %d undefined", res.UndefinedCount())
	}
	if res.Status("s/3", nums("a", "c", 3)) != wfs.True {
		t.Fatal("s(a,c,3) must be true")
	}
	if res.Status("s/3", nums("a", "c", 5)) != wfs.False {
		t.Fatal("s(a,c,5) must be false")
	}
	// Agreement with the core engine (Proposition 6.1).
	en, err := core.New(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !wfs.FromDB(m).Equal(res.True) {
		t.Fatalf("WFS and minimal model disagree on the acyclic graph:\nWFS true:\n%v\nmodel:\n%v", res.True.Preds(), m)
	}
}

// TestCyclicShortestPathUndefined reproduces §5.3: on Example 3.1's
// cyclic graph the well-founded model leaves the s atoms (and the cyclic
// path atom) undefined, while the monotonic semantics picks M1.
func TestCyclicShortestPathUndefined(t *testing.T) {
	src := shortestPath + `
arc(a, b, 1).
arc(b, b, 0).
`
	res, err := wfs.Solve(mustParse(t, src), wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TwoValued() {
		t.Fatal("the cyclic graph must leave atoms undefined (§5.3)")
	}
	if got := res.Status("s/3", nums("a", "b", 1)); got != wfs.Undefined {
		t.Fatalf("s(a,b,1) = %v, want undefined", got)
	}
	if got := res.Status("path/4", nums("a", "b", "b", 1)); got != wfs.Undefined {
		t.Fatalf("path(a,b,b,1) = %v, want undefined", got)
	}
	// The non-recursive facts stay true.
	if got := res.Status("path/4", nums("a", "direct", "b", 1)); got != wfs.True {
		t.Fatalf("path(a,direct,b,1) = %v, want true", got)
	}
	if got := res.Status("arc/3", nums("a", "b", 1)); got != wfs.True {
		t.Fatalf("arc(a,b,1) = %v, want true", got)
	}
}

const party = `
.cost requires/2 : countnat.
coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
kc(X, Y)  :- knows(X, Y), coming(Y).
`

// TestPartyWFS: with an acyclic knows relation WFS matches the monotonic
// model; with a cycle the well-founded model goes undefined where the
// monotonic model is total (Example 4.3's point: the program is
// monotonic but modularly stratified only for acyclic knows).
func TestPartyWFS(t *testing.T) {
	acyclic := party + `
requires(a, 0).
requires(b, 1).
knows(b, a).
`
	res, err := wfs.Solve(mustParse(t, acyclic), wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TwoValued() {
		t.Fatalf("acyclic party must be two-valued; %d undefined", res.UndefinedCount())
	}
	if res.Status("coming/1", nums("b")) != wfs.True {
		t.Fatal("b comes (knows a, who needs nobody)")
	}

	cyclic := party + `
requires(x, 1).
requires(y, 1).
knows(x, y).
knows(y, x).
`
	res, err = wfs.Solve(mustParse(t, cyclic), wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TwoValued() {
		t.Fatal("the knows-cycle must leave attendance undefined under WFS")
	}
	if got := res.Status("coming/1", nums("x")); got != wfs.Undefined {
		t.Fatalf("coming(x) = %v, want undefined (monotonic semantics says false)", got)
	}
}

const companyControl = `
.cost s/3 : sumreal.
.cost cv/4 : sumreal.
.cost m/3 : sumreal.
cv(X, X, Y, N) :- s(X, Y, N).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
m(X, Y, N)     :- N ?= sum M : cv(X, Z, Y, M).
c(X, Y)        :- m(X, Y, N), N > 0.5.
`

// TestCompanyControlWFS: on §5.6's EDB c(a,b) and c(a,c) are not true —
// Kemp–Stuckey's well-founded construction makes the unsupported control
// cycle false (the paper's contrast there is against Van Gelder's
// semantics, which would leave them undefined; we document rather than
// implement his translation, DESIGN.md §4).
func TestCompanyControlWFS(t *testing.T) {
	src := companyControl + `
s(a, b, 0.3).
s(a, c, 0.3).
s(b, c, 0.6).
s(c, b, 0.6).
`
	res, err := wfs.Solve(mustParse(t, src), wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Status("c/2", nums("a", "b")); got == wfs.True {
		t.Fatal("c(a,b) must not be true")
	}
	if got := res.Status("c/2", nums("a", "c")); got == wfs.True {
		t.Fatal("c(a,c) must not be true")
	}
	// Direct 0.6 ownership is definite control.
	if got := res.Status("c/2", nums("b", "c")); got != wfs.True {
		t.Fatalf("c(b,c) = %v, want true", got)
	}
}

// TestNormalWinMove: the classic win-move game checks the plain
// (aggregate-free) alternating fixpoint.
func TestNormalWinMove(t *testing.T) {
	src := `
move(a, b).
move(b, a).
move(b, c).
move(d, e).
win(X) :- move(X, Y), not win(Y).
`
	res, err := wfs.Solve(mustParse(t, src), wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// c has no moves: lost; b can move to c: won; a moves only to b: lost;
	// d moves to e (lost): won... e has no moves: lost, so win(d) true.
	if got := res.Status("win/1", nums("b")); got != wfs.True {
		t.Fatalf("win(b) = %v, want true", got)
	}
	if got := res.Status("win/1", nums("a")); got != wfs.False {
		t.Fatalf("win(a) = %v, want false", got)
	}
	if got := res.Status("win/1", nums("d")); got != wfs.True {
		t.Fatalf("win(d) = %v, want true", got)
	}
	if got := res.Status("win/1", nums("c")); got != wfs.False {
		t.Fatalf("win(c) = %v, want false", got)
	}
}

func TestNormalWinMoveDraw(t *testing.T) {
	// A 2-cycle with no exit is a draw: undefined.
	src := `
move(a, b).
move(b, a).
win(X) :- move(X, Y), not win(Y).
`
	res, err := wfs.Solve(mustParse(t, src), wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Status("win/1", nums("a")); got != wfs.Undefined {
		t.Fatalf("win(a) = %v, want undefined (draw)", got)
	}
	if got := res.Status("win/1", nums("b")); got != wfs.Undefined {
		t.Fatalf("win(b) = %v, want undefined (draw)", got)
	}
}

// TestPositiveSelfLoopPartial: a positive self-loop stays finite under
// the aggregate semantics (the achievable-minimum pruning caps candidate
// costs at the definite direct-path cost) and leaves the cyclic atoms
// undefined.
func TestPositiveSelfLoopPartial(t *testing.T) {
	src := shortestPath + `
arc(a, a, 1).
`
	res, err := wfs.Solve(mustParse(t, src), wfs.Options{MaxAtoms: 5000, MaxIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Status("s/3", nums("a", "a", 1)); got != wfs.Undefined {
		t.Fatalf("s(a,a,1) = %v, want undefined", got)
	}
	if got := res.Status("s/3", nums("a", "a", 2)); got != wfs.False {
		t.Fatalf("s(a,a,2) = %v, want false (the direct arc always caps the minimum)", got)
	}
}

func TestStoreBasics(t *testing.T) {
	s := wfs.NewStore()
	if !s.Add("p/1", nums("a")) || s.Add("p/1", nums("a")) {
		t.Fatal("Add dedup broken")
	}
	if !s.Has("p/1", nums("a")) || s.Has("p/1", nums("b")) {
		t.Fatal("Has broken")
	}
	c := s.Clone()
	c.Add("p/1", nums("b"))
	if s.Has("p/1", nums("b")) {
		t.Fatal("Clone must not alias")
	}
	if !s.SubsetOf(c) || c.SubsetOf(s) {
		t.Fatal("SubsetOf broken")
	}
	if s.Equal(c) || !s.Equal(s.Clone()) {
		t.Fatal("Equal broken")
	}
}
