package stable

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/enginerr"
	"repro/internal/val"
	"repro/internal/wfs"
)

// TestEnumerateContextCanceled: the 2^k search over free atoms polls the
// context between candidate masks and stops with ErrCanceled.
func TestEnumerateContextCanceled(t *testing.T) {
	prog, m1, m2, _ := example31(t)
	candidates := wfs.FromDB(m1)
	m2s := wfs.FromDB(m2)
	for _, k := range m2s.Preds() {
		k := k
		m2s.Each(k, func(args []val.T) bool {
			candidates.Add(k, args)
			return true
		})
	}
	fixed := map[ast.PredKey]bool{"arc/3": true}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EnumerateContext(ctx, prog, candidates, fixed, 16, wfs.Options{})
	if !errors.Is(err, enginerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !strings.Contains(err.Error(), "candidates") {
		t.Fatalf("diagnosis must say how far the search got: %v", err)
	}
}
