package stable

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/val"
	"repro/internal/wfs"
)

const shortestPath = `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// example31 returns the program, M1 (the engine's least model) and M2
// (Example 3.1's second model, with the spurious cost-0 cycle claim).
func example31(t *testing.T) (*ast.Program, *relation.DB, *relation.DB, *core.Engine) {
	t.Helper()
	prog := mustParse(t, shortestPath+"arc(a, b, 1).\narc(b, b, 0).\n")
	en, err := core.New(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	m2 := m1.Clone()
	m2.AddFact("s", []val.T{val.Symbol("a"), val.Symbol("b")}, val.Number(0))
	m2.AddFact("path", []val.T{val.Symbol("a"), val.Symbol("b"), val.Symbol("b")}, val.Number(0))
	return prog, m1, m2, en
}

// TestExample31BothStable reproduces §5.3/§5.5: both M1 and M2 of
// Example 3.1 are stable in the Kemp–Stuckey sense.
func TestExample31BothStable(t *testing.T) {
	prog, m1, m2, _ := example31(t)
	s1 := wfs.FromDB(m1)
	s2 := wfs.FromDB(m2)
	ok, err := IsStable(prog, s1, wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("M1 must be stable")
	}
	ok, err = IsStable(prog, s2, wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("M2 must be stable (the incomparable-stable-models flaw, §5.3)")
	}
	// A non-model is not stable.
	bad := m1.Clone()
	bad.AddFact("s", []val.T{val.Symbol("a"), val.Symbol("b")}, val.Number(0.5))
	if ok, _ := IsStable(prog, wfs.FromDB(bad), wfs.Options{}); ok {
		t.Fatal("an arbitrary cost improvement must not be stable")
	}
}

// TestExample31MonotonicStable reproduces the §5.5 alternative semantics:
// reduce only negation, require the candidate to be the minimal model of
// the (monotonic) reduced program — only M1 survives.
func TestExample31MonotonicStable(t *testing.T) {
	prog, m1, m2, _ := example31(t)
	ok, err := IsMonotonicStable(prog, nil, m1, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("M1 is the unique monotonic-stable model")
	}
	ok, err = IsMonotonicStable(prog, nil, m2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("M2 must be rejected by the monotonic-reduct stability")
	}
}

// TestEnumerateFindsBothModels searches the union of M1 and M2 atoms and
// finds exactly the two stable models of Example 3.1.
func TestEnumerateFindsBothModels(t *testing.T) {
	prog, m1, m2, _ := example31(t)
	candidates := wfs.FromDB(m1)
	m2s := wfs.FromDB(m2)
	for _, k := range m2s.Preds() {
		k := k
		m2s.Each(k, func(args []val.T) bool {
			candidates.Add(k, args)
			return true
		})
	}
	fixed := map[ast.PredKey]bool{"arc/3": true}
	models, err := Enumerate(prog, candidates, fixed, 16, wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("stable models found = %d, want exactly 2 (M1 and M2)", len(models))
	}
	found1, found2 := false, false
	for _, m := range models {
		if m.Equal(wfs.FromDB(m1)) {
			found1 = true
		}
		if m.Equal(m2s) {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Fatalf("expected M1 and M2; got M1=%v M2=%v", found1, found2)
	}
}

func TestEnumerateBound(t *testing.T) {
	prog, m1, _, _ := example31(t)
	if _, err := Enumerate(prog, wfs.FromDB(m1), nil, 2, wfs.Options{}); err == nil {
		t.Fatal("exceeding maxFree must error")
	}
}

// TestAcyclicUniqueStable: on an acyclic graph the stable model is unique
// and equals the least model (§5.3's positive case).
func TestAcyclicUniqueStable(t *testing.T) {
	prog := mustParse(t, shortestPath+"arc(a, b, 1).\narc(b, c, 2).\n")
	en, err := core.New(prog, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	candidates := wfs.FromDB(m)
	// Add a decoy: a worse claimed s cost.
	candidates.Add("s/3", []val.T{val.Symbol("a"), val.Symbol("c"), val.Number(7)})
	fixed := map[ast.PredKey]bool{"arc/3": true}
	models, err := Enumerate(prog, candidates, fixed, 16, wfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || !models[0].Equal(wfs.FromDB(m)) {
		t.Fatalf("acyclic graphs have the least model as unique stable model; got %d", len(models))
	}
}
