// Package stable implements the stable-model notions discussed in §5.3
// and §5.5 of Ross & Sagiv (PODS 1992):
//
//   - Kemp–Stuckey stability, where aggregate subgoals are treated like
//     negative literals in the reduct. Incomparable stable models can
//     coexist (Example 3.1's M1 and M2 are both stable).
//   - The paper's alternative: reduce only negation and require the
//     candidate to be the unique minimal model of the (monotonic) reduced
//     program — under which only the paper's least model M1 survives.
package stable

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/enginerr"
	"repro/internal/relation"
	"repro/internal/val"
	"repro/internal/wfs"
)

// IsStable checks Kemp–Stuckey stability of the total interpretation m:
// the least fixpoint of the program with negation and aggregates frozen
// at m must reproduce m exactly.
func IsStable(prog *ast.Program, m *wfs.Store, opts wfs.Options) (bool, error) {
	lfp, err := wfs.ReductLfp(prog, m, opts)
	if err != nil {
		return false, err
	}
	return lfp.Equal(m), nil
}

// IsMonotonicStable checks the §5.5 alternative: the reduct removes only
// negation (none of the paper's aggregate examples has any, so the
// program is unchanged), the reduced program must be monotonic, and m
// must equal its least model. Under this definition the minimal model of
// a monotonic program is the unique stable model.
func IsMonotonicStable(prog *ast.Program, edb *relation.DB, m *relation.DB, opts core.Options) (bool, error) {
	for _, r := range prog.Rules {
		for _, sg := range r.Body {
			if l, ok := sg.(*ast.Lit); ok && l.Neg {
				return false, fmt.Errorf("stable: negation reduct not implemented for rule %q (the paper's examples are negation-free)", r)
			}
		}
	}
	en, err := core.New(prog, opts)
	if err != nil {
		return false, err
	}
	if en.Report.Admissible != nil {
		return false, fmt.Errorf("stable: reduced program is not monotonic: %w", en.Report.Admissible)
	}
	least, _, err := en.Solve(edb)
	if err != nil {
		return false, err
	}
	return least.Equal(m, nil), nil
}

// Enumerate searches for Kemp–Stuckey stable models among subsets of the
// candidate atom set. Atoms of predicates in fixed are kept in every
// candidate (typically the EDB); the remaining atoms are toggled. The
// search is exponential and guarded by maxFree.
func Enumerate(prog *ast.Program, candidates *wfs.Store, fixed map[ast.PredKey]bool, maxFree int, opts wfs.Options) ([]*wfs.Store, error) {
	return EnumerateContext(context.Background(), prog, candidates, fixed, maxFree, opts)
}

// EnumerateContext is Enumerate with cooperative cancellation: the
// candidate loop polls ctx and, when it fires, returns the stable
// models found so far alongside an error wrapping core.ErrCanceled.
func EnumerateContext(ctx context.Context, prog *ast.Program, candidates *wfs.Store, fixed map[ast.PredKey]bool, maxFree int, opts wfs.Options) ([]*wfs.Store, error) {
	type atom struct {
		k    ast.PredKey
		args []val.T
	}
	var free []atom
	base := wfs.NewStore()
	for _, k := range candidates.Preds() {
		k := k
		candidates.Each(k, func(args []val.T) bool {
			if fixed[k] {
				base.Add(k, args)
			} else {
				free = append(free, atom{k, args})
			}
			return true
		})
	}
	if len(free) > maxFree {
		return nil, fmt.Errorf("stable: %d free atoms exceed the enumeration bound %d", len(free), maxFree)
	}
	var out []*wfs.Store
	total := 1 << len(free)
	for mask := 0; mask < total; mask++ {
		select {
		case <-ctx.Done():
			sort.Slice(out, func(i, j int) bool { return out[i].Len() < out[j].Len() })
			return out, fmt.Errorf("stable: enumeration canceled after %d/%d candidates: %w (%v)", mask, total, enginerr.ErrCanceled, ctx.Err())
		default:
		}
		m := base.Clone()
		for i, a := range free {
			if mask&(1<<i) != 0 {
				m.Add(a.k, a.args)
			}
		}
		ok, err := IsStable(prog, m, opts)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Len() < out[j].Len() })
	return out, nil
}
