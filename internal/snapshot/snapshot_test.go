package snapshot

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ast"
	"repro/internal/faults"
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/val"
)

// testDB builds an interpretation exercising every value kind and both
// cost and non-cost relations, including a set-valued cost lattice and
// a default-value predicate.
func testDB(t *testing.T) (*relation.DB, ast.Schemas) {
	t.Helper()
	schemas := ast.Schemas{
		"edge/2": {Key: "edge/2", Arity: 2},
		"sp/3":   {Key: "sp/3", Arity: 3, HasCost: true, L: lattice.MinReal},
		"on/2":   {Key: "on/2", Arity: 2, HasCost: true, HasDefault: true, L: lattice.BoolOr},
		"rch/2":  {Key: "rch/2", Arity: 2, HasCost: true, L: lattice.SetUnion},
	}
	db := relation.NewDB(schemas)
	db.Rel("edge/2").InsertJoin([]val.T{val.Symbol("a"), val.String("b c")}, lattice.Elem{})
	db.Rel("edge/2").InsertJoin([]val.T{val.Number(-1.5), val.Boolean(true)}, lattice.Elem{})
	db.Rel("sp/3").InsertJoin([]val.T{val.Symbol("a"), val.Symbol("b")}, val.Number(3))
	db.Rel("sp/3").InsertJoin([]val.T{val.Symbol("a"), val.Symbol("c")}, val.Number(lattice.Inf))
	db.Rel("on/2").InsertJoin([]val.T{val.Symbol("w")}, val.Boolean(true))
	db.Rel("rch/2").InsertJoin([]val.T{val.Symbol("a")},
		val.SetOf(val.Symbol("x"), val.Number(2), val.SetOf(val.Symbol("nested"))))
	db.Rel("rch/2").InsertJoin([]val.T{val.Symbol("b")}, val.SetOf())
	return db, schemas
}

func testSnapshot(t *testing.T) (*Snapshot, ast.Schemas) {
	db, schemas := testDB(t)
	s := &Snapshot{Stats: Stats{Components: 2, Rounds: 7, Firings: 123, Derived: 45}, DB: db}
	for i := range s.Fingerprint {
		s.Fingerprint[i] = byte(i)
	}
	return s, schemas
}

func TestRoundTrip(t *testing.T) {
	s, schemas := testSnapshot(t)
	data := Encode(s)
	got, err := Decode(data, schemas)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !Equal(s, got) {
		t.Fatalf("round trip changed the snapshot:\n%s\nvs\n%s", s.DB, got.DB)
	}
	if got.Stats != s.Stats {
		t.Fatalf("stats %+v, want %+v", got.Stats, s.Stats)
	}
	// Relations restored for predicates the caller's schema knows must
	// share the schema's PredInfo.
	if got.DB.Rel("sp/3").Info != schemas["sp/3"] {
		t.Fatal("restored relation does not share the caller's PredInfo")
	}
	// Re-encoding the decoded snapshot must be byte-identical.
	if !bytes.Equal(Encode(got), data) {
		t.Fatal("encode∘decode is not the identity on bytes")
	}
}

func TestRoundTripWithoutSchemas(t *testing.T) {
	s, _ := testSnapshot(t)
	got, err := Decode(Encode(s), nil)
	if err != nil {
		t.Fatalf("decode without schemas: %v", err)
	}
	if !Equal(s, got) {
		t.Fatal("schema-free round trip changed the snapshot")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	s, _ := testSnapshot(t)
	a, b := Encode(s), Encode(s)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same snapshot differ")
	}
	// An equal DB built in a different insertion order encodes the same.
	db2, _ := testDB(t)
	db2.Rel("zzz/1") // extra *empty* relation must not change the bytes
	s2 := &Snapshot{Fingerprint: s.Fingerprint, Stats: s.Stats, DB: db2}
	if !bytes.Equal(Encode(s2), a) {
		t.Fatal("empty relations or construction order leaked into the encoding")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s, schemas := testSnapshot(t)
	data := Encode(s)
	cases := map[string][]byte{
		"empty":     {},
		"short":     data[:10],
		"truncated": data[:len(data)-5],
		"bad magic": append([]byte("XXXXXXX"), data[7:]...),
	}
	flipped := append([]byte{}, data...)
	flipped[len(flipped)/2] ^= 0x40
	cases["bit flip"] = flipped
	for name, b := range cases {
		if _, err := Decode(b, schemas); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	bad := append([]byte{}, data...)
	bad[len(magic)] = 99 // version byte
	if _, err := Decode(bad, schemas); !errors.Is(err, ErrVersion) {
		t.Errorf("version: err = %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsSchemaMismatch(t *testing.T) {
	s, _ := testSnapshot(t)
	data := Encode(s)
	other := ast.Schemas{
		"sp/3": {Key: "sp/3", Arity: 3, HasCost: true, L: lattice.MaxReal},
	}
	if _, err := Decode(data, other); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("lattice mismatch: err = %v, want ErrCorrupt", err)
	}
}

func TestVerifyFingerprint(t *testing.T) {
	s, _ := testSnapshot(t)
	if err := s.Verify(s.Fingerprint); err != nil {
		t.Fatalf("matching fingerprint rejected: %v", err)
	}
	var other [32]byte
	if err := s.Verify(other); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("mismatch: err = %v, want ErrFingerprint", err)
	}
}

func TestFingerprintCoversDeclarations(t *testing.T) {
	a := &ast.Program{CostDecls: []ast.CostDecl{{Pred: "p/2", Lattice: "minreal"}}}
	b := &ast.Program{CostDecls: []ast.CostDecl{{Pred: "p/2", Lattice: "maxreal"}}}
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("fingerprint ignores declarations")
	}
}

func TestFileSinkAtomicReplace(t *testing.T) {
	s, schemas := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "ckpt.snap")
	sink := &FileSink{Path: path}
	if err := sink.Write(s); err != nil {
		t.Fatal(err)
	}
	// Second write replaces the first atomically; the file must decode.
	s.Stats.Rounds++
	if err := sink.Write(s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, schemas)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Rounds != s.Stats.Rounds {
		t.Fatalf("read back rounds %d, want %d", got.Stats.Rounds, s.Stats.Rounds)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("left %d entries in the sink directory, want 1", len(entries))
	}
}

func TestFileSinkInjectedWriteFailure(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	s, _ := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "ckpt.snap")
	sink := &FileSink{Path: path}
	if err := sink.Write(s); err != nil {
		t.Fatal(err)
	}
	faults.Arm(faults.Fault{Point: faults.SnapshotSinkWrite, Sticky: true})
	if err := sink.Write(s); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	// The previous checkpoint must have survived the failed write.
	if _, err := ReadFile(path, nil); err != nil {
		t.Fatalf("previous checkpoint destroyed: %v", err)
	}
}

func TestReadFileShortRead(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	s, schemas := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "ckpt.snap")
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	faults.Arm(faults.Fault{Point: faults.SnapshotRestoreRead})
	if _, err := ReadFile(path, schemas); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short read: err = %v, want ErrCorrupt", err)
	}
	// Disarmed again, the file is intact.
	if _, err := ReadFile(path, schemas); err != nil {
		t.Fatal(err)
	}
}

func TestSeqWatermarkRoundTrip(t *testing.T) {
	s, schemas := testSnapshot(t)
	s.Seq = 1<<40 + 17
	got, err := Decode(Encode(s), schemas)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != s.Seq {
		t.Fatalf("seq %d, want %d", got.Seq, s.Seq)
	}
	if !Equal(s, got) {
		t.Fatal("round trip changed the snapshot")
	}
	// Seq participates in Equal.
	got.Seq++
	if Equal(s, got) {
		t.Fatal("Equal ignored the commit watermark")
	}
}

func TestDecodeAcceptsVersion1(t *testing.T) {
	s, schemas := testSnapshot(t)
	data := Encode(s)
	// Build the equivalent version-1 bytes by hand: drop the Seq
	// uvarint (a single zero byte here — every stat in testSnapshot is
	// below 128, so the four stats uvarints are one byte each), rewrite
	// the version byte, and recompute the trailer.
	seqOff := len(magic) + 1 + len(s.Fingerprint) + 4
	payload := append([]byte{}, data[:len(data)-32]...)
	if payload[seqOff] != 0 {
		t.Fatalf("expected zero Seq uvarint at offset %d, got %d", seqOff, payload[seqOff])
	}
	v1 := append(payload[:seqOff], payload[seqOff+1:]...)
	v1[len(magic)] = 1
	sum := sha256.Sum256(v1)
	v1 = append(v1, sum[:]...)
	got, err := Decode(v1, schemas)
	if err != nil {
		t.Fatalf("decoding version-1 snapshot: %v", err)
	}
	if got.Seq != 0 {
		t.Fatalf("version-1 snapshot decoded with seq %d, want 0", got.Seq)
	}
	if !Equal(s, got) {
		t.Fatal("version-1 decode lost data")
	}
}

func TestFileSinkDirSyncFailure(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	s, schemas := testSnapshot(t)
	path := filepath.Join(t.TempDir(), "ckpt.snap")
	faults.Arm(faults.Fault{Point: faults.SnapshotDirSync, Sticky: true})
	if err := WriteFile(path, s); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected dir-sync failure", err)
	}
	faults.Reset()
	if err := WriteFile(path, s); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path, schemas); err != nil {
		t.Fatal(err)
	}
}
