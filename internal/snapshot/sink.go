package snapshot

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/ast"
	"repro/internal/faults"
)

// Sink persists checkpoints emitted during evaluation. Write is called
// synchronously at fixpoint boundaries with a live view of the
// interpretation: implementations must finish with it (typically by
// encoding) before returning, and must not retain the snapshot's DB.
type Sink interface {
	Write(s *Snapshot) error
}

// FileSink atomically replaces Path with each checkpoint: the encoding
// is written to a temporary file in the same directory, synced, renamed
// over Path, and the directory is synced, so a crash mid-write leaves
// the previous checkpoint intact rather than a torn file — and a power
// cut after the rename cannot forget the rename itself.
type FileSink struct {
	Path string
}

// Write persists one checkpoint.
func (fs *FileSink) Write(s *Snapshot) error {
	return WriteFile(fs.Path, s)
}

// WriteFile writes one snapshot to path via the same atomic
// write-to-temp-then-rename protocol as FileSink.
func WriteFile(path string, s *Snapshot) error {
	if err := faults.Check(faults.SnapshotSinkWrite); err != nil {
		return fmt.Errorf("snapshot: sink write failed: %w", err)
	}
	data := Encode(s)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	// The rename is atomic but not durable until the directory itself
	// is synced: a power cut can otherwise forget the new dirent and
	// resurrect the old file — or leave neither.
	if err := syncDir(dir); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs a directory, making renames within it durable.
func syncDir(dir string) error {
	if err := faults.Check(faults.SnapshotDirSync); err != nil {
		return fmt.Errorf("snapshot: syncing directory %s: %w", dir, err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("snapshot: syncing directory %s: %w", dir, err)
	}
	return nil
}

// ReadFile loads and decodes a checkpoint file; schemas as in Decode.
// The faults.SnapshotRestoreRead point can mangle the bytes in tests to
// simulate torn or rotted files.
func ReadFile(path string, schemas ast.Schemas) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	data = faults.Apply(faults.SnapshotRestoreRead, data)
	return Decode(data, schemas)
}
