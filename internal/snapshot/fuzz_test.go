package snapshot

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"repro/internal/ast"
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/val"
)

// seedSnapshots builds real checkpoints — the shapes Encode actually
// produces — as the fuzz corpus: every value kind, cost and non-cost
// relations, nested sets, infinities, an empty interpretation.
func seedSnapshots() []*Snapshot {
	empty := &Snapshot{DB: relation.NewDB(ast.Schemas{})}

	schemas := ast.Schemas{
		"e/2": {Key: "e/2", Arity: 2},
		"s/3": {Key: "s/3", Arity: 3, HasCost: true, L: lattice.MinReal},
		"t/2": {Key: "t/2", Arity: 2, HasCost: true, HasDefault: true, L: lattice.BoolOr},
		"u/2": {Key: "u/2", Arity: 2, HasCost: true, L: lattice.SetUnion},
	}
	db := relation.NewDB(schemas)
	db.Rel("e/2").InsertJoin([]val.T{val.Symbol("a"), val.String("x y")}, lattice.Elem{})
	db.Rel("s/3").InsertJoin([]val.T{val.Symbol("a"), val.Symbol("b")}, val.Number(2.5))
	db.Rel("s/3").InsertJoin([]val.T{val.Number(0), val.Boolean(false)}, val.Number(lattice.Inf))
	db.Rel("t/2").InsertJoin([]val.T{val.Symbol("w")}, val.Boolean(true))
	db.Rel("u/2").InsertJoin([]val.T{val.Symbol("g")},
		val.SetOf(val.Number(1), val.SetOf(val.Symbol("n"), val.String("q"))))
	full := &Snapshot{
		Fingerprint: sha256.Sum256([]byte("seed program")),
		Stats:       Stats{Components: 3, Rounds: 12, Firings: 99, Derived: 42},
		DB:          db,
	}
	return []*Snapshot{empty, full}
}

// FuzzSnapshotRoundTrip asserts the two decoder contracts on arbitrary
// bytes: Decode never panics, and any input it accepts re-encodes to a
// stable canonical form (encode∘decode is the identity from the first
// re-encoding onward). The input is tried both raw and with a corrected
// checksum trailer, so the fuzzer can explore the structural decoder
// behind the integrity check.
func FuzzSnapshotRoundTrip(f *testing.F) {
	for _, s := range seedSnapshots() {
		f.Add(Encode(s))
		f.Add(Encode(s)[:len(magic)+1]) // header-only prefix
	}
	f.Add([]byte{})
	f.Add([]byte(magic))

	check := func(t *testing.T, data []byte) {
		s, err := Decode(data, nil) // must not panic
		if err != nil {
			return
		}
		enc := Encode(s)
		s2, err := Decode(enc, nil)
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v", err)
		}
		if !Equal(s, s2) {
			t.Fatal("decode(encode(s)) differs from s")
		}
		if !bytes.Equal(Encode(s2), enc) {
			t.Fatal("re-encoding is not byte-stable")
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		check(t, data)
		// Fix up the trailer so mutated payloads reach the structural
		// decoder instead of dying at the checksum.
		if len(data) >= len(magic)+1+sha256.Size {
			payload := data[:len(data)-sha256.Size]
			sum := sha256.Sum256(payload)
			check(t, append(append([]byte{}, payload...), sum[:]...))
		}
	})
}
