// Package snapshot serializes aggregate Herbrand interpretations
// (relation.DB) together with cumulative evaluation statistics and a
// program fingerprint into a versioned, deterministic, self-checking
// binary format — the durable checkpoints behind crash-recoverable
// fixpoint evaluation.
//
// Soundness of resuming from a snapshot rests on the monotonicity of
// T_P (Ross & Sagiv §3–§4): every intermediate interpretation of a
// bottom-up solve lies between the EDB and the least fixpoint, so the
// fixpoint restarted from a checkpointed sub-model converges to the
// same least model as an uninterrupted run. The fingerprint — a SHA-256
// of the program's canonical printing, declarations included — makes
// the one unsound case (resuming against a *different* program)
// impossible to hit silently.
//
// # Format (version 2)
//
//	magic   "MDLSNAP" + version byte
//	payload fingerprint[32]
//	        stats: components, rounds, firings, derived (uvarint each)
//	        seq (uvarint): commit-sequence watermark (version ≥ 2)
//	        npreds, then per predicate (sorted by key):
//	          key, flags (hasCost|hasDefault<<1), lattice name if cost,
//	          nrows, then per row (canonical row order):
//	            nargs, args..., cost if cost predicate
//	trailer SHA-256(magic ‖ payload)
//
// Values encode as a kind byte followed by a kind-specific body; sets
// encode their elements in canonical order, so equal interpretations
// encode to identical bytes. The trailer detects truncation and bit
// rot; Decode additionally bounds every count against the bytes that
// remain, and never panics on arbitrary input.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/ast"
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/val"
)

// Version is the current snapshot format version. Version 2 added the
// commit-sequence watermark; version-1 snapshots still decode (their
// watermark reads as 0).
const Version = 2

const magic = "MDLSNAP"

// Error classes, testable with errors.Is on anything Decode or a sink
// returns.
var (
	// ErrCorrupt marks a snapshot that is not decodable: wrong magic,
	// failed checksum (truncation, bit rot, torn write), or structurally
	// inconsistent contents.
	ErrCorrupt = errors.New("snapshot: corrupt or truncated checkpoint")
	// ErrVersion marks a snapshot written by an incompatible format
	// version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrFingerprint marks a snapshot whose program fingerprint does not
	// match the program it is being restored against; resuming it would
	// silently compute a model of the wrong program.
	ErrFingerprint = errors.New("snapshot: program fingerprint mismatch")
)

// Stats mirrors the engine's cumulative counters without importing it
// (snapshot is a leaf package usable below core).
type Stats struct {
	Components int
	Rounds     int
	Firings    int64
	Derived    int64
}

// Snapshot is one durable checkpoint: the interpretation, the work done
// to reach it, and the identity of the program that produced it.
type Snapshot struct {
	Fingerprint [32]byte
	Stats       Stats
	// Seq is the serve tier's commit-sequence watermark: the snapshot
	// subsumes every logged assert batch with sequence number ≤ Seq, so
	// WAL replay over it starts at Seq+1 and compaction may drop
	// segments it covers. 0 for engine checkpoints taken mid-solve and
	// for version-1 snapshots.
	Seq uint64
	DB  *relation.DB
}

// Fingerprint hashes a program's canonical printing — rules,
// constraints and declarations — so that a checkpoint can never be
// resumed against a different program.
func Fingerprint(prog *ast.Program) [32]byte {
	return sha256.Sum256([]byte(prog.String()))
}

// Encode serializes s deterministically: equal snapshots (same
// interpretation, stats and fingerprint) produce identical bytes.
func Encode(s *Snapshot) []byte {
	var b bytes.Buffer
	b.WriteString(magic)
	b.WriteByte(Version)
	b.Write(s.Fingerprint[:])
	putUvarint(&b, uint64(s.Stats.Components))
	putUvarint(&b, uint64(s.Stats.Rounds))
	putUvarint(&b, uint64(s.Stats.Firings))
	putUvarint(&b, uint64(s.Stats.Derived))
	putUvarint(&b, s.Seq)

	// Only non-empty relations are written: lazily materialized empty
	// relations carry no information, and skipping them makes encoding
	// insensitive to which predicates happen to have been touched.
	var preds []ast.PredKey
	if s.DB != nil {
		for _, k := range s.DB.Preds() {
			if s.DB.Rel(k).Len() > 0 {
				preds = append(preds, k)
			}
		}
	}
	putUvarint(&b, uint64(len(preds)))
	for _, k := range preds {
		r := s.DB.Rel(k)
		putString(&b, string(k))
		var flags byte
		if r.Info.HasCost {
			flags |= 1
		}
		if r.Info.HasDefault {
			flags |= 2
		}
		b.WriteByte(flags)
		if r.Info.HasCost {
			putString(&b, r.Info.L.Name())
		}
		putUvarint(&b, uint64(r.Len()))
		for _, row := range r.Rows() {
			putUvarint(&b, uint64(len(row.Args)))
			for _, a := range row.Args {
				encodeVal(&b, a)
			}
			if r.Info.HasCost {
				encodeVal(&b, row.Cost)
			}
		}
	}
	sum := sha256.Sum256(b.Bytes())
	b.Write(sum[:])
	return b.Bytes()
}

// Decode parses a snapshot. schemas, when non-nil, supplies the
// authoritative PredInfo for predicates it knows (so restored relations
// share the engine's schema objects); predicates missing from it are
// reconstructed from the encoded metadata. The caller's schema map is
// never mutated. Decode never panics, whatever the input.
func Decode(data []byte, schemas ast.Schemas) (*Snapshot, error) {
	if len(data) < len(magic)+1+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	version := data[len(magic)]
	if version != 1 && version != Version {
		return nil, fmt.Errorf("%w: got version %d, support versions 1-%d", ErrVersion, version, Version)
	}
	payload, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}

	d := &decoder{buf: payload[len(magic)+1:]}
	s := &Snapshot{}
	if n := copy(s.Fingerprint[:], d.buf); n < len(s.Fingerprint) {
		return nil, d.corrupt("fingerprint")
	}
	d.buf = d.buf[len(s.Fingerprint):]
	var err error
	if s.Stats, err = d.stats(); err != nil {
		return nil, err
	}
	if version >= 2 {
		if s.Seq, err = d.uvarint("commit watermark"); err != nil {
			return nil, err
		}
	}

	// Schema map for the restored DB: seeded from the caller's (shared
	// PredInfo pointers, fresh map) so relation.DB can materialize
	// lazily without touching the original.
	sc := ast.Schemas{}
	for k, pi := range schemas {
		sc[k] = pi
	}
	db := relation.NewDB(sc)
	s.DB = db

	npreds, err := d.count("predicates")
	if err != nil {
		return nil, err
	}
	for i := 0; i < npreds; i++ {
		if err := d.relation(db, schemas); err != nil {
			return nil, err
		}
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf))
	}
	return s, nil
}

// Verify checks a decoded snapshot against the fingerprint of the
// program it is about to be resumed into.
func (s *Snapshot) Verify(fingerprint [32]byte) error {
	if s.Fingerprint != fingerprint {
		return fmt.Errorf("%w: checkpoint is from program %x…, resuming program %x…",
			ErrFingerprint, s.Fingerprint[:6], fingerprint[:6])
	}
	return nil
}

// maxSetDepth bounds nested-set recursion while decoding, so a
// pathological input cannot overflow the stack.
const maxSetDepth = 64

type decoder struct {
	buf []byte
}

func (d *decoder) corrupt(what string) error {
	return fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
}

func (d *decoder) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, d.corrupt(what)
	}
	d.buf = d.buf[n:]
	return v, nil
}

// count reads a uvarint that counts upcoming encoded items; since every
// item occupies at least one byte, a count exceeding the remaining
// bytes is corrupt (and this bound keeps allocations proportional to
// the input).
func (d *decoder) count(what string) (int, error) {
	v, err := d.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.buf)) {
		return 0, fmt.Errorf("%w: %s count %d exceeds %d remaining bytes", ErrCorrupt, what, v, len(d.buf))
	}
	return int(v), nil
}

func (d *decoder) string(what string) (string, error) {
	n, err := d.count(what)
	if err != nil {
		return "", err
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

func (d *decoder) byte(what string) (byte, error) {
	if len(d.buf) == 0 {
		return 0, d.corrupt(what)
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func (d *decoder) stats() (Stats, error) {
	var st Stats
	comp, err := d.uvarint("stats")
	if err != nil {
		return st, err
	}
	rounds, err := d.uvarint("stats")
	if err != nil {
		return st, err
	}
	firings, err := d.uvarint("stats")
	if err != nil {
		return st, err
	}
	derived, err := d.uvarint("stats")
	if err != nil {
		return st, err
	}
	const maxInt = uint64(^uint(0) >> 1)
	if comp > maxInt || rounds > maxInt || firings > math.MaxInt64 || derived > math.MaxInt64 {
		return st, fmt.Errorf("%w: stats counter overflow", ErrCorrupt)
	}
	st.Components, st.Rounds = int(comp), int(rounds)
	st.Firings, st.Derived = int64(firings), int64(derived)
	return st, nil
}

func (d *decoder) relation(db *relation.DB, schemas ast.Schemas) error {
	keyStr, err := d.string("predicate key")
	if err != nil {
		return err
	}
	flags, err := d.byte("predicate flags")
	if err != nil {
		return err
	}
	hasCost := flags&1 != 0
	hasDefault := flags&2 != 0
	if flags > 3 || (hasDefault && !hasCost) {
		// A default requires a cost lattice (§2.3.2); no real schema
		// encodes this, and a nil lattice would crash the relation.
		return fmt.Errorf("%w: bad flags %#x for %s", ErrCorrupt, flags, keyStr)
	}
	var l lattice.Lattice
	if hasCost {
		name, err := d.string("lattice name")
		if err != nil {
			return err
		}
		var ok bool
		if l, ok = lattice.ByName(name); !ok {
			return fmt.Errorf("%w: unknown lattice %q for %s", ErrCorrupt, name, keyStr)
		}
	}

	name, arity, err := splitKey(keyStr)
	if err != nil {
		return err
	}
	key := ast.MakePredKey(name, arity)
	if db.Has(key) {
		return fmt.Errorf("%w: duplicate predicate %s", ErrCorrupt, key)
	}
	pi := schemas.Info(key)
	if pi != nil {
		// The caller's schema is authoritative; the encoded metadata
		// must agree with it or the snapshot belongs to another program.
		if pi.HasCost != hasCost || pi.HasDefault != hasDefault ||
			(hasCost && pi.L.Name() != l.Name()) {
			return fmt.Errorf("%w: schema of %s disagrees with the program", ErrCorrupt, key)
		}
	} else {
		pi = &ast.PredInfo{Key: key, Arity: arity, HasCost: hasCost, HasDefault: hasDefault, L: l}
		db.Schemas[key] = pi
	}

	rel := db.Rel(key)
	nrows, err := d.count("rows")
	if err != nil {
		return err
	}
	wantArgs := arity
	if hasCost {
		wantArgs = arity - 1
	}
	for i := 0; i < nrows; i++ {
		nargs, err := d.count("arguments")
		if err != nil {
			return err
		}
		if nargs != wantArgs {
			return fmt.Errorf("%w: %s row has %d arguments, want %d", ErrCorrupt, key, nargs, wantArgs)
		}
		args := make([]val.T, nargs)
		for j := range args {
			if args[j], err = d.val(0); err != nil {
				return err
			}
		}
		cost := lattice.Elem{}
		if hasCost {
			if cost, err = d.val(0); err != nil {
				return err
			}
			if !pi.L.Contains(cost) {
				return fmt.Errorf("%w: cost %s of %s outside lattice %s", ErrCorrupt, cost, key, pi.L.Name())
			}
		}
		rel.InsertJoin(args, cost)
	}
	if rel.Len() != nrows {
		// Duplicate rows, or virtual default rows stored in the core:
		// neither is producible by Encode.
		return fmt.Errorf("%w: %s declared %d rows, stored %d", ErrCorrupt, key, nrows, rel.Len())
	}
	return nil
}

func (d *decoder) val(depth int) (val.T, error) {
	if depth > maxSetDepth {
		return val.T{}, fmt.Errorf("%w: set nesting exceeds depth %d", ErrCorrupt, maxSetDepth)
	}
	kind, err := d.byte("value kind")
	if err != nil {
		return val.T{}, err
	}
	switch val.Kind(kind) {
	case val.Sym, val.Str:
		s, err := d.string("value text")
		if err != nil {
			return val.T{}, err
		}
		return val.T{Kind: val.Kind(kind), S: s}, nil
	case val.Num:
		if len(d.buf) < 8 {
			return val.T{}, d.corrupt("number")
		}
		bits := binary.BigEndian.Uint64(d.buf)
		d.buf = d.buf[8:]
		n := math.Float64frombits(bits)
		if math.IsNaN(n) {
			return val.T{}, fmt.Errorf("%w: NaN numeric value", ErrCorrupt)
		}
		return val.Number(n), nil
	case val.Bool:
		b, err := d.byte("boolean")
		if err != nil {
			return val.T{}, err
		}
		if b > 1 {
			return val.T{}, fmt.Errorf("%w: boolean byte %d", ErrCorrupt, b)
		}
		return val.Boolean(b == 1), nil
	case val.SetKind:
		n, err := d.count("set elements")
		if err != nil {
			return val.T{}, err
		}
		elems := make([]val.T, n)
		for i := range elems {
			if elems[i], err = d.val(depth + 1); err != nil {
				return val.T{}, err
			}
		}
		return val.T{Kind: val.SetKind, Set: val.NewSet(elems)}, nil
	}
	return val.T{}, fmt.Errorf("%w: unknown value kind %d", ErrCorrupt, kind)
}

func encodeVal(b *bytes.Buffer, v val.T) {
	b.WriteByte(byte(v.Kind))
	switch v.Kind {
	case val.Sym, val.Str:
		putString(b, v.S)
	case val.Num:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.N))
		b.Write(buf[:])
	case val.Bool:
		if v.B {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	case val.SetKind:
		var elems []val.T
		if v.Set != nil {
			elems = v.Set.Elems() // already in canonical order
		}
		putUvarint(b, uint64(len(elems)))
		for _, e := range elems {
			encodeVal(b, e)
		}
	}
}

func putUvarint(b *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	b.Write(buf[:binary.PutUvarint(buf[:], v)])
}

func putString(b *bytes.Buffer, s string) {
	putUvarint(b, uint64(len(s)))
	b.WriteString(s)
}

// splitKey parses "name/arity" back into its parts.
func splitKey(s string) (string, int, error) {
	i := strings.LastIndexByte(s, '/')
	if i <= 0 {
		return "", 0, fmt.Errorf("%w: bad predicate key %q", ErrCorrupt, s)
	}
	arity, err := strconv.Atoi(s[i+1:])
	if err != nil || arity < 0 {
		return "", 0, fmt.Errorf("%w: bad predicate key %q", ErrCorrupt, s)
	}
	return s[:i], arity, nil
}

// Equal reports whether two snapshots carry the same fingerprint,
// stats, watermark and interpretation (lattice equality on every
// relation).
func Equal(a, b *Snapshot) bool {
	return a.Fingerprint == b.Fingerprint && a.Stats == b.Stats && a.Seq == b.Seq && a.DB.Equal(b.DB, nil)
}
