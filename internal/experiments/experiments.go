// Package experiments regenerates every experiment in EXPERIMENTS.md:
// the Figure 1 aggregate catalog and each of the paper's worked examples
// and semantic comparisons (Ross & Sagiv, PODS 1992), with timings of the
// deductive engine against the direct algorithmic baselines. The
// cmd/experiments command is a thin wrapper around Run.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lattice"
	"repro/internal/monotone"
	"repro/internal/parser"
	"repro/internal/programs"
	"repro/internal/relation"
	"repro/internal/rewrite"
	"repro/internal/stable"
	"repro/internal/val"
	"repro/internal/wfs"
)

// Config selects sizes and the experiment subset.
type Config struct {
	// Quick shrinks problem sizes for fast runs.
	Quick bool
	// Only, when non-empty, runs just the experiment with this id
	// (e.g. "E3").
	Only string
}

// state carries the run configuration and output sink through the
// experiment functions.
type state struct {
	w     io.Writer
	quick bool
}

// List returns the experiment ids and titles in order.
func List() [][2]string {
	var out [][2]string
	for _, e := range registry() {
		out = append(out, [2]string{e.id, e.name})
	}
	return out
}

type exp struct {
	id   string
	name string
	fn   func(*state)
}

func registry() []exp {
	return []exp{
		{"E1", "Figure 1 — monotonic aggregate functions", (*state).e1},
		{"E2", "Example 2.1 — grouped averages", (*state).e2},
		{"E3", "Example 2.6/3.1 — shortest path", (*state).e3},
		{"E4", "Example 2.7 — company control", (*state).e4},
		{"E5", "Example 4.3 — party invitations", (*state).e5},
		{"E6", "Example 4.4 — circuit evaluation", (*state).e6},
		{"E7", "§3 — two minimal models", (*state).e7},
		{"E8", "Example 3.1 + §5.5 — stable models", (*state).e8},
		{"E9", "§5.3 — well-founded comparison", (*state).e9},
		{"E10", "§5.4 — GGZ min/max rewriting", (*state).e10},
		{"E11", "Example 5.1 — halfsum ω-limit", (*state).e11},
		{"E12", "§6.2 — naive vs semi-naive", (*state).e12},
		{"E13", "§5.1–5.2 — stratification ladder", (*state).e13},
	}
}

// Run executes the selected experiments, writing the report to w.
func Run(w io.Writer, cfg Config) error {
	st := &state{w: w, quick: cfg.Quick}
	ran := false
	for _, e := range registry() {
		if cfg.Only != "" && cfg.Only != e.id {
			continue
		}
		ran = true
		fmt.Fprintf(w, "\n## %s: %s\n\n", e.id, e.name)
		e.fn(st)
	}
	if !ran {
		return fmt.Errorf("experiments: unknown experiment id %q", cfg.Only)
	}
	return nil
}

// fatal aborts the experiment run: the harness computes over verified
// generators, so any error here is a programming bug.
func fatal(err error) {
	panic(fmt.Sprintf("experiments: %v", err))
}

func mustSolve(src string, opts core.Options) (*relation.DB, core.Stats) {
	prog, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	en, err := core.New(prog, opts)
	if err != nil {
		fatal(err)
	}
	db, stats, err := en.Solve(nil)
	if err != nil {
		fatal(err)
	}
	return db, stats
}

func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func (st *state) row(cols ...string) {
	fmt.Fprintf(st.w, "| %s |\n", strings.Join(cols, " | "))
}

func sym(format string, args ...any) val.T {
	return val.Symbol(fmt.Sprintf(format, args...))
}

// e1 reproduces Figure 1: every aggregate with its domain structure, and
// a randomized check of (pseudo-)monotonicity.
func (st *state) e1() {
	universe := val.NewSet([]val.T{val.Symbol("a"), val.Symbol("b"), val.Symbol("c"), val.Symbol("d"), val.Symbol("e")})
	aggs := []lattice.Aggregate{
		lattice.Max, lattice.Min, lattice.Sum, lattice.And, lattice.Or,
		lattice.Product, lattice.Count, lattice.Union,
		lattice.NewIntersection("e1_intersection", universe),
		lattice.NewProperty("e1_property_p4", lattice.HasPathProperty(4)),
		lattice.Average, lattice.Halfsum,
	}
	trials := 4000
	if st.quick {
		trials = 500
	}
	st.row("F", "domain D", "⊑_D", "⊥_D", "range R", "⊥_R", "class", "violations/"+fmt.Sprint(trials))
	st.row("---", "---", "---", "---", "---", "---", "---", "---")
	for _, a := range aggs {
		viol := checkMonotone(a, trials, a.Monotone())
		class := "monotonic"
		if !a.Monotone() {
			class = "pseudo-monotonic"
		}
		st.row(a.Name(), a.Domain().Name(), orderName(a.Domain()), a.Domain().Bottom().String(),
			a.Range().Name(), a.Range().Bottom().String(), class, fmt.Sprint(viol))
	}
	fmt.Fprintln(st.w, "\nMonotone rows are checked on random multiset pairs I ⊑ I';")
	fmt.Fprintln(st.w, "pseudo-monotone rows on equal-cardinality pairs (Definition 4.1).")
}

func orderName(l lattice.Lattice) string {
	switch l.Name() {
	case "minreal":
		return ">="
	case "booland":
		return ">="
	default:
		if strings.HasPrefix(l.Name(), "e1_intersection") {
			return "⊇"
		}
		if l.Name() == "setunion" {
			return "⊆"
		}
		return "<="
	}
}

func checkMonotone(a lattice.Aggregate, trials int, full bool) int {
	r := rand.New(rand.NewSource(1))
	viol := 0
	for i := 0; i < trials; i++ {
		lo, hi := randomPair(a.Domain(), r, !full)
		flo, ok1 := a.Apply(lo)
		fhi, ok2 := a.Apply(hi)
		if !ok1 || !ok2 {
			continue
		}
		if !a.Range().Leq(flo, fhi) {
			viol++
		}
	}
	return viol
}

func randomPair(d lattice.Lattice, r *rand.Rand, equalCard bool) (lo, hi []lattice.Elem) {
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		e := randomElem(d, r)
		hi = append(hi, e)
		if equalCard || r.Intn(4) > 0 {
			lo = append(lo, d.Meet(e, randomElem(d, r)))
		}
	}
	return lo, hi
}

func randomElem(d lattice.Lattice, r *rand.Rand) lattice.Elem {
	switch d.Name() {
	case "booland", "boolor":
		return val.Boolean(r.Intn(2) == 1)
	case "prodnat":
		return val.Number(float64(1 + r.Intn(9)))
	case "countnat", "sumreal":
		return val.Number(float64(r.Intn(20)))
	case "maxreal", "minreal":
		return val.Number(float64(r.Intn(41) - 20))
	default: // set-valued domains (union, intersection, edge sets)
		var elems []val.T
		for _, s := range []string{"a", "b", "c", "d", "e"} {
			if r.Intn(2) == 0 {
				elems = append(elems, val.Symbol(s))
			}
		}
		return val.SetOf(elems...)
	}
}

// e2 reruns Example 2.1 and prints the aggregate family.
func (st *state) e2() {
	src := programs.Averages + `
record(john, math, 80).
record(john, physics, 60).
record(mary, math, 90).
courses(math). courses(physics). courses(art).
`
	db, _ := mustSolve(src, core.Options{})
	for _, pred := range []string{"s_avg/2", "c_avg/2", "all_avg/1", "class_count/2", "alt_class_count/2"} {
		rel := db.Rel(ast.PredKey(pred))
		for _, r := range rel.Rows() {
			fmt.Fprintln(st.w, "  "+relation.FormatFact(ast.PredKey(pred).Name(), r))
		}
	}
	fmt.Fprintln(st.w, "\nNote all_avg = 72.5 (mean of class means), not the record mean 76.7 —")
	fmt.Fprintln(st.w, "the weighting difference Example 2.1 points out.")
}

// e3 sweeps shortest path against Dijkstra and checks Example 3.1.
func (st *state) e3() {
	sizesOf := func(kind gen.GraphKind) []int {
		if st.quick {
			return []int{32, 64}
		}
		if kind == gen.LayeredDAG {
			return []int{64, 128, 256}
		}
		return []int{32, 64, 128} // dense reachability grows quadratically
	}
	st.row("topology", "n", "edges", "engine (semi-naive)", "Dijkstra all-pairs", "s tuples", "agree")
	st.row("---", "---", "---", "---", "---", "---", "---")
	for _, kind := range []gen.GraphKind{gen.LayeredDAG, gen.CycleGraph, gen.RandomGraph} {
		for _, n := range sizesOf(kind) {
			g := gen.Graph(kind, n, 4*n, 9, int64(n))
			src := programs.ShortestPath + gen.GraphFacts(g)
			var db *relation.DB
			dEng := timeIt(func() { db, _ = mustSolve(src, core.Options{}) })
			var dist [][]float64
			dBase := timeIt(func() { dist = baseline.AllPairs(g) })
			agree := true
			count := 0
			for u := 0; u < g.N && agree; u++ {
				for v := 0; v < g.N; v++ {
					r, ok := db.Rel("s/3").Get([]val.T{sym("v%d", u), sym("v%d", v)})
					if math.IsInf(dist[u][v], 1) != !ok {
						agree = false
						break
					}
					if ok {
						count++
						if r.Cost.N != dist[u][v] {
							agree = false
							break
						}
					}
				}
			}
			st.row(kindName(kind), fmt.Sprint(n), fmt.Sprint(len(g.Edges)),
				dEng.String(), dBase.String(), fmt.Sprint(count), fmt.Sprint(agree))
		}
	}
	// Example 3.1 exact check.
	db, _ := mustSolve(programs.ShortestPath+"arc(a, b, 1).\narc(b, b, 0).\n", core.Options{})
	r, _ := db.Rel("s/3").Get([]val.T{val.Symbol("a"), val.Symbol("b")})
	fmt.Fprintf(st.w, "\nExample 3.1 (cyclic): least model picks s(a,b,%g) — M1, not M2's 0.\n", r.Cost.N)
	// Negative weights on a DAG vs Bellman-Ford.
	gd := gen.Graph(gen.LayeredDAG, 48, 200, 9, 5)
	for i := range gd.Edges {
		if i%3 == 0 {
			gd.Edges[i].W = -gd.Edges[i].W / 3
		}
	}
	db, _ = mustSolve(programs.ShortestPath+gen.GraphFacts(gd), core.Options{})
	ok := true
	for u := 0; u < gd.N; u++ {
		want, err := baseline.BellmanFord(gd, u)
		if err != nil {
			fatal(err)
		}
		for v := 0; v < gd.N; v++ {
			r, found := db.Rel("s/3").Get([]val.T{sym("v%d", u), sym("v%d", v)})
			if found != !math.IsInf(want[v], 1) || (found && r.Cost.N != want[v]) {
				ok = false
			}
		}
	}
	fmt.Fprintf(st.w, "Negative-weight DAG vs Bellman–Ford (§5.4: beyond cost-monotonicity): agree=%v\n", ok)
}

func kindName(k gen.GraphKind) string {
	switch k {
	case gen.LayeredDAG:
		return "layered DAG"
	case gen.CycleGraph:
		return "cycle+chords"
	case gen.GridGraph:
		return "grid"
	default:
		return "random"
	}
}

// e4 sweeps company control and prints the Van Gelder discriminating EDB.
func (st *state) e4() {
	sizes := []int{16, 64, 256}
	if st.quick {
		sizes = []int{8, 32}
	}
	st.row("n", "cyclic", "engine", "direct solver", "controls", "agree")
	st.row("---", "---", "---", "---", "---", "---")
	for _, n := range sizes {
		for _, cyclic := range []bool{false, true} {
			o := gen.Ownership(n, 3, cyclic, int64(n))
			src := programs.CompanyControl + gen.OwnershipFacts(o)
			var db *relation.DB
			dEng := timeIt(func() { db, _ = mustSolve(src, core.Options{}) })
			var controls [][]bool
			dBase := timeIt(func() { controls, _ = baseline.CompanyControl(o) })
			agree := true
			count := 0
			for x := 0; x < n; x++ {
				for y := 0; y < n; y++ {
					if x == y {
						continue
					}
					_, got := db.Rel("c/2").Get([]val.T{sym("c%d", x), sym("c%d", y)})
					if got {
						count++
					}
					if got != controls[x][y] {
						agree = false
					}
				}
			}
			st.row(fmt.Sprint(n), fmt.Sprint(cyclic), dEng.String(), dBase.String(),
				fmt.Sprint(count), fmt.Sprint(agree))
		}
	}
	src := programs.CompanyControl + `
s(a, b, 0.3). s(a, c, 0.3). s(b, c, 0.6). s(c, b, 0.6).
`
	db, _ := mustSolve(src, core.Options{})
	_, ab := db.Rel("c/2").Get([]val.T{val.Symbol("a"), val.Symbol("b")})
	_, bc := db.Rel("c/2").Get([]val.T{val.Symbol("b"), val.Symbol("c")})
	fmt.Fprintf(st.w, "\n§5.6 EDB: c(a,b)=%v c(b,c)=%v — for us c(a,b)/c(a,c) are *false*;\n", ab, bc)
	fmt.Fprintln(st.w, "Van Gelder's translation would leave them undefined (documented contrast).")
}

// e5 sweeps party invitations.
func (st *state) e5() {
	sizes := []int{64, 256, 1024}
	if st.quick {
		sizes = []int{32, 128}
	}
	st.row("n", "engine", "direct solver", "coming", "agree")
	st.row("---", "---", "---", "---", "---")
	for _, n := range sizes {
		p := gen.Party(n, 5, 3, int64(n))
		src := programs.Party + gen.PartyFacts(p)
		var db *relation.DB
		dEng := timeIt(func() { db, _ = mustSolve(src, core.Options{}) })
		var want []bool
		dBase := timeIt(func() { want = p.Attendance() })
		agree := true
		count := 0
		for x := 0; x < n; x++ {
			_, got := db.Rel("coming/1").Get([]val.T{sym("g%d", x)})
			if got {
				count++
			}
			if got != want[x] {
				agree = false
			}
		}
		st.row(fmt.Sprint(n), dEng.String(), dBase.String(), fmt.Sprint(count), fmt.Sprint(agree))
	}
}

// e6 sweeps circuits.
func (st *state) e6() {
	sizes := []int{64, 256, 1024}
	if st.quick {
		sizes = []int{32, 128}
	}
	st.row("gates", "cyclic", "engine", "simulator", "true wires", "agree")
	st.row("---", "---", "---", "---", "---", "---")
	for _, n := range sizes {
		for _, cyclic := range []bool{false, true} {
			c := gen.Circuit(n, n/5, 3, cyclic, int64(n))
			src := programs.Circuit + gen.CircuitFacts(c)
			var db *relation.DB
			dEng := timeIt(func() { db, _ = mustSolve(src, core.Options{}) })
			var want []bool
			dBase := timeIt(func() { want = c.Eval() })
			agree := true
			count := 0
			for i := 0; i < n; i++ {
				r, _ := db.Rel("t/2").GetOrDefault([]val.T{sym("n%d", i)})
				if r.Cost.B {
					count++
				}
				if r.Cost.B != want[i] {
					agree = false
				}
			}
			st.row(fmt.Sprint(n), fmt.Sprint(cyclic), dEng.String(), dBase.String(),
				fmt.Sprint(count), fmt.Sprint(agree))
		}
	}
}

// e7 shows the §3 program being rejected and its two minimal models.
func (st *state) e7() {
	prog, err := parser.Parse(programs.TwoMinimalModels)
	if err != nil {
		fatal(err)
	}
	_, err = core.New(prog, core.Options{})
	fmt.Fprintf(st.w, "admissibility check: %v\n\n", err)
	// Its two minimal Herbrand models, found by stable-model search over
	// the four candidate atoms.
	candidates := wfs.NewStore()
	for _, a := range []string{"a", "b"} {
		candidates.Add("p/1", []val.T{val.Symbol(a)})
		candidates.Add("q/1", []val.T{val.Symbol(a)})
	}
	models, err := stable.Enumerate(prog, candidates, nil, 8, wfs.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(st.w, "stable models found: %d (the paper's two minimal models)\n", len(models))
	for i, m := range models {
		var atoms []string
		for _, k := range m.Preds() {
			k := k
			m.Each(k, func(args []val.T) bool {
				atoms = append(atoms, fmt.Sprintf("%s(%s)", k.Name(), args[0]))
				return true
			})
		}
		sort.Strings(atoms)
		fmt.Fprintf(st.w, "  M%d = {%s}\n", i+1, strings.Join(atoms, ", "))
	}
}

// e8 reproduces Example 3.1's incomparable stable models.
func (st *state) e8() {
	src := programs.ShortestPath + "arc(a, b, 1).\narc(b, b, 0).\n"
	prog, err := parser.Parse(src)
	if err != nil {
		fatal(err)
	}
	en, err := core.New(prog, core.Options{})
	if err != nil {
		fatal(err)
	}
	m1, _, err := en.Solve(nil)
	if err != nil {
		fatal(err)
	}
	m2 := m1.Clone()
	m2.AddFact("s", []val.T{val.Symbol("a"), val.Symbol("b")}, val.Number(0))
	m2.AddFact("path", []val.T{val.Symbol("a"), val.Symbol("b"), val.Symbol("b")}, val.Number(0))
	s1, s2 := wfs.FromDB(m1), wfs.FromDB(m2)
	ks1, _ := stable.IsStable(prog, s1, wfs.Options{})
	ks2, _ := stable.IsStable(prog, s2, wfs.Options{})
	ms1, _ := stable.IsMonotonicStable(prog, nil, m1, core.Options{})
	ms2, _ := stable.IsMonotonicStable(prog, nil, m2, core.Options{})
	st.row("model", "s(a,b)", "Kemp–Stuckey stable", "monotonic-reduct stable (§5.5)")
	st.row("---", "---", "---", "---")
	st.row("M1 (least)", "1", fmt.Sprint(ks1), fmt.Sprint(ms1))
	st.row("M2", "0", fmt.Sprint(ks2), fmt.Sprint(ms2))
	fmt.Fprintln(st.w, "\nBoth are Kemp–Stuckey stable (the §5.3 flaw); the alternative §5.5")
	fmt.Fprintln(st.w, "monotonic-reduct stability selects exactly the paper's least model M1.")
}

// e9 compares the well-founded semantics with the minimal model.
func (st *state) e9() {
	cases := []struct {
		name string
		src  string
	}{
		{"shortest path, acyclic", programs.ShortestPath + "arc(a,b,1).\narc(b,c,2).\narc(a,c,5).\n"},
		{"shortest path, cyclic (Ex 3.1)", programs.ShortestPath + "arc(a,b,1).\narc(b,b,0).\n"},
		{"party, acyclic", programs.Party + "requires(a,0).\nrequires(b,1).\nknows(b,a).\n"},
		{"party, cyclic", programs.Party + "requires(x,1).\nrequires(y,1).\nknows(x,y).\nknows(y,x).\n"},
	}
	st.row("instance", "WFS true", "WFS undefined", "two-valued", "WFS-true set = minimal model")
	st.row("---", "---", "---", "---", "---")
	for _, c := range cases {
		prog, err := parser.Parse(c.src)
		if err != nil {
			fatal(err)
		}
		res, err := wfs.Solve(prog, wfs.Options{})
		if err != nil {
			fatal(err)
		}
		db, _ := mustSolve(c.src, core.Options{})
		agrees := wfs.FromDB(db).Equal(res.True)
		st.row(c.name, fmt.Sprint(res.True.Len()), fmt.Sprint(res.UndefinedCount()),
			fmt.Sprint(res.TwoValued()), fmt.Sprint(agrees))
	}
	fmt.Fprintln(st.w, "\nOn cycles the Kemp–Stuckey WFS goes undefined exactly where the")
	fmt.Fprintln(st.w, "monotonic minimal model stays total (§5.3).")
}

// e10 benchmarks native aggregation against the GGZ rewriting.
func (st *state) e10() {
	sizes := []int{16, 32, 64}
	if st.quick {
		sizes = []int{8, 16}
	}
	st.row("layered DAG n", "native engine", "GGZ rewrite + WFS", "agree on s", "speedup")
	st.row("---", "---", "---", "---", "---")
	for _, n := range sizes {
		g := gen.Graph(gen.LayeredDAG, n, 3*n, 9, int64(n))
		src := programs.ShortestPath + gen.GraphFacts(g)
		prog, err := parser.Parse(src)
		if err != nil {
			fatal(err)
		}
		var db *relation.DB
		dNative := timeIt(func() { db, _ = mustSolve(src, core.Options{}) })
		norm, err := rewrite.MinMax(prog)
		if err != nil {
			fatal(err)
		}
		var res *wfs.Result
		dGGZ := timeIt(func() {
			res, err = wfs.Solve(norm, wfs.Options{MaxAtoms: 2000000})
		})
		if err != nil {
			fatal(err)
		}
		agree := true
		db.Rel("s/3").Each(func(r relation.Row) bool {
			args := append(append([]val.T{}, r.Args...), r.Cost)
			if res.Status("s/3", args) != wfs.True {
				agree = false
			}
			return true
		})
		nWFS := 0
		res.True.Each("s/3", func([]val.T) bool { nWFS++; return true })
		if nWFS != db.Rel("s/3").Len() {
			agree = false
		}
		st.row(fmt.Sprint(n), dNative.String(), dGGZ.String(), fmt.Sprint(agree),
			fmt.Sprintf("%.0fx", float64(dGGZ)/float64(dNative)))
	}
	// Divergence on a positive cycle.
	src := programs.ShortestPath + "arc(a,b,1).\narc(b,a,1).\n"
	prog, _ := parser.Parse(src)
	norm, _ := rewrite.MinMax(prog)
	_, err := wfs.Solve(norm, wfs.Options{MaxAtoms: 400, MaxIters: 200})
	db, _ := mustSolve(src, core.Options{})
	r, _ := db.Rel("s/3").Get([]val.T{val.Symbol("a"), val.Symbol("a")})
	fmt.Fprintf(st.w, "\nPositive cycle: native terminates (s(a,a)=%g); rewrite diverges: %v\n", r.Cost.N, err != nil)
	fmt.Fprintln(st.w, "(the cost FD bounds the native path relation; the set-based rewrite")
	fmt.Fprintln(st.w, "enumerates unboundedly many costs — §7's motivation for greedy methods)")
}

// e11 sweeps the halfsum ω-limit program over epsilons.
func (st *state) e11() {
	st.row("epsilon", "rounds", "p(a)", "|1 - p(a)|")
	st.row("---", "---", "---", "---")
	for _, eps := range []float64{1e-6, 1e-9, 1e-12} {
		db, stats := mustSolve(programs.Halfsum, core.Options{Epsilon: eps})
		r, _ := db.Rel("p/2").Get([]val.T{val.Symbol("a")})
		st.row(fmt.Sprintf("%g", eps), fmt.Sprint(stats.Rounds),
			fmt.Sprintf("%.15f", r.Cost.N), fmt.Sprintf("%.2e", math.Abs(1-r.Cost.N)))
	}
	fmt.Fprintln(st.w, "\nThe least model has p(a,1) exactly, reached only at ω (Example 5.1);")
	fmt.Fprintln(st.w, "each halving round closes half the remaining gap.")
}

// e12 contrasts the two fixpoint strategies.
func (st *state) e12() {
	sizes := []int{64, 128, 256}
	if st.quick {
		sizes = []int{32, 64}
	}
	st.row("workload", "n", "naive time", "naive firings", "semi-naive time", "semi-naive firings", "same model")
	st.row("---", "---", "---", "---", "---", "---", "---")
	for _, n := range sizes {
		g := gen.Graph(gen.CycleGraph, n, 3*n, 9, int64(n))
		src := programs.ShortestPath + gen.GraphFacts(g)
		var dbN, dbS *relation.DB
		var stN, stS core.Stats
		dN := timeIt(func() { dbN, stN = mustSolve(src, core.Options{Strategy: core.Naive}) })
		dS := timeIt(func() { dbS, stS = mustSolve(src, core.Options{Strategy: core.SemiNaive}) })
		st.row("shortest path", fmt.Sprint(n), dN.String(), fmt.Sprint(stN.Firings),
			dS.String(), fmt.Sprint(stS.Firings), fmt.Sprint(core.EqualEps(dbN, dbS, 1e-9)))
	}
	for _, n := range sizes {
		o := gen.Ownership(n/2, 3, true, int64(n))
		src := programs.CompanyControl + gen.OwnershipFacts(o)
		var dbN, dbS *relation.DB
		var stN, stS core.Stats
		dN := timeIt(func() { dbN, stN = mustSolve(src, core.Options{Strategy: core.Naive}) })
		dS := timeIt(func() { dbS, stS = mustSolve(src, core.Options{Strategy: core.SemiNaive}) })
		st.row("company control", fmt.Sprint(n/2), dN.String(), fmt.Sprint(stN.Firings),
			dS.String(), fmt.Sprint(stS.Firings), fmt.Sprint(core.EqualEps(dbN, dbS, 1e-9)))
	}
}

// e13 prints the stratification ladder for the paper's programs.
func (st *state) e13() {
	cases := []struct {
		name string
		src  string
	}{
		{"shortest path (Ex 2.6)", programs.ShortestPath},
		{"company control (Ex 2.7)", programs.CompanyControl},
		{"company control, fused (§5.2)", programs.CompanyControlFused},
		{"party invitations (Ex 4.3)", programs.Party},
		{"circuit (Ex 4.4)", programs.Circuit},
		{"halfsum (Ex 5.1)", programs.Halfsum},
		{"two minimal models (§3)", programs.TwoMinimalModels},
		{"grouped averages (Ex 2.1)", programs.Averages},
	}
	st.row("program", "aggregate stratified", "r-monotonic", "admissible (monotonic)")
	st.row("---", "---", "---", "---")
	for _, c := range cases {
		prog, err := parser.Parse(c.src)
		if err != nil {
			fatal(err)
		}
		schemas, err := ast.BuildSchemas(prog)
		if err != nil {
			fatal(err)
		}
		rep := monotone.CheckProgram(prog, schemas)
		st.row(c.name, fmt.Sprint(rep.AggregateStratified),
			fmt.Sprint(rep.RMonotonic == nil), fmt.Sprint(rep.Admissible == nil))
	}
	fmt.Fprintln(st.w, "\naggregate-stratified ⊂ r-monotonic-expressible ⊂ monotonic: the paper's")
	fmt.Fprintln(st.w, "programs recurse through aggregation yet remain admissible; only the")
	fmt.Fprintln(st.w, "fused company-control formulation is r-monotonic (§5.2), and the §3")
	fmt.Fprintln(st.w, "example falls outside the monotonic class (two minimal models).")

	// Instance-level modular ("group") stratification: the middle rung of
	// the ladder depends on the database, not just the program.
	fmt.Fprintln(st.w, "\nInstance-level group stratification (Mumick et al., §5.1):")
	inst := []struct {
		name string
		src  string
	}{
		{"shortest path, acyclic EDB", programs.ShortestPath + "arc(a,b,1).\narc(b,c,2).\n"},
		{"shortest path, cyclic EDB (Ex 3.1)", programs.ShortestPath + "arc(a,b,1).\narc(b,b,0).\n"},
		{"party, cyclic knows", programs.Party + "requires(a,0).\nrequires(b,1).\nrequires(c,1).\nknows(b,c).\nknows(c,b).\nknows(b,a).\n"},
	}
	for _, c := range inst {
		prog, err := parser.Parse(c.src)
		if err != nil {
			fatal(err)
		}
		en, err := core.New(prog, core.Options{})
		if err != nil {
			fatal(err)
		}
		ok, err := en.GroupStratified(nil)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(st.w, "  %-38s group stratified: %v\n", c.name, ok)
	}
}
