package experiments

import (
	"strings"
	"testing"
)

// TestList enumerates all thirteen experiments.
func TestList(t *testing.T) {
	l := List()
	if len(l) != 13 {
		t.Fatalf("experiments = %d, want 13", len(l))
	}
	if l[0][0] != "E1" || l[12][0] != "E13" {
		t.Fatalf("ids = %v ... %v", l[0], l[12])
	}
}

// TestRunUnknownID rejects bad selectors.
func TestRunUnknownID(t *testing.T) {
	var sb strings.Builder
	if err := Run(&sb, Config{Only: "E99"}); err == nil {
		t.Fatal("unknown id must error")
	}
}

// TestSmokeCheapExperiments runs the fast experiments end to end and
// spot-checks their reported claims (the slow sweeps are covered by the
// command-line harness and the benchmarks).
func TestSmokeCheapExperiments(t *testing.T) {
	cases := []struct {
		id   string
		want []string
	}{
		{"E1", []string{"| min | minreal | >= | inf |", "pseudo-monotonic"}},
		{"E2", []string{"all_avg(72.5).", "alt_class_count(art, 0)."}},
		{"E7", []string{"stable models found: 2", "M1 = {p(a), p(b), q(b)}"}},
		{"E8", []string{"| M1 (least) | 1 | true | true |", "| M2 | 0 | true | false |"}},
		{"E9", []string{"| shortest path, cyclic (Ex 3.1) | 4 | 4 | false |"}},
		{"E11", []string{"| 1e-09 | 30 |"}},
		{"E13", []string{"| company control, fused (§5.2) | false | true | true |"}},
	}
	for _, c := range cases {
		var sb strings.Builder
		if err := Run(&sb, Config{Quick: true, Only: c.id}); err != nil {
			t.Fatalf("%s: %v", c.id, err)
		}
		out := sb.String()
		for _, w := range c.want {
			if !strings.Contains(out, w) {
				t.Errorf("%s: output missing %q:\n%s", c.id, w, out)
			}
		}
	}
}
