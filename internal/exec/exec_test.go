package exec_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/val"
)

// Operator-level properties of the streaming executor, exercised
// directly against hand-built pipelines (no planner in the loop): σ
// placement invariance, π dedup under the lattice merge, join symmetry,
// Δ-drive equivalence, and γ's grouped/point agreement.

// testSchema declares edge/2, blocked/1, a/2, b/2 (plain) and m/2
// (cost minreal) and returns the schemas plus a fresh database.
func testSchema(t *testing.T) (ast.Schemas, *relation.DB) {
	t.Helper()
	minreal, ok := lattice.ByName("minreal")
	if !ok {
		t.Fatal("no minreal lattice")
	}
	s := ast.Schemas{}
	plain := func(name string, arity int) {
		k := ast.MakePredKey(name, arity)
		s[k] = &ast.PredInfo{Key: k, Arity: arity}
	}
	plain("edge", 2)
	plain("blocked", 1)
	plain("a", 2)
	plain("b", 2)
	mk := ast.MakePredKey("m", 2)
	s[mk] = &ast.PredInfo{Key: mk, Arity: 2, HasCost: true, L: minreal}
	return s, relation.NewDB(s)
}

// scanAtom builds a plain (non-cost) scan/neg atom binding argVars.
func scanAtom(s ast.Schemas, name string, argVars ...int) exec.Atom {
	k := ast.MakePredKey(name, len(argVars))
	return exec.Atom{
		Pred:    k,
		Info:    s.Info(k),
		ArgVar:  argVars,
		ArgVal:  make([]val.T, len(argVars)),
		CostVar: -1,
	}
}

// runPipeline acquires a machine, pulls every emission as a rendered
// binding string, and returns the emissions with the stats counters.
func runPipeline(t *testing.T, r *exec.Rule, cfg exec.Config) (out []string, firings, probes int64) {
	t.Helper()
	m := r.Acquire(cfg)
	err := m.Run(func(m *exec.Machine) error {
		var b strings.Builder
		for i := range m.Vals {
			if m.Bound[i] {
				fmt.Fprintf(&b, "%d=%s;", i, m.Vals[i].String())
			}
		}
		out = append(out, b.String())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	firings, probes = m.Firings, m.Probes
	r.Release(m)
	return out, firings, probes
}

func sym(s string) val.T { return val.Symbol(s) }

// randomEdges populates edge/2 and blocked/1 with a deterministic
// pseudo-random graph.
func randomEdges(db *relation.DB, rng *rand.Rand, nodes, edges int) {
	edgeRel := db.Rel(ast.MakePredKey("edge", 2))
	blockedRel := db.Rel(ast.MakePredKey("blocked", 1))
	node := func() val.T { return sym(fmt.Sprintf("n%d", rng.Intn(nodes))) }
	for i := 0; i < edges; i++ {
		edgeRel.InsertJoin([]val.T{node(), node()}, lattice.Elem{})
	}
	for i := 0; i < nodes/3; i++ {
		blockedRel.InsertJoin([]val.T{node()}, lattice.Elem{})
	}
}

// TestSelectionPushdown: a σ (negation filter) that depends only on
// variables bound by the first scan can run before or after the second
// scan of a join pipeline with identical output — not just the same
// set, the same emission sequence, since σ only filters a deterministic
// stream. This is the algebraic σ-through-⋈ rewrite the compiler's
// fixed step order relies on.
func TestSelectionPushdown(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		s, db := testSchema(t)
		rng := rand.New(rand.NewSource(int64(trial)))
		randomEdges(db, rng, 8, 24)
		const X, Y, Z = 0, 1, 2
		scanXY := exec.Step{Kind: exec.ScanKind, Atom: scanAtom(s, "edge", X, Y)}
		scanYZ := exec.Step{Kind: exec.ScanKind, Atom: scanAtom(s, "edge", Y, Z)}
		sigma := exec.Step{Kind: exec.NegKind, Atom: scanAtom(s, "blocked", Y)}
		early := exec.NewRule(3, []exec.Step{scanXY, sigma, scanYZ}, exec.Hooks{})
		late := exec.NewRule(3, []exec.Step{scanXY, scanYZ, sigma}, exec.Hooks{})
		eOut, eFir, _ := runPipeline(t, early, exec.Config{DB: db})
		lOut, lFir, _ := runPipeline(t, late, exec.Config{DB: db})
		if strings.Join(eOut, "\n") != strings.Join(lOut, "\n") {
			t.Fatalf("trial %d: σ placement changed the join output:\nearly:\n%s\nlate:\n%s",
				trial, strings.Join(eOut, "\n"), strings.Join(lOut, "\n"))
		}
		if eFir != lFir {
			t.Fatalf("trial %d: firings differ: early=%d late=%d", trial, eFir, lFir)
		}
	}
}

// TestProjectionDedupLatticeMerge: projecting duplicate tuples into a
// cost relation is not set-dedup but a lattice merge — whatever order
// the duplicates stream in, the stored cost is the meet (min) of all of
// them, and only genuine improvements report as inserts.
func TestProjectionDedupLatticeMerge(t *testing.T) {
	costs := []float64{5, 3, 9, 3, 7}
	perm := []int{0, 1, 2, 3, 4}
	mk := ast.MakePredKey("m", 2)
	var want string
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		s, db := testSchema(t)
		src := db.Rel(mk)
		for _, i := range perm {
			src.InsertJoin([]val.T{sym("g")}, val.Number(costs[i]))
		}
		// Stream the merged source through a scan and π it into a fresh
		// head relation.
		const G, D = 0, 1
		at := scanAtom(s, "m", G)
		at.Pred, at.Info, at.CostVar = mk, s.Info(mk), D
		r := exec.NewRule(2, []exec.Step{{Kind: exec.ScanKind, Atom: at}}, exec.Hooks{})
		dst := relation.NewDB(s).Rel(mk)
		m := r.Acquire(exec.Config{DB: db})
		if err := m.Run(func(m *exec.Machine) error {
			dst.InsertJoin([]val.T{m.Vals[G]}, m.Vals[D])
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		r.Release(m)
		row, ok := dst.Get([]val.T{sym("g")})
		if !ok || dst.Len() != 1 {
			t.Fatalf("trial %d: want exactly one merged tuple, got len=%d", trial, dst.Len())
		}
		got := row.Cost.String()
		if want == "" {
			want = got
		}
		if got != want || got != "3" {
			t.Fatalf("trial %d (order %v): merged cost %s, want 3", trial, perm, got)
		}
	}
}

// TestSymmetricJoinOrder: joining a ⋈ b in either step order yields the
// same result set, and the two orders agree exactly after sorting —
// the executor introduces no order nondeterminism of its own.
func TestSymmetricJoinOrder(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		s, db := testSchema(t)
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		aRel := db.Rel(ast.MakePredKey("a", 2))
		bRel := db.Rel(ast.MakePredKey("b", 2))
		node := func() val.T { return sym(fmt.Sprintf("n%d", rng.Intn(6))) }
		for i := 0; i < 18; i++ {
			aRel.InsertJoin([]val.T{node(), node()}, lattice.Elem{})
			bRel.InsertJoin([]val.T{node(), node()}, lattice.Elem{})
		}
		const X, Y, Z = 0, 1, 2
		ab := exec.NewRule(3, []exec.Step{
			{Kind: exec.ScanKind, Atom: scanAtom(s, "a", X, Y)},
			{Kind: exec.ScanKind, Atom: scanAtom(s, "b", Y, Z)},
		}, exec.Hooks{})
		ba := exec.NewRule(3, []exec.Step{
			{Kind: exec.ScanKind, Atom: scanAtom(s, "b", Y, Z)},
			{Kind: exec.ScanKind, Atom: scanAtom(s, "a", X, Y)},
		}, exec.Hooks{})
		abOut, abFir, _ := runPipeline(t, ab, exec.Config{DB: db})
		baOut, baFir, _ := runPipeline(t, ba, exec.Config{DB: db})
		sort.Strings(abOut)
		sort.Strings(baOut)
		if strings.Join(abOut, "\n") != strings.Join(baOut, "\n") {
			t.Fatalf("trial %d: a⋈b and b⋈a disagree after sort:\n%s\nvs\n%s",
				trial, strings.Join(abOut, "\n"), strings.Join(baOut, "\n"))
		}
		if abFir != baFir {
			t.Fatalf("trial %d: join cardinality differs by order: %d vs %d", trial, abFir, baFir)
		}
	}
}

// TestDeltaDriveEquivalence: driving the join from a Δ row set
// (Config.RestrictRows) must emit exactly the full join's results whose
// driving row is in Δ, in Δ order — the semi-naive restriction is a
// filter, never a semantic change. With Δ = the full extension the
// restricted run reproduces the full scan byte for byte.
func TestDeltaDriveEquivalence(t *testing.T) {
	s, db := testSchema(t)
	rng := rand.New(rand.NewSource(7))
	randomEdges(db, rng, 8, 30)
	edgeRel := db.Rel(ast.MakePredKey("edge", 2))
	const X, Y, Z = 0, 1, 2
	join := exec.NewRule(3, []exec.Step{
		{Kind: exec.ScanKind, Atom: scanAtom(s, "edge", X, Y)},
		{Kind: exec.ScanKind, Atom: scanAtom(s, "edge", Y, Z)},
	}, exec.Hooks{})

	full, fullFir, fullPr := runPipeline(t, join, exec.Config{DB: db})
	var all []relation.Row
	edgeRel.Each(func(row relation.Row) bool { all = append(all, row); return true })
	delta, deltaFir, deltaPr := runPipeline(t, join, exec.Config{DB: db, RestrictStep: 0, RestrictRows: all})
	if strings.Join(full, "\n") != strings.Join(delta, "\n") {
		t.Fatalf("Δ=extension differs from full scan:\n%s\nvs\n%s",
			strings.Join(full, "\n"), strings.Join(delta, "\n"))
	}
	if fullFir != deltaFir || fullPr != deltaPr {
		t.Fatalf("Δ=extension stats differ: firings %d/%d probes %d/%d", fullFir, deltaFir, fullPr, deltaPr)
	}

	// A strict subset Δ must yield exactly the expected nested-loop join
	// of Δ against the full relation.
	sub := all[:len(all)/2]
	var want []string
	for _, r1 := range sub {
		for _, r2 := range all {
			if val.Equal(r1.Args[1], r2.Args[0]) {
				want = append(want, fmt.Sprintf("0=%s;1=%s;2=%s;", r1.Args[0], r1.Args[1], r2.Args[1]))
			}
		}
	}
	got, _, _ := runPipeline(t, join, exec.Config{DB: db, RestrictStep: 0, RestrictRows: sub})
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("subset Δ join mismatch:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestAggGroupedMatchesPoint: γ's full grouped enumeration (grouping
// variables unbound; groups emitted in sorted key order) must agree
// group-for-group with point-mode queries that arrive with the group
// already bound — the same fold over the same multiset either way.
func TestAggGroupedMatchesPoint(t *testing.T) {
	s, db := testSchema(t)
	mk := ast.MakePredKey("m", 2)
	src := db.Rel(mk)
	rng := rand.New(rand.NewSource(11))
	groups := []string{"g0", "g1", "g2", "g3"}
	for i := 0; i < 40; i++ {
		g := groups[rng.Intn(len(groups))]
		src.InsertJoin([]val.T{sym(g + fmt.Sprintf("k%d", rng.Intn(10)))}, val.Number(float64(rng.Intn(50))))
	}
	f, ok := lattice.AggregateByName("min")
	if !ok {
		t.Fatal("no min aggregate")
	}
	const G, D, R = 0, 1, 2
	conj := scanAtom(s, "m", G)
	conj.Pred, conj.Info, conj.CostVar = mk, s.Info(mk), D
	agg := &exec.AggStep{
		G:          &ast.Agg{Func: "min"},
		Restricted: true,
		Result:     R,
		GroupVars:  []int{G},
		MsVar:      D,
		Conj:       []exec.Atom{conj},
		Apply:      f.Apply,
		Range:      f.Range(),
		OrderFull:  []int{0},
		OrderPoint: []int{0},
	}
	grouped := exec.NewRule(3, []exec.Step{{Kind: exec.AggKind, Agg: agg}}, exec.Hooks{})
	gOut, _, _ := runPipeline(t, grouped, exec.Config{DB: db})

	// Point mode: seed G from each stored group via a driving scan whose
	// cost is projected away, then aggregate. The Δ-grouped mode with
	// every group listed must agree too.
	var want []string
	onlyGroups := map[string]exec.GroupRef{}
	seen := map[string]bool{}
	for _, row := range src.Rows() {
		k := row.Args[0].String()
		if seen[k] {
			continue
		}
		seen[k] = true
		onlyGroups[string(val.AppendKeyOf(nil, row.Args[:1]))] = exec.GroupRef{Args: row.Args, Pos: []int{0}}
	}
	// Expected: per-group minimum, groups in sorted key order.
	type gv struct {
		key  string
		g    val.T
		min  float64
		seen bool
	}
	byKey := map[string]*gv{}
	for _, row := range src.Rows() {
		k := string(val.AppendKeyOf(nil, row.Args[:1]))
		e := byKey[k]
		if e == nil {
			e = &gv{key: k, g: row.Args[0]}
			byKey[k] = e
		}
		if !e.seen || row.Cost.N < e.min {
			e.min, e.seen = row.Cost.N, true
		}
	}
	var keys []string
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := byKey[k]
		want = append(want, fmt.Sprintf("0=%s;2=%s;", e.g, val.Number(e.min)))
	}
	if strings.Join(gOut, "\n") != strings.Join(want, "\n") {
		t.Fatalf("grouped γ disagrees with per-group fold:\n%s\nwant:\n%s",
			strings.Join(gOut, "\n"), strings.Join(want, "\n"))
	}
	dOut, _, _ := runPipeline(t, grouped, exec.Config{DB: db, AggGroups: map[int]map[string]exec.GroupRef{0: onlyGroups}})
	if strings.Join(dOut, "\n") != strings.Join(gOut, "\n") {
		t.Fatalf("Δ-grouped γ over all groups disagrees with full enumeration:\n%s\nwant:\n%s",
			strings.Join(dOut, "\n"), strings.Join(gOut, "\n"))
	}
}
