// Package exec is the streaming relational-algebra executor: it
// evaluates compiled rule bodies as lazy iterator pipelines instead of
// the tuple-at-a-time interpreter in internal/core/eval.go.
//
// A rule body compiles to a left-deep operator tree whose operators are
// the classical relational algebra, specialised to lattice-valued
// relations (Ross & Sagiv, PODS 1992, §3):
//
//   - scan: an index-aware cursor over one relation. With bound
//     argument positions the cursor probes the relation's lazily built
//     hash index — the relation is the presized build side of a hash
//     join, the cursor the probe side — so a chain of scans is a
//     left-deep pipeline of hash joins (⋈). With no bound positions it
//     streams the full extension; for default-value predicates it is a
//     single point lookup (§2.3.2). The delta-aware variant drives the
//     join from the semi-naive Δ set (Config.RestrictRows) instead of
//     the full relation, so each round's work is proportional to the
//     change, not the model.
//   - select/σ: negative literals (Definition 3.4) and builtin
//     comparison tests filter the stream in place.
//   - project/π: variable binding against the registers projects each
//     row onto the rule's variables; duplicate eliminations happen at
//     the head relation, whose insert-join merges costs under the
//     lattice order rather than discarding duplicates.
//   - aggregate/γ: the monotonic cost aggregation of §2.4/§3 — matches
//     of the aggregate conjunction are grouped on the grouping
//     variables and each group's multiset is folded through the
//     aggregate function, whose monotonicity w.r.t. the lattice order
//     is what makes the fixpoint iteration sound (Lemma 4.1).
//
// Pipelines pull one row at a time through stack-allocated cursors and
// write variable bindings into a preallocated register file, so steady
// state evaluation performs no per-row heap allocation. Machines (the
// mutable pipeline state) are pooled per compiled rule; acquiring one
// per evaluation pass keeps the executor safe under the parallel
// scheduler's speculative rule evaluation.
//
// The executor is behaviour-compatible with the tuple interpreter by
// construction — same join order, same probe accounting, same
// enumeration order, same error text — so the engine can run either
// executor and produce byte-identical models, traces, stats and
// checkpoints. The differential suite in the datalog package holds it
// to that.
package exec

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/val"
)

// Regs is the register file of one pipeline: the value and bound flag
// of every rule variable, indexed by the plan's variable numbering. The
// host aliases these slices to capture bindings at the pipeline
// terminal (head projection, provenance).
type Regs struct {
	Vals  []val.T
	Bound []bool
}

// Atom is one compiled atom pattern: per non-cost position either a
// variable index or a constant, with the cost argument split out. It
// mirrors the tuple interpreter's atomSpec.
type Atom struct {
	Pred    ast.PredKey
	Info    *ast.PredInfo
	ArgVar  []int   // variable index per non-cost position, -1 for const
	ArgVal  []val.T // constant per non-cost position when ArgVar < 0
	CostVar int     // variable index of the cost argument, -1 if none/const
	CostVal val.T   // constant cost when CostVar < 0 and Info.HasCost
	// Wide marks atoms with more than 64 non-cost positions: the hash
	// index masks only the first 64, the rest are post-filtered.
	Wide bool
}

// StepKind discriminates the operator at one pipeline position.
type StepKind uint8

// The operator kinds.
const (
	ScanKind    StepKind = iota // positive literal: scan / hash-join probe
	NegKind                     // σ: negative literal test
	BuiltinKind                 // σ or binding: comparison / assignment
	AggKind                     // γ: lattice aggregate
	BufferKind                  // CSE: replay of a shared, materialized subplan
)

// Step is one operator of a compiled pipeline.
type Step struct {
	Kind    StepKind
	Atom    Atom // ScanKind, NegKind
	Builtin *BuiltinStep
	Agg     *AggStep
	Buffer  *BufferStep
}

// BufferStep replays a materialized common subexpression: the planner
// evaluated a scan prefix shared by several rules of one component once,
// buffered the bindings of its output variables, and each sharing
// pipeline starts by replaying the buffer instead of re-running the
// joins. Rows is shared read-only across the pipelines; Vars maps each
// buffered column to this pipeline's variable index.
type BufferStep struct {
	Rows [][]val.T
	Vars []int
}

// BuiltinStep is a builtin comparison or definitional assignment. Its
// evaluation (expression language, error text) belongs to the host, so
// it runs through Hooks.Builtin; the executor only needs to know which
// variable an assignment form binds, to undo it on backtrack.
type BuiltinStep struct {
	Assign int // variable bound by the assignment form, -1 for a pure test
}

// AggStep is a γ operator: the aggregate subgoal of Definition 2.4,
// evaluated by grouping the matches of Conj and folding each group's
// multiset through Apply.
type AggStep struct {
	G          *ast.Agg
	Restricted bool
	Result     int   // variable index of the aggregate result
	GroupVars  []int // variable indices of the grouping variables
	MsVar      int   // variable index of the multiset variable, -1 if none
	Conj       []Atom
	Apply      func([]lattice.Elem) (lattice.Elem, bool)
	Range      lattice.Lattice // lattice of the result (for the bound-result check)
	// OrderFull / OrderPoint are the compile-time conjunction orders for
	// the grouped mode (grouping variables unbound) and the point mode
	// (grouping variables bound). The binding pattern at any step is
	// fixed by the plan, so both orders — and any ordering failure — are
	// known at compile time; a recorded error surfaces on first use,
	// exactly when the tuple interpreter would raise it.
	OrderFull, OrderPoint       []int
	OrderFullErr, OrderPointErr error
	// GroupsHint presizes the grouped-mode group table from the
	// planner's distinct-group estimate; 0 means no estimate.
	GroupsHint int
}

// Hooks are the host-side callbacks a pipeline needs: builtin
// evaluation and provenance capture run against host state that the
// host caches in Machine.Aux from Init.
type Hooks struct {
	// Init is called once per new Machine, before its first run.
	Init func(m *Machine)
	// Builtin evaluates the builtin at step i against the registers,
	// binding the assignment variable when applicable; didBind reports
	// that it did (the machine unbinds on backtrack).
	Builtin func(m *Machine, i int) (ok, didBind bool, err error)
	// CollectSupports appends the provenance records of the current
	// match of step i's aggregate conjunction to dst (an opaque
	// host-side slice) and returns the extended value. Called only in
	// trace mode.
	CollectSupports func(m *Machine, i int, dst any) any
	// SetAggSupports / ClearAggSupports publish the emitting group's
	// supports around the downstream continuation (trace mode only).
	SetAggSupports   func(m *Machine, i int, supports any)
	ClearAggSupports func(m *Machine, i int)
}

// GroupRef identifies one changed aggregate group without copying its
// grouping values: Args is a Δ row's argument tuple (owned by the
// relation, immutable) and Pos is the compile-time projection onto the
// grouping variables, so Args[Pos[j]] is the value of grouping variable
// j. Referencing rather than copying keeps the per-round group-change
// computation free of per-group slice allocations.
type GroupRef struct {
	Args []val.T
	Pos  []int
}

// At returns the value of grouping variable j.
func (g GroupRef) At(j int) val.T { return g.Args[g.Pos[j]] }

// Config is the per-pass evaluation context.
type Config struct {
	DB *relation.DB
	// RestrictStep/RestrictRows, when RestrictRows is non-nil, drive the
	// scan at that pipeline position from the Δ rows instead of the
	// relation: the delta-aware side of the join.
	RestrictStep int
	RestrictRows []relation.Row
	// AggGroups, per γ step index, restricts that aggregate to the
	// listed changed groups (key -> grouping-value reference).
	AggGroups map[int]map[string]GroupRef
	// Trace enables provenance capture through the hooks.
	Trace bool
	// Prof enables per-step operator counters (Machine.Profile). Off,
	// the run pays one nil check per counted event and allocates
	// nothing.
	Prof bool
	// Check, when non-nil, is polled at every pipeline terminal.
	Check func() error
}

// OpCounts is one pipeline step's operator counters for a single run:
// the cardinality and probe signals EXPLAIN ANALYZE renders and the
// cost-based planner will consume.
type OpCounts struct {
	// In counts rows entering the step (invocations of the operator);
	// Out counts rows it passed downstream — for the last step, the
	// pipeline's firings.
	In  int64
	Out int64
	// Probes counts index probes the step performed (rows offered by
	// its cursor, plus Δ-row cost re-fetches on the restricted scan).
	Probes int64
	// Build is the size of the largest indexed relation the step
	// consulted — the build side of the hash join it probes.
	Build int64
	// Delta counts Δ rows offered when this step drove a semi-naive
	// pass (the delta-aware side of the join).
	Delta int64
	// Groups counts aggregate groups a γ step emitted (the changed
	// groups under Δ restriction).
	Groups int64
}

// add folds src into c (Build by maximum — it is a high-water mark,
// not a flow count).
func (c *OpCounts) add(src OpCounts) {
	c.In += src.In
	c.Out += src.Out
	c.Probes += src.Probes
	c.Delta += src.Delta
	c.Groups += src.Groups
	if src.Build > c.Build {
		c.Build = src.Build
	}
}

// OpAccum is the engine-side shared accumulator for one step's
// counters: machines from concurrent speculative passes fold into it,
// so every field is atomic (Build via CAS-max).
type OpAccum struct {
	In, Out, Probes, Delta, Groups atomic.Int64
	Build                          atomic.Int64
}

// Fold adds one run's counters into the accumulator.
func (a *OpAccum) Fold(c OpCounts) {
	a.In.Add(c.In)
	a.Out.Add(c.Out)
	a.Probes.Add(c.Probes)
	a.Delta.Add(c.Delta)
	a.Groups.Add(c.Groups)
	for {
		old := a.Build.Load()
		if c.Build <= old || a.Build.CompareAndSwap(old, c.Build) {
			break
		}
	}
}

// Snapshot reads the accumulator's current counters.
func (a *OpAccum) Snapshot() OpCounts {
	return OpCounts{
		In:     a.In.Load(),
		Out:    a.Out.Load(),
		Probes: a.Probes.Load(),
		Delta:  a.Delta.Load(),
		Groups: a.Groups.Load(),
		Build:  a.Build.Load(),
	}
}

// Rule is one compiled pipeline, shared read-only by every Machine
// evaluating it. Machines are pooled: Acquire one per evaluation pass.
type Rule struct {
	NVars int
	Steps []Step
	Hooks Hooks
	pool  sync.Pool
}

// Machine is the mutable state of one pipeline evaluation: the register
// file, per-step cursor scratch, and the stats counters the engine
// aggregates after each pass.
type Machine struct {
	Regs
	rule    *Rule
	cfg     Config
	emit    func(*Machine) error
	states  []stepState
	kbuf    []byte // shared key-building scratch; every use is consumed before the next
	Firings int64
	Probes  int64
	// prof is the per-step counter table while Config.Prof is set, nil
	// otherwise (the disabled fast path is a nil check). profBuf is the
	// lazily allocated backing array, reused across runs.
	prof    []OpCounts
	profBuf []OpCounts
	// Aux holds host state cached by Hooks.Init (e.g. the provenance
	// environment aliasing Regs).
	Aux any
}

// scanState is the per-atom mutable scratch: the backtracking list of
// newly bound variables and an argument buffer for point lookups.
type scanState struct {
	sbuf []int
	args []val.T
}

func (st *scanState) init(at *Atom) {
	st.sbuf = make([]int, 0, len(at.ArgVar)+1)
	st.args = make([]val.T, len(at.ArgVar))
}

type stepState struct {
	scanState
	agg *aggState
}

// aggState is the reusable γ scratch: the point-mode multiset buffer,
// the grouped-mode group table, and sorted-key / binding scratch.
type aggState struct {
	keys       []string
	keyScratch []val.T
	elems      []lattice.Elem
	supports   any
	groups     map[string]*aggGroup
	groupSaved []int
	emitSaved  []int
	conj       []scanState
}

type aggGroup struct {
	keyVals  []val.T
	elems    []lattice.Elem
	supports any
}

// NewRule wraps a compiled pipeline. Steps and hooks must not be
// mutated afterwards.
func NewRule(nvars int, steps []Step, hooks Hooks) *Rule {
	return &Rule{NVars: nvars, Steps: steps, Hooks: hooks}
}

// Acquire returns a Machine for one evaluation pass, creating one if
// the pool is empty. Counters are reset; cfg is installed.
func (r *Rule) Acquire(cfg Config) *Machine {
	m, _ := r.pool.Get().(*Machine)
	if m == nil {
		m = r.newMachine()
	}
	m.cfg = cfg
	m.Firings, m.Probes = 0, 0
	if cfg.Prof {
		if m.profBuf == nil {
			m.profBuf = make([]OpCounts, len(r.Steps))
		} else {
			clear(m.profBuf)
		}
		m.prof = m.profBuf
	} else {
		m.prof = nil
	}
	return m
}

// Profile returns the run's per-step counters with the flow fields
// resolved (a step's Out is the next step's In; the last step's Out is
// the run's firings), or nil when profiling was off. The slice is owned
// by the machine and valid until the next Acquire.
func (m *Machine) Profile() []OpCounts {
	if m.prof == nil {
		return nil
	}
	for i := range m.prof {
		if i+1 < len(m.prof) {
			m.prof[i].Out = m.prof[i+1].In
		} else {
			m.prof[i].Out = m.Firings
		}
	}
	return m.prof
}

// Release returns a Machine to the pool, dropping references into the
// pass's context so pooled machines never pin a database.
func (r *Rule) Release(m *Machine) {
	m.cfg = Config{}
	m.emit = nil
	r.pool.Put(m)
}

func (r *Rule) newMachine() *Machine {
	m := &Machine{rule: r}
	m.Vals = make([]val.T, r.NVars)
	m.Bound = make([]bool, r.NVars)
	m.kbuf = make([]byte, 0, 64)
	m.states = make([]stepState, len(r.Steps))
	for i := range r.Steps {
		s := &r.Steps[i]
		switch s.Kind {
		case ScanKind, NegKind:
			m.states[i].init(&s.Atom)
		case AggKind:
			a := s.Agg
			ag := &aggState{
				groups:     make(map[string]*aggGroup, a.GroupsHint),
				keyScratch: make([]val.T, len(a.GroupVars)),
				groupSaved: make([]int, 0, len(a.GroupVars)),
				emitSaved:  make([]int, 0, len(a.GroupVars)+1),
				conj:       make([]scanState, len(a.Conj)),
			}
			for ci := range a.Conj {
				ag.conj[ci].init(&a.Conj[ci])
			}
			m.states[i].agg = ag
		case BufferKind:
			m.states[i].sbuf = make([]int, 0, len(s.Buffer.Vars))
		}
	}
	if r.Hooks.Init != nil {
		r.Hooks.Init(m)
	}
	return m
}

// Run pulls every satisfying assignment of the pipeline through emit.
// The registers are valid for the duration of each emit call only.
func (m *Machine) Run(emit func(*Machine) error) error {
	for i := range m.Bound {
		m.Bound[i] = false
	}
	m.emit = emit
	err := m.runStep(0)
	m.emit = nil
	return err
}

func (m *Machine) runStep(i int) error {
	if i == len(m.rule.Steps) {
		m.Firings++
		if m.cfg.Check != nil {
			if err := m.cfg.Check(); err != nil {
				return err
			}
		}
		return m.emit(m)
	}
	if m.prof != nil {
		m.prof[i].In++
	}
	s := &m.rule.Steps[i]
	switch s.Kind {
	case ScanKind:
		return m.runScan(i, s)
	case NegKind:
		return m.runNeg(i, s)
	case BuiltinKind:
		ok, didBind, err := m.rule.Hooks.Builtin(m, i)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		err = m.runStep(i + 1)
		if didBind {
			m.Bound[s.Builtin.Assign] = false
		}
		return err
	case AggKind:
		return m.runAgg(i, s.Agg, m.cfg.AggGroups[i])
	case BufferKind:
		return m.runBuffer(i, s.Buffer)
	}
	return fmt.Errorf("exec: unknown step kind %d", s.Kind)
}

// runBuffer replays a materialized shared subplan: each buffered row is
// a binding of Vars, offered like an index probe.
func (m *Machine) runBuffer(i int, b *BufferStep) error {
	st := &m.states[i].scanState
	for _, row := range b.Rows {
		m.probe(i)
		saved := st.sbuf[:0]
		ok := true
		for j, v := range b.Vars {
			if m.Bound[v] {
				if !val.Equal(m.Vals[v], row[j]) {
					ok = false
					break
				}
				continue
			}
			m.Vals[v] = row[j]
			m.Bound[v] = true
			saved = append(saved, v)
		}
		if !ok {
			m.unbind(saved)
			continue
		}
		err := m.runStep(i + 1)
		m.unbind(saved)
		if err != nil {
			return err
		}
	}
	return nil
}

// runScan drives the pipeline tail from one positive literal: the Δ
// rows when this step is the semi-naive driver, a cursor otherwise.
func (m *Machine) runScan(i int, s *Step) error {
	at := &s.Atom
	st := &m.states[i].scanState
	if m.cfg.RestrictRows != nil && i == m.cfg.RestrictStep {
		rel := m.cfg.DB.Rel(at.Pred)
		for _, row := range m.cfg.RestrictRows {
			// Re-fetch the current cost: the Δ row may have been
			// improved again later in the same round.
			m.kbuf = val.AppendKeyOf(m.kbuf[:0], row.Args)
			if cur, ok := rel.GetKey(m.kbuf); ok {
				row = cur
			}
			m.Probes++
			if m.prof != nil {
				m.prof[i].Probes++
				m.prof[i].Delta++
			}
			saved, ok := m.bindRow(at, st, row)
			if !ok {
				continue
			}
			err := m.runStep(i + 1)
			m.unbind(saved)
			if err != nil {
				return err
			}
		}
		return nil
	}
	var c cursor
	m.open(&c, at, st, i)
	for {
		row, ok := m.next(&c, at, i)
		if !ok {
			return nil
		}
		saved, ok := m.bindRow(at, st, row)
		if !ok {
			continue
		}
		err := m.runStep(i + 1)
		m.unbind(saved)
		if err != nil {
			return err
		}
	}
}

// runNeg implements Definition 3.4's ¬p as a σ over the stream: the
// fully instantiated atom must be absent from the interpretation. The
// error text matches the tuple interpreter's — it is part of the
// cross-executor contract.
func (m *Machine) runNeg(i int, s *Step) error {
	at := &s.Atom
	st := &m.states[i].scanState
	rel := m.cfg.DB.Rel(at.Pred)
	args := st.args
	for j, v := range at.ArgVar {
		if v >= 0 {
			if !m.Bound[v] {
				return fmt.Errorf("core: unbound variable in negation on %s", at.Pred)
			}
			args[j] = m.Vals[v]
		} else {
			args[j] = at.ArgVal[j]
		}
	}
	m.kbuf = val.AppendKeyOf(m.kbuf[:0], args)
	row, present := rel.GetKey(m.kbuf)
	if !present && at.Info.HasDefault {
		row = relation.Row{Args: args, Cost: at.Info.L.Bottom(), HasCost: true}
		present = true
	}
	if !present {
		return m.runStep(i + 1)
	}
	if !at.Info.HasCost {
		return nil
	}
	want := at.CostVal
	if at.CostVar >= 0 {
		if !m.Bound[at.CostVar] {
			return fmt.Errorf("core: unbound cost variable in negation on %s", at.Pred)
		}
		want = m.Vals[at.CostVar]
	}
	if !lattice.Eq(at.Info.L, row.Cost, want) {
		return m.runStep(i + 1)
	}
	return nil
}

// cursor is a lazy row iterator over one atom scan: a full-extension
// stream, an index-bucket probe (the probe side of a hash join), or a
// default-value point lookup. Cursors live on the stack; open snapshots
// the iteration space (relation length or index bucket) so rows derived
// downstream mid-iteration are not re-offered, matching Match/Each.
type cursor struct {
	rel    *relation.Relation
	mode   uint8
	pos, n int
	bucket []int
	row    relation.Row
	done   bool
}

const (
	curFull uint8 = iota
	curBucket
	curPoint
)

// open positions c over the rows of at matching the currently bound
// registers. profStep attributes the step's build-side size when
// profiling (the γ step's index for aggregate-conjunction cursors).
func (m *Machine) open(c *cursor, at *Atom, st *scanState, profStep int) {
	rel := m.cfg.DB.Rel(at.Pred)
	c.rel = rel
	if m.prof != nil {
		if n := int64(rel.Len()); n > m.prof[profStep].Build {
			m.prof[profStep].Build = n
		}
	}
	if at.Info.HasDefault {
		// Point lookup (the planner guarantees the non-cost arguments
		// are bound); a miss synthesizes the default (bottom) row.
		args := st.args
		for j, v := range at.ArgVar {
			if v >= 0 {
				args[j] = m.Vals[v]
			} else {
				args[j] = at.ArgVal[j]
			}
		}
		m.kbuf = val.AppendKeyOf(m.kbuf[:0], args)
		row, ok := rel.GetKey(m.kbuf)
		if !ok {
			row = relation.Row{Args: args, Cost: at.Info.L.Bottom(), HasCost: true}
		}
		c.mode = curPoint
		c.row = row
		c.done = false
		return
	}
	var mask uint64
	for j, v := range at.ArgVar {
		if j >= 64 {
			break
		}
		if v < 0 || m.Bound[v] {
			mask |= 1 << uint(j)
		}
	}
	if mask == 0 {
		c.mode = curFull
		c.pos, c.n = 0, rel.Len()
		return
	}
	m.kbuf = m.kbuf[:0]
	for j, v := range at.ArgVar {
		if j >= 64 {
			break
		}
		switch {
		case v < 0:
			m.kbuf = val.AppendKey(m.kbuf, at.ArgVal[j])
		case m.Bound[v]:
			m.kbuf = val.AppendKey(m.kbuf, m.Vals[v])
		default:
			continue
		}
		m.kbuf = append(m.kbuf, 0)
	}
	c.mode = curBucket
	c.bucket = rel.Bucket(mask, m.kbuf)
	c.pos = 0
}

// next pulls the next candidate row, counting a probe per row offered
// (after the wide-atom post-filter, before binding — the same
// accounting as relation.Match under the tuple interpreter). profStep
// attributes the probes when profiling.
func (m *Machine) next(c *cursor, at *Atom, profStep int) (relation.Row, bool) {
	switch c.mode {
	case curPoint:
		if c.done {
			return relation.Row{}, false
		}
		c.done = true
		m.probe(profStep)
		return c.row, true
	case curFull:
		if c.pos >= c.n {
			return relation.Row{}, false
		}
		row := c.rel.At(c.pos)
		c.pos++
		m.probe(profStep)
		return row, true
	default:
		for c.pos < len(c.bucket) {
			row := c.rel.At(c.bucket[c.pos])
			c.pos++
			if at.Wide && !m.postMatch(at, row) {
				continue
			}
			m.probe(profStep)
			return row, true
		}
		return relation.Row{}, false
	}
}

// probe counts one index probe, attributed to a step when profiling.
func (m *Machine) probe(profStep int) {
	m.Probes++
	if m.prof != nil {
		m.prof[profStep].Probes++
	}
}

// postMatch checks bound positions beyond the index mask's 64-position
// horizon.
func (m *Machine) postMatch(at *Atom, row relation.Row) bool {
	for j := 64; j < len(at.ArgVar); j++ {
		v := at.ArgVar[j]
		switch {
		case v < 0:
			if !val.Equal(row.Args[j], at.ArgVal[j]) {
				return false
			}
		case m.Bound[v]:
			if !val.Equal(row.Args[j], m.Vals[v]) {
				return false
			}
		}
	}
	return true
}

// bindRow projects a row onto the registers (π), unifying constants and
// already-bound variables; saved lists the newly bound indices for
// backtracking.
func (m *Machine) bindRow(at *Atom, st *scanState, row relation.Row) (saved []int, ok bool) {
	saved = st.sbuf[:0]
	for j, v := range at.ArgVar {
		got := row.Args[j]
		if v < 0 {
			if !val.Equal(at.ArgVal[j], got) {
				m.unbind(saved)
				return nil, false
			}
			continue
		}
		if m.Bound[v] {
			if !val.Equal(m.Vals[v], got) {
				m.unbind(saved)
				return nil, false
			}
			continue
		}
		m.Vals[v] = got
		m.Bound[v] = true
		saved = append(saved, v)
	}
	if at.Info.HasCost {
		got := row.Cost
		if at.CostVar < 0 {
			if !lattice.Eq(at.Info.L, at.CostVal, got) {
				m.unbind(saved)
				return nil, false
			}
		} else if m.Bound[at.CostVar] {
			if !lattice.Eq(at.Info.L, m.Vals[at.CostVar], got) {
				m.unbind(saved)
				return nil, false
			}
		} else {
			m.Vals[at.CostVar] = got
			m.Bound[at.CostVar] = true
			saved = append(saved, at.CostVar)
		}
	}
	return saved, true
}

func (m *Machine) unbind(saved []int) {
	for _, v := range saved {
		m.Bound[v] = false
	}
}

// runAgg evaluates a γ step, mirroring the tuple interpreter's
// aggregate modes exactly: Δ-grouped (bind each changed group, recurse
// in point mode — lazily, so each group's enumeration sees the facts
// earlier groups derived), point (single group, possibly Δ-filtered),
// and full grouped enumeration in sorted group order.
func (m *Machine) runAgg(idx int, s *AggStep, onlyGroups map[string]GroupRef) error {
	st := m.states[idx].agg
	allBound := true
	for _, v := range s.GroupVars {
		if !m.Bound[v] {
			allBound = false
			break
		}
	}
	if !allBound && !s.Restricted {
		return fmt.Errorf("core: total aggregate %s with unbound grouping variables", s.G)
	}

	if onlyGroups != nil && !allBound {
		st.keys = st.keys[:0]
		for k := range onlyGroups {
			st.keys = append(st.keys, k)
		}
		sort.Strings(st.keys)
		for _, gk := range st.keys {
			ref := onlyGroups[gk]
			saved := st.groupSaved[:0]
			ok := true
			for j, v := range s.GroupVars {
				if m.Bound[v] {
					if !val.Equal(m.Vals[v], ref.At(j)) {
						ok = false
						break
					}
					continue
				}
				m.Vals[v] = ref.At(j)
				m.Bound[v] = true
				saved = append(saved, v)
			}
			if ok {
				if err := m.runAgg(idx, s, nil); err != nil {
					m.unbind(saved)
					return err
				}
			}
			m.unbind(saved)
		}
		return nil
	}

	if allBound && onlyGroups != nil {
		for j, v := range s.GroupVars {
			st.keyScratch[j] = m.Vals[v]
		}
		m.kbuf = val.AppendKeyOf(m.kbuf[:0], st.keyScratch)
		if _, ok := onlyGroups[string(m.kbuf)]; !ok {
			return nil
		}
	}

	order, orderErr := s.OrderFull, s.OrderFullErr
	if allBound {
		order, orderErr = s.OrderPoint, s.OrderPointErr
	}
	if orderErr != nil {
		return orderErr
	}

	if allBound {
		st.elems = st.elems[:0]
		st.supports = nil
		if err := m.enumConj(idx, s, st, order, 0, true); err != nil {
			return err
		}
		return m.emitGroup(idx, s, st, nil, st.elems, st.supports)
	}

	clear(st.groups)
	if err := m.enumConj(idx, s, st, order, 0, false); err != nil {
		return err
	}
	st.keys = st.keys[:0]
	for k := range st.groups {
		st.keys = append(st.keys, k)
	}
	sort.Strings(st.keys)
	for _, gk := range st.keys {
		g := st.groups[gk]
		if err := m.emitGroup(idx, s, st, g.keyVals, g.elems, g.supports); err != nil {
			return err
		}
	}
	return nil
}

// enumConj enumerates the aggregate conjunction in the given order,
// collecting each match's multiset element into the point buffer or the
// group table.
func (m *Machine) enumConj(idx int, s *AggStep, st *aggState, order []int, d int, point bool) error {
	if d == len(order) {
		var el lattice.Elem
		if s.MsVar >= 0 {
			el = m.Vals[s.MsVar]
		} else {
			// Implicit boolean cost: each match contributes one "true".
			el = val.Boolean(true)
		}
		if point {
			st.elems = append(st.elems, el)
			if m.cfg.Trace {
				st.supports = m.rule.Hooks.CollectSupports(m, idx, st.supports)
			}
			return nil
		}
		for j, v := range s.GroupVars {
			st.keyScratch[j] = m.Vals[v]
		}
		m.kbuf = val.AppendKeyOf(m.kbuf[:0], st.keyScratch)
		g := st.groups[string(m.kbuf)]
		if g == nil {
			g = &aggGroup{keyVals: append([]val.T{}, st.keyScratch...)}
			st.groups[string(m.kbuf)] = g
		}
		g.elems = append(g.elems, el)
		if m.cfg.Trace {
			g.supports = m.rule.Hooks.CollectSupports(m, idx, g.supports)
		}
		return nil
	}
	at := &s.Conj[order[d]]
	cs := &st.conj[order[d]]
	var c cursor
	m.open(&c, at, cs, idx)
	for {
		row, ok := m.next(&c, at, idx)
		if !ok {
			return nil
		}
		saved, ok := m.bindRow(at, cs, row)
		if !ok {
			continue
		}
		err := m.enumConj(idx, s, st, order, d+1, point)
		m.unbind(saved)
		if err != nil {
			return err
		}
	}
}

// emitGroup folds one group's multiset through the aggregate and, when
// defined and consistent with the registers, continues the pipeline.
func (m *Machine) emitGroup(idx int, s *AggStep, st *aggState, keyVals []val.T, elems []lattice.Elem, supports any) error {
	if s.Restricted && len(elems) == 0 {
		return nil
	}
	if m.prof != nil {
		m.prof[idx].Groups++
	}
	res, ok := s.Apply(elems)
	if !ok {
		// Undefined aggregate (e.g. avg of the empty multiset in the
		// total form): the ground instance is simply unsatisfied.
		return nil
	}
	saved := st.emitSaved[:0]
	for j, v := range s.GroupVars {
		if !m.Bound[v] {
			m.Vals[v] = keyVals[j]
			m.Bound[v] = true
			saved = append(saved, v)
		}
	}
	if m.Bound[s.Result] {
		if !lattice.Eq(s.Range, m.Vals[s.Result], res) {
			m.unbind(saved)
			return nil
		}
	} else {
		m.Vals[s.Result] = res
		m.Bound[s.Result] = true
		saved = append(saved, s.Result)
	}
	if m.cfg.Trace {
		m.rule.Hooks.SetAggSupports(m, idx, supports)
	}
	err := m.runStep(idx + 1)
	if m.cfg.Trace {
		m.rule.Hooks.ClearAggSupports(m, idx)
	}
	m.unbind(saved)
	return err
}
