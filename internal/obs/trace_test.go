package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	h := Traceparent(tid, sid)
	if len(h) != 55 {
		t.Fatalf("header length %d, want 55: %q", len(h), h)
	}
	gotTID, gotSID, ok := ParseTraceparent(h)
	if !ok || gotTID != tid || gotSID != sid {
		t.Fatalf("round trip failed: %q -> (%v, %v, %v)", h, gotTID, gotSID, ok)
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("reference header rejected: %q", valid)
	}
	reject := map[string]string{
		"empty":          "",
		"short":          "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",
		"bad dash 2":     "00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"bad dash 35":    "00-4bf92f3577b34da6a3ce929d0e0e4736x00f067aa0ba902b7-01",
		"bad dash 52":    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7x01",
		"version ff":     "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"bad version":    "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"zero trace id":  "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":   "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"bad trace hex":  "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01",
		"bad span hex":   "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902bg-01",
		"bad flags hex":  "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g",
		"v00 w/ suffix":  "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"v01 bad suffix": "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01x",
	}
	for name, h := range reject {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: accepted malformed header %q", name, h)
		}
	}
	// A future version may append dash-separated fields after the fixed
	// 55-byte prefix.
	future := "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-future"
	if _, _, ok := ParseTraceparent(future); !ok {
		t.Errorf("future-version header with suffix rejected: %q", future)
	}
}

func TestTraceSpansAndFinish(t *testing.T) {
	tr := NewTrace("root")
	root := tr.Root()
	if root.IsZero() {
		t.Fatal("zero root span id")
	}
	child := tr.StartSpan("child", root)
	grand := tr.RecordSpan("grand", child, tr.RootStart(), time.Now(), IntAttr("n", 7))
	tr.EndSpan(child, StringAttr("k", "v"))
	rec := tr.Finish()

	if rec.TraceID != tr.ID() || !rec.Remote.IsZero() {
		t.Fatalf("record identity wrong: %+v", rec)
	}
	if len(rec.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(rec.Spans))
	}
	if rec.Root().ID != root || !rec.Root().Parent.IsZero() {
		t.Fatalf("root span wrong: %+v", rec.Root())
	}
	byID := map[SpanID]Span{}
	for _, sp := range rec.Spans {
		byID[sp.ID] = sp
	}
	if byID[child].Parent != root || byID[grand].Parent != child {
		t.Fatal("parentage broken")
	}
	for _, sp := range rec.Spans {
		if sp.End.Before(sp.Start) {
			t.Fatalf("span %q ends before it starts", sp.Name)
		}
		if sp.End.IsZero() {
			t.Fatalf("span %q left open after Finish", sp.Name)
		}
	}

	// Finish is idempotent, and mutation after Finish is ignored.
	if id := tr.StartSpan("late", root); !id.IsZero() {
		t.Fatal("StartSpan after Finish returned a live span")
	}
	if id := tr.RecordSpan("late", root, time.Now(), time.Now()); !id.IsZero() {
		t.Fatal("RecordSpan after Finish returned a live span")
	}
	tr.Annotate(root, StringAttr("late", "x"))
	rec2 := tr.Finish(StringAttr("late", "y"))
	if len(rec2.Spans) != 3 {
		t.Fatalf("second Finish changed span count: %d", len(rec2.Spans))
	}
	for _, a := range rec2.Root().Attrs {
		if a.Key == "late" {
			t.Fatal("attribute added after Finish")
		}
	}
}

func TestContinueTraceKeepsRemoteParent(t *testing.T) {
	tid, parent := NewTraceID(), NewSpanID()
	tr := ContinueTrace("root", tid, parent)
	rec := tr.Finish()
	if rec.TraceID != tid || rec.Remote != parent || rec.Root().Parent != parent {
		t.Fatalf("continued trace lost inbound context: %+v", rec)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(4)
	var want []TraceID
	for i := 0; i < 10; i++ {
		tr := NewTrace("t")
		rec := tr.Finish()
		r.Add(rec)
		want = append(want, rec.TraceID)
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total() = %d, want 10", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d traces, want 4", len(snap))
	}
	// Oldest first: the last four added, in order.
	for i, rec := range snap {
		if rec.TraceID != want[6+i] {
			t.Fatalf("snapshot[%d] = %v, want %v", i, rec.TraceID, want[6+i])
		}
		if len(rec.Spans) == 0 || rec.Spans[0].ID.IsZero() {
			t.Fatalf("snapshot[%d] not self-consistent: %+v", i, rec)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTrace("root")
	tr.RecordSpan("phase", tr.Root(), tr.RootStart(), time.Now(), IntAttr("rows", 5))
	rec := tr.Finish()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []TraceRecord{rec}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid trace-event JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(out.TraceEvents))
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" || ev.TID != 1 {
			t.Fatalf("event shape wrong: %+v", ev)
		}
		if ev.Args["trace_id"] != rec.TraceID.String() {
			t.Fatalf("event %q missing trace_id arg: %v", ev.Name, ev.Args)
		}
	}
}

// TestSpanSink drives the sink with a hand-written event sequence and
// checks the synthesized component -> round -> rule hierarchy.
func TestSpanSink(t *testing.T) {
	tr := NewTrace("solve")
	s := NewSpanSink(tr, tr.Root())
	s.Event(Event{Kind: ComponentBegin, Component: 0, Preds: "path, s", WFS: false})
	s.Event(Event{Kind: RuleFired, Component: 0, Round: 1, Rule: "r", RuleIndex: 5, Firings: 5, Derived: 5, Probes: 5, Nanos: 100})
	s.Event(Event{Kind: RoundEnd, Component: 0, Round: 1, Firings: 5, Derived: 5, Probes: 5})
	s.Event(Event{Kind: RuleFired, Component: 0, Round: 2, Rule: "r", RuleIndex: 5, Firings: 8, Derived: 8, Probes: 9, Nanos: 250})
	s.Event(Event{Kind: RoundEnd, Component: 0, Round: 2, Firings: 8, Derived: 8, Probes: 9})
	s.Event(Event{Kind: ComponentEnd, Component: 0, Round: 2, Firings: 13, Derived: 13})
	s.Event(Event{Kind: SolveEnd, Round: 2, Firings: 13, Derived: 13, Probes: 14})
	rec := tr.Finish()

	comps := rec.FindSpans("component 0")
	if len(comps) != 1 {
		t.Fatalf("component spans = %d, want 1", len(comps))
	}
	if comps[0].Parent != rec.Root().ID {
		t.Fatal("component span not parented under the solve span")
	}
	rounds := append(rec.FindSpans("round 1"), rec.FindSpans("round 2")...)
	if len(rounds) != 2 {
		t.Fatalf("round spans = %d, want 2", len(rounds))
	}
	for _, r := range rounds {
		if r.Parent != comps[0].ID {
			t.Fatalf("round span %q not parented under component", r.Name)
		}
	}
	rules := rec.FindSpans("rule 5")
	if len(rules) != 2 {
		t.Fatalf("rule spans = %d, want 2", len(rules))
	}
	// The second firing carries a per-pass delta of the cumulative nanos.
	var passes []int64
	for _, rs := range rules {
		for _, a := range rs.Attrs {
			if a.Key == "nanos_pass" {
				passes = append(passes, a.Value.(int64))
			}
		}
	}
	if len(passes) != 1 || passes[0] != 150 {
		t.Fatalf("nanos_pass attrs = %v, want [150]", passes)
	}
	// The last completed rule span is retrievable for operator parenting.
	if id, ok := s.RuleSpan(5); !ok || id != rules[1].ID {
		t.Fatalf("RuleSpan(5) = (%v, %v), want last rule span", id, ok)
	}
	// SolveEnd annotates the parent span with the totals.
	found := false
	for _, a := range rec.Root().Attrs {
		if a.Key == "firings" && a.Value.(int64) == 13 {
			found = true
		}
	}
	if !found {
		t.Fatalf("SolveEnd totals missing from parent span attrs: %v", rec.Root().Attrs)
	}
}
