package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration takes a lock; updating a metric
// is lock-free (atomics), and rendering takes per-family snapshots, so
// a scrape never blocks the serving hot path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with a fixed label schema and a dynamic
// set of label-value series.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string
	buckets []float64 // histogram upper bounds (ascending), nil otherwise

	mu     sync.RWMutex
	series map[string]*series
}

// series is one (label values -> metric) entry.
type series struct {
	labelVals []string
	// value holds counter counts (integral) and gauge float bits.
	count atomic.Int64
	bits  atomic.Uint64
	// histogram state: per-bucket cumulative-le counts plus +Inf,
	// observation count in count, and the running sum in bits.
	bucketCounts []atomic.Int64
}

const labelSep = "\xff"

func (f *family) with(values ...string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s takes %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	s = &series{labelVals: append([]string(nil), values...)}
	if f.typ == typeHistogram {
		s.bucketCounts = make([]atomic.Int64, len(f.buckets)+1)
	}
	f.series[key] = s
	return s
}

func (r *Registry) register(name, help string, typ metricType, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different schema", name))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...), buckets: buckets,
		series: map[string]*series{}}
	r.families[name] = f
	return f
}

// Counter is a monotonically increasing count.
type Counter struct{ s *series }

// Add increments the counter by n (n must be ≥ 0).
func (c Counter) Add(n int64) { c.s.count.Add(n) }

// Inc increments the counter by one.
func (c Counter) Inc() { c.s.count.Add(1) }

// Value returns the current count.
func (c Counter) Value() int64 { return c.s.count.Load() }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// NewCounterVec registers (or fetches) a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, typeCounter, labels, nil)}
}

// With returns the counter for one label-value combination.
func (v *CounterVec) With(values ...string) Counter { return Counter{v.f.with(values...)} }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge value.
func (g Gauge) Add(d float64) {
	for {
		old := g.s.bits.Load()
		want := math.Float64bits(math.Float64frombits(old) + d)
		if g.s.bits.CompareAndSwap(old, want) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// NewGaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, typeGauge, labels, nil)}
}

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(values ...string) Gauge { return Gauge{v.f.with(values...)} }

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one observation.
func (h Histogram) Observe(v float64) {
	// Buckets are cumulative (le semantics): bump every bucket whose
	// upper bound admits v, plus the implicit +Inf bucket.
	for i, ub := range h.buckets {
		if v <= ub {
			h.s.bucketCounts[i].Add(1)
		}
	}
	h.s.bucketCounts[len(h.buckets)].Add(1)
	h.s.count.Add(1)
	for {
		old := h.s.bits.Load()
		want := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.bits.CompareAndSwap(old, want) {
			return
		}
	}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// NewHistogramVec registers (or fetches) a labeled histogram family.
// Buckets are upper bounds in ascending order; the +Inf bucket is
// implicit.
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not ascending", name))
		}
	}
	return &HistogramVec{r.register(name, help, typeHistogram, labels, append([]float64(nil), buckets...))}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(values ...string) Histogram {
	return Histogram{v.f.with(values...), v.f.buckets}
}

// WritePrometheus renders every family in the Prometheus text format
// (version 0.0.4). Output is deterministic: families sort by name,
// series by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sers := make([]*series, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		sers = append(sers, f.series[k])
	}
	f.mu.RUnlock()
	if len(sers) == 0 {
		return
	}

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range sers {
		switch f.typ {
		case typeCounter:
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.labelVals, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(s.count.Load(), 10))
			b.WriteByte('\n')
		case typeGauge:
			b.WriteString(f.name)
			writeLabels(b, f.labels, s.labelVals, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(math.Float64frombits(s.bits.Load())))
			b.WriteByte('\n')
		case typeHistogram:
			for i, ub := range f.buckets {
				b.WriteString(f.name)
				b.WriteString("_bucket")
				writeLabels(b, f.labels, s.labelVals, "le", formatFloat(ub))
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(s.bucketCounts[i].Load(), 10))
				b.WriteByte('\n')
			}
			b.WriteString(f.name)
			b.WriteString("_bucket")
			writeLabels(b, f.labels, s.labelVals, "le", "+Inf")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(s.bucketCounts[len(f.buckets)].Load(), 10))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_sum")
			writeLabels(b, f.labels, s.labelVals, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(math.Float64frombits(s.bits.Load())))
			b.WriteByte('\n')
			b.WriteString(f.name)
			b.WriteString("_count")
			writeLabels(b, f.labels, s.labelVals, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(s.count.Load(), 10))
			b.WriteByte('\n')
		}
	}
}

// writeLabels renders {k="v",...}, appending one extra pair (the
// histogram le label) when extraKey is non-empty.
func writeLabels(b *strings.Builder, keys, vals []string, extraKey, extraVal string) {
	if len(keys) == 0 && extraKey == "" {
		return
	}
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
