// Package obs is the engine-deep observability layer: a low-overhead
// typed event stream emitted by the fixpoint engine, and a small
// stdlib-only metrics registry (counters, gauges, fixed-bucket
// histograms) rendered in the Prometheus text exposition format.
//
// The event stream is allocation-conscious by construction: Event is a
// flat value struct (no pointers into engine state), every string it
// carries is precomputed once at engine-compile time (rule text,
// component predicate lists), and the engine emits events only behind a
// nil-sink check, so the un-instrumented path pays nothing beyond that
// branch.
package obs

import "sync"

// Kind identifies an event type.
type Kind uint8

// The event taxonomy of one solve, in rough emission order. A solve
// emits SolveBegin, then per component ComponentBegin / (RuleFired* /
// RoundEnd)* / ComponentEnd, and finally SolveEnd. CheckpointFlushed,
// DivergenceWarning and BudgetBreach are interleaved where they occur.
const (
	// SolveBegin opens one Solve/Resume/SolveMore call.
	SolveBegin Kind = iota
	// SolveEnd closes it, carrying cumulative totals and, on failure,
	// the error text in Err.
	SolveEnd
	// ComponentBegin opens one component's fixpoint; Preds lists its
	// predicates, WFS marks the well-founded fallback and Admissible
	// carries the static admissibility verdict (Definition 4.5).
	ComponentBegin
	// ComponentEnd closes it with the component's cumulative counters.
	ComponentEnd
	// RoundEnd reports one completed fixpoint round: facts derived,
	// rule firings and join probes performed during that round.
	RoundEnd
	// RuleFired reports one rule's evaluation passes within a round:
	// the per-round firing/derivation/probe deltas and the rule's
	// cumulative wall time in Nanos.
	RuleFired
	// CheckpointFlushed reports a successful durable checkpoint.
	CheckpointFlushed
	// DivergenceWarning reports the ω-limit detector (or the MaxRounds
	// bound) firing; evaluation stops with ErrDiverged.
	DivergenceWarning
	// BudgetBreach reports a breached MaxFacts derivation budget.
	BudgetBreach
)

// String names the kind for logs and metric labels.
func (k Kind) String() string {
	switch k {
	case SolveBegin:
		return "solve_begin"
	case SolveEnd:
		return "solve_end"
	case ComponentBegin:
		return "component_begin"
	case ComponentEnd:
		return "component_end"
	case RoundEnd:
		return "round_end"
	case RuleFired:
		return "rule_fired"
	case CheckpointFlushed:
		return "checkpoint_flushed"
	case DivergenceWarning:
		return "divergence_warning"
	case BudgetBreach:
		return "budget_breach"
	}
	return "unknown"
}

// Event is one engine event. It is passed by value and shares no
// mutable state with the engine; fields irrelevant to a Kind are zero.
type Event struct {
	Kind Kind
	// Component is the bottom-up component index, -1 for solve-scoped
	// events.
	Component int
	// Preds is the component's predicate list ("a/2,b/3"), precomputed
	// at compile time (ComponentBegin/ComponentEnd).
	Preds string
	// WFS and Admissible are the component verdicts
	// (ComponentBegin/ComponentEnd).
	WFS        bool
	Admissible bool
	// Round is the fixpoint round within the component (RoundEnd,
	// RuleFired), or the cumulative round counter for checkpoint and
	// limit events.
	Round int
	// Rule and RuleIndex identify the rule of a RuleFired event; Rule
	// is the compile-time-cached rule text.
	Rule      string
	RuleIndex int
	// Firings, Derived and Probes are deltas for RoundEnd/RuleFired
	// and cumulative totals for ComponentEnd/SolveEnd.
	Firings int64
	Derived int64
	Probes  int64
	// Nanos is wall time: cumulative per rule on RuleFired, per
	// component on ComponentEnd, per solve on SolveEnd.
	Nanos int64
	// Parallelism is the effective worker-pool size of the solve
	// (SolveBegin/SolveEnd); 1 means sequential evaluation.
	Parallelism int
	// Workers is the number of component workers running at emission
	// time, including the emitter (ComponentBegin/ComponentEnd). Always 1
	// under sequential evaluation; under the parallel scheduler it is the
	// live concurrency gauge.
	Workers int
	// Err is the failure text for SolveEnd on error, DivergenceWarning
	// and BudgetBreach.
	Err string
}

// Sink receives engine events. Implementations must be fast and
// non-blocking — events are emitted synchronously from the fixpoint
// loops. The engine serializes its own emissions (parallel solves wrap
// the sink in Locked), so a sink sees one event at a time per engine;
// two solves of two different engines may still share a sink, so shared
// state inside a sink needs its own synchronization.
type Sink interface {
	Event(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Event implements Sink.
func (f SinkFunc) Event(e Event) { f(e) }

// multiSink fans one event out to several sinks in order.
type multiSink []Sink

func (m multiSink) Event(e Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// lockedSink serializes events from concurrently emitting goroutines.
type lockedSink struct {
	mu sync.Mutex
	s  Sink
}

func (l *lockedSink) Event(e Event) {
	l.mu.Lock()
	l.s.Event(e)
	l.mu.Unlock()
}

// Locked wraps s so concurrent emitters serialize on a mutex, letting
// single-goroutine sinks survive the parallel fixpoint scheduler
// unchanged. A nil sink stays nil, preserving the engine's fast path.
// Event order within one component is preserved; events of concurrently
// evaluating components interleave.
func Locked(s Sink) Sink {
	if s == nil {
		return nil
	}
	return &lockedSink{s: s}
}

// Multi composes sinks: nil sinks are dropped, and the result is nil
// when none remain (so the engine's nil-check keeps the fast path).
func Multi(sinks ...Sink) Sink {
	out := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
