package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestKindStrings(t *testing.T) {
	kinds := []Kind{SolveBegin, SolveEnd, ComponentBegin, ComponentEnd,
		RoundEnd, RuleFired, CheckpointFlushed, DivergenceWarning, BudgetBreach}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if Kind(250).String() != "unknown" {
		t.Fatalf("out-of-range kind should render unknown")
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no sinks must be nil (engine fast-path check)")
	}
	var a, b int
	sa := SinkFunc(func(Event) { a++ })
	sb := SinkFunc(func(Event) { b++ })
	one := Multi(nil, sa)
	one.Event(Event{})
	if a != 1 {
		t.Fatalf("single-sink Multi delivered %d events", a)
	}
	both := Multi(sa, nil, sb)
	both.Event(Event{Kind: RoundEnd})
	if a != 2 || b != 1 {
		t.Fatalf("fan-out delivered a=%d b=%d", a, b)
	}
}

// TestPrometheusGolden pins the exposition format: family ordering,
// label rendering, histogram buckets, escaping, and float formatting.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.NewCounterVec("mdl_http_requests_total", "HTTP requests by endpoint and status code.", "endpoint", "code")
	lat := r.NewHistogramVec("mdl_http_request_duration_seconds", "HTTP request latency.", []float64{0.005, 0.1}, "endpoint")
	size := r.NewGaugeVec("mdl_program_model_size", "Tuples in the published model.", "program")
	info := r.NewGaugeVec("mdl_build_info", "Build information.", "go_version")

	reqs.With("/v1/query", "200").Add(3)
	reqs.With("/healthz", "200").Inc()
	reqs.With("/v1/query", "404").Inc()
	lat.With("/v1/query").Observe(0.004)
	lat.With("/v1/query").Observe(0.05)
	lat.With("/v1/query").Observe(2)
	size.With("sp").Set(128)
	size.With(`we"ird\name`).Set(1.5)
	info.With("go1.x").Set(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP mdl_build_info Build information.
# TYPE mdl_build_info gauge
mdl_build_info{go_version="go1.x"} 1
# HELP mdl_http_request_duration_seconds HTTP request latency.
# TYPE mdl_http_request_duration_seconds histogram
mdl_http_request_duration_seconds_bucket{endpoint="/v1/query",le="0.005"} 1
mdl_http_request_duration_seconds_bucket{endpoint="/v1/query",le="0.1"} 2
mdl_http_request_duration_seconds_bucket{endpoint="/v1/query",le="+Inf"} 3
mdl_http_request_duration_seconds_sum{endpoint="/v1/query"} 2.054
mdl_http_request_duration_seconds_count{endpoint="/v1/query"} 3
# HELP mdl_http_requests_total HTTP requests by endpoint and status code.
# TYPE mdl_http_requests_total counter
mdl_http_requests_total{endpoint="/healthz",code="200"} 1
mdl_http_requests_total{endpoint="/v1/query",code="200"} 3
mdl_http_requests_total{endpoint="/v1/query",code="404"} 1
# HELP mdl_program_model_size Tuples in the published model.
# TYPE mdl_program_model_size gauge
mdl_program_model_size{program="sp"} 128
mdl_program_model_size{program="we\"ird\\name"} 1.5
`
	if got := b.String(); got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryConcurrency hammers every metric type from many
// goroutines while a scraper renders, under -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounterVec("c_total", "c", "l")
	g := r.NewGaugeVec("g", "g", "l")
	h := r.NewHistogramVec("h", "h", []float64{1, 10}, "l")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w%4))
			for i := 0; i < per; i++ {
				c.With(lbl).Inc()
				g.With(lbl).Add(1)
				h.With(lbl).Observe(float64(i % 20))
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}(w)
	}
	wg.Wait()

	var total int64
	for _, lbl := range []string{"a", "b", "c", "d"} {
		total += c.With(lbl).Value()
	}
	if total != workers*per {
		t.Fatalf("lost counter increments: got %d want %d", total, workers*per)
	}
	if got := h.With("a").s.count.Load(); got != 2*per {
		t.Fatalf("histogram count %d want %d", got, 2*per)
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.NewGaugeVec("g", "g").With()
	g.Set(2.5)
	g.Add(-1)
	if v := g.Value(); v != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", v)
	}
}
