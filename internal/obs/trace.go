// Distributed-tracing primitives: W3C trace-context identifiers, an
// in-process span builder, a fixed-size flight recorder of recent
// traces, and a Chrome trace-event exporter so recorded traces open
// directly in about:tracing / Perfetto.
//
// The model is deliberately smaller than OpenTelemetry: a Trace is a
// single-process builder that collects spans (name, parent, wall-clock
// window, typed attributes) for one request, and Finish freezes it into
// an immutable TraceRecord. Identifiers and the traceparent header
// follow the W3C Trace Context format, so traces started by an upstream
// proxy keep their IDs through the serve tier.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceID is the 16-byte W3C trace identifier.
type TraceID [16]byte

// SpanID is the 8-byte W3C span identifier.
type SpanID [8]byte

// String renders the ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// NewTraceID returns a random non-zero trace identifier.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		_, _ = rand.Read(t[:])
	}
	return t
}

// NewSpanID returns a random non-zero span identifier.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		_, _ = rand.Read(s[:])
	}
	return s
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex trace id>-<16 hex span id>-<2 hex flags>"). It accepts
// any version except the reserved ff and ignores the flags. ok is false
// for malformed headers and for the invalid all-zero identifiers —
// callers fall back to generating fresh IDs.
func ParseTraceparent(h string) (tid TraceID, parent SpanID, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	if len(h) > 55 {
		// Version 00 is exactly 55 bytes; later versions may append
		// "-suffix" fields but never extend the fixed prefix.
		if (h[0] == '0' && h[1] == '0') || h[55] != '-' {
			return TraceID{}, SpanID{}, false
		}
	}
	var ver [1]byte
	if _, err := hex.Decode(ver[:], []byte(h[0:2])); err != nil || ver[0] == 0xff {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if tid.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return tid, parent, true
}

// Traceparent renders the W3C traceparent header value for an ID pair,
// always version 00 with the sampled flag set.
func Traceparent(t TraceID, s SpanID) string {
	return "00-" + t.String() + "-" + s.String() + "-01"
}

// Attr is one typed span attribute. Value is a string or an int64.
type Attr struct {
	Key   string
	Value any
}

// StringAttr builds a string attribute.
func StringAttr(k, v string) Attr { return Attr{Key: k, Value: v} }

// IntAttr builds an integer attribute.
func IntAttr(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Span is one named, timed operation within a trace.
type Span struct {
	ID     SpanID
	Parent SpanID // zero for the root span
	Name   string
	Start  time.Time
	End    time.Time
	Attrs  []Attr
}

// TraceRecord is one finished trace: the immutable output of
// Trace.Finish, safe to share between the flight recorder and readers.
type TraceRecord struct {
	TraceID TraceID
	// Remote is the inbound parent span from the traceparent header the
	// trace was continued from; zero when the trace originated here.
	Remote SpanID
	// Spans holds every recorded span in completion order; Spans[0] is
	// the root.
	Spans []Span
}

// Root returns the record's root span.
func (r TraceRecord) Root() Span { return r.Spans[0] }

// FindSpans returns every span with the given name.
func (r TraceRecord) FindSpans(name string) []Span {
	var out []Span
	for _, sp := range r.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// Trace builds one trace. All methods are safe for concurrent use; the
// zero value is not usable — construct with NewTrace or ContinueTrace.
type Trace struct {
	mu     sync.Mutex
	id     TraceID
	remote SpanID
	spans  []Span
	byID   map[SpanID]int // span id -> index in spans
	open   map[SpanID]bool
	done   bool
}

// NewTrace starts a trace with fresh identifiers; name names the root
// span, opened now.
func NewTrace(name string) *Trace {
	return ContinueTrace(name, NewTraceID(), SpanID{})
}

// ContinueTrace starts a trace that continues an inbound trace context:
// the root span's parent is the remote caller's span.
func ContinueTrace(name string, tid TraceID, remoteParent SpanID) *Trace {
	if tid.IsZero() {
		tid = NewTraceID()
	}
	t := &Trace{
		id:     tid,
		remote: remoteParent,
		spans:  make([]Span, 0, 16),
		byID:   make(map[SpanID]int, 16),
		open:   make(map[SpanID]bool, 4),
	}
	t.startLocked(name, remoteParent, time.Now())
	return t
}

// ID returns the trace identifier.
func (t *Trace) ID() TraceID { return t.id }

// Root returns the root span's identifier.
func (t *Trace) Root() SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans[0].ID
}

// RootStart returns when the root span was opened.
func (t *Trace) RootStart() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans[0].Start
}

func (t *Trace) startLocked(name string, parent SpanID, at time.Time) SpanID {
	id := NewSpanID()
	for {
		if _, dup := t.byID[id]; !dup {
			break
		}
		id = NewSpanID()
	}
	t.byID[id] = len(t.spans)
	t.open[id] = true
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: at})
	return id
}

// StartSpan opens a child span now and returns its identifier.
func (t *Trace) StartSpan(name string, parent SpanID) SpanID {
	return t.StartSpanAt(name, parent, time.Now())
}

// StartSpanAt opens a child span with an explicit start time. After
// Finish it is a no-op returning the zero SpanID (a commit may outlive
// the request that submitted it).
func (t *Trace) StartSpanAt(name string, parent SpanID, at time.Time) SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return SpanID{}
	}
	return t.startLocked(name, parent, at)
}

// EndSpan closes an open span now.
func (t *Trace) EndSpan(id SpanID, attrs ...Attr) {
	t.EndSpanAt(id, time.Now(), attrs...)
}

// EndSpanAt closes an open span with an explicit end time. Ending an
// unknown or already-closed span is a no-op.
func (t *Trace) EndSpanAt(id SpanID, at time.Time, attrs ...Attr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.byID[id]
	if !ok || !t.open[id] || t.done {
		return
	}
	delete(t.open, id)
	t.spans[i].End = at
	t.spans[i].Attrs = append(t.spans[i].Attrs, attrs...)
}

// RecordSpan adds an already-completed span with an explicit window —
// the shape used by the commit path, which measures phases first and
// attributes them to traces afterwards.
func (t *Trace) RecordSpan(name string, parent SpanID, start, end time.Time, attrs ...Attr) SpanID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return SpanID{}
	}
	id := t.startLocked(name, parent, start)
	delete(t.open, id)
	i := t.byID[id]
	t.spans[i].End = end
	t.spans[i].Attrs = append(t.spans[i].Attrs, attrs...)
	return id
}

// Annotate appends attributes to a recorded span (open or closed).
func (t *Trace) Annotate(id SpanID, attrs ...Attr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return
	}
	if i, ok := t.byID[id]; ok {
		t.spans[i].Attrs = append(t.spans[i].Attrs, attrs...)
	}
}

// Window returns a recorded span's time window.
func (t *Trace) Window(id SpanID) (start, end time.Time, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, found := t.byID[id]
	if !found {
		return time.Time{}, time.Time{}, false
	}
	return t.spans[i].Start, t.spans[i].End, true
}

// Finish closes the root span (and any spans still open) now and
// freezes the trace into an immutable record. Further mutations are
// ignored; Finish is idempotent and returns the same record.
func (t *Trace) Finish(attrs ...Attr) TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		now := time.Now()
		t.spans[0].Attrs = append(t.spans[0].Attrs, attrs...)
		for id := range t.open {
			t.spans[t.byID[id]].End = now
		}
		t.open = map[SpanID]bool{}
		t.done = true
	}
	return TraceRecord{TraceID: t.id, Remote: t.remote, Spans: t.spans}
}

// defaultFlightRecorderSize bounds the ring when the configured size is
// zero: 64 traces cover a recent burst without holding more than a few
// MB of span data.
const defaultFlightRecorderSize = 64

// FlightRecorder keeps the most recent N finished traces in a ring
// buffer, so the interesting window around an incident can be dumped
// (via /debug/traces or -trace-dir) after the fact without any external
// collector. Add and Snapshot are safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []TraceRecord
	next  int
	n     int
	total uint64
}

// NewFlightRecorder sizes the ring; size <= 0 selects the default (64).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = defaultFlightRecorderSize
	}
	return &FlightRecorder{buf: make([]TraceRecord, size)}
}

// Add records one finished trace, evicting the oldest when full.
func (r *FlightRecorder) Add(rec TraceRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained traces, oldest first.
func (r *FlightRecorder) Snapshot() []TraceRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Total reports how many traces have ever been added (including the
// evicted ones), so dumps can say how much history the ring dropped.
func (r *FlightRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// chromeEvent is one Chrome trace-event ("X" = complete event, with
// microsecond timestamps). about:tracing and Perfetto load arrays of
// these directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders traces in the Chrome trace-event JSON format
// (the {"traceEvents": [...]} envelope). Each trace gets its own tid so
// concurrent requests stack as separate tracks in Perfetto.
func WriteChromeTrace(w io.Writer, recs []TraceRecord) error {
	events := make([]chromeEvent, 0, 64)
	for ti, rec := range recs {
		for _, sp := range rec.Spans {
			end := sp.End
			if end.IsZero() {
				end = sp.Start
			}
			args := map[string]any{
				"trace_id": rec.TraceID.String(),
				"span_id":  sp.ID.String(),
			}
			if !sp.Parent.IsZero() {
				args["parent_id"] = sp.Parent.String()
			}
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
			events = append(events, chromeEvent{
				Name: sp.Name,
				Cat:  "mdl",
				Ph:   "X",
				TS:   sp.Start.UnixMicro(),
				Dur:  end.Sub(sp.Start).Microseconds(),
				PID:  1,
				TID:  ti + 1,
				Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(map[string]any{"traceEvents": events, "displayTimeUnit": "ms"})
}
