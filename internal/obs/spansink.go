package obs

import (
	"strconv"
	"time"
)

// SpanSink converts one solve's engine event stream into spans on a
// Trace, nesting component -> round -> rule under a caller-provided
// parent span (normally the commit path's "solve" span). The engine hot
// paths stay untouched: spans are synthesized entirely from the events
// PR 4 already emits, so the nil-sink zero-cost contract holds.
//
// Timing model: events are emitted synchronously from the fixpoint
// loops, so the wall-clock interval between consecutive events of one
// component is the time the engine spent producing the later event.
// Rule spans therefore cover [previous event of the component, now] —
// exact for sequential evaluation; under the parallel scheduler the
// merge phase serializes emissions per component, so spans remain
// self-consistent per trace even when components interleave. RuleFired
// events additionally carry the rule's cumulative wall time, attached
// as the nanos_total attribute.
//
// SpanSink is not safe for concurrent use on its own; wrap it with
// Locked when handing it to a parallel solve (the engine does this for
// its own sink chain).
type SpanSink struct {
	tr     *Trace
	parent SpanID

	comp      map[int]SpanID    // open component span per component index
	last      map[int]time.Time // last event time per component
	round     map[int]SpanID    // open round span per component (lazy)
	roundNum  map[int]int       // round number of the open round span
	ruleSpan  map[int]SpanID    // rule index -> last completed rule span
	ruleNanos map[int]int64     // rule index -> last seen cumulative nanos
}

// NewSpanSink builds spans on tr, parenting top-level component spans
// under parent.
func NewSpanSink(tr *Trace, parent SpanID) *SpanSink {
	return &SpanSink{
		tr:        tr,
		parent:    parent,
		comp:      map[int]SpanID{},
		last:      map[int]time.Time{},
		round:     map[int]SpanID{},
		roundNum:  map[int]int{},
		ruleSpan:  map[int]SpanID{},
		ruleNanos: map[int]int64{},
	}
}

// RuleSpan returns the last completed span of a rule (by rule index),
// so per-operator profile spans can be parented under it after the
// solve.
func (s *SpanSink) RuleSpan(idx int) (SpanID, bool) {
	id, ok := s.ruleSpan[idx]
	return id, ok
}

// ensureRound opens the current round's span for a component lazily —
// rounds have no begin event, so the span starts at the component's
// last event time, which is exactly when the round began.
func (s *SpanSink) ensureRound(comp, num int) SpanID {
	if id, ok := s.round[comp]; ok {
		return id
	}
	id := s.tr.StartSpanAt("round "+strconv.Itoa(num), s.comp[comp], s.last[comp])
	s.round[comp] = id
	s.roundNum[comp] = num
	return id
}

// Event implements Sink.
func (s *SpanSink) Event(e Event) {
	now := time.Now()
	switch e.Kind {
	case ComponentBegin:
		attrs := []Attr{StringAttr("preds", e.Preds)}
		if e.WFS {
			attrs = append(attrs, StringAttr("strategy", "wfs"))
		}
		id := s.tr.StartSpanAt("component "+strconv.Itoa(e.Component), s.parent, now)
		s.tr.Annotate(id, attrs...)
		s.comp[e.Component] = id
		s.last[e.Component] = now
	case RuleFired:
		round := s.ensureRound(e.Component, e.Round)
		start := s.last[e.Component]
		id := s.tr.RecordSpan("rule "+strconv.Itoa(e.RuleIndex), round, start, now,
			StringAttr("rule", e.Rule),
			IntAttr("firings", e.Firings),
			IntAttr("derived", e.Derived),
			IntAttr("probes", e.Probes),
			IntAttr("nanos_total", e.Nanos))
		if prev, ok := s.ruleNanos[e.RuleIndex]; ok && e.Nanos >= prev {
			s.tr.Annotate(id, IntAttr("nanos_pass", e.Nanos-prev))
		}
		s.ruleNanos[e.RuleIndex] = e.Nanos
		s.ruleSpan[e.RuleIndex] = id
		s.last[e.Component] = now
	case RoundEnd:
		id := s.ensureRound(e.Component, e.Round)
		s.tr.EndSpanAt(id, now,
			IntAttr("firings", e.Firings),
			IntAttr("derived", e.Derived),
			IntAttr("probes", e.Probes))
		delete(s.round, e.Component)
		s.last[e.Component] = now
	case ComponentEnd:
		if id, ok := s.comp[e.Component]; ok {
			s.tr.EndSpanAt(id, now,
				IntAttr("rounds", int64(e.Round)),
				IntAttr("firings", e.Firings),
				IntAttr("derived", e.Derived))
			delete(s.comp, e.Component)
		}
		delete(s.round, e.Component)
		s.last[e.Component] = now
	case SolveEnd:
		s.tr.Annotate(s.parent,
			IntAttr("rounds", int64(e.Round)),
			IntAttr("firings", e.Firings),
			IntAttr("derived", e.Derived),
			IntAttr("probes", e.Probes))
	}
}
