package deps

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const shortestPath = `
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`

func TestShortestPathComponents(t *testing.T) {
	g := Build(mustParse(t, shortestPath))
	comps := g.SCCs()
	// arc is its own (lowest) component; {path, s} are mutually recursive.
	var rec *Component
	for _, c := range comps {
		if c.Recursive {
			if rec != nil {
				t.Fatal("expected exactly one recursive component")
			}
			rec = c
		}
	}
	if rec == nil || len(rec.Preds) != 2 {
		t.Fatalf("recursive component = %+v", rec)
	}
	if !rec.Has("path/4") || !rec.Has("s/3") {
		t.Fatalf("component preds = %v", rec.Preds)
	}
	if !rec.RecursesThroughAggregation {
		t.Fatal("path/s recursion passes through min")
	}
	if rec.RecursesThroughNegation {
		t.Fatal("no negation here")
	}
	if AggregateStratified(comps) {
		t.Fatal("shortest path is not aggregate stratified (§5.1)")
	}
	if !NegationStratified(comps) {
		t.Fatal("shortest path has no negation")
	}
}

func TestBottomUpOrder(t *testing.T) {
	g := Build(mustParse(t, shortestPath))
	comps := g.SCCs()
	idx := ComponentIndex(comps)
	// arc must come before the {path, s} component.
	if idx["arc/3"] >= idx["path/4"] {
		t.Fatalf("arc (%d) must precede path (%d)", idx["arc/3"], idx["path/4"])
	}
}

func TestStratifiedProgram(t *testing.T) {
	src := `
avg1(S, G) :- G ?= avg A : record(S, C, A).
best(S)    :- avg1(S, G), G > 90.
`
	g := Build(mustParse(t, src))
	comps := g.SCCs()
	if !AggregateStratified(comps) {
		t.Fatal("non-recursive aggregation is aggregate stratified")
	}
	for _, c := range comps {
		if c.Recursive {
			t.Fatalf("no component should be recursive: %+v", c)
		}
	}
}

func TestNegationEdges(t *testing.T) {
	src := `win(X) :- move(X, Y), not win(Y).`
	g := Build(mustParse(t, src))
	comps := g.SCCs()
	var win *Component
	for _, c := range comps {
		if c.Has("win/1") {
			win = c
		}
	}
	if win == nil || !win.RecursesThroughNegation || !win.Recursive {
		t.Fatalf("win component = %+v", win)
	}
	if NegationStratified(comps) {
		t.Fatal("win recurses through negation")
	}
}

func TestSelfLoopIsRecursive(t *testing.T) {
	g := Build(mustParse(t, `p(X) :- p(X).`))
	comps := g.SCCs()
	if len(comps) != 1 || !comps[0].Recursive {
		t.Fatalf("comps = %+v", comps)
	}
	g2 := Build(mustParse(t, `p(X) :- q(X).`))
	for _, c := range g2.SCCs() {
		if c.Recursive {
			t.Fatal("no recursion in p :- q")
		}
	}
}

func TestSplitCDBLDB(t *testing.T) {
	p := mustParse(t, shortestPath)
	comps := Build(p).SCCs()
	var rec *Component
	for _, c := range comps {
		if c.Recursive {
			rec = c
		}
	}
	cdb, ldb := Split(p, rec)
	if !cdb["path/4"] || !cdb["s/3"] || len(cdb) != 2 {
		t.Fatalf("cdb = %v", cdb)
	}
	if !ldb["arc/3"] || len(ldb) != 1 {
		t.Fatalf("ldb = %v", ldb)
	}
	rules := RulesOfComponent(p, rec)
	if len(rules) != 3 {
		t.Fatalf("component rules = %d", len(rules))
	}
}

func TestLongChainTopoOrder(t *testing.T) {
	// p0 :- p1. p1 :- p2. ... ensures the iterative Tarjan handles depth
	// and that order is bottom-up.
	src := ""
	for i := 0; i < 200; i++ {
		src += "p" + itoa(i) + "(X) :- p" + itoa(i+1) + "(X).\n"
	}
	g := Build(mustParse(t, src))
	comps := g.SCCs()
	if len(comps) != 201 {
		t.Fatalf("components = %d, want 201", len(comps))
	}
	idx := ComponentIndex(comps)
	for i := 0; i < 200; i++ {
		lo := ast.MakePredKey("p"+itoa(i+1), 1)
		hi := ast.MakePredKey("p"+itoa(i), 1)
		if idx[lo] >= idx[hi] {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestMutualRecursionThroughCount(t *testing.T) {
	// The §3 example with two minimal models: p and q are mutually
	// recursive through count.
	src := `
p(b).
q(b).
p(a) :- N ?= count : q(X), N = 1.
q(a) :- N ?= count : p(X), N = 1.
`
	g := Build(mustParse(t, src))
	comps := g.SCCs()
	var rec *Component
	for _, c := range comps {
		if c.Recursive {
			rec = c
		}
	}
	if rec == nil || len(rec.Preds) != 2 || !rec.RecursesThroughAggregation {
		t.Fatalf("component = %+v", rec)
	}
}
