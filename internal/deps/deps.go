// Package deps performs predicate dependency analysis: it builds the
// dependency graph of a program, decomposes it into strongly connected
// components (the "program components" of Definition 2.2), orders them
// bottom-up, and classifies edges as passing through negation or through
// aggregation — the information needed for the stratification ladder of
// §5.1 and the iterated minimal models of §6.3.
package deps

import (
	"sort"

	"repro/internal/ast"
)

// Edge flavor flags.
type EdgeKind uint8

// An edge may arise from several subgoal positions at once.
const (
	Positive   EdgeKind = 1 << iota
	Negative            // head depends on the predicate through "not"
	Aggregated          // head depends on the predicate inside an aggregate
)

// Graph is the predicate dependency graph of a program.
type Graph struct {
	// Edges[p][q] is set when a rule with head p uses q in its body.
	Edges map[ast.PredKey]map[ast.PredKey]EdgeKind
	// Heads is the set of predicates defined by rules.
	Heads map[ast.PredKey]bool
	preds []ast.PredKey
}

// Build constructs the dependency graph of p.
func Build(p *ast.Program) *Graph {
	g := &Graph{
		Edges: map[ast.PredKey]map[ast.PredKey]EdgeKind{},
		Heads: map[ast.PredKey]bool{},
	}
	seen := map[ast.PredKey]bool{}
	touch := func(k ast.PredKey) {
		if !seen[k] {
			seen[k] = true
			g.preds = append(g.preds, k)
		}
	}
	addEdge := func(from, to ast.PredKey, kind EdgeKind) {
		touch(from)
		touch(to)
		m := g.Edges[from]
		if m == nil {
			m = map[ast.PredKey]EdgeKind{}
			g.Edges[from] = m
		}
		m[to] |= kind
	}
	for _, r := range p.Rules {
		h := r.Head.Key()
		g.Heads[h] = true
		touch(h)
		for _, s := range r.Body {
			switch s := s.(type) {
			case *ast.Lit:
				kind := Positive
				if s.Neg {
					kind = Negative
				}
				addEdge(h, s.Atom.Key(), kind)
			case *ast.Agg:
				for i := range s.Conj {
					addEdge(h, s.Conj[i].Key(), Aggregated)
				}
			}
		}
	}
	sort.Slice(g.preds, func(i, j int) bool { return g.preds[i] < g.preds[j] })
	return g
}

// Component is one strongly connected component together with the
// classification of its internal recursion.
type Component struct {
	// Preds are the mutually recursive predicates, sorted.
	Preds []ast.PredKey
	// RecursesThroughNegation is set when some internal edge is negative.
	RecursesThroughNegation bool
	// RecursesThroughAggregation is set when some internal edge passes
	// through an aggregate subgoal — the defining feature of the programs
	// this paper gives semantics to.
	RecursesThroughAggregation bool
	// Recursive is set when the component has any internal edge at all
	// (a single predicate with a self-loop counts).
	Recursive bool
}

// Has reports whether the component contains k.
func (c *Component) Has(k ast.PredKey) bool {
	for _, p := range c.Preds {
		if p == k {
			return true
		}
	}
	return false
}

// SCCs returns the strongly connected components of the graph in
// *bottom-up* topological order: every edge leaving a component points to
// an earlier component in the returned slice, so evaluating components in
// order sees all lower predicates already computed (§6.3).
func (g *Graph) SCCs() []*Component {
	// Tarjan's algorithm, iterative to survive deep programs.
	index := map[ast.PredKey]int{}
	low := map[ast.PredKey]int{}
	onStack := map[ast.PredKey]bool{}
	var stack []ast.PredKey
	var comps [][]ast.PredKey
	counter := 0

	type frame struct {
		v    ast.PredKey
		outs []ast.PredKey
		i    int
	}
	outsOf := func(v ast.PredKey) []ast.PredKey {
		m := g.Edges[v]
		out := make([]ast.PredKey, 0, len(m))
		for k := range m {
			out = append(out, k)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	var visit func(root ast.PredKey)
	visit = func(root ast.PredKey) {
		frames := []frame{{v: root, outs: outsOf(root)}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.outs) {
				w := f.outs[f.i]
				f.i++
				if _, seen := index[w]; !seen {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, outs: outsOf(w)})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Pop the frame.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []ast.PredKey
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
				comps = append(comps, comp)
			}
		}
	}
	for _, v := range g.preds {
		if _, seen := index[v]; !seen {
			visit(v)
		}
	}
	// Tarjan emits components in reverse topological order of the
	// condensation; since edges run head -> body (higher -> lower), the
	// emission order is exactly bottom-up.
	out := make([]*Component, 0, len(comps))
	for _, preds := range comps {
		c := &Component{Preds: preds}
		in := map[ast.PredKey]bool{}
		for _, p := range preds {
			in[p] = true
		}
		for _, p := range preds {
			for q, kind := range g.Edges[p] {
				if !in[q] {
					continue
				}
				c.Recursive = true
				if kind&Negative != 0 {
					c.RecursesThroughNegation = true
				}
				if kind&Aggregated != 0 {
					c.RecursesThroughAggregation = true
				}
			}
		}
		out = append(out, c)
	}
	return out
}

// ComponentOf returns a map from predicate to the index of its component
// in the order returned by SCCs.
func ComponentIndex(comps []*Component) map[ast.PredKey]int {
	out := map[ast.PredKey]int{}
	for i, c := range comps {
		for _, p := range c.Preds {
			out[p] = i
		}
	}
	return out
}

// RulesOfComponent returns the rules whose head predicate belongs to the
// component — the "program component" the paper evaluates at a time.
func RulesOfComponent(p *ast.Program, c *Component) []*ast.Rule {
	var out []*ast.Rule
	for _, r := range p.Rules {
		if c.Has(r.Head.Key()) {
			out = append(out, r)
		}
	}
	return out
}

// Split classifies the predicates referenced by the component's rules into
// CDB (defined in the component) and LDB (referenced but defined below),
// per Definition 2.2's terminology.
func Split(p *ast.Program, c *Component) (cdb, ldb map[ast.PredKey]bool) {
	cdb = map[ast.PredKey]bool{}
	ldb = map[ast.PredKey]bool{}
	for _, k := range c.Preds {
		cdb[k] = true
	}
	for _, r := range RulesOfComponent(p, c) {
		for _, s := range r.Body {
			switch s := s.(type) {
			case *ast.Lit:
				if !cdb[s.Atom.Key()] {
					ldb[s.Atom.Key()] = true
				}
			case *ast.Agg:
				for i := range s.Conj {
					if !cdb[s.Conj[i].Key()] {
						ldb[s.Conj[i].Key()] = true
					}
				}
			}
		}
	}
	return cdb, ldb
}

// AggregateStratified reports whether the program never recurses through
// aggregation (the "aggregate stratified" class of Mumick et al., §5.1).
func AggregateStratified(comps []*Component) bool {
	for _, c := range comps {
		if c.RecursesThroughAggregation {
			return false
		}
	}
	return true
}

// NegationStratified reports whether the program never recurses through
// negation.
func NegationStratified(comps []*Component) bool {
	for _, c := range comps {
		if c.RecursesThroughNegation {
			return false
		}
	}
	return true
}
