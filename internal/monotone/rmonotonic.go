package monotone

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/lattice"
)

// CheckRMonotonic implements a syntactic test for the r-monotonicity of
// Mumick et al. (Definition 5.1, as restated in §5.2): adding tuples to
// the relations of the rule's ordinary or aggregate subgoals can only add
// head tuples. The test is conservative (sufficient, not complete):
//
//   - no negative literals (a new tuple in a negated relation invalidates
//     derivations);
//   - no aggregate result may reach the head (Mumick et al. "cannot have
//     the result of an aggregation as part of a resulting head tuple");
//   - every other use of an aggregate result must be a comparison against
//     a ground constant that stays satisfied as the aggregate grows (e.g.
//     "N > 0.5" for sum; Example 4.3's "N >= K" with K drawn from a
//     relation is rejected — the paper notes it is monotonic but not
//     r-monotonic).
func CheckRMonotonic(r *ast.Rule, s ast.Schemas) error {
	aggDirs := map[ast.Var]dir{}
	for _, sg := range r.Body {
		switch sg := sg.(type) {
		case *ast.Lit:
			if sg.Neg {
				return fmt.Errorf("monotone: rule %q is not r-monotonic: negative subgoal %s", r, sg)
			}
		case *ast.Agg:
			f, ok := lattice.AggregateByName(sg.Func)
			if !ok {
				return fmt.Errorf("monotone: rule %q: unknown aggregate %s", r, sg.Func)
			}
			if !f.Monotone() {
				return fmt.Errorf("monotone: rule %q is not r-monotonic: non-monotone aggregate %s", r, sg.Func)
			}
			aggDirs[sg.Result] = latticeDir(f.Range())
		}
	}
	if len(aggDirs) == 0 {
		return nil // plain positive rules are r-monotonic
	}
	for _, v := range r.Head.Vars(nil) {
		if _, isAgg := aggDirs[v]; isAgg {
			return fmt.Errorf("monotone: rule %q is not r-monotonic: aggregate result %s appears in the head", r, v)
		}
	}
	isGround := func(e ast.Expr) bool { return len(e.Vars(nil)) == 0 }
	for _, sg := range r.Body {
		b, ok := sg.(*ast.Builtin)
		if !ok {
			continue
		}
		check := func(v ast.Var, side dir, other ast.Expr) error {
			d, isAgg := aggDirs[v]
			if !isAgg {
				return nil
			}
			if !isGround(other) {
				return fmt.Errorf("monotone: rule %q is not r-monotonic: aggregate result %s compared against non-constant %s", r, v, other)
			}
			okDir := false
			switch b.Op {
			case ast.OpGt, ast.OpGe:
				okDir = side == dirUp && d == dirUp || side == dirDown && d == dirDown
			case ast.OpLt, ast.OpLe:
				okDir = side == dirUp && d == dirDown || side == dirDown && d == dirUp
			}
			// side: dirUp means v is on the left of the comparison.
			if !okDir {
				return fmt.Errorf("monotone: rule %q is not r-monotonic: growth of %s can invalidate %s", r, v, b)
			}
			return nil
		}
		if lv, ok := b.L.(ast.VarExpr); ok {
			if err := check(lv.V, dirUp, b.R); err != nil {
				return err
			}
		}
		if rv, ok := b.R.(ast.VarExpr); ok {
			if err := check(rv.V, dirDown, b.L); err != nil {
				return err
			}
		}
		// Aggregate results buried inside arithmetic are rejected.
		for _, e := range []ast.Expr{b.L, b.R} {
			if _, isVarExpr := e.(ast.VarExpr); isVarExpr {
				continue
			}
			for _, v := range e.Vars(nil) {
				if _, isAgg := aggDirs[v]; isAgg {
					return fmt.Errorf("monotone: rule %q is not r-monotonic: aggregate result %s used in arithmetic", r, v)
				}
			}
		}
	}
	return nil
}
