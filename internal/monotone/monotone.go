// Package monotone implements the syntactic sufficient conditions of §4.2
// of Ross & Sagiv (PODS 1992) for a program component to be monotonic:
// well-formed rules (Definition 4.2), monotonic built-in conjunctions E_r
// (Definitions 4.3-4.4, via a checkable sufficient condition), and
// admissible rules (Definition 4.5), which by Lemma 4.1 make T_P monotone
// in its first argument.
//
// It also classifies programs on the related-work ladder of §5:
// r-monotonicity (Mumick et al., Definition 5.1) and aggregate
// stratification.
package monotone

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/deps"
	"repro/internal/lattice"
)

// dir describes how a value can move as CDB cost values increase in their
// lattice order.
type dir int

const (
	dirFixed dir = iota // same value under the increased interpretation
	dirUp               // numerically non-decreasing
	dirDown             // numerically non-increasing
	dirMixed            // unknown / both ways — rejected
)

// latticeDir maps a numeric cost lattice to the numeric direction its
// elements move when they increase in ⊑.
func latticeDir(l lattice.Lattice) dir {
	switch l.Name() {
	case "maxreal", "sumreal", "prodnat", "countnat":
		return dirUp
	case "minreal":
		return dirDown
	default:
		return dirMixed // boolean/set lattices take no part in arithmetic
	}
}

func combineAdd(a, b dir) dir {
	if a == dirFixed {
		return b
	}
	if b == dirFixed {
		return a
	}
	if a == b {
		return a
	}
	return dirMixed
}

func flip(d dir) dir {
	switch d {
	case dirUp:
		return dirDown
	case dirDown:
		return dirUp
	}
	return d
}

// Context carries the componentwise CDB/LDB split needed by the checks.
type Context struct {
	Schemas ast.Schemas
	// CDB is the set of predicates defined in the component under
	// analysis; everything else referenced is LDB.
	CDB map[ast.PredKey]bool
}

// cdbCostVars returns, for rule r, the CDB cost variables (§4.2): a
// variable in a cost argument of a CDB predicate occurrence, or the
// aggregate variable of a CDB aggregate; together with the lattice typing
// each such occurrence implies, and the number of occurrences among
// non-built-in subgoals.
func (cx *Context) cdbCostVars(r *ast.Rule) (vars map[ast.Var]lattice.Lattice, occurrences map[ast.Var]int, err error) {
	vars = map[ast.Var]lattice.Lattice{}
	occurrences = map[ast.Var]int{}
	note := func(v ast.Var, l lattice.Lattice, where string) error {
		if prev, ok := vars[v]; ok && prev.Name() != l.Name() {
			return fmt.Errorf("monotone: rule %q: CDB cost variable %s typed both %s and %s (%s)",
				r, v, prev.Name(), l.Name(), where)
		}
		vars[v] = l
		occurrences[v]++
		return nil
	}
	for i, sg := range r.Body {
		switch sg := sg.(type) {
		case *ast.Lit:
			pi := cx.Schemas.Info(sg.Atom.Key())
			if pi == nil || !pi.HasCost || !cx.CDB[sg.Atom.Key()] {
				continue
			}
			if v, ok := sg.Atom.Args[pi.CostIndex()].(ast.Var); ok {
				if err := note(v, pi.L, sg.String()); err != nil {
					return nil, nil, err
				}
			}
		case *ast.Agg:
			if cx.isCDBAggregate(sg) {
				f, ok := lattice.AggregateByName(sg.Func)
				if !ok {
					return nil, nil, fmt.Errorf("monotone: rule %q: unknown aggregate %s", r, sg.Func)
				}
				if err := note(sg.Result, f.Range(), sg.String()); err != nil {
					return nil, nil, err
				}
			}
			// A CDB cost variable may also occur inside the aggregation's
			// cost arguments (other than the multiset variable).
			for ci := range sg.Conj {
				a := &sg.Conj[ci]
				pi := cx.Schemas.Info(a.Key())
				if pi == nil || !pi.HasCost || !cx.CDB[a.Key()] {
					continue
				}
				if v, ok := a.Args[pi.CostIndex()].(ast.Var); ok && v != sg.MultisetVar {
					if err := note(v, pi.L, sg.String()); err != nil {
						return nil, nil, err
					}
				}
			}
		}
		_ = i
	}
	return vars, occurrences, nil
}

// isCDBAggregate reports whether the aggregate subgoal mentions a CDB
// predicate (a "CDB aggregate", §4.2).
func (cx *Context) isCDBAggregate(g *ast.Agg) bool {
	for i := range g.Conj {
		if cx.CDB[g.Conj[i].Key()] {
			return true
		}
	}
	return false
}

// CheckWellFormed enforces Definition 4.2 plus the implicit condition that
// CDB cost variables do not leak into non-cost positions of the head or
// body (which would let a cost value act as data and break Lemma 4.1's
// proof).
func (cx *Context) CheckWellFormed(r *ast.Rule) error {
	// (1) Built-ins cannot appear inside aggregate subgoals: guaranteed
	// structurally (ast.Agg aggregates a conjunction of atoms).

	// (2) Only variables in cost arguments of CDB predicates.
	for _, sg := range r.Body {
		switch sg := sg.(type) {
		case *ast.Lit:
			pi := cx.Schemas.Info(sg.Atom.Key())
			if pi != nil && pi.HasCost && cx.CDB[sg.Atom.Key()] {
				if _, ok := sg.Atom.Args[pi.CostIndex()].(ast.Var); !ok {
					return fmt.Errorf("monotone: rule %q: constant in CDB cost argument of %s (add a built-in equality instead)", r, sg.Atom.String())
				}
			}
		case *ast.Agg:
			for ci := range sg.Conj {
				a := &sg.Conj[ci]
				pi := cx.Schemas.Info(a.Key())
				if pi != nil && pi.HasCost && cx.CDB[a.Key()] {
					if _, ok := a.Args[pi.CostIndex()].(ast.Var); !ok {
						return fmt.Errorf("monotone: rule %q: constant in CDB cost argument inside %s", r, sg)
					}
				}
			}
		}
	}
	hp := cx.Schemas.Info(r.Head.Key())
	if hp != nil && hp.HasCost && cx.CDB[r.Head.Key()] {
		if _, ok := r.Head.Args[hp.CostIndex()].(ast.Var); !ok {
			if r.IsFact() {
				// Ground cost facts are harmless seeds (they behave as
				// LDB input joined into the bottom interpretation).
			} else {
				return fmt.Errorf("monotone: rule %q: constant cost in rule head (add a built-in equality instead)", r)
			}
		}
	}

	// (3) Each CDB cost variable occurs at most once among the
	// non-built-in subgoals.
	vars, occ, err := cx.cdbCostVars(r)
	if err != nil {
		return err
	}
	for v, n := range occ {
		if n > 1 {
			return fmt.Errorf("monotone: rule %q: CDB cost variable %s occurs %d times among non-built-in subgoals", r, v, n)
		}
	}
	// The multiset variable is exempt from (3) for its occurrence after
	// the aggregate function, but Lemma 4.1's proof still requires that
	// no two CDB atoms of one conjunction share it in their cost
	// arguments (their costs could then not be raised independently).
	for _, sg := range r.Body {
		g, ok := sg.(*ast.Agg)
		if !ok || g.MultisetVar == "" {
			continue
		}
		cdbMsUses := 0
		for ci := range g.Conj {
			a := &g.Conj[ci]
			pi := cx.Schemas.Info(a.Key())
			if pi == nil || !pi.HasCost || !cx.CDB[a.Key()] {
				continue
			}
			if v, isVar := a.Args[pi.CostIndex()].(ast.Var); isVar && v == g.MultisetVar {
				cdbMsUses++
			}
		}
		if cdbMsUses > 1 {
			return fmt.Errorf("monotone: rule %q: multiset variable %s ties the costs of %d CDB atoms together in %s (Lemma 4.1's proof requires independent costs)",
				r, g.MultisetVar, cdbMsUses, g)
		}
	}

	// CDB cost variables must not appear in non-cost positions anywhere
	// (body handled by (3) since any extra occurrence is counted; the
	// head needs an explicit check).
	if hp != nil {
		for j, t := range r.Head.Args {
			v, ok := t.(ast.Var)
			if !ok {
				continue
			}
			if hp.HasCost && j == hp.CostIndex() {
				continue
			}
			if _, isCost := vars[v]; isCost {
				return fmt.Errorf("monotone: rule %q: CDB cost variable %s appears in a non-cost head argument", r, v)
			}
		}
	}
	// Count non-cost body occurrences of CDB cost variables explicitly:
	// occurrence counting in (3) covers cost positions and aggregate
	// results; a CDB cost variable used as ordinary data is a separate
	// leak.
	for _, sg := range r.Body {
		switch sg := sg.(type) {
		case *ast.Lit:
			pi := cx.Schemas.Info(sg.Atom.Key())
			for j, t := range sg.Atom.Args {
				v, ok := t.(ast.Var)
				if !ok {
					continue
				}
				if pi != nil && pi.HasCost && j == pi.CostIndex() {
					continue
				}
				if _, isCost := vars[v]; isCost {
					return fmt.Errorf("monotone: rule %q: CDB cost variable %s appears in a non-cost argument of %s", r, v, sg.Atom.String())
				}
			}
		case *ast.Agg:
			for ci := range sg.Conj {
				a := &sg.Conj[ci]
				pi := cx.Schemas.Info(a.Key())
				for j, t := range a.Args {
					v, ok := t.(ast.Var)
					if !ok {
						continue
					}
					if pi != nil && pi.HasCost && j == pi.CostIndex() {
						continue
					}
					if _, isCost := vars[v]; isCost {
						return fmt.Errorf("monotone: rule %q: CDB cost variable %s appears in a non-cost argument inside %s", r, v, sg)
					}
				}
			}
		}
	}
	return nil
}

// CheckBuiltins verifies the sufficient condition for E_r (the conjunction
// of built-in subgoals) to be monotonic in the sense of Definition 4.4:
// increasing the CDB cost variables (with respect to their lattices) must
// keep the conjunction satisfiable by re-choosing the built-in-only
// variables, and can only increase the head cost variable.
func (cx *Context) CheckBuiltins(r *ast.Rule) error {
	cdbVars, _, err := cx.cdbCostVars(r)
	if err != nil {
		return err
	}
	// Direction environment: CDB cost vars move with their lattices;
	// variables bound by non-built-in subgoals otherwise are fixed;
	// built-in-only variables get directions derived from defining
	// equalities.
	dirs := map[ast.Var]dir{}
	boundOutside := map[ast.Var]bool{}
	for _, sg := range r.Body {
		if _, isB := sg.(*ast.Builtin); isB {
			continue
		}
		for _, v := range sg.FreeVars(nil) {
			boundOutside[v] = true
		}
	}
	for v := range boundOutside {
		if l, isCost := cdbVars[v]; isCost {
			d := latticeDir(l)
			if d == dirMixed {
				// Boolean/set-valued CDB cost variables may flow only
				// through non-built-in subgoals; participating in E_r is
				// rejected below if they appear there.
				dirs[v] = dirMixed
			} else {
				dirs[v] = d
			}
		} else {
			dirs[v] = dirFixed
		}
	}

	var exprDir func(e ast.Expr) dir
	exprDir = func(e ast.Expr) dir {
		switch e := e.(type) {
		case ast.NumExpr, ast.ConstExpr:
			return dirFixed
		case ast.VarExpr:
			if d, ok := dirs[e.V]; ok {
				return d
			}
			return dirMixed // not yet derived
		case *ast.BinExpr:
			l, rr := exprDir(e.L), exprDir(e.R)
			switch e.Op {
			case ast.OpAdd:
				return combineAdd(l, rr)
			case ast.OpSub:
				return combineAdd(l, flip(rr))
			case ast.OpMul, ast.OpDiv:
				if l == dirFixed && rr == dirFixed {
					return dirFixed
				}
				// The sign of the other factor is unknown statically, so
				// a moving operand makes the product direction unknown.
				return dirMixed
			}
		}
		return dirMixed
	}

	// Pass 1: derive directions for built-in-only variables from
	// definitional equalities, iterating to handle chains.
	builtins := []*ast.Builtin{}
	for _, sg := range r.Body {
		if b, ok := sg.(*ast.Builtin); ok {
			builtins = append(builtins, b)
		}
	}
	for pass := 0; pass < len(builtins)+1; pass++ {
		for _, b := range builtins {
			if b.Op != ast.OpEq {
				continue
			}
			tryDefine := func(lhs, rhs ast.Expr) {
				v, ok := lhs.(ast.VarExpr)
				if !ok || boundOutside[v.V] {
					return
				}
				if _, done := dirs[v.V]; done {
					return
				}
				d := exprDir(rhs)
				if d != dirMixed {
					dirs[v.V] = d
				}
			}
			tryDefine(b.L, b.R)
			tryDefine(b.R, b.L)
		}
	}

	// Pass 2: check every built-in subgoal.
	for _, b := range builtins {
		ld, rd := exprDir(b.L), exprDir(b.R)
		switch b.Op {
		case ast.OpEq:
			// A definitional equality (one side a built-in-only variable)
			// is always re-satisfiable by re-choosing that variable; its
			// direction was derived above. Otherwise both sides must be
			// fixed.
			if lv, ok := b.L.(ast.VarExpr); ok && !boundOutside[lv.V] {
				if _, derived := dirs[lv.V]; derived {
					continue
				}
			}
			if rv, ok := b.R.(ast.VarExpr); ok && !boundOutside[rv.V] {
				if _, derived := dirs[rv.V]; derived {
					continue
				}
			}
			if ld == dirFixed && rd == dirFixed {
				continue
			}
			return fmt.Errorf("monotone: rule %q: equality %s constrains a CDB cost variable non-definitionally", r, b)
		case ast.OpNe:
			if ld == dirFixed && rd == dirFixed {
				continue
			}
			return fmt.Errorf("monotone: rule %q: disequality %s involves a moving CDB cost value", r, b)
		case ast.OpGt, ast.OpGe:
			// L > R stays satisfied when L can only grow and R can only
			// shrink (numerically) as CDB costs increase.
			if (ld == dirFixed || ld == dirUp) && (rd == dirFixed || rd == dirDown) {
				continue
			}
			return fmt.Errorf("monotone: rule %q: comparison %s can be invalidated by a cost increase", r, b)
		case ast.OpLt, ast.OpLe:
			if (ld == dirFixed || ld == dirDown) && (rd == dirFixed || rd == dirUp) {
				continue
			}
			return fmt.Errorf("monotone: rule %q: comparison %s can be invalidated by a cost increase", r, b)
		}
	}

	// Pass 3: the head cost variable must move in the head lattice's
	// direction (Definition 4.4's σ1(v_h) ⊑ σ'2(v_h)).
	hp := cx.Schemas.Info(r.Head.Key())
	if hp != nil && hp.HasCost && cx.CDB[r.Head.Key()] && !r.IsFact() {
		hv, ok := r.Head.Args[hp.CostIndex()].(ast.Var)
		if ok {
			hd, derived := dirs[hv]
			if !derived {
				return fmt.Errorf("monotone: rule %q: head cost variable %s has no derivable direction (unbound or non-monotone definition)", r, hv)
			}
			want := latticeDir(hp.L)
			if want == dirMixed {
				// Boolean/set head lattices: the head cost must be bound
				// directly by a non-built-in subgoal of the same lattice.
				if boundOutside[hv] {
					if l, isCost := cdbVars[hv]; !isCost || l.Name() == hp.L.Name() {
						return nil
					}
					return fmt.Errorf("monotone: rule %q: head cost variable %s typed %s but head is %s", r, hv, cdbVars[hv].Name(), hp.L.Name())
				}
				return fmt.Errorf("monotone: rule %q: %s-valued head cost must be bound by an atom or aggregate, not arithmetic", r, hp.L.Name())
			}
			if hd != dirFixed && hd != want {
				return fmt.Errorf("monotone: rule %q: head cost variable %s moves %s but lattice %s requires %s",
					r, hv, dirName(hd), hp.L.Name(), dirName(want))
			}
			// Typing: when the head cost is bound directly by a body
			// occurrence, the lattices must agree.
			if l, isCost := cdbVars[hv]; isCost && l.Name() != hp.L.Name() {
				return fmt.Errorf("monotone: rule %q: head cost variable %s typed %s but head is %s", r, hv, l.Name(), hp.L.Name())
			}
		}
	}
	return nil
}

func dirName(d dir) string {
	switch d {
	case dirFixed:
		return "fixed"
	case dirUp:
		return "upward"
	case dirDown:
		return "downward"
	}
	return "mixed"
}

// CheckAdmissible verifies Definition 4.5 for one rule.
func (cx *Context) CheckAdmissible(r *ast.Rule) error {
	if err := cx.CheckWellFormed(r); err != nil {
		return err
	}
	// Negative CDB subgoals always break monotonicity (§6.3).
	for _, sg := range r.Body {
		if l, ok := sg.(*ast.Lit); ok && l.Neg && cx.CDB[l.Atom.Key()] {
			return fmt.Errorf("monotone: rule %q: negation on CDB predicate %s", r, l.Atom.Key())
		}
	}
	// Each CDB aggregate must use a monotone function, or a
	// pseudo-monotone one over default-value CDB predicates only.
	for _, sg := range r.Body {
		g, ok := sg.(*ast.Agg)
		if !ok || !cx.isCDBAggregate(g) {
			continue
		}
		f, ok := lattice.AggregateByName(g.Func)
		if !ok {
			return fmt.Errorf("monotone: rule %q: unknown aggregate %s", r, g.Func)
		}
		if f.Monotone() {
			continue
		}
		if !f.PseudoMonotone() {
			return fmt.Errorf("monotone: rule %q: aggregate %s is neither monotone nor pseudo-monotone", r, g.Func)
		}
		for ci := range g.Conj {
			a := &g.Conj[ci]
			if !cx.CDB[a.Key()] {
				continue
			}
			pi := cx.Schemas.Info(a.Key())
			if pi == nil || !pi.HasDefault {
				return fmt.Errorf("monotone: rule %q: pseudo-monotone aggregate %s over CDB predicate %s that is not a default-value cost predicate (Definition 4.5)",
					r, g.Func, a.Key())
			}
		}
	}
	return cx.CheckBuiltins(r)
}

// Report summarizes the classification of a whole program.
type Report struct {
	// Admissible is nil when every rule of every component passes
	// Definition 4.5, making each component monotonic (Lemma 4.1).
	Admissible error
	// RMonotonic is nil when every rule is r-monotonic in the sense of
	// Mumick et al. (Definition 5.1).
	RMonotonic error
	// AggregateStratified reports the absence of recursion through
	// aggregation (§5.1).
	AggregateStratified bool
	// NegationStratified reports the absence of recursion through
	// negation.
	NegationStratified bool
}

// CheckProgram classifies the program on the §5 ladder, checking
// admissibility componentwise (CDB/LDB is a per-component notion).
func CheckProgram(p *ast.Program, s ast.Schemas) Report {
	g := deps.Build(p)
	comps := g.SCCs()
	rep := Report{
		AggregateStratified: deps.AggregateStratified(comps),
		NegationStratified:  deps.NegationStratified(comps),
	}
	for _, c := range comps {
		cdb, _ := deps.Split(p, c)
		cx := &Context{Schemas: s, CDB: cdb}
		for _, r := range deps.RulesOfComponent(p, c) {
			if err := cx.CheckAdmissible(r); err != nil {
				rep.Admissible = err
				break
			}
		}
		if rep.Admissible != nil {
			break
		}
	}
	for _, r := range p.Rules {
		if err := CheckRMonotonic(r, s); err != nil {
			rep.RMonotonic = err
			break
		}
	}
	return rep
}
