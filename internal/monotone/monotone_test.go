package monotone

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func load(t *testing.T, src string) (*ast.Program, ast.Schemas) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ast.BuildSchemas(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ast.ValidateProgram(p, s); err != nil {
		t.Fatal(err)
	}
	return p, s
}

const shortestPath = `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`

const companyControl = `
.cost s/3 : sumreal.
.cost cv/4 : sumreal.
.cost m/3 : sumreal.
cv(X, X, Y, N) :- s(X, Y, N).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
m(X, Y, N)     :- N ?= sum M : cv(X, Z, Y, M).
c(X, Y)        :- m(X, Y, N), N > 0.5.
`

const party = `
.cost requires/2 : countnat.
coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
kc(X, Y)  :- knows(X, Y), coming(Y).
`

const circuit = `
.cost t/2 : boolor.
.cost input/2 : boolor.
.default t/2 = 0.
t(W, C) :- input(W, C).
t(G, C) :- gate(G, or),  C = or D : [connect(G, W), t(W, D)].
t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
`

// TestPaperProgramsAdmissible verifies Example 4.2 (shortest path and
// company control are admissible) plus Examples 4.3 and 4.4.
func TestPaperProgramsAdmissible(t *testing.T) {
	for name, src := range map[string]string{
		"shortest-path":   shortestPath,
		"company-control": companyControl,
		"party":           party,
		"circuit":         circuit,
	} {
		p, s := load(t, src)
		rep := CheckProgram(p, s)
		if rep.Admissible != nil {
			t.Errorf("%s: admissibility rejected: %v", name, rep.Admissible)
		}
	}
}

// TestStratificationLadder reproduces §5's classification: all four
// motivating programs recurse through aggregation (not aggregate
// stratified), and only suitably fused rules are r-monotonic.
func TestStratificationLadder(t *testing.T) {
	cases := []struct {
		name       string
		src        string
		rMonotonic bool
	}{
		// §5.2: shortest path is not r-monotonic (aggregate result in head).
		{"shortest-path", shortestPath, false},
		// §5.2: company control as written is not r-monotonic (rule 3).
		{"company-control", companyControl, false},
		// §5.2: Example 4.3 is monotonic but not r-monotonic (the K
		// comparison).
		{"party", party, false},
		// §5.2: the fused company-control formulation is r-monotonic.
		{"fused-company-control", `
.cost s/3 : sumreal.
.cost cv/4 : sumreal.
cv(X, X, Y, N) :- s(X, Y, N).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
c(X, Y)        :- N ?= sum M : cv(X, Z, Y, M), N > 0.5.
`, true},
	}
	for _, c := range cases {
		p, s := load(t, c.src)
		rep := CheckProgram(p, s)
		if rep.AggregateStratified {
			t.Errorf("%s: recursion through aggregation must be detected", c.name)
		}
		if got := rep.RMonotonic == nil; got != c.rMonotonic {
			t.Errorf("%s: r-monotonic = %v (%v), want %v", c.name, got, rep.RMonotonic, c.rMonotonic)
		}
		if rep.Admissible != nil {
			t.Errorf("%s: must be admissible: %v", c.name, rep.Admissible)
		}
	}
}

func TestWellFormedViolations(t *testing.T) {
	// The checks apply componentwise: only *recursive* references are CDB
	// (a stratified rule is trivially monotone in J), so each bad rule
	// below sits inside a recursive component.
	cases := []struct {
		name, src, want string
	}{
		{"constant CDB cost", `
.cost p/2 : sumreal.
p(X, C) :- e(X, Y), p(Y, 3), C = 1 + 2.`, "constant in CDB cost argument"},
		{"double cost occurrence", `
.cost p/2 : sumreal.
p(X, C) :- e(X, Y, Z), p(Y, C), p(Z, C).`, "occurs 2 times"},
		{"cost leaks to head data", `
.cost p/2 : sumreal.
p(C, C) :- e(X), p(X, C).`, "non-cost head argument"},
		{"cost leaks to body data", `
.cost p/2 : sumreal.
p(X, C) :- e(X, Y), p(Y, C), r(C).`, "non-cost argument"},
	}
	for _, c := range cases {
		p, s := load(t, c.src)
		rep := CheckProgram(p, s)
		if rep.Admissible == nil || !strings.Contains(rep.Admissible.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, rep.Admissible, c.want)
		}
	}
}

// TestSharedMultisetVarAcrossCDBAtoms: E occurring in the cost argument
// of two CDB atoms of one conjunction ties their costs together, which
// Lemma 4.1's proof cannot raise independently — rejected.
func TestSharedMultisetVarAcrossCDBAtoms(t *testing.T) {
	src := `
.cost p/2 : sumreal.
.cost q/2 : sumreal.
.cost tot/1 : sumreal.
tot(C) :- C = sum E : [p(X, E), q(X, E)].
p(X, E) :- e(X, Y), tot(E).
q(X, E) :- e(X, Y), tot(E).
`
	p, s := load(t, src)
	rep := CheckProgram(p, s)
	if rep.Admissible == nil || !strings.Contains(rep.Admissible.Error(), "ties the costs") {
		t.Fatalf("err = %v, want shared-multiset rejection", rep.Admissible)
	}
	// The same shape over LDB atoms is fine (their extension is fixed).
	src2 := `
.cost p2/2 : sumreal.
.cost q2/2 : sumreal.
.cost tot2/1 : sumreal.
tot2(C) :- C = sum E : [p2(X, E), q2(X, E)].
`
	p2, s2 := load(t, src2)
	rep2 := CheckProgram(p2, s2)
	if rep2.Admissible != nil {
		t.Fatalf("LDB-only shared multiset var must be fine: %v", rep2.Admissible)
	}
}

func TestPseudoMonotoneNeedsDefaults(t *testing.T) {
	// The circuit program without the default declaration is rejected:
	// AND is only pseudo-monotone and t is not a default-value predicate.
	src := `
.cost t/2 : boolor.
.cost input/2 : boolor.
t(W, C) :- input(W, C).
t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
`
	p, s := load(t, src)
	rep := CheckProgram(p, s)
	if rep.Admissible == nil || !strings.Contains(rep.Admissible.Error(), "default-value") {
		t.Fatalf("err = %v, want default-value requirement (Definition 4.5)", rep.Admissible)
	}
}

func TestAvgThroughRecursionRejected(t *testing.T) {
	src := `
.cost p/2 : sumreal.
p(a, 1).
p(X, C) :- q(X), C ?= avg D : p(Y, D).
`
	p, s := load(t, src)
	rep := CheckProgram(p, s)
	if rep.Admissible == nil {
		t.Fatal("avg through recursion without defaults must be rejected")
	}
}

func TestDirectionViolations(t *testing.T) {
	// Each offending rule sits in a recursive component so that the
	// referenced predicates are genuinely CDB.
	cases := []struct {
		name, src string
	}{
		{"wrong comparison side", `
.cost q/2 : sumreal.
p(X) :- r(X, K), N ?= sum D : q(X, D), N < K.
q(X, D) :- p(X), base(X, D).`},
		{"head moves against lattice", `
.cost p/2 : sumreal.
.cost q/2 : sumreal.
p(X, C) :- N ?= sum D : q(X, D), C = 10 - N.
q(X, D) :- e(X, Y), p(Y, D).`},
		{"cost multiplied by unknown sign", `
.cost p/2 : minreal.
.cost w/2 : minreal.
p(X, C) :- e(X, Z), p(Z, C1), w(X, W1), C = C1 * W1.`},
		{"equality pins a moving aggregate", `
.cost q/2 : sumreal.
p(X) :- r(X, K), N ?= sum D : q(X, D), N = K.
q(X, D) :- p(X), base(X, D).`},
	}
	for _, c := range cases {
		p, s := load(t, c.src)
		rep := CheckProgram(p, s)
		if rep.Admissible == nil {
			t.Errorf("%s: expected rejection", c.name)
		}
	}
}

func TestNegationOnCDBRejected(t *testing.T) {
	src := `
p(X) :- e(X, Y), not p(Y).
`
	p, s := load(t, src)
	rep := CheckProgram(p, s)
	if rep.Admissible == nil || !strings.Contains(rep.Admissible.Error(), "negation on CDB") {
		t.Fatalf("err = %v", rep.Admissible)
	}
	if rep.NegationStratified {
		t.Fatal("recursion through negation must be reported")
	}
	// Negation on LDB predicates is fine.
	p, s = load(t, `p(X) :- e(X, Y), not f(Y).`)
	rep = CheckProgram(p, s)
	if rep.Admissible != nil {
		t.Fatalf("LDB negation must be admissible: %v", rep.Admissible)
	}
}

// TestSection3Example: the two-minimal-model program of §3 must be
// rejected (count flips from satisfied to violated as the interpretation
// grows — the N = 1 equality pins a moving aggregate).
func TestSection3ExampleRejected(t *testing.T) {
	src := `
p(b).
q(b).
p(a) :- N ?= count : q(X), N = 1.
q(a) :- N ?= count : p(X), N = 1.
`
	p, s := load(t, src)
	rep := CheckProgram(p, s)
	if rep.Admissible == nil {
		t.Fatal("the §3 example must not be admissible (it has two minimal models)")
	}
}

func TestNegativeWeightShortestPathStillAdmissible(t *testing.T) {
	// §5.4: with negative weights the program stays monotonic in our
	// sense (though not cost-monotonic per Ganguly et al.) — the checker
	// must accept it; negative weights are an EDB property, invisible
	// syntactically.
	p, s := load(t, shortestPath+"arc(a, b, -5).\n")
	rep := CheckProgram(p, s)
	if rep.Admissible != nil {
		t.Fatalf("negative weights do not affect admissibility: %v", rep.Admissible)
	}
}

func TestMixedLatticeTyping(t *testing.T) {
	src := `
.cost p/2 : sumreal.
.cost q/2 : minreal.
p(X, C) :- e(X, Y), q(Y, C).
q(X, C) :- p(X, C).
`
	p, s := load(t, src)
	rep := CheckProgram(p, s)
	if rep.Admissible == nil {
		t.Fatal("sumreal head bound by minreal body var must be rejected")
	}
}

func TestHalfsumAdmissible(t *testing.T) {
	src := `
.cost p/2 : sumreal.
p(b, 1).
p(a, C) :- C ?= halfsum D : p(X, D).
`
	p, s := load(t, src)
	rep := CheckProgram(p, s)
	if rep.Admissible != nil {
		t.Fatalf("Example 5.1 must be admissible: %v", rep.Admissible)
	}
}
