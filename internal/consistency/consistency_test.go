package consistency

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func load(t *testing.T, src string) (*ast.Program, ast.Schemas) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ast.BuildSchemas(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, s
}

const spDecls = `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
`

// TestExample23CostRespecting reproduces Example 2.3.
func TestExample23CostRespecting(t *testing.T) {
	// p(X, C) :- q(X, Y, C) is NOT cost-respecting: C depends on Y too.
	p, s := load(t, ".cost p/2 : sumreal.\n.cost q/3 : sumreal.\np(X, C) :- q(X, Y, C).")
	err := CostRespecting(p.Rules[0], s)
	if err == nil || !strings.Contains(err.Error(), "not cost-respecting") {
		t.Fatalf("err = %v", err)
	}
	// The path rule is cost-respecting via Armstrong's axioms.
	p, s = load(t, spDecls+`path(X, Z, Y, C) :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.`)
	if err := CostRespecting(p.Rules[0], s); err != nil {
		t.Fatalf("path rule must be cost-respecting: %v", err)
	}
	// The aggregate rule is cost-respecting: XY -> C by grouping.
	p, s = load(t, spDecls+`s(X, Y, C) :- C = min D : path(X, Z, Y, D).`)
	if err := CostRespecting(p.Rules[0], s); err != nil {
		t.Fatalf("min rule must be cost-respecting: %v", err)
	}
}

// TestExample25CompanyControlContainment reproduces the first half of
// Example 2.5: the cv rules admit a containment mapping after unification.
func TestExample25CompanyControlContainment(t *testing.T) {
	src := `
.cost s/3 : sumreal.
.cost cv/4 : sumreal.
.cost m/3 : sumreal.
cv(X, X, Y, M) :- s(X, Y, M).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
m(X, Y, N)     :- N ?= sum M : cv(X, Z, Y, M).
c(X, Y)        :- m(X, Y, N), N > 0.5.
`
	p, s := load(t, src)
	if err := ConflictFree(p, s); err != nil {
		t.Fatalf("company control must be conflict-free (Example 2.7): %v", err)
	}
}

// TestExample25ShortestPathIC reproduces the second half of Example 2.5:
// the path rules are conflict-free only thanks to the integrity constraint
// that 'direct' never appears as the first argument of arc.
func TestExample25ShortestPathIC(t *testing.T) {
	rules := `
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`
	withIC := spDecls + ".ic :- arc(direct, Z, C).\n" + rules
	p, s := load(t, withIC)
	if err := ConflictFree(p, s); err != nil {
		t.Fatalf("with the IC the program is conflict-free: %v", err)
	}
	// Without the constraint the two path rules clash.
	p, s = load(t, spDecls+rules)
	err := ConflictFree(p, s)
	if err == nil || !strings.Contains(err.Error(), "conflicting costs") {
		t.Fatalf("err = %v, want a conflict", err)
	}
}

func TestNonUnifiableHeadsAreFine(t *testing.T) {
	src := `
.cost p/2 : sumreal.
.cost q/2 : sumreal.
.cost r/2 : sumreal.
p(a, C) :- q(X, C), X = a.
p(b, C) :- r(X, C), X = b.
`
	p, s := load(t, src)
	if err := ConflictFree(p, s); err != nil {
		t.Fatalf("distinct head constants cannot conflict: %v", err)
	}
}

func TestConflictingAggregatesDetected(t *testing.T) {
	// The §2.4 example: min and max definitions of the same predicate.
	src := `
.cost p/2 : minreal.
.cost q/2 : minreal.
.cost r/2 : minreal.
p(X, C) :- C ?= min D : q(X, D).
p(X, C) :- C ?= min D : r(X, D).
`
	p, s := load(t, src)
	if err := ConflictFree(p, s); err == nil {
		t.Fatal("two aggregate definitions of p must be flagged")
	}
}

func TestIdenticalRulesContain(t *testing.T) {
	src := `
.cost p/2 : sumreal.
.cost q/2 : sumreal.
p(X, C) :- q(X, C).
p(Y, D) :- q(Y, D).
`
	p, s := load(t, src)
	if err := ConflictFree(p, s); err != nil {
		t.Fatalf("alpha-equivalent rules trivially contain each other: %v", err)
	}
}

func TestContainmentMappingDirect(t *testing.T) {
	r1, _ := parser.ParseRule(`p(X, M) :- s(X, M).`)
	r2, _ := parser.ParseRule(`p(X, N) :- c(X), s(X, N).`)
	if !ContainmentMapping(r1, r2) {
		t.Fatal("r1 maps into r2 (M -> N)")
	}
	if ContainmentMapping(r2, r1) {
		t.Fatal("r2 has a subgoal c(X) with no image in r1")
	}
}

func TestContainmentRespectsConstants(t *testing.T) {
	r1, _ := parser.ParseRule(`p(X) :- q(X, a).`)
	r2, _ := parser.ParseRule(`p(X) :- q(X, b).`)
	if ContainmentMapping(r1, r2) {
		t.Fatal("distinct constants cannot match")
	}
	r3, _ := parser.ParseRule(`p(X) :- q(X, Y).`)
	if !ContainmentMapping(r3, r1) {
		t.Fatal("variable maps to constant")
	}
	if ContainmentMapping(r1, r3) {
		t.Fatal("constant cannot map to variable")
	}
}

func TestContainmentWithAggregates(t *testing.T) {
	r1, _ := parser.ParseRule(`s(X, Y, C) :- C ?= min D : path(X, Z, Y, D).`)
	r2, _ := parser.ParseRule(`s(X, Y, C) :- C ?= min E : path(X, W, Y, E).`)
	if !ContainmentMapping(r1, r2) {
		t.Fatal("alpha-equivalent aggregate rules must contain")
	}
	r3, _ := parser.ParseRule(`s(X, Y, C) :- C ?= max D : path(X, Z, Y, D).`)
	if ContainmentMapping(r1, r3) {
		t.Fatal("different aggregate functions cannot match")
	}
}

func TestRepeatedVariableNeedsConsistentMapping(t *testing.T) {
	r1, _ := parser.ParseRule(`p(X) :- q(X, X).`)
	r2, _ := parser.ParseRule(`p(Y) :- q(Y, Z).`)
	if ContainmentMapping(r1, r2) {
		t.Fatal("X cannot map to both Y and Z")
	}
	if !ContainmentMapping(r2, r1) {
		t.Fatal("Y, Z can both map to X")
	}
}

func TestCostRespectingWithEqualityChain(t *testing.T) {
	src := ".cost p/2 : sumreal.\n.cost q/2 : sumreal.\n" +
		`p(X, C) :- q(X, D), E = D * 2, C = E + 1.`
	p, s := load(t, src)
	if err := CostRespecting(p.Rules[0], s); err != nil {
		t.Fatalf("FD chain through equalities must work: %v", err)
	}
}

func TestSameRuleHeadsBothCostFree(t *testing.T) {
	// Rules without cost arguments never conflict.
	src := `
c(X, Y) :- a(X, Y).
c(X, Y) :- b(X, Y).
`
	p, s := load(t, src)
	if err := ConflictFree(p, s); err != nil {
		t.Fatalf("cost-free heads cannot conflict: %v", err)
	}
}
