// Package consistency implements the cost-consistency analysis of §2.4-2.5
// of Ross & Sagiv (PODS 1992): cost-respecting rules via functional-
// dependency inference with Armstrong's axioms (Definition 2.7),
// containment mappings (Definition 2.8), integrity constraints (Definition
// 2.9) and the conflict-freedom condition (Definition 2.10), which by
// Lemma 2.3 is sufficient for cost-consistency (Definition 2.6).
package consistency

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/val"
)

// fd is a functional dependency From -> To over rule variables.
type fd struct {
	from []ast.Var
	to   ast.Var
}

// CostRespecting checks Definition 2.7: the cost argument of the head is
// functionally determined by the head's non-cost arguments, using the FDs
// of cost predicates in the body, the FDs of aggregates on their grouping
// variables, equality built-ins, and Armstrong's axioms (implemented as
// attribute-set closure).
func CostRespecting(r *ast.Rule, s ast.Schemas) error {
	hp := s.Info(r.Head.Key())
	if hp == nil || !hp.HasCost {
		return nil // no cost argument, trivially cost-respecting
	}
	costTerm := r.Head.Args[hp.CostIndex()]
	costVar, isVar := costTerm.(ast.Var)
	if !isVar {
		return nil // a constant cost is trivially determined
	}

	var fds []fd
	addAtomFD := func(a *ast.Atom) {
		pi := s.Info(a.Key())
		if pi == nil || !pi.HasCost {
			return
		}
		cv, ok := a.Args[pi.CostIndex()].(ast.Var)
		if !ok {
			return
		}
		var from []ast.Var
		for j, t := range a.Args {
			if j == pi.CostIndex() {
				continue
			}
			if w, ok := t.(ast.Var); ok {
				from = append(from, w)
			}
		}
		fds = append(fds, fd{from: from, to: cv})
	}
	for i, sg := range r.Body {
		switch sg := sg.(type) {
		case *ast.Lit:
			if !sg.Neg {
				addAtomFD(&sg.Atom)
			}
		case *ast.Agg:
			// An aggregate's value is functionally dependent on the
			// grouping variables.
			roles := ast.RolesOf(r, i)
			fds = append(fds, fd{from: roles.Grouping, to: sg.Result})
		case *ast.Builtin:
			if sg.Op != ast.OpEq {
				continue
			}
			if w, ok := sg.L.(ast.VarExpr); ok {
				fds = append(fds, fd{from: sg.R.Vars(nil), to: w.V})
			}
			if w, ok := sg.R.(ast.VarExpr); ok {
				fds = append(fds, fd{from: sg.L.Vars(nil), to: w.V})
			}
		}
	}

	// Closure of the head's non-cost variables.
	closure := map[ast.Var]bool{}
	for j, t := range r.Head.Args {
		if j == hp.CostIndex() {
			continue
		}
		if w, ok := t.(ast.Var); ok {
			closure[w] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range fds {
			if closure[d.to] {
				continue
			}
			all := true
			for _, w := range d.from {
				if !closure[w] {
					all = false
					break
				}
			}
			if all {
				closure[d.to] = true
				changed = true
			}
		}
	}
	if !closure[costVar] {
		return fmt.Errorf("consistency: rule %q is not cost-respecting: head cost %s is not determined by the non-cost head arguments", r, costVar)
	}
	return nil
}

// subst maps variables to terms.
type subst map[ast.Var]ast.Term

func applyTerm(t ast.Term, sb subst) ast.Term {
	if v, ok := t.(ast.Var); ok {
		if r, bound := sb[v]; bound {
			return applyTerm(r, sb)
		}
	}
	return t
}

func applyAtom(a *ast.Atom, sb subst) ast.Atom {
	out := ast.Atom{Pred: a.Pred, Args: make([]ast.Term, len(a.Args))}
	for i, t := range a.Args {
		out.Args[i] = applyTerm(t, sb)
	}
	return out
}

// unifyTerms extends sb so that the two term lists become equal, or
// reports failure. Terms are variables and constants only (no function
// symbols), so unification is straightforward.
func unifyTerms(xs, ys []ast.Term, sb subst) (subst, bool) {
	if len(xs) != len(ys) {
		return nil, false
	}
	for i := range xs {
		x, y := applyTerm(xs[i], sb), applyTerm(ys[i], sb)
		switch xv := x.(type) {
		case ast.Var:
			if yv, ok := y.(ast.Var); ok && yv == xv {
				continue
			}
			sb[xv] = y
		case ast.Const:
			switch yv := y.(type) {
			case ast.Var:
				sb[yv] = x
			case ast.Const:
				if xv.V.Key() != yv.V.Key() {
					return nil, false
				}
			}
		}
	}
	return sb, true
}

// renameRule returns a copy of r with every variable prefixed, keeping the
// two rules' variable spaces disjoint before unification.
func renameRule(r *ast.Rule, prefix string) *ast.Rule {
	ren := func(t ast.Term) ast.Term {
		if v, ok := t.(ast.Var); ok {
			return ast.Var(prefix + string(v))
		}
		return t
	}
	renAtom := func(a ast.Atom) ast.Atom {
		out := ast.Atom{Pred: a.Pred, Args: make([]ast.Term, len(a.Args))}
		for i, t := range a.Args {
			out.Args[i] = ren(t)
		}
		return out
	}
	var renExpr func(e ast.Expr) ast.Expr
	renExpr = func(e ast.Expr) ast.Expr {
		switch e := e.(type) {
		case ast.VarExpr:
			return ast.VarExpr{V: ast.Var(prefix + string(e.V))}
		case *ast.BinExpr:
			return &ast.BinExpr{Op: e.Op, L: renExpr(e.L), R: renExpr(e.R)}
		default:
			return e
		}
	}
	out := &ast.Rule{Head: renAtom(r.Head)}
	for _, sg := range r.Body {
		switch sg := sg.(type) {
		case *ast.Lit:
			out.Body = append(out.Body, &ast.Lit{Atom: renAtom(sg.Atom), Neg: sg.Neg})
		case *ast.Agg:
			g := &ast.Agg{Result: ast.Var(prefix + string(sg.Result)), Restricted: sg.Restricted, Func: sg.Func}
			if sg.MultisetVar != "" {
				g.MultisetVar = ast.Var(prefix + string(sg.MultisetVar))
			}
			for _, a := range sg.Conj {
				g.Conj = append(g.Conj, renAtom(a))
			}
			out.Body = append(out.Body, g)
		case *ast.Builtin:
			out.Body = append(out.Body, &ast.Builtin{Op: sg.Op, L: renExpr(sg.L), R: renExpr(sg.R)})
		}
	}
	return out
}

// substRule applies sb to a whole rule.
func substRule(r *ast.Rule, sb subst) *ast.Rule {
	var sExpr func(e ast.Expr) ast.Expr
	sExpr = func(e ast.Expr) ast.Expr {
		switch e := e.(type) {
		case ast.VarExpr:
			t := applyTerm(e.V, sb)
			switch t := t.(type) {
			case ast.Var:
				return ast.VarExpr{V: t}
			case ast.Const:
				return ast.ConstExpr{V: t.V}
			}
		case *ast.BinExpr:
			return &ast.BinExpr{Op: e.Op, L: sExpr(e.L), R: sExpr(e.R)}
		}
		return e
	}
	out := &ast.Rule{Head: applyAtom(&r.Head, sb)}
	for _, sg := range r.Body {
		switch sg := sg.(type) {
		case *ast.Lit:
			out.Body = append(out.Body, &ast.Lit{Atom: applyAtom(&sg.Atom, sb), Neg: sg.Neg})
		case *ast.Agg:
			g := &ast.Agg{Restricted: sg.Restricted, Func: sg.Func}
			if t := applyTerm(sg.Result, sb); true {
				if v, ok := t.(ast.Var); ok {
					g.Result = v
				} else {
					g.Result = sg.Result // result bound to a constant: keep the variable name for structure
				}
			}
			g.MultisetVar = sg.MultisetVar
			if sg.MultisetVar != "" {
				if v, ok := applyTerm(sg.MultisetVar, sb).(ast.Var); ok {
					g.MultisetVar = v
				}
			}
			for _, a := range sg.Conj {
				g.Conj = append(g.Conj, applyAtom(&a, sb))
			}
			out.Body = append(out.Body, g)
		case *ast.Builtin:
			out.Body = append(out.Body, &ast.Builtin{Op: sg.Op, L: sExpr(sg.L), R: sExpr(sg.R)})
		}
	}
	return out
}

// ContainmentMapping searches for a containment mapping (Definition 2.8)
// from r1 to r2: a variable mapping making the head of r1 identical to the
// head of r2 and each subgoal of r1 identical to some subgoal of r2.
func ContainmentMapping(r1, r2 *ast.Rule) bool {
	h := map[ast.Var]ast.Term{}
	if !matchAtomInto(&r1.Head, &r2.Head, h) {
		return false
	}
	return matchSubgoals(r1.Body, r2.Body, h)
}

// matchAtomInto extends h so that applying it to a yields exactly b.
func matchAtomInto(a, b *ast.Atom, h map[ast.Var]ast.Term) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		switch at := a.Args[i].(type) {
		case ast.Var:
			if prev, ok := h[at]; ok {
				if !termEqual(prev, b.Args[i]) {
					return false
				}
			} else {
				h[at] = b.Args[i]
			}
		case ast.Const:
			bt, ok := b.Args[i].(ast.Const)
			if !ok || at.V.Key() != bt.V.Key() {
				return false
			}
		}
	}
	return true
}

func termEqual(a, b ast.Term) bool {
	switch a := a.(type) {
	case ast.Var:
		bv, ok := b.(ast.Var)
		return ok && a == bv
	case ast.Const:
		bc, ok := b.(ast.Const)
		return ok && a.V.Key() == bc.V.Key()
	}
	return false
}

// matchSubgoals backtracks over assignments of r1 subgoals to r2 subgoals.
func matchSubgoals(body1, body2 []ast.Subgoal, h map[ast.Var]ast.Term) bool {
	if len(body1) == 0 {
		return true
	}
	s1 := body1[0]
	for _, s2 := range body2 {
		snap := snapshot(h)
		if matchSubgoal(s1, s2, h) && matchSubgoals(body1[1:], body2, h) {
			return true
		}
		restore(h, snap)
	}
	return false
}

func snapshot(h map[ast.Var]ast.Term) map[ast.Var]ast.Term {
	c := make(map[ast.Var]ast.Term, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func restore(h, snap map[ast.Var]ast.Term) {
	for k := range h {
		if _, ok := snap[k]; !ok {
			delete(h, k)
		}
	}
	for k, v := range snap {
		h[k] = v
	}
}

func matchSubgoal(a, b ast.Subgoal, h map[ast.Var]ast.Term) bool {
	switch a := a.(type) {
	case *ast.Lit:
		bl, ok := b.(*ast.Lit)
		return ok && a.Neg == bl.Neg && matchAtomInto(&a.Atom, &bl.Atom, h)
	case *ast.Agg:
		bg, ok := b.(*ast.Agg)
		if !ok || a.Func != bg.Func || a.Restricted != bg.Restricted || len(a.Conj) != len(bg.Conj) {
			return false
		}
		if !matchVarInto(a.Result, ast.Term(bg.Result), h) {
			return false
		}
		if (a.MultisetVar == "") != (bg.MultisetVar == "") {
			return false
		}
		if a.MultisetVar != "" && !matchVarInto(a.MultisetVar, ast.Term(bg.MultisetVar), h) {
			return false
		}
		for i := range a.Conj {
			if !matchAtomInto(&a.Conj[i], &bg.Conj[i], h) {
				return false
			}
		}
		return true
	case *ast.Builtin:
		bb, ok := b.(*ast.Builtin)
		return ok && a.Op == bb.Op && matchExprInto(a.L, bb.L, h) && matchExprInto(a.R, bb.R, h)
	}
	return false
}

func matchVarInto(v ast.Var, t ast.Term, h map[ast.Var]ast.Term) bool {
	if prev, ok := h[v]; ok {
		return termEqual(prev, t)
	}
	h[v] = t
	return true
}

func matchExprInto(a, b ast.Expr, h map[ast.Var]ast.Term) bool {
	switch a := a.(type) {
	case ast.VarExpr:
		switch b := b.(type) {
		case ast.VarExpr:
			return matchVarInto(a.V, ast.Term(b.V), h)
		case ast.NumExpr:
			return matchVarInto(a.V, ast.Num(b.N), h)
		case ast.ConstExpr:
			return matchVarInto(a.V, ast.Const{V: b.V}, h)
		}
		return false
	case ast.NumExpr:
		bn, ok := b.(ast.NumExpr)
		return ok && a.N == bn.N
	case ast.ConstExpr:
		bc, ok := b.(ast.ConstExpr)
		return ok && a.V.Key() == bc.V.Key()
	case *ast.BinExpr:
		bb, ok := b.(*ast.BinExpr)
		return ok && a.Op == bb.Op && matchExprInto(a.L, bb.L, h) && matchExprInto(a.R, bb.R, h)
	}
	return false
}

// hasFalseGroundBuiltin reports whether the body contains a fully ground
// builtin subgoal that evaluates to false (the unified rules then cannot
// fire together).
func hasFalseGroundBuiltin(body []ast.Subgoal) bool {
	noVars := func(v ast.Var) (val.T, bool) { return val.T{}, false }
	for _, sg := range body {
		b, ok := sg.(*ast.Builtin)
		if !ok {
			continue
		}
		if len(b.L.Vars(nil)) > 0 || len(b.R.Vars(nil)) > 0 {
			continue
		}
		l, err := ast.EvalExpr(b.L, noVars)
		if err != nil {
			continue
		}
		r, err := ast.EvalExpr(b.R, noVars)
		if err != nil {
			continue
		}
		res, err := ast.Compare(b.Op, l, r)
		if err == nil && !res {
			return true
		}
	}
	return false
}

// violatesConstraint reports whether the combined body contains an
// instance of some integrity constraint: a substitution mapping every
// (positive-literal) subgoal of the constraint to a subgoal of the body.
func violatesConstraint(body []ast.Subgoal, ics []*ast.Constraint) bool {
	for _, ic := range ics {
		// Only positive-literal constraints participate (Definition 2.9's
		// examples are conjunctions of atoms).
		var icLits []ast.Subgoal
		ok := true
		for _, sg := range ic.Body {
			l, isLit := sg.(*ast.Lit)
			if !isLit || l.Neg {
				ok = false
				break
			}
			icLits = append(icLits, l)
		}
		if !ok || len(icLits) == 0 {
			continue
		}
		h := map[ast.Var]ast.Term{}
		if matchSubgoals(icLits, body, h) {
			return true
		}
	}
	return false
}

// ConflictFree checks Definition 2.10: every rule is cost-respecting, and
// every pair of rules whose heads unify on the non-cost arguments either
// admits a containment mapping between the unified rules or jointly
// contains an instance of an integrity constraint. By Lemma 2.3 this
// implies cost-consistency.
func ConflictFree(p *ast.Program, s ast.Schemas) error {
	for _, r := range p.Rules {
		if err := CostRespecting(r, s); err != nil {
			return err
		}
	}
	// Ground fact keys: two ground facts of the same cost predicate
	// conflict exactly when their non-cost arguments coincide with
	// different costs — checked in one hash pass rather than via the
	// quadratic unification loop below (EDBs routinely hold thousands of
	// facts).
	factKey := map[string]*ast.Rule{}
	isGroundFact := func(r *ast.Rule) bool { return r.IsFact() && r.Head.IsGround() }
	for _, r := range p.Rules {
		if !isGroundFact(r) {
			continue
		}
		hp := s.Info(r.Head.Key())
		if hp == nil || !hp.HasCost {
			continue
		}
		var b strings.Builder
		b.WriteString(string(r.Head.Key()))
		for k, t := range r.Head.Args {
			if k == hp.CostIndex() {
				continue
			}
			b.WriteByte(0)
			b.WriteString(t.(ast.Const).V.Key())
		}
		key := b.String()
		if prev, dup := factKey[key]; dup {
			c1 := prev.Head.Args[hp.CostIndex()].(ast.Const)
			c2 := r.Head.Args[hp.CostIndex()].(ast.Const)
			if c1.V.Key() != c2.V.Key() {
				return fmt.Errorf("consistency: facts %q and %q assign different costs", prev, r)
			}
		} else {
			factKey[key] = r
		}
	}
	for i := 0; i < len(p.Rules); i++ {
		for j := i + 1; j < len(p.Rules); j++ {
			r1 := p.Rules[i]
			r2 := p.Rules[j]
			if isGroundFact(r1) && isGroundFact(r2) {
				continue // handled by the hash pass above
			}
			hp := s.Info(r1.Head.Key())
			if r1.Head.Key() != r2.Head.Key() || hp == nil || !hp.HasCost {
				continue
			}
			a := renameRule(r1, "l_")
			b := renameRule(r2, "r_")
			// Unify the heads restricted to non-cost arguments.
			n := hp.NonCost()
			sb, ok := unifyTerms(a.Head.Args[:n], b.Head.Args[:n], subst{})
			if !ok {
				continue
			}
			ua := substRule(a, sb)
			ub := substRule(b, sb)
			if ContainmentMapping(ua, ub) || ContainmentMapping(ub, ua) {
				continue
			}
			if violatesConstraint(append(append([]ast.Subgoal{}, ua.Body...), ub.Body...), p.Constraints) {
				continue
			}
			// Definition 2.10 condition (a): the unified bodies cannot be
			// simultaneously satisfied. A ground builtin made false by the
			// unification (e.g. "t != t" after Y ↦ t) settles that.
			if hasFalseGroundBuiltin(ua.Body) || hasFalseGroundBuiltin(ub.Body) {
				continue
			}
			return fmt.Errorf("consistency: rules %q and %q may generate conflicting costs for %s (no containment mapping, no integrity constraint applies)",
				r1, r2, r1.Head.Key())
		}
	}
	return nil
}
