package val

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKeysDistinguishKinds(t *testing.T) {
	vals := []T{
		Symbol("1"), Number(1), Boolean(true), String("1"),
		SetOf(Number(1)), Symbol("a"), String("a"), SetOf(),
	}
	seen := map[string]T{}
	for _, v := range vals {
		if prev, dup := seen[v.Key()]; dup {
			t.Errorf("key collision between %v and %v: %q", prev, v, v.Key())
		}
		seen[v.Key()] = v
	}
}

func TestEqualAgreesWithKey(t *testing.T) {
	gen := func(r *rand.Rand) T {
		switch r.Intn(5) {
		case 0:
			return Symbol(string(rune('a' + r.Intn(3))))
		case 1:
			return Number(float64(r.Intn(4)))
		case 2:
			return Boolean(r.Intn(2) == 0)
		case 3:
			return String(string(rune('a' + r.Intn(3))))
		default:
			var elems []T
			for i := 0; i < r.Intn(3); i++ {
				elems = append(elems, Number(float64(r.Intn(3))))
			}
			return SetOf(elems...)
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := gen(r), gen(r)
		if Equal(a, b) != (a.Key() == b.Key()) {
			t.Errorf("Equal(%v, %v) disagrees with key equality", a, b)
			return false
		}
		if (Compare(a, b) == 0) != Equal(a, b) {
			t.Errorf("Compare(%v, %v) == 0 disagrees with Equal", a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet([]T{Symbol("b"), Symbol("a"), Symbol("b")})
	if s.Len() != 2 {
		t.Fatalf("duplicates must collapse: len = %d", s.Len())
	}
	if !s.Contains(Symbol("a")) || s.Contains(Symbol("c")) {
		t.Fatal("Contains is wrong")
	}
	u := s.Union(NewSet([]T{Symbol("c")}))
	if u.Len() != 3 {
		t.Fatalf("union len = %d", u.Len())
	}
	i := s.Intersect(NewSet([]T{Symbol("a"), Symbol("c")}))
	if i.Len() != 1 || !i.Contains(Symbol("a")) {
		t.Fatalf("intersect = %v", i)
	}
	if !s.SubsetOf(u) || u.SubsetOf(s) {
		t.Fatal("SubsetOf is wrong")
	}
	if !EmptySet.SubsetOf(s) {
		t.Fatal("∅ ⊆ s")
	}
	if !s.Equal(NewSet([]T{Symbol("a"), Symbol("b")})) {
		t.Fatal("Equal must be order-insensitive")
	}
}

func TestKeyOfTuples(t *testing.T) {
	a := KeyOf([]T{Symbol("x"), Number(1)})
	b := KeyOf([]T{Symbol("x"), Number(2)})
	c := KeyOf([]T{Symbol("x"), Number(1)})
	if a == b {
		t.Error("distinct tuples share a key")
	}
	if a != c {
		t.Error("equal tuples have distinct keys")
	}
	// No ambiguity across arity boundaries.
	if KeyOf([]T{Symbol("xy")}) == KeyOf([]T{Symbol("x"), Symbol("y")}) {
		t.Error("tuple key must encode arity boundaries")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    T
		want string
	}{
		{Symbol("abc"), "abc"},
		{Number(3.5), "3.5"},
		{Number(3), "3"},
		{Boolean(true), "1"},
		{Boolean(false), "0"},
		{String("hi"), `"hi"`},
		{SetOf(Symbol("b"), Symbol("a")), "{a, b}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseNumber(t *testing.T) {
	v, err := ParseNumber("2.25")
	if err != nil || v.N != 2.25 {
		t.Fatalf("ParseNumber: %v, %v", v, err)
	}
	if _, err := ParseNumber("zzz"); err == nil {
		t.Fatal("ParseNumber must reject garbage")
	}
}

// TestAppendKeyMatchesKey pins the append-style key builders to the
// string builders byte for byte: the relation and executor hot paths
// rely on AppendKey/AppendKeyOf producing exactly the map keys that
// Key/KeyOf produced when the rows were stored.
func TestAppendKeyMatchesKey(t *testing.T) {
	vals := []T{
		Symbol("a"), Symbol(""), Number(0), Number(-2.5), Number(1e300),
		Boolean(true), Boolean(false), String("x\x00y"), String(""),
		SetOf(), SetOf(Number(1)), SetOf(Symbol("b"), Number(3), Boolean(true)),
		{Kind: SetKind, Set: nil},
	}
	for _, v := range vals {
		if got, want := string(AppendKey(nil, v)), v.Key(); got != want {
			t.Errorf("AppendKey(%v) = %q, want %q", v, got, want)
		}
	}
	tuples := [][]T{
		nil,
		{Symbol("a")},
		{Symbol("a"), Number(1), Boolean(false)},
		{String("s"), SetOf(Symbol("x"), Symbol("y"))},
	}
	buf := make([]byte, 0, 64)
	for _, tu := range tuples {
		buf = AppendKeyOf(buf[:0], tu)
		if got, want := string(buf), KeyOf(tu); got != want {
			t.Errorf("AppendKeyOf(%v) = %q, want %q", tu, got, want)
		}
	}
}
