// Package val defines the runtime value representation shared by every
// layer of the engine: constants appearing in tuples, cost values drawn
// from lattices, and the results of aggregate functions.
//
// A single concrete type T is used rather than an interface so that values
// can be compared, interned and stored in maps cheaply, and so that a
// heterogeneous interpretation (one program mixing numeric, boolean and
// set-valued cost domains, as in Ross & Sagiv Figure 1) needs no type
// parameters.
package val

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the variants of T.
type Kind uint8

// The value kinds. Sym is an uninterpreted constant (lowercase identifier),
// Num is a real number (the numeric cost domains of Figure 1 are all
// embedded in R ∪ {±∞}, represented by float64 with ±Inf), Bool is a truth
// value (written 0/1 in the paper), Str is a quoted string, and Set is a
// finite set of values (the powerset domains of Figure 1).
const (
	Sym Kind = iota
	Num
	Bool
	Str
	SetKind
)

// T is a runtime value.
type T struct {
	Kind Kind
	S    string  // Sym, Str
	N    float64 // Num
	B    bool    // Bool
	Set  *Set    // SetKind
}

// Symbol returns the symbol constant named s.
func Symbol(s string) T { return T{Kind: Sym, S: s} }

// Number returns the numeric constant n.
func Number(n float64) T { return T{Kind: Num, N: n} }

// Boolean returns the boolean constant b.
func Boolean(b bool) T { return T{Kind: Bool, B: b} }

// String returns the string constant s.
func String(s string) T { return T{Kind: Str, S: s} }

// SetOf returns a set value containing the given elements (duplicates are
// removed; order is irrelevant).
func SetOf(elems ...T) T { return T{Kind: SetKind, Set: NewSet(elems)} }

// Key returns a canonical string encoding of v, suitable for use as a map
// key. Distinct values have distinct keys.
func (v T) Key() string {
	switch v.Kind {
	case Sym:
		return "s:" + v.S
	case Num:
		return "n:" + strconv.FormatFloat(v.N, 'g', -1, 64)
	case Bool:
		if v.B {
			return "b:1"
		}
		return "b:0"
	case Str:
		return "q:" + v.S
	case SetKind:
		return "S:" + v.Set.key()
	}
	return "?"
}

// String renders v in the concrete syntax of the rule language.
func (v T) String() string {
	switch v.Kind {
	case Sym:
		return v.S
	case Num:
		// Infinities print in the concrete syntax the parser reads back
		// ("inf" / "-inf"), not strconv's "+Inf".
		if math.IsInf(v.N, 1) {
			return "inf"
		}
		if math.IsInf(v.N, -1) {
			return "-inf"
		}
		return strconv.FormatFloat(v.N, 'g', -1, 64)
	case Bool:
		if v.B {
			return "1"
		}
		return "0"
	case Str:
		return strconv.Quote(v.S)
	case SetKind:
		return v.Set.String()
	}
	return "?"
}

// Equal reports whether two values are identical.
func Equal(a, b T) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Sym, Str:
		return a.S == b.S
	case Num:
		return a.N == b.N
	case Bool:
		return a.B == b.B
	case SetKind:
		return a.Set.Equal(b.Set)
	}
	return false
}

// Compare imposes a total order on values (by kind, then by natural order
// within the kind). It is used only for deterministic output ordering, not
// for lattice orders.
func Compare(a, b T) int {
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	switch a.Kind {
	case Sym, Str:
		return strings.Compare(a.S, b.S)
	case Num:
		switch {
		case a.N < b.N:
			return -1
		case a.N > b.N:
			return 1
		}
		return 0
	case Bool:
		switch {
		case !a.B && b.B:
			return -1
		case a.B && !b.B:
			return 1
		}
		return 0
	case SetKind:
		return strings.Compare(a.Set.key(), b.Set.key())
	}
	return 0
}

// KeyOf returns the canonical key of a tuple of values, separating the
// component keys with an unprintable delimiter.
func KeyOf(tuple []T) string {
	var b strings.Builder
	for i, v := range tuple {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(v.Key())
	}
	return b.String()
}

// AppendKey appends the canonical key encoding of v (exactly the bytes
// Key would return) to dst and returns the extended slice. It exists so
// hot paths can build map keys into a reusable buffer and look them up
// via m[string(buf)] without allocating.
func AppendKey(dst []byte, v T) []byte {
	switch v.Kind {
	case Sym:
		dst = append(dst, 's', ':')
		return append(dst, v.S...)
	case Num:
		dst = append(dst, 'n', ':')
		return strconv.AppendFloat(dst, v.N, 'g', -1, 64)
	case Bool:
		if v.B {
			return append(dst, 'b', ':', '1')
		}
		return append(dst, 'b', ':', '0')
	case Str:
		dst = append(dst, 'q', ':')
		return append(dst, v.S...)
	case SetKind:
		dst = append(dst, 'S', ':', '{')
		if v.Set != nil {
			for i, k := range v.Set.keys {
				if i > 0 {
					dst = append(dst, ';')
				}
				dst = append(dst, k...)
			}
		}
		return append(dst, '}')
	}
	return append(dst, '?')
}

// AppendKeyOf appends the canonical tuple key (exactly the bytes KeyOf
// would return) to dst and returns the extended slice.
func AppendKeyOf(dst []byte, tuple []T) []byte {
	for i, v := range tuple {
		if i > 0 {
			dst = append(dst, 0)
		}
		dst = AppendKey(dst, v)
	}
	return dst
}

// Set is an immutable finite set of values, kept sorted by Key.
type Set struct {
	elems []T
	keys  []string
}

// NewSet builds a set from elems, discarding duplicates.
func NewSet(elems []T) *Set {
	type pair struct {
		k string
		v T
	}
	seen := make(map[string]T, len(elems))
	for _, e := range elems {
		seen[e.Key()] = e
	}
	ps := make([]pair, 0, len(seen))
	for k, v := range seen {
		ps = append(ps, pair{k, v})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	s := &Set{elems: make([]T, len(ps)), keys: make([]string, len(ps))}
	for i, p := range ps {
		s.elems[i] = p.v
		s.keys[i] = p.k
	}
	return s
}

// EmptySet is the set with no elements.
var EmptySet = NewSet(nil)

// Len returns the cardinality of s.
func (s *Set) Len() int { return len(s.elems) }

// Elems returns the elements of s in canonical order. The caller must not
// modify the returned slice.
func (s *Set) Elems() []T { return s.elems }

// Contains reports whether v is a member of s.
func (s *Set) Contains(v T) bool {
	k := v.Key()
	i := sort.SearchStrings(s.keys, k)
	return i < len(s.keys) && s.keys[i] == k
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	if s.Len() > t.Len() {
		return false
	}
	i := 0
	for _, k := range s.keys {
		for i < len(t.keys) && t.keys[i] < k {
			i++
		}
		if i >= len(t.keys) || t.keys[i] != k {
			return false
		}
	}
	return true
}

// Union returns s ∪ t.
func (s *Set) Union(t *Set) *Set {
	return NewSet(append(append([]T{}, s.elems...), t.elems...))
}

// Intersect returns s ∩ t.
func (s *Set) Intersect(t *Set) *Set {
	var out []T
	for _, e := range s.elems {
		if t.Contains(e) {
			out = append(out, e)
		}
	}
	return NewSet(out)
}

// Equal reports whether s and t have the same elements.
func (s *Set) Equal(t *Set) bool {
	if s == t {
		return true
	}
	if s == nil || t == nil || len(s.keys) != len(t.keys) {
		return false
	}
	for i := range s.keys {
		if s.keys[i] != t.keys[i] {
			return false
		}
	}
	return true
}

func (s *Set) key() string {
	if s == nil {
		return "{}"
	}
	return "{" + strings.Join(s.keys, ";") + "}"
}

// String renders the set in concrete syntax.
func (s *Set) String() string {
	if s == nil {
		return "{}"
	}
	parts := make([]string, len(s.elems))
	for i, e := range s.elems {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// ParseNumber converts the text of a numeric literal to a Num value.
func ParseNumber(text string) (T, error) {
	n, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return T{}, fmt.Errorf("val: bad number %q: %v", text, err)
	}
	return Number(n), nil
}
