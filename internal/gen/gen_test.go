package gen

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/programs"
	"repro/internal/relation"
	"repro/internal/val"
)

func solve(t *testing.T, src string, opts core.Options) *relation.DB {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	en, err := core.New(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGraphGenerators(t *testing.T) {
	for _, kind := range []GraphKind{RandomGraph, LayeredDAG, CycleGraph, GridGraph} {
		g := Graph(kind, 30, 60, 9, 42)
		if g.N != 30 {
			t.Fatalf("kind %v: N = %d", kind, g.N)
		}
		if len(g.Edges) == 0 {
			t.Fatalf("kind %v: no edges", kind)
		}
		seen := map[[2]int]bool{}
		for _, e := range g.Edges {
			k := [2]int{e.From, e.To}
			if seen[k] {
				t.Fatalf("kind %v: duplicate edge %v (cost FD would break)", kind, k)
			}
			seen[k] = true
			if e.W < 1 || e.W > 9 {
				t.Fatalf("kind %v: weight %v out of range", kind, e.W)
			}
		}
		// Determinism.
		g2 := Graph(kind, 30, 60, 9, 42)
		if len(g2.Edges) != len(g.Edges) {
			t.Fatalf("kind %v: non-deterministic", kind)
		}
	}
	// Layered DAGs must be acyclic (edges go up in layer order).
	g := Graph(LayeredDAG, 40, 120, 5, 7)
	for _, e := range g.Edges {
		if e.To <= e.From {
			t.Fatalf("layered edge %v goes backwards", e)
		}
	}
}

// TestEngineMatchesDijkstra cross-validates the deductive engine against
// Dijkstra on every topology (experiment E3's ground-truth check).
func TestEngineMatchesDijkstra(t *testing.T) {
	for _, kind := range []GraphKind{RandomGraph, LayeredDAG, CycleGraph, GridGraph} {
		for seed := int64(1); seed <= 3; seed++ {
			g := Graph(kind, 24, 60, 9, seed)
			db := solve(t, programs.ShortestPath+GraphFacts(g), core.Options{})
			dist := baseline.AllPairs(g)
			for u := 0; u < g.N; u++ {
				for v := 0; v < g.N; v++ {
					want := dist[u][v]
					row, ok := db.Rel("s/3").Get([]val.T{
						val.Symbol(fmt.Sprintf("v%d", u)), val.Symbol(fmt.Sprintf("v%d", v)),
					})
					if math.IsInf(want, 1) {
						if ok {
							t.Fatalf("kind %v seed %d: spurious s(v%d,v%d,%v)", kind, seed, u, v, row.Cost)
						}
						continue
					}
					if !ok || row.Cost.N != want {
						t.Fatalf("kind %v seed %d: s(v%d,v%d) = %v (ok=%v), want %v",
							kind, seed, u, v, row.Cost, ok, want)
					}
				}
			}
		}
	}
}

// TestEngineMatchesCompanyControl cross-validates Example 2.7.
func TestEngineMatchesCompanyControl(t *testing.T) {
	for _, cyclic := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			o := Ownership(16, 3, cyclic, seed)
			db := solve(t, programs.CompanyControl+OwnershipFacts(o), core.Options{})
			controls, _ := baseline.CompanyControl(o)
			for x := 0; x < o.N; x++ {
				for y := 0; y < o.N; y++ {
					if x == y {
						continue
					}
					_, got := db.Rel("c/2").Get([]val.T{
						val.Symbol(fmt.Sprintf("c%d", x)), val.Symbol(fmt.Sprintf("c%d", y)),
					})
					if got != controls[x][y] {
						t.Fatalf("cyclic=%v seed %d: c(c%d,c%d) = %v, want %v",
							cyclic, seed, x, y, got, controls[x][y])
					}
				}
			}
		}
	}
}

// TestEngineMatchesCircuit cross-validates Example 4.4, cyclic circuits
// included.
func TestEngineMatchesCircuit(t *testing.T) {
	for _, cyclic := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			c := Circuit(40, 8, 3, cyclic, seed)
			db := solve(t, programs.Circuit+CircuitFacts(c), core.Options{})
			want := c.Eval()
			for i := 0; i < c.N; i++ {
				row, ok := db.Rel("t/2").GetOrDefault([]val.T{val.Symbol(fmt.Sprintf("n%d", i))})
				if !ok {
					t.Fatalf("cyclic=%v seed %d: t(n%d) unanswered", cyclic, seed, i)
				}
				if row.Cost.B != want[i] {
					t.Fatalf("cyclic=%v seed %d: t(n%d) = %v, want %v",
						cyclic, seed, i, row.Cost.B, want[i])
				}
			}
		}
	}
}

// TestEngineMatchesParty cross-validates Example 4.3 on cyclic knows
// graphs.
func TestEngineMatchesParty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p := Party(30, 4, 3, seed)
		db := solve(t, programs.Party+PartyFacts(p), core.Options{})
		want := p.Attendance()
		for x := 0; x < p.N; x++ {
			_, got := db.Rel("coming/1").Get([]val.T{val.Symbol(fmt.Sprintf("g%d", x))})
			if got != want[x] {
				t.Fatalf("seed %d: coming(g%d) = %v, want %v", seed, x, got, want[x])
			}
		}
	}
}

func TestFactRendering(t *testing.T) {
	g := baseline.NewGraph(2)
	g.AddEdge(0, 1, 2.5)
	if got := GraphFacts(g); got != "arc(v0, v1, 2.5).\n" {
		t.Fatalf("GraphFacts = %q", got)
	}
	o := baseline.NewOwnership(2)
	o.Share[0][1] = 0.6
	if got := OwnershipFacts(o); got != "s(c0, c1, 0.6).\n" {
		t.Fatalf("OwnershipFacts = %q", got)
	}
	p := baseline.NewParty(2)
	p.Requires = []int{0, 1}
	p.Knows[1] = []int{0}
	facts := PartyFacts(p)
	if facts != "requires(g0, 0).\nrequires(g1, 1).\nknows(g1, g0).\n" {
		t.Fatalf("PartyFacts = %q", facts)
	}
}

func TestOwnershipSharesBounded(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		o := Ownership(20, 4, true, seed)
		for y := 0; y < o.N; y++ {
			total := 0.0
			for x := 0; x < o.N; x++ {
				if o.Share[x][y] < 0 {
					t.Fatal("negative share")
				}
				total += o.Share[x][y]
			}
			if total > 1.0001 {
				t.Fatalf("company %d oversubscribed: %v", y, total)
			}
		}
	}
}

func TestCircuitGeneratorShape(t *testing.T) {
	c := Circuit(30, 6, 3, false, 3)
	for i := 6; i < c.N; i++ {
		if len(c.In[i]) == 0 {
			t.Fatalf("gate n%d has no inputs", i)
		}
		for _, w := range c.In[i] {
			if w >= i {
				t.Fatalf("acyclic circuit has forward edge %d -> %d", i, w)
			}
		}
	}
}
