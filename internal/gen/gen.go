// Package gen builds deterministic synthetic workloads for the paper's
// example problems, in both native form (for the baseline algorithms) and
// rule-language text (for the deductive engines). All generators are
// seeded and reproducible.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/baseline"
)

// GraphKind selects a topology.
type GraphKind int

// The graph topologies used by the experiment sweeps.
const (
	// RandomGraph: Erdős–Rényi-style digraph with the given edge count.
	RandomGraph GraphKind = iota
	// LayeredDAG: vertices in layers, edges only to the next layer —
	// modularly stratified for the shortest-path program.
	LayeredDAG
	// CycleGraph: one big directed cycle plus random chords — the
	// stress case for the comparator semantics.
	CycleGraph
	// GridGraph: a √n × √n grid with east/south edges.
	GridGraph
)

// Graph generates a weighted digraph with n vertices and roughly m edges
// (exact shape depends on kind); weights are integers in [1, maxW].
func Graph(kind GraphKind, n, m, maxW int, seed int64) *baseline.Graph {
	r := rand.New(rand.NewSource(seed))
	g := baseline.NewGraph(n)
	seen := map[[2]int]bool{}
	add := func(u, v, w int) {
		if u == v && kind == LayeredDAG {
			return
		}
		k := [2]int{u, v}
		if seen[k] {
			return
		}
		seen[k] = true
		g.AddEdge(u, v, float64(w))
	}
	w := func() int { return 1 + r.Intn(maxW) }
	switch kind {
	case RandomGraph:
		for i := 0; i < m; i++ {
			add(r.Intn(n), r.Intn(n), w())
		}
	case LayeredDAG:
		layers := 4
		if n < 8 {
			layers = 2
		}
		per := (n + layers - 1) / layers
		layerOf := func(v int) int { return v / per }
		for i := 0; i < m; i++ {
			u := r.Intn(n)
			lu := layerOf(u)
			if lu >= layers-1 {
				continue
			}
			lo := (lu + 1) * per
			hi := lo + per
			if hi > n {
				hi = n
			}
			if lo >= n {
				continue
			}
			add(u, lo+r.Intn(hi-lo), w())
		}
	case CycleGraph:
		for v := 0; v < n; v++ {
			add(v, (v+1)%n, w())
		}
		for i := 0; i < m-n; i++ {
			add(r.Intn(n), r.Intn(n), w())
		}
	case GridGraph:
		side := 1
		for side*side < n {
			side++
		}
		id := func(x, y int) int { return x*side + y }
		for x := 0; x < side; x++ {
			for y := 0; y < side; y++ {
				if id(x, y) >= n {
					continue
				}
				if x+1 < side && id(x+1, y) < n {
					add(id(x, y), id(x+1, y), w())
				}
				if y+1 < side && id(x, y+1) < n {
					add(id(x, y), id(x, y+1), w())
				}
			}
		}
	}
	return g
}

// GraphFacts renders a graph as arc/3 facts.
func GraphFacts(g *baseline.Graph) string {
	var b strings.Builder
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "arc(v%d, v%d, %g).\n", e.From, e.To, e.W)
	}
	return b.String()
}

// Ownership generates a share network: each company's shares are split
// among up to fanIn random owners; with cycles allowed, any company may
// own any other.
func Ownership(n, fanIn int, cyclic bool, seed int64) *baseline.Ownership {
	r := rand.New(rand.NewSource(seed))
	o := baseline.NewOwnership(n)
	for y := 0; y < n; y++ {
		owners := 1 + r.Intn(fanIn)
		remaining := 1.0
		for i := 0; i < owners; i++ {
			var x int
			if cyclic || y == 0 {
				x = r.Intn(n)
			} else {
				x = r.Intn(y + 1)
			}
			if x == y {
				continue
			}
			frac := remaining * (0.3 + 0.5*r.Float64())
			frac = float64(int(frac*100)) / 100 // two decimals keep facts tidy
			if frac <= 0 {
				continue
			}
			o.Share[x][y] += frac
			remaining -= frac
			if remaining <= 0.05 {
				break
			}
		}
	}
	return o
}

// OwnershipFacts renders a network as s/3 facts.
func OwnershipFacts(o *baseline.Ownership) string {
	var b strings.Builder
	for x := 0; x < o.N; x++ {
		for y := 0; y < o.N; y++ {
			if o.Share[x][y] > 0 {
				fmt.Fprintf(&b, "s(c%d, c%d, %g).\n", x, y, o.Share[x][y])
			}
		}
	}
	return b.String()
}

// Circuit generates a boolean circuit with n nodes: the first nInputs are
// inputs with random values; gates draw up to fanIn inputs from earlier
// nodes, plus (when cyclic) occasional feedback edges from later nodes.
func Circuit(n, nInputs, fanIn int, cyclic bool, seed int64) *baseline.Circuit {
	r := rand.New(rand.NewSource(seed))
	c := baseline.NewCircuit(n)
	for i := 0; i < n; i++ {
		if i < nInputs {
			c.Kind[i] = baseline.InputNode
			c.InputVal[i] = r.Intn(2) == 1
			continue
		}
		if r.Intn(2) == 0 {
			c.Kind[i] = baseline.AndGate
		} else {
			c.Kind[i] = baseline.OrGate
		}
		ins := 1 + r.Intn(fanIn)
		seen := map[int]bool{}
		for j := 0; j < ins; j++ {
			var w int
			if cyclic && r.Intn(4) == 0 {
				w = nInputs + r.Intn(n-nInputs) // feedback allowed
			} else {
				w = r.Intn(i)
			}
			if w == i || seen[w] {
				continue
			}
			seen[w] = true
			c.In[i] = append(c.In[i], w)
		}
		if len(c.In[i]) == 0 {
			c.In[i] = append(c.In[i], r.Intn(i))
		}
	}
	return c
}

// CircuitFacts renders a circuit as gate/connect/input facts.
func CircuitFacts(c *baseline.Circuit) string {
	var b strings.Builder
	for i := 0; i < c.N; i++ {
		switch c.Kind[i] {
		case baseline.InputNode:
			v := 0
			if c.InputVal[i] {
				v = 1
			}
			fmt.Fprintf(&b, "input(n%d, %d).\n", i, v)
		case baseline.AndGate:
			fmt.Fprintf(&b, "gate(n%d, and).\n", i)
		case baseline.OrGate:
			fmt.Fprintf(&b, "gate(n%d, or).\n", i)
		}
		for _, w := range c.In[i] {
			fmt.Fprintf(&b, "connect(n%d, n%d).\n", i, w)
		}
	}
	return b.String()
}

// Party generates an invitation instance: a random knows digraph with the
// given mean degree; requirements are drawn in [0, maxReq] with at least
// one zero-requirement seed guest.
func Party(n, degree, maxReq int, seed int64) *baseline.Party {
	r := rand.New(rand.NewSource(seed))
	p := baseline.NewParty(n)
	for x := 0; x < n; x++ {
		p.Requires[x] = r.Intn(maxReq + 1)
		seen := map[int]bool{}
		for j := 0; j < degree; j++ {
			y := r.Intn(n)
			if y == x || seen[y] {
				continue
			}
			seen[y] = true
			p.Knows[x] = append(p.Knows[x], y)
		}
	}
	p.Requires[0] = 0
	return p
}

// PartyFacts renders an instance as requires/knows facts.
func PartyFacts(p *baseline.Party) string {
	var b strings.Builder
	for x := 0; x < p.N; x++ {
		fmt.Fprintf(&b, "requires(g%d, %d).\n", x, p.Requires[x])
		for _, y := range p.Knows[x] {
			fmt.Fprintf(&b, "knows(g%d, g%d).\n", x, y)
		}
	}
	return b.String()
}
