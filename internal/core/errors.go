package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/enginerr"
	"repro/internal/faults"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/val"
)

// Sentinel error classes, testable with errors.Is against any error
// returned by Solve/SolveContext. They alias the shared internal set so
// the WFS fallback and the stable-model enumerator report the same
// classes without an import cycle.
var (
	ErrCanceled       = enginerr.ErrCanceled
	ErrBudgetExceeded = enginerr.ErrBudgetExceeded
	ErrDiverged       = enginerr.ErrDiverged
	ErrInternal       = enginerr.ErrInternal
	ErrCheckpoint     = enginerr.ErrCheckpoint
)

// CheckpointFunc receives the current interpretation and cumulative
// stats at a consistent fixpoint boundary (end of a round, or end of a
// component). Monotonicity of T_P makes every such interpretation a
// sound restart point: it lies between the EDB and the least model, so
// the fixpoint resumed from it converges to the same least model. The
// callback must finish with db before returning (typically by
// serializing it) and must not retain it.
type CheckpointFunc func(db *relation.DB, stats Stats) error

// Limits bounds one Solve call. The zero value means "no limits" (the
// divergence detector still runs at its default threshold; set
// DivergenceStreak < 0 to disable it).
type Limits struct {
	// MaxFacts caps the number of tuple derivations performed by one
	// solve call; 0 means unlimited. A resumed solve whose stats are
	// seeded from a checkpoint gets a fresh budget (the cap bounds the
	// increment of stats.Derived, not its cumulative value). Under the
	// naive strategy every round re-derives the interpretation, so the
	// budget counts derivation work, not distinct tuples.
	MaxFacts int64
	// MaxDuration is a per-solve wall-clock deadline; 0 means none.
	MaxDuration time.Duration
	// CheckEvery is the cancellation-poll granularity in rule firings
	// (default 4096). Smaller values notice cancellation sooner at a
	// slight throughput cost.
	CheckEvery int
	// DivergenceStreak is the ω-limit detector threshold: evaluation
	// fails with ErrDiverged once the same atom improves this many
	// consecutive times with no other atom improving in between — the
	// signature of a fixpoint at ω (Example 5.1). 0 means the default
	// (1000); negative disables the detector.
	DivergenceStreak int
	// Checkpoint, when set, is invoked at consistent fixpoint
	// boundaries with the current interpretation and cumulative stats,
	// so the solve can be resumed after a crash (see Engine.Resume). A
	// checkpoint failure stops evaluation with ErrCheckpoint.
	Checkpoint CheckpointFunc
	// CheckpointEvery emits a checkpoint every N fixpoint rounds
	// (0 disables round-boundary checkpoints; component boundaries
	// always checkpoint while Checkpoint is set).
	CheckpointEvery int
	// Parallelism sets the evaluation worker-pool size: independent
	// components run concurrently, and within a recursive component the
	// rules of one round are evaluated speculatively in parallel (see
	// docs/ARCHITECTURE.md for the determinism contract — models, traces
	// and stats totals are byte-identical to sequential evaluation).
	// 0 means runtime.GOMAXPROCS(0); 1 (or any value below 1) selects
	// exactly the sequential engine.
	Parallelism int
	// Executor selects the rule-body execution backend. The two
	// executors implement the same contract — semi-naive Δ restriction,
	// firings/probes accounting, provenance, budget polling — and
	// produce byte-identical models, traces and checkpoints; they differ
	// only in evaluation mechanics and allocation behaviour.
	Executor Executor
	// Plan selects the rule-planning strategy: the syntactic textual
	// join order, or the cost-based planner in internal/planner (join
	// ordering by estimated selectivity, γ-map presizing, common-subplan
	// sharing, adaptive re-planning between rounds). Both plans produce
	// identical models, traces and checkpoints — the planner only
	// changes the order work is performed in, never its outcome (see
	// docs/PLANNER.md for the equivalence contract).
	Plan Plan
}

// Executor names a rule-body execution backend (Limits.Executor).
type Executor int

const (
	// ExecutorDefault selects the engine's default backend (currently
	// the tuple interpreter).
	ExecutorDefault Executor = iota
	// ExecutorTuple is the tuple-at-a-time backtracking interpreter in
	// eval.go: simple, allocation-heavy, the reference semantics.
	ExecutorTuple
	// ExecutorStream is the streaming relational-algebra executor in
	// internal/exec: lazy iterator pipelines over the same index
	// structures, with Δ-aware hash joins and pooled per-rule machines
	// so steady-state evaluation performs no per-tuple allocation.
	ExecutorStream
)

// String renders the executor name as the CLIs spell it.
func (x Executor) String() string {
	if x == ExecutorStream {
		return "stream"
	}
	return "tuple"
}

// Plan names a rule-planning strategy (Limits.Plan).
type Plan int

const (
	// PlanDefault selects the engine's default strategy (currently the
	// syntactic plan).
	PlanDefault Plan = iota
	// PlanSyntactic orders each rule body exactly as the greedy
	// left-to-right compiler in plan.go wrote it: deterministic,
	// statistics-free, the reference behaviour.
	PlanSyntactic
	// PlanCost enables the cost-based planner: before a component's
	// fixpoint starts (and adaptively between rounds), each rule body's
	// scans are reordered by estimated selectivity from live relation
	// cardinalities, γ group tables are presized, and scan prefixes
	// shared across the component's rules are evaluated once into a
	// shared buffer (CSE). See docs/PLANNER.md.
	PlanCost
)

// String renders the plan name as the CLIs spell it.
func (p Plan) String() string {
	if p == PlanCost {
		return "cost"
	}
	return "syntactic"
}

const (
	defaultCheckEvery       = 4096
	defaultDivergenceStreak = 1000
	divergenceTrajectoryLen = 8
)

// Divergence describes an ω-limit signature: one aggregate group whose
// cost kept improving round after round without the rest of the
// interpretation changing.
type Divergence struct {
	// Pred and Group identify the offending atom (the group key of the
	// aggregate that keeps improving).
	Pred  ast.PredKey
	Group []val.T
	// Streak is the number of consecutive improvements observed.
	Streak int
	// Recent is the recent cost trajectory (oldest first), recorded
	// for numeric lattices only.
	Recent []float64
}

// Atom renders the diverging group as pred(args).
func (d *Divergence) Atom() string {
	parts := make([]string, len(d.Group))
	for i, a := range d.Group {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", d.Pred.Name(), strings.Join(parts, ", "))
}

// EngineError is the structured failure of a bounded evaluation. It
// wraps one of the sentinel classes (ErrCanceled, ErrBudgetExceeded,
// ErrDiverged, ErrInternal) and carries enough context to diagnose the
// failure: the component being evaluated, how far the fixpoint got, and
// the last atom that improved. Solve returns the partial interpretation
// alongside it, so no work is lost.
type EngineError struct {
	// Err is the sentinel class; errors.Is(e, core.ErrCanceled) etc.
	// see through it.
	Err error
	// Component lists the predicates of the component being evaluated.
	Component []ast.PredKey
	// Rule is the rule being fired when the failure surfaced, when
	// known (always set for contained panics).
	Rule string
	// Round, Firings and Derived snapshot Stats at failure time.
	Round   int
	Firings int64
	Derived int64
	// Limit is the breached bound (MaxFacts or MaxRounds), when any.
	Limit int64
	// LastImproved is the most recently improved atom, rendered as
	// pred(args) = cost.
	LastImproved string
	// Divergence is set when the ω-limit detector fired.
	Divergence *Divergence
	// Cause is the underlying error: ctx.Err() for cancellations, the
	// recovered panic for ErrInternal, or a lower engine's error.
	Cause error
	// Stack is the goroutine stack of a contained panic.
	Stack []byte
}

func (e *EngineError) Error() string {
	var b strings.Builder
	switch {
	case errors.Is(e.Err, ErrCanceled):
		fmt.Fprintf(&b, "core: evaluation canceled on component %v after %d rounds (%d firings, %d derived)",
			e.Component, e.Round, e.Firings, e.Derived)
	case errors.Is(e.Err, ErrBudgetExceeded):
		fmt.Fprintf(&b, "core: derivation budget exceeded on component %v: %d tuples derived (limit %d) after %d rounds",
			e.Component, e.Derived, e.Limit, e.Round)
	case errors.Is(e.Err, ErrDiverged):
		if d := e.Divergence; d != nil {
			fmt.Fprintf(&b, "core: component %v appears to diverge: %s improved %d consecutive times with nothing else changing",
				e.Component, d.Atom(), d.Streak)
			if len(d.Recent) > 0 {
				fmt.Fprintf(&b, " (recent costs %v)", d.Recent)
			}
			b.WriteString("; its least fixpoint may lie at ω (Example 5.1) — set Epsilon (§6.2)")
		} else {
			fmt.Fprintf(&b, "core: component %v did not reach a fixpoint within %d rounds (ω-limit program? set Epsilon, §6.2)",
				e.Component, e.Limit)
		}
	case errors.Is(e.Err, ErrInternal):
		fmt.Fprintf(&b, "core: internal panic contained in component %v (round %d)", e.Component, e.Round)
	case errors.Is(e.Err, ErrCheckpoint):
		fmt.Fprintf(&b, "core: checkpoint write failed on component %v (round %d); stopping rather than outrun the last recoverable state",
			e.Component, e.Round)
	default:
		fmt.Fprintf(&b, "core: evaluation failed on component %v (round %d)", e.Component, e.Round)
	}
	if e.Rule != "" {
		fmt.Fprintf(&b, "; rule %q", e.Rule)
	}
	if e.LastImproved != "" {
		fmt.Fprintf(&b, "; last improved %s", e.LastImproved)
	}
	if e.Cause != nil {
		fmt.Fprintf(&b, ": %v", e.Cause)
	}
	return b.String()
}

// Unwrap exposes both the sentinel class and the underlying cause to
// errors.Is/errors.As.
func (e *EngineError) Unwrap() []error {
	out := []error{e.Err}
	if e.Cause != nil {
		out = append(out, e.Cause)
	}
	return out
}

// guard enforces one solve's limits: cooperative cancellation, the
// derivation budget, and the ω-limit divergence detector. The fixpoint
// loops poll it at round boundaries and (through evaluator.check) every
// CheckEvery firings, and report every derivation to it.
type guard struct {
	ctx      context.Context
	maxFacts int64
	// budget, when non-nil, replaces the local maxFacts accounting with a
	// solve-global atomic derivation counter shared by every parallel
	// component worker, so MaxFacts bounds the whole solve no matter how
	// work is distributed.
	budget *sharedBudget
	// baseDerived is stats.Derived at guard creation; MaxFacts bounds
	// the derivations of this call, not the cumulative total, so a
	// resumed solve seeded with checkpoint stats gets a fresh budget.
	baseDerived int64
	checkEvery  int
	stats       *Stats
	det         divergeDetector
	// comp and rule track the engine's current position for error
	// reporting; the li* fields snapshot the latest improved atom,
	// rendered lazily in fail() so the happy path never formats it
	// (liArgs is a reused copy — callers may pass scratch slices).
	comp      []ast.PredKey
	rule      *ast.Rule
	liPred    ast.PredKey
	liArgs    []val.T
	liCost    lattice.Elem
	liHasCost bool
	liSet     bool
	polls     int
	// ckpt and ckptEvery drive durable checkpointing; sinceCkpt counts
	// rounds since the last emitted checkpoint.
	ckpt      CheckpointFunc
	ckptEvery int
	sinceCkpt int
	// sink receives checkpoint/divergence/budget events (nil = none).
	sink obs.Sink
}

func newGuard(ctx context.Context, lim Limits, stats *Stats) *guard {
	g := &guard{ctx: ctx, maxFacts: lim.MaxFacts, baseDerived: stats.Derived,
		checkEvery: lim.CheckEvery, stats: stats,
		ckpt: lim.Checkpoint, ckptEvery: lim.CheckpointEvery}
	if g.checkEvery <= 0 {
		g.checkEvery = defaultCheckEvery
	}
	g.det.threshold = lim.DivergenceStreak
	if g.det.threshold == 0 {
		g.det.threshold = defaultDivergenceStreak
	}
	return g
}

// roundBoundary runs at the end of every fixpoint round, when db is a
// consistent intermediate interpretation: it gives the fault-injection
// point a chance to kill the evaluation (crash-recovery tests) and
// emits a periodic checkpoint.
func (g *guard) roundBoundary(db *relation.DB) error {
	if err := faults.Check(faults.CoreRound); err != nil {
		return g.fail(ErrInternal, err)
	}
	return g.checkpoint(db, false)
}

// checkpoint invokes the configured checkpoint callback; force bypasses
// the every-N-rounds cadence (component boundaries always emit one). A
// failed checkpoint is a first-class evaluation failure: continuing
// would outrun the last durable state.
func (g *guard) checkpoint(db *relation.DB, force bool) error {
	if g.ckpt == nil {
		return nil
	}
	if !force {
		if g.ckptEvery <= 0 {
			return nil
		}
		g.sinceCkpt++
		if g.sinceCkpt < g.ckptEvery {
			return nil
		}
	}
	g.sinceCkpt = 0
	// Clone: the callback may retain the stats value, and the engine
	// keeps accumulating into the breakdown slices after it returns.
	if err := g.ckpt(db, g.stats.Clone()); err != nil {
		return g.fail(ErrCheckpoint, err)
	}
	if g.sink != nil {
		g.sink.Event(obs.Event{Kind: obs.CheckpointFlushed, Component: -1,
			Round: g.stats.Rounds, Derived: g.stats.Derived})
	}
	return nil
}

// fail builds an EngineError snapshotting the guard's position.
func (g *guard) fail(class, cause error) *EngineError {
	e := &EngineError{
		Err:       class,
		Component: g.comp,
		Round:     g.stats.Rounds,
		Firings:   g.stats.Firings,
		Derived:   g.stats.Derived,
		Cause:     cause,
	}
	if g.liSet {
		e.LastImproved = renderAtom(g.liPred, g.liArgs, g.liCost, g.liHasCost)
	}
	if g.rule != nil {
		e.Rule = g.rule.String()
	}
	return e
}

// poll checks for cancellation (context cancel, SIGINT via the caller's
// context, or the MaxDuration deadline — SolveContext folds MaxDuration
// into the context).
func (g *guard) poll() error {
	select {
	case <-g.ctx.Done():
		return g.fail(ErrCanceled, g.ctx.Err())
	default:
		return nil
	}
}

// check is handed to evaluators and polls every checkEvery firings, so
// cancellation is noticed even inside one long round.
func (g *guard) check() error {
	g.polls++
	if g.polls%g.checkEvery != 0 {
		return nil
	}
	return g.poll()
}

// derived is called after every counted derivation. improved reports
// whether the tuple's lattice value actually changed relative to the
// current interpretation (always true in the semi-naive strategy, where
// only changes are counted).
func (g *guard) derived(pred ast.PredKey, args []val.T, cost lattice.Elem, hasCost, improved bool) error {
	if improved {
		g.liPred, g.liCost, g.liHasCost, g.liSet = pred, cost, hasCost, true
		g.liArgs = append(g.liArgs[:0], args...)
	}
	if g.budget != nil {
		if err := g.budget.spend(g); err != nil {
			return err
		}
	} else if g.maxFacts > 0 && g.stats.Derived-g.baseDerived > g.maxFacts {
		e := g.fail(ErrBudgetExceeded, nil)
		e.Limit = g.maxFacts
		if g.sink != nil {
			g.sink.Event(obs.Event{Kind: obs.BudgetBreach, Component: -1,
				Round: g.stats.Rounds, Derived: g.stats.Derived, Err: e.Error()})
		}
		return e
	}
	if improved {
		if d := g.det.observe(pred, args, cost, hasCost); d != nil {
			e := g.fail(ErrDiverged, nil)
			e.Divergence = d
			if g.sink != nil {
				g.sink.Event(obs.Event{Kind: obs.DivergenceWarning, Component: -1,
					Round: g.stats.Rounds, Derived: g.stats.Derived, Err: e.Error()})
			}
			return e
		}
	}
	return nil
}

// maxRounds builds the round-bound breach error.
func (g *guard) maxRounds(limit int) *EngineError {
	e := g.fail(ErrDiverged, nil)
	e.Limit = int64(limit)
	if g.sink != nil {
		g.sink.Event(obs.Event{Kind: obs.DivergenceWarning, Component: -1,
			Round: g.stats.Rounds, Derived: g.stats.Derived, Err: e.Error()})
	}
	return e
}

func renderAtom(pred ast.PredKey, args []val.T, cost lattice.Elem, hasCost bool) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	s := fmt.Sprintf("%s(%s)", pred.Name(), strings.Join(parts, ", "))
	if hasCost {
		s += " = " + cost.String()
	}
	return s
}

// divergeDetector watches for the ω-limit signature of §5/§6.2: the
// same atom (aggregate group) improving over and over while nothing
// else changes. Legitimate convergent programs interleave improvements
// across atoms, resetting the streak; the halfsum program of Example
// 5.1 improves a single group forever and trips the threshold.
type divergeDetector struct {
	threshold int
	seen      bool
	streak    int
	pred      ast.PredKey
	args      []val.T
	recent    []float64
}

// sameAtom compares the observed atom against the retained one without
// building a key string (this runs on every improvement).
func (d *divergeDetector) sameAtom(pred ast.PredKey, args []val.T) bool {
	if !d.seen || pred != d.pred || len(args) != len(d.args) {
		return false
	}
	for i := range args {
		if !val.Equal(args[i], d.args[i]) {
			return false
		}
	}
	return true
}

func (d *divergeDetector) observe(pred ast.PredKey, args []val.T, cost lattice.Elem, hasCost bool) *Divergence {
	if d.threshold <= 0 {
		return nil
	}
	if !d.sameAtom(pred, args) {
		d.seen = true
		d.streak = 0
		d.pred = pred
		d.args = append(d.args[:0], args...)
		d.recent = d.recent[:0]
	}
	d.streak++
	if hasCost && cost.Kind == val.Num {
		if len(d.recent) == divergenceTrajectoryLen {
			copy(d.recent, d.recent[1:])
			d.recent = d.recent[:divergenceTrajectoryLen-1]
		}
		d.recent = append(d.recent, cost.N)
	}
	if d.streak < d.threshold {
		return nil
	}
	return &Divergence{
		Pred:   d.pred,
		Group:  append([]val.T{}, d.args...),
		Streak: d.streak,
		Recent: append([]float64{}, d.recent...),
	}
}
