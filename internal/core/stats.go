package core

import "repro/internal/obs"

// Stats reports work done by Solve. Besides the cumulative totals it
// carries per-rule and per-component breakdowns (indexed by the
// engine's compile-time rule and component order), maintained by every
// strategy and accumulated across Resume/SolveMore chains.
//
// The breakdown invariant: for any model produced by Solve or by a
// chain of in-memory SolveMore/Resume calls, the per-rule Firings,
// Derived and Probes sum to the scalar totals (WFS-fallback components
// contribute rounds but no rule firings). A solve resumed from a
// durable snapshot re-seeds only the scalar totals — the snapshot
// format records no breakdowns — so there the per-rule sums cover the
// work since the restore.
type Stats struct {
	Components int
	Rounds     int
	Firings    int64
	Derived    int64
	// Probes counts join probes: rows offered to the evaluator by
	// relation scans and point lookups (before binding filters).
	Probes int64
	// Rules holds the per-rule breakdown, indexed by the engine's
	// global rule index.
	Rules []RuleStats
	// Comps holds the per-component breakdown, indexed by bottom-up
	// component order (including EDB-only components, which stay zero).
	Comps []ComponentStats
}

// RuleStats is the work attributed to one rule.
type RuleStats struct {
	// Index is the engine-global rule index; Rule is the rule text.
	Index int
	Rule  string
	// Component is the bottom-up index of the rule's component.
	Component int
	// Rounds counts fixpoint rounds in which the rule was evaluated.
	Rounds int
	// Firings, Derived and Probes mirror the scalar totals, restricted
	// to this rule's evaluation passes.
	Firings int64
	Derived int64
	Probes  int64
	// Nanos is the wall time spent evaluating the rule.
	Nanos int64
}

// ComponentStats is the work attributed to one program component.
type ComponentStats struct {
	// Index is the bottom-up component order; Preds lists the
	// component's predicates ("a/2,b/3").
	Index int
	Preds string
	// WFS marks well-founded-fallback evaluation; Admissible is the
	// static verdict of Definition 4.5.
	WFS        bool
	Admissible bool
	Rounds     int
	Firings    int64
	Derived    int64
	Probes     int64
	Nanos      int64
}

// Clone deep-copies the stats. Seeding a solve from a prior model's
// stats must not share backing arrays: the engine accumulates into its
// working copy in place, and the prior model keeps reporting its own
// totals.
func (s Stats) Clone() Stats {
	if s.Rules != nil {
		s.Rules = append([]RuleStats(nil), s.Rules...)
	}
	if s.Comps != nil {
		s.Comps = append([]ComponentStats(nil), s.Comps...)
	}
	return s
}

// ensureStats sizes the breakdown slices for this engine, preserving
// entries carried over from a compatible base (an in-memory
// Resume/SolveMore chain on the same engine). A base with a different
// shape — typically the scalar-only stats restored from a durable
// snapshot — gets fresh zeroed breakdowns while its scalar totals are
// kept.
func (en *Engine) ensureStats(stats *Stats) {
	if len(stats.Rules) != en.nrules {
		stats.Rules = make([]RuleStats, en.nrules)
		for ci, ps := range en.plans {
			for _, p := range ps {
				stats.Rules[p.idx] = RuleStats{Index: p.idx, Rule: p.text, Component: ci}
			}
		}
	}
	if len(stats.Comps) != len(en.comps) {
		stats.Comps = make([]ComponentStats, len(en.comps))
		for ci := range en.comps {
			stats.Comps[ci] = ComponentStats{
				Index: ci, Preds: en.compPreds[ci],
				WFS: en.wfsComp[ci], Admissible: en.compAdm[ci] == nil,
			}
		}
	}
}

// noteRule attributes one round's evaluation passes of one rule to its
// breakdown entry and, with a sink attached, emits the RuleFired event.
func (en *Engine) noteRule(rs *RuleStats, ci, round int, firings, derived, probes, nanos int64) {
	rs.Rounds++
	rs.Firings += firings
	rs.Derived += derived
	rs.Probes += probes
	rs.Nanos += nanos
	if en.sink != nil {
		en.sink.Event(obs.Event{
			Kind: obs.RuleFired, Component: ci, Round: round,
			Rule: rs.Rule, RuleIndex: rs.Index,
			Firings: firings, Derived: derived, Probes: probes, Nanos: rs.Nanos,
		})
	}
}
