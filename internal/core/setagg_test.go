package core

import (
	"sync"
	"testing"

	"repro/internal/lattice"
	"repro/internal/val"
)

// registerGraphAggregates installs the instance-specific Figure 1
// aggregates used by these tests exactly once (the registries are
// global).
var registerGraphAggregates = sync.OnceFunc(func() {
	universe := val.NewSet([]val.T{
		val.Symbol("read"), val.Symbol("write"), val.Symbol("exec"), val.Symbol("admin"),
	})
	lattice.Register(lattice.NewSetUnionOver("perm", universe))
	inter := lattice.NewIntersection("allperms", universe)
	lattice.Register(inter.Domain())
	lattice.RegisterAggregate(inter)
	lattice.RegisterAggregate(lattice.NewProperty("linked", lattice.ConnectsProperty("src", "dst")))
})

// TestUnionAggregateThroughEngine runs Figure 1's set-union row through
// the full engine: the permissions granted to a user across roles.
func TestUnionAggregateThroughEngine(t *testing.T) {
	registerGraphAggregates()
	src := `
.cost grants/3 : setunion.
.cost perms/2 : setunion.
grants(alice, reader, {read}).
grants(alice, editor, {read, write}).
grants(bob, ops, {exec}).
perms(U, S) :- S ?= union P : grants(U, R, P).
`
	db := solve(t, src, Options{})
	row, ok := db.Rel("perms/2").Get([]val.T{val.Symbol("alice")})
	if !ok {
		t.Fatal("perms(alice) missing")
	}
	want := val.NewSet([]val.T{val.Symbol("read"), val.Symbol("write")})
	if !row.Cost.Set.Equal(want) {
		t.Fatalf("perms(alice) = %v, want {read, write}", row.Cost)
	}
	row, _ = db.Rel("perms/2").Get([]val.T{val.Symbol("bob")})
	if row.Cost.Set.Len() != 1 {
		t.Fatalf("perms(bob) = %v", row.Cost)
	}
}

// TestIntersectionAggregateThroughEngine runs Figure 1's intersection
// row: permissions common to all of a user's roles (⊥ = the universe).
func TestIntersectionAggregateThroughEngine(t *testing.T) {
	registerGraphAggregates()
	src := `
.cost grants/3 : allperms_dom.
.cost common/2 : allperms_dom.
grants(alice, reader, {read, admin}).
grants(alice, editor, {read, write}).
common(U, S) :- S ?= allperms P : grants(U, R, P).
`
	db := solve(t, src, Options{})
	row, ok := db.Rel("common/2").Get([]val.T{val.Symbol("alice")})
	if !ok {
		t.Fatal("common(alice) missing")
	}
	if row.Cost.Set.Len() != 1 || !row.Cost.Set.Contains(val.Symbol("read")) {
		t.Fatalf("common(alice) = %v, want {read}", row.Cost)
	}
}

// TestPropertyAggregateThroughEngine runs Figure 1's row 11: a monotone
// multigraph property (src reaches dst) over a multiset of edge sets.
func TestPropertyAggregateThroughEngine(t *testing.T) {
	registerGraphAggregates()
	src := `
.cost segment/2 : setunion.
.cost reachable/1 : boolor.
segment(s1, {}).
reachable(B) :- B = linked E : segment(S, E).
`
	// Without connecting segments the property is false.
	db := solve(t, src, Options{})
	row, ok := db.Rel("reachable/1").Get(nil)
	if !ok || row.Cost.B {
		t.Fatalf("reachable = %v (%v), want false", row.Cost, ok)
	}
	// Adding segments whose union connects src to dst flips it: edges are
	// written as "u->v" strings in program text.
	src2 := `
.cost segment/2 : setunion.
.cost reachable/1 : boolor.
segment(s1, {"src->m"}).
segment(s2, {"m->dst"}).
reachable(B) :- B = linked E : segment(S, E).
`
	db = solve(t, src2, Options{})
	row, ok = db.Rel("reachable/1").Get(nil)
	if !ok || !row.Cost.B {
		t.Fatalf("reachable = %v (%v), want true (union of segments links src to dst)", row.Cost, ok)
	}
}
