package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/val"
)

// randomGraphSrc builds shortest-path EDB text for a random digraph.
func randomGraphSrc(r *rand.Rand, n, m int) string {
	src := ""
	seen := map[string]bool{}
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		k := fmt.Sprintf("%d-%d", u, v)
		if seen[k] {
			continue // duplicate arcs with two weights violate the cost FD
		}
		seen[k] = true
		w := r.Intn(9) + 1
		src += fmt.Sprintf("arc(v%d, v%d, %d).\n", u, v, w)
	}
	return src
}

func randomOwnershipSrc(r *rand.Rand, n, m int) string {
	src := ""
	seen := map[string]bool{}
	for i := 0; i < m; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		k := fmt.Sprintf("%d-%d", u, v)
		if seen[k] {
			continue
		}
		seen[k] = true
		src += fmt.Sprintf("s(c%d, c%d, 0.%d).\n", u, v, 1+r.Intn(8))
	}
	return src
}

// TestPropertyFixpointIsModel: on random instances the engine's answer is
// a model and a pre-model (Propositions 3.3-3.4), and both strategies
// agree.
func TestPropertyFixpointIsModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var src string
		if r.Intn(2) == 0 {
			src = shortestPathProg + randomGraphSrc(r, 2+r.Intn(6), r.Intn(12))
		} else {
			src = companyControlProg + randomOwnershipSrc(r, 2+r.Intn(5), r.Intn(10))
		}
		en := mustEngine(t, src, Options{})
		m, _, err := en.Solve(nil)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		if ok, err := en.IsModel(m); err != nil || !ok {
			t.Errorf("seed %d: fixpoint is not a model (%v)\n%s\n%s", seed, err, src, m)
			return false
		}
		if ok, _ := en.IsPreModel(m); !ok {
			t.Errorf("seed %d: fixpoint is not a pre-model", seed)
			return false
		}
		enN := mustEngine(t, src, Options{Strategy: Naive})
		mn, _, err := enN.Solve(nil)
		if err != nil {
			t.Errorf("seed %d (naive): %v", seed, err)
			return false
		}
		if !m.Equal(mn, nil) {
			t.Errorf("seed %d: naive and semi-naive disagree\n%s\nvs\n%s", seed, m, mn)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTPMonotone property-checks Lemma 4.1: J ⊑ J' implies
// T_P(J, I) ⊑ T_P(J', I) on the shortest-path component.
func TestPropertyTPMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		src := shortestPathProg + randomGraphSrc(r, n, 1+r.Intn(8))
		en := mustEngine(t, src, Options{})
		// Find the recursive component containing s/3.
		ci := -1
		for i := 0; i < en.ComponentCount(); i++ {
			for _, p := range en.ComponentPreds(i) {
				if p == "s/3" {
					ci = i
				}
			}
		}
		if ci < 0 {
			t.Fatal("no s/3 component")
		}
		// Base I: solve the EDB-only part by running Solve and dropping
		// the CDB predicates — equivalently, just use the fact rules.
		full, _, err := en.Solve(nil)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		// Build J2 ⊒ J1: J2 takes the solved s/path atoms; J1 keeps a
		// random subset with randomly worsened costs (numerically larger
		// in minreal).
		j2 := relation.NewDB(en.Schemas)
		j1 := relation.NewDB(en.Schemas)
		for _, k := range full.Preds() {
			if k.Name() == "arc" {
				// I part, shared.
				full.Rel(k).Each(func(row relation.Row) bool {
					j1.Rel(k).InsertJoin(row.Args, row.Cost)
					j2.Rel(k).InsertJoin(row.Args, row.Cost)
					return true
				})
				continue
			}
			full.Rel(k).Each(func(row relation.Row) bool {
				j2.Rel(k).InsertJoin(row.Args, row.Cost)
				if r.Intn(3) > 0 {
					worse := row.Cost
					worse.N += float64(r.Intn(5))
					j1.Rel(k).InsertJoin(row.Args, worse)
				}
				return true
			})
		}
		if !j1.Leq(j2, nil) {
			t.Fatalf("seed %d: generator broke J1 ⊑ J2", seed)
		}
		t1, err := en.TP(j1, ci)
		if err != nil {
			t.Errorf("seed %d: TP(J1): %v", seed, err)
			return false
		}
		t2, err := en.TP(j2, ci)
		if err != nil {
			t.Errorf("seed %d: TP(J2): %v", seed, err)
			return false
		}
		if !t1.Leq(t2, nil) {
			t.Errorf("seed %d: T_P not monotone:\nJ1:\n%s\nJ2:\n%s\nT(J1):\n%s\nT(J2):\n%s",
				seed, j1, j2, t1, t2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLeastAmongModels: joining arbitrary extra atoms into the
// least model and closing under T_P yields a pre-model that the least
// model is ⊑ of (Corollary 3.5's glb direction, witnessed on samples).
func TestPropertyLeastAmongModels(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		src := shortestPathProg + randomGraphSrc(r, n, 1+r.Intn(8))
		en := mustEngine(t, src, Options{})
		m, _, err := en.Solve(nil)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		// Inflate: add a random s atom (a spurious claim) and re-close.
		inflated := m.Clone()
		u := fmt.Sprintf("v%d", r.Intn(n))
		v := fmt.Sprintf("v%d", r.Intn(n))
		inflated.AddFact("s", []val.T{val.Symbol(u), val.Symbol(v)}, val.Number(float64(r.Intn(3))))
		// Close under the recursive component's T_P until pre-model.
		ci := -1
		for i := 0; i < en.ComponentCount(); i++ {
			for _, p := range en.ComponentPreds(i) {
				if p == "s/3" {
					ci = i
				}
			}
		}
		for iter := 0; iter < 1000; iter++ {
			out, err := en.TP(inflated, ci)
			if err != nil {
				t.Errorf("seed %d: %v", seed, err)
				return false
			}
			if !inflated.Join(out) {
				break
			}
		}
		if ok, _ := en.IsPreModel(inflated); !ok {
			// Closure may not terminate in 1000 rounds on adversarial
			// graphs; skip those runs.
			return true
		}
		if !m.Leq(inflated, nil) {
			t.Errorf("seed %d: least model not ⊑ closed superset", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
