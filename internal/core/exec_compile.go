package core

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/relation"
	"repro/internal/val"
)

// This file lowers compiled rule plans (plan.go) to the streaming
// relational-algebra executor (internal/exec) and adapts both executors
// behind the runner interface the fixpoint loops evaluate through.
//
// The lowering is 1:1 — exec step index i is plan step index i — so the
// semi-naive restriction keys (Config.RestrictStep, Config.AggGroups)
// carry over unchanged. Binding patterns are static: each step binds a
// fixed variable set whenever it succeeds, so the aggregate conjunction
// orders the tuple interpreter derives at runtime (agg.go) are computed
// once here, for both the grouped and the point mode.

// compileStream lowers one step arrangement of a plan to a streaming
// pipeline: the syntactic order at compile time (steps == p.steps) and
// any cost-planned physical the planner builds later. hints, when
// non-nil, carries per-position γ group-map presizes (plancost.go).
func compileStream(p *plan, planSteps []step, hints []int) *exec.Rule {
	steps := make([]exec.Step, len(planSteps))
	// bound simulates the binding pattern along the pipeline: every step
	// binds its variables unconditionally on success and the step order
	// is fixed, so the set is exact, not an approximation.
	bound := make([]bool, p.nvars)
	for i, s := range planSteps {
		switch s := s.(type) {
		case *scanStep:
			steps[i] = exec.Step{Kind: exec.ScanKind, Atom: execAtom(&s.atomSpec)}
			for _, v := range s.argVar {
				if v >= 0 {
					bound[v] = true
				}
			}
			if s.costVar >= 0 {
				bound[s.costVar] = true
			}
		case *negStep:
			steps[i] = exec.Step{Kind: exec.NegKind, Atom: execAtom(&s.atomSpec)}
		case *builtinStep:
			steps[i] = exec.Step{Kind: exec.BuiltinKind, Builtin: &exec.BuiltinStep{Assign: s.assign}}
			if s.assign >= 0 {
				bound[s.assign] = true
			}
		case *aggStep:
			a := compileAgg(s, bound)
			if hints != nil && hints[i] > 0 {
				a.GroupsHint = hints[i]
			}
			steps[i] = exec.Step{Kind: exec.AggKind, Agg: a}
			for _, v := range s.groupVars {
				bound[v] = true
			}
			bound[s.result] = true
		case *bufferStep:
			steps[i] = exec.Step{Kind: exec.BufferKind, Buffer: &exec.BufferStep{Rows: s.rows, Vars: s.vars}}
			for _, v := range s.vars {
				bound[v] = true
			}
		}
	}
	return exec.NewRule(p.nvars, steps, streamHooks(planSteps))
}

// compileAgg lowers a γ step, fixing the conjunction orders the tuple
// interpreter computes per invocation: OrderFull for the grouped mode
// (bound set as of this step, restricted to variables the conjunction
// mentions — exactly agg.go's noteBound) and OrderPoint for the point
// mode (the same set plus the grouping variables, which the Δ-grouped
// recursion binds before re-entering).
func compileAgg(s *aggStep, bound []bool) *exec.AggStep {
	a := &exec.AggStep{
		G:          s.g,
		Restricted: s.restricted,
		Result:     s.result,
		GroupVars:  s.groupVars,
		MsVar:      s.msVar,
		Apply:      s.f.Apply,
		Range:      s.f.Range(),
	}
	for ci := range s.conj {
		a.Conj = append(a.Conj, execAtom(&s.conj[ci]))
	}
	group := make(map[int]bool, len(s.groupVars))
	for _, v := range s.groupVars {
		group[v] = true
	}
	full := map[int]bool{}
	point := map[int]bool{}
	note := func(v int) {
		if v < 0 {
			return
		}
		if bound[v] {
			full[v] = true
			point[v] = true
		} else if group[v] {
			point[v] = true
		}
	}
	for ci := range s.conj {
		sp := &s.conj[ci]
		for _, v := range sp.argVar {
			note(v)
		}
		note(sp.costVar)
	}
	a.OrderFull, a.OrderFullErr = orderConj(s.conj, full)
	a.OrderPoint, a.OrderPointErr = orderConj(s.conj, point)
	return a
}

func execAtom(sp *atomSpec) exec.Atom {
	return exec.Atom{
		Pred:    sp.pred,
		Info:    sp.pi,
		ArgVar:  sp.argVar,
		ArgVal:  sp.argVal,
		CostVar: sp.costVar,
		CostVal: sp.costVal,
		Wide:    len(sp.argVar) > 64,
	}
}

// streamAux is the host state cached on each exec.Machine: an env
// aliasing the machine's register file (so head projection and
// provenance capture read bindings in place) and per-step builtin
// evaluators prebuilt against that env.
type streamAux struct {
	env      *env
	builtins []func() (ok, didBind bool, err error)
}

// streamHooks adapts the host-side pieces of pipeline evaluation —
// builtin expressions and provenance capture — to the given step
// arrangement (hooks index by pipeline position, which is physical),
// preserving the tuple interpreter's semantics and error text exactly.
func streamHooks(planSteps []step) exec.Hooks {
	return exec.Hooks{
		Init: func(m *exec.Machine) {
			aux := &streamAux{env: &env{vals: m.Vals, bound: m.Bound}}
			aux.builtins = make([]func() (bool, bool, error), len(planSteps))
			for i, s := range planSteps {
				if bs, ok := s.(*builtinStep); ok {
					aux.builtins[i] = makeBuiltinEval(bs, aux.env)
				}
			}
			m.Aux = aux
		},
		Builtin: func(m *exec.Machine, i int) (bool, bool, error) {
			return m.Aux.(*streamAux).builtins[i]()
		},
		CollectSupports: func(m *exec.Machine, i int, dst any) any {
			aux := m.Aux.(*streamAux)
			s := planSteps[i].(*aggStep)
			sup, _ := dst.([]Support)
			for ci := range s.conj {
				sup = append(sup, supportOfAtom(&s.conj[ci], aux.env, false))
			}
			return sup
		},
		SetAggSupports: func(m *exec.Machine, i int, supports any) {
			e := m.Aux.(*streamAux).env
			if e.aggSupports == nil {
				e.aggSupports = map[int][]Support{}
			}
			sup, _ := supports.([]Support)
			e.aggSupports[i] = sup
		},
		ClearAggSupports: func(m *exec.Machine, i int) {
			delete(m.Aux.(*streamAux).env.aggSupports, i)
		},
	}
}

// makeBuiltinEval prebuilds one builtin step's evaluator against e,
// mirroring evaluator.builtin (mode selection, error text) without the
// per-invocation closure allocations.
func makeBuiltinEval(s *builtinStep, e *env) func() (bool, bool, error) {
	get := func(name ast.Var) (val.T, bool) {
		idx, ok := s.varIndex(name)
		if !ok || !e.bound[idx] {
			return val.T{}, false
		}
		return e.vals[idx], true
	}
	return func() (bool, bool, error) {
		if s.assign >= 0 && !e.bound[s.assign] {
			v, err := ast.EvalExpr(s.expr, get)
			if err != nil {
				return false, false, fmt.Errorf("core: builtin %s: %v", s.b, err)
			}
			e.vals[s.assign] = v
			e.bound[s.assign] = true
			return true, true, nil
		}
		l, err := ast.EvalExpr(s.b.L, get)
		if err != nil {
			return false, false, fmt.Errorf("core: builtin %s: %v", s.b, err)
		}
		r, err := ast.EvalExpr(s.b.R, get)
		if err != nil {
			return false, false, fmt.Errorf("core: builtin %s: %v", s.b, err)
		}
		res, err := ast.Compare(s.b.Op, l, r)
		if err != nil {
			return false, false, fmt.Errorf("core: builtin %s: %v", s.b, err)
		}
		return res, false, nil
	}
}

// runner abstracts the two rule-body executors behind the evaluation
// pass the fixpoint loops construct: enumerate every satisfying
// assignment of a plan, accumulating firings and probes.
type runner interface {
	run(p *plan, emit func(*env) error) error
	fir() int64
	pr() int64
}

func (ev *evaluator) fir() int64 { return ev.firings }
func (ev *evaluator) pr() int64  { return ev.probes }

// streamRunner evaluates plans on their streaming pipelines, acquiring
// a pooled machine per run so concurrent speculative passes never share
// mutable state. When the engine profiles (prof non-nil, indexed by
// plan index), each run's per-step counters fold into the shared
// accumulators after the pass.
type streamRunner struct {
	cfg     exec.Config
	prof    [][]exec.OpAccum
	firings int64
	probes  int64
}

func (sr *streamRunner) run(p *plan, emit func(*env) error) error {
	ph := p.ph()
	m := ph.stream.Acquire(sr.cfg)
	aux := m.Aux.(*streamAux)
	err := m.Run(func(*exec.Machine) error { return emit(aux.env) })
	sr.firings += m.Firings
	sr.probes += m.Probes
	if sr.prof != nil {
		if pc := m.Profile(); pc != nil {
			// The accumulators are keyed by canonical step position so
			// counters stay attributed to the same operator across plan
			// switches; buffer steps (canon < 0) have no canonical slot.
			acc := sr.prof[p.idx]
			for i := range pc {
				if c := ph.canon[i]; c >= 0 {
					acc[c].Fold(pc[i])
				}
			}
		}
	}
	ph.stream.Release(m)
	return err
}

func (sr *streamRunner) fir() int64 { return sr.firings }
func (sr *streamRunner) pr() int64  { return sr.probes }

// newRunner builds the evaluation pass for the selected executor. The
// parameters are exactly the evaluator's fields; the streaming config
// maps them 1:1 because step indices coincide. prof, when non-nil, is
// the engine's per-rule operator-counter table (Options.Profile); only
// the streaming executor feeds it.
func newRunner(exe Executor, db *relation.DB, restrictStep int, restrictRows []relation.Row,
	aggGroups map[int]map[string]exec.GroupRef, trace bool, check func() error,
	prof [][]exec.OpAccum) runner {
	if exe == ExecutorStream {
		return &streamRunner{cfg: exec.Config{
			DB:           db,
			RestrictStep: restrictStep,
			RestrictRows: restrictRows,
			AggGroups:    aggGroups,
			Trace:        trace,
			Prof:         prof != nil,
			Check:        check,
		}, prof: prof}
	}
	return &evaluator{db: db, restrictStep: restrictStep, restrictRows: restrictRows,
		aggGroups: aggGroups, trace: trace, check: check}
}

// resolveExecutor maps the Limits knob to a concrete executor.
func resolveExecutor(lim Limits) Executor {
	if lim.Executor == ExecutorStream {
		return ExecutorStream
	}
	return ExecutorTuple
}
