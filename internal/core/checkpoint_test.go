package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/relation"
	"repro/internal/val"
)

// captureSink records every checkpoint the engine emits, cloning the
// database so later rounds cannot mutate earlier snapshots.
type captureSink struct {
	dbs   []*relation.DB
	stats []Stats
	fail  error // returned instead of recording when set
}

func (c *captureSink) fn() CheckpointFunc {
	return func(db *relation.DB, stats Stats) error {
		if c.fail != nil {
			return c.fail
		}
		c.dbs = append(c.dbs, db.Clone())
		c.stats = append(c.stats, stats)
		return nil
	}
}

// sameTotals compares the scalar totals of two Stats (the breakdown
// slices make Stats incomparable with ==).
func sameTotals(a, b Stats) bool {
	return a.Components == b.Components && a.Rounds == b.Rounds &&
		a.Firings == b.Firings && a.Derived == b.Derived && a.Probes == b.Probes
}

// TestCheckpointCadence: with CheckpointEvery=1 every round boundary
// checkpoints; the final snapshot equals the returned model, and the
// recorded stats are monotonically non-decreasing.
func TestCheckpointCadence(t *testing.T) {
	for _, strat := range []Strategy{SemiNaive, Naive} {
		sink := &captureSink{}
		en := mustEngine(t, chainProgram(12), Options{Strategy: strat})
		lim := Limits{Checkpoint: sink.fn(), CheckpointEvery: 1}
		db, stats, err := en.SolveLimits(context.Background(), nil, lim)
		if err != nil {
			t.Fatal(err)
		}
		if len(sink.dbs) < 3 {
			t.Fatalf("strategy %v: expected several checkpoints, got %d", strat, len(sink.dbs))
		}
		last := sink.dbs[len(sink.dbs)-1]
		if !db.Equal(last, nil) {
			t.Fatalf("strategy %v: final checkpoint must equal returned model", strat)
		}
		if got := sink.stats[len(sink.stats)-1]; !sameTotals(got, stats) {
			t.Fatalf("strategy %v: final checkpoint stats %+v != solve stats %+v", strat, got, stats)
		}
		var prev Stats
		for i, s := range sink.stats {
			if s.Rounds < prev.Rounds || s.Firings < prev.Firings || s.Derived < prev.Derived {
				t.Fatalf("strategy %v: checkpoint %d stats went backwards: %+v after %+v", strat, i, s, prev)
			}
			prev = s
		}
	}
}

// TestCheckpointEveryZeroStillCheckpointsComponents: CheckpointEvery=0
// disables round-boundary checkpoints but component boundaries always
// flush, so the final model is still captured.
func TestCheckpointEveryZeroStillCheckpointsComponents(t *testing.T) {
	sink := &captureSink{}
	en := mustEngine(t, chainProgram(12), Options{})
	db, _, err := en.SolveLimits(context.Background(), nil, Limits{Checkpoint: sink.fn()})
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.dbs) == 0 {
		t.Fatal("component boundaries must checkpoint even with CheckpointEvery=0")
	}
	if !db.Equal(sink.dbs[len(sink.dbs)-1], nil) {
		t.Fatal("last component checkpoint must equal the final model")
	}
}

// TestCheckpointSinkError: a failing sink stops evaluation with the
// ErrCheckpoint class wrapping the sink's error, and still returns the
// partial interpretation.
func TestCheckpointSinkError(t *testing.T) {
	boom := errors.New("disk full")
	sink := &captureSink{fail: boom}
	en := mustEngine(t, chainProgram(12), Options{})
	db, _, err := en.SolveLimits(context.Background(), nil, Limits{Checkpoint: sink.fn(), CheckpointEvery: 1})
	if !errors.Is(err, ErrCheckpoint) {
		t.Fatalf("err = %v, want ErrCheckpoint", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, must wrap the sink error", err)
	}
	var ee *EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %T, want *EngineError", err)
	}
	if db == nil {
		t.Fatal("checkpoint failure must still return the partial interpretation")
	}
}

// TestResumeFromCheckpoint: interrupt a solve with a tight MaxFacts
// budget, then Resume from the last checkpoint; the resumed model must
// equal an uninterrupted solve, with cumulative stats carried through.
func TestResumeFromCheckpoint(t *testing.T) {
	for _, strat := range []Strategy{SemiNaive, Naive} {
		src := chainProgram(20)
		full := solve(t, src, Options{Strategy: strat})

		sink := &captureSink{}
		en := mustEngine(t, src, Options{Strategy: strat})
		_, midStats, err := en.SolveLimits(context.Background(), nil,
			Limits{MaxFacts: 60, Checkpoint: sink.fn(), CheckpointEvery: 1})
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("strategy %v: err = %v, want ErrBudgetExceeded", strat, err)
		}
		if len(sink.dbs) == 0 {
			t.Fatalf("strategy %v: no checkpoint before the budget breach", strat)
		}

		last := sink.dbs[len(sink.dbs)-1]
		lastStats := sink.stats[len(sink.stats)-1]
		if last.Equal(full, nil) {
			t.Fatalf("strategy %v: checkpoint already complete; budget too loose for the test", strat)
		}
		// Resume on a fresh engine, as a crash-recovery caller would.
		en2 := mustEngine(t, src, Options{Strategy: strat})
		db, stats, err := en2.Resume(context.Background(), last, Limits{}, lastStats)
		if err != nil {
			t.Fatalf("strategy %v: resume: %v", strat, err)
		}
		if !db.Equal(full, nil) {
			t.Fatalf("strategy %v: resumed model differs from uninterrupted solve", strat)
		}
		if stats.Rounds <= lastStats.Rounds || stats.Derived < lastStats.Derived {
			t.Fatalf("strategy %v: resumed stats %+v must extend checkpoint stats %+v", strat, stats, lastStats)
		}
		_ = midStats
	}
}

// TestResumeFromCompleteModel: resuming from an already-converged model
// is a no-op fixpoint that returns the same model.
func TestResumeFromCompleteModel(t *testing.T) {
	src := chainProgram(10)
	en := mustEngine(t, src, Options{})
	full, stats, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := en.Resume(context.Background(), full, Limits{}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if !db.Equal(full, nil) {
		t.Fatal("resume from the least model must be a fixed point")
	}
}

// TestSolveMoreFromAccumulatesStats: chained incremental solves seeded
// with the prior cumulative stats report running totals.
func TestSolveMoreFromAccumulatesStats(t *testing.T) {
	src := shortestPathProg + "arc(a, b, 1).\n"
	en := mustEngine(t, src, Options{})
	db, stats, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	add := relation.NewDB(en.Schemas)
	add.AddFact("arc", []val.T{val.Symbol("b"), val.Symbol("c")}, val.Number(2))
	db2, stats2, err := en.SolveMoreFrom(context.Background(), db, add, stats)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Rounds <= stats.Rounds || stats2.Derived <= stats.Derived {
		t.Fatalf("SolveMoreFrom stats %+v must extend base %+v", stats2, stats)
	}
	if c, _ := costOf(t, db2, "s", "a", "c"); c != 3 {
		t.Fatalf("s(a,c) = %v, want 3", c)
	}
}
