package core

import (
	"strings"
	"testing"

	"repro/internal/parser"
)

// winMoveAgg layers aggregation over recursion-through-negation: the
// bottom component (win) needs the well-founded fallback, the top
// component counts winning positions monotonically — §6.3's iterated
// construction end to end.
const winMoveAgg = `
.cost wins/1 : countnat.
win(X)  :- move(X, Y), not win(Y).
wins(N) :- N = count : win(X).
`

func TestWFSFallbackWinMove(t *testing.T) {
	src := winMoveAgg + `
move(a, b).
move(b, c).
move(d, e).
move(c, d).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Without the fallback the program is rejected (negation on CDB).
	if _, err := New(prog, Options{}); err == nil {
		t.Fatal("recursion through negation must be rejected without WFSFallback")
	}
	en, err := New(prog, Options{WFSFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	db, stats, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Chain a->b->c->d->e: e lost, d won, c lost, b won, a lost.
	for winner, want := range map[string]bool{"a": false, "b": true, "c": false, "d": true, "e": false} {
		if hasTuple(db, "win", winner) != want {
			t.Errorf("win(%s) = %v, want %v", winner, !want, want)
		}
	}
	if n, ok := costOf(t, db, "wins"); !ok || n != 2 {
		t.Fatalf("wins = %v (%v), want 2", n, ok)
	}
	if stats.Components < 2 {
		t.Fatalf("expected at least two evaluated components, got %d", stats.Components)
	}
}

func TestWFSFallbackRejectsThreeValued(t *testing.T) {
	// A drawn cycle has an undefined win atom: §6.3's construction is
	// not defined, and the engine must say so rather than guess.
	src := winMoveAgg + `
move(a, b).
move(b, a).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(prog, Options{WFSFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = en.Solve(nil)
	if err == nil || !strings.Contains(err.Error(), "two-valued") {
		t.Fatalf("err = %v, want a two-valuedness complaint", err)
	}
}

func TestWFSFallbackUsesLowerCosts(t *testing.T) {
	// The fallback component reads a cost predicate computed below it
	// (shortest paths feed a negation-recursive game: you may move along
	// arcs of cost ≤ 2).
	src := shortestPathProg + `
.cost wins/1 : countnat.
cheap(X, Y) :- s(X, Y, C), C <= 2.
win(X)      :- cheap(X, Y), not win(Y).
wins(N)     :- N = count : win(X).
arc(a, b, 1).
arc(b, c, 1).
arc(c, d, 9).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(prog, Options{WFSFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	// cheap edges: a->b (1), a->c (2), b->c (1); d has none.
	// c: no cheap moves -> lost. b: move to c -> won. a: moves to b
	// (won) and c (lost) -> won via c.
	if !hasTuple(db, "win", "a") || !hasTuple(db, "win", "b") || hasTuple(db, "win", "c") {
		t.Fatalf("game over cheap arcs solved wrong:\n%s", db)
	}
	if n, _ := costOf(t, db, "wins"); n != 2 {
		t.Fatalf("wins = %v, want 2", n)
	}
}

func TestWFSFallbackRejectsDefaultLDB(t *testing.T) {
	src := `
.cost t/2 : boolor.
.default t/2 = 0.
t(W, C) :- input2(W, C).
p(X) :- wire(X), t(X, 1), not p(X).
.cost input2/2 : boolor.
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(prog, Options{WFSFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = en.Solve(nil)
	if err == nil || !strings.Contains(err.Error(), "default-value") {
		t.Fatalf("err = %v, want default-value rejection", err)
	}
}
