package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/val"
)

func arcDB(en *Engine, arcs [][3]any) *relation.DB {
	db := relation.NewDB(en.Schemas)
	for _, a := range arcs {
		db.Rel("arc/3").InsertJoin(
			[]val.T{val.Symbol(a[0].(string)), val.Symbol(a[1].(string))},
			val.Number(float64(a[2].(int))))
	}
	return db
}

// TestSolveMoreShortestPath: adding an arc that shortens routes updates
// the model exactly as a fresh solve would.
func TestSolveMoreShortestPath(t *testing.T) {
	en := mustEngine(t, shortestPathProg, Options{})
	base, _, err := en.Solve(arcDB(en, [][3]any{
		{"a", "b", 5}, {"b", "c", 5}, {"a", "c", 20},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := costOf(t, base, "s", "a", "c"); c != 10 {
		t.Fatalf("s(a,c) = %v, want 10", c)
	}
	inc, stats, err := en.SolveMore(base, arcDB(en, [][3]any{{"a", "c", 2}, {"c", "d", 1}}))
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := costOf(t, inc, "s", "a", "c"); c != 2 {
		t.Fatalf("incremental s(a,c) = %v, want 2", c)
	}
	if c, _ := costOf(t, inc, "s", "a", "d"); c != 3 {
		t.Fatalf("incremental s(a,d) = %v, want 3", c)
	}
	if stats.Derived == 0 {
		t.Fatal("expected incremental derivations")
	}
	// The previous model is untouched.
	if c, _ := costOf(t, base, "s", "a", "c"); c != 10 {
		t.Fatal("SolveMore must not mutate the previous model")
	}
	// Equivalence with a fresh solve over the union.
	full, _, err := en.Solve(arcDB(en, [][3]any{
		{"a", "b", 5}, {"b", "c", 5}, {"a", "c", 2}, {"c", "d", 1},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Equal(full, nil) {
		t.Fatalf("incremental and fresh solves disagree:\n%s\nvs\n%s", inc, full)
	}
}

// TestSolveMorePropertyEquivalence: on random graphs, solve(E1) then
// SolveMore(E2) equals solve(E1 ∪ E2).
func TestSolveMorePropertyEquivalence(t *testing.T) {
	en := mustEngine(t, shortestPathProg, Options{})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(5)
		all := map[[2]int]int{}
		edge := func() ([]val.T, val.T, bool) {
			u, v := r.Intn(n), r.Intn(n)
			if _, dup := all[[2]int{u, v}]; dup {
				return nil, val.T{}, false
			}
			w := 1 + r.Intn(9)
			all[[2]int{u, v}] = w
			return []val.T{val.Symbol(fmt.Sprintf("v%d", u)), val.Symbol(fmt.Sprintf("v%d", v))}, val.Number(float64(w)), true
		}
		first := relation.NewDB(en.Schemas)
		second := relation.NewDB(en.Schemas)
		union := relation.NewDB(en.Schemas)
		for i := 0; i < 2+r.Intn(8); i++ {
			if args, w, ok := edge(); ok {
				first.Rel("arc/3").InsertJoin(args, w)
				union.Rel("arc/3").InsertJoin(args, w)
			}
		}
		for i := 0; i < r.Intn(6); i++ {
			if args, w, ok := edge(); ok {
				second.Rel("arc/3").InsertJoin(args, w)
				union.Rel("arc/3").InsertJoin(args, w)
			}
		}
		base, _, err := en.Solve(first)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		inc, _, err := en.SolveMore(base, second)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		full, _, err := en.Solve(union)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		if !inc.Equal(full, nil) {
			t.Errorf("seed %d: incremental ≠ fresh\nincremental:\n%s\nfresh:\n%s", seed, inc, full)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSolveMoreCompanyControl: sum is monotone, so ownership networks
// support incremental share acquisitions.
func TestSolveMoreCompanyControl(t *testing.T) {
	en := mustEngine(t, companyControlProg, Options{})
	mk := func(shares [][3]any) *relation.DB {
		db := relation.NewDB(en.Schemas)
		for _, s := range shares {
			db.Rel("s/3").InsertJoin(
				[]val.T{val.Symbol(s[0].(string)), val.Symbol(s[1].(string))},
				val.Number(s[2].(float64)))
		}
		return db
	}
	base, _, err := en.Solve(mk([][3]any{{"a", "b", 0.4}, {"b", "c", 0.6}}))
	if err != nil {
		t.Fatal(err)
	}
	if hasTuple(base, "c", "a", "b") {
		t.Fatal("0.4 is not control")
	}
	// a buys 0.2 more of b (a separate intermediary records it, so the
	// cost FD stays intact: model it as a distinct holding company).
	inc, _, err := en.SolveMore(base, mk([][3]any{{"a2", "b", 0.2}, {"a", "a2", 0.9}}))
	if err != nil {
		t.Fatal(err)
	}
	if !hasTuple(inc, "c", "a", "b") {
		t.Fatal("a + a2 control b incrementally")
	}
	if !hasTuple(inc, "c", "a", "c") {
		t.Fatal("control of b unlocks c")
	}
}

// TestSolveMoreRejections: negation, pseudo-monotone aggregation and
// derived predicates are not insert-monotone.
func TestSolveMoreRejections(t *testing.T) {
	// Negated predicate.
	en := mustEngine(t, `p(X) :- q(X), not blocked(X).`, Options{})
	base, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	add := relation.NewDB(en.Schemas)
	add.Rel("blocked/1").InsertJoin([]val.T{val.Symbol("x")}, val.T{})
	if _, _, err := en.SolveMore(base, add); err == nil || !strings.Contains(err.Error(), "negation") {
		t.Fatalf("err = %v, want negation rejection", err)
	}
	// Pseudo-monotone aggregate input.
	en2 := mustEngine(t, circuitProg, Options{})
	base2, _, err := en2.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	add2 := relation.NewDB(en2.Schemas)
	add2.Rel("connect/2").InsertJoin([]val.T{val.Symbol("g"), val.Symbol("w")}, val.T{})
	if _, _, err := en2.SolveMore(base2, add2); err == nil || !strings.Contains(err.Error(), "non-monotone") {
		t.Fatalf("err = %v, want pseudo-monotone rejection", err)
	}
	// Derived predicate.
	en3 := mustEngine(t, shortestPathProg, Options{})
	base3, _, err := en3.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	add3 := relation.NewDB(en3.Schemas)
	add3.Rel("s/3").InsertJoin([]val.T{val.Symbol("a"), val.Symbol("b")}, val.Number(1))
	if _, _, err := en3.SolveMore(base3, add3); err == nil || !strings.Contains(err.Error(), "derived") {
		t.Fatalf("err = %v, want derived-predicate rejection", err)
	}
}

// TestSolveMorePartyGuests: count is monotone, so new acquaintances can
// arrive incrementally.
func TestSolveMorePartyGuests(t *testing.T) {
	en := mustEngine(t, partyProg, Options{})
	base, _, err := en.Solve(func() *relation.DB {
		db := relation.NewDB(en.Schemas)
		db.Rel("requires/2").InsertJoin([]val.T{val.Symbol("x")}, val.Number(1))
		db.Rel("requires/2").InsertJoin([]val.T{val.Symbol("y")}, val.Number(0))
		return db
	}())
	if err != nil {
		t.Fatal(err)
	}
	if hasTuple(base, "coming", "x") {
		t.Fatal("x knows nobody yet")
	}
	add := relation.NewDB(en.Schemas)
	add.Rel("knows/2").InsertJoin([]val.T{val.Symbol("x"), val.Symbol("y")}, val.T{})
	inc, _, err := en.SolveMore(base, add)
	if err != nil {
		t.Fatal(err)
	}
	if !hasTuple(inc, "coming", "x") {
		t.Fatal("meeting y gets x over the threshold")
	}
}
