package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ast"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/val"
)

// SolveMore continues a previously computed model with additional EDB
// facts, without recomputation from scratch. Monotonicity makes
// insert-only incremental maintenance sound: adding facts can only grow
// the least model (T_P is monotone in I for positive references and
// monotone aggregates), so the old model is a valid intermediate
// interpretation and the Δ-driven fixpoint resumes from it with the new
// rows as the seed.
//
// Soundness requires that every added predicate is used *monotonically*
// by the program; SolveMore rejects additions to predicates that appear
// negated, inside a non-monotone (pseudo-monotonic) aggregate, or that
// are defined by rules, and rejects programs using the well-founded
// fallback (negation is not insert-monotone). The previous model is not
// modified; the returned database extends a copy of it.
func (en *Engine) SolveMore(prev *relation.DB, added *relation.DB) (*relation.DB, Stats, error) {
	return en.SolveMoreContext(context.Background(), prev, added)
}

// SolveMoreContext is SolveMore with cooperative cancellation and the
// engine's resource limits; on a limit breach it returns the partially
// extended model alongside the *EngineError.
func (en *Engine) SolveMoreContext(ctx context.Context, prev *relation.DB, added *relation.DB) (*relation.DB, Stats, error) {
	return en.SolveMoreFrom(ctx, prev, added, Stats{})
}

// SolveMoreObserved is SolveMoreFrom with an additional per-call event
// sink observing just this solve (tracing a single commit, say) on top
// of the engine's configured Options.Sink. The extra sink is
// mutex-wrapped like the construction-time one, so plain sinks stay
// safe under the parallel scheduler. Engines do not support concurrent
// solves (the fixpoint mutates shared per-plan scratch), so swapping
// the sink for the duration of the call introduces no new constraint;
// callers already serialize solves externally.
func (en *Engine) SolveMoreObserved(ctx context.Context, prev *relation.DB, added *relation.DB, base Stats, extra obs.Sink) (*relation.DB, Stats, error) {
	if extra == nil {
		return en.SolveMoreFrom(ctx, prev, added, base)
	}
	saved := en.sink
	en.sink = obs.Multi(saved, obs.Locked(extra))
	defer func() { en.sink = saved }()
	return en.SolveMoreFrom(ctx, prev, added, base)
}

// SolveMoreFrom is SolveMoreContext with the returned Stats seeded from
// base: callers chaining incremental solves (or resuming from durable
// checkpoints, whose metadata records cumulative work) pass the stats
// of the model being extended, so rounds/firings/derivations report
// running totals rather than per-resume counts.
func (en *Engine) SolveMoreFrom(ctx context.Context, prev *relation.DB, added *relation.DB, base Stats) (_ *relation.DB, _ Stats, err error) {
	stats := base.Clone()
	en.ensureStats(&stats)
	lim := en.opts.Limits
	en.exe = resolveExecutor(lim)
	en.plan = resolvePlan(lim)
	en.resetPlans()
	if lim.MaxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.MaxDuration)
		defer cancel()
	}
	g := newGuard(ctx, lim, &stats)
	g.sink = en.sink
	if en.sink != nil {
		start := time.Now()
		en.sink.Event(obs.Event{Kind: obs.SolveBegin, Component: -1})
		defer func() {
			e := obs.Event{Kind: obs.SolveEnd, Component: -1, Round: stats.Rounds,
				Firings: stats.Firings, Derived: stats.Derived, Probes: stats.Probes,
				Nanos: time.Since(start).Nanoseconds()}
			if err != nil {
				e.Err = err.Error()
			}
			en.sink.Event(e)
		}()
	}
	for _, w := range en.wfsComp {
		if w {
			return nil, stats, fmt.Errorf("core: SolveMore is unsound with well-founded fallback components (negation is not insert-monotone)")
		}
	}
	addedPreds := map[ast.PredKey]bool{}
	for _, k := range added.Preds() {
		if added.Rel(k).Len() > 0 {
			addedPreds[k] = true
		}
	}
	if err := en.checkInsertMonotone(addedPreds); err != nil {
		return nil, stats, err
	}

	// Parallelism > 1 swaps in the intra-round parallel loop. Components
	// still run sequentially here — incremental seeds flow bottom-up
	// through `changed`, a cross-component dependency the DAG scheduler
	// does not model — and the merge phase replays in rule order, so the
	// result stays byte-identical to the sequential path (including the
	// classic local MaxFacts accounting, which is why no shared budget
	// is involved).
	var pc *parRun
	if par := effectiveParallelism(lim); par > 1 {
		pc = &parRun{
			sem: make(chan struct{}, par-1),
			store: func(k ast.PredKey, args []val.T, d *Derivation) {
				if d == nil {
					return
				}
				if en.trace == nil {
					en.trace = map[string]*Derivation{}
				}
				en.trace[traceKey(k, args)] = d
			},
			roundBoundary: func(g *guard, dbv *relation.DB) error { return g.roundBoundary(dbv) },
		}
	}

	db := prev.Clone()
	changed := newDeltaSet()
	for k := range addedPreds {
		rel := db.Rel(k)
		added.Rel(k).Each(func(row relation.Row) bool {
			if !rel.Info.HasCost {
				if rel.InsertJoin(row.Args, lattice.Elem{}) {
					changed.add(k, row)
				}
				return true
			}
			if insertEps(rel, row.Args, row.Cost, en.opts.Epsilon) {
				cur, _ := rel.GetOrDefault(row.Args)
				changed.add(k, cur)
			}
			return true
		})
	}

	// Re-run each component bottom-up, seeded with everything that has
	// changed so far; each component's own derivations join the seed for
	// the components above it.
	for ci, c := range en.comps {
		ps := en.plans[ci]
		if len(ps) == 0 {
			continue
		}
		// Restrict the seed to predicates this component's plans read.
		seed := newDeltaSet()
		touched := false
		for _, p := range ps {
			for k := range p.scanSteps {
				for _, row := range changed.rows[k] {
					seed.add(k, row)
					touched = true
				}
			}
			for _, st := range p.steps {
				if ag, ok := st.(*aggStep); ok {
					for _, sp := range ag.conj {
						for _, row := range changed.rows[sp.pred] {
							seed.add(sp.pred, row)
							touched = true
						}
					}
				}
			}
		}
		if !touched {
			continue
		}
		stats.Components++
		g.comp, g.rule = c.Preds, nil
		cs := &stats.Comps[ci]
		if en.sink != nil {
			en.sink.Event(obs.Event{Kind: obs.ComponentBegin, Component: ci,
				Preds: cs.Preds, WFS: cs.WFS, Admissible: cs.Admissible})
		}
		r0, f0, d0, p0 := stats.Rounds, stats.Firings, stats.Derived, stats.Probes
		t0 := time.Now()
		cerr := en.runComponent(g, func() error {
			record := func(k ast.PredKey, row relation.Row) {
				changed.add(k, row)
			}
			if pc != nil {
				return en.parSemiNaiveLoop(pc, g, db, ci, ps, &stats, seed, record)
			}
			return en.semiNaiveLoop(g, db, ci, ps, &stats, seed, record)
		})
		cs.Rounds += stats.Rounds - r0
		cs.Firings += stats.Firings - f0
		cs.Derived += stats.Derived - d0
		cs.Probes += stats.Probes - p0
		cs.Nanos += time.Since(t0).Nanoseconds()
		if en.sink != nil {
			e := obs.Event{Kind: obs.ComponentEnd, Component: ci,
				Preds: cs.Preds, WFS: cs.WFS, Admissible: cs.Admissible,
				Round: cs.Rounds, Firings: cs.Firings, Derived: cs.Derived,
				Probes: cs.Probes, Nanos: cs.Nanos}
			if cerr != nil {
				e.Err = cerr.Error()
			}
			en.sink.Event(e)
		}
		if cerr != nil {
			return db, stats, cerr
		}
		if err := g.checkpoint(db, true); err != nil {
			return db, stats, err
		}
	}
	return db, stats, nil
}

// checkInsertMonotone verifies that the program uses each added predicate
// only in insert-monotone positions.
func (en *Engine) checkInsertMonotone(added map[ast.PredKey]bool) error {
	// Predicates defined only by ground facts are effectively EDB; only
	// genuinely derived predicates (with non-fact rules) are rejected.
	derived := map[ast.PredKey]bool{}
	for _, r := range en.Prog.Rules {
		if !r.IsFact() {
			derived[r.Head.Key()] = true
		}
	}
	for k := range added {
		if derived[k] {
			return fmt.Errorf("core: SolveMore cannot add facts for derived predicate %s (its value is computed by rules)", k)
		}
	}
	for _, r := range en.Prog.Rules {
		for _, sg := range r.Body {
			switch sg := sg.(type) {
			case *ast.Lit:
				if sg.Neg && added[sg.Atom.Key()] {
					return fmt.Errorf("core: SolveMore cannot add facts for %s: rule %q reads it under negation", sg.Atom.Key(), r)
				}
			case *ast.Agg:
				f, ok := lattice.AggregateByName(sg.Func)
				if !ok {
					return fmt.Errorf("core: unknown aggregate %s", sg.Func)
				}
				for i := range sg.Conj {
					if added[sg.Conj[i].Key()] && !f.Monotone() {
						return fmt.Errorf("core: SolveMore cannot add facts for %s: rule %q aggregates it with the non-monotone %s (a grown multiset may shrink the result)",
							sg.Conj[i].Key(), r, sg.Func)
					}
				}
			}
		}
	}
	return nil
}
