package core

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/lattice"
	"repro/internal/val"
)

// aggregate evaluates an aggregate subgoal (Definition 2.4) under the
// current environment and invokes cont for each satisfying extension.
//
// Two execution modes:
//
//   - point mode: every grouping variable is already bound; the multiset
//     of the single group is computed (possibly empty — the total "="
//     form is defined on empty groups, the restricted "?=" form fails).
//   - grouped mode (restricted form only): unbound grouping variables are
//     enumerated by grouping the conjunction's matches, yielding one
//     extension per nonempty group — this is how
//     "s(X,Y,C) :- C ?= min D : path(X,Z,Y,D)" executes.
//
// onlyGroups, when non-nil, limits evaluation to the listed groups (the
// semi-naive Δ-driven restriction; see solveSemiNaive).
func (ev *evaluator) aggregate(s *aggStep, stepIdx int, onlyGroups map[string]exec.GroupRef, e *env, cont func() error) error {
	allBound := true
	for _, v := range s.groupVars {
		if !e.bound[v] {
			allBound = false
			break
		}
	}
	if !allBound && !s.restricted {
		return fmt.Errorf("core: total aggregate %s with unbound grouping variables", s.g)
	}

	// Δ-driven grouped evaluation: instead of enumerating every group,
	// bind the grouping variables to each changed group's values and
	// recurse in (indexed) point mode.
	if onlyGroups != nil && !allBound {
		for _, gk := range sortedKeys(onlyGroups) {
			ref := onlyGroups[gk]
			var saved []int
			ok := true
			for j, v := range s.groupVars {
				if e.bound[v] {
					if !val.Equal(e.vals[v], ref.At(j)) {
						ok = false
						break
					}
					continue
				}
				e.vals[v] = ref.At(j)
				e.bound[v] = true
				saved = append(saved, v)
			}
			if ok {
				if err := ev.aggregate(s, stepIdx, nil, e, cont); err != nil {
					unbind(e, saved)
					return err
				}
			}
			unbind(e, saved)
		}
		return nil
	}

	// Point mode under a Δ restriction: skip unchanged groups before any
	// enumeration work.
	if allBound && onlyGroups != nil {
		key := make([]val.T, len(s.groupVars))
		for j, v := range s.groupVars {
			key[j] = e.vals[v]
		}
		if _, ok := onlyGroups[val.KeyOf(key)]; !ok {
			return nil
		}
	}

	// Order the conjunction for the current binding pattern.
	boundSet := map[int]bool{}
	noteBound := func(v int) {
		if v >= 0 && e.bound[v] {
			boundSet[v] = true
		}
	}
	for _, sp := range s.conj {
		for _, v := range sp.argVar {
			noteBound(v)
		}
		noteBound(sp.costVar)
	}
	order, err := orderConj(s.conj, boundSet)
	if err != nil {
		return err
	}

	type group struct {
		keyVals  []val.T
		elems    []lattice.Elem
		supports []Support
	}
	groups := map[string]*group{}

	element := func() lattice.Elem {
		if s.msVar >= 0 {
			return e.vals[s.msVar]
		}
		// Implicit boolean cost: each match contributes one "true".
		return val.Boolean(true)
	}

	// In point mode every match lands in the same group, so the per-match
	// key computation is skipped entirely.
	var pointElems []lattice.Elem
	var pointSupports []Support
	collectSupports := func(dst []Support) []Support {
		for ci := range s.conj {
			dst = append(dst, supportOfAtom(&s.conj[ci], e, false))
		}
		return dst
	}
	keyScratch := make([]val.T, len(s.groupVars))
	var enumerate func(i int) error
	enumerate = func(i int) error {
		if i == len(order) {
			if allBound {
				pointElems = append(pointElems, element())
				if ev.trace {
					pointSupports = collectSupports(pointSupports)
				}
				return nil
			}
			for j, v := range s.groupVars {
				keyScratch[j] = e.vals[v]
			}
			gk := val.KeyOf(keyScratch)
			g := groups[gk]
			if g == nil {
				g = &group{keyVals: append([]val.T{}, keyScratch...)}
				groups[gk] = g
			}
			g.elems = append(g.elems, element())
			if ev.trace {
				g.supports = collectSupports(g.supports)
			}
			return nil
		}
		sp := &s.conj[order[i]]
		return ev.scan(sp, e, func(row relationRow) error {
			saved, ok := bindAtom(sp, row, e)
			if !ok {
				return nil
			}
			err := enumerate(i + 1)
			unbind(e, saved)
			return err
		})
	}
	if err := enumerate(0); err != nil {
		return err
	}

	emitGroup := func(g *group) error {
		if s.restricted && len(g.elems) == 0 {
			return nil
		}
		res, ok := s.f.Apply(g.elems)
		if !ok {
			// Undefined aggregate (e.g. avg of the empty multiset in the
			// total form): the ground instance is simply unsatisfied.
			return nil
		}
		var saved []int
		// Bind any unbound grouping variables (grouped mode).
		for j, v := range s.groupVars {
			if !e.bound[v] {
				e.vals[v] = g.keyVals[j]
				e.bound[v] = true
				saved = append(saved, v)
			}
		}
		if e.bound[s.result] {
			if !lattice.Eq(s.f.Range(), e.vals[s.result], res) {
				unbind(e, saved)
				return nil
			}
		} else {
			e.vals[s.result] = res
			e.bound[s.result] = true
			saved = append(saved, s.result)
		}
		if ev.trace {
			if e.aggSupports == nil {
				e.aggSupports = map[int][]Support{}
			}
			e.aggSupports[stepIdx] = g.supports
		}
		err := cont()
		if ev.trace {
			delete(e.aggSupports, stepIdx)
		}
		unbind(e, saved)
		return err
	}

	if allBound {
		return emitGroup(&group{elems: pointElems, supports: pointSupports})
	}
	// Grouped mode: deterministic group order.
	for _, gk := range sortedKeys(groups) {
		if err := emitGroup(groups[gk]); err != nil {
			return err
		}
	}
	return nil
}
