package core

import "testing"

// TestGroupStratifiedShortestPath: the §5.1 boundary — shortest path is
// group (modularly) stratified exactly on acyclic graphs.
func TestGroupStratifiedShortestPath(t *testing.T) {
	acyclic := shortestPathProg + `
arc(a, b, 1).
arc(b, c, 2).
arc(a, c, 5).
`
	en := mustEngine(t, acyclic, Options{})
	ok, err := en.GroupStratified(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("acyclic graphs are group stratified")
	}

	cyclic := shortestPathProg + `
arc(a, b, 1).
arc(b, b, 0).
`
	en = mustEngine(t, cyclic, Options{})
	ok, err = en.GroupStratified(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Example 3.1's cycle defeats modular stratification (§5.1)")
	}
}

// TestGroupStratifiedParty: Example 4.3 "would be modularly stratified
// only if the knows relation was acyclic (a very unlikely occurrence)".
func TestGroupStratifiedParty(t *testing.T) {
	acyclic := partyProg + `
requires(a, 0).
requires(b, 1).
knows(b, a).
`
	en := mustEngine(t, acyclic, Options{})
	ok, err := en.GroupStratified(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("acyclic knows is group stratified")
	}

	cyclic := partyProg + `
requires(a, 0).
requires(b, 1).
requires(c, 1).
knows(b, c).
knows(c, b).
knows(b, a).
`
	en = mustEngine(t, cyclic, Options{})
	ok, err = en.GroupStratified(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("the knows-cycle defeats modular stratification")
	}
}

// TestGroupStratifiedNonRecursiveAggregation: aggregate-stratified
// programs are trivially group stratified on every database.
func TestGroupStratifiedNonRecursiveAggregation(t *testing.T) {
	src := `
.cost record/3 : sumreal.
.cost c_avg/2 : sumreal.
record(j, math, 80).
record(m, math, 90).
c_avg(C, G) :- G ?= avg G2 : record(S, C, G2).
`
	en := mustEngine(t, src, Options{})
	ok, err := en.GroupStratified(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("non-recursive aggregation is always group stratified")
	}
}
