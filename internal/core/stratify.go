package core

import (
	"repro/internal/relation"
	"repro/internal/val"
)

// GroupStratified performs the *instance-level* stratification check of
// §5.1: a program is modularly stratified with respect to aggregation
// ("group stratified", Mumick et al.) on a given database when the
// ground dependency graph of the relevant rule instances has no cycle
// passing through an aggregate subgoal. Shortest path is group
// stratified exactly on acyclic graphs — the boundary at which the
// well-founded comparator stays two-valued and beyond which only the
// monotonic semantics answers.
//
// The check solves the program, then re-enumerates every rule instance
// against the final model, recording atom-level dependency edges (head →
// body atom; edges through aggregate subgoals are marked). It reports
// whether any strongly connected component of ground atoms contains a
// marked edge.
//
// Caveat: only the instances *relevant in the final model* are examined
// (bodies satisfiable there). Cyclic dependencies confined to atoms the
// least model never derives are invisible to this check, so it may
// report a database as stratified that the full ground-instantiation
// definition would not; it never errs in the other direction.
func (en *Engine) GroupStratified(edb *relation.DB) (bool, error) {
	db, _, err := en.Solve(edb)
	if err != nil {
		return false, err
	}

	type edge struct {
		to  int
		agg bool
	}
	ids := map[string]int{}
	adj := [][]edge{}
	idOf := func(k string) int {
		if i, ok := ids[k]; ok {
			return i
		}
		i := len(adj)
		ids[k] = i
		adj = append(adj, nil)
		return i
	}

	for ci := range en.plans {
		ev := &evaluator{db: db, trace: true}
		for _, p := range en.plans[ci] {
			p := p
			err := ev.run(p, func(e *env) error {
				args, _, err := headTuple(p, e)
				if err != nil {
					return err
				}
				head := idOf(traceKey(p.head.pred, args))
				for _, st := range p.steps {
					switch st := st.(type) {
					case *scanStep:
						sup := supportOfAtom(&st.atomSpec, e, false)
						adj[head] = append(adj[head], edge{
							to: idOf(traceKey(st.pred, sup.Args)),
						})
					case *negStep:
						sup := supportOfAtom(&st.atomSpec, e, true)
						adj[head] = append(adj[head], edge{
							to: idOf(traceKey(st.pred, sup.Args)),
						})
					}
				}
				for si, st := range p.steps {
					if _, ok := st.(*aggStep); !ok {
						continue
					}
					ag := p.steps[si].(*aggStep)
					for _, sup := range e.aggSupports[si] {
						// Strip the cost value the support carries: trace
						// keys identify tuples by non-cost arguments.
						args := sup.Args
						adj[head] = append(adj[head], edge{
							to:  idOf(traceKeyByName(sup.Pred, args, db)),
							agg: true,
						})
					}
					_ = ag
				}
				return nil
			})
			if err != nil {
				return false, err
			}
		}
	}

	// Tarjan SCC over the atom graph; a marked edge inside one component
	// is recursion through aggregation at the instance level.
	n := len(adj)
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int
	counter, compCount := 0, 0
	type frame struct{ v, ei int }
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{root, 0}}
		index[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei].to
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = compCount
					if w == v {
						break
					}
				}
				compCount++
			}
		}
	}
	for v := range adj {
		for _, e := range adj[v] {
			if e.agg && comp[v] == comp[e.to] {
				return false, nil
			}
		}
	}
	return true, nil
}

// traceKeyByName resolves a predicate name (as carried by a Support) to
// its key. Cost predicates store a trailing cost in the support's Cost
// field, so Args are already the non-cost arguments.
func traceKeyByName(pred string, args []val.T, db *relation.DB) string {
	for _, k := range db.Preds() {
		if k.Name() == pred {
			pi := db.Schemas.Info(k)
			if pi != nil && pi.NonCost() == len(args) {
				return traceKey(k, args)
			}
		}
	}
	// Unmaterialized predicate: synthesize a key from name and arity.
	return pred + "\x00" + val.KeyOf(args)
}
