package core

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/val"
)

// Support is one body element of a recorded derivation: a ground atom
// (recursable via Explain) or an annotation for builtins and aggregate
// subgoals.
type Support struct {
	// Pred is the predicate name; empty for non-atom annotations.
	Pred    string
	Args    []val.T
	Cost    lattice.Elem
	HasCost bool
	Neg     bool
	// Note renders builtins ("C = 1 + 2 [3]") and aggregate subgoals.
	Note string
}

// String renders the support in rule-language style.
func (s Support) String() string {
	if s.Pred == "" {
		return s.Note
	}
	parts := make([]string, 0, len(s.Args)+1)
	for _, a := range s.Args {
		parts = append(parts, a.String())
	}
	if s.HasCost {
		parts = append(parts, s.Cost.String())
	}
	atom := s.Pred
	if len(parts) > 0 {
		atom += "(" + strings.Join(parts, ", ") + ")"
	}
	if s.Neg {
		return "not " + atom
	}
	return atom
}

// Derivation records how a tuple last improved: the rule and the ground
// body that fired it.
type Derivation struct {
	Rule     string
	Supports []Support
}

// traceKey identifies a traced tuple.
func traceKey(k ast.PredKey, args []val.T) string {
	return string(k) + "\x00" + val.KeyOf(args)
}

// recordTrace captures the firing environment for the head tuple.
func (en *Engine) recordTrace(p *plan, e *env, args []val.T) {
	d := buildDerivation(p, e)
	if d == nil {
		return // facts are their own explanation
	}
	if en.trace == nil {
		en.trace = map[string]*Derivation{}
	}
	en.trace[traceKey(p.head.pred, args)] = d
}

// buildDerivation snapshots the firing environment as a Derivation (nil
// for fact rules, which are their own explanation). The snapshot owns
// all of its data — nothing aliases the (reused) env — so the parallel
// engine can capture it during speculative evaluation and store it only
// if the replay actually improves the tuple.
func buildDerivation(p *plan, e *env) *Derivation {
	if p.rule.IsFact() {
		return nil
	}
	d := &Derivation{Rule: p.rule.String()}
	for _, st := range p.steps {
		switch st := st.(type) {
		case *scanStep:
			d.Supports = append(d.Supports, supportOfAtom(&st.atomSpec, e, false))
		case *negStep:
			d.Supports = append(d.Supports, supportOfAtom(&st.atomSpec, e, true))
		case *builtinStep:
			d.Supports = append(d.Supports, Support{Note: renderBuiltin(st, e)})
		case *aggStep:
			d.Supports = append(d.Supports, Support{Note: renderAgg(st, e, p)})
		}
	}
	// Attach the contributing atoms of each aggregate group. The env's
	// aggSupports are keyed by the position the aggregate executed at
	// in the installed physical plan; the derivation itself renders in
	// canonical order, so planned and syntactic traces are identical.
	ph := p.ph()
	for i, st := range p.steps {
		if _, ok := st.(*aggStep); !ok {
			continue
		}
		if pi := ph.physOf[i]; pi >= 0 {
			d.Supports = append(d.Supports, e.aggSupports[pi]...)
		}
	}
	return d
}

func supportOfAtom(sp *atomSpec, e *env, neg bool) Support {
	s := Support{Pred: sp.pred.Name(), Neg: neg, HasCost: sp.pi.HasCost}
	for j, v := range sp.argVar {
		if v >= 0 {
			s.Args = append(s.Args, e.vals[v])
		} else {
			s.Args = append(s.Args, sp.argVal[j])
		}
	}
	if sp.pi.HasCost {
		if sp.costVar >= 0 {
			s.Cost = e.vals[sp.costVar]
		} else {
			s.Cost = sp.costVal
		}
	}
	return s
}

// replaceVars substitutes variable names by values, longest names first
// so that C1 is never corrupted by a C substitution.
func replaceVars(text string, pairs map[string]string) string {
	names := make([]string, 0, len(pairs))
	for n := range pairs {
		names = append(names, n)
	}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if len(names[j]) > len(names[i]) {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		text = strings.ReplaceAll(text, n, pairs[n])
	}
	return text
}

func renderBuiltin(st *builtinStep, e *env) string {
	pairs := map[string]string{}
	for _, v := range append(st.b.L.Vars(nil), st.b.R.Vars(nil)...) {
		if idx, ok := st.varIndex(v); ok && e.bound[idx] {
			pairs[string(v)] = e.vals[idx].String()
		}
	}
	return replaceVars(fmt.Sprintf("%s %s %s", st.b.L, st.b.Op, st.b.R), pairs)
}

func renderAgg(st *aggStep, e *env, p *plan) string {
	pairs := map[string]string{}
	note := func(idx int) {
		if idx >= 0 && idx < len(p.names) && idx < len(e.bound) && e.bound[idx] {
			pairs[string(p.names[idx])] = e.vals[idx].String()
		}
	}
	note(st.result)
	for _, v := range st.groupVars {
		note(v)
	}
	return replaceVars(st.g.String(), pairs)
}

// Explain returns how the tuple with the given non-cost arguments was
// last derived during the most recent Solve with tracing enabled.
func (en *Engine) Explain(pred string, args []val.T) (*Derivation, bool) {
	if en.trace == nil {
		return nil, false
	}
	for arity := len(args); arity <= len(args)+1; arity++ {
		k := ast.MakePredKey(pred, arity)
		if d, ok := en.trace[traceKey(k, args)]; ok {
			return d, true
		}
	}
	return nil, false
}

// ExplainTree renders a derivation tree to the given depth, following
// atom supports that have their own derivations.
func (en *Engine) ExplainTree(db *relation.DB, pred string, args []val.T, depth int) string {
	var b strings.Builder
	en.explainInto(&b, db, pred, args, depth, "")
	return b.String()
}

func (en *Engine) explainInto(b *strings.Builder, db *relation.DB, pred string, args []val.T, depth int, indent string) {
	d, ok := en.Explain(pred, args)
	head := Support{Pred: pred, Args: args}
	// Fetch the cost for display when available.
	for arity := len(args); arity <= len(args)+1; arity++ {
		k := ast.MakePredKey(pred, arity)
		if db.Has(k) {
			if row, found := db.Rel(k).Get(args); found {
				head.Cost, head.HasCost = row.Cost, row.HasCost
			}
		}
	}
	fmt.Fprintf(b, "%s%s", indent, head)
	if !ok {
		fmt.Fprintf(b, "  [fact]\n")
		return
	}
	fmt.Fprintf(b, "  [%s]\n", d.Rule)
	if depth <= 0 {
		return
	}
	for _, s := range d.Supports {
		if s.Pred == "" || s.Neg {
			fmt.Fprintf(b, "%s  %s\n", indent, s)
			continue
		}
		if _, derived := en.Explain(s.Pred, s.Args); derived {
			en.explainInto(b, db, s.Pred, s.Args, depth-1, indent+"  ")
		} else {
			fmt.Fprintf(b, "%s  %s  [fact]\n", indent, s)
		}
	}
}
