package core

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/val"
)

// The inner-loop steps of the tuple interpreter that run once per join
// probe must not allocate: negSatisfied and the default-value point
// lookup both instantiate the atom's arguments into a per-step buffer
// (atomSpec.abuf), not a fresh slice. These assertions pin that — a
// regression here multiplies straight into allocs/op on every solve.

// allocHarness compiles a program with a negated subgoal and a
// default-value scan and returns the evaluator, the interesting steps
// and an environment with the shared variable bound.
func allocHarness(t *testing.T) (ev *evaluator, neg *negStep, def *scanStep, e *env) {
	t.Helper()
	prog, err := parser.Parse(`
.cost t/2 : minreal.
.default t/2 = inf.
p(X) :- q(X), not r(X).
s(X) :- q(X), t(X, C), C < 5.
`)
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var nvars int
	for _, ps := range en.plans {
		for _, p := range ps {
			for _, st := range p.steps {
				switch s := st.(type) {
				case *negStep:
					neg, nvars = s, p.nvars
				case *scanStep:
					if s.pi.HasDefault {
						def, nvars = s, p.nvars
					}
				}
			}
		}
	}
	if neg == nil || def == nil {
		t.Fatal("harness program compiled without the expected steps")
	}
	db := relation.NewDB(en.Schemas)
	db.Rel(def.pred) // materialize so the first probe is steady state
	db.Rel(neg.pred).InsertJoin([]val.T{val.Symbol("a")}, lattice.Elem{})
	ev = &evaluator{db: db}
	e = newEnv(nvars)
	// Both plans order q first and use variable 0 for X; bind it as the
	// preceding scan would have.
	e.vals[0] = val.Symbol("a")
	e.bound[0] = true
	return ev, neg, def, e
}

func TestNegSatisfiedDoesNotAllocate(t *testing.T) {
	ev, neg, _, e := allocHarness(t)
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := ev.negSatisfied(&neg.atomSpec, e); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("negSatisfied allocates %.1f times per probe, want 0", avg)
	}
}

func TestDefaultValueScanDoesNotAllocate(t *testing.T) {
	ev, _, def, e := allocHarness(t)
	sink := func(relation.Row) error { return nil }
	// Once against the synthesized default row (relation miss) and once
	// against a stored row: neither path may allocate.
	for _, stored := range []bool{false, true} {
		if stored {
			ev.db.Rel(def.pred).InsertJoin([]val.T{val.Symbol("a")}, val.Number(2))
		}
		if avg := testing.AllocsPerRun(200, func() {
			if err := ev.scan(&def.atomSpec, e, sink); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Fatalf("default-value scan (stored=%v) allocates %.1f times per probe, want 0", stored, avg)
		}
	}
}
