package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ast"
	"repro/internal/deps"
	"repro/internal/faults"
	"repro/internal/lattice"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/val"
)

// This file implements the parallel fixpoint evaluator: the component
// scheduler (independent SCCs evaluated concurrently) and the
// intra-round rule parallelism (one round's rules evaluated
// speculatively against the frozen start-of-round interpretation, then
// merged in rule order). Both axes preserve the sequential engine's
// observable behavior exactly — models, fact ordering, traces and
// Stats totals are byte-identical to Parallelism == 1 — see
// docs/ARCHITECTURE.md for the determinism contract and its proof
// sketch.
//
// Soundness rests on the lattice semantics of the paper: T_P is
// monotone (Theorem 3.1), so joining independently computed component
// models is the lub of sound intermediate interpretations, and any
// tuple derived from a smaller interpretation remains derivable from a
// larger one.

// effectiveParallelism resolves the Limits.Parallelism knob: 0 means
// one worker per available CPU, anything below 1 means sequential.
func effectiveParallelism(lim Limits) int {
	switch {
	case lim.Parallelism == 0:
		return runtime.GOMAXPROCS(0)
	case lim.Parallelism < 1:
		return 1
	}
	return lim.Parallelism
}

// sharedBudget is the solve-global MaxFacts accounting used when
// components evaluate concurrently: a single atomic counter spent by
// every worker guard, so the budget bounds the whole solve no matter
// how derivations distribute over workers.
type sharedBudget struct {
	max int64
	n   atomic.Int64
}

// spend counts one derivation and fails the calling guard when the
// budget is exhausted, mirroring guard.derived's local accounting.
func (b *sharedBudget) spend(g *guard) error {
	if b.n.Add(1) <= b.max {
		return nil
	}
	e := g.fail(ErrBudgetExceeded, nil)
	e.Limit = b.max
	if g.sink != nil {
		g.sink.Event(obs.Event{Kind: obs.BudgetBreach, Component: -1,
			Round: g.stats.Rounds, Derived: g.stats.Derived, Err: e.Error()})
	}
	return e
}

// parRun carries the per-solve parallel machinery into the fixpoint
// loops: the rule-task worker pool, the trace store (worker-local under
// the scheduler, the engine map for incremental solves) and the
// round-boundary hook (consistent-cut checkpoints under the scheduler,
// the plain guard boundary otherwise).
type parRun struct {
	sem           chan struct{}
	store         func(ast.PredKey, []val.T, *Derivation)
	roundBoundary func(*guard, *relation.DB) error
}

// runTasks executes n rule tasks, spilling onto the bounded worker pool
// when slots are free and running inline otherwise, returning once all
// have finished. The inline fallback keeps the pool deadlock-free: the
// calling goroutine always makes progress on its own work even when
// every slot is held by another component's round.
func (pc *parRun) runTasks(n int, run func(int)) {
	if n == 1 {
		run(0)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case pc.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-pc.sem }()
				run(i)
			}(i)
		default:
			run(i)
		}
	}
	wg.Wait()
}

// bufEntry is one speculative head emission: the ground tuple, its cost
// and (when tracing) the prebuilt derivation, captured during Phase A
// and inserted during the sequential merge.
type bufEntry struct {
	args  []val.T
	cost  lattice.Elem
	deriv *Derivation
}

// ruleTask is the result of one rule's speculative evaluation pass.
type ruleTask struct {
	// ran marks tasks that executed Phase A (self-reading rules skip it
	// and always evaluate live during the merge).
	ran bool
	// active mirrors the sequential Δ-skip: false when no pass of this
	// rule was driven by the round's Δ set.
	active  bool
	firings int64
	probes  int64
	buf     []bufEntry
	err     error
}

// taskRecover converts a panic inside a rule task into the same
// structured ErrInternal the component boundary would produce. It must
// live on the task goroutine: the component's recover cannot see it.
func taskRecover(g *guard, p *plan, t *ruleTask) {
	if r := recover(); r != nil {
		e := g.fail(ErrInternal, fmt.Errorf("panic: %v", r))
		e.Rule = p.text
		e.Stack = debug.Stack()
		t.err = e
	}
}

// taskCheck mirrors guard.check without touching the guard's counters:
// Phase A tasks run concurrently and must not write shared state.
func taskCheck(g *guard, p *plan) func() error {
	polls := 0
	return func() error {
		polls++
		if polls%g.checkEvery != 0 {
			return nil
		}
		select {
		case <-g.ctx.Done():
			e := g.fail(ErrCanceled, g.ctx.Err())
			e.Rule = p.text
			return e
		default:
			return nil
		}
	}
}

// bufferEmit captures head tuples (and, when tracing, their
// derivations) instead of inserting them. headTuple allocates fresh
// argument slices and buildDerivation owns all its data, so nothing in
// the buffer aliases the reused environment.
func (en *Engine) bufferEmit(p *plan, t *ruleTask) func(*env) error {
	trace := en.opts.Trace
	return func(e *env) error {
		args, cost, err := headTuple(p, e)
		if err != nil {
			return err
		}
		var d *Derivation
		if trace {
			d = buildDerivation(p, e)
		}
		t.buf = append(t.buf, bufEntry{args: args, cost: cost, deriv: d})
		return nil
	}
}

// bufferFullPass speculatively evaluates one rule over the whole
// interpretation (round 0 of the semi-naive strategy; every naive
// round).
func (en *Engine) bufferFullPass(g *guard, p *plan, db *relation.DB, t *ruleTask) {
	defer taskRecover(g, p, t)
	t.ran, t.active = true, true
	ev := newRunner(en.exe, db, 0, nil, nil, en.opts.Trace, taskCheck(g, p), en.prof)
	err := ev.run(p, en.bufferEmit(p, t))
	t.firings, t.probes = ev.fir(), ev.pr()
	t.err = err
}

// bufferDeltaPass speculatively runs one rule's Δ-driven passes.
func (en *Engine) bufferDeltaPass(g *guard, p *plan, db *relation.DB, prev *deltaSet, changedPreds []ast.PredKey, t *ruleTask) {
	defer taskRecover(g, p, t)
	t.ran = true
	firings, probes, active, err := en.deltaPasses(p, db, prev, changedPreds, taskCheck(g, p), en.bufferEmit(p, t))
	t.firings, t.probes, t.active = firings, probes, active
	t.err = err
}

// deltaPasses replicates one rule's Δ-round pass structure from
// semiNaiveLoop — the aggregate-driven re-run (group-restricted where
// possible) followed by one restricted pass per changed scanned
// predicate — parameterized on the emit target so the parallel engine
// can buffer speculatively and replay or re-run live with identical
// enumeration. Any change to the sequential pass structure must be
// mirrored here (and vice versa); the determinism tests pin the two
// against each other on every example program.
func (en *Engine) deltaPasses(p *plan, db *relation.DB, prev *deltaSet, changedPreds []ast.PredKey, check func() error, emit func(*env) error) (firings, probes int64, active bool, err error) {
	runAgg := aggPredChanged(p, prev)
	ph := p.ph()
	hasScan := false
	for _, k := range changedPreds {
		if len(ph.scanSteps[k]) > 0 {
			hasScan = true
			break
		}
	}
	if !runAgg && !hasScan {
		return 0, 0, false, nil
	}
	ranFull := false
	if runAgg {
		groups, restricted := changedGroups(ph.steps, prev)
		if en.opts.DisableGroupDelta {
			groups, restricted = nil, false
		}
		ev := newRunner(en.exe, db, 0, nil, groups, en.opts.Trace, check, en.prof)
		err = ev.run(p, emit)
		firings += ev.fir()
		probes += ev.pr()
		ranFull = !restricted
	}
	if err == nil && !ranFull && hasScan {
	scans:
		for _, k := range changedPreds {
			rows := prev.rows[k]
			for _, si := range ph.scanSteps[k] {
				ev := newRunner(en.exe, db, si, rows, nil, en.opts.Trace, check, en.prof)
				err = ev.run(p, emit)
				firings += ev.fir()
				probes += ev.pr()
				if err != nil {
					break scans
				}
			}
		}
	}
	return firings, probes, true, err
}

// ruleTouched reports whether the Δ set drives any pass of the rule —
// the sequential loop's skip condition, needed for rules whose Phase A
// was skipped.
func ruleTouched(p *plan, prev *deltaSet, changedPreds []ast.PredKey) bool {
	if aggPredChanged(p, prev) {
		return true
	}
	ph := p.ph()
	for _, k := range changedPreds {
		if len(ph.scanSteps[k]) > 0 {
			return true
		}
	}
	return false
}

// readsImproved reports whether the rule reads any predicate improved
// earlier in the merge — the conflict condition invalidating its
// speculative buffer.
func readsImproved(p *plan, improved map[ast.PredKey]bool) bool {
	for k := range improved {
		if p.reads[k] {
			return true
		}
	}
	return false
}

// materializeRels pre-creates every relation the component's plans read
// or write, so Phase A tasks never race on the database's lazy relation
// construction.
func materializeRels(db *relation.DB, ps []*plan) {
	for _, p := range ps {
		db.Rel(p.head.pred)
		for k := range p.reads {
			db.Rel(k)
		}
	}
}

// parSemiNaiveLoop is semiNaiveLoop with intra-round rule parallelism.
//
// Each round splits in two phases. Phase A evaluates every
// non-self-reading rule concurrently against the frozen start-of-round
// interpretation (no insertions happen, so the database is immutable;
// lazy index builds are safe under the relation package's
// frozen-snapshot contract), buffering head emissions. Phase B merges
// in rule-index order on one goroutine: a rule whose reads intersect
// the head predicates already improved this round — or that reads its
// own head (its nested scans observe its own inserts under sequential
// evaluation) — discards its buffer and re-runs live through exactly
// the sequential passes; every other rule replays its buffer through
// the sequential insert path. Either way the per-round insert order,
// Δ-set contents, trace stores and guard observations are identical to
// the sequential loop, which is what makes models, traces and stats
// byte-identical (docs/ARCHITECTURE.md documents the argument).
func (en *Engine) parSemiNaiveLoop(pc *parRun, g *guard, db *relation.DB, ci int, ps []*plan, stats *Stats, init *deltaSet, record func(ast.PredKey, relation.Row)) error {
	materializeRels(db, ps)
	// Cost-plan the component against the private view — its content is
	// identical to the sequential engine's database at this point, so
	// the planner's estimates, CSE buffers and re-plan decisions are
	// identical too (the determinism contract; see plancost.go).
	cp := en.planComponent(db, ps, init == nil)
	delta := newDeltaSet()
	// Phase B is single-goroutine, so insert and replay share one key
	// scratch, exactly like the sequential loop's insert closure. (Phase
	// A only buffers through bufferEmit, which allocates fresh args.)
	var kbuf []byte
	insert := func(p *plan, e *env) error {
		args, cost, err := headTupleInto(p, e)
		if err != nil {
			return err
		}
		rel := db.Rel(p.head.pred)
		kbuf = val.AppendKeyOf(kbuf[:0], args)
		if insertEpsKey(rel, kbuf, args, cost, en.opts.Epsilon) {
			stats.Derived++
			row, ik, _ := rel.LookupKey(kbuf)
			delta.addInterned(p.head.pred, row, ik)
			if record != nil {
				record(p.head.pred, row)
			}
			if en.opts.Trace {
				pc.store(p.head.pred, row.Args, buildDerivation(p, e))
			}
			if err := g.derived(p.head.pred, row.Args, row.Cost, rel.Info.HasCost, true); err != nil {
				return err
			}
		}
		return nil
	}
	// replay pushes one rule's speculative buffer through the sequential
	// insert path, then surfaces the task's terminal error (a canceled
	// poll, a head-cost failure, or a contained panic) exactly where the
	// sequential evaluation would have stopped.
	replay := func(p *plan, t *ruleTask) error {
		rel := db.Rel(p.head.pred)
		for i := range t.buf {
			be := &t.buf[i]
			kbuf = val.AppendKeyOf(kbuf[:0], be.args)
			if !insertEpsKey(rel, kbuf, be.args, be.cost, en.opts.Epsilon) {
				continue
			}
			stats.Derived++
			row, ik, _ := rel.LookupKey(kbuf)
			delta.addInterned(p.head.pred, row, ik)
			if record != nil {
				record(p.head.pred, row)
			}
			if be.deriv != nil {
				pc.store(p.head.pred, be.args, be.deriv)
			}
			if err := g.derived(p.head.pred, be.args, row.Cost, rel.Info.HasCost, true); err != nil {
				return err
			}
		}
		return t.err
	}

	if init == nil {
		// Round 0: fire everything.
		if err := g.poll(); err != nil {
			return err
		}
		stats.Rounds++
		roundF, roundD, roundP := stats.Firings, stats.Derived, stats.Probes
		tasks := make([]ruleTask, len(ps))
		pc.runTasks(len(ps), func(i int) {
			p := ps[i]
			if p.reads[p.head.pred] {
				return // self-reading: must observe its own inserts
			}
			en.bufferFullPass(g, p, db, &tasks[i])
		})
		improved := map[ast.PredKey]bool{}
		for i, p := range ps {
			t := &tasks[i]
			g.rule = p.rule
			f0, d0, p0 := stats.Firings, stats.Derived, stats.Probes
			t0 := time.Now()
			var perr error
			if t.ran && (t.err != nil || !readsImproved(p, improved)) {
				stats.Firings += t.firings
				stats.Probes += t.probes
				perr = replay(p, t)
			} else {
				ev := newRunner(en.exe, db, 0, nil, nil, en.opts.Trace, g.check, en.prof)
				perr = ev.run(p, func(e *env) error { return insert(p, e) })
				stats.Firings += ev.fir()
				stats.Probes += ev.pr()
			}
			if stats.Derived > d0 {
				improved[p.head.pred] = true
			}
			en.noteRule(&stats.Rules[p.idx], ci, 0,
				stats.Firings-f0, stats.Derived-d0, stats.Probes-p0, time.Since(t0).Nanoseconds())
			if perr != nil {
				return perr
			}
		}
		if en.sink != nil {
			en.sink.Event(obs.Event{Kind: obs.RoundEnd, Component: ci, Round: 0,
				Firings: stats.Firings - roundF, Derived: stats.Derived - roundD, Probes: stats.Probes - roundP})
		}
		if err := pc.roundBoundary(g, db); err != nil {
			return err
		}
		cp.maybeReplan()
	} else {
		delta = init
	}

	// Rounds ping-pong between two Δ sets exactly like the sequential
	// loop; the reset happens after phase B, when no worker references
	// the previous round's set. The caller-owned init is never recycled.
	var spare *deltaSet
	for round := 1; !delta.empty(); round++ {
		if round >= en.opts.MaxRounds {
			return g.maxRounds(en.opts.MaxRounds)
		}
		if err := g.poll(); err != nil {
			return err
		}
		stats.Rounds++
		roundF, roundD, roundP := stats.Firings, stats.Derived, stats.Probes
		prev := delta
		if spare != nil {
			delta, spare = spare, nil
		} else {
			delta = newDeltaSet()
		}
		changedPreds := prev.preds()
		tasks := make([]ruleTask, len(ps))
		pc.runTasks(len(ps), func(i int) {
			p := ps[i]
			if p.reads[p.head.pred] {
				return
			}
			en.bufferDeltaPass(g, p, db, prev, changedPreds, &tasks[i])
		})
		improved := map[ast.PredKey]bool{}
		for i, p := range ps {
			t := &tasks[i]
			if t.ran {
				if t.err == nil && !t.active {
					continue
				}
			} else if !ruleTouched(p, prev, changedPreds) {
				continue
			}
			g.rule = p.rule
			f0, d0, p0 := stats.Firings, stats.Derived, stats.Probes
			t0 := time.Now()
			var perr error
			if t.ran && (t.err != nil || !readsImproved(p, improved)) {
				stats.Firings += t.firings
				stats.Probes += t.probes
				perr = replay(p, t)
			} else {
				firings, probes, _, rerr := en.deltaPasses(p, db, prev, changedPreds, g.check,
					func(e *env) error { return insert(p, e) })
				stats.Firings += firings
				stats.Probes += probes
				perr = rerr
			}
			if stats.Derived > d0 {
				improved[p.head.pred] = true
			}
			en.noteRule(&stats.Rules[p.idx], ci, round,
				stats.Firings-f0, stats.Derived-d0, stats.Probes-p0, time.Since(t0).Nanoseconds())
			if perr != nil {
				return perr
			}
		}
		if en.sink != nil {
			en.sink.Event(obs.Event{Kind: obs.RoundEnd, Component: ci, Round: round,
				Firings: stats.Firings - roundF, Derived: stats.Derived - roundD, Probes: stats.Probes - roundP})
		}
		if err := pc.roundBoundary(g, db); err != nil {
			return err
		}
		cp.maybeReplan()
		if prev != init {
			prev.reset()
			spare = prev
		}
	}
	return nil
}

// parNaive is solveNaive with intra-round rule parallelism. The naive
// strategy is a pure Jacobi iteration — every rule reads the previous
// round's interpretation and writes a fresh one — so speculative
// buffers are always conflict-free and replay alone reproduces the
// sequential behavior.
func (en *Engine) parNaive(pc *parRun, g *guard, db *relation.DB, ci int, c *deps.Component, ps []*plan, stats *Stats) error {
	materializeRels(db, ps)
	seed := map[ast.PredKey]*relation.Relation{}
	for _, k := range c.Preds {
		if db.Has(k) && db.Rel(k).Len() > 0 {
			seed[k] = db.Rel(k).Clone()
		}
	}
	for round := 0; ; round++ {
		if round >= en.opts.MaxRounds {
			return g.maxRounds(en.opts.MaxRounds)
		}
		if err := g.poll(); err != nil {
			return err
		}
		stats.Rounds++
		roundDerived := stats.Derived
		out := relation.NewDB(db.Schemas)
		tasks := make([]ruleTask, len(ps))
		pc.runTasks(len(ps), func(i int) {
			en.bufferFullPass(g, ps[i], db, &tasks[i])
		})
		var roundFirings, roundProbes int64
		for i, p := range ps {
			t := &tasks[i]
			g.rule = p.rule
			d0 := stats.Derived
			t0 := time.Now()
			var perr error
			rel := out.Rel(p.head.pred)
			for bi := range t.buf {
				be := &t.buf[bi]
				if en.opts.StrictConflicts {
					if perr = rel.InsertStrict(be.args, be.cost); perr != nil {
						break
					}
					continue
				}
				if !rel.InsertJoin(be.args, be.cost) {
					continue
				}
				stats.Derived++
				if be.deriv != nil {
					pc.store(p.head.pred, be.args, be.deriv)
				}
				// Improvement relative to the previous round's
				// interpretation, as in solveNaive.
				cur, _ := rel.Get(be.args)
				old, had := db.Rel(p.head.pred).Get(be.args)
				imp := !had || (rel.Info.HasCost && !lattice.Eq(rel.Info.L, old.Cost, cur.Cost))
				if perr = g.derived(p.head.pred, be.args, cur.Cost, rel.Info.HasCost, imp); perr != nil {
					break
				}
			}
			if perr == nil {
				perr = t.err
			}
			roundFirings += t.firings
			roundProbes += t.probes
			en.noteRule(&stats.Rules[p.idx], ci, round,
				t.firings, stats.Derived-d0, t.probes, time.Since(t0).Nanoseconds())
			if perr != nil {
				return perr
			}
		}
		stats.Firings += roundFirings
		stats.Probes += roundProbes
		if en.sink != nil {
			en.sink.Event(obs.Event{Kind: obs.RoundEnd, Component: ci, Round: round,
				Firings: roundFirings, Derived: stats.Derived - roundDerived, Probes: roundProbes})
		}
		for k, r := range seed {
			out.Rel(k).Join(r)
		}
		same := true
		for _, k := range c.Preds {
			if !relEqualEps(out.Rel(k), db.Rel(k), en.opts.Epsilon) {
				same = false
				break
			}
		}
		for _, k := range c.Preds {
			db.SetRel(k, out.Rel(k))
		}
		if same {
			return nil
		}
		if err := pc.roundBoundary(g, db); err != nil {
			return err
		}
	}
}

// sched runs the component DAG on a bounded worker pool: a component is
// dispatched once every component it depends on has completed, and
// completed component relations are installed into the global database
// under the scheduler lock (the lattice join of sound intermediate
// models — Theorem 3.1 makes the merge order irrelevant).
type sched struct {
	en     *Engine
	ctx    context.Context
	cancel context.CancelFunc
	db     *relation.DB
	lim    Limits
	budget *sharedBudget
	sem    chan struct{}

	mu         sync.Mutex
	stats      *Stats
	sg         *guard // scheduler guard: global checkpoints
	indeg      []int
	dependents [][]int
	readyCh    chan int
	pending    int
	inflight   int
	active     int
	firstErr   error
	closed     bool
}

// fixpointParallel is the Parallelism > 1 form of fixpoint: it runs the
// component DAG concurrently, each component on a private view of the
// database, and joins results at component boundaries.
func (en *Engine) fixpointParallel(ctx context.Context, db *relation.DB, lim Limits, base Stats, par int) (_ *relation.DB, _ Stats, err error) {
	if lim.MaxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.MaxDuration)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	en.trace = nil
	stats := base.Clone()
	en.ensureStats(&stats)
	sg := newGuard(ctx, lim, &stats)
	sg.sink = en.sink
	if en.sink != nil {
		start := time.Now()
		en.sink.Event(obs.Event{Kind: obs.SolveBegin, Component: -1, Parallelism: par})
		defer func() {
			e := obs.Event{Kind: obs.SolveEnd, Component: -1, Round: stats.Rounds,
				Firings: stats.Firings, Derived: stats.Derived, Probes: stats.Probes,
				Nanos: time.Since(start).Nanoseconds(), Parallelism: par}
			if err != nil {
				e.Err = err.Error()
			}
			en.sink.Event(e)
		}()
	}
	if cerr := sg.checkpoint(db, true); cerr != nil {
		return db, stats, cerr
	}

	s := &sched{en: en, ctx: ctx, cancel: cancel, db: db, lim: lim,
		stats: &stats, sg: sg,
		sem:        make(chan struct{}, par-1),
		indeg:      make([]int, len(en.comps)),
		dependents: make([][]int, len(en.comps)),
		readyCh:    make(chan int, len(en.comps)),
		pending:    len(en.comps),
	}
	if lim.MaxFacts > 0 {
		s.budget = &sharedBudget{max: lim.MaxFacts}
	}
	evaluable := 0
	for ci := range en.comps {
		for _, d := range en.compDeps[ci] {
			s.indeg[ci]++
			s.dependents[d] = append(s.dependents[d], ci)
		}
		if en.wfsComp[ci] || len(en.plans[ci]) > 0 {
			evaluable++
		}
	}
	s.mu.Lock()
	for ci := range en.comps {
		if s.indeg[ci] == 0 {
			s.dispatchLocked(ci)
		}
	}
	s.maybeCloseLocked()
	s.mu.Unlock()

	nw := par
	if evaluable < nw {
		nw = evaluable
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range s.readyCh {
				s.runComp(ci)
			}
		}()
	}
	wg.Wait()
	return db, stats, s.firstErr
}

// dispatchLocked hands a ready component to the worker pool. EDB-only
// components carry no work: they complete on the spot (without events
// or a Components count, matching the sequential skip) so dependents
// cascade immediately. After a failure nothing new starts; the
// component is settled so the queue can drain.
func (s *sched) dispatchLocked(ci int) {
	if s.firstErr == nil && (s.en.wfsComp[ci] || len(s.en.plans[ci]) > 0) {
		s.readyCh <- ci
		return
	}
	s.finishLocked(ci)
}

// finishLocked settles one component, cascades its dependents and
// closes the queue when nothing remains.
func (s *sched) finishLocked(ci int) {
	s.pending--
	for _, d := range s.dependents[ci] {
		s.indeg[d]--
		if s.indeg[d] == 0 {
			s.dispatchLocked(d)
		}
	}
	s.maybeCloseLocked()
}

func (s *sched) maybeCloseLocked() {
	if s.closed {
		return
	}
	if s.pending == 0 || (s.firstErr != nil && s.inflight == 0) {
		close(s.readyCh)
		s.closed = true
	}
}

// mergeStats folds one component worker's local stats into the global
// stats: scalar totals, the per-rule breakdown (only the component's
// own rules are nonzero) and the component's breakdown entry.
func mergeStats(dst, src *Stats, ci int) {
	dst.Rounds += src.Rounds
	dst.Firings += src.Firings
	dst.Derived += src.Derived
	dst.Probes += src.Probes
	for i := range src.Rules {
		d, r := &dst.Rules[i], &src.Rules[i]
		d.Rounds += r.Rounds
		d.Firings += r.Firings
		d.Derived += r.Derived
		d.Probes += r.Probes
		d.Nanos += r.Nanos
	}
	cs := &dst.Comps[ci]
	cs.Rounds += src.Rounds
	cs.Firings += src.Firings
	cs.Derived += src.Derived
	cs.Probes += src.Probes
}

// runComp evaluates one component on a worker goroutine: assemble a
// private database view (lower-defined predicates shared as frozen
// relations, own predicates cloned so the global database keeps the
// pre-state for consistent checkpoint cuts), run the fixpoint with
// worker-local stats, then install and merge under the scheduler lock.
func (s *sched) runComp(ci int) {
	en := s.en
	s.mu.Lock()
	if s.firstErr != nil {
		s.finishLocked(ci)
		s.mu.Unlock()
		return
	}
	s.inflight++
	s.active++
	c := en.comps[ci]
	pv := relation.NewDB(en.Schemas)
	for _, k := range en.compLDB[ci] {
		pv.SetRel(k, s.db.Rel(k))
	}
	for _, k := range c.Preds {
		pv.SetRel(k, s.db.Rel(k).Clone())
	}
	cs := &s.stats.Comps[ci]
	if en.sink != nil {
		en.sink.Event(obs.Event{Kind: obs.ComponentBegin, Component: ci,
			Preds: cs.Preds, WFS: cs.WFS, Admissible: cs.Admissible, Workers: s.active})
	}
	s.mu.Unlock()

	var ls Stats
	en.ensureStats(&ls)
	wlim := s.lim
	wlim.MaxFacts = 0 // budget is solve-global, not per worker
	wlim.Checkpoint = nil
	g := newGuard(s.ctx, wlim, &ls)
	g.budget = s.budget
	g.sink = en.sink
	g.comp = c.Preds
	var trace map[string]*Derivation
	pc := &parRun{
		sem: s.sem,
		store: func(k ast.PredKey, args []val.T, d *Derivation) {
			if d == nil {
				return
			}
			if trace == nil {
				trace = map[string]*Derivation{}
			}
			trace[traceKey(k, args)] = d
		},
		roundBoundary: func(g *guard, dbv *relation.DB) error {
			return s.parRoundBoundary(g, dbv, ci, &ls)
		},
	}
	t0 := time.Now()
	cerr := en.runComponent(g, func() error {
		if err := faults.Check(faults.CoreParallelWorker); err != nil {
			return g.fail(ErrInternal, err)
		}
		if en.wfsComp[ci] {
			return en.solveWFSComponent(g, pv, ci, &ls)
		}
		if en.opts.Strategy == Naive {
			return en.parNaive(pc, g, pv, ci, c, en.plans[ci], &ls)
		}
		return en.parSemiNaiveLoop(pc, g, pv, ci, en.plans[ci], &ls, nil, nil)
	})
	nanos := time.Since(t0).Nanoseconds()

	s.mu.Lock()
	s.inflight--
	// The first failure keeps its partial component — Solve returns the
	// partial interpretation so no work is discarded — while components
	// failing after cancellation are dropped.
	if cerr == nil || s.firstErr == nil {
		for _, k := range c.Preds {
			s.db.SetRel(k, pv.Rel(k))
		}
		mergeStats(s.stats, &ls, ci)
		s.stats.Components++
		if trace != nil && en.trace == nil {
			en.trace = map[string]*Derivation{}
		}
		for key, d := range trace {
			en.trace[key] = d
		}
	}
	cs = &s.stats.Comps[ci]
	cs.Nanos += nanos
	if en.sink != nil {
		e := obs.Event{Kind: obs.ComponentEnd, Component: ci,
			Preds: cs.Preds, WFS: cs.WFS, Admissible: cs.Admissible,
			Round: cs.Rounds, Firings: cs.Firings, Derived: cs.Derived,
			Probes: cs.Probes, Nanos: cs.Nanos, Workers: s.active}
		if cerr != nil {
			e.Err = cerr.Error()
		}
		en.sink.Event(e)
	}
	s.active--
	if cerr != nil {
		if s.firstErr == nil {
			s.firstErr = cerr
			s.cancel()
		}
	} else if s.firstErr == nil {
		// Component boundary: the global database is consistent again —
		// the strongest checkpoint boundary, always durable.
		if ckerr := s.sg.checkpoint(s.db, true); ckerr != nil {
			s.firstErr = ckerr
			s.cancel()
		}
	}
	s.finishLocked(ci)
	s.mu.Unlock()
}

// parRoundBoundary is the scheduler's round-boundary hook: the fault
// point fires as in the sequential engine, and periodic checkpoints
// snapshot a consistent cut — the global database (completed
// components) overlaid with this component's private progress. Every
// such cut lies between the EDB and the least model, so it is a sound
// restart point even though concurrent siblings' in-flight rounds are
// not included.
func (s *sched) parRoundBoundary(g *guard, pv *relation.DB, ci int, ls *Stats) error {
	if err := faults.Check(faults.CoreRound); err != nil {
		return g.fail(ErrInternal, err)
	}
	if s.lim.Checkpoint == nil || s.lim.CheckpointEvery <= 0 {
		return nil
	}
	g.sinceCkpt++
	if g.sinceCkpt < s.lim.CheckpointEvery {
		return nil
	}
	g.sinceCkpt = 0
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.firstErr != nil {
		return nil // evaluation is stopping; skip the checkpoint
	}
	view := relation.NewDB(s.db.Schemas)
	for _, k := range s.db.Preds() {
		view.SetRel(k, s.db.Rel(k))
	}
	for _, k := range s.en.comps[ci].Preds {
		view.SetRel(k, pv.Rel(k))
	}
	merged := s.stats.Clone()
	mergeStats(&merged, ls, ci)
	if err := s.lim.Checkpoint(view, merged); err != nil {
		return g.fail(ErrCheckpoint, err)
	}
	if s.en.sink != nil {
		s.en.sink.Event(obs.Event{Kind: obs.CheckpointFlushed, Component: -1,
			Round: merged.Rounds, Derived: merged.Derived})
	}
	return nil
}
