package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/val"
)

// TestSection61LimitTrend approximates §6.1's infinite-relation
// discussion with a deep halving chain: the minimum over lengths
// 1, 1/2, 1/4, ... approaches the glb 0, which is not itself a member.
// Any finite prefix computes exactly; the trend to the glb is visible as
// the chain deepens.
func TestSection61LimitTrend(t *testing.T) {
	src := `
.cost w/2 : minreal.
.cost shortest/1 : minreal.
shortest(C) :- C ?= min D : w(X, D).
`
	v := 1.0
	for k := 0; k <= 40; k++ {
		src += "w(n" + itoa(k) + ", " + val.Number(v).String() + ").\n"
		v /= 2
	}
	db := solve(t, src, Options{})
	c, ok := costOf(t, db, "shortest")
	if !ok {
		t.Fatal("shortest missing")
	}
	if c != math.Pow(2, -40) {
		t.Fatalf("shortest = %v, want 2^-40", c)
	}
	if c == 0 {
		t.Fatal("any finite prefix stays strictly above the glb 0 (§6.1)")
	}
}

// TestNegativeCycleDiverges: with a reachable negative cycle the s costs
// descend forever; the round bound reports it instead of looping (§2.3.3
// concedes safety cannot guarantee termination).
func TestNegativeCycleDiverges(t *testing.T) {
	src := shortestPathProg + `
arc(a, b, 1).
arc(b, a, -2).
`
	en := mustEngine(t, src, Options{MaxRounds: 500})
	_, _, err := en.Solve(nil)
	if err == nil || !strings.Contains(err.Error(), "fixpoint") {
		t.Fatalf("err = %v, want a round-bound failure", err)
	}
	// Bellman-Ford flags the same input.
}

// TestStrictConflictsAtRuntime: a cost-inconsistent program slips past
// SkipChecks but the strict naive evaluation reports the conflicting
// derivation (Definition 2.6's failure mode, observed dynamically).
func TestStrictConflictsAtRuntime(t *testing.T) {
	src := `
.cost p/2 : sumreal.
.cost q/2 : sumreal.
.cost r/2 : sumreal.
q(x, 1).
r(x, 2).
p(X, C) :- q(X, C).
p(X, C) :- r(X, C).
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Conflict-freedom rejects it statically.
	if _, err := New(prog, Options{}); err == nil || !strings.Contains(err.Error(), "conflicting costs") {
		t.Fatalf("static check: %v", err)
	}
	// With checks skipped, strict naive evaluation catches it at runtime.
	en, err := New(prog, Options{SkipChecks: true, Strategy: Naive, StrictConflicts: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = en.Solve(nil)
	var ce *relation.ConflictError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want a ConflictError", err)
	}
	// Without strictness the engine silently joins (documented hazard of
	// SkipChecks).
	en2, err := New(prog, Options{SkipChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := en2.Solve(nil); err != nil {
		t.Fatalf("join mode must not error: %v", err)
	}
}

// TestNaiveSeedsEDBForCDBPreds: EDB rows supplied for a predicate that
// also has rules must survive the naive strategy's per-round relation
// replacement.
func TestNaiveSeedsEDBForCDBPreds(t *testing.T) {
	src := `
.cost s/3 : minreal.
.cost arc/3 : minreal.
s(X, Y, C) :- arc(X, Y, C).
`
	en := mustEngine(t, src, Options{Strategy: Naive})
	edb := relation.NewDB(en.Schemas)
	edb.Rel("arc/3").InsertJoin([]val.T{val.Symbol("a"), val.Symbol("b")}, val.Number(1))
	// Seed an s tuple directly (an externally asserted shortest path).
	edb.Rel("s/3").InsertJoin([]val.T{val.Symbol("x"), val.Symbol("y")}, val.Number(7))
	db, _, err := en.Solve(edb)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := costOf(t, db, "s", "x", "y"); !ok || c != 7 {
		t.Fatalf("seeded s(x,y) = %v (%v), want 7", c, ok)
	}
	if c, _ := costOf(t, db, "s", "a", "b"); c != 1 {
		t.Fatalf("derived s(a,b) = %v, want 1", c)
	}
}

// TestMaxRoundsHonored: tiny bounds trip predictably.
func TestMaxRoundsHonored(t *testing.T) {
	src := shortestPathProg
	for i := 0; i < 20; i++ {
		src += "arc(n" + itoa(i) + ", n" + itoa(i+1) + ", 1).\n"
	}
	en := mustEngine(t, src, Options{MaxRounds: 3})
	if _, _, err := en.Solve(nil); err == nil {
		t.Fatal("a 20-hop chain cannot close in 3 rounds")
	}
}

// TestDomainEscapeReported: deriving a cost outside the declared lattice
// (a negative sumreal) is an evaluation error, not a silent wrap.
func TestDomainEscapeReported(t *testing.T) {
	src := `
.cost q/2 : sumreal.
.cost p/2 : sumreal.
q(x, 1).
p(X, C) :- q(X, D), C = D - 5.
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(prog, Options{SkipChecks: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = en.Solve(nil)
	if err == nil || !strings.Contains(err.Error(), "outside lattice") {
		t.Fatalf("err = %v, want a domain-escape report", err)
	}
}

// TestPropositionalPredicates: zero-arity predicates flow through the
// whole pipeline.
func TestPropositionalPredicates(t *testing.T) {
	src := `
go.
p(a) :- go.
q :- p(X).
`
	db := solve(t, src, Options{})
	if !hasTuple(db, "q") || !hasTuple(db, "p", "a") {
		t.Fatalf("propositional flow broken:\n%s", db)
	}
}
