package core

import (
	"testing"
)

// TestPathCountingViaSum: counting distinct paths in a DAG with
// sum-through-recursion — the same admissible shape as company control,
// applied to a counting problem (the cost FD holds because step is keyed
// by the first hop).
func TestPathCountingViaSum(t *testing.T) {
	// The same "first hop as extra key argument" trick as Example 2.6:
	// direct arcs are steps keyed by the reserved constant 'direct'.
	src := `
.cost npaths/3 : sumreal.
.cost step/4 : sumreal.
.ic :- arc(X, direct).

npaths(X, Y, N)       :- N ?= sum M : step(X, Z, Y, M).
step(X, direct, Y, M) :- arc(X, Y), M = 1.
step(X, Z, Y, M)      :- arc(X, Z), npaths(Z, Y, M).

arc(s, a). arc(s, b).
arc(a, c). arc(b, c).
arc(c, t). arc(a, t).
`
	db := solve(t, src, Options{})
	// Paths s→t: s-a-c-t, s-b-c-t, s-a-t = 3.
	if n, ok := costOf(t, db, "npaths", "s", "t"); !ok || n != 3 {
		t.Fatalf("npaths(s,t) = %v (%v), want 3", n, ok)
	}
	if n, _ := costOf(t, db, "npaths", "a", "t"); n != 2 {
		t.Fatalf("npaths(a,t) = %v, want 2", n)
	}
}

// TestProductRecursion: prodnat through recursion — the multiplicative
// weight of a chain (Figure 1 row 7 exercised recursively).
func TestProductRecursion(t *testing.T) {
	src := `
.cost weight/2 : prodnat.
.cost gain/3 : prodnat.
.cost chainw/2 : prodnat.

chainw(end, 1).
chainw(X, W)   :- W ?= product M : gain(X, Y, M).
gain(X, Y, M)  :- next(X, Y, G), chainw(Y, W2), hold(G, W2, M).
`
	// prodnat admits no arithmetic helper: encode the per-hop gain as a
	// product over a two-element group instead. Simpler formulation:
	src = `
.cost amp/3 : prodnat.
.cost total/1 : prodnat.
amp(s1, s2, 2).
amp(s2, s3, 3).
amp(s3, s4, 5).
total(W) :- W ?= product G : amp(X, Y, G).
`
	db := solve(t, src, Options{})
	if n, ok := costOf(t, db, "total"); !ok || n != 30 {
		t.Fatalf("total = %v (%v), want 30", n, ok)
	}
}

// TestMaxRecursion: longest path on a DAG via max-through-recursion (the
// dual of Example 2.6, over the maxreal lattice).
func TestMaxRecursion(t *testing.T) {
	src := `
.cost arc/3 : maxreal.
.cost walk/4 : maxreal.
.cost longest/3 : maxreal.

walk(X, direct, Y, C) :- arc(X, Y, C).
walk(X, Z, Y, C)      :- longest(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
longest(X, Y, C)      :- C ?= max D : walk(X, Z, Y, D).
.ic :- arc(direct, Z, C).

arc(a, b, 1).
arc(b, c, 2).
arc(a, c, 10).
arc(c, d, 1).
`
	db := solve(t, src, Options{})
	if c, _ := costOf(t, db, "longest", "a", "d"); c != 11 {
		t.Fatalf("longest(a,d) = %v, want 11 (a-c-d)", c)
	}
	if c, _ := costOf(t, db, "longest", "a", "c"); c != 10 {
		t.Fatalf("longest(a,c) = %v, want 10", c)
	}
}
