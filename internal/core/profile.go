package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/val"
)

// EXPLAIN ANALYZE: the compiled operator trees annotated with the
// measured per-operator counters of Options.Profile. A Profile is a
// point-in-time snapshot of the engine's cumulative accumulators;
// Sub produces per-solve deltas, Annotate grafts the per-rule timing
// and firing totals from Stats, and Render prints the human tree. The
// JSON encoding of Profile is the machine-readable form — the input
// format the cost-based planner (ROADMAP item 2) consumes.

// OpStats is one operator of a rule's pipeline with its measured
// counters. Counters are zero when profiling is off or the solve ran on
// the tuple interpreter (only the streaming executor is instrumented).
type OpStats struct {
	// Step is the pipeline position; Kind is the operator class (scan,
	// negation, builtin, aggregate); Op is the operator rendered with
	// the rule's variable names.
	Step int    `json:"step"`
	Kind string `json:"kind"`
	Op   string `json:"op"`
	// In counts rows entering the operator, Out rows it passed
	// downstream (the last operator's Out is the rule's firings).
	In  int64 `json:"in"`
	Out int64 `json:"out"`
	// Probes counts index probes (rows offered by the operator's
	// cursor); Build is the largest indexed relation it consulted — the
	// build side of the hash join it probes.
	Probes int64 `json:"probes"`
	Build  int64 `json:"build"`
	// Delta counts Δ rows offered when the operator drove a semi-naive
	// pass; Groups counts aggregate groups a γ operator emitted.
	Delta  int64 `json:"delta,omitempty"`
	Groups int64 `json:"groups,omitempty"`
	// EstRows is the cost planner's rows-per-invocation estimate for
	// this operator at its position in the chosen plan (PlanCost only;
	// zero for operators the planner does not estimate). Prediction
	// sits beside the measured counters so the cost model can be
	// calibrated from one report (docs/PLANNER.md).
	EstRows float64 `json:"est_rows,omitempty"`
}

// RuleProfile is one rule's operator pipeline.
type RuleProfile struct {
	Index     int    `json:"index"`
	Component int    `json:"component"`
	Rule      string `json:"rule"`
	// Firings/Nanos/Rounds are filled by Annotate from Stats (zero
	// until then — the operator counters and the stats ledger are
	// separate books; see the "work performed" note on Profile).
	Firings int64 `json:"firings,omitempty"`
	Nanos   int64 `json:"nanos,omitempty"`
	Rounds  int   `json:"rounds,omitempty"`
	// PlanOrder is the cost planner's physical execution order as
	// canonical step positions (-1 = the shared CSE buffer step);
	// PlanShared is how many leading canonical steps that buffer
	// replaced. Both absent when the rule runs its syntactic order.
	// Ops always lists operators in canonical (syntactic) order, so the
	// counter schema is stable across plans.
	PlanOrder  []int     `json:"plan_order,omitempty"`
	PlanShared int       `json:"plan_shared,omitempty"`
	Ops        []OpStats `json:"ops"`
}

// Profile is the operator-level evaluation profile of one engine.
//
// Counter semantics: the operator counters measure work PERFORMED by
// the streaming executor, cumulatively over the engine's lifetime.
// Under the parallel scheduler this includes speculative passes whose
// buffers were discarded and re-run, so operator totals are not
// byte-identical across parallelism levels the way Stats is — they
// answer "where did the time and the tuples go", not "what did the
// model require".
type Profile struct {
	// Executor names the executor the counters came from ("stream";
	// "tuple" profiles carry structure but zero counters). Plan names
	// the planner the engine resolves ("syntactic" or "cost").
	Executor string        `json:"executor"`
	Plan     string        `json:"plan"`
	Rules    []RuleProfile `json:"rules"`
}

// Profile snapshots the engine's operator counters (with the compiled
// operator trees), or structure-only with zero counters when
// Options.Profile is off. Safe to call concurrently with a solve: the
// counters are atomic, so a snapshot taken mid-solve is simply a
// consistent-enough point in time.
func (en *Engine) Profile() *Profile {
	pr := &Profile{Executor: resolveExecutor(en.opts.Limits).String(),
		Plan: resolvePlan(en.opts.Limits).String()}
	for ci, ps := range en.plans {
		for _, p := range ps {
			rp := RuleProfile{Index: p.idx, Component: ci, Rule: p.text, Ops: make([]OpStats, len(p.steps))}
			for si, s := range p.steps {
				kind, op := describeStep(p, s)
				rp.Ops[si] = OpStats{Step: si, Kind: kind, Op: op}
				if en.prof != nil {
					c := en.prof[p.idx][si].Snapshot()
					rp.Ops[si].In = c.In
					rp.Ops[si].Out = c.Out
					rp.Ops[si].Probes = c.Probes
					rp.Ops[si].Build = c.Build
					rp.Ops[si].Delta = c.Delta
					rp.Ops[si].Groups = c.Groups
				}
			}
			// The planner's decisions for the currently installed
			// physical (atomic load: consistent mid-solve snapshots).
			if ch := p.ph().choice; ch != nil {
				rp.PlanOrder = ch.Order
				rp.PlanShared = ch.Shared
				for pi, c := range ch.Order {
					if c >= 0 && pi < len(ch.Est) {
						rp.Ops[c].EstRows = ch.Est[pi]
					}
				}
			}
			pr.Rules = append(pr.Rules, rp)
		}
	}
	// Engine-global rule order, so Rules[i].Index == i.
	for i := 1; i < len(pr.Rules); i++ {
		for j := i; j > 0 && pr.Rules[j].Index < pr.Rules[j-1].Index; j-- {
			pr.Rules[j], pr.Rules[j-1] = pr.Rules[j-1], pr.Rules[j]
		}
	}
	return pr
}

// Profiling reports whether Options.Profile was set.
func (en *Engine) Profiling() bool { return en.prof != nil }

// Sub returns this profile minus prev (per-rule, per-operator), the
// per-solve delta of two cumulative snapshots. Build, a high-water
// mark, keeps the current value. Rules present only in p are kept
// as-is.
func (p *Profile) Sub(prev *Profile) *Profile {
	if prev == nil {
		return p
	}
	byIdx := make(map[int]*RuleProfile, len(prev.Rules))
	for i := range prev.Rules {
		byIdx[prev.Rules[i].Index] = &prev.Rules[i]
	}
	out := &Profile{Executor: p.Executor, Plan: p.Plan, Rules: make([]RuleProfile, len(p.Rules))}
	for i, rp := range p.Rules {
		ops := make([]OpStats, len(rp.Ops))
		copy(ops, rp.Ops)
		if old := byIdx[rp.Index]; old != nil && len(old.Ops) == len(ops) {
			for j := range ops {
				ops[j].In -= old.Ops[j].In
				ops[j].Out -= old.Ops[j].Out
				ops[j].Probes -= old.Ops[j].Probes
				ops[j].Delta -= old.Ops[j].Delta
				ops[j].Groups -= old.Ops[j].Groups
			}
			rp.Firings -= old.Firings
			rp.Nanos -= old.Nanos
			rp.Rounds -= old.Rounds
		}
		rp.Ops = ops
		out.Rules[i] = rp
	}
	return out
}

// Annotate fills the per-rule firing/timing totals from a stats ledger
// (matched by engine-global rule index).
func (p *Profile) Annotate(st Stats) {
	byIdx := make(map[int]*RuleStats, len(st.Rules))
	for i := range st.Rules {
		byIdx[st.Rules[i].Index] = &st.Rules[i]
	}
	for i := range p.Rules {
		if rs := byIdx[p.Rules[i].Index]; rs != nil {
			p.Rules[i].Firings = rs.Firings
			p.Rules[i].Nanos = rs.Nanos
			p.Rules[i].Rounds = rs.Rounds
		}
	}
}

// Render prints the profile as a human-readable operator tree, one rule
// per block, operators indented under it in pipeline order.
func (p *Profile) Render(w io.Writer) {
	planNote := ""
	if p.Plan != "" {
		planNote = fmt.Sprintf(" plan=%s", p.Plan)
	}
	fmt.Fprintf(w, "EXPLAIN ANALYZE (executor=%s%s)\n", p.Executor, planNote)
	for _, rp := range p.Rules {
		fmt.Fprintf(w, "rule %d [component %d]: %s\n", rp.Index, rp.Component, rp.Rule)
		if rp.Firings > 0 || rp.Nanos > 0 {
			fmt.Fprintf(w, "  %d firings over %d rounds in %s\n", rp.Firings, rp.Rounds, formatProfNanos(rp.Nanos))
		}
		if rp.PlanOrder != nil {
			line := fmt.Sprintf("  plan: cost order=%v", rp.PlanOrder)
			if rp.PlanShared > 0 {
				line += fmt.Sprintf(" shared=%d", rp.PlanShared)
			}
			fmt.Fprintln(w, line)
		}
		for i, op := range rp.Ops {
			branch := "├─"
			if i == len(rp.Ops)-1 {
				branch = "└─"
			}
			fmt.Fprintf(w, "  %s %-9s %s\n", branch, op.Kind, op.Op)
			pad := "  │ "
			if i == len(rp.Ops)-1 {
				pad = "    "
			}
			line := fmt.Sprintf("%sin=%d out=%d probes=%d build=%d", pad, op.In, op.Out, op.Probes, op.Build)
			if op.Delta > 0 {
				line += fmt.Sprintf(" Δ=%d", op.Delta)
			}
			if op.Groups > 0 {
				line += fmt.Sprintf(" groups=%d", op.Groups)
			}
			if op.EstRows > 0 {
				line += fmt.Sprintf(" est=%.1f", op.EstRows)
			}
			fmt.Fprintln(w, line)
		}
	}
}

func formatProfNanos(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fs", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fms", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(n)/1e3)
	}
	return fmt.Sprintf("%dns", n)
}

// describeStep renders one plan step as an operator label using the
// rule's variable names.
func describeStep(p *plan, s step) (kind, op string) {
	switch s := s.(type) {
	case *scanStep:
		return "scan", atomText(p, &s.atomSpec)
	case *negStep:
		return "negation", "not " + atomText(p, &s.atomSpec)
	case *builtinStep:
		return "builtin", s.b.String()
	case *aggStep:
		var b strings.Builder
		b.WriteString(s.g.String())
		if s.restricted {
			b.WriteString(" [restricted]")
		}
		return "aggregate", b.String()
	}
	return "op", "?"
}

// atomText renders a compiled atom with variable names and constants,
// cost argument last.
func atomText(p *plan, sp *atomSpec) string {
	var b strings.Builder
	b.WriteString(sp.pred.Name())
	b.WriteByte('(')
	for j := range sp.argVar {
		if j > 0 {
			b.WriteString(", ")
		}
		b.WriteString(argText(p, sp.argVar[j], sp.argVal, j))
	}
	if sp.pi != nil && sp.pi.HasCost {
		if len(sp.argVar) > 0 {
			b.WriteString("; ")
		}
		if sp.costVar >= 0 {
			b.WriteString(string(p.names[sp.costVar]))
		} else {
			b.WriteString(sp.costVal.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

func argText(p *plan, v int, vals []val.T, j int) string {
	if v >= 0 {
		return string(p.names[v])
	}
	return vals[j].String()
}
