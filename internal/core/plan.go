// Package core implements the paper's primary contribution: the minimal
// model semantics of monotonic aggregate programs (Ross & Sagiv, PODS
// 1992, §3) via the immediate consequence operator T_P (Definition 3.7)
// and its bottom-up least-fixpoint computation (§6.2), evaluated one
// program component at a time in bottom-up order (§6.3).
//
// Rules are compiled to evaluation plans: an ordering of subgoals such
// that each step sees the variables it needs already bound (aggregates
// with unbound grouping variables execute as a grouped scan, which is how
// the paper's rule "s(X,Y,C) :- C ?= min D : path(X,Z,Y,D)" runs).
//
// With Limits.Parallelism > 1 (the default resolves to one worker per
// CPU) the fixpoint runs on the parallel scheduler in parallel.go —
// independent components concurrently, rules within a round
// speculatively — with results guaranteed byte-identical to the
// sequential engine; see docs/ARCHITECTURE.md.
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/lattice"
	"repro/internal/val"
)

// plan is the compiled form of one rule.
type plan struct {
	rule *ast.Rule
	// idx is the engine-global rule index (into Stats.Rules); text is
	// the rule rendered once at compile time, so stats attribution and
	// event emission never format in the fixpoint loops.
	idx   int
	text  string
	nvars int
	names []ast.Var // index -> variable name (for errors)
	steps []step
	head  atomSpec
	// scanSteps maps each positively scanned predicate to the step
	// indices scanning it (semi-naive drivers: CDB predicates during the
	// fixpoint, plus EDB predicates for incremental SolveMore seeds);
	// cdbScanSteps keeps just the CDB ones. hasCDBAgg marks plans
	// referencing CDB predicates inside aggregates.
	scanSteps    map[ast.PredKey][]int
	cdbScanSteps []int
	hasCDBAgg    bool
	// reads is every predicate this plan consults at evaluation time
	// (positive scans, negated literals, aggregate conjuncts). The
	// parallel merge phase uses it for conflict detection: a rule whose
	// reads intersect the predicates already improved this round cannot
	// replay its speculative buffer and re-runs sequentially instead.
	reads map[ast.PredKey]bool
	// stream is the plan lowered to the streaming executor (exec_compile.go),
	// always compiled so Limits.Executor can switch per solve; hbuf is the
	// head-projection scratch for insert paths that don't retain args.
	stream *exec.Rule
	hbuf   []val.T
	// syn is the syntactic physical plan (identical to steps/scanSteps/
	// stream above); cur is the physical currently installed — the
	// cost-based planner (plancost.go) swaps alternatives in between
	// semi-naive rounds. Evaluation-time consumers read cur via ph();
	// compile-time structure (stats sizing, seeds, stratification) stays
	// on the canonical fields.
	syn *physical
	cur atomic.Pointer[physical]
}

// step is one executable body element.
type step interface{ isStep() }

// atomSpec is a compiled atom: per argument either a variable index or a
// constant, with the cost argument split out.
type atomSpec struct {
	pred    ast.PredKey
	pi      *ast.PredInfo
	argVar  []int   // variable index per non-cost position, -1 for const
	argVal  []val.T // constant per non-cost position when argVar < 0
	costVar int     // variable index of the cost argument, -1 if none/const
	costVal val.T   // constant cost when costVar < 0 and pi.HasCost
	cdb     bool
	// pat, sbuf, abuf and kbuf are per-step scratch buffers for Match
	// patterns, bindAtom backtracking lists, fully instantiated argument
	// tuples and their lookup keys (negation and default-value point
	// lookups). A step is never re-entered while its own match is in
	// progress (nested steps are distinct specs), so the buffers are safe
	// within one evaluation; they do make an Engine unsafe for concurrent
	// Solve calls.
	pat  []*val.T
	sbuf []int
	abuf []val.T
	kbuf []byte
}

// scanStep matches an atom against the database (positive literal).
type scanStep struct {
	atomSpec
}

func (*scanStep) isStep() {}

// negStep checks a fully bound negative literal.
type negStep struct {
	atomSpec
}

func (*negStep) isStep() {}

// builtinStep tests a comparison or performs a definitional assignment.
type builtinStep struct {
	b *ast.Builtin
	// assign is the variable defined by a "V = expr" builtin, -1 for a
	// pure test; expr is the defining side.
	assign int
	expr   ast.Expr
	lVars  []int
	rVars  []int
	// vmap resolves expression variable names to plan indices (shared
	// with the plan's compiler).
	vmap map[ast.Var]int
}

func (*builtinStep) isStep() {}

func (b *builtinStep) varIndex(v ast.Var) (int, bool) {
	i, ok := b.vmap[v]
	return i, ok
}

// aggStep evaluates an aggregate subgoal.
type aggStep struct {
	g          *ast.Agg
	f          lattice.Aggregate
	restricted bool
	result     int   // variable index of the aggregate variable
	groupVars  []int // variable indices of the grouping variables
	msVar      int   // variable index of the multiset variable, -1 if none
	conj       []atomSpec
	cdb        bool // references a CDB predicate
	// groupKeyPos[i] maps each grouping variable to its position in the
	// non-cost arguments of conj atom i, or nil when atom i does not
	// carry every grouping variable (then Δ-driven group restriction is
	// impossible and the rule re-runs whole).
	groupKeyPos [][]int
	// groupScratch is changedGroups' per-round changed-group map,
	// cleared (retaining its buckets) and refilled each round. Like
	// atomSpec's scratch buffers it relies on the engine evaluating a
	// plan from one goroutine at a time.
	groupScratch map[string]exec.GroupRef
	// groupKeys interns group-key strings across rounds (and solves), so
	// a group that changes in many rounds allocates its key exactly
	// once. Bounded by the number of distinct groups the step ever sees.
	groupKeys map[string]string
}

func (*aggStep) isStep() {}

// compiler builds plans for the rules of one component.
type compiler struct {
	schemas ast.Schemas
	cdb     map[ast.PredKey]bool
}

func (c *compiler) compileRule(r *ast.Rule) (*plan, error) {
	p := &plan{rule: r}
	vidx := map[ast.Var]int{}
	idxOf := func(v ast.Var) int {
		if i, ok := vidx[v]; ok {
			return i
		}
		i := p.nvars
		vidx[v] = i
		p.names = append(p.names, v)
		p.nvars++
		return i
	}

	compileAtom := func(a *ast.Atom) (atomSpec, error) {
		pi := c.schemas.Info(a.Key())
		if pi == nil {
			return atomSpec{}, fmt.Errorf("core: no schema for %s", a.Key())
		}
		sp := atomSpec{pred: a.Key(), pi: pi, costVar: -1, cdb: c.cdb[a.Key()]}
		for j, t := range a.Args {
			isCost := pi.HasCost && j == pi.CostIndex()
			switch t := t.(type) {
			case ast.Var:
				if isCost {
					sp.costVar = idxOf(t)
				} else {
					sp.argVar = append(sp.argVar, idxOf(t))
					sp.argVal = append(sp.argVal, val.T{})
				}
			case ast.Const:
				if isCost {
					cv, err := pi.L.Parse(t.V)
					if err != nil {
						return atomSpec{}, fmt.Errorf("core: %s: %v", a, err)
					}
					sp.costVal = cv
				} else {
					sp.argVar = append(sp.argVar, -1)
					sp.argVal = append(sp.argVal, t.V)
				}
			}
		}
		sp.pat = make([]*val.T, len(sp.argVar))
		sp.sbuf = make([]int, 0, len(sp.argVar)+1)
		sp.abuf = make([]val.T, len(sp.argVar))
		return sp, nil
	}

	// Compile subgoals to unordered steps first.
	type pending struct {
		s        step
		needs    []int // variables that must be bound before execution
		binds    []int // variables bound by execution
		priority int   // tie-break: lower runs earlier among runnable
	}
	var pendings []pending

	for bi, sg := range r.Body {
		switch sg := sg.(type) {
		case *ast.Lit:
			sp, err := compileAtom(&sg.Atom)
			if err != nil {
				return nil, err
			}
			var needs, binds []int
			if sg.Neg {
				for _, v := range sp.argVar {
					if v >= 0 {
						needs = append(needs, v)
					}
				}
				if sp.costVar >= 0 {
					needs = append(needs, sp.costVar)
				}
				pendings = append(pendings, pending{s: &negStep{sp}, needs: needs, priority: 3})
				continue
			}
			if sp.pi.HasDefault {
				// Default-value predicates cannot be enumerated: all
				// non-cost arguments must be bound (safety guarantees a
				// limiting occurrence exists elsewhere).
				for _, v := range sp.argVar {
					if v >= 0 {
						needs = append(needs, v)
					}
				}
			}
			for _, v := range sp.argVar {
				if v >= 0 {
					binds = append(binds, v)
				}
			}
			if sp.costVar >= 0 {
				binds = append(binds, sp.costVar)
			}
			pendings = append(pendings, pending{s: &scanStep{sp}, needs: needs, binds: binds, priority: 1})
		case *ast.Agg:
			f, ok := lattice.AggregateByName(sg.Func)
			if !ok {
				return nil, fmt.Errorf("core: unknown aggregate %s", sg.Func)
			}
			roles := ast.RolesOf(r, bi)
			st := &aggStep{g: sg, f: f, restricted: sg.Restricted, msVar: -1}
			st.result = idxOf(sg.Result)
			for _, v := range roles.Grouping {
				st.groupVars = append(st.groupVars, idxOf(v))
			}
			if sg.MultisetVar != "" {
				st.msVar = idxOf(sg.MultisetVar)
			}
			for ci := range sg.Conj {
				sp, err := compileAtom(&sg.Conj[ci])
				if err != nil {
					return nil, err
				}
				if sp.cdb {
					st.cdb = true
					p.hasCDBAgg = true
				}
				st.conj = append(st.conj, sp)
				// Record where each grouping variable sits in this atom's
				// non-cost arguments (for Δ-driven group restriction).
				pos := make([]int, len(st.groupVars))
				usable := true
				for gi, gv := range st.groupVars {
					pos[gi] = -1
					for ai, av := range sp.argVar {
						if av == gv {
							pos[gi] = ai
							break
						}
					}
					if pos[gi] < 0 {
						usable = false
					}
				}
				if !usable {
					pos = nil
				}
				st.groupKeyPos = append(st.groupKeyPos, pos)
			}
			var needs, binds []int
			if !sg.Restricted {
				// Total "=" aggregates need every grouping variable bound
				// (they are defined on empty groups, so grouping cannot
				// enumerate them; Definition 2.5 makes them limited
				// elsewhere).
				needs = append(needs, st.groupVars...)
			} else {
				binds = append(binds, st.groupVars...)
			}
			binds = append(binds, st.result)
			pendings = append(pendings, pending{s: st, needs: needs, binds: binds, priority: 2})
		case *ast.Builtin:
			lv := exprIdx(sg.L.Vars(nil), idxOf)
			rv := exprIdx(sg.R.Vars(nil), idxOf)
			pendings = append(pendings, pending{
				s: &builtinStep{b: sg, assign: -1, lVars: lv, rVars: rv, vmap: vidx},
				// needs computed dynamically below (assignment form).
				priority: 0,
			})
		}
	}

	// Greedy ordering: repeatedly emit a runnable step. Builtins are
	// runnable when fully bound (test) or when exactly one side is a
	// single unbound variable and the other side is bound (assignment).
	bound := make([]bool, p.nvars+8)
	grow := func() {
		if p.nvars > len(bound) {
			nb := make([]bool, p.nvars+8)
			copy(nb, bound)
			bound = nb
		}
	}
	grow()
	done := make([]bool, len(pendings))
	for remaining := len(pendings); remaining > 0; {
		best := -1
		bestScore := -1
		for i := range pendings {
			if done[i] {
				continue
			}
			pd := &pendings[i]
			runnable := true
			score := 0
			if b, isB := pd.s.(*builtinStep); isB {
				mode, _, ok := builtinMode(b, bound)
				if !ok {
					runnable = false
				} else if mode == "test" {
					score = 100 // run tests as early as possible
				} else {
					score = 50
				}
			} else {
				for _, v := range pd.needs {
					if !bound[v] {
						runnable = false
						break
					}
				}
				if runnable {
					// Prefer more-bound scans (cheaper joins).
					for _, v := range pd.binds {
						if bound[v] {
							score++
						}
					}
					score += 10 * (3 - pd.priority)
				}
			}
			if runnable && score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("core: rule %q has no valid evaluation order (is it range-restricted?)", r)
		}
		pd := &pendings[best]
		done[best] = true
		remaining--
		if b, isB := pd.s.(*builtinStep); isB {
			mode, assignVar, _ := builtinMode(b, bound)
			if mode == "assign" {
				b.assign = assignVar
				if lv, ok := b.b.L.(ast.VarExpr); ok && vidx[lv.V] == assignVar {
					b.expr = b.b.R
				} else {
					b.expr = b.b.L
				}
				bound[assignVar] = true
			}
			p.steps = append(p.steps, b)
			continue
		}
		for _, v := range pd.binds {
			bound[v] = true
		}
		p.steps = append(p.steps, pd.s)
	}

	// Record scan positions (semi-naive drivers) and the full read set
	// (parallel conflict detection).
	p.scanSteps = map[ast.PredKey][]int{}
	p.reads = map[ast.PredKey]bool{}
	for i, s := range p.steps {
		switch s := s.(type) {
		case *scanStep:
			p.scanSteps[s.pred] = append(p.scanSteps[s.pred], i)
			if s.cdb {
				p.cdbScanSteps = append(p.cdbScanSteps, i)
			}
			p.reads[s.pred] = true
		case *negStep:
			p.reads[s.pred] = true
		case *aggStep:
			for ci := range s.conj {
				p.reads[s.conj[ci].pred] = true
			}
		}
	}

	// Compile the head.
	hs, err := compileAtom(&r.Head)
	if err != nil {
		return nil, err
	}
	p.head = hs
	// Verify head variables are bound by the plan (the head may have
	// introduced fresh indices beyond the body's bound set).
	isBound := func(v int) bool { return v < len(bound) && bound[v] }
	for _, v := range hs.argVar {
		if v >= 0 && !isBound(v) {
			return nil, fmt.Errorf("core: rule %q: head variable %s never bound", r, p.names[v])
		}
	}
	if hs.costVar >= 0 && !isBound(hs.costVar) {
		return nil, fmt.Errorf("core: rule %q: head cost variable %s never bound", r, p.names[hs.costVar])
	}
	p.hbuf = make([]val.T, len(hs.argVar))
	p.stream = compileStream(p, p.steps, nil)
	p.syn = newSynPhysical(p)
	p.cur.Store(p.syn)
	return p, nil
}

// builtinMode decides how a builtin runs under the current bound set:
// "test" when every variable is bound; "assign" when the builtin is an
// equality with a single unbound variable alone on one side.
func builtinMode(b *builtinStep, bound []bool) (mode string, assignVar int, ok bool) {
	allBound := func(vs []int) bool {
		for _, v := range vs {
			if !bound[v] {
				return false
			}
		}
		return true
	}
	lb, rb := allBound(b.lVars), allBound(b.rVars)
	if lb && rb {
		return "test", -1, true
	}
	if b.b.Op != ast.OpEq {
		return "", -1, false
	}
	if lv, isVar := b.b.L.(ast.VarExpr); isVar && !lb && len(b.lVars) == 1 && rb {
		_ = lv
		return "assign", b.lVars[0], true
	}
	if rv, isVar := b.b.R.(ast.VarExpr); isVar && !rb && len(b.rVars) == 1 && lb {
		_ = rv
		return "assign", b.rVars[0], true
	}
	return "", -1, false
}

func exprIdx(vs []ast.Var, idxOf func(ast.Var) int) []int {
	seen := map[ast.Var]bool{}
	var out []int
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, idxOf(v))
		}
	}
	return out
}

// orderConj orders the atoms of an aggregate conjunction for a given set
// of pre-bound variables: default-value atoms wait until their non-cost
// arguments are bound; otherwise prefer more-bound atoms. Returns the
// permutation.
func orderConj(conj []atomSpec, bound map[int]bool) ([]int, error) {
	n := len(conj)
	used := make([]bool, n)
	local := map[int]bool{}
	for v := range bound {
		local[v] = true
	}
	var order []int
	for len(order) < n {
		best := -1
		bestScore := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			sp := &conj[i]
			runnable := true
			score := 0
			for _, v := range sp.argVar {
				if v >= 0 && local[v] {
					score++
				} else if v >= 0 && sp.pi.HasDefault {
					runnable = false
				}
			}
			if runnable && score > bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("core: default-value predicate inside aggregation cannot be enumerated (unbound non-cost arguments)")
		}
		used[best] = true
		order = append(order, best)
		for _, v := range conj[best].argVar {
			if v >= 0 {
				local[v] = true
			}
		}
		if cv := conj[best].costVar; cv >= 0 {
			local[cv] = true
		}
	}
	return order, nil
}

// sortedKeys is a small helper for deterministic map iteration.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
