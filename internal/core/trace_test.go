package core

import (
	"strings"
	"testing"

	"repro/internal/val"
)

func TestExplainShortestPath(t *testing.T) {
	src := shortestPathProg + `
arc(a, b, 1).
arc(b, c, 2).
arc(a, c, 9).
`
	en := mustEngine(t, src, Options{Trace: true})
	db, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	args := []val.T{val.Symbol("a"), val.Symbol("c")}
	d, ok := en.Explain("s", args)
	if !ok {
		t.Fatal("no derivation recorded for s(a,c)")
	}
	if !strings.Contains(d.Rule, "?= min") {
		t.Fatalf("s must come from the min rule, got %q", d.Rule)
	}
	found := false
	for _, sup := range d.Supports {
		if strings.Contains(sup.String(), "min") && strings.Contains(sup.String(), "3") {
			found = true
		}
	}
	if !found {
		t.Fatalf("aggregate support missing instantiated result: %v", d.Supports)
	}

	// path(a, b, c, 3) comes from rule 2, supported by s(a,b,1) and
	// arc(b,c,2) and the instantiated sum.
	pd, ok := en.Explain("path", []val.T{val.Symbol("a"), val.Symbol("b"), val.Symbol("c")})
	if !ok {
		t.Fatal("no derivation for path(a,b,c)")
	}
	joined := ""
	for _, sup := range pd.Supports {
		joined += sup.String() + "; "
	}
	for _, want := range []string{"s(a, b, 1)", "arc(b, c, 2)", "3 = (1 + 2)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("path supports missing %q: %s", want, joined)
		}
	}

	// The tree renderer walks derived supports down to facts.
	tree := en.ExplainTree(db, "s", args, 5)
	for _, want := range []string{"s(a, c, 3)", "[fact]", "arc(a, b, 1)"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestExplainDisabledWithoutTrace(t *testing.T) {
	en := mustEngine(t, shortestPathProg+"arc(a, b, 1).\n", Options{})
	if _, _, err := en.Solve(nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := en.Explain("s", []val.T{val.Symbol("a"), val.Symbol("b")}); ok {
		t.Fatal("tracing must be opt-in")
	}
}

func TestExplainNegationAndBuiltins(t *testing.T) {
	src := `
node(a). node(b).
e(a, b).
isolated(X) :- node(X), not linked(X).
linked(X) :- e(X, Y).
linked(Y) :- e(X, Y).
`
	en := mustEngine(t, src, Options{Trace: true})
	db, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = db
	if hasTuple(db, "isolated", "a") {
		t.Fatal("a is linked")
	}
	// Negative supports render with "not".
	d, ok := en.Explain("linked", []val.T{val.Symbol("b")})
	if !ok {
		t.Fatal("no derivation for linked(b)")
	}
	if !strings.Contains(d.Supports[0].String(), "e(a, b)") {
		t.Fatalf("supports = %v", d.Supports)
	}
}

func TestExplainNaiveStrategy(t *testing.T) {
	en := mustEngine(t, shortestPathProg+"arc(a, b, 4).\n", Options{Strategy: Naive, Trace: true})
	if _, _, err := en.Solve(nil); err != nil {
		t.Fatal(err)
	}
	d, ok := en.Explain("s", []val.T{val.Symbol("a"), val.Symbol("b")})
	if !ok || !strings.Contains(d.Rule, "min") {
		t.Fatalf("naive tracing broken: %v %v", d, ok)
	}
}
