package core

import (
	"errors"
	"fmt"

	"repro/internal/ast"
	"repro/internal/deps"
	"repro/internal/relation"
	"repro/internal/val"
	"repro/internal/wfs"
)

// solveWFSComponent evaluates a non-admissible component under the
// Kemp–Stuckey well-founded semantics, implementing the lowest rung of
// §6.3's iterated construction: "at the lowest level in the component
// hierarchy, we assume that the program is either monotonic, or has a
// two-valued well-founded model". The component's LDB (everything
// computed below it) is shipped to the WFS engine as facts; the
// well-founded model must be two-valued on the component's predicates,
// and its true atoms become part of the base interpretation I for the
// components above.
func (en *Engine) solveWFSComponent(g *guard, db *relation.DB, ci int, stats *Stats) error {
	c := en.comps[ci]
	rules := deps.RulesOfComponent(en.Prog, c)
	sub := &ast.Program{Rules: append([]*ast.Rule{}, rules...)}

	_, ldb := deps.Split(en.Prog, c)
	for k := range ldb {
		pi := en.Schemas.Info(k)
		if pi != nil && pi.HasDefault {
			return fmt.Errorf("core: well-founded fallback cannot evaluate component %v: it reads the default-value predicate %s (the set-based comparator has no virtual rows)", c.Preds, k)
		}
		if !db.Has(k) {
			continue
		}
		db.Rel(k).Each(func(row relation.Row) bool {
			args := make([]ast.Term, 0, len(row.Args)+1)
			for _, a := range row.Args {
				args = append(args, ast.Const{V: a})
			}
			if row.HasCost {
				args = append(args, ast.Const{V: row.Cost})
			}
			sub.Rules = append(sub.Rules, &ast.Rule{Head: ast.Atom{Pred: k.Name(), Args: args}})
			return true
		})
	}

	res, err := wfs.SolveContext(g.ctx, sub, wfs.Options{})
	if err != nil {
		// Limit breaches keep their structured class; everything else
		// (e.g. a genuinely three-valued model) stays a plain error.
		for _, class := range []error{ErrCanceled, ErrBudgetExceeded, ErrDiverged} {
			if errors.Is(err, class) {
				return g.fail(class, err)
			}
		}
		return fmt.Errorf("core: well-founded fallback on component %v: %w", c.Preds, err)
	}
	stats.Rounds += res.Iterations

	// §6.3 requires the well-founded model to be two-valued here.
	for _, k := range c.Preds {
		var undef []val.T
		res.Possible.Each(k, func(args []val.T) bool {
			if !res.True.Has(k, args) {
				undef = args
				return false
			}
			return true
		})
		if undef != nil {
			return fmt.Errorf("core: component %v has no two-valued well-founded model (%s%v is undefined); the iterated semantics of §6.3 is not defined for this input", c.Preds, k.Name(), undef)
		}
	}

	// Inject the component's true atoms into the interpretation.
	for _, k := range c.Preds {
		pi := en.Schemas.Info(k)
		rel := db.Rel(k)
		var ierr error
		res.True.Each(k, func(args []val.T) bool {
			if pi != nil && pi.HasCost {
				if len(args) == 0 {
					ierr = fmt.Errorf("core: fallback derived %s with no cost argument", k)
					return false
				}
				cost, err := pi.L.Parse(args[len(args)-1])
				if err != nil {
					ierr = fmt.Errorf("core: fallback derived %s with bad cost: %v", k, err)
					return false
				}
				if err := rel.InsertStrict(args[:len(args)-1], cost); err != nil {
					ierr = err
					return false
				}
				return true
			}
			rel.InsertJoin(args, val.T{})
			return true
		})
		if ierr != nil {
			return ierr
		}
	}
	return nil
}
