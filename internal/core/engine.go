package core

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/consistency"
	"repro/internal/deps"
	"repro/internal/exec"
	"repro/internal/lattice"
	"repro/internal/monotone"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/safety"
	"repro/internal/val"
)

// Strategy selects the fixpoint algorithm of §6.2.
type Strategy int

// SemiNaive accumulates the interpretation and refires only rule
// instances touching changed CDB atoms; Naive recomputes T_P from scratch
// each round (the literal Definition 3.7 iteration).
const (
	SemiNaive Strategy = iota
	Naive
)

// Options configures an Engine.
type Options struct {
	Strategy Strategy
	// MaxRounds bounds the fixpoint iteration per component; 0 means the
	// default (1 << 20). Programs whose least fixpoint lies at ω
	// (Example 5.1) exhaust any bound unless Epsilon is set.
	MaxRounds int
	// Epsilon treats numeric cost improvements smaller than it as
	// convergence — the practical device for ω-limit programs (§6.2).
	Epsilon float64
	// SkipChecks disables the static analyses (safety, conflict-freedom,
	// admissibility). Experiments on deliberately non-monotonic programs
	// (e.g. the two-minimal-model example of §3) use this.
	SkipChecks bool
	// StrictConflicts uses InsertStrict during each T_P application,
	// surfacing runtime cost-consistency violations (only meaningful with
	// Strategy == Naive, where each application is computed fresh).
	StrictConflicts bool
	// WFSFallback enables the full iterated construction of §6.3: a
	// component that is not admissible (e.g. it recurses through
	// negation) is evaluated under the Kemp–Stuckey well-founded
	// semantics instead; its well-founded model must be two-valued, and
	// becomes the base interpretation for the components above it.
	WFSFallback bool
	// DisableGroupDelta turns off the Δ-driven aggregate group
	// restriction in the semi-naive strategy (ablation switch; see
	// BenchmarkGroupDeltaAblation).
	DisableGroupDelta bool
	// Trace records, for every derived tuple, the rule and ground body
	// of its last improvement, queryable through Explain/ExplainTree.
	Trace bool
	// Profile enables per-operator counters in the streaming executor
	// (rows in/out, probes, hash-build sizes, Δ sizes, changed groups
	// per γ), read back through Engine.Profile — the EXPLAIN ANALYZE
	// data. It has no effect on the tuple interpreter, and off (the
	// default) the executor pays one nil check per counted event.
	Profile bool
	// Sink, when non-nil, receives the typed event stream of every
	// solve (see package obs). The engine emits behind a nil check, so
	// leaving it nil keeps the evaluation path at full speed.
	Sink obs.Sink
	// Limits bounds every Solve: derivation budget, wall-clock
	// deadline, cancellation-poll granularity and the ω-limit
	// divergence threshold. SolveLimits can override them per call.
	Limits
}

// Engine evaluates a program bottom-up, one component at a time (§6.3).
type Engine struct {
	Prog    *ast.Program
	Schemas ast.Schemas
	// Report is the static classification (set even when checks pass).
	Report monotone.Report
	opts   Options
	comps  []*deps.Component
	plans  [][]*plan // per component
	// compAdm holds the per-component admissibility verdict; wfsComp
	// marks components evaluated by the well-founded fallback (§6.3).
	compAdm []error
	wfsComp []bool
	// compPreds renders each component's predicate list once at compile
	// time, so events and stats never format in the fixpoint loops.
	compPreds []string
	// nrules is the number of compiled plans across all components;
	// plans carry engine-global indices into Stats.Rules.
	nrules int
	// compDeps and compLDB drive the parallel scheduler: per component,
	// the (sorted) indices of the lower components it depends on, and
	// the (sorted) lower-defined predicates its rules read.
	compDeps [][]int
	compLDB  [][]ast.PredKey
	// sink is Options.Sink (nil = no event emission).
	sink obs.Sink
	// exe is the executor resolved for the current solve (set at the top
	// of fixpoint / fixpointParallel / SolveMoreFrom, before any pass
	// constructs a runner). Engines are not safe for concurrent solves,
	// so a per-solve field is sufficient. plan is the planner resolved
	// the same way: PlanCost makes each semi-naive component install
	// cost-based physicals (plancost.go) before its fixpoint starts.
	exe  Executor
	plan Plan
	// prof is the per-rule per-step operator-counter table, allocated at
	// New when Options.Profile is set (nil otherwise). Counters are
	// atomic because speculative parallel passes fold concurrently; they
	// accumulate over the engine's lifetime — Profile snapshots, and
	// Profile.Sub produces per-solve deltas.
	prof [][]exec.OpAccum
	// trace holds the provenance of the most recent traced Solve.
	trace map[string]*Derivation
}

// New compiles and (unless opts.SkipChecks) statically validates a
// program: range restriction (Definition 2.5), conflict-freedom
// (Definition 2.10) and componentwise admissibility (Definition 4.5).
func New(prog *ast.Program, opts Options) (*Engine, error) {
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 1 << 20
	}
	schemas, err := ast.BuildSchemas(prog)
	if err != nil {
		return nil, err
	}
	if err := ast.ValidateProgram(prog, schemas); err != nil {
		return nil, err
	}
	// The sink is mutex-wrapped once at construction: parallel solves
	// emit from several goroutines, and the wrapper keeps plain sinks
	// correct there at the cost of one uncontended lock per event.
	en := &Engine{Prog: prog, Schemas: schemas, opts: opts, sink: obs.Locked(opts.Sink)}
	if !opts.SkipChecks {
		if err := safety.CheckProgram(prog, schemas); err != nil {
			return nil, err
		}
		if err := consistency.ConflictFree(prog, schemas); err != nil {
			return nil, err
		}
	}
	en.Report = monotone.CheckProgram(prog, schemas)
	g := deps.Build(prog)
	en.comps = g.SCCs()
	for _, c := range en.comps {
		parts := make([]string, len(c.Preds))
		for i, k := range c.Preds {
			parts[i] = string(k)
		}
		en.compPreds = append(en.compPreds, strings.Join(parts, ","))
		cdb, ldb := deps.Split(prog, c)
		lk := make([]ast.PredKey, 0, len(ldb))
		for k := range ldb {
			lk = append(lk, k)
		}
		sort.Slice(lk, func(i, j int) bool { return lk[i] < lk[j] })
		en.compLDB = append(en.compLDB, lk)
		rules := deps.RulesOfComponent(prog, c)
		cx := &monotone.Context{Schemas: schemas, CDB: cdb}
		var admErr error
		for _, r := range rules {
			if err := cx.CheckAdmissible(r); err != nil {
				admErr = err
				break
			}
		}
		en.compAdm = append(en.compAdm, admErr)
		useWFS := admErr != nil && opts.WFSFallback
		en.wfsComp = append(en.wfsComp, useWFS)
		if admErr != nil && !useWFS && !opts.SkipChecks {
			return nil, fmt.Errorf("core: program is not admissible (its least fixpoint may not exist): %w", admErr)
		}
		if useWFS {
			en.plans = append(en.plans, nil)
			continue
		}
		comp := &compiler{schemas: schemas, cdb: cdb}
		var ps []*plan
		for _, r := range rules {
			p, err := comp.compileRule(r)
			if err != nil {
				return nil, err
			}
			// Engine-global rule index and cached text: the hot loops
			// attribute per-rule stats and emit events without ever
			// formatting the rule.
			p.idx = en.nrules
			p.text = r.String()
			en.nrules++
			ps = append(ps, p)
		}
		en.plans = append(en.plans, ps)
	}
	// Component dependency edges (for the parallel scheduler): ci
	// depends on every distinct lower component defining a predicate
	// its predicates reach. SCCs returns bottom-up order, so every
	// dependency has a smaller index and the DAG is acyclic by
	// construction.
	if opts.Profile {
		en.prof = make([][]exec.OpAccum, en.nrules)
		for _, ps := range en.plans {
			for _, p := range ps {
				en.prof[p.idx] = make([]exec.OpAccum, len(p.steps))
			}
		}
	}
	cidx := deps.ComponentIndex(en.comps)
	en.compDeps = make([][]int, len(en.comps))
	for ci, c := range en.comps {
		seen := map[int]bool{}
		for _, p := range c.Preds {
			for q := range g.Edges[p] {
				if qi, ok := cidx[q]; ok && qi != ci && !seen[qi] {
					seen[qi] = true
					en.compDeps[ci] = append(en.compDeps[ci], qi)
				}
			}
		}
		sort.Ints(en.compDeps[ci])
	}
	return en, nil
}

// Solve computes the iterated minimal model: the least fixpoint of T_P
// for each component in bottom-up order, starting from the EDB.
func (en *Engine) Solve(edb *relation.DB) (*relation.DB, Stats, error) {
	return en.SolveContext(context.Background(), edb)
}

// SolveContext is Solve with cooperative cancellation: the fixpoint
// loops poll ctx (and the Options limits) and stop with an *EngineError
// wrapping ErrCanceled, ErrBudgetExceeded or ErrDiverged. On any such
// failure the partial interpretation computed so far is returned
// alongside the error and the Stats, so no work is discarded.
func (en *Engine) SolveContext(ctx context.Context, edb *relation.DB) (*relation.DB, Stats, error) {
	return en.SolveLimits(ctx, edb, en.opts.Limits)
}

// SolveLimits is SolveContext with per-call limit overrides.
func (en *Engine) SolveLimits(ctx context.Context, edb *relation.DB, lim Limits) (*relation.DB, Stats, error) {
	db := relation.NewDB(en.Schemas)
	if edb != nil {
		db.Join(edb)
	}
	return en.fixpoint(ctx, db, lim, Stats{})
}

// Resume continues a fixpoint from a previously checkpointed
// interpretation (see Limits.Checkpoint): the components are re-run
// bottom-up starting from prev instead of from the bare EDB. Because
// T_P is monotone, every checkpoint lies between the EDB and the least
// model, so the resumed fixpoint converges to exactly the model an
// uninterrupted solve would have produced. base seeds the returned
// Stats so rounds/firings/derivations stay cumulative across resumes
// (pass the stats recorded in the checkpoint).
//
// The caller is responsible for resuming against the same program the
// checkpoint came from; the snapshot layer's fingerprint enforces this
// for durable checkpoints.
func (en *Engine) Resume(ctx context.Context, prev *relation.DB, lim Limits, base Stats) (*relation.DB, Stats, error) {
	// Re-home the checkpointed rows onto this engine's schemas: Join
	// rebuilds each relation under the engine's own PredInfo, so a DB
	// decoded with foreign schema objects cannot leak them into the
	// evaluation.
	db := relation.NewDB(en.Schemas)
	if prev != nil {
		db.Join(prev)
	}
	return en.fixpoint(ctx, db, lim, base)
}

// fixpoint runs the iterated fixpoint of §6.3 over db in place,
// starting the stats from base.
func (en *Engine) fixpoint(ctx context.Context, db *relation.DB, lim Limits, base Stats) (_ *relation.DB, _ Stats, err error) {
	en.exe = resolveExecutor(lim)
	en.plan = resolvePlan(lim)
	en.resetPlans()
	if par := effectiveParallelism(lim); par > 1 {
		return en.fixpointParallel(ctx, db, lim, base, par)
	}
	if lim.MaxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.MaxDuration)
		defer cancel()
	}
	en.trace = nil
	stats := base.Clone()
	en.ensureStats(&stats)
	g := newGuard(ctx, lim, &stats)
	g.sink = en.sink
	if en.sink != nil {
		start := time.Now()
		en.sink.Event(obs.Event{Kind: obs.SolveBegin, Component: -1})
		defer func() {
			e := obs.Event{Kind: obs.SolveEnd, Component: -1, Round: stats.Rounds,
				Firings: stats.Firings, Derived: stats.Derived, Probes: stats.Probes,
				Nanos: time.Since(start).Nanoseconds()}
			if err != nil {
				e.Err = err.Error()
			}
			en.sink.Event(e)
		}()
	}
	// Checkpoint the starting interpretation before any evaluation, so
	// the sink holds a recoverable state even if the very first round
	// is interrupted.
	if err := g.checkpoint(db, true); err != nil {
		return db, stats, err
	}
	for ci, c := range en.comps {
		ps := en.plans[ci]
		if !en.wfsComp[ci] && len(ps) == 0 {
			continue // EDB-only component
		}
		g.comp, g.rule = c.Preds, nil
		stats.Components++
		cerr := en.runInstrumented(g, db, ci, c, ps, &stats)
		if cerr != nil {
			return db, stats, cerr
		}
		// A component fixpoint is the strongest consistency boundary:
		// always durable when checkpointing is on.
		if err := g.checkpoint(db, true); err != nil {
			return db, stats, err
		}
	}
	return db, stats, nil
}

// runInstrumented evaluates one component inside the panic-recovery
// boundary, attributing its work to the per-component breakdown and
// emitting the ComponentBegin/ComponentEnd events.
func (en *Engine) runInstrumented(g *guard, db *relation.DB, ci int, c *deps.Component, ps []*plan, stats *Stats) error {
	cs := &stats.Comps[ci]
	if en.sink != nil {
		en.sink.Event(obs.Event{Kind: obs.ComponentBegin, Component: ci,
			Preds: cs.Preds, WFS: cs.WFS, Admissible: cs.Admissible})
	}
	r0, f0, d0, p0 := stats.Rounds, stats.Firings, stats.Derived, stats.Probes
	t0 := time.Now()
	err := en.runComponent(g, func() error {
		if en.wfsComp[ci] {
			return en.solveWFSComponent(g, db, ci, stats)
		}
		if en.opts.Strategy == Naive {
			return en.solveNaive(g, db, ci, c, ps, stats)
		}
		return en.solveSemiNaive(g, db, ci, c, ps, stats)
	})
	cs.Rounds += stats.Rounds - r0
	cs.Firings += stats.Firings - f0
	cs.Derived += stats.Derived - d0
	cs.Probes += stats.Probes - p0
	cs.Nanos += time.Since(t0).Nanoseconds()
	if en.sink != nil {
		e := obs.Event{Kind: obs.ComponentEnd, Component: ci,
			Preds: cs.Preds, WFS: cs.WFS, Admissible: cs.Admissible,
			Round: cs.Rounds, Firings: cs.Firings, Derived: cs.Derived,
			Probes: cs.Probes, Nanos: cs.Nanos}
		if err != nil {
			e.Err = err.Error()
		}
		en.sink.Event(e)
	}
	return err
}

// runComponent wraps one component's evaluation in a recover boundary:
// an internal panic (an engine bug, or a pathological program tripping
// one) becomes an *EngineError wrapping ErrInternal with rule/round
// context instead of crashing the host process.
func (en *Engine) runComponent(g *guard, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			e := g.fail(ErrInternal, fmt.Errorf("panic: %v", r))
			e.Stack = debug.Stack()
			err = e
		}
	}()
	return fn()
}

// headTuple extracts the head instantiation from a completed environment.
func headTuple(p *plan, e *env) (args []val.T, cost lattice.Elem, err error) {
	hs := &p.head
	args = make([]val.T, len(hs.argVar))
	for j, v := range hs.argVar {
		if v >= 0 {
			args[j] = e.vals[v]
		} else {
			args[j] = hs.argVal[j]
		}
	}
	if hs.pi.HasCost {
		if hs.costVar >= 0 {
			cost = e.vals[hs.costVar]
		} else {
			cost = hs.costVal
		}
		if !hs.pi.L.Contains(cost) {
			return nil, lattice.Elem{}, fmt.Errorf("core: rule %q derived cost %s outside lattice %s",
				p.rule, cost, hs.pi.L.Name())
		}
	}
	return args, cost, nil
}

// headTupleInto is headTuple projecting into the plan's reusable head
// buffer. Callers that retain args beyond the immediate insert (the
// parallel scheduler's speculative buffers) must use headTuple instead.
func headTupleInto(p *plan, e *env) (args []val.T, cost lattice.Elem, err error) {
	hs := &p.head
	args = p.hbuf
	for j, v := range hs.argVar {
		if v >= 0 {
			args[j] = e.vals[v]
		} else {
			args[j] = hs.argVal[j]
		}
	}
	if hs.pi.HasCost {
		if hs.costVar >= 0 {
			cost = e.vals[hs.costVar]
		} else {
			cost = hs.costVal
		}
		if !hs.pi.L.Contains(cost) {
			return nil, lattice.Elem{}, fmt.Errorf("core: rule %q derived cost %s outside lattice %s",
				p.rule, cost, hs.pi.L.Name())
		}
	}
	return args, cost, nil
}

// solveNaive iterates J ← T_P(J, I) until lattice equality (within
// Epsilon) over the component's predicates.
func (en *Engine) solveNaive(g *guard, db *relation.DB, ci int, c *deps.Component, ps []*plan, stats *Stats) error {
	// EDB rows supplied for component predicates behave as part of I and
	// must survive the per-round relation replacement.
	seed := map[ast.PredKey]*relation.Relation{}
	for _, k := range c.Preds {
		if db.Has(k) && db.Rel(k).Len() > 0 {
			seed[k] = db.Rel(k).Clone()
		}
	}
	for round := 0; ; round++ {
		if round >= en.opts.MaxRounds {
			return g.maxRounds(en.opts.MaxRounds)
		}
		if err := g.poll(); err != nil {
			return err
		}
		stats.Rounds++
		roundDerived := stats.Derived
		out := relation.NewDB(db.Schemas)
		ev := newRunner(en.exe, db, 0, nil, nil, en.opts.Trace, g.check, en.prof)
		for _, p := range ps {
			p := p
			g.rule = p.rule
			rf0, rd0, rp0 := ev.fir(), stats.Derived, ev.pr()
			rt0 := time.Now()
			err := ev.run(p, func(e *env) error {
				args, cost, err := headTuple(p, e)
				if err != nil {
					return err
				}
				rel := out.Rel(p.head.pred)
				if en.opts.StrictConflicts {
					return rel.InsertStrict(args, cost)
				}
				if rel.InsertJoin(args, cost) {
					stats.Derived++
					if en.opts.Trace {
						en.recordTrace(p, e, args)
					}
					// Improvement relative to the previous round's
					// interpretation (a plain re-derivation of a known
					// tuple is budget work but not progress).
					cur, _ := rel.Get(args)
					old, had := db.Rel(p.head.pred).Get(args)
					improved := !had || (rel.Info.HasCost && !lattice.Eq(rel.Info.L, old.Cost, cur.Cost))
					if err := g.derived(p.head.pred, args, cur.Cost, rel.Info.HasCost, improved); err != nil {
						return err
					}
				}
				return nil
			})
			en.noteRule(&stats.Rules[p.idx], ci, round,
				ev.fir()-rf0, stats.Derived-rd0, ev.pr()-rp0, time.Since(rt0).Nanoseconds())
			if err != nil {
				return err
			}
		}
		stats.Firings += ev.fir()
		stats.Probes += ev.pr()
		if en.sink != nil {
			en.sink.Event(obs.Event{Kind: obs.RoundEnd, Component: ci, Round: round,
				Firings: ev.fir(), Derived: stats.Derived - roundDerived, Probes: ev.pr()})
		}
		for k, r := range seed {
			out.Rel(k).Join(r)
		}
		// Compare the new component relations against the current ones.
		same := true
		for _, k := range c.Preds {
			if !relEqualEps(out.Rel(k), db.Rel(k), en.opts.Epsilon) {
				same = false
				break
			}
		}
		for _, k := range c.Preds {
			db.SetRel(k, out.Rel(k))
		}
		if same {
			return nil
		}
		// db holds the completed round's interpretation: a consistent
		// checkpoint boundary.
		if err := g.roundBoundary(db); err != nil {
			return err
		}
	}
}

// deltaSet records changed rows per predicate with deduplication.
type deltaSet struct {
	rows map[ast.PredKey][]relation.Row
	seen map[ast.PredKey]map[string]bool
	// freeRows/freeSeen hold capacity recycled by reset, handed back out
	// as the same predicate reappears in later rounds (keyed by
	// predicate so the largest predicate keeps its large slice). Without
	// this every round regrows its row slices and dedup maps from
	// scratch, which is the second-largest bytes/op contributor after
	// relation storage itself.
	freeRows map[ast.PredKey][]relation.Row
	freeSeen map[ast.PredKey]map[string]bool
}

func newDeltaSet() *deltaSet {
	return &deltaSet{rows: map[ast.PredKey][]relation.Row{}, seen: map[ast.PredKey]map[string]bool{}}
}

func (d *deltaSet) add(k ast.PredKey, row relation.Row) {
	d.addKey(k, row, nil)
}

// addKey is add with the tuple key prebuilt by the caller (nil rebuilds
// it); the miss path converts once for map storage, the hit path does
// not allocate.
func (d *deltaSet) addKey(k ast.PredKey, row relation.Row, key []byte) {
	s := d.seenFor(k)
	if key == nil {
		key = val.AppendKeyOf(nil, row.Args)
	}
	if s[string(key)] {
		return
	}
	s[string(key)] = true
	d.append(k, row)
}

// addInterned is addKey with the relation's interned key string (from
// Relation.LookupKey), so even the miss path stores without allocating.
func (d *deltaSet) addInterned(k ast.PredKey, row relation.Row, key string) {
	s := d.seenFor(k)
	if s[key] {
		return
	}
	s[key] = true
	d.append(k, row)
}

func (d *deltaSet) seenFor(k ast.PredKey) map[string]bool {
	s := d.seen[k]
	if s == nil {
		if s = d.freeSeen[k]; s != nil {
			delete(d.freeSeen, k)
		} else {
			s = map[string]bool{}
		}
		d.seen[k] = s
	}
	return s
}

func (d *deltaSet) append(k ast.PredKey, row relation.Row) {
	rs, ok := d.rows[k]
	if !ok {
		if free, has := d.freeRows[k]; has {
			rs = free
			delete(d.freeRows, k)
		}
	}
	d.rows[k] = append(rs, row)
}

// reset clears d for reuse by a later round while retaining allocated
// capacity on the free lists. Only a set no evaluator still references
// may be reset — i.e. the previous round's Δ after its round completed.
func (d *deltaSet) reset() {
	if d.freeRows == nil {
		d.freeRows = map[ast.PredKey][]relation.Row{}
		d.freeSeen = map[ast.PredKey]map[string]bool{}
	}
	for k, rs := range d.rows {
		d.freeRows[k] = rs[:0]
		delete(d.rows, k)
	}
	for k, s := range d.seen {
		clear(s)
		d.freeSeen[k] = s
		delete(d.seen, k)
	}
}

func (d *deltaSet) empty() bool { return len(d.rows) == 0 }

// preds returns the changed predicates in deterministic order.
func (d *deltaSet) preds() []ast.PredKey {
	out := make([]ast.PredKey, 0, len(d.rows))
	for k := range d.rows {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// solveSemiNaive accumulates the interpretation and refires only rules
// whose CDB inputs changed: rules with positive CDB scans run once per
// changed-scan seed; rules referencing CDB predicates inside aggregates
// re-run (group-restricted where possible) when such a predicate changed.
func (en *Engine) solveSemiNaive(g *guard, db *relation.DB, ci int, c *deps.Component, ps []*plan, stats *Stats) error {
	return en.semiNaiveLoop(g, db, ci, ps, stats, nil, nil)
}

// semiNaiveLoop runs the Δ-driven fixpoint. When init is nil, round 0
// fires every rule (the fresh-solve case); otherwise init seeds the Δ set
// (the incremental SolveMore case, where init holds newly added EDB rows
// and derivations recorded by lower components). record, when non-nil,
// mirrors every derived change outward (for cross-component seeding).
func (en *Engine) semiNaiveLoop(g *guard, db *relation.DB, ci int, ps []*plan, stats *Stats, init *deltaSet, record func(ast.PredKey, relation.Row)) error {
	// Install cost-based physical plans for this component when the
	// solve runs with PlanCost (nil — and inert — otherwise). CSE is
	// disabled on incremental continuations: their Δ seeds can drive
	// restricted passes over EDB scans a shared buffer would fold away.
	cp := en.planComponent(db, ps, init == nil)
	delta := newDeltaSet()
	// insert derives through per-closure scratch: the head projection
	// lands in the plan's hbuf and the tuple key is built once into kbuf,
	// shared by the eps check, the relation insert and the Δ-set dedup.
	// Everything retained beyond this call (Δ rows, trace, records) comes
	// from the stored row, whose args the relation copied on first insert.
	var kbuf []byte
	insert := func(p *plan, e *env) error {
		args, cost, err := headTupleInto(p, e)
		if err != nil {
			return err
		}
		rel := db.Rel(p.head.pred)
		kbuf = val.AppendKeyOf(kbuf[:0], args)
		if insertEpsKey(rel, kbuf, args, cost, en.opts.Epsilon) {
			stats.Derived++
			row, ik, _ := rel.LookupKey(kbuf)
			delta.addInterned(p.head.pred, row, ik)
			if record != nil {
				record(p.head.pred, row)
			}
			if en.opts.Trace {
				en.recordTrace(p, e, row.Args)
			}
			if err := g.derived(p.head.pred, row.Args, row.Cost, rel.Info.HasCost, true); err != nil {
				return err
			}
		}
		return nil
	}

	if init == nil {
		// Round 0: fire everything.
		if err := g.poll(); err != nil {
			return err
		}
		stats.Rounds++
		rd0 := stats.Derived
		ev := newRunner(en.exe, db, 0, nil, nil, en.opts.Trace, g.check, en.prof)
		for _, p := range ps {
			p := p
			g.rule = p.rule
			f0, d0, p0 := ev.fir(), stats.Derived, ev.pr()
			t0 := time.Now()
			err := ev.run(p, func(e *env) error { return insert(p, e) })
			en.noteRule(&stats.Rules[p.idx], ci, 0,
				ev.fir()-f0, stats.Derived-d0, ev.pr()-p0, time.Since(t0).Nanoseconds())
			if err != nil {
				return err
			}
		}
		stats.Firings += ev.fir()
		stats.Probes += ev.pr()
		if en.sink != nil {
			en.sink.Event(obs.Event{Kind: obs.RoundEnd, Component: ci, Round: 0,
				Firings: ev.fir(), Derived: stats.Derived - rd0, Probes: ev.pr()})
		}
		if err := g.roundBoundary(db); err != nil {
			return err
		}
		cp.maybeReplan()
	} else {
		delta = init
	}

	// Rounds ping-pong between two Δ sets: the previous round's set is
	// reset (retaining capacity) and becomes the next round's, so the
	// fixpoint stops regrowing Δ storage every round. The caller-owned
	// init set is never recycled.
	var spare *deltaSet
	for round := 1; !delta.empty(); round++ {
		if round >= en.opts.MaxRounds {
			return g.maxRounds(en.opts.MaxRounds)
		}
		if err := g.poll(); err != nil {
			return err
		}
		stats.Rounds++
		roundF, roundD, roundP := stats.Firings, stats.Derived, stats.Probes
		prev := delta
		if spare != nil {
			delta, spare = spare, nil
		} else {
			delta = newDeltaSet()
		}
		changedPreds := prev.preds()
		for _, p := range ps {
			p := p
			g.rule = p.rule
			// Decide up front which passes this rule needs so a rule
			// untouched by the Δ set costs nothing (not even a clock
			// read).
			runAgg := aggPredChanged(p, prev)
			ph := p.ph()
			hasScan := false
			for _, k := range changedPreds {
				if len(ph.scanSteps[k]) > 0 {
					hasScan = true
					break
				}
			}
			if !runAgg && !hasScan {
				continue
			}
			f0, d0, p0 := stats.Firings, stats.Derived, stats.Probes
			t0 := time.Now()
			var perr error
			ranFull := false
			if runAgg {
				// Aggregate-driven re-run when an aggregated predicate
				// changed: restricted to the changed groups when every
				// grouping variable can be recovered from the changed
				// rows, otherwise a full re-run (which then also covers
				// the scan deltas below).
				groups, restricted := changedGroups(ph.steps, prev)
				if en.opts.DisableGroupDelta {
					groups, restricted = nil, false
				}
				ev := newRunner(en.exe, db, 0, nil, groups, en.opts.Trace, g.check, en.prof)
				perr = ev.run(p, func(e *env) error { return insert(p, e) })
				stats.Firings += ev.fir()
				stats.Probes += ev.pr()
				ranFull = !restricted
			}
			if perr == nil && !ranFull && hasScan {
				// Scan-driven delta runs: one pass per changed scanned
				// predicate (CDB during a fresh solve; possibly EDB when
				// seeded incrementally).
			scans:
				for _, k := range changedPreds {
					rows := prev.rows[k]
					for _, si := range ph.scanSteps[k] {
						ev := newRunner(en.exe, db, si, rows, nil, en.opts.Trace, g.check, en.prof)
						perr = ev.run(p, func(e *env) error { return insert(p, e) })
						stats.Firings += ev.fir()
						stats.Probes += ev.pr()
						if perr != nil {
							break scans
						}
					}
				}
			}
			en.noteRule(&stats.Rules[p.idx], ci, round,
				stats.Firings-f0, stats.Derived-d0, stats.Probes-p0, time.Since(t0).Nanoseconds())
			if perr != nil {
				return perr
			}
		}
		if en.sink != nil {
			en.sink.Event(obs.Event{Kind: obs.RoundEnd, Component: ci, Round: round,
				Firings: stats.Firings - roundF, Derived: stats.Derived - roundD, Probes: stats.Probes - roundP})
		}
		if err := g.roundBoundary(db); err != nil {
			return err
		}
		cp.maybeReplan()
		if prev != init {
			prev.reset()
			spare = prev
		}
	}
	return nil
}

// changedGroups computes, per aggregate step of the given (physical)
// step arrangement, the groups whose multisets may have changed given
// the Δ set. restricted is false when some changed conjunct cannot be
// projected onto the full group key (the caller then treats the run as
// unrestricted). The returned map is keyed by step position in the
// arrangement passed in, matching the runner's AggGroups keying.
func changedGroups(steps []step, d *deltaSet) (map[int]map[string]exec.GroupRef, bool) {
	out := map[int]map[string]exec.GroupRef{}
	// Group keys are built into a per-call scratch buffer and the group
	// values are references into the Δ rows' relation-owned argument
	// tuples (exec.GroupRef), so the only per-group allocation is the
	// interned map key for new entries. Anything else here runs once per
	// Δ row per round and shows up directly in allocs/op.
	var kbuf []byte
	for si, s := range steps {
		ag, ok := s.(*aggStep)
		if !ok {
			continue
		}
		touched := false
		keys := ag.groupScratch
		if keys == nil {
			keys = map[string]exec.GroupRef{}
			ag.groupScratch = keys
		} else {
			clear(keys)
		}
		for ci, sp := range ag.conj {
			rows := d.rows[sp.pred]
			if len(rows) == 0 {
				continue
			}
			pos := ag.groupKeyPos[ci]
			if pos == nil {
				return nil, false
			}
			touched = true
			for _, row := range rows {
				kbuf = kbuf[:0]
				for j, pidx := range pos {
					if j > 0 {
						kbuf = append(kbuf, 0)
					}
					kbuf = val.AppendKey(kbuf, row.Args[pidx])
				}
				if _, dup := keys[string(kbuf)]; dup {
					continue
				}
				ik, ok := ag.groupKeys[string(kbuf)]
				if !ok {
					ik = string(kbuf)
					if ag.groupKeys == nil {
						ag.groupKeys = map[string]string{}
					}
					ag.groupKeys[ik] = ik
				}
				keys[ik] = exec.GroupRef{Args: row.Args, Pos: pos}
			}
		}
		if touched {
			out[si] = keys
		}
	}
	return out, true
}

func aggPredChanged(p *plan, d *deltaSet) bool {
	for _, s := range p.steps {
		ag, ok := s.(*aggStep)
		if !ok {
			continue
		}
		for _, sp := range ag.conj {
			if len(d.rows[sp.pred]) > 0 {
				return true
			}
		}
	}
	return false
}

// insertEps is InsertJoin with numeric convergence tolerance: an
// improvement smaller than eps does not count as a change.
func insertEps(rel *relation.Relation, args []val.T, cost lattice.Elem, eps float64) bool {
	return insertEpsKey(rel, val.AppendKeyOf(nil, args), args, cost, eps)
}

// insertEpsKey is insertEps with the tuple key prebuilt by the caller,
// so the hot insert path encodes the key exactly once.
func insertEpsKey(rel *relation.Relation, key []byte, args []val.T, cost lattice.Elem, eps float64) bool {
	if eps > 0 {
		if old, ok := rel.GetKey(key); ok && old.HasCost && old.Cost.Kind == val.Num && cost.Kind == val.Num {
			j := rel.Info.L.Join(old.Cost, cost)
			if math.Abs(j.N-old.Cost.N) <= eps {
				return false
			}
		}
	}
	return rel.InsertJoinKey(key, args, cost)
}

// EqualEps compares two interpretations with numeric tolerance eps on
// cost values (useful when comparing results of evaluation strategies
// whose float rounding may differ by an ulp).
func EqualEps(a, b *relation.DB, eps float64) bool {
	seen := map[ast.PredKey]bool{}
	for _, k := range append(a.Preds(), b.Preds()...) {
		if seen[k] {
			continue
		}
		seen[k] = true
		if !relEqualEps(a.Rel(k), b.Rel(k), eps) {
			return false
		}
	}
	return true
}

// relEqualEps compares two relations with numeric tolerance.
func relEqualEps(a, b *relation.Relation, eps float64) bool {
	return relLeqEps(a, b, eps) && relLeqEps(b, a, eps)
}

func relLeqEps(a, b *relation.Relation, eps float64) bool {
	ok := true
	a.Each(func(row relation.Row) bool {
		o, found := b.GetOrDefault(row.Args)
		if !found {
			ok = false
			return false
		}
		if !row.HasCost {
			return true
		}
		if a.Info.L.Leq(row.Cost, o.Cost) {
			return true
		}
		if eps > 0 && row.Cost.Kind == val.Num && o.Cost.Kind == val.Num &&
			math.Abs(row.Cost.N-o.Cost.N) <= eps {
			return true
		}
		ok = false
		return false
	})
	return ok
}
