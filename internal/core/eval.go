package core

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/lattice"
	"repro/internal/relation"
	"repro/internal/val"
)

// relationRow aliases relation.Row for the inner enumeration loops.
type relationRow = relation.Row

// env is a runtime binding of plan variables.
type env struct {
	vals  []val.T
	bound []bool
	// aggSupports records, per aggregate step index, the contributing
	// ground atoms of the group currently being emitted (tracing only).
	aggSupports map[int][]Support
}

func newEnv(n int) *env {
	return &env{vals: make([]val.T, n), bound: make([]bool, n)}
}

func (e *env) reset() {
	for i := range e.bound {
		e.bound[i] = false
	}
}

// evaluator runs plans against a database.
type evaluator struct {
	db *relation.DB
	// restrict, when non-nil, restricts the scan at step restrictStep of
	// the driving plan to the given rows (the semi-naive Δ set).
	restrictStep int
	restrictRows []relation.Row
	// aggGroups, when non-nil for a step index, restricts that aggregate
	// step to the given groups (key string -> grouping values), the
	// semi-naive Δ-driven restriction.
	aggGroups map[int]map[string]exec.GroupRef
	// trace makes aggregate steps record their contributing atoms into
	// the environment for provenance capture.
	trace bool
	// check, when non-nil, is polled on every firing (the guard
	// rate-limits the actual cancellation test), so one long round
	// cannot outrun a deadline or a Ctrl-C.
	check func() error
	// stats counters: completed body enumerations, and join probes
	// (rows offered by scans and point lookups before binding filters).
	firings int64
	probes  int64
}

// run enumerates every satisfying assignment of the plan body and calls
// emit with the completed environment. Evaluation walks the currently
// installed physical arrangement (plan.ph()); the cost planner also
// drives step directly over prefixes when materializing CSE buffers.
func (ev *evaluator) run(p *plan, emit func(*env) error) error {
	e := newEnv(p.nvars)
	return ev.step(p.ph().steps, 0, e, emit)
}

func (ev *evaluator) step(steps []step, i int, e *env, emit func(*env) error) error {
	if i == len(steps) {
		ev.firings++
		if ev.check != nil {
			if err := ev.check(); err != nil {
				return err
			}
		}
		return emit(e)
	}
	switch s := steps[i].(type) {
	case *scanStep:
		next := func(row relation.Row) error {
			saved, ok := bindAtom(&s.atomSpec, row, e)
			if !ok {
				return nil
			}
			err := ev.step(steps, i+1, e, emit)
			unbind(e, saved)
			return err
		}
		if ev.restrictRows != nil && i == ev.restrictStep {
			rel := ev.db.Rel(s.pred)
			for _, row := range ev.restrictRows {
				// Re-fetch the current cost: the Δ row may have been
				// improved again later in the same round.
				if cur, ok := rel.Get(row.Args); ok {
					row = cur
				}
				ev.probes++
				if err := next(row); err != nil {
					return err
				}
			}
			return nil
		}
		return ev.scan(&s.atomSpec, e, next)
	case *negStep:
		ok, err := ev.negSatisfied(&s.atomSpec, e)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return ev.step(steps, i+1, e, emit)
	case *builtinStep:
		ok, saved, err := ev.builtin(s, e)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		err = ev.step(steps, i+1, e, emit)
		unbind(e, saved)
		return err
	case *aggStep:
		return ev.aggregate(s, i, ev.aggGroups[i], e, func() error { return ev.step(steps, i+1, e, emit) })
	case *bufferStep:
		return ev.buffer(steps, i, s, e, emit)
	}
	return fmt.Errorf("core: unknown step type %T", steps[i])
}

// buffer replays a materialized CSE prefix (plancost.go): each row
// binds the buffer's variables like the folded scans would have,
// counting one probe per row offered.
func (ev *evaluator) buffer(steps []step, i int, b *bufferStep, e *env, emit func(*env) error) error {
	for _, row := range b.rows {
		ev.probes++
		saved := b.sbuf[:0]
		ok := true
		for j, v := range b.vars {
			if e.bound[v] {
				if !val.Equal(e.vals[v], row[j]) {
					ok = false
					break
				}
				continue
			}
			e.vals[v] = row[j]
			e.bound[v] = true
			saved = append(saved, v)
		}
		if !ok {
			unbind(e, saved)
			continue
		}
		err := ev.step(steps, i+1, e, emit)
		unbind(e, saved)
		if err != nil {
			return err
		}
	}
	return nil
}

// scan enumerates rows of the atom's relation matching the bound part of
// the environment. Default-value predicates perform a point lookup
// (GetOrDefault); the planner guarantees their non-cost args are bound.
func (ev *evaluator) scan(sp *atomSpec, e *env, f func(relation.Row) error) error {
	rel := ev.db.Rel(sp.pred)
	if sp.pi.HasDefault {
		args := sp.abuf
		for j, v := range sp.argVar {
			if v >= 0 {
				args[j] = e.vals[v]
			} else {
				args[j] = sp.argVal[j]
			}
		}
		sp.kbuf = val.AppendKeyOf(sp.kbuf[:0], args)
		row, ok := rel.GetKey(sp.kbuf)
		if !ok {
			// Default-value predicates always have a value: the bottom row
			// (§2.3.2).
			row = relation.Row{Args: args, Cost: sp.pi.L.Bottom(), HasCost: true}
		}
		ev.probes++
		return f(row)
	}
	pattern := sp.pat
	for j, v := range sp.argVar {
		switch {
		case v < 0:
			pattern[j] = &sp.argVal[j]
		case e.bound[v]:
			pattern[j] = &e.vals[v]
		default:
			pattern[j] = nil
		}
	}
	var ferr error
	rel.Match(pattern, func(row relation.Row) bool {
		ev.probes++
		if err := f(row); err != nil {
			ferr = err
			return false
		}
		return true
	})
	return ferr
}

// bindAtom unifies a row with the atom spec under e, returning the list
// of variable indices newly bound (for backtracking) and whether the row
// matches.
func bindAtom(sp *atomSpec, row relation.Row, e *env) (saved []int, ok bool) {
	saved = sp.sbuf[:0]
	for j, v := range sp.argVar {
		got := row.Args[j]
		if v < 0 {
			if !val.Equal(sp.argVal[j], got) {
				unbind(e, saved)
				return nil, false
			}
			continue
		}
		if e.bound[v] {
			if !val.Equal(e.vals[v], got) {
				unbind(e, saved)
				return nil, false
			}
			continue
		}
		e.vals[v] = got
		e.bound[v] = true
		saved = append(saved, v)
	}
	if sp.pi.HasCost {
		got := row.Cost
		if sp.costVar < 0 {
			if !lattice.Eq(sp.pi.L, sp.costVal, got) {
				unbind(e, saved)
				return nil, false
			}
		} else if e.bound[sp.costVar] {
			if !lattice.Eq(sp.pi.L, e.vals[sp.costVar], got) {
				unbind(e, saved)
				return nil, false
			}
		} else {
			e.vals[sp.costVar] = got
			e.bound[sp.costVar] = true
			saved = append(saved, sp.costVar)
		}
	}
	return saved, true
}

func unbind(e *env, saved []int) {
	for _, v := range saved {
		e.bound[v] = false
	}
}

// negSatisfied implements Definition 3.4's ¬p: satisfied when the fully
// instantiated atom is absent from the interpretation. For cost
// predicates the atom includes its cost value; the functional dependency
// means presence is a single lookup (default-value predicates always have
// a value — the default — so only an exact cost match refutes ¬p).
func (ev *evaluator) negSatisfied(sp *atomSpec, e *env) (bool, error) {
	rel := ev.db.Rel(sp.pred)
	args := sp.abuf
	for j, v := range sp.argVar {
		if v >= 0 {
			if !e.bound[v] {
				return false, fmt.Errorf("core: unbound variable in negation on %s", sp.pred)
			}
			args[j] = e.vals[v]
		} else {
			args[j] = sp.argVal[j]
		}
	}
	sp.kbuf = val.AppendKeyOf(sp.kbuf[:0], args)
	row, present := rel.GetKey(sp.kbuf)
	if !present && sp.pi.HasDefault {
		row = relation.Row{Args: args, Cost: sp.pi.L.Bottom(), HasCost: true}
		present = true
	}
	if !present {
		return true, nil
	}
	if !sp.pi.HasCost {
		return false, nil
	}
	want := sp.costVal
	if sp.costVar >= 0 {
		if !e.bound[sp.costVar] {
			return false, fmt.Errorf("core: unbound cost variable in negation on %s", sp.pred)
		}
		want = e.vals[sp.costVar]
	}
	return !lattice.Eq(sp.pi.L, row.Cost, want), nil
}

// builtin evaluates a comparison or assignment step.
func (ev *evaluator) builtin(s *builtinStep, e *env) (ok bool, saved []int, err error) {
	get := func(name ast.Var) (val.T, bool) {
		idx, ok := s.varIndex(name)
		if !ok || !e.bound[idx] {
			return val.T{}, false
		}
		return e.vals[idx], true
	}
	if s.assign >= 0 && !e.bound[s.assign] {
		v, err := ast.EvalExpr(s.expr, get)
		if err != nil {
			return false, nil, fmt.Errorf("core: builtin %s: %v", s.b, err)
		}
		e.vals[s.assign] = v
		e.bound[s.assign] = true
		return true, []int{s.assign}, nil
	}
	l, err := ast.EvalExpr(s.b.L, get)
	if err != nil {
		return false, nil, fmt.Errorf("core: builtin %s: %v", s.b, err)
	}
	r, err := ast.EvalExpr(s.b.R, get)
	if err != nil {
		return false, nil, fmt.Errorf("core: builtin %s: %v", s.b, err)
	}
	res, err := ast.Compare(s.b.Op, l, r)
	if err != nil {
		return false, nil, fmt.Errorf("core: builtin %s: %v", s.b, err)
	}
	return res, nil, nil
}
