package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/val"
)

// chainProgram builds a shortest-path instance over an n-node chain:
// the path relation is quadratic in n, giving the fixpoint real work.
func chainProgram(n int) string {
	src := shortestPathProg
	for i := 0; i < n; i++ {
		src += "arc(n" + itoa(i) + ", n" + itoa(i+1) + ", 1).\n"
	}
	return src
}

// divergentProg is the ω-limit family of Example 5.1 with an unbounded
// limit: p(a) sums itself in, so its cost grows forever and no finite
// fixpoint exists.
const divergentProg = `
.cost p/2 : sumreal.
p(b, 1).
p(a, C) :- C ?= sum D : p(X, D).
`

func TestSolveContextCanceled(t *testing.T) {
	en := mustEngine(t, chainProgram(50), Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	db, stats, err := en.SolveContext(ctx, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, must also wrap context.Canceled", err)
	}
	var ee *EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %T, want *EngineError", err)
	}
	if db == nil {
		t.Fatal("canceled solve must return the partial interpretation, got nil")
	}
	if stats.Components == 0 {
		t.Fatalf("stats must be usable after cancellation: %+v", stats)
	}
}

// TestSolveDeadlineMidFixpoint cancels via MaxDuration while the
// fixpoint is genuinely mid-flight; the partial interpretation keeps
// the work done so far.
func TestSolveDeadlineMidFixpoint(t *testing.T) {
	en := mustEngine(t, chainProgram(400), Options{Limits: Limits{MaxDuration: 5 * time.Millisecond, CheckEvery: 64}})
	db, stats, err := en.Solve(nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, must wrap context.DeadlineExceeded", err)
	}
	if db == nil {
		t.Fatal("deadline breach must return the partial interpretation")
	}
	if stats.Derived == 0 {
		t.Fatalf("expected partial work before the deadline, stats %+v", stats)
	}
}

func TestMaxFactsBudget(t *testing.T) {
	for _, strat := range []Strategy{SemiNaive, Naive} {
		en := mustEngine(t, chainProgram(40), Options{Strategy: strat, Limits: Limits{MaxFacts: 10}})
		db, stats, err := en.Solve(nil)
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("strategy %v: err = %v, want ErrBudgetExceeded", strat, err)
		}
		var ee *EngineError
		if !errors.As(err, &ee) {
			t.Fatalf("strategy %v: err = %T, want *EngineError", strat, err)
		}
		if ee.Limit != 10 || ee.Derived <= 10 {
			t.Fatalf("strategy %v: breach snapshot limit=%d derived=%d", strat, ee.Limit, ee.Derived)
		}
		if db == nil || stats.Derived == 0 {
			t.Fatalf("strategy %v: partial interpretation and stats must survive", strat)
		}
	}
}

func TestDivergenceDiagnosis(t *testing.T) {
	for _, strat := range []Strategy{SemiNaive, Naive} {
		en := mustEngine(t, divergentProg, Options{Strategy: strat})
		db, _, err := en.Solve(nil)
		if !errors.Is(err, ErrDiverged) {
			t.Fatalf("strategy %v: err = %v, want ErrDiverged", strat, err)
		}
		var ee *EngineError
		if !errors.As(err, &ee) || ee.Divergence == nil {
			t.Fatalf("strategy %v: missing divergence diagnosis in %v", strat, err)
		}
		d := ee.Divergence
		if d.Pred.Name() != "p" {
			t.Fatalf("strategy %v: offending predicate %s, want p", strat, d.Pred)
		}
		if len(d.Group) != 1 || !val.Equal(d.Group[0], val.Symbol("a")) {
			t.Fatalf("strategy %v: offending group %v, want [a]", strat, d.Group)
		}
		if len(d.Recent) < 2 || d.Recent[len(d.Recent)-1] <= d.Recent[0] {
			t.Fatalf("strategy %v: cost trajectory should be recorded and increasing: %v", strat, d.Recent)
		}
		for _, want := range []string{"p(a)", "Epsilon"} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("strategy %v: diagnosis missing %q: %v", strat, want, err)
			}
		}
		// Partial model keeps the EDB-level truth.
		if db == nil || !hasTuple(db, "p", "b") {
			t.Fatalf("strategy %v: partial interpretation must keep p(b)", strat)
		}
	}
}

// TestDivergenceStreakDisabled: with the detector off, the round bound
// is the only backstop, preserving the pre-existing MaxRounds behavior.
func TestDivergenceStreakDisabled(t *testing.T) {
	en := mustEngine(t, divergentProg, Options{MaxRounds: 200, Limits: Limits{DivergenceStreak: -1}})
	_, _, err := en.Solve(nil)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged from the round bound", err)
	}
	var ee *EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %T, want *EngineError", err)
	}
	if ee.Divergence != nil {
		t.Fatal("detector was disabled; diagnosis must come from the round bound alone")
	}
	if !strings.Contains(err.Error(), "fixpoint") || ee.Limit != 200 {
		t.Fatalf("round-bound diagnosis malformed: %v", err)
	}
}

// TestPanicContainment: an internal panic during component evaluation
// becomes a structured ErrInternal instead of crashing the process.
func TestPanicContainment(t *testing.T) {
	en := mustEngine(t, shortestPathProg+"arc(a, b, 1).\n", Options{})
	var stats Stats
	g := newGuard(context.Background(), Limits{}, &stats)
	g.comp = en.comps[len(en.comps)-1].Preds
	err := en.runComponent(g, func() error { panic("boom") })
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var ee *EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %T, want *EngineError", err)
	}
	if !strings.Contains(ee.Error(), "boom") || len(ee.Stack) == 0 {
		t.Fatalf("panic context lost: %v (stack %d bytes)", ee, len(ee.Stack))
	}
}

// TestSolveMoreContextCanceled: incremental solves honor cancellation
// too, returning the partially extended model.
func TestSolveMoreContextCanceled(t *testing.T) {
	en := mustEngine(t, chainProgram(10), Options{})
	base, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	added := arcDB(en, [][3]any{{"n10", "x0", 1}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	db, _, err := en.SolveMoreContext(ctx, base, added)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if db == nil {
		t.Fatal("canceled SolveMore must return the partial model")
	}
}

// TestWFSFallbackCanceled: the §6.3 fallback threads the context into
// the well-founded engine.
func TestWFSFallbackCanceled(t *testing.T) {
	src := `
win(X) :- move(X, Y), not win(Y).
move(a, b). move(b, c). move(c, d).
`
	en := mustEngine(t, src, Options{WFSFallback: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := en.SolveContext(ctx, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
