package core

import (
	"math"
	"testing"

	"repro/internal/parser"
	"repro/internal/relation"
	"repro/internal/val"
)

func mustEngine(t *testing.T, src string, opts Options) *Engine {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	en, err := New(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return en
}

func solve(t *testing.T, src string, opts Options) *relation.DB {
	t.Helper()
	en := mustEngine(t, src, opts)
	db, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func costOf(t *testing.T, db *relation.DB, pred string, args ...string) (float64, bool) {
	t.Helper()
	vs := make([]val.T, len(args))
	for i, a := range args {
		vs[i] = val.Symbol(a)
	}
	for _, k := range db.Preds() {
		if k.Name() == pred {
			row, ok := db.Rel(k).Get(vs)
			if !ok {
				return 0, false
			}
			return row.Cost.N, true
		}
	}
	return 0, false
}

func hasTuple(db *relation.DB, pred string, args ...string) bool {
	vs := make([]val.T, len(args))
	for i, a := range args {
		vs[i] = val.Symbol(a)
	}
	for _, k := range db.Preds() {
		if k.Name() == pred {
			_, ok := db.Rel(k).Get(vs)
			return ok
		}
	}
	return false
}

const shortestPathProg = `
.cost arc/3 : minreal.
.cost path/4 : minreal.
.cost s/3 : minreal.
.ic :- arc(direct, Z, C).
path(X, direct, Y, C) :- arc(X, Y, C).
path(X, Z, Y, C)      :- s(X, Z, C1), arc(Z, Y, C2), C = C1 + C2.
s(X, Y, C)            :- C ?= min D : path(X, Z, Y, D).
`

// TestExample31LeastModel reproduces Example 3.1: on the cyclic graph
// {arc(a,b,1), arc(b,b,0)} the unique minimal model M1 has s(a,b,1) and
// s(b,b,0) — not the non-minimal M2 with cost 0 for s(a,b).
func TestExample31LeastModel(t *testing.T) {
	for _, strat := range []Strategy{SemiNaive, Naive} {
		src := shortestPathProg + "arc(a, b, 1).\narc(b, b, 0).\n"
		db := solve(t, src, Options{Strategy: strat})
		if c, ok := costOf(t, db, "s", "a", "b"); !ok || c != 1 {
			t.Errorf("strategy %v: s(a,b) = %v, %v; want 1 (M1)", strat, c, ok)
		}
		if c, ok := costOf(t, db, "s", "b", "b"); !ok || c != 0 {
			t.Errorf("strategy %v: s(b,b) = %v, %v; want 0", strat, c, ok)
		}
		if c, ok := costOf(t, db, "path", "a", "b", "b"); !ok || c != 1 {
			t.Errorf("strategy %v: path(a,b,b) = %v, %v; want 1", strat, c, ok)
		}
	}
}

// TestExample31ModelChecking: both M1 and M2 of Example 3.1 are models;
// M1 ⊑ M2; the engine's answer equals M1 and is ⊑ every model.
func TestExample31ModelChecking(t *testing.T) {
	src := shortestPathProg + "arc(a, b, 1).\narc(b, b, 0).\n"
	en := mustEngine(t, src, Options{})
	m1, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := en.IsModel(m1); err != nil || !ok {
		t.Fatalf("least fixpoint must be a model (Proposition 3.4): %v %v", ok, err)
	}
	// Build M2 by improving s(a,b) and path(a,b,b) to 0.
	m2 := m1.Clone()
	m2.AddFact("s", []val.T{val.Symbol("a"), val.Symbol("b")}, val.Number(0))
	m2.AddFact("path", []val.T{val.Symbol("a"), val.Symbol("b"), val.Symbol("b")}, val.Number(0))
	if ok, err := en.IsModel(m2); err != nil || !ok {
		t.Fatalf("M2 is a model too (Example 3.1): %v %v", ok, err)
	}
	if !m1.Leq(m2, nil) {
		t.Fatal("M1 ⊑ M2 (Example 3.1)")
	}
	if m2.Leq(m1, nil) {
		t.Fatal("M2 ⋢ M1")
	}
}

// TestPreModelNotModel reproduces the example after Definition 3.5:
// {p(a,3), q(a,2)} is a pre-model of "p(X,C) :- q(X,C)" (2 ⊑ 3) but not
// a model.
func TestPreModelNotModel(t *testing.T) {
	src := `
.cost p/2 : sumreal.
.cost q/2 : sumreal.
q(a, 2).
p(X, C) :- q(X, C).
`
	en := mustEngine(t, src, Options{})
	pm := relation.NewDB(en.Schemas)
	pm.AddFact("q", []val.T{val.Symbol("a")}, val.Number(2))
	pm.AddFact("p", []val.T{val.Symbol("a")}, val.Number(3))
	if ok, err := en.IsPreModel(pm); err != nil || !ok {
		t.Fatalf("pre-model check = %v, %v; want true", ok, err)
	}
	if ok, _ := en.IsModel(pm); ok {
		t.Fatal("{p(a,3), q(a,2)} is not a model (the paper's example)")
	}
	m, _, err := en.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Leq(pm, nil) {
		t.Fatal("the least model is ⊑ every pre-model (Proposition 3.3)")
	}
}

// TestShortestPathDiamond checks a multi-path graph: the cheaper route
// wins and path records first intermediate hops.
func TestShortestPathDiamond(t *testing.T) {
	src := shortestPathProg + `
arc(a, b, 1).
arc(a, c, 4).
arc(b, d, 2).
arc(c, d, 1).
arc(a, d, 9).
`
	db := solve(t, src, Options{})
	if c, _ := costOf(t, db, "s", "a", "d"); c != 3 {
		t.Fatalf("s(a,d) = %v, want 3 (a->b->d)", c)
	}
	if c, _ := costOf(t, db, "s", "a", "c"); c != 4 {
		t.Fatalf("s(a,c) = %v, want 4", c)
	}
}

// TestShortestPathPositiveCycle: positive-weight cycles terminate thanks
// to the cost FD (only finitely many (X,Z,Y) triples, each improving
// monotonically).
func TestShortestPathPositiveCycle(t *testing.T) {
	src := shortestPathProg + `
arc(a, b, 1).
arc(b, c, 1).
arc(c, a, 1).
arc(c, d, 1).
`
	db := solve(t, src, Options{})
	if c, _ := costOf(t, db, "s", "a", "d"); c != 3 {
		t.Fatalf("s(a,d) = %v, want 3", c)
	}
	if c, _ := costOf(t, db, "s", "a", "a"); c != 3 {
		t.Fatalf("s(a,a) = %v, want 3 (around the cycle)", c)
	}
}

// TestShortestPathNegativeWeightsDAG: §5.4 — our semantics covers
// negative weights (on acyclic graphs), where cost-monotonic rewriting
// does not apply.
func TestShortestPathNegativeWeightsDAG(t *testing.T) {
	src := shortestPathProg + `
arc(a, b, 5).
arc(b, c, -3).
arc(a, c, 4).
`
	db := solve(t, src, Options{})
	if c, _ := costOf(t, db, "s", "a", "c"); c != 2 {
		t.Fatalf("s(a,c) = %v, want 2 (5 - 3)", c)
	}
}

const companyControlProg = `
.cost s/3 : sumreal.
.cost cv/4 : sumreal.
.cost m/3 : sumreal.
cv(X, X, Y, N) :- s(X, Y, N).
cv(X, Z, Y, N) :- c(X, Z), s(Z, Y, N).
m(X, Y, N)     :- N ?= sum M : cv(X, Z, Y, M).
c(X, Y)        :- m(X, Y, N), N > 0.5.
`

// TestCompanyControlChain: a controls b directly; a+b's shares control c.
func TestCompanyControlChain(t *testing.T) {
	src := companyControlProg + `
s(a, b, 0.6).
s(a, c, 0.3).
s(b, c, 0.3).
`
	for _, strat := range []Strategy{SemiNaive, Naive} {
		db := solve(t, src, Options{Strategy: strat})
		if !hasTuple(db, "c", "a", "b") {
			t.Fatalf("strategy %v: a controls b directly", strat)
		}
		if !hasTuple(db, "c", "a", "c") {
			t.Fatalf("strategy %v: a controls c through b (0.3 + 0.3)", strat)
		}
		if n, _ := costOf(t, db, "m", "a", "c"); n != 0.6 {
			t.Fatalf("strategy %v: m(a,c) = %v, want 0.6", strat, n)
		}
		if hasTuple(db, "c", "b", "c") {
			t.Fatalf("strategy %v: b alone does not control c", strat)
		}
	}
}

// TestCompanyControlVanGelderEDB reproduces §5.6's discriminating EDB:
// for us c(a,b) and c(a,c) are (definitely) false, while Van Gelder's
// translation leaves them undefined.
func TestCompanyControlVanGelderEDB(t *testing.T) {
	src := companyControlProg + `
s(a, b, 0.3).
s(a, c, 0.3).
s(b, c, 0.6).
s(c, b, 0.6).
`
	db := solve(t, src, Options{})
	if hasTuple(db, "c", "a", "b") || hasTuple(db, "c", "a", "c") {
		t.Fatal("c(a,b) and c(a,c) must be false in the least model (§5.6)")
	}
	// b and c each directly own 0.6 of the other, so they control each
	// other (and hence, transitively, themselves).
	if !hasTuple(db, "c", "b", "c") || !hasTuple(db, "c", "c", "b") {
		t.Fatal("direct 0.6 ownership is control")
	}
	if n, _ := costOf(t, db, "m", "a", "b"); n != 0.3 {
		t.Fatalf("m(a,b) = %v, want 0.3", n)
	}
}

const partyProg = `
.cost requires/2 : countnat.
coming(X) :- requires(X, K), N = count : kc(X, Y), N >= K.
kc(X, Y)  :- knows(X, Y), coming(Y).
`

// TestExample43Party: guests with requirement 0 bootstrap attendance;
// cyclic knows relations are fine (the program is monotonic though not
// modularly stratified).
func TestExample43Party(t *testing.T) {
	src := partyProg + `
requires(ann, 0).
requires(bob, 1).
requires(cal, 2).
requires(dee, 1).
knows(bob, ann).
knows(cal, ann).
knows(cal, bob).
knows(dee, cal).
knows(ann, dee).
`
	db := solve(t, src, Options{})
	for _, g := range []string{"ann", "bob", "cal", "dee"} {
		if !hasTuple(db, "coming", g) {
			t.Errorf("%s should come", g)
		}
	}
}

func TestPartyCycleNobodyComes(t *testing.T) {
	// A pure cycle of mutual requirements: the least model has nobody
	// coming (no group can bootstrap without proof of commitment — the
	// paper's "we do not allow groups of friends to decide collectively").
	src := partyProg + `
requires(x, 1).
requires(y, 1).
knows(x, y).
knows(y, x).
`
	db := solve(t, src, Options{})
	if hasTuple(db, "coming", "x") || hasTuple(db, "coming", "y") {
		t.Fatal("in the least model the mutual-requirement cycle stays home")
	}
}

const circuitProg = `
.cost t/2 : boolor.
.cost input/2 : boolor.
.default t/2 = 0.
% Example 4.4's "appropriate integrity constraints": OR gates, AND gates
% and input wires are disjoint classes.
.ic :- gate(G, or), gate(G, and).
.ic :- input(W, C), gate(W, T).
t(W, C) :- input(W, C).
t(G, C) :- gate(G, or),  C = or D : [connect(G, W), t(W, D)].
t(G, C) :- gate(G, and), C = and D : [connect(G, W), t(W, D)].
`

// TestExample44Circuit: a cyclic circuit evaluated with default values
// and the pseudo-monotonic AND.
func TestExample44Circuit(t *testing.T) {
	src := circuitProg + `
input(w1, 1).
input(w2, 0).
gate(g1, and).
connect(g1, w1).
connect(g1, w2).
gate(g2, or).
connect(g2, w1).
connect(g2, g1).
`
	db := solve(t, src, Options{})
	wantBool := func(w string, want bool) {
		t.Helper()
		vs := []val.T{val.Symbol(w)}
		row, ok := db.Rel("t/2").GetOrDefault(vs)
		if !ok || row.Cost.B != want {
			t.Errorf("t(%s) = %v (present %v), want %v", w, row.Cost, ok, want)
		}
	}
	wantBool("w1", true)
	wantBool("w2", false)
	wantBool("g1", false) // AND(1, 0)
	wantBool("g2", true)  // OR(1, 0)
}

func TestCircuitCyclicMinimality(t *testing.T) {
	// A single AND gate feeding itself: the minimal behaviour leaves the
	// output false (the paper's explicit discussion in Example 4.4).
	src := circuitProg + `
gate(g, and).
connect(g, g).
`
	db := solve(t, src, Options{})
	row, ok := db.Rel("t/2").GetOrDefault([]val.T{val.Symbol("g")})
	if !ok || row.Cost.B {
		t.Fatalf("t(g) = %v, want false (minimal circuit behaviour)", row.Cost)
	}
	// An OR-gate latch with a true input stays latched... via the cycle.
	src2 := circuitProg + `
input(w, 1).
gate(g, or).
connect(g, w).
connect(g, g).
`
	db2 := solve(t, src2, Options{})
	row, _ = db2.Rel("t/2").GetOrDefault([]val.T{val.Symbol("g")})
	if !row.Cost.B {
		t.Fatal("OR latch with a true input must be true")
	}
}

// TestExample51HalfsumLimit: the least model is {p(a,1), p(b,1)} but it
// is reached only at ω; with Epsilon the fixpoint converges to within eps.
func TestExample51HalfsumLimit(t *testing.T) {
	src := `
.cost p/2 : sumreal.
p(b, 1).
p(a, C) :- C ?= halfsum D : p(X, D).
`
	for _, strat := range []Strategy{SemiNaive, Naive} {
		en := mustEngine(t, src, Options{Strategy: strat, Epsilon: 1e-9})
		db, stats, err := en.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		c, ok := costOf(t, db, "p", "a")
		if !ok || math.Abs(c-1) > 1e-6 {
			t.Fatalf("strategy %v: p(a) = %v, want ≈ 1 (Example 5.1)", strat, c)
		}
		if stats.Rounds < 10 {
			t.Fatalf("strategy %v: the ω-chain should take many rounds, got %d", strat, stats.Rounds)
		}
	}
	// Without Epsilon and with a small round bound, the engine must
	// report non-convergence rather than a wrong answer.
	en := mustEngine(t, src, Options{MaxRounds: 50})
	if _, _, err := en.Solve(nil); err == nil {
		t.Fatal("expected a non-convergence error for the ω-limit program")
	}
}

// TestExample21Averages reproduces the grouped-average rules of Example
// 2.1, including the weighting difference between all-avg variants.
func TestExample21Averages(t *testing.T) {
	src := `
.cost record/3 : sumreal.
.cost s_avg/2 : sumreal.
.cost c_avg/2 : sumreal.
.cost all_avg/1 : sumreal.
.cost all_avg2/1 : sumreal.
.cost class_count/2 : countnat.
.cost alt_class_count/2 : countnat.
record(john, math, 80).
record(john, physics, 60).
record(mary, math, 90).
s_avg(S, G) :- G ?= avg G2 : record(S, C, G2).
c_avg(C, G) :- G ?= avg G2 : record(S, C, G2).
all_avg(G) :- G ?= avg G2 : c_avg(S, G2).
all_avg2(G) :- G ?= avg G2 : record(S, C, G2).
class_count(C, N) :- N ?= count : record(S, C, G).
alt_class_count(C, N) :- courses(C), N = count : record(S, C, G).
courses(math).
courses(physics).
courses(art).
`
	db := solve(t, src, Options{})
	if g, _ := costOf(t, db, "s_avg", "john"); g != 70 {
		t.Errorf("s_avg(john) = %v, want 70", g)
	}
	if g, _ := costOf(t, db, "c_avg", "math"); g != 85 {
		t.Errorf("c_avg(math) = %v, want 85", g)
	}
	// all_avg averages class averages: (85 + 60) / 2 = 72.5;
	// all_avg2 averages raw records: (80+60+90)/3 ≈ 76.67.
	if g, _ := costOf(t, db, "all_avg"); g != 72.5 {
		t.Errorf("all_avg = %v, want 72.5", g)
	}
	if g, _ := costOf(t, db, "all_avg2"); math.Abs(g-230.0/3) > 1e-9 {
		t.Errorf("all_avg2 = %v, want %v", g, 230.0/3)
	}
	if n, _ := costOf(t, db, "class_count", "math"); n != 2 {
		t.Errorf("class_count(math) = %v, want 2", n)
	}
	// The "=" variant counts empty classes as 0.
	if n, ok := costOf(t, db, "alt_class_count", "art"); !ok || n != 0 {
		t.Errorf("alt_class_count(art) = %v (%v), want 0", n, ok)
	}
	// The "?=" variant has no row for the empty class.
	if hasTuple(db, "class_count", "art") {
		t.Error("class_count(art) must be absent (empty group under ?=)")
	}
}

// TestNaiveEqualsSemiNaive: the two strategies agree on all the paper's
// programs (E12 soundness).
func TestNaiveEqualsSemiNaive(t *testing.T) {
	srcs := []string{
		shortestPathProg + "arc(a,b,1).\narc(b,b,0).\narc(b,c,2).\narc(c,a,1).\n",
		companyControlProg + "s(a,b,0.6).\ns(b,c,0.4).\ns(a,c,0.2).\n",
		partyProg + "requires(p,0).\nrequires(q,1).\nknows(q,p).\nknows(p,q).\n",
		circuitProg + "input(w,1).\ngate(g,or).\nconnect(g,w).\nconnect(g,g).\n",
	}
	for _, src := range srcs {
		a := solve(t, src, Options{Strategy: SemiNaive})
		b := solve(t, src, Options{Strategy: Naive})
		if !a.Equal(b, nil) {
			t.Errorf("strategies disagree on\n%s\nsemi-naive:\n%s\nnaive:\n%s", src, a, b)
		}
	}
}

// TestNonAdmissibleRejected: New refuses the §3 two-minimal-model program
// unless checks are skipped.
func TestNonAdmissibleRejected(t *testing.T) {
	src := `
p(b).
q(b).
p(a) :- N ?= count : q(X), N = 1.
q(a) :- N ?= count : p(X), N = 1.
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(prog, Options{}); err == nil {
		t.Fatal("the §3 example must be rejected")
	}
	if _, err := New(prog, Options{SkipChecks: true}); err != nil {
		t.Fatalf("SkipChecks must allow compilation: %v", err)
	}
}

// TestNegationOnLowerComponent: stratified negation over LDB works within
// the iterated construction (§6.3).
func TestNegationOnLowerComponent(t *testing.T) {
	src := `
e(a, b).
e(b, c).
r(X, Y) :- e(X, Y).
r(X, Y) :- e(X, Z), r(Z, Y).
unreach(X, Y) :- node(X), node(Y), not r(X, Y).
node(a). node(b). node(c).
`
	db := solve(t, src, Options{})
	if !hasTuple(db, "unreach", "c", "a") {
		t.Fatal("c cannot reach a")
	}
	if hasTuple(db, "unreach", "a", "c") {
		t.Fatal("a reaches c")
	}
}

// TestEDBViaSolveArgument: facts supplied through the Solve argument
// instead of program text.
func TestEDBViaSolveArgument(t *testing.T) {
	en := mustEngine(t, shortestPathProg, Options{})
	edb := relation.NewDB(en.Schemas)
	edb.AddFact("arc", []val.T{val.Symbol("a"), val.Symbol("b")}, val.Number(2))
	edb.AddFact("arc", []val.T{val.Symbol("b"), val.Symbol("c")}, val.Number(3))
	db, _, err := en.Solve(edb)
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := costOf(t, db, "s", "a", "c"); c != 5 {
		t.Fatalf("s(a,c) = %v, want 5", c)
	}
}

// TestStats sanity: semi-naive does strictly less firing than naive on a
// chain where naive recomputes everything per round.
func TestSemiNaiveDoesLessWork(t *testing.T) {
	src := shortestPathProg
	for i := 0; i < 30; i++ {
		src += "arc(n" + itoa(i) + ", n" + itoa(i+1) + ", 1).\n"
	}
	enS := mustEngine(t, src, Options{Strategy: SemiNaive})
	_, sStats, err := enS.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	enN := mustEngine(t, src, Options{Strategy: Naive})
	_, nStats, err := enN.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sStats.Firings >= nStats.Firings {
		t.Fatalf("semi-naive (%d firings) should beat naive (%d)", sStats.Firings, nStats.Firings)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
