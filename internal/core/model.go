package core

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/relation"
)

// TP computes a single application of the immediate consequence operator
// T_P (Definition 3.7) for component ci, reading J ∪ I from db, and
// returns a fresh database holding only the derived head atoms. Default
// values (J_∅) are virtual and thus implicitly joined.
func (en *Engine) TP(db *relation.DB, ci int) (*relation.DB, error) {
	out := relation.NewDB(en.Schemas)
	ev := &evaluator{db: db}
	for _, p := range en.plans[ci] {
		p := p
		err := ev.run(p, func(e *env) error {
			args, cost, err := headTuple(p, e)
			if err != nil {
				return err
			}
			return out.Rel(p.head.pred).InsertStrict(args, cost)
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ComponentCount returns the number of program components (bottom-up
// order), for use with TP.
func (en *Engine) ComponentCount() int { return len(en.comps) }

// ComponentPreds returns the predicates of component ci.
func (en *Engine) ComponentPreds(ci int) []string {
	var out []string
	for _, k := range en.comps[ci].Preds {
		out = append(out, string(k))
	}
	return out
}

// IsModel reports whether db satisfies every ground instance of every
// rule (Definition 3.5): whenever a body is satisfied, the corresponding
// head atom — with exactly the derived cost — is present.
func (en *Engine) IsModel(db *relation.DB) (bool, error) {
	return en.checkRules(db, func(l lattice.Lattice, derived, present lattice.Elem) bool {
		return lattice.Eq(l, derived, present)
	})
}

// IsPreModel reports whether db is a pre-model (Definition 3.5): whenever
// a body is satisfied, the head atom is present with a cost ⊒ the derived
// one.
func (en *Engine) IsPreModel(db *relation.DB) (bool, error) {
	return en.checkRules(db, func(l lattice.Lattice, derived, present lattice.Elem) bool {
		return l.Leq(derived, present)
	})
}

func (en *Engine) checkRules(db *relation.DB, costOK func(lattice.Lattice, lattice.Elem, lattice.Elem) bool) (bool, error) {
	violated := fmt.Errorf("violated")
	for ci := range en.plans {
		ev := &evaluator{db: db}
		for _, p := range en.plans[ci] {
			p := p
			err := ev.run(p, func(e *env) error {
				args, cost, err := headTuple(p, e)
				if err != nil {
					return err
				}
				row, ok := db.Rel(p.head.pred).GetOrDefault(args)
				if !ok {
					return violated
				}
				if p.head.pi.HasCost && !costOK(p.head.pi.L, cost, row.Cost) {
					return violated
				}
				return nil
			})
			if err == violated {
				return false, nil
			}
			if err != nil {
				return false, err
			}
		}
	}
	return true, nil
}
