package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/val"
)

// This file is the engine side of the cost-based planner (Limits.Plan =
// PlanCost): it arranges each compiled rule into a *physical* plan —
// a join order chosen by internal/planner's selectivity estimates, an
// optional shared-prefix buffer (CSE), and γ presizing hints — and
// swaps physicals in and out between semi-naive rounds when observed
// relation growth diverges from the estimates the order was chosen by.
//
// The contract (docs/PLANNER.md): every physical of a plan enumerates
// exactly the same set of satisfying assignments as the syntactic
// order, so models, traces, Stats totals and checkpoints are
// byte-identical to Limits.Plan = PlanSyntactic at every parallelism
// level. Whenever a cost arrangement cannot be proven equivalent the
// planner keeps the syntactic physical for that rule.

// physical is one executable arrangement of a plan's body: a step
// order, the scan positions the semi-naive drivers key on, and the
// order lowered to the streaming executor. Every plan owns a syntactic
// physical (identical to plan.steps, built at compile time) and the
// cost planner installs alternatives via plan.cur; all evaluation-time
// consumers go through plan.ph().
type physical struct {
	steps     []step
	scanSteps map[ast.PredKey][]int
	stream    *exec.Rule
	// canon maps each physical position to the canonical (syntactic)
	// step position it executes, -1 for a CSE buffer step; physOf is
	// the inverse, -1 for canonical steps folded into a buffer. The
	// profile accumulators and derivation traces are keyed canonically,
	// so counters and supports stay comparable across plan switches.
	canon  []int
	physOf []int
	// choice records the planner's decisions for EXPLAIN rendering; nil
	// on the syntactic physical.
	choice *planner.Choice
}

// bufferStep replays the materialized rows of a shared subplan prefix
// (CSE). vars lists the variables each row column binds, in the
// binding order of the folded steps, and covers every variable the
// prefix would have bound — including cost variables — so downstream
// steps and trace capture see the same environment the folded scans
// would have produced.
type bufferStep struct {
	rows [][]val.T
	vars []int
	sbuf []int // backtracking scratch; plans run one goroutine at a time
}

func (*bufferStep) isStep() {}

// newSynPhysical wraps the compiled syntactic order as the identity
// physical. canon and physOf share the identity mapping.
func newSynPhysical(p *plan) *physical {
	idx := make([]int, len(p.steps))
	for i := range idx {
		idx[i] = i
	}
	return &physical{steps: p.steps, scanSteps: p.scanSteps, stream: p.stream, canon: idx, physOf: idx}
}

// ph returns the physical currently installed for the plan. The
// pointer is atomic so Profile() can render a consistent plan while a
// solve is re-planning between rounds.
func (p *plan) ph() *physical { return p.cur.Load() }

// resetPlans restores every rule to its syntactic physical; called at
// each solve entry point so PlanSyntactic solves (and naive/WFS
// components, which the cost planner leaves alone) never observe a
// stale cost arrangement from a previous solve.
func (en *Engine) resetPlans() {
	for _, ps := range en.plans {
		for _, p := range ps {
			p.cur.Store(p.syn)
		}
	}
}

// resolvePlan maps the Limits knob to a concrete planner choice.
func resolvePlan(lim Limits) Plan {
	if lim.Plan == PlanCost {
		return PlanCost
	}
	return PlanSyntactic
}

// componentPlanner holds one component's planning state across a
// fixpoint: the shared-prefix buffers (materialized once — their
// source relations are frozen for the duration of the component) and
// the relation-length snapshot the re-planning trigger compares
// against at round boundaries.
type componentPlanner struct {
	db       *relation.DB
	ps       []*plan
	allowCSE bool
	shares   map[*plan]*ruleShare
	built    bool
	lens     map[ast.PredKey]int
}

// planComponent installs cost physicals for the component's rules and
// returns the re-planning state, or nil when the engine is running the
// syntactic plan (the nil componentPlanner is inert). allowCSE is
// false for incremental continuations (SolveMore), whose Δ seeds can
// drive restricted passes over the very EDB scans a buffer would fold
// away.
func (en *Engine) planComponent(db *relation.DB, ps []*plan, allowCSE bool) *componentPlanner {
	if en.plan != PlanCost {
		return nil
	}
	cp := &componentPlanner{db: db, ps: ps, allowCSE: allowCSE}
	cp.apply()
	return cp
}

// apply (re)builds each rule's cost physical from current statistics
// and snapshots the read-set relation lengths for the divergence test.
func (cp *componentPlanner) apply() {
	est := planner.NewEstimator(cp.db)
	if !cp.built {
		cp.built = true
		if cp.allowCSE {
			cp.shares = findShared(cp.ps, cp.db)
		}
	}
	cp.lens = map[ast.PredKey]int{}
	for _, p := range cp.ps {
		for k := range p.reads {
			cp.lens[k] = est.Len(k)
		}
		ph := buildCostPhysical(p, est, cp.shares[p])
		if ph == nil {
			ph = p.syn
		}
		p.cur.Store(ph)
	}
}

// maybeReplan re-plans the component when any relation it reads has
// grown past the divergence threshold since the current physicals were
// chosen. Called at round boundaries only — deterministic points where
// the database content is identical across parallelism levels — so
// sequential and parallel runs re-plan identically. Safe on nil.
func (cp *componentPlanner) maybeReplan() {
	if cp == nil {
		return
	}
	for k, before := range cp.lens {
		if planner.Diverged(before, cp.db.Rel(k).Len()) {
			cp.apply()
			return
		}
	}
}

// buildCostPhysical arranges one rule by estimated selectivity,
// returning nil when the syntactic physical should be kept: the rule
// reads its own head (its semantics depend on mid-pass visibility, so
// the enumeration order is pinned), the greedy ordering gets stuck, an
// aggregate conjunction has no valid order at its new position, or the
// chosen order is the syntactic one with nothing else to contribute.
func buildCostPhysical(p *plan, est *planner.Estimator, share *ruleShare) *physical {
	if p.reads[p.head.pred] {
		return nil
	}
	n := len(p.steps)
	if n == 0 {
		return nil
	}
	bound := make([]bool, p.nvars)
	done := make([]bool, n)
	steps := make([]step, 0, n+1)
	canon := make([]int, 0, n+1)
	ests := make([]float64, 0, n+1)
	emitted := 0

	if share != nil {
		bs := &bufferStep{rows: share.rows, vars: share.vars}
		bs.sbuf = make([]int, 0, len(share.vars))
		steps = append(steps, bs)
		canon = append(canon, -1)
		ests = append(ests, float64(len(share.rows)))
		for _, v := range share.vars {
			bound[v] = true
		}
		for i := 0; i < share.n; i++ {
			done[i] = true
		}
		emitted = share.n
	}

	for emitted < n {
		best := -1
		bestClass := 0
		bestEst := 0.0
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			class, rows, ok := stepChoice(p.steps[i], bound, est)
			if !ok {
				continue
			}
			if best < 0 || class < bestClass || (class == bestClass && rows < bestEst) {
				best, bestClass, bestEst = i, class, rows
			}
		}
		if best < 0 {
			return nil // no runnable step: keep the syntactic order
		}
		done[best] = true
		emitted++
		s := p.steps[best]
		if bs, ok := s.(*builtinStep); ok {
			s = cloneBuiltin(bs, bound)
		}
		steps = append(steps, s)
		canon = append(canon, best)
		ests = append(ests, bestEst)
		bindStep(s, bound)
	}

	hints := aggHints(steps, est)
	identity := share == nil
	if identity {
		for i, c := range canon {
			if c != i {
				identity = false
				break
			}
		}
	}
	if identity && hints == nil {
		return nil // nothing the cost plan would change
	}

	ch := &planner.Choice{Order: canon, Est: ests}
	if share != nil {
		ch.Shared = share.n
	}
	stream := compileStream(p, steps, hints)
	// An aggregate moved to a position where its conjunction has no
	// valid order (a default-value atom would be enumerated) cannot
	// run; keep the syntactic physical, which compiled cleanly.
	for pi, c := range canon {
		if c < 0 {
			continue
		}
		if _, ok := steps[pi].(*aggStep); !ok {
			continue
		}
		na, oa := stream.Steps[pi].Agg, p.stream.Steps[c].Agg
		if (na.OrderFullErr != nil && oa.OrderFullErr == nil) ||
			(na.OrderPointErr != nil && oa.OrderPointErr == nil) {
			return nil
		}
	}

	physOf := make([]int, n)
	for i := range physOf {
		physOf[i] = -1
	}
	for pi, c := range canon {
		if c >= 0 {
			physOf[c] = pi
		}
	}
	scanSteps := map[ast.PredKey][]int{}
	for i, s := range steps {
		if sc, ok := s.(*scanStep); ok {
			scanSteps[sc.pred] = append(scanSteps[sc.pred], i)
		}
	}
	return &physical{steps: steps, scanSteps: scanSteps, stream: stream,
		canon: canon, physOf: physOf, choice: ch}
}

// stepChoice classifies one pending step under the current bound set:
// its ordering class, its estimated rows per invocation (scans only),
// and whether it is runnable at all.
//
// The class ladder refines the syntactic compiler's priorities with one
// semi-naive-aware rule: builtin tests (0), then assignments (1), then
// scans of component-recursive relations and frozen point lookups (2),
// then frozen scans by estimated rows (3), then aggregates (4) and
// negations (5). Recursive scans rank ahead of frozen extensions
// regardless of current Len because they are the Δ drivers: most
// semi-naive passes restrict them to the round's small delta, and a
// frozen scan placed ahead of the driver would multiply the whole
// frozen extension into every Δ pass — the estimates only order scans
// within a class.
func stepChoice(s step, bound []bool, est *planner.Estimator) (class int, rows float64, ok bool) {
	switch s := s.(type) {
	case *builtinStep:
		mode, _, ok := builtinMode(s, bound)
		if !ok {
			return 0, 0, false
		}
		if mode == "test" {
			return 0, 0, true
		}
		return 1, 0, true
	case *scanStep:
		if s.pi.HasDefault {
			for _, v := range s.argVar {
				if v >= 0 && !bound[v] {
					return 0, 0, false
				}
			}
		}
		rows = est.ScanEst(s.pred, s.pi, scanMask(&s.atomSpec, bound), s.cdb)
		if s.cdb || rows <= 1 {
			return 2, rows, true
		}
		return 3, rows, true
	case *aggStep:
		if !s.restricted {
			for _, v := range s.groupVars {
				if !bound[v] {
					return 0, 0, false
				}
			}
		}
		return 4, 0, true
	case *negStep:
		for _, v := range s.argVar {
			if v >= 0 && !bound[v] {
				return 0, 0, false
			}
		}
		if s.costVar >= 0 && !bound[s.costVar] {
			return 0, 0, false
		}
		return 5, 0, true
	}
	return 0, 0, false
}

// scanMask is the bound-position mask a scan would probe with: constant
// or bound-variable non-cost positions, first 64 only — exactly the
// mask the executors' cursors open (exec.Machine open / relation
// Match).
func scanMask(sp *atomSpec, bound []bool) uint64 {
	var mask uint64
	for j, v := range sp.argVar {
		if j >= 64 {
			break
		}
		if v < 0 || bound[v] {
			mask |= 1 << uint(j)
		}
	}
	return mask
}

// bindStep marks the variables a step binds on success, mirroring the
// syntactic compiler's binds sets.
func bindStep(s step, bound []bool) {
	switch s := s.(type) {
	case *scanStep:
		for _, v := range s.argVar {
			if v >= 0 {
				bound[v] = true
			}
		}
		if s.costVar >= 0 {
			bound[s.costVar] = true
		}
	case *builtinStep:
		if s.assign >= 0 {
			bound[s.assign] = true
		}
	case *aggStep:
		for _, v := range s.groupVars {
			bound[v] = true
		}
		bound[s.result] = true
	case *bufferStep:
		for _, v := range s.vars {
			bound[v] = true
		}
	}
}

// cloneBuiltin re-derives a builtin's execution mode for its position
// in a cost order. The canonical step object is shared with the
// syntactic physical, whose assign/expr were fixed for the syntactic
// position, so a moved builtin gets its own step with the mode the new
// bound set implies (mirroring the syntactic compiler's emission).
func cloneBuiltin(bs *builtinStep, bound []bool) *builtinStep {
	clone := &builtinStep{b: bs.b, assign: -1, lVars: bs.lVars, rVars: bs.rVars, vmap: bs.vmap}
	if mode, assignVar, ok := builtinMode(clone, bound); ok && mode == "assign" {
		clone.assign = assignVar
		if lv, isVar := clone.b.L.(ast.VarExpr); isVar && clone.vmap[lv.V] == assignVar && len(clone.lVars) == 1 {
			clone.expr = clone.b.R
		} else {
			clone.expr = clone.b.L
		}
	}
	return clone
}

// aggHints computes the γ group-map presize for each physical
// position, or nil when no step has one. Only grouped (restricted)
// aggregates build a group table; the hint is the distinct projection
// of the first frozen conjunct that carries every grouping variable.
func aggHints(steps []step, est *planner.Estimator) []int {
	var hints []int
	for i, s := range steps {
		ag, ok := s.(*aggStep)
		if !ok || !ag.restricted {
			continue
		}
		for ci := range ag.conj {
			sp := &ag.conj[ci]
			if ag.groupKeyPos[ci] == nil || sp.cdb || sp.pi.HasDefault {
				continue
			}
			var mask uint64
			usable := true
			for _, pos := range ag.groupKeyPos[ci] {
				if pos >= 64 {
					usable = false
					break
				}
				mask |= 1 << uint(pos)
			}
			if !usable {
				continue
			}
			if h := est.GroupsHint(sp.pred, mask, false); h > 0 {
				if hints == nil {
					hints = make([]int, len(steps))
				}
				hints[i] = h
			}
			break
		}
	}
	return hints
}

// ruleShare is one rule's view of a shared subplan: its first n
// canonical steps are replaced by a buffer replaying rows, whose
// columns bind vars (this rule's variable indices).
type ruleShare struct {
	n    int
	vars []int
	rows [][]val.T
}

var errSharedTooBig = errors.New("core: shared prefix exceeds materialization cap")

// findShared detects common subplans across the component's rules:
// maximal prefixes of frozen-relation scans that are α-equivalent
// across at least two rules. Each shared prefix is materialized once
// (against the same frozen relations every rule would scan, in the
// same enumeration order) and every participating rule replays the
// buffer. Rules that read their own head are excluded — they keep the
// syntactic physical entirely.
func findShared(ps []*plan, db *relation.DB) map[*plan]*ruleShare {
	type member struct {
		p    *plan
		n    int
		vars []int
	}
	count := map[string]int{}
	sigOf := map[*plan]map[int]string{}
	for _, p := range ps {
		if p.reads[p.head.pred] {
			continue
		}
		max := eligiblePrefix(p)
		if max < 2 {
			continue
		}
		sigs := map[int]string{}
		for l := 2; l <= max; l++ {
			sig := prefixSig(p, l)
			sigs[l] = sig
			count[sig]++
		}
		sigOf[p] = sigs
	}
	groups := map[string][]member{}
	var order []string
	for _, p := range ps {
		sigs := sigOf[p]
		for l := len(sigs) + 1; l >= 2; l-- {
			sig, ok := sigs[l]
			if !ok || count[sig] < 2 {
				continue
			}
			if len(groups[sig]) == 0 {
				order = append(order, sig)
			}
			groups[sig] = append(groups[sig], member{p: p, n: l, vars: prefixVars(p, l)})
			break
		}
	}
	shares := map[*plan]*ruleShare{}
	for _, sig := range order {
		g := groups[sig]
		if len(g) < 2 {
			continue // a lone rule gains nothing from buffering
		}
		rows, ok := materializePrefix(g[0].p, g[0].n, g[0].vars, db)
		if !ok {
			continue
		}
		for _, m := range g {
			shares[m.p] = &ruleShare{n: m.n, vars: m.vars, rows: rows}
		}
	}
	return shares
}

// eligiblePrefix is the number of leading steps foldable into a shared
// buffer: scans of frozen (non-CDB), non-default relations. Buffering
// must not hide a semi-naive driver (CDB scans) and default-value
// predicates are point lookups with nothing to share.
func eligiblePrefix(p *plan) int {
	n := 0
	for _, s := range p.steps {
		sc, ok := s.(*scanStep)
		if !ok || sc.cdb || sc.pi.HasDefault {
			break
		}
		n++
	}
	return n
}

// prefixSig renders a prefix up to α-equivalence: predicate keys,
// constant values, and variable positions numbered by first
// occurrence. Two rules with equal signatures enumerate identical row
// sequences over identical relations, so their buffers are
// interchangeable column-for-column.
func prefixSig(p *plan, l int) string {
	var b strings.Builder
	num := map[int]int{}
	ref := func(v int) {
		i, ok := num[v]
		if !ok {
			i = len(num)
			num[v] = i
		}
		fmt.Fprintf(&b, "v%d", i)
	}
	for i := 0; i < l; i++ {
		sc := p.steps[i].(*scanStep)
		b.WriteString(string(sc.pred))
		b.WriteByte('(')
		for j, v := range sc.argVar {
			if j > 0 {
				b.WriteByte(',')
			}
			if v >= 0 {
				ref(v)
			} else {
				b.WriteString("k:")
				b.Write(val.AppendKeyOf(nil, []val.T{sc.argVal[j]}))
			}
		}
		if sc.pi.HasCost {
			b.WriteByte(';')
			if sc.costVar >= 0 {
				ref(sc.costVar)
			} else {
				b.WriteString("k:")
				b.Write(val.AppendKeyOf(nil, []val.T{sc.costVal}))
			}
		}
		b.WriteString(");")
	}
	return b.String()
}

// prefixVars lists the variables a prefix binds, in binding order
// (argument order then cost, per step — exactly bindAtom's order).
// α-equivalent prefixes produce positionally identical lists.
func prefixVars(p *plan, l int) []int {
	seen := map[int]bool{}
	var vars []int
	add := func(v int) {
		if v >= 0 && !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	for i := 0; i < l; i++ {
		sc := p.steps[i].(*scanStep)
		for _, v := range sc.argVar {
			add(v)
		}
		add(sc.costVar)
	}
	return vars
}

// materializePrefix enumerates a prefix once with a throwaway tuple
// evaluator and snapshots the projected rows. The enumeration is
// deterministic — unindexed scans walk insertion order, index buckets
// preserve it — so every worker at every parallelism level sees the
// identical buffer. Aborts (keeping per-rule evaluation) past the
// planner's size cap.
func materializePrefix(p *plan, n int, vars []int, db *relation.DB) ([][]val.T, bool) {
	ev := &evaluator{db: db}
	e := newEnv(p.nvars)
	rows := [][]val.T{}
	err := ev.step(p.steps[:n], 0, e, func(e *env) error {
		if len(rows) >= planner.MaxSharedRows {
			return errSharedTooBig
		}
		row := make([]val.T, len(vars))
		for i, v := range vars {
			row[i] = e.vals[v]
		}
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, false
	}
	return rows, true
}
