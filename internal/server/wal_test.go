package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/datalog"
	"repro/internal/faults"
	"repro/internal/wal"
)

// newWALServer builds and materializes a one-program server with the
// write-ahead log rooted at dir. The caller owns shutdown.
func newWALServer(t testing.TB, src string, cfg Config) *Server {
	t.Helper()
	s, err := New([]ProgramSpec{{Name: "sp", Source: src}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s
}

// assertBatch posts one arc fact and returns the response map.
func assertBatch(t testing.TB, url string, i int) map[string]any {
	t.Helper()
	body := fmt.Sprintf(`{"facts":[{"pred":"arc","args":["w%d","w%d",1]}]}`, i, i+1)
	code, resp := post(t, url+"/v1/assert", body)
	if code != http.StatusOK {
		t.Fatalf("assert %d: %d %v", i, code, resp)
	}
	return resp
}

// TestChaosWALReplayRestoresAckedBatches is the core durability
// contract without any checkpoint: every acked batch must be rebuilt
// from the log alone on restart, and the recovered model must equal a
// one-shot solve over the same EDB.
func TestChaosWALReplayRestoresAckedBatches(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	dir := t.TempDir()
	cfg := Config{WALDir: dir, WALFsync: FsyncBatch}

	s1 := newWALServer(t, src, cfg)
	ts := httptest.NewServer(s1.Handler())
	const batches = 8
	var facts []datalog.Fact
	for i := 0; i < batches; i++ {
		resp := assertBatch(t, ts.URL, i)
		if got := uint64(resp["seq"].(float64)); got != uint64(i)+1 {
			t.Fatalf("batch %d acked with seq %v, want %d", i, resp["seq"], i+1)
		}
		facts = append(facts, datalog.NewFact("arc",
			datalog.Sym(fmt.Sprintf("w%d", i)), datalog.Sym(fmt.Sprintf("w%d", i+1)), datalog.Num(1)))
	}
	ts.Close()
	s1.Close()

	// Restart: no checkpoint, so everything must come from the log.
	s2 := newWALServer(t, src, cfg)
	defer s2.Close()
	svc := s2.svcs["sp"]
	if got := svc.seq.Load(); got != batches {
		t.Fatalf("recovered seq %d, want %d", got, batches)
	}
	st := svc.current()
	for i := 0; i < batches; i++ {
		if !st.model.Has("arc", datalog.Sym(fmt.Sprintf("w%d", i)), datalog.Sym(fmt.Sprintf("w%d", i+1))) {
			t.Fatalf("acked batch %d missing after restart", i)
		}
	}
	// Warm-restart equality: the recovered model is exactly the least
	// model of the seed program plus every acked batch.
	prog, err := datalog.Load(src, datalog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	oneShot, _, err := prog.Solve(facts...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.model.String(), oneShot.String(); got != want {
		t.Fatalf("recovered model differs from one-shot solve:\n%s\nwant:\n%s", got, want)
	}
}

// TestChaosWALCheckpointWatermarkAndCompaction exercises the
// checkpoint–log handshake: a flush stamps the watermark and compacts
// the log; a restart replays only records past the watermark.
func TestChaosWALCheckpointWatermarkAndCompaction(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sp.snap")
	// Tiny segments force rotation so compaction has something to drop.
	cfg := Config{WALDir: dir, WALSegmentBytes: 256}
	mk := func() *Server {
		s, err := New([]ProgramSpec{{Name: "sp", Source: src, Checkpoint: ckpt}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Materialize(context.Background()); err != nil {
			t.Fatal(err)
		}
		return s
	}

	s1 := mk()
	ts := httptest.NewServer(s1.Handler())
	for i := 0; i < 6; i++ {
		assertBatch(t, ts.URL, i)
	}
	before := s1.svcs["sp"].wal.Segments()
	if err := s1.FlushCheckpoints(); err != nil {
		t.Fatal(err)
	}
	if after := s1.svcs["sp"].wal.Segments(); after >= before {
		t.Fatalf("flush did not compact: %d segments before, %d after", before, after)
	}
	// More batches after the flush: only these need replay.
	for i := 6; i < 9; i++ {
		assertBatch(t, ts.URL, i)
	}
	ts.Close()
	s1.Close()

	s2 := mk()
	defer s2.Close()
	svc := s2.svcs["sp"]
	if got := svc.seq.Load(); got != 9 {
		t.Fatalf("recovered seq %d, want 9", got)
	}
	if replayed := s2.metrics.walReplayed.With("sp").Value(); replayed != 3 {
		t.Fatalf("replayed %d batches, want 3 (watermark should cover the first 6)", replayed)
	}
	st := svc.current()
	for i := 0; i < 9; i++ {
		if !st.model.Has("arc", datalog.Sym(fmt.Sprintf("w%d", i)), datalog.Sym(fmt.Sprintf("w%d", i+1))) {
			t.Fatalf("batch %d missing after checkpoint+replay restart", i)
		}
	}
}

// TestChaosWALAppendFailure: a failed append answers 500 "wal", leaves
// the published model untouched, trips /readyz to wal_failed, and
// fails later writes fast while reads keep serving.
func TestChaosWALAppendFailure(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	cfg := Config{WALDir: t.TempDir()}
	s := newWALServer(t, src, cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	assertBatch(t, ts.URL, 0)
	verBefore := s.svcs["sp"].current().version

	faults.Arm(faults.Fault{Point: faults.WALAppendWrite, Sticky: true})
	code, resp := post(t, ts.URL+"/v1/assert", `{"facts":[{"pred":"arc","args":["x","y",1]}]}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("assert during append failure: %d %v", code, resp)
	}
	errBody := resp["error"].(map[string]any)
	if errBody["code"] != "wal" || errBody["exit_code"] != 6.0 {
		t.Fatalf("error %v, want code wal exit 6", errBody)
	}
	if got := s.svcs["sp"].current().version; got != verBefore {
		t.Fatalf("failed WAL write published generation %d (was %d)", got, verBefore)
	}
	if code, resp := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable || resp["status"] != "wal_failed" {
		t.Fatalf("readyz after WAL failure: %d %v, want 503 wal_failed", code, resp)
	}
	// Broken stays broken: even with the fault disarmed the write path
	// refuses (the segment tail state is unknown).
	faults.Reset()
	code, resp = post(t, ts.URL+"/v1/assert", `{"facts":[{"pred":"arc","args":["x","y",1]}]}`)
	if code != http.StatusInternalServerError || resp["error"].(map[string]any)["code"] != "wal" {
		t.Fatalf("assert after disarm: %d %v, want sticky wal failure", code, resp)
	}
	// Reads still serve the last good fixpoint.
	if code, resp := post(t, ts.URL+"/v1/query", `{"op":"has","pred":"arc","args":["w0","w1"]}`); code != http.StatusOK || resp["found"] != true {
		t.Fatalf("read during wal_failed: %d %v", code, resp)
	}
}

// TestChaosWALFsyncFailure: the group-commit fsync failing is as fatal
// as the append failing — no ack may outrun durability.
func TestChaosWALFsyncFailure(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	s := newWALServer(t, src, Config{WALDir: t.TempDir(), WALFsync: FsyncAlways})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	faults.Arm(faults.Fault{Point: faults.WALFsync, Sticky: true})
	code, resp := post(t, ts.URL+"/v1/assert", `{"facts":[{"pred":"arc","args":["x","y",1]}]}`)
	if code != http.StatusInternalServerError || resp["error"].(map[string]any)["code"] != "wal" {
		t.Fatalf("assert during fsync failure: %d %v", code, resp)
	}
	if state := s.readyState(); state != "wal_failed" {
		t.Fatalf("readyState %q, want wal_failed", state)
	}
}

// TestChaosWALTornTailRecovery tears the final record on disk (a crash
// mid-write) and restarts: the log truncates the torn tail, the server
// comes up ready, and the surviving batches are intact.
func TestChaosWALTornTailRecovery(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	dir := t.TempDir()
	cfg := Config{WALDir: dir}

	s1 := newWALServer(t, src, cfg)
	ts := httptest.NewServer(s1.Handler())
	const batches = 5
	for i := 0; i < batches; i++ {
		assertBatch(t, ts.URL, i)
	}
	ts.Close()
	s1.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "sp", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	s2 := newWALServer(t, src, cfg)
	defer s2.Close()
	svc := s2.svcs["sp"]
	if svc.wal.Repaired() == nil {
		t.Fatal("torn tail was not repaired")
	}
	if got := svc.seq.Load(); got != batches-1 {
		t.Fatalf("recovered seq %d, want %d (last record torn away)", got, batches-1)
	}
	st := svc.current()
	for i := 0; i < batches-1; i++ {
		if !st.model.Has("arc", datalog.Sym(fmt.Sprintf("w%d", i)), datalog.Sym(fmt.Sprintf("w%d", i+1))) {
			t.Fatalf("surviving batch %d missing after torn-tail recovery", i)
		}
	}
	// The repaired log accepts new appends.
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if resp := assertBatch(t, ts2.URL, 100); uint64(resp["seq"].(float64)) != batches {
		t.Fatalf("post-repair assert seq %v, want %d", resp["seq"], batches)
	}
}

// TestChaosWALMidLogCorruptionRefused: bit rot before the tail is not
// repairable — Materialize must refuse with the structured corruption
// error rather than silently dropping acked history.
func TestChaosWALMidLogCorruptionRefused(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	dir := t.TempDir()
	cfg := Config{WALDir: dir}

	s1 := newWALServer(t, src, cfg)
	ts := httptest.NewServer(s1.Handler())
	for i := 0; i < 4; i++ {
		assertBatch(t, ts.URL, i)
	}
	ts.Close()
	s1.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "sp", "wal-*.seg"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40 // damage an early record, data follows it
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New([]ProgramSpec{{Name: "sp", Source: src}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	err = s2.Materialize(context.Background())
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("materialize over rotted log: err = %v, want ErrCorrupt", err)
	}
}

// TestChaosWALReplayProgressReadyz holds replay open with an injected
// per-record delay and watches /readyz report the replaying state with
// progress counters.
func TestChaosWALReplayProgressReadyz(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	dir := t.TempDir()
	cfg := Config{WALDir: dir}

	s1 := newWALServer(t, src, cfg)
	ts := httptest.NewServer(s1.Handler())
	for i := 0; i < 4; i++ {
		assertBatch(t, ts.URL, i)
	}
	ts.Close()
	s1.Close()

	faults.Arm(faults.Fault{Point: faults.ServerWALReplay, Sticky: true, Delay: 80 * time.Millisecond})
	s2, err := New([]ProgramSpec{{Name: "sp", Source: src}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	done := make(chan error, 1)
	go func() { done <- s2.Materialize(context.Background()) }()

	sawReplaying := false
	deadline := time.Now().Add(5 * time.Second)
	for !sawReplaying && time.Now().Before(deadline) {
		code, resp := get(t, ts2.URL+"/readyz")
		if resp["status"] == "replaying" {
			if code != http.StatusServiceUnavailable {
				t.Fatalf("replaying readyz status %d, want 503", code)
			}
			prog := resp["replay"].(map[string]any)["sp"].(map[string]any)
			if prog["total"].(float64) != 4 {
				t.Fatalf("replay progress %v, want total 4", prog)
			}
			sawReplaying = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawReplaying {
		t.Fatal("never observed the replaying readiness state")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if code, resp := get(t, ts2.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after replay: %d %v", code, resp)
	}
}

// TestAssertSeqMonotonic (no WAL): commit sequence numbers are still
// assigned — contiguous from 1, echoed on acks, visible in /v1/program
// and the mdl_commit_seq gauge.
func TestAssertSeqMonotonic(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	s, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})

	for i := 0; i < 5; i++ {
		resp := assertBatch(t, ts.URL, i)
		if got := uint64(resp["seq"].(float64)); got != uint64(i)+1 {
			t.Fatalf("batch %d seq %v, want %d", i, resp["seq"], i+1)
		}
	}
	_, resp := get(t, ts.URL+"/v1/program?name=sp")
	info := resp["programs"].([]any)[0].(map[string]any)
	if info["seq"] != 5.0 {
		t.Fatalf("/v1/program seq %v, want 5", info["seq"])
	}
	if v := promValue(t, promText(t, ts.URL), "mdl_commit_seq", `program="sp"`); v != 5 {
		t.Fatalf("mdl_commit_seq %v, want 5", v)
	}
	_ = s
}

// TestParseFsyncPolicy pins the policy strings the CLI accepts.
func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"": FsyncBatch, "batch": FsyncBatch, "always": FsyncAlways, "none": FsyncNone,
	} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("everysooften"); err == nil {
		t.Error("bad policy accepted")
	}
}

// TestWALPayloadRoundTrip pins the record payload codec against the
// assert validation path.
func TestWALPayloadRoundTrip(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	s, err := New([]ProgramSpec{{Name: "sp", Source: src}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	svc := s.svcs["sp"]
	facts := []datalog.Fact{
		datalog.NewFact("arc", datalog.Sym("a"), datalog.Sym("b c"), datalog.Num(1.5)),
		datalog.NewFact("arc", datalog.Sym("x"), datalog.Sym("y"), datalog.Num(2)),
	}
	got, err := svc.decodeWALPayload(encodeWALPayload(facts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(facts) {
		t.Fatalf("decoded %d facts, want %d", len(got), len(facts))
	}
	for i := range facts {
		if got[i].Pred != facts[i].Pred || len(got[i].Args) != len(facts[i].Args) {
			t.Fatalf("fact %d decoded as %+v, want %+v", i, got[i], facts[i])
		}
	}
	// Unknown predicates and bad arity are refused, mirroring assert.
	if _, err := svc.decodeWALPayload([]byte(`[{"pred":"nosuch","args":[1]}]`)); err == nil || !strings.Contains(err.Error(), "no predicate") {
		t.Fatalf("unknown predicate: err = %v", err)
	}
	if _, err := svc.decodeWALPayload([]byte(`[{"pred":"arc","args":[1]}]`)); err == nil {
		t.Fatal("bad arity accepted")
	}
}
