package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/datalog"
	"repro/internal/faults"
)

// newTestHTTP serves s without materializing it first, for tests that
// exercise the pre-ready states.
func newTestHTTP(t testing.TB, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// postRaw posts without decoding, returning the raw response for
// header assertions.
func postRaw(t testing.TB, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestAssertQueueFullSheds fills the commit queue behind a stalled
// writer and checks that overflow batches are rejected immediately with
// 429 + Retry-After instead of queueing unboundedly.
func TestAssertQueueFullSheds(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	s, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}},
		Config{AssertQueue: 2})

	// Stall the writer so the first batch occupies the committer and
	// the queue (capacity 2) fills behind it.
	faults.Arm(faults.Fault{Point: faults.ServerCommitStall, Delay: 500 * time.Millisecond, Sticky: true})

	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	var sawRetryAfter bool
	const writers = 10
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"facts":[{"pred":"arc","args":["f%d","f%d",1]}]}`, i, i)
			resp := postRaw(t, ts.URL+"/v1/assert", body)
			mu.Lock()
			codes[resp.StatusCode]++
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") != "" {
				sawRetryAfter = true
			}
			mu.Unlock()
		}(i)
		if i == 0 {
			time.Sleep(30 * time.Millisecond)
		}
	}
	wg.Wait()

	if codes[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no batch was shed with 429; status counts: %v", codes)
	}
	if codes[http.StatusOK] == 0 {
		t.Fatalf("every batch was shed; status counts: %v", codes)
	}
	if !sawRetryAfter {
		t.Fatal("429 responses must carry a Retry-After header")
	}

	// The shed counter moved.
	if got := s.metrics.shed.With("/v1/assert", "queue_full").Value(); got == 0 {
		t.Fatal("mdl_shed_total{reason=queue_full} did not move")
	}
}

// TestReadInflightCapSheds saturates the per-program read gate with
// slow-encoding reads and checks excess reads shed 503 + Retry-After
// while the cap holds.
func TestReadInflightCapSheds(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}},
		Config{MaxInflight: 2})

	// Every read sleeps in the encode fault, holding its slot.
	faults.Arm(faults.Fault{Point: faults.ServerReadEncode, Delay: 300 * time.Millisecond, Sticky: true})

	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	var sawRetryAfter bool
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postRaw(t, ts.URL+"/v1/query", `{"op":"has","pred":"s","args":["a","d"]}`)
			mu.Lock()
			codes[resp.StatusCode]++
			if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "" {
				sawRetryAfter = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if codes[http.StatusServiceUnavailable] == 0 {
		t.Fatalf("no read was shed at the in-flight cap; status counts: %v", codes)
	}
	if codes[http.StatusOK] == 0 {
		t.Fatalf("every read was shed; status counts: %v", codes)
	}
	if !sawRetryAfter {
		t.Fatal("shed reads must carry Retry-After")
	}
}

// TestReadDeadlineHonored is the regression test for the PR-3 bug
// where Config.RequestTimeout only bounded asserts: a read that
// overruns the deadline (simulated slow encode) must answer the
// structured cancellation, on every read endpoint.
func TestReadDeadlineHonored(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src, Options: datalog.Options{Trace: true}}},
		Config{RequestTimeout: 50 * time.Millisecond})

	reads := []struct {
		method, path, body string
	}{
		{"POST", "/v1/query", `{"op":"has","pred":"s","args":["a","d"]}`},
		{"POST", "/v1/explain", `{"pred":"s","args":["a","d"]}`},
		{"GET", "/v1/stats", ""},
		{"GET", "/v1/program", ""},
	}
	for _, rd := range reads {
		t.Run(rd.path, func(t *testing.T) {
			faults.Reset()
			t.Cleanup(faults.Reset)
			faults.Arm(faults.Fault{Point: faults.ServerReadEncode, Delay: time.Second})
			start := time.Now()
			var resp *http.Response
			if rd.method == "GET" {
				r, err := http.Get(ts.URL + rd.path)
				if err != nil {
					t.Fatal(err)
				}
				resp = r
				defer r.Body.Close()
			} else {
				resp = postRaw(t, ts.URL+rd.path, rd.body)
			}
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("%s with slow encode: status %d, want 503", rd.path, resp.StatusCode)
			}
			if elapsed := time.Since(start); elapsed >= time.Second {
				t.Fatalf("%s waited out the full stall (%v); deadline not honored", rd.path, elapsed)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("%s deadline response missing Retry-After", rd.path)
			}
		})
	}
}

// TestHealthzLivenessVsReadyz pins the liveness/readiness split:
// /healthz stays 200 before materialization and while draining;
// /readyz answers 503 in both states and 200 only in between.
func TestHealthzLivenessVsReadyz(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	s, err := New([]ProgramSpec{{Name: "sp", Source: src}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestHTTP(t, s)

	code, resp := get(t, ts+"/healthz")
	if code != http.StatusOK || resp["state"] != "materializing" {
		t.Fatalf("pre-materialize healthz: %d %v", code, resp)
	}
	code, resp = get(t, ts+"/readyz")
	if code != http.StatusServiceUnavailable || resp["status"] != "materializing" {
		t.Fatalf("pre-materialize readyz: %d %v", code, resp)
	}

	if err := s.Materialize(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if code, resp = get(t, ts+"/readyz"); code != http.StatusOK || resp["status"] != "ok" {
		t.Fatalf("ready readyz: %d %v", code, resp)
	}

	s.BeginDrain()
	if code, resp = get(t, ts+"/healthz"); code != http.StatusOK || resp["state"] != "draining" {
		t.Fatalf("draining healthz: %d %v", code, resp)
	}
	if code, resp = get(t, ts+"/readyz"); code != http.StatusServiceUnavailable || resp["status"] != "draining" {
		t.Fatalf("draining readyz: %d %v", code, resp)
	}

	// Draining sheds asserts with 503 but reads keep working.
	resp2 := postRaw(t, ts+"/v1/assert", `{"facts":[{"pred":"arc","args":["z","z",1]}]}`)
	if resp2.StatusCode != http.StatusServiceUnavailable || resp2.Header.Get("Retry-After") == "" {
		t.Fatalf("assert while draining: %d", resp2.StatusCode)
	}
	if code, _ = post(t, ts+"/v1/query", `{"op":"has","pred":"s","args":["a","d"]}`); code != http.StatusOK {
		t.Fatalf("read while draining: %d, reads must not shed", code)
	}
}
