package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/datalog"
	"repro/internal/faults"
)

// promValue extracts one sample line's value from a Prometheus text
// exposition, matching on metric name + a label fragment.
func promValue(t testing.TB, text, name, labelFrag string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name) || !strings.Contains(line, labelFrag) {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err == nil {
			return v
		}
	}
	return -1
}

func promText(t testing.TB, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestGroupCommitCoalescesConcurrentBatches stalls the committer so
// concurrent assert batches pile up in the queue, then checks that (a)
// every batch is acked, (b) they share far fewer published generations
// than batches (group commit), (c) the batch-size histogram recorded a
// drain bigger than one batch, and (d) every asserted fact is in the
// final model.
func TestGroupCommitCoalescesConcurrentBatches(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	s, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})

	// Stall the first drain long enough for every writer to enqueue
	// behind it.
	faults.Arm(faults.Fault{Point: faults.ServerCommitStall, Delay: 300 * time.Millisecond})

	const writers = 12
	var wg sync.WaitGroup
	versions := make([]uint64, writers)
	coalesced := make([]int, writers)
	errs := make([]error, writers)
	// One request primes the stalled drain; the rest queue behind it.
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"facts":[{"pred":"arc","args":["g%d","h%d",1]}]}`, i, i)
			resp, err := http.Post(ts.URL+"/v1/assert", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var out map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %v", resp.StatusCode, out)
				return
			}
			versions[i] = uint64(out["version"].(float64))
			coalesced[i] = int(out["coalesced"].(float64))
		}(i)
		if i == 0 {
			time.Sleep(30 * time.Millisecond) // let the first batch start its drain
		}
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}

	// All batches acked; generations must be far fewer than batches.
	gens := map[uint64]bool{}
	maxCoalesced := 0
	for i := range versions {
		gens[versions[i]] = true
		if coalesced[i] > maxCoalesced {
			maxCoalesced = coalesced[i]
		}
	}
	if len(gens) >= writers {
		t.Fatalf("%d writers produced %d generations; group commit did not coalesce", writers, len(gens))
	}
	if maxCoalesced < 2 {
		t.Fatalf("max coalesced %d, want >= 2", maxCoalesced)
	}

	// Every asserted fact must be in the final model.
	svc := s.svcs["sp"]
	st := svc.current()
	for i := 0; i < writers; i++ {
		if !st.model.Has("arc", datalog.Sym(fmt.Sprintf("g%d", i)), datalog.Sym(fmt.Sprintf("h%d", i))) {
			t.Fatalf("acked fact arc(g%d, h%d, 1) missing from final model", i, i)
		}
	}

	// The histogram must have observed a drain with more than one batch:
	// with bucket bounds {1, 2, ...}, count(le="1") < total count.
	text := promText(t, ts.URL)
	le1 := promValue(t, text, "mdl_commit_batch_size_bucket", `le="1"`)
	total := promValue(t, text, "mdl_commit_batch_size_count", `program="sp"`)
	if le1 < 0 || total < 0 {
		t.Fatalf("commit batch-size histogram not exposed:\n%s", text)
	}
	if le1 >= total {
		t.Fatalf("batch-size histogram saw only single-batch drains (le1=%v total=%v)", le1, total)
	}
}

// TestGroupCommitPoisonBatchIsolated queues a non-monotone batch (an
// insert into the derived predicate s) among good batches: the merged
// solve fails, the committer retries each batch alone, the poison batch
// answers 409/static, and every good batch still commits.
func TestGroupCommitPoisonBatchIsolated(t *testing.T) {
	faults.Reset()
	t.Cleanup(faults.Reset)
	src := loadExample(t, "shortestpath.mdl")
	s, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})

	faults.Arm(faults.Fault{Point: faults.ServerCommitStall, Delay: 300 * time.Millisecond})

	type result struct {
		code int
		body map[string]any
	}
	const good = 5
	results := make([]result, good+1)
	var wg sync.WaitGroup
	post := func(i int, body string) {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/v1/assert", "application/json", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		results[i] = result{resp.StatusCode, out}
	}
	// Prime the stalled drain with a good batch, then queue the poison
	// batch among more good ones.
	wg.Add(1)
	go post(0, `{"facts":[{"pred":"arc","args":["p0","q0",1]}]}`)
	time.Sleep(30 * time.Millisecond)
	wg.Add(1)
	go post(good, `{"facts":[{"pred":"s","args":["x","y",1]}]}`) // derived: non-monotone
	for i := 1; i < good; i++ {
		wg.Add(1)
		go post(i, fmt.Sprintf(`{"facts":[{"pred":"arc","args":["p%d","q%d",1]}]}`, i, i))
	}
	wg.Wait()

	for i := 0; i < good; i++ {
		if results[i].code != http.StatusOK {
			t.Fatalf("good batch %d got %d %v — poisoned by its neighbor", i, results[i].code, results[i].body)
		}
	}
	if results[good].code != http.StatusConflict {
		t.Fatalf("poison batch got %d %v, want 409", results[good].code, results[good].body)
	}
	errBody := results[good].body["error"].(map[string]any)
	if errBody["code"] != "static" {
		t.Fatalf("poison batch code %v, want static", errBody["code"])
	}

	// All good facts present, the poison fact absent.
	st := s.svcs["sp"].current()
	for i := 0; i < good; i++ {
		if !st.model.Has("arc", datalog.Sym(fmt.Sprintf("p%d", i)), datalog.Sym(fmt.Sprintf("q%d", i))) {
			t.Fatalf("good fact arc(p%d, …) missing after isolation retry", i)
		}
	}
}

// TestCommitSoloEqualsGrouped asserts the semantic core of group
// commit: the least model after coalescing N deltas in one drain is
// identical to committing them one at a time (monotonicity of T_P).
func TestCommitSoloEqualsGrouped(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	mk := func() *service {
		s, err := New([]ProgramSpec{{Name: "sp", Source: src}}, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Materialize(context.Background()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		return s.svcs["sp"]
	}
	var deltas [][]datalog.Fact
	for i := 0; i < 6; i++ {
		deltas = append(deltas, []datalog.Fact{
			datalog.NewFact("arc", datalog.Sym(fmt.Sprintf("u%d", i)), datalog.Sym(fmt.Sprintf("u%d", i+1)), datalog.Num(float64(i+1))),
			datalog.NewFact("arc", datalog.Sym("d"), datalog.Sym(fmt.Sprintf("u%d", i)), datalog.Num(2)),
		})
	}

	solo := mk()
	for _, d := range deltas {
		if res, _ := solo.solveAndPublish(context.Background(), []*commitReq{{facts: d}}); res.err != nil {
			t.Fatal(res.err)
		}
	}
	grouped := mk()
	group := make([]*commitReq, len(deltas))
	for i, d := range deltas {
		group[i] = &commitReq{facts: d}
	}
	if res, _ := grouped.solveAndPublish(context.Background(), group); res.err != nil {
		t.Fatal(res.err)
	}

	a, b := solo.current().model.String(), grouped.current().model.String()
	if a != b {
		t.Fatalf("solo and grouped commits disagree:\nsolo:\n%s\ngrouped:\n%s", a, b)
	}
}
