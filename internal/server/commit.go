package server

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/datalog"
	"repro/internal/faults"
	"repro/internal/obs"
)

// Group commit: the write path of the serve tier.
//
// PR 3 serialized /v1/assert batches on a per-program mutex, so N
// concurrent writers paid for N incremental solves and the mutex convoy
// queued them unboundedly. This file replaces the convoy with a bounded
// commit queue drained by one committer goroutine per program:
//
//   - Handlers validate a batch (parse errors stay per-batch, before
//     anything is shared), enqueue it, and wait for its outcome. A full
//     queue is an admission failure — the handler sheds with 429 rather
//     than queueing without bound.
//   - The committer drains every batch currently queued, merges their
//     facts, runs ONE SolveMoreContext over the merged delta, and
//     publishes the result with one atomic swap. Coalescing is sound
//     because T_P is monotone (Ross & Sagiv): the least model of
//     EDB ∪ Δ₁ ∪ Δ₂ does not depend on whether Δ₁ and Δ₂ arrive in one
//     step or two, so many queued deltas can flow through one fixpoint.
//   - Every batch in a drain still gets its OWN outcome. If the merged
//     solve fails, the committer falls back to committing each batch
//     alone, in arrival order, so a poison batch (non-monotone
//     insertion, budget breach it alone triggers) answers with its own
//     error and cannot fail its neighbors.
//
// Once enqueued, a batch is owned by the committer: it is always
// answered (committed or rejected), even if the submitting request has
// gone away — acks are never silently dropped. The waiting handler may
// time out first; the commit then still completes and the client
// observes it through the model version, the documented group-commit
// ambiguity window.

// commitReq is one enqueued assert batch awaiting commit.
type commitReq struct {
	facts []datalog.Fact
	// done receives exactly one result; buffered so the committer never
	// blocks on a handler that has given up waiting.
	done chan commitResult
	// reqID is the submitting request's X-Request-Id, carried into the
	// commit path so committer log lines — poison-batch retries above
	// all — stay attributable to the request that queued the batch.
	reqID string
	// tr/root carry the submitting request's trace (tr nil when the
	// batch was enqueued outside the instrumented handler chain);
	// enqueued is when the batch entered the queue. The commit path
	// records queue/solve/wal/publish spans against them; tr is safe to
	// use after the waiting handler has given up — a finished trace
	// ignores further spans.
	tr       *obs.Trace
	root     obs.SpanID
	enqueued time.Time
}

// commitResult is the outcome of one batch.
type commitResult struct {
	state *modelState
	stats datalog.Stats
	// seq is the batch's commit sequence number: each committed batch
	// gets its own (monotonic per program), even when many batches share
	// one solve, so clients can reconcile acks across restarts — the
	// checkpoint watermark and WAL replay speak the same numbering.
	seq uint64
	// coalesced is the number of batches that shared the commit's solve
	// (1 when the batch was committed alone).
	coalesced int
	err       error
}

// defaultAssertQueue bounds the commit queue when Config.AssertQueue is
// zero. Depth is admission capacity, not throughput: everything queued
// is coalesced into the next drain, so the bound mainly caps how much
// latency a burst may accumulate before the server starts shedding.
const defaultAssertQueue = 64

// errQueueFull and errDraining are the enqueue admission failures.
var (
	errQueueFull = &enqueueError{reason: "queue_full"}
	errDraining  = &enqueueError{reason: "draining"}
)

type enqueueError struct{ reason string }

func (e *enqueueError) Error() string { return "server: assert queue " + e.reason }

// enqueue offers a batch to the commit queue without blocking: a full
// queue or a draining server rejects immediately (the admission
// decision), it never waits for capacity.
func (svc *service) enqueue(req *commitReq) error {
	// The mutex only guards the closed flag against a concurrent
	// BeginDrain (sending on a closed channel panics); the queue itself
	// is the buffer.
	svc.qmu.RLock()
	defer svc.qmu.RUnlock()
	if svc.qclosed {
		return errDraining
	}
	select {
	case svc.queue <- req:
		svc.srv.metrics.queueDepth.With(svc.name).Set(float64(len(svc.queue)))
		return nil
	default:
		return errQueueFull
	}
}

// closeQueue stops admission and lets the committer drain what is
// already queued. Idempotent.
func (svc *service) closeQueue() {
	svc.qmu.Lock()
	defer svc.qmu.Unlock()
	if !svc.qclosed {
		svc.qclosed = true
		close(svc.queue)
	}
}

// commitLoop is the per-program committer goroutine: it owns the write
// path, draining the queue in groups until the queue is closed and
// empty. Started by Materialize, joined by Drain.
func (svc *service) commitLoop() {
	defer close(svc.committerDone)
	for req := range svc.queue {
		batch := []*commitReq{req}
		// Greedy drain: everything queued behind the first batch joins
		// its commit. The queue bound caps the group size.
	drain:
		for {
			select {
			case more, ok := <-svc.queue:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		svc.srv.metrics.queueDepth.With(svc.name).Set(float64(len(svc.queue)))
		svc.commit(batch)
	}
	svc.srv.metrics.queueDepth.With(svc.name).Set(0)
}

// commit runs one drain: a single merged solve for the whole group,
// falling back to per-batch solves if the merged one fails so each
// batch still gets its own outcome.
func (svc *service) commit(batch []*commitReq) {
	// Writer stall fault: the queue keeps filling while this sleeps.
	ctx := svc.commitContext()
	if err := faults.CheckCtx(ctx, faults.ServerCommitStall); err != nil {
		svc.respondAll(batch, commitResult{coalesced: len(batch), err: err}, nil)
		return
	}
	svc.srv.metrics.commitBatch.With(svc.name).Observe(float64(len(batch)))
	res, seqs := svc.solveAndPublish(ctx, batch)
	if res.err == nil || len(batch) == 1 {
		svc.respondAll(batch, res, seqs)
		return
	}
	// The merged solve failed; one poison batch must not take its
	// neighbors down. Re-commit each batch alone, in arrival order, so
	// the error lands on the batch that earns it. (Monotonicity makes
	// the successful ones equivalent to their share of the merged
	// solve.)
	svc.srv.metrics.commitIsolated.With(svc.name).Add(int64(len(batch)))
	svc.srv.logf("program %s: merged commit of %d batches failed (%v); retrying alone (requests: %s)",
		svc.name, len(batch), res.err, requestIDs(batch))
	for _, req := range batch {
		solo, soloSeqs := svc.solveAndPublish(svc.commitContext(), []*commitReq{req})
		if len(soloSeqs) == 1 {
			solo.seq = soloSeqs[0]
		}
		if solo.err != nil {
			svc.srv.logf("program %s: batch from request %s rejected: %v", svc.name, orUnknown(req.reqID), solo.err)
		}
		req.done <- solo
	}
}

// requestIDs renders a batch group's request identifiers for log lines.
func requestIDs(batch []*commitReq) string {
	ids := make([]string, len(batch))
	for i, req := range batch {
		ids[i] = orUnknown(req.reqID)
	}
	return strings.Join(ids, ", ")
}

func orUnknown(id string) string {
	if id == "" {
		return "unknown"
	}
	return id
}

// respondAll delivers one shared result to every batch in a group,
// stamping each with its own commit sequence number when the commit
// assigned them.
func (svc *service) respondAll(batch []*commitReq, res commitResult, seqs []uint64) {
	for i, req := range batch {
		r := res
		if i < len(seqs) {
			r.seq = seqs[i]
		}
		req.done <- r
	}
}

// commitContext is the solve context for one commit: bounded by the
// per-request budget when configured, and cut short by the drain
// deadline at shutdown. It is deliberately NOT derived from any
// submitting request's context — a committed group must not be aborted
// because one waiter hung up.
func (svc *service) commitContext() context.Context {
	return svc.srv.drainCtx
}

// solveAndPublish extends the published model with the union of the
// batches' facts, logs each batch to the WAL, and swaps the converged
// result in atomically; on any error (including an injected publish
// failure) the published model is untouched. The returned seqs carry
// one commit sequence number per batch, in arrival order.
//
// Ordering is durability before visibility: the solve runs first (only
// successful batches are ever logged — a rejected batch leaves no
// record to replay), then every batch is appended to the log and
// fsynced per policy, then the new generation is published, then the
// caller acks. A WAL failure therefore costs an ack, never loses one:
// the batch answers 500, readiness trips, and the model keeps serving
// the previous fixpoint. The converse order would let readers observe
// facts a crash could forget.
func (svc *service) solveAndPublish(ctx context.Context, batch []*commitReq) (commitResult, []uint64) {
	coalesced := len(batch)
	if svc.srv.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, svc.srv.cfg.RequestTimeout)
		defer cancel()
	}
	if err := faults.CheckCtx(ctx, faults.ServerCommitSolve); err != nil {
		return commitResult{coalesced: coalesced, err: err}, nil
	}
	svc.writeMu.Lock()
	defer svc.writeMu.Unlock()
	// Queue-wait spans: [enqueue, writer acquired] per traced batch. The
	// leader — the first traced batch — additionally owns the solve
	// span; its trace gets the nested component/round/rule spans from
	// the engine's event stream, so one solve is never narrated twice.
	var leader *commitReq
	now := time.Now()
	for _, req := range batch {
		if req.tr == nil {
			continue
		}
		req.tr.RecordSpan("queue", req.root, req.enqueued, now)
		if leader == nil {
			leader = req
		}
	}
	if svc.wal != nil && svc.walBroken.Load() {
		return commitResult{coalesced: coalesced,
			err: fmt.Errorf("%w: log broken by an earlier failure; restart to recover", errWALFailed)}, nil
	}
	start := time.Now()
	cur := svc.cur.Load()
	facts := batch[0].facts
	if coalesced > 1 {
		facts = make([]datalog.Fact, 0, coalesced*2)
		for _, req := range batch {
			facts = append(facts, req.facts...)
		}
	}
	var extra datalog.EventSink
	var ssink *obs.SpanSink
	var solveSpan obs.SpanID
	var profBefore *datalog.Profile
	if leader != nil {
		solveSpan = leader.tr.StartSpanAt("solve", leader.root, start)
		ssink = obs.NewSpanSink(leader.tr, solveSpan)
		extra = ssink
		if svc.prog.Profiling() {
			profBefore = svc.prog.Profile()
		}
	}
	m, stats, err := svc.prog.SolveMoreObserved(ctx, cur.model, facts, extra)
	solveEnd := time.Now()
	if leader != nil {
		leader.tr.EndSpanAt(solveSpan, solveEnd, obs.IntAttr("coalesced", int64(coalesced)))
		for _, req := range batch {
			if req.tr != nil && req != leader {
				// Followers record the shared solve window flat, pointing
				// at the leader's trace for the detailed narration.
				req.tr.RecordSpan("solve", req.root, start, solveEnd,
					obs.StringAttr("shared_with_trace", leader.tr.ID().String()),
					obs.IntAttr("coalesced", int64(coalesced)))
			}
		}
		if profBefore != nil && err == nil {
			recordOperatorSpans(leader.tr, ssink, svc.prog.Profile().Sub(profBefore))
		}
	}
	if err != nil {
		return commitResult{stats: stats, coalesced: coalesced, err: err}, nil
	}
	seqs := make([]uint64, coalesced)
	for i := range seqs {
		seqs[i] = svc.seq.Load() + uint64(i) + 1
	}
	if svc.wal != nil {
		policy := svc.srv.walFsyncPolicy()
		for i, req := range batch {
			appendStart := time.Now()
			if err := svc.walAppend(seqs[i], req.facts); err != nil {
				return commitResult{stats: stats, coalesced: coalesced, err: svc.walFail("append", err)}, nil
			}
			if req.tr != nil {
				req.tr.RecordSpan("wal.append", req.root, appendStart, time.Now(), obs.IntAttr("seq", int64(seqs[i])))
			}
			if policy == FsyncAlways {
				fsyncStart := time.Now()
				if err := svc.walSync(); err != nil {
					return commitResult{stats: stats, coalesced: coalesced, err: svc.walFail("fsync", err)}, nil
				}
				if req.tr != nil {
					req.tr.RecordSpan("wal.fsync", req.root, fsyncStart, time.Now())
				}
			}
		}
		if policy == FsyncBatch {
			// Group commit: one fsync covers the whole drain, before any
			// batch in it is acked. Every traced batch records the shared
			// window — each request really did wait for this fsync.
			fsyncStart := time.Now()
			if err := svc.walSync(); err != nil {
				return commitResult{stats: stats, coalesced: coalesced, err: svc.walFail("fsync", err)}, nil
			}
			fsyncEnd := time.Now()
			for _, req := range batch {
				if req.tr != nil {
					req.tr.RecordSpan("wal.fsync", req.root, fsyncStart, fsyncEnd, obs.IntAttr("coalesced", int64(coalesced)))
				}
			}
		}
		// The log now owns these sequence numbers; advance past them
		// even if the publish below fails, so the next commit cannot
		// collide with a record already on disk.
		svc.seq.Store(seqs[coalesced-1])
	}
	// Failed-swap fault: the solve converged but the new generation
	// must not be published; readers keep the last good fixpoint. A
	// failed swap is an engine-side failure, not a client error. (With
	// a WAL the batches are already durable; replay applying them after
	// a restart is the documented at-least-once ambiguity — insertion
	// is idempotent, so convergence is unaffected.)
	if err := faults.Check(faults.ServerCommitPublish); err != nil {
		return commitResult{stats: stats, coalesced: coalesced,
			err: fmt.Errorf("%w: publishing generation %d: %v", datalog.ErrInternal, cur.version+1, err)}, nil
	}
	publishStart := time.Now()
	next := &modelState{model: m, version: cur.version + 1, warm: cur.warm}
	svc.cur.Store(next)
	if svc.wal == nil {
		svc.seq.Store(seqs[coalesced-1])
	}
	svc.srv.metrics.commitSeq.With(svc.name).Set(float64(seqs[coalesced-1]))
	svc.observeSolve(time.Since(start))
	svc.srv.metrics.publishModel(svc.name, next.version, m.Size())
	publishEnd := time.Now()
	for _, req := range batch {
		if req.tr != nil {
			req.tr.RecordSpan("publish", req.root, publishStart, publishEnd, obs.IntAttr("version", int64(next.version)))
		}
	}
	return commitResult{state: next, stats: stats, coalesced: coalesced}, seqs
}

// recordOperatorSpans attaches per-operator profile spans under the rule
// spans the solve's SpanSink recorded: for every rule that fired, each
// pipeline operator gets a span carrying its measured counters for THIS
// solve (the delta of the cumulative accumulators). Operator spans share
// their rule span's window — the executor measures rows, not per-
// operator wall time, and the trace stays honest about that.
func recordOperatorSpans(tr *obs.Trace, ssink *obs.SpanSink, delta *datalog.Profile) {
	for _, rp := range delta.Rules {
		ruleSpan, ok := ssink.RuleSpan(rp.Index)
		if !ok {
			continue
		}
		start, end, ok := tr.Window(ruleSpan)
		if !ok {
			continue
		}
		for _, op := range rp.Ops {
			tr.RecordSpan(fmt.Sprintf("op%d %s", op.Step, op.Kind), ruleSpan, start, end,
				obs.StringAttr("op", op.Op),
				obs.IntAttr("rows_in", op.In),
				obs.IntAttr("rows_out", op.Out),
				obs.IntAttr("probes", op.Probes),
				obs.IntAttr("build", op.Build),
				obs.IntAttr("delta_rows", op.Delta),
				obs.IntAttr("groups", op.Groups))
		}
	}
}

// observeSolve folds one successful commit's solve duration into the
// service's moving estimate (EWMA, α = 1/4). Retry-After hints are
// derived from it.
func (svc *service) observeSolve(d time.Duration) {
	n := d.Nanoseconds()
	old := svc.solveNanos.Load()
	if old == 0 {
		svc.solveNanos.Store(n)
		return
	}
	svc.solveNanos.Store(old - old/4 + n/4)
}

// retryAfter estimates how long a shed client should wait before
// retrying: the queued work ahead of it times the typical solve,
// clamped to [1s, 30s] whole seconds (the HTTP Retry-After grain).
func (svc *service) retryAfter() int {
	depth := len(svc.queue)
	per := time.Duration(svc.solveNanos.Load())
	if per <= 0 {
		per = 50 * time.Millisecond
	}
	est := time.Duration(depth+1) * per
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// queueCap resolves the configured commit-queue capacity.
func (cfg Config) queueCap() int {
	if cfg.AssertQueue > 0 {
		return cfg.AssertQueue
	}
	return defaultAssertQueue
}
