package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/datalog"
)

// getText fetches a URL with no Accept header and returns status, body
// and Content-Type.
func getText(t testing.TB, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header.Get("Content-Type")
}

// TestMetricsPrometheusText: /metrics defaults to the Prometheus text
// exposition format with well-formed families for requests, latency
// histograms, per-program gauges and build info.
func TestMetricsPrometheusText(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})

	post(t, ts.URL+"/v1/query", `{"op":"has","pred":"s","args":["a","b"]}`)
	code, body, ctype := getText(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q, want Prometheus text", ctype)
	}
	for _, want := range []string{
		"# HELP mdl_http_requests_total ",
		"# TYPE mdl_http_requests_total counter",
		`mdl_http_requests_total{endpoint="/v1/query",code="200"} 1`,
		"# TYPE mdl_http_request_duration_seconds histogram",
		`mdl_http_request_duration_seconds_bucket{endpoint="/v1/query",le="+Inf"} 1`,
		`mdl_http_request_duration_seconds_count{endpoint="/v1/query"} 1`,
		`mdl_program_model_version{program="sp"} 1`,
		`mdl_engine_firings{program="sp"}`,
		// The worker gauge must read 0 between solves whatever the
		// engine's parallelism during materialization.
		`mdl_engine_active_workers{program="sp"} 0`,
		"# TYPE mdl_build_info gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in /metrics output", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
	// Every line is a comment or name{labels} value — no stray output.
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line: %q", line)
		}
	}
}

// TestMetricsUnknownEndpointNotDropped is the regression test for the
// silent metric drop: traffic on unknown paths must land in the "other"
// series in both views, not vanish.
func TestMetricsUnknownEndpointNotDropped(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})

	if code, _, _ := getText(t, ts.URL+"/no/such/path"); code != http.StatusNotFound {
		t.Fatalf("unknown path: %d, want 404", code)
	}
	getText(t, ts.URL+"/also-unknown")

	_, body, _ := getText(t, ts.URL+"/metrics")
	if !strings.Contains(body, `mdl_http_requests_total{endpoint="other",code="404"} 2`) {
		t.Fatalf("404s not aggregated under other:\n%s", body)
	}
	code, resp := getJSON(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("json metrics: %d", code)
	}
	other := resp["endpoints"].(map[string]any)["other"].(map[string]any)
	if other["count"].(float64) < 2 || other["errors"].(float64) < 2 {
		t.Fatalf("JSON other stats: %v", other)
	}
}

// TestRequestIDs: every response carries an X-Request-Id, and a
// client-supplied id is echoed back instead of replaced.
func TestRequestIDs(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	generated := resp.Header.Get("X-Request-Id")
	if generated == "" {
		t.Fatal("no X-Request-Id generated")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "trace-me-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-42" {
		t.Fatalf("inbound request id not honored: %q", got)
	}
}

// TestStatsEndpoint: /v1/stats serves the per-rule and per-component
// breakdown of the published model, hot rules first, and the breakdown
// sums to the scalar totals.
func TestStatsEndpoint(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})

	code, resp := get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %v", code, resp)
	}
	prog := resp["programs"].([]any)[0].(map[string]any)
	st := prog["stats"].(map[string]any)
	rules := prog["rules"].([]any)
	comps := prog["components"].([]any)
	if len(rules) == 0 || len(comps) == 0 {
		t.Fatalf("empty breakdowns: %v", resp)
	}
	var firings float64
	prev := -1.0
	for _, r := range rules {
		rm := r.(map[string]any)
		firings += rm["firings"].(float64)
		if rm["rule"].(string) == "" {
			t.Fatalf("rule without text: %v", rm)
		}
		sec := rm["seconds"].(float64)
		if prev >= 0 && sec > prev {
			t.Fatalf("rules not sorted by time desc: %v after %v", sec, prev)
		}
		prev = sec
	}
	if firings != st["firings"].(float64) {
		t.Fatalf("rule firings sum %v != total %v", firings, st["firings"])
	}

	// After an assert the stats reflect the extended solve chain.
	post(t, ts.URL+"/v1/assert", `{"facts":[{"pred":"arc","args":["d","e",1]}]}`)
	code, resp2 := get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats after assert: %d", code)
	}
	st2 := resp2["programs"].([]any)[0].(map[string]any)["stats"].(map[string]any)
	if st2["firings"].(float64) <= st["firings"].(float64) {
		t.Fatalf("stats must grow across asserts: %v then %v", st["firings"], st2["firings"])
	}

	// Unknown program name → 404.
	if _, code := get2(t, ts.URL+"/v1/stats?name=zzz"); code != http.StatusNotFound {
		t.Fatal("unknown program must 404")
	}
}

// TestAssertOutcomeCounters: assert results land in
// mdl_assert_outcomes_total by program and outcome, including failures.
func TestAssertOutcomeCounters(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	_, ts := startServer(t, []ProgramSpec{{Name: "sp", Source: src}}, Config{})

	post(t, ts.URL+"/v1/assert", `{"facts":[{"pred":"arc","args":["d","e",1]}]}`)
	// A derived-predicate assert is a static error (409).
	post(t, ts.URL+"/v1/assert", `{"facts":[{"pred":"s","args":["a","b",1]}]}`)

	_, body, _ := getText(t, ts.URL+"/metrics")
	for _, want := range []string{
		`mdl_assert_outcomes_total{program="sp",outcome="ok"} 1`,
		`mdl_assert_outcomes_total{program="sp",outcome="static"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in:\n%s", want, body)
		}
	}
}

// TestEventSinkDuringAsserts: a user-configured event sink keeps
// receiving engine events (chained behind the metrics sink) while
// asserts run; run with -race this also proves the sink chaining and
// gauge updates are data-race free against concurrent readers.
func TestEventSinkDuringAsserts(t *testing.T) {
	src := loadExample(t, "shortestpath.mdl")
	var mu sync.Mutex
	kinds := map[datalog.EventKind]int{}
	sink := datalog.SinkFunc(func(e datalog.Event) {
		mu.Lock()
		kinds[e.Kind]++
		mu.Unlock()
	})
	_, ts := startServer(t, []ProgramSpec{
		{Name: "sp", Source: src, Options: datalog.Options{Sink: sink}},
	}, Config{})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers hit queries and scrapes while the writer loop
	// runs assert batches through the single-writer path.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err = http.Post(ts.URL+"/v1/query", "application/json",
					strings.NewReader(`{"op":"has","pred":"s","args":["a","b"]}`))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	for i := 0; i < 8; i++ {
		post(t, ts.URL+"/v1/assert",
			fmt.Sprintf(`{"facts":[{"pred":"arc","args":["d","x%d",%d]}]}`, i, i+1))
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	// One materialize + eight asserts, each bracketed by Solve events.
	if kinds[datalog.EventSolveBegin] != 9 || kinds[datalog.EventSolveEnd] != 9 {
		t.Fatalf("solve events: %v, want 9 begin/end", kinds)
	}
	if kinds[datalog.EventRuleFired] == 0 || kinds[datalog.EventRoundEnd] == 0 {
		t.Fatalf("user sink starved by metrics chaining: %v", kinds)
	}

	// The engine gauges tracked the chain: firings gauge equals the
	// published model's cumulative stats.
	_, body, _ := getText(t, ts.URL+"/metrics")
	if !strings.Contains(body, `mdl_program_model_version{program="sp"} 9`) {
		t.Fatalf("model version after 8 asserts:\n%s", body)
	}
}
