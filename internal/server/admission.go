package server

import (
	"context"
	"net/http"

	"repro/internal/faults"
)

// Admission control for the read path. The write path's admission is
// the bounded commit queue (commit.go); reads are gated here by a
// per-program in-flight counter so a stampede of expensive scans
// cannot pile up goroutines without bound. Shed reads answer
// 503 + Retry-After immediately — the handler never queues.

// acquireRead reserves one read slot on the service, reporting false
// (and recording the shed) when the per-program in-flight cap is hit.
// Callers must releaseRead exactly once after a true return.
func (s *Server) acquireRead(svc *service, endpoint string) bool {
	if s.cfg.MaxInflight <= 0 {
		return true
	}
	if svc.inflight.Add(1) > int64(s.cfg.MaxInflight) {
		svc.inflight.Add(-1)
		s.metrics.shed.With(endpoint, "overloaded").Inc()
		return false
	}
	return true
}

func (s *Server) releaseRead(svc *service) {
	if s.cfg.MaxInflight > 0 {
		svc.inflight.Add(-1)
	}
}

// requestContext applies Config.RequestTimeout to a request's context.
// Every handler — reads included — runs under it, so a slow encode or
// a stuck solve cannot hold a connection past the configured deadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// writeJSONCtx writes a success body unless the request deadline has
// already passed, in which case the client gets the structured
// cancellation instead of a half-timed-out 200. The fault point
// simulates a slow encode so the deadline path is testable.
func writeJSONCtx(ctx context.Context, w http.ResponseWriter, status int, v any) {
	if err := faults.CheckCtx(ctx, faults.ServerReadEncode); err != nil {
		writeErr(w, &apiError{Code: "canceled", Message: "request deadline exceeded: " + err.Error(), ExitCode: 4, status: http.StatusServiceUnavailable})
		return
	}
	if err := ctx.Err(); err != nil {
		writeErr(w, &apiError{Code: "canceled", Message: "request deadline exceeded: " + err.Error(), ExitCode: 4, status: http.StatusServiceUnavailable})
		return
	}
	writeJSON(w, status, v)
}
