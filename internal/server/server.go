// Package server is the concurrent query-service subsystem over
// materialized models: a long-lived HTTP/JSON layer that loads one or
// more programs, computes their least models once, and answers many
// cheap read queries against them.
//
// The design splits reads from writes around the monotonicity of T_P:
//
//   - Reads (/v1/query, /v1/program, /healthz, /metrics) never take a
//     lock. Each service holds its current *datalog.Model behind an
//     atomic pointer; models are immutable once published, and every
//     facade call used by the read path (Has, Cost, Facts, Match, Size,
//     Stats) is documented lock-free-safe for concurrent readers.
//
//   - Writes (/v1/assert) go through a group-committed single-writer
//     path per program: validated batches enter a bounded commit queue,
//     and one committer goroutine drains the queue in groups — the
//     merged facts of a drain run through ONE SolveMoreContext call
//     (producing a fresh extended model — the old one is never mutated)
//     and the result is atomically swapped in only after it has
//     converged, publishing one merged generation. Concurrent readers
//     therefore observe either the old least model or the new one,
//     never a partial interpretation. Coalescing is sound by the same
//     monotonicity that makes checkpoint/resume sound: adding EDB facts
//     only grows the least model and the least model of a union of
//     deltas does not depend on how the deltas are grouped (Ross &
//     Sagiv, Corollary 3.5 plus monotonicity of T_P). Each batch in a
//     drain still receives its own outcome: a batch the merged solve
//     cannot absorb (non-monotone insertion, a budget only it breaches)
//     is retried alone so it cannot poison its neighbors.
//
//   - Admission control keeps overload from queueing unboundedly: a
//     full commit queue sheds new asserts with 429 + Retry-After, a
//     draining server sheds them with 503, and Config.MaxInflight caps
//     concurrently executing reads per program. Reads keep serving the
//     published model at full speed while the write path sheds.
//
//   - /v1/explain also serializes with the writer: derivation traces
//     live in the engine and are updated during solves, so explains
//     briefly take the same writer mutex. They are diagnostic, not a
//     serving hot path.
//
// A failed assert (budget breach, divergence, cancellation, or a
// non-monotone addition) leaves the published model untouched: the
// service keeps answering from the last good fixpoint and reports a
// structured error mirroring the CLI's exit-code contract.
package server

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/datalog"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Config tunes the server; the zero value is a good default.
type Config struct {
	// RequestTimeout bounds each request's handler: the solve of every
	// commit, and the wait + encode time of every read. 0 means no
	// per-request deadline beyond the program's own MaxDuration.
	RequestTimeout time.Duration
	// AssertQueue bounds the per-program commit queue (admission
	// capacity of the write path). When the queue is full new batches
	// are shed with 429 instead of queueing without bound. 0 selects
	// the default (64).
	AssertQueue int
	// MaxInflight caps concurrently executing read requests per
	// program (/v1/query, /v1/explain); excess requests are shed with
	// 503 + Retry-After. 0 means unlimited.
	MaxInflight int
	// Logf receives one line per notable event (nil = silent).
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives one structured record per request
	// (method, path, status, duration, request id) plus the notable
	// events that also go to Logf.
	Logger *slog.Logger
	// SlowRequest, when positive, logs requests slower than this
	// threshold at Warn level (requires Logger).
	SlowRequest time.Duration
	// WALDir, when non-empty, enables the durable write-ahead log: each
	// program logs committed assert batches under WALDir/<name>/ and
	// replays them past the checkpoint watermark on warm start (see
	// wal.go). Empty disables the log (acked batches survive restarts
	// only up to the last checkpoint flush).
	WALDir string
	// WALFsync is the fsync policy for the log ("" selects batch).
	WALFsync FsyncPolicy
	// WALSegmentBytes caps each log segment before rotation; 0 selects
	// the wal package default (64 MiB).
	WALSegmentBytes int64
	// TraceBuffer sizes the in-process flight recorder: the number of
	// most recent request traces retained for /debug/traces. 0 selects
	// the default (64).
	TraceBuffer int
	// TraceDir, when non-empty, additionally writes every finished
	// request trace as a Chrome trace-event JSON file (one per trace)
	// under this directory, loadable in about:tracing / Perfetto.
	TraceDir string
}

// ProgramSpec names one program to serve.
type ProgramSpec struct {
	// Name is the key clients address the program by.
	Name string
	// Source is the program text (rules, declarations and facts).
	Source string
	// Options configures evaluation; Trace enables /v1/explain.
	Options datalog.Options
	// Checkpoint, when non-empty, is a snapshot path: if the file exists
	// the service warm-starts from it (RestoreFile + Resume) instead of
	// solving from scratch, and Close flushes a final snapshot to it.
	Checkpoint string
	// Resume, when non-empty, is an explicit warm-start source; it is
	// read at Materialize time and must exist. It overrides Checkpoint
	// as the warm-start source but not as the flush target.
	Resume string
}

// modelState is one published generation of a service's model.
type modelState struct {
	model *datalog.Model
	// version counts successful materializations and asserts, starting
	// at 1 for the initial least model.
	version uint64
	// warm records whether this generation chain began from a snapshot.
	warm bool
}

// service is one program being served.
type service struct {
	name string
	prog *datalog.Program
	spec ProgramSpec
	srv  *Server
	// cur is the currently published model; readers Load it and never
	// lock. The committer replaces it wholesale under writeMu.
	cur atomic.Pointer[modelState]
	// writeMu serializes the single-writer path: commits, explains
	// (traces live in the engine) and checkpoint flushes.
	writeMu sync.Mutex
	// queue is the bounded commit queue; handlers enqueue validated
	// batches, commitLoop drains them in groups (see commit.go). qmu
	// guards qclosed so BeginDrain can stop admission without racing a
	// send on the closed channel.
	queue         chan *commitReq
	qmu           sync.RWMutex
	qclosed       bool
	committerUp   atomic.Bool
	committerDone chan struct{}
	// solveNanos is the EWMA of recent commit solve durations, feeding
	// Retry-After estimates.
	solveNanos atomic.Int64
	// inflight counts currently executing read requests for the
	// MaxInflight admission gate.
	inflight atomic.Int64
	// wal is the program's write-ahead log (nil when Config.WALDir is
	// empty). seq is the program's commit sequence: the number of assert
	// batches ever committed, carried across restarts through the log
	// and the checkpoint watermark. It advances only on the committer
	// goroutine; atomic so handlers and checkpoint flushes can read it.
	wal *wal.Log
	seq atomic.Uint64
	// walBroken trips after a failed append or fsync: the write path
	// fails fast (500 "wal") and /readyz reports wal_failed until a
	// restart recovers the log.
	walBroken atomic.Bool
	// replaying/replayDone/replayTotal publish warm-start replay
	// progress to /readyz.
	replaying   atomic.Bool
	replayDone  atomic.Uint64
	replayTotal atomic.Uint64
	// arity maps predicate name -> non-cost arity for every declared
	// predicate, fixed at load time (so the read path never consults —
	// or lazily extends — mutable schema state).
	decls map[string]datalog.PredDecl
}

// Server hosts a set of services and their HTTP API.
type Server struct {
	cfg     Config
	svcs    map[string]*service
	names   []string // sorted service names
	start   time.Time
	metrics *metrics
	// recorder retains the most recent finished request traces for
	// /debug/traces and post-incident dumps.
	recorder *obs.FlightRecorder
	// draining flips once at shutdown: readiness goes 503 and new
	// assert batches are shed while queued ones drain.
	draining atomic.Bool
	// drainCtx is the base context of every commit solve; drainCancel
	// fires when a drain deadline expires (or on Close), so stuck
	// commits abort instead of wedging shutdown.
	drainCtx    context.Context
	drainCancel context.CancelFunc
}

// New loads every program spec (reporting load errors immediately, with
// datalog.ErrParse/ErrStatic preserved) but does not evaluate anything;
// call Materialize before Handler goes live.
func New(specs []ProgramSpec, cfg Config) (*Server, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("server: no programs to serve")
	}
	s := &Server{
		cfg:      cfg,
		svcs:     map[string]*service{},
		start:    time.Now(),
		metrics:  newMetrics(),
		recorder: obs.NewFlightRecorder(cfg.TraceBuffer),
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	for _, spec := range specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("server: program with empty name")
		}
		if _, dup := s.svcs[spec.Name]; dup {
			return nil, fmt.Errorf("server: duplicate program name %q", spec.Name)
		}
		// Chain the metrics sink in front of any user-configured sink:
		// the engine's event stream feeds the per-program gauges. Events
		// are only ever emitted from the single-writer path (materialize
		// and serialized asserts), and gauge updates are atomic.
		spec.Options.Sink = datalog.MultiSink(s.metrics.programSink(spec.Name), spec.Options.Sink)
		// Operator profiling is always on in the serve tier: it feeds
		// /v1/explain/plan?analyze=1 and the per-commit operator spans,
		// and costs one predictable branch per counted executor event.
		spec.Options.Profile = true
		p, err := datalog.Load(spec.Source, spec.Options)
		if err != nil {
			return nil, fmt.Errorf("server: program %s: %w", spec.Name, err)
		}
		svc := &service{
			name:          spec.Name,
			prog:          p,
			spec:          spec,
			srv:           s,
			queue:         make(chan *commitReq, cfg.queueCap()),
			committerDone: make(chan struct{}),
			decls:         map[string]datalog.PredDecl{},
		}
		for _, d := range p.Predicates() {
			// On a name collision across arities keep the first (sorted)
			// declaration; query handlers resolve by name only.
			if _, ok := svc.decls[d.Name]; !ok {
				svc.decls[d.Name] = d
			}
		}
		s.svcs[spec.Name] = svc
		s.names = append(s.names, spec.Name)
	}
	for i := 1; i < len(s.names); i++ {
		for j := i; j > 0 && s.names[j] < s.names[j-1]; j-- {
			s.names[j], s.names[j-1] = s.names[j-1], s.names[j]
		}
	}
	return s, nil
}

// logf reports one notable event. Logf wins when both sinks are set
// (the structured Logger then carries request records only), so lines
// are never duplicated.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
		return
	}
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info(fmt.Sprintf(format, args...))
	}
}

// Materialize computes (or warm-starts) the least model of every
// service and starts its committer. With a WAL configured it also
// opens each program's log and replays the records past the restored
// checkpoint's watermark before publishing, so the first published
// generation already contains every durably acked batch. It must
// complete before the handler serves queries; pair it with Drain (or
// Close) to stop the committers.
func (s *Server) Materialize(ctx context.Context) error {
	for _, name := range s.names {
		svc := s.svcs[name]
		start := time.Now()
		m, warm, watermark, err := svc.materialize(ctx)
		if err != nil {
			return fmt.Errorf("server: materialize %s: %w", name, err)
		}
		svc.seq.Store(watermark)
		replayed := 0
		if s.cfg.WALDir != "" {
			if err := svc.openWAL(watermark); err != nil {
				return fmt.Errorf("server: materialize %s: %w", name, err)
			}
			if m, replayed, err = svc.replayWAL(ctx, m, watermark); err != nil {
				return fmt.Errorf("server: materialize %s: wal replay: %w", name, err)
			}
			svc.seq.Store(svc.wal.LastSeq())
			if replayed > 0 && svc.spec.Checkpoint != "" {
				// Fold the replay into a fresh checkpoint immediately so
				// the next restart replays only what arrives from here on,
				// and let the log drop segments the new watermark subsumes.
				if err := m.WriteSnapshotWatermark(svc.spec.Checkpoint, svc.seq.Load()); err != nil {
					return fmt.Errorf("server: materialize %s: post-replay checkpoint: %w", name, err)
				}
				if _, err := svc.wal.Compact(svc.seq.Load()); err != nil {
					return fmt.Errorf("server: materialize %s: wal compact: %w", name, err)
				}
				s.metrics.walSegments.With(name).Set(float64(svc.wal.Segments()))
			}
		}
		s.metrics.commitSeq.With(name).Set(float64(svc.seq.Load()))
		svc.cur.Store(&modelState{model: m, version: 1, warm: warm})
		s.metrics.publishModel(name, 1, m.Size())
		svc.committerUp.Store(true)
		go svc.commitLoop()
		how := "solved"
		if warm {
			how = "warm-started"
		}
		extra := ""
		if replayed > 0 {
			extra = fmt.Sprintf(", %d wal batches replayed", replayed)
		}
		s.logf("program %s: %s in %s (%d tuples, %d rounds%s)",
			name, how, time.Since(start).Round(time.Millisecond), m.Size(), m.Stats().Rounds, extra)
	}
	return nil
}

// materialize computes the initial least model of one service,
// warm-starting from a snapshot when configured. The returned
// watermark is the restored checkpoint's commit sequence (0 for cold
// starts): WAL replay resumes after it.
func (svc *service) materialize(ctx context.Context) (*datalog.Model, bool, uint64, error) {
	warmFrom := svc.spec.Resume
	optional := false
	if warmFrom == "" && svc.spec.Checkpoint != "" {
		// A checkpoint path doubles as an opportunistic warm-start
		// source so a restarted server resumes where it left off.
		warmFrom, optional = svc.spec.Checkpoint, true
	}
	if warmFrom != "" {
		restored, watermark, err := svc.prog.RestoreFileWatermark(warmFrom)
		switch {
		case err == nil:
			m, _, rerr := svc.prog.Resume(ctx, restored)
			if rerr != nil {
				return nil, true, 0, rerr
			}
			return m, true, watermark, nil
		case optional && errors.Is(err, fs.ErrNotExist):
			// No snapshot yet: fall through to a cold solve.
		default:
			return nil, false, 0, err
		}
	}
	m, _, err := svc.prog.SolveContext(ctx, nil)
	if err != nil {
		return nil, false, 0, err
	}
	return m, false, 0, nil
}

// current returns the published model state (nil before Materialize).
func (svc *service) current() *modelState { return svc.cur.Load() }

// Draining reports whether shutdown has begun (readiness is 503 and
// new assert batches are shed while the queues empty).
func (s *Server) Draining() bool { return s.draining.Load() }

// BeginDrain flips the server into draining mode: /readyz answers 503,
// new assert batches are rejected, and the committers run the queues
// dry. Idempotent; it does not wait — see Drain.
func (s *Server) BeginDrain() {
	if s.draining.Swap(true) {
		return
	}
	s.logf("draining: admission closed, %d program queue(s) emptying", len(s.names))
	for _, name := range s.names {
		s.svcs[name].closeQueue()
	}
}

// Drain begins the drain (if not already begun) and waits for every
// queued batch to be answered. After timeout (when positive) the drain
// context is canceled, so in-flight commit solves abort cooperatively
// and remaining batches are answered with the cancellation — every ack
// is still delivered, none are lost. Returns true if the drain
// completed without hitting the deadline.
func (s *Server) Drain(timeout time.Duration) bool {
	s.BeginDrain()
	clean := true
	var deadline <-chan time.Time
	if timeout > 0 {
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		deadline = tm.C
	}
	for _, name := range s.names {
		svc := s.svcs[name]
		if !svc.committerUp.Load() {
			continue
		}
		select {
		case <-svc.committerDone:
		case <-deadline:
			clean = false
			s.logf("drain deadline hit; canceling in-flight commits")
			s.drainCancel()
			<-svc.committerDone
		}
	}
	if clean {
		s.logf("drained cleanly")
	}
	return clean
}

// Close shuts the write path down immediately: any in-flight commit is
// canceled and every queued batch is answered with the cancellation.
// For tests and abrupt teardown; graceful shutdown wants Drain.
func (s *Server) Close() {
	s.BeginDrain()
	s.drainCancel()
	for _, name := range s.names {
		svc := s.svcs[name]
		if svc.committerUp.Load() {
			<-svc.committerDone
		}
		if svc.wal != nil {
			// The committer has exited, so no appends race the close.
			if err := svc.wal.Close(); err != nil && !svc.walBroken.Load() {
				s.logf("program %s: wal close: %v", name, err)
			}
		}
	}
}

// explain renders a derivation under the writer mutex (traces live in
// the engine and are rewritten during asserts).
func (svc *service) explain(pred string, depth int, args []datalog.Value) (rule string, supports []string, tree string, ok bool) {
	svc.writeMu.Lock()
	defer svc.writeMu.Unlock()
	m := svc.cur.Load().model
	rule, supports, ok = m.Explain(pred, args...)
	if !ok {
		return "", nil, "", false
	}
	return rule, supports, m.ExplainTree(pred, depth, args...), true
}

// FlushCheckpoints writes a final snapshot for every service configured
// with a checkpoint path, stamped with the program's commit-sequence
// watermark, then compacts the WAL behind it (segments the checkpoint
// subsumes are dropped). It is called on graceful shutdown; the first
// error is returned after all services have been attempted.
func (s *Server) FlushCheckpoints() error {
	var first error
	for _, name := range s.names {
		svc := s.svcs[name]
		if svc.spec.Checkpoint == "" {
			continue
		}
		svc.writeMu.Lock()
		st := svc.cur.Load()
		seq := svc.seq.Load()
		var err error
		if st != nil {
			err = st.model.WriteSnapshotWatermark(svc.spec.Checkpoint, seq)
		}
		svc.writeMu.Unlock()
		if err != nil {
			s.logf("program %s: final checkpoint: %v", name, err)
			if first == nil {
				first = fmt.Errorf("server: checkpoint %s: %w", name, err)
			}
			continue
		}
		if st != nil {
			s.logf("program %s: checkpoint flushed to %s (version %d, seq %d)", name, svc.spec.Checkpoint, st.version, seq)
			if svc.wal != nil && !svc.walBroken.Load() {
				if n, cerr := svc.wal.Compact(seq); cerr != nil {
					s.logf("program %s: wal compact: %v", name, cerr)
				} else if n > 0 {
					s.logf("program %s: wal compacted %d segment(s) behind seq %d", name, n, seq)
				}
				s.metrics.walSegments.With(name).Set(float64(svc.wal.Segments()))
			}
		}
	}
	return first
}

// lookup resolves a program name; an empty name resolves to the sole
// service when exactly one program is being served.
func (s *Server) lookup(name string) (*service, error) {
	if name == "" {
		if len(s.names) == 1 {
			return s.svcs[s.names[0]], nil
		}
		return nil, fmt.Errorf("server: %d programs served, name one of %v", len(s.names), s.names)
	}
	svc, ok := s.svcs[name]
	if !ok {
		return nil, fmt.Errorf("server: unknown program %q", name)
	}
	return svc, nil
}
